# Development entry points; CI (.github/workflows/ci.yml) runs the same
# targets.
GO ?= go
# bash + pipefail so a failing `go test` is not masked by the tee it
# pipes into (mirrors the CI steps' `set -o pipefail`).
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build test race bench bench-gated bench-compare examples docs lint staticcheck fmt clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Smoke-run every example program (main packages never execute under
# `go test`); each self-checks and exits non-zero on inconsistencies.
examples:
	for d in examples/*/; do echo "=== go run ./$$d"; $(GO) run ./$$d || exit 1; done

# Documentation gate: every relative markdown link must resolve (file
# and #anchor), and every exported identifier of the public `repro`
# package must carry a doc comment. See cmd/doccheck.
docs:
	$(GO) run ./cmd/doccheck

# Race-detect the parallel execution engine, its memory model, the
# parallel sort substrate, the concurrent-query public surface, the
# HTTP daemon layer, the differential kernel behind subscriptions, and
# the cluster partitioning layer (whose coordinator interleaves
# scatter–gather queries with 2PC updates).
# The packages that own worker scheduling (the root package and
# internal/trienum) additionally run at -cpu=1,4: GOMAXPROCS=1
# serializes the goroutines, 4 exercises work stealing and the parallel
# oblivious recursion under real preemption.
race:
	$(GO) test -race -cpu=1,4 . ./internal/trienum
	$(GO) test -race ./internal/extmem ./internal/emsort ./internal/serve ./internal/diff ./internal/cluster

# One iteration of every benchmark in every package (the CI smoke); use
# BENCHTIME=5x etc. for real measurements.
BENCHTIME ?= 1x
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run='^$$' ./...

# The benchmarks the CI regression gate watches, written to a file that
# bench-compare can consume as OLD= or NEW=.
OUT ?= bench-gated.txt
bench-gated:
	$(GO) test -bench='E10|E13|E15' -benchtime=$(BENCHTIME) -run='^$$' . | tee $(OUT)

# Gate NEW against OLD on the deterministic block-I/O metric, as CI does:
#   make bench-gated OUT=old.txt   (on the baseline commit)
#   make bench-gated OUT=new.txt   (on the candidate)
#   make bench-compare OLD=old.txt NEW=new.txt
OLD ?= bench-old.txt
NEW ?= bench-new.txt
bench-compare:
	$(GO) run ./cmd/benchgate -match 'E10|E13|E15' -metric IOs -max-regress 20 $(OLD) $(NEW)

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# Deeper static analysis; CI runs this in its own job, pinned to the
# same version. Install once with:
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1.1
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; exit 1; }
	staticcheck ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
