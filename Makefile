# Development entry points; CI (.github/workflows/ci.yml) runs the same
# targets.
GO ?= go

.PHONY: all build test race bench lint fmt clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the parallel execution engine and its memory model.
race:
	$(GO) test -race ./internal/trienum ./internal/extmem

# One iteration of every benchmark (the CI smoke); use BENCHTIME=5x etc.
# for real measurements.
BENCHTIME ?= 1x
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run='^$$' .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
