// Benchmark harness: one bench per experiment in EXPERIMENTS.md (which in
// turn covers every theorem/lemma of the paper — its "tables and
// figures"). Each benchmark reports, besides ns/op, the measured block
// I/Os and the ratio to the theoretical bound as custom metrics, so
// `go test -bench=.` regenerates the paper's complexity claims.
package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/emsort"
	"repro/internal/expt"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/subgraph"
	"repro/internal/trienum"
)

// benchMeasure runs one cold measurement per iteration and reports I/O
// metrics.
func benchMeasure(b *testing.B, el graph.EdgeList, m expt.Machine, runner string, bound float64) {
	b.Helper()
	var last expt.Measurement
	for i := 0; i < b.N; i++ {
		last = expt.Measure(el, m, expt.Runner(runner), uint64(i)+1)
	}
	b.ReportMetric(float64(last.IOs), "IOs")
	if bound > 0 {
		b.ReportMetric(float64(last.IOs)/bound, "IOs/bound")
	}
	b.ReportMetric(float64(last.Triangles), "triangles")
}

// BenchmarkE1CacheAwareScaling — Theorem 4: I/Os = O(E^1.5/(sqrt(M)·B)).
func BenchmarkE1CacheAwareScaling(b *testing.B) {
	m := expt.Machine{M: 1 << 11, B: 1 << 5}
	for _, n := range []int{64, 91, 128, 181} {
		el := graph.Clique(n)
		e := int64(n * (n - 1) / 2)
		b.Run(fmt.Sprintf("clique/E=%d", e), func(b *testing.B) {
			benchMeasure(b, el, m, "cacheaware", expt.OptBound(e, m))
		})
	}
	for _, e := range []int{8192, 32768} {
		el := graph.GNM(e/4, e, uint64(e))
		b.Run(fmt.Sprintf("gnm/E=%d", e), func(b *testing.B) {
			benchMeasure(b, el, m, "cacheaware", expt.OptBound(int64(e), m))
		})
	}
}

// BenchmarkE2ObliviousScaling — Theorem 1: cache-oblivious, same bound.
func BenchmarkE2ObliviousScaling(b *testing.B) {
	m := expt.Machine{M: 1 << 11, B: 1 << 5}
	for _, n := range []int{64, 91, 128} {
		el := graph.Clique(n)
		e := int64(n * (n - 1) / 2)
		b.Run(fmt.Sprintf("clique/E=%d", e), func(b *testing.B) {
			benchMeasure(b, el, m, "oblivious", expt.OptBound(e, m))
		})
	}
	// The same program against different caches.
	el := graph.GNM(2048, 8192, 7)
	for _, m := range []expt.Machine{{M: 1 << 9, B: 1 << 4}, {M: 1 << 11, B: 1 << 5}, {M: 1 << 13, B: 1 << 6}} {
		b.Run(fmt.Sprintf("gnm8192/M=%d/B=%d", m.M, m.B), func(b *testing.B) {
			benchMeasure(b, el, m, "oblivious", expt.OptBound(8192, m))
		})
	}
}

// BenchmarkE3DeterministicScaling — Theorem 2: derandomized, worst case.
func BenchmarkE3DeterministicScaling(b *testing.B) {
	m := expt.Machine{M: 1 << 9, B: 1 << 4}
	for _, e := range []int{4096, 16384} {
		el := graph.GNM(e/4, e, uint64(e)*3)
		b.Run(fmt.Sprintf("gnm/E=%d", e), func(b *testing.B) {
			benchMeasure(b, el, m, "deterministic", expt.OptBound(int64(e), m))
		})
	}
}

// BenchmarkE4OptimalityGap — Theorem 3: I/Os vs the lower bound on the
// extremal instance (cliques, t = Θ(E^1.5)).
func BenchmarkE4OptimalityGap(b *testing.B) {
	m := expt.Machine{M: 1 << 10, B: 1 << 5}
	for _, name := range []string{"cacheaware", "oblivious", "deterministic", "hutaochung"} {
		b.Run(name, func(b *testing.B) {
			el := graph.Clique(128)
			var last expt.Measurement
			for i := 0; i < b.N; i++ {
				last = expt.Measure(el, m, expt.Runner(name), uint64(i)+1)
			}
			lb := expt.LowerBound(last.Triangles, m)
			b.ReportMetric(float64(last.IOs), "IOs")
			b.ReportMetric(float64(last.IOs)/lb, "IOs/lowerbound")
		})
	}
}

// BenchmarkE5ImprovementFactor — the min(sqrt(E/M), sqrt(M)) improvement
// over Hu–Tao–Chung.
func BenchmarkE5ImprovementFactor(b *testing.B) {
	m := expt.Machine{M: 1 << 10, B: 1 << 5}
	for _, n := range []int{128, 181, 256} {
		el := graph.Clique(n)
		e := int64(n * (n - 1) / 2)
		b.Run(fmt.Sprintf("E=%d", e), func(b *testing.B) {
			var hu, ca expt.Measurement
			for i := 0; i < b.N; i++ {
				hu = expt.Measure(el, m, expt.Runner("hutaochung"), 5)
				ca = expt.Measure(el, m, expt.Runner("cacheaware"), 5)
			}
			b.ReportMetric(float64(hu.IOs)/float64(ca.IOs), "improvement")
		})
	}
}

// BenchmarkE6ColoringBalance — Lemma 3: E[X_ξ] <= E·M.
func BenchmarkE6ColoringBalance(b *testing.B) {
	m := expt.Machine{M: 1 << 9, B: 1 << 4}
	el := graph.PowerLaw(6000, 16384, 2.1, 62)
	b.Run("powerlaw/E=16384", func(b *testing.B) {
		var x uint64
		for i := 0; i < b.N; i++ {
			ms := expt.Measure(el, m, expt.Runner("cacheaware"), uint64(i)+1)
			x = ms.Info.X
		}
		b.ReportMetric(float64(x)/(16384*float64(m.M)), "X/(E*M)")
	})
}

// BenchmarkE7MemorySweep — I/Os at fixed E as M varies.
func BenchmarkE7MemorySweep(b *testing.B) {
	el := graph.GNM(4096, 16384, 71)
	for _, mWords := range []int{1 << 8, 1 << 12} {
		m := expt.Machine{M: mWords, B: 1 << 4}
		for _, name := range []string{"cacheaware", "hutaochung", "nestedloop"} {
			b.Run(fmt.Sprintf("M=%d/%s", mWords, name), func(b *testing.B) {
				benchMeasure(b, el, m, name, 0)
			})
		}
	}
}

// BenchmarkE8Comparison — all algorithms on a representative workload.
func BenchmarkE8Comparison(b *testing.B) {
	el := graph.PowerLaw(3000, 8192, 2.1, 82)
	m := expt.Machine{M: 1 << 10, B: 1 << 5}
	for _, r := range expt.Runners() {
		b.Run(r.Name, func(b *testing.B) {
			benchMeasure(b, el, m, r.Name, 0)
		})
	}
}

// BenchmarkE9KClique — Section 6: k=4 cliques, bound E²/(M·B).
func BenchmarkE9KClique(b *testing.B) {
	m := expt.Machine{M: 1 << 10, B: 1 << 5}
	for _, n := range []int{64, 91} {
		el := graph.Clique(n)
		b.Run(fmt.Sprintf("clique%d", n), func(b *testing.B) {
			var ios uint64
			var cliques uint64
			for i := 0; i < b.N; i++ {
				sp := extmem.NewSpace(extmem.Config{M: m.M, B: m.B})
				g := graph.CanonicalizeList(sp, el)
				sp.DropCache()
				sp.ResetStats()
				info, err := subgraph.KClique(nil, sp, g, 4, uint64(i)+1, func([]uint32) {})
				if err != nil {
					b.Fatal(err)
				}
				sp.Flush()
				ios = sp.Stats().IOs()
				cliques = info.Cliques
			}
			e := float64(n * (n - 1) / 2)
			b.ReportMetric(float64(ios), "IOs")
			b.ReportMetric(float64(ios)/(e*e/(float64(m.M)*float64(m.B))), "IOs/bound")
			b.ReportMetric(float64(cliques), "cliques")
		})
	}
}

// BenchmarkE10Sorting — the sort(E) substrate: multiway vs funnelsort vs
// binary oblivious mergesort.
func BenchmarkE10Sorting(b *testing.B) {
	m := expt.Machine{M: 1 << 10, B: 1 << 5}
	n := int64(1 << 15)
	sorters := []struct {
		name string
		fn   graph.SortFunc
	}{
		{"multiway", emsort.SortRecords},
		{"funnel", emsort.FunnelSortRecords},
		{"binary", emsort.ObliviousSortRecords},
	}
	for _, s := range sorters {
		b.Run(s.name, func(b *testing.B) {
			var ios uint64
			for i := 0; i < b.N; i++ {
				sp := extmem.NewSpace(extmem.Config{M: m.M, B: m.B})
				ext := sp.Alloc(n)
				rng := hashing.NewRand(uint64(i))
				for j := int64(0); j < n; j++ {
					ext.Write(j, rng.Next())
				}
				sp.DropCache()
				sp.ResetStats()
				s.fn(ext, 1, emsort.Identity)
				sp.Flush()
				ios = sp.Stats().IOs()
			}
			b.ReportMetric(float64(ios), "IOs")
		})
	}
}

// BenchmarkE11RecursionConcentration — Lemmas 4–5: one oblivious run,
// reporting the top-of-recursion concentration ratios as metrics.
func BenchmarkE11RecursionConcentration(b *testing.B) {
	m := expt.Machine{M: 1 << 11, B: 1 << 5}
	el := graph.GNM(2048, 8192, 41)
	var last expt.Measurement
	for i := 0; i < b.N; i++ {
		last = expt.Measure(el, m, expt.Runner("oblivious"), 11)
	}
	if len(last.Info.Recursion) > 3 {
		lv := last.Info.Recursion[3]
		e := float64(last.Edges)
		b.ReportMetric(float64(lv.TotalEdges)/(e*8), "lvl3_total/(E*2^3)")
		b.ReportMetric(float64(lv.TotalEdges)/float64(lv.Subproblems)/(e/64), "lvl3_mean/(E/4^3)")
	}
}

// BenchmarkE12ListingOverhead — Section 1: the Θ(t/B) materialization
// cost of listing over enumeration on the triangle-dense instance.
func BenchmarkE12ListingOverhead(b *testing.B) {
	m := expt.Machine{M: 1 << 11, B: 1 << 5}
	el := graph.Clique(91)
	var ratio float64
	for i := 0; i < b.N; i++ {
		sp := extmem.NewSpace(extmem.Config{M: m.M, B: m.B})
		g := graph.CanonicalizeList(sp, el)
		sp.DropCache()
		sp.ResetStats()
		var n uint64
		trienum.CacheAware(sp, g, 12, graph.Counter(&n))
		sp.Flush()
		enum := sp.Stats().IOs()
		sp.DropCache()
		sp.ResetStats()
		list, _ := trienum.ListTriangles(sp, g, 12,
			func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) trienum.Info {
				return trienum.CacheAware(sp, g, seed, emit)
			})
		sp.Flush()
		lst := sp.Stats().IOs()
		ratio = (float64(lst) - 2*float64(enum)) / (2 * float64(list.Len()) / float64(m.B))
	}
	b.ReportMetric(ratio, "extra/(2t/B)")
}

// BenchmarkE13ParallelWorkers — the worker-pool engine on a large graph:
// wall-clock scaling with the worker count. The aggregated block-I/O
// totals are identical at every worker count (reported as a metric so the
// invariance is visible in the bench output); only wall time changes.
func BenchmarkE13ParallelWorkers(b *testing.B) {
	edges, err := Generate("powerlaw:n=12000,m=64000,beta=2.1", 13)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts(1, 2, 4, runtime.NumCPU()) {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var last Result
			for i := 0; i < b.N; i++ {
				res, err := Count(edges, Config{MemoryWords: 1 << 12, BlockWords: 1 << 6, Seed: 3, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Stats.IOs()), "IOs")
			b.ReportMetric(float64(last.Subproblems), "subproblems")
		})
	}
}

// benchWorkerCounts returns the sorted distinct worker counts to sweep.
func benchWorkerCounts(counts ...int) []int {
	slices.Sort(counts)
	return slices.Compact(counts)
}

// BenchmarkE14ParallelDeterministic — the same scaling for the
// derandomized algorithm, whose greedy coloring is a sequential prefix.
func BenchmarkE14ParallelDeterministic(b *testing.B) {
	edges, err := Generate("gnm:n=4000,m=24000", 17)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts(1, runtime.NumCPU()) {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var ios uint64
			for i := 0; i < b.N; i++ {
				res, err := Count(edges, Config{
					Algorithm: Deterministic, MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				ios = res.Stats.IOs()
			}
			b.ReportMetric(float64(ios), "IOs")
		})
	}
}

// BenchmarkE15ParallelSort — the parallel sort(E) substrate standalone:
// wall-clock scaling of ParallelSortRecords / ParallelFunnelSortRecords
// with the worker count. The aggregated block-I/O totals are identical at
// every worker count (reported as a metric so the invariance is visible
// in the bench output); only wall time changes.
func BenchmarkE15ParallelSort(b *testing.B) {
	cfg := extmem.Config{M: 1 << 12, B: 1 << 6}
	n := int64(1 << 15)
	variants := []struct {
		name string
		fn   func(extmem.Extent, int, emsort.Key, int) []extmem.Stats
	}{
		{"multiway", emsort.ParallelSortRecords},
		{"funnel", emsort.ParallelFunnelSortRecords},
	}
	for _, v := range variants {
		for _, w := range benchWorkerCounts(1, 2, 4, runtime.NumCPU()) {
			b.Run(fmt.Sprintf("%s/workers=%d", v.name, w), func(b *testing.B) {
				var ios uint64
				for i := 0; i < b.N; i++ {
					sp := extmem.NewSpace(cfg)
					ext := sp.Alloc(n)
					rng := hashing.NewRand(uint64(i))
					for j := int64(0); j < n; j++ {
						ext.Write(j, rng.Next())
					}
					sp.DropCache()
					sp.ResetStats()
					ws := v.fn(ext, 1, emsort.Identity, w)
					sp.Flush()
					total := sp.Stats()
					for _, s := range ws {
						total.Add(s)
					}
					ios = total.IOs()
				}
				b.ReportMetric(float64(ios), "IOs")
			})
		}
	}
}

// BenchmarkE16ParallelPipeline — the parallel sorts in-pipeline: the full
// public entry point (canonicalization + enumeration) under a worker
// sweep, so the sort(E) terms that PR 2 parallelized are measured where
// they actually occur. IOs and canonIOs are worker-invariant metrics.
func BenchmarkE16ParallelPipeline(b *testing.B) {
	edges, err := Generate("powerlaw:n=12000,m=64000,beta=2.1", 23)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts(1, 2, 4, runtime.NumCPU()) {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var last Result
			for i := 0; i < b.N; i++ {
				res, err := Count(edges, Config{MemoryWords: 1 << 12, BlockWords: 1 << 6, Seed: 7, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Stats.IOs()), "IOs")
			b.ReportMetric(float64(last.CanonIOs), "canonIOs")
		})
	}
}

// BenchmarkE17ConcurrentQueries — per-query sessions: query throughput on
// one shared handle as the number of querying goroutines grows. Each op
// is one full triangle query at Workers=1, so the parallelism measured is
// across queries, not inside them; ns/op shrinking with the goroutine
// count is the session model's win. The per-query block I/Os are reported
// as a metric (and asserted equal across all goroutines) to witness that
// concurrency changes wall-clock only — every session runs the identical
// cold machine.
func BenchmarkE17ConcurrentQueries(b *testing.B) {
	edges, err := Generate("gnm:n=3000,m=18000", 29)
	if err != nil {
		b.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 12, BlockWords: 1 << 6})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	for _, n := range benchWorkerCounts(1, 2, 4, runtime.NumCPU()) {
		b.Run(fmt.Sprintf("goroutines=%d", n), func(b *testing.B) {
			perQuery := make([]uint64, n)
			jobs := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					failed := false
					// Keep draining jobs after a failure so the b.N send
					// loop never blocks on a dead pool.
					for range jobs {
						if failed {
							continue
						}
						res, err := g.TrianglesFunc(nil, Query{Seed: 5, Workers: 1}, nil)
						if err != nil {
							b.Error(err)
							failed = true
							continue
						}
						perQuery[w] = res.Stats.IOs()
					}
				}(w)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs <- struct{}{}
			}
			close(jobs)
			wg.Wait()
			var ios uint64
			for _, q := range perQuery {
				if q == 0 {
					continue // goroutine never got a job (b.N < n)
				}
				if ios == 0 {
					ios = q
				} else if q != ios {
					b.Fatalf("per-query IOs drifted under concurrency: %d vs %d", q, ios)
				}
			}
			b.ReportMetric(float64(ios), "IOs")
		})
	}
}

// BenchmarkE18UpdateDelta — updatable handles: merging a ~1% edge delta
// into the frozen canonical image (Update) vs. paying the full
// O(sort(E)) canonicalization again (Build of the updated set). Both
// reported metrics are deterministic block counts — mergeIOs is the
// UpdateResult.MergeIOs of the delta merge, rebuildIOs the fresh build's
// CanonIOs — and the benchmark fails outright if the merge is not
// strictly cheaper, which is the point of the delta path: the merge
// replaces the raw-edge, endpoint-doubling, and vertex-table sorts with
// scans, keeping only the two relabeling sorts at sort(E) scale.
func BenchmarkE18UpdateDelta(b *testing.B) {
	edges, err := Generate("gnm:n=4000,m=32000", 31)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{MemoryWords: 1 << 12, BlockWords: 1 << 6, Workers: 1}
	var d Delta
	for i := 0; i < 160; i++ {
		d.Remove = append(d.Remove, edges[(i*97)%len(edges)])
		d.Add = append(d.Add, [2]uint32{uint32(i * 3 % 4000), uint32(50000 + i)})
	}

	var mergeIOs, rebuildIOs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, err := Build(FromEdges(edges), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := g.Update(nil, d)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		mergeIOs = res.MergeIOs
		if rebuildIOs == 0 {
			model := newEdgeSet(edges)
			model.apply(d)
			fresh, err := Build(FromEdges(model.slice()), opts)
			if err != nil {
				b.Fatal(err)
			}
			rebuildIOs = fresh.CanonIOs()
			fresh.Close()
		}
		g.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(mergeIOs), "mergeIOs")
	b.ReportMetric(float64(rebuildIOs), "rebuildIOs")
	if mergeIOs >= rebuildIOs {
		b.Fatalf("delta merge cost %d IOs >= full rebuild %d IOs", mergeIOs, rebuildIOs)
	}
}

// BenchmarkE19Reopen — durable images: adopting an existing canonical
// image (Open) vs. paying the full O(sort(E)) canonicalization again
// (Build). The adopted generation reports CanonIOs = 0; the only I/O
// Open spends is the O(scan(V)) rank-table adoption, reported as
// reopenIOs, and — when a write-ahead log survived a crash — the
// deterministic replay merges, reported as replayIOs for a one-record
// log. The benchmark fails outright if adoption is not strictly cheaper
// than the rebuild, which is the point of the durable format: reopening
// costs a vertex-table scan, not a canonicalization.
func BenchmarkE19Reopen(b *testing.B) {
	edges, err := Generate("gnm:n=4000,m=32000", 31)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{MemoryWords: 1 << 12, BlockWords: 1 << 6, Workers: 1}
	var d Delta
	for i := 0; i < 160; i++ {
		d.Remove = append(d.Remove, edges[(i*97)%len(edges)])
		d.Add = append(d.Add, [2]uint32{uint32(i * 3 % 4000), uint32(50000 + i)})
	}

	dir := b.TempDir()
	path := filepath.Join(dir, "e19.img")
	opts.DiskPath = path
	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		b.Fatal(err)
	}
	rebuildIOs := g.CanonIOs()
	if err := g.Close(); err != nil {
		b.Fatal(err)
	}
	// A crashed sibling: same graph, plus a one-record log to replay.
	crashPath := filepath.Join(dir, "e19crash.img")
	cg, err := Build(FromEdges(edges), Options{MemoryWords: opts.MemoryWords, BlockWords: opts.BlockWords, Workers: 1, DiskPath: crashPath})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cg.Update(nil, d); err != nil {
		b.Fatal(err)
	}
	crashImg, err := os.ReadFile(crashPath)
	if err != nil {
		b.Fatal(err)
	}
	crashWal, err := os.ReadFile(crashPath + ".wal")
	if err != nil {
		b.Fatal(err)
	}
	if err := cg.Close(); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(crashPath, crashImg, 0o644); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(crashPath+".wal", crashWal, 0o644); err != nil {
		b.Fatal(err)
	}

	var reopenIOs, replayIOs uint64
	for i := 0; i < b.N; i++ {
		ro, or, err := Open(path, opts)
		if err != nil {
			b.Fatal(err)
		}
		reopenIOs = or.AdoptIOs
		if ro.CanonIOs() != 0 {
			b.Fatalf("adopted image reports CanonIOs=%d", ro.CanonIOs())
		}
		if err := ro.Close(); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		// Restore the crash state the replay consumes (Close promotes it).
		if err := os.WriteFile(crashPath, crashImg, 0o644); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(crashPath+".wal", crashWal, 0o644); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rc, ror, err := Open(crashPath, Options{MemoryWords: opts.MemoryWords, BlockWords: opts.BlockWords, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if ror.Replayed != 1 {
			b.Fatalf("crash copy replayed %d records, want 1", ror.Replayed)
		}
		replayIOs = ror.AdoptIOs + ror.ReplayIOs
		if err := rc.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(reopenIOs), "reopenIOs")
	b.ReportMetric(float64(replayIOs), "replayIOs")
	b.ReportMetric(float64(rebuildIOs), "rebuildIOs")
	if reopenIOs >= rebuildIOs {
		b.Fatalf("reopen cost %d IOs >= full rebuild %d IOs", reopenIOs, rebuildIOs)
	}
	if replayIOs >= rebuildIOs {
		b.Fatalf("crash recovery cost %d IOs >= full rebuild %d IOs", replayIOs, rebuildIOs)
	}
}

// BenchmarkE21Subscribe — standing queries: the differential kernel's
// cost of turning a ~1% edge delta into an exact triangle ChangeSet vs.
// re-enumerating the whole updated graph and diffing by hand. diffIOs is
// the subscription's ChangeSet.Stats.IOs() — the closure scans of both
// the retracted and installed generations — and fullIOs is a fresh
// TrianglesFunc pass over the updated image. The two subscriptions run
// at Workers 1 and 4 and every iteration asserts their ChangeSets are
// deeply equal (emissions and I/O stats), pinning the determinism
// contract inside the measurement loop; the benchmark fails outright if
// the differential path is not strictly cheaper than re-enumeration,
// which is the point of a standing query.
func BenchmarkE21Subscribe(b *testing.B) {
	edges, err := Generate("gnm:n=4000,m=32000", 31)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{MemoryWords: 1 << 12, BlockWords: 1 << 6, Workers: 1}
	var d Delta
	for i := 0; i < 160; i++ {
		d.Remove = append(d.Remove, edges[(i*97)%len(edges)])
		d.Add = append(d.Add, [2]uint32{uint32(i * 3 % 4000), uint32(50000 + i)})
	}

	var diffIOs, fullIOs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, err := Build(FromEdges(edges), opts)
		if err != nil {
			b.Fatal(err)
		}
		sub1, err := g.Subscribe(nil, Query{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		sub4, err := g.Subscribe(nil, Query{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := g.Update(nil, d); err != nil {
			b.Fatal(err)
		}
		cs1, cs4 := <-sub1.Changes(), <-sub4.Changes()
		b.StopTimer()
		if !reflect.DeepEqual(cs1, cs4) {
			b.Fatalf("ChangeSets drifted across Workers: %+v vs %+v", cs1, cs4)
		}
		diffIOs = cs1.Stats.IOs()
		if fullIOs == 0 {
			res, err := g.TrianglesFunc(nil, Query{Workers: 1}, nil)
			if err != nil {
				b.Fatal(err)
			}
			fullIOs = res.Stats.IOs()
		}
		g.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(diffIOs), "diffIOs")
	b.ReportMetric(float64(fullIOs), "fullIOs")
	if diffIOs >= fullIOs {
		b.Fatalf("differential pass cost %d IOs >= full re-enumeration %d IOs", diffIOs, fullIOs)
	}
}

// BenchmarkEnumeratePublicAPI measures the end-to-end public entry point,
// including canonicalization, at a realistic configuration.
func BenchmarkEnumeratePublicAPI(b *testing.B) {
	edges, err := Generate("powerlaw:n=10000,m=40000,beta=2.2", 9)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []Algorithm{CacheAware, HuTaoChung} {
		b.Run(alg.String(), func(b *testing.B) {
			var ios uint64
			for i := 0; i < b.N; i++ {
				res, err := Count(edges, Config{Algorithm: alg, MemoryWords: 1 << 12, BlockWords: 1 << 6, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				ios = res.Stats.IOs()
			}
			b.ReportMetric(float64(ios), "IOs")
		})
	}
}

// BenchmarkE22Native — the native execution mode (PR 9) against the
// simulated machine it mirrors: the same query runs both ways each
// iteration, the transcripts are asserted byte-identical, and the two
// wall-clock totals are timed separately (reported as simNs/op and
// natNs/op, plus their ratio as the speedup metric). Native must be
// strictly faster — it runs the identical decomposition minus the
// block-transfer bookkeeping — even single-threaded on one core; the
// multi-core speedups are documented in EXPERIMENTS.md §E22. Instances
// reuse the E13/E16 powerlaw graph, the E17 gnm graph, and the E15 sort
// substrate, so the native numbers line up with the simulated baselines
// of those experiments.
func BenchmarkE22Native(b *testing.B) {
	instances := []struct {
		name  string
		spec  string
		seed  uint64
		qseed uint64
	}{
		{"E13/powerlaw", "powerlaw:n=12000,m=64000,beta=2.1", 13, 3},
		{"E16/powerlaw", "powerlaw:n=12000,m=64000,beta=2.1", 23, 7},
		{"E17/gnm", "gnm:n=3000,m=18000", 29, 5},
	}
	for _, inst := range instances {
		edges, err := Generate(inst.spec, inst.seed)
		if err != nil {
			b.Fatal(err)
		}
		g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 12, BlockWords: 1 << 6})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range benchWorkerCounts(1, runtime.NumCPU()) {
			b.Run(fmt.Sprintf("%s/workers=%d", inst.name, w), func(b *testing.B) {
				var simT, natT time.Duration
				var sim, nat []uint32
				run := func(mode ExecMode, buf []uint32) ([]uint32, time.Duration, error) {
					buf = buf[:0]
					start := time.Now()
					_, err := g.TrianglesFunc(nil, Query{Seed: inst.qseed, Workers: w, Mode: mode}, func(x, y, z uint32) {
						buf = append(buf, x, y, z)
					})
					return buf, time.Since(start), err
				}
				for i := 0; i < b.N; i++ {
					var dSim, dNat time.Duration
					if sim, dSim, err = run(ModeSimulated, sim); err != nil {
						b.Fatal(err)
					}
					if nat, dNat, err = run(ModeNative, nat); err != nil {
						b.Fatal(err)
					}
					if !slices.Equal(sim, nat) {
						b.Fatalf("iteration %d: native emission differs from simulated (%d vs %d vertices)", i, len(nat), len(sim))
					}
					simT += dSim
					natT += dNat
				}
				b.ReportMetric(float64(simT.Nanoseconds())/float64(b.N), "simNs/op")
				b.ReportMetric(float64(natT.Nanoseconds())/float64(b.N), "natNs/op")
				b.ReportMetric(float64(simT)/float64(natT), "speedup")
				if natT >= simT {
					b.Fatalf("native execution not faster: native %v >= simulated %v over %d iterations", natT, simT, b.N)
				}
			})
		}
		g.Close()
	}

	// The E15 substrate: the parallel funnel sort over the same 1<<15
	// random words, simulated vs native Space, sorted output asserted
	// word-identical each iteration.
	b.Run("E15/funnel-sort", func(b *testing.B) {
		n := int64(1 << 15)
		var simT, natT time.Duration
		sortOnce := func(native bool, seed uint64) ([]extmem.Word, time.Duration) {
			cfg := extmem.Config{M: 1 << 12, B: 1 << 6, Native: native}
			sp := extmem.NewSpace(cfg)
			ext := sp.Alloc(n)
			rng := hashing.NewRand(seed)
			for j := int64(0); j < n; j++ {
				ext.Write(j, rng.Next())
			}
			sp.DropCache()
			start := time.Now()
			emsort.ParallelFunnelSortRecords(ext, 1, emsort.Identity, 1)
			d := time.Since(start)
			out := sp.Snapshot(ext)
			sp.Close()
			return out, d
		}
		for i := 0; i < b.N; i++ {
			seed := uint64(i) + 1
			sim, dSim := sortOnce(false, seed)
			nat, dNat := sortOnce(true, seed)
			if !slices.Equal(sim, nat) {
				b.Fatalf("iteration %d: native sort output differs", i)
			}
			simT += dSim
			natT += dNat
		}
		b.ReportMetric(float64(simT.Nanoseconds())/float64(b.N), "simNs/op")
		b.ReportMetric(float64(natT.Nanoseconds())/float64(b.N), "natNs/op")
		b.ReportMetric(float64(simT)/float64(natT), "speedup")
		if natT >= simT {
			b.Fatalf("native sort not faster: native %v >= simulated %v over %d iterations", natT, simT, b.N)
		}
	})
}
