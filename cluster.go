package repro

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/cluster"
)

// ErrClusterClosed is returned by operations on a closed Cluster handle.
var ErrClusterClosed = errors.New("repro: cluster handle is closed")

// DialOptions configures DialCluster. The zero value uses
// http.DefaultClient-like settings and no authentication.
type DialOptions struct {
	// Client overrides the HTTP client used to talk to shards (nil uses
	// a default client). Streams can be long-lived; do not set a
	// Timeout that would cut queries short.
	Client *http.Client
	// AuthToken, when non-empty, is sent as "Authorization: Bearer
	// <token>" on every shard request — required when the shards run
	// with -auth-token-file.
	AuthToken string
}

// Cluster is the coordinator-side handle of a partitioned graph: the
// client half of the scatter–gather layer. It fans each query out to
// every shard, streams their sorted owned emissions concurrently, and
// k-way merges them back into the canonical global emission order — the
// same stream a single-process Query.Ordered run of the full graph
// delivers, byte for byte, at every shard count and Workers value.
// Updates are routed by endpoint color ownership and installed with a
// two-phase commit under the handle's write lock, so a query never
// observes mixed shard generations (epochs are additionally pinned
// end-to-end: every shard request carries the coordinator's epoch and
// mismatches fail with 409 rather than mixing).
//
// A Cluster is safe for concurrent use. Queries hold a read lock and
// run concurrently with each other; Update holds the write lock.
type Cluster struct {
	man   *cluster.Manifest
	urls  []string
	hc    *http.Client
	token string

	mu       sync.RWMutex
	epoch    uint64
	vertices int
	edges    int64
	closed   bool
}

// DialCluster connects a coordinator to a running cluster: the manifest
// written by Partition plus one shard base URL per manifest entry, in
// shard order. The dial handshake fetches every shard's identity and
// refuses to proceed unless each one serves the manifest's coloring and
// its own color range, and all shards agree on the cluster epoch — a
// half-updated cluster is surfaced here instead of as silently wrong
// query results.
func DialCluster(ctx context.Context, manifestPath string, shardURLs []string, opts DialOptions) (*Cluster, error) {
	man, err := cluster.Load(manifestPath)
	if err != nil {
		return nil, err
	}
	if len(shardURLs) != len(man.Shards) {
		return nil, fmt.Errorf("repro: manifest has %d shards but %d URLs were given", len(man.Shards), len(shardURLs))
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Cluster{man: man, hc: hc, token: opts.AuthToken}
	for _, u := range shardURLs {
		c.urls = append(c.urls, strings.TrimRight(u, "/"))
	}
	var epoch uint64
	for i := range c.urls {
		var info cluster.ShardInfoResponse
		if err := c.getJSON(ctx, i, "/v1/cluster/shard/info", &info); err != nil {
			return nil, fmt.Errorf("repro: shard %d handshake: %w", i, err)
		}
		sh := man.Shards[i]
		if info.Index != sh.Index || info.Lo != sh.Lo || info.Hi != sh.Hi ||
			info.Colors != man.Colors || info.Seed != man.Seed {
			return nil, fmt.Errorf("repro: shard %d at %s serves [%d,%d) of %d colors (seed %d), manifest says [%d,%d) of %d (seed %d)",
				i, c.urls[i], info.Lo, info.Hi, info.Colors, info.Seed, sh.Lo, sh.Hi, man.Colors, man.Seed)
		}
		if i == 0 {
			epoch = info.Epoch
			c.vertices, c.edges = info.Vertices, info.Edges
		} else if info.Epoch != epoch {
			return nil, fmt.Errorf("repro: shards disagree on cluster epoch (%d vs shard 0's %d); the cluster is mid-update or diverged", info.Epoch, epoch)
		}
	}
	c.epoch = epoch
	return c, nil
}

// Close releases the handle. It does not stop the shard servers.
func (c *Cluster) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.hc.CloseIdleConnections()
	return nil
}

// Epoch returns the cluster epoch the handle believes current: the
// number of routed updates committed through it (plus any committed
// before it dialed).
func (c *Cluster) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Shards returns the cluster's shard count.
func (c *Cluster) Shards() int { return len(c.urls) }

// Colors returns the cluster's color count C.
func (c *Cluster) Colors() int { return c.man.Colors }

// Seed returns the cluster coloring seed.
func (c *Cluster) Seed() uint64 { return c.man.Seed }

// NumVertices and NumEdges describe the cluster-wide graph as of the
// last handshake or routed update.
func (c *Cluster) NumVertices() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.vertices
}

// NumEdges returns the cluster-wide edge count; see NumVertices.
func (c *Cluster) NumEdges() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.edges
}

// ClusterShardRun is one shard's contribution to a gathered query.
type ClusterShardRun struct {
	// Index is the shard; Delivered counts its owned emissions.
	Index     int
	Delivered uint64
	// Subproblems counts the owned color tuples; Builds the non-empty
	// ones actually built and enumerated.
	Subproblems int
	Builds      int
	// CanonIOs sums the per-tuple sub-build costs and Stats the
	// per-tuple enumeration statistics — each a pure function of
	// (graph, manifest, query), independent of shard placement.
	CanonIOs uint64
	Stats    IOStats
}

// ClusterResult summarizes a gathered cluster query.
type ClusterResult struct {
	// Matches counts the cluster-wide matches enumerated; Delivered the
	// emissions actually gathered to the caller (fewer under Limit).
	Matches   uint64
	Delivered uint64
	// Vertices and Edges describe the cluster-wide graph (shard 0's
	// full suffix view) as of the generation the query ran on.
	Vertices int
	Edges    int64
	// Epoch is the cluster epoch the query ran on; every shard executed
	// at exactly this epoch.
	Epoch uint64
	// Subproblems, Builds, CanonIOs and Stats aggregate the shard
	// breakdowns: deterministic cluster-wide totals, invariant in the
	// shard count, shard placement, and Workers.
	Subproblems int
	Builds      int
	CanonIOs    uint64
	Stats       IOStats
	// Shards is the per-shard breakdown, ordered by shard index.
	Shards []ClusterShardRun
}

// TrianglesFunc enumerates every triangle of the cluster-wide graph,
// gathered from all shards into the canonical global order — the stream
// a single-process Query.Ordered triangles query of the full graph
// emits, byte for byte. emit runs on the calling goroutine. Query
// fields Algorithm, Seed, Workers, Mode and Limit apply (each shard
// runs its color-tuple subproblems with them); Ordered is implied.
// Under a Limit the shards still enumerate fully — the aggregate
// statistics always describe the whole query — and the gathered stream
// stops after Limit emissions.
func (c *Cluster) TrianglesFunc(ctx context.Context, q Query, emit func(a, b, c uint32)) (ClusterResult, error) {
	req := cluster.ShardQueryRequest{Kind: "triangles", Algorithm: q.Algorithm.String()}
	var f func([]uint32)
	if emit != nil {
		f = func(vs []uint32) { emit(vs[0], vs[1], vs[2]) }
	}
	return c.run(ctx, req, q, f)
}

// CliquesFunc enumerates every k-clique cluster-wide; the gathered
// stream matches a single-process Query.Ordered cliques query byte for
// byte. See TrianglesFunc for the query contract.
func (c *Cluster) CliquesFunc(ctx context.Context, k int, q Query, emit func(clique []uint32)) (ClusterResult, error) {
	if k < 3 {
		return ClusterResult{}, fmt.Errorf("repro: cluster cliques query needs k >= 3, got %d", k)
	}
	return c.run(ctx, cluster.ShardQueryRequest{Kind: "cliques", K: k}, q, emit)
}

// MatchFunc enumerates every embedding of the named pattern
// cluster-wide, normalized (Pattern.Normalize) and gathered into the
// canonical global order — the single-process Query.Ordered match
// stream, byte for byte. The pattern travels by name, so it must be one
// of the predefined patterns (ParsePattern); see TrianglesFunc for the
// query contract.
func (c *Cluster) MatchFunc(ctx context.Context, p *Pattern, q Query, emit func(assign []uint32)) (ClusterResult, error) {
	if p == nil || p.p == nil {
		return ClusterResult{}, fmt.Errorf("repro: cluster match requires a non-nil pattern")
	}
	if _, err := ParsePattern(p.Name()); err != nil {
		return ClusterResult{}, fmt.Errorf("repro: cluster match requires a predefined pattern: %w", err)
	}
	return c.run(ctx, cluster.ShardQueryRequest{Kind: "match", Pattern: p.Name()}, q, emit)
}

// shardStream is one shard's live query stream during a gather.
type shardStream struct {
	ch      chan []uint32
	trailer cluster.ShardQueryTrailer
	err     error
}

// run fans the query out, k-way merges the sorted shard streams, and
// aggregates the trailers. The merge invariant: each shard's stream is
// sorted (the shard sorts its owned emissions) and the owned sets are
// pairwise disjoint (each emission's color multiset has exactly one
// owner), so repeatedly taking the lexicographically least head yields
// the globally sorted stream with no duplicates.
func (c *Cluster) run(ctx context.Context, req cluster.ShardQueryRequest, q Query, emit func([]uint32)) (ClusterResult, error) {
	var cr ClusterResult
	if q.FamilySize != 0 {
		return cr, errors.New("repro: Query.FamilySize does not travel over the cluster wire")
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return cr, ErrClusterClosed
	}
	epoch := c.epoch
	req.Epoch = &epoch
	req.Seed = q.Seed
	req.Workers = q.Workers
	req.Native = q.Mode == ModeNative

	qctx, cancel := cancelableCtx(ctx)
	defer cancel()

	streams := make([]*shardStream, len(c.urls))
	var wg sync.WaitGroup
	for i := range streams {
		st := &shardStream{ch: make(chan []uint32, 256)}
		streams[i] = st
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(st.ch)
			st.err = c.streamShard(qctx, i, req, st)
		}(i)
	}

	heads := make([][]uint32, len(streams))
	for i, st := range streams {
		heads[i] = <-st.ch
	}
	var delivered uint64
	limitHit := false
	for {
		best := -1
		for i, h := range heads {
			if h == nil {
				continue
			}
			if best == -1 || cluster.CompareTuples(h, heads[best]) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		if !limitHit {
			if emit != nil {
				emit(heads[best])
			}
			delivered++
			if q.Limit > 0 && delivered >= q.Limit {
				// Stop emitting but keep draining: the shards have
				// already done the work, and their trailers carry the
				// deterministic aggregate statistics.
				limitHit = true
			}
		}
		heads[best] = <-streams[best].ch
	}
	wg.Wait()

	var err error
	for i, st := range streams {
		if st.err != nil {
			err = errors.Join(err, fmt.Errorf("shard %d: %w", i, st.err))
			continue
		}
		tr := st.trailer
		if tr.Epoch != epoch {
			err = errors.Join(err, fmt.Errorf("shard %d answered at epoch %d, coordinator is at %d", i, tr.Epoch, epoch))
		}
		cr.Matches += tr.Delivered
		cr.Subproblems += tr.Subproblems
		cr.Builds += tr.Builds
		cr.CanonIOs += tr.CanonIOs
		addIOStats(&cr.Stats, tr.Stats)
		cr.Shards = append(cr.Shards, ClusterShardRun{
			Index:       i,
			Delivered:   tr.Delivered,
			Subproblems: tr.Subproblems,
			Builds:      tr.Builds,
			CanonIOs:    tr.CanonIOs,
			Stats:       fromClusterStats(tr.Stats),
		})
		if i == 0 {
			cr.Vertices, cr.Edges = tr.Vertices, tr.Edges
		}
	}
	cr.Delivered = delivered
	cr.Epoch = epoch
	if err != nil {
		return cr, fmt.Errorf("repro: cluster query: %w", err)
	}
	return cr, nil
}

// streamShard issues one shard's query and feeds its emission lines to
// st.ch in stream order.
func (c *Cluster) streamShard(ctx context.Context, i int, req cluster.ShardQueryRequest, st *shardStream) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := c.newRequest(ctx, http.MethodPost, i, "/v1/cluster/shard/query", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	sawTrailer := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e cluster.Emission
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("bad stream line %q: %v", line, err)
		}
		if e.V != nil {
			select {
			case st.ch <- e.V:
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		var tr cluster.ShardQueryTrailer
		if err := json.Unmarshal(line, &tr); err != nil {
			return fmt.Errorf("bad trailer %q: %v", line, err)
		}
		if tr.Error != "" {
			return errors.New(tr.Error)
		}
		if !tr.Done {
			return errors.New("stream trailer reports not done")
		}
		st.trailer = tr
		sawTrailer = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawTrailer {
		return errors.New("stream ended without a trailer")
	}
	return nil
}

// ClusterUpdateResult reports a routed update.
type ClusterUpdateResult struct {
	// Epoch is the cluster epoch now serving queries.
	Epoch uint64
	// Added, Removed, Vertices and Edges are the cluster-wide effective
	// change — shard 0's view, whose suffix range starts at color 0 and
	// therefore holds the full edge set.
	Added    int64
	Removed  int64
	Vertices int
	Edges    int64
	// MergeIOs sums the per-shard delta-merge costs. Unlike query
	// statistics it scales with the cluster: suffix replication
	// re-merges an edge once per holding shard.
	MergeIOs uint64
}

// Update routes a Delta through the cluster: each edge is forwarded to
// every shard whose suffix view holds it (all shards whose range starts
// at or below the edge's endpoint-color minimum), staged with a
// two-phase commit, and committed everywhere before the cluster epoch
// advances. Update holds the coordinator's write lock, so no query
// overlaps the install — combined with the epoch pinned on every shard
// request, a gathered stream can never mix generations. The routed
// result leaves each shard's sub-image byte-identical to a fresh
// Partition of the updated graph (the repo's update-equals-rebuild
// contract, per shard).
//
// If a prepare fails, the update is aborted everywhere and the cluster
// is unchanged. If a commit fails after others committed, Update
// returns an error and leaves the epoch unadvanced; the cluster is
// degraded — subsequent queries fail on the epoch mismatch instead of
// silently mixing — and the coordinator's commit is idempotent per
// update id, so re-issuing the same Update repairs the lagging shards.
func (c *Cluster) Update(ctx context.Context, d Delta) (ClusterUpdateResult, error) {
	var ur ClusterUpdateResult
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ur, ErrClusterClosed
	}
	col := c.man.Coloring()
	S := len(c.urls)
	subAdd := make([][][2]uint32, S)
	subRemove := make([][][2]uint32, S)
	route := func(edges []Edge, into [][][2]uint32) {
		for _, e := range edges {
			cu, cv := col.Color(e[0]), col.Color(e[1])
			if cv < cu {
				cu = cv
			}
			for i := 0; i < S && c.man.Holds(i, cu); i++ {
				into[i] = append(into[i], e)
			}
		}
	}
	route(d.Add, subAdd)
	route(d.Remove, subRemove)

	target := c.epoch + 1
	phase := func(preq cluster.ShardUpdateRequest) ([]cluster.ShardUpdateResponse, error) {
		resps := make([]cluster.ShardUpdateResponse, S)
		errs := make([]error, S)
		var wg sync.WaitGroup
		for i := 0; i < S; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := preq
				if req.Phase == cluster.PhasePrepare {
					req.Add, req.Remove = subAdd[i], subRemove[i]
				}
				errs[i] = c.postJSON(ctx, i, "/v1/cluster/shard/update", req, &resps[i])
			}(i)
		}
		wg.Wait()
		var err error
		for i, e := range errs {
			if e != nil {
				err = errors.Join(err, fmt.Errorf("shard %d: %w", i, e))
			}
		}
		return resps, err
	}

	base := cluster.ShardUpdateRequest{UpdateID: target, Epoch: c.epoch}
	base.Phase = cluster.PhasePrepare
	if _, err := phase(base); err != nil {
		base.Phase = cluster.PhaseAbort
		phase(base) // best-effort cleanup; the prepare error is the story
		return ur, fmt.Errorf("repro: cluster update prepare: %w", err)
	}
	base.Phase = cluster.PhaseCommit
	resps, err := phase(base)
	if err != nil {
		return ur, fmt.Errorf("repro: cluster update commit failed; the cluster is degraded until this update is re-issued: %w", err)
	}
	c.epoch = target
	c.vertices, c.edges = resps[0].Vertices, resps[0].Edges
	ur.Epoch = target
	ur.Added, ur.Removed = resps[0].Added, resps[0].Removed
	ur.Vertices, ur.Edges = resps[0].Vertices, resps[0].Edges
	for _, r := range resps {
		ur.MergeIOs += r.MergeIOs
	}
	return ur, nil
}

// newRequest builds a shard request with the handle's auth token.
func (c *Cluster) newRequest(ctx context.Context, method string, i int, path string, body io.Reader) (*http.Request, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.urls[i]+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

func (c *Cluster) getJSON(ctx context.Context, i int, path string, out any) error {
	req, err := c.newRequest(ctx, http.MethodGet, i, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Cluster) postJSON(ctx context.Context, i int, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := c.newRequest(ctx, http.MethodPost, i, path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeHTTPError turns a non-200 shard response into an error carrying
// the server's JSON error body when it has one.
func decodeHTTPError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
}

// fromClusterStats converts wire statistics to the public IOStats.
func fromClusterStats(s cluster.IOStats) IOStats {
	return IOStats{
		BlockReads:     s.BlockReads,
		BlockWrites:    s.BlockWrites,
		WordReads:      s.WordReads,
		WordWrites:     s.WordWrites,
		PeakLeaseWords: s.PeakLeaseWords,
		PeakDiskWords:  s.PeakDiskWords,
	}
}

// addIOStats accumulates wire statistics into a public aggregate.
func addIOStats(dst *IOStats, s cluster.IOStats) {
	dst.BlockReads += s.BlockReads
	dst.BlockWrites += s.BlockWrites
	dst.WordReads += s.WordReads
	dst.WordWrites += s.WordWrites
	dst.PeakLeaseWords += s.PeakLeaseWords
	if s.PeakDiskWords > 0 {
		dst.PeakDiskWords += s.PeakDiskWords
	}
}
