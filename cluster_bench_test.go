package repro_test

import (
	"bytes"
	"testing"

	"repro"
)

// BenchmarkE23Cluster measures the scatter–gather cluster layer (E23 in
// EXPERIMENTS.md): one triangle query gathered over two real HTTP shard
// servers, against the single-process ordered run of the same graph it
// must be byte-identical to. Every iteration re-checks the identity —
// the oracle that makes the numbers meaningful — and fails on any
// divergence of the stream or of the deterministic aggregates.
//
// Reported metrics: clusterIOs (the placement-invariant cluster-wide
// aggregate: per-tuple sub-build CanonIOs plus enumeration block
// transfers, summed over shards) and singleIOs (the one-process ordered
// query's block transfers) — the ratio is the I/O price of executing
// the decomposition as independent exactly-accounted sub-instances;
// plus subproblems and matches. Wall-clock includes the HTTP hop and
// the k-way merge.
func BenchmarkE23Cluster(b *testing.B) {
	g, err := repro.Build(repro.FromSpec("gnm:n=600,m=4000"), repro.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()

	manifestPath, urls := startCluster(b, g, 2, 4, false)
	cl := dial(b, manifestPath, urls)
	q := Q{Seed: 5}
	want, res := orderedRef(b, g, "triangles", 0, nil, q)
	var agg string

	b.ResetTimer()
	var cr repro.ClusterResult
	for i := 0; i < b.N; i++ {
		var got []byte
		got, cr = gather(b, cl, "triangles", 0, nil, q)
		if !bytes.Equal(got, want) {
			b.Fatal("gathered stream diverged from the single-process ordered query")
		}
		if key := aggKey(cr); agg == "" {
			agg = key
		} else if key != agg {
			b.Fatalf("aggregate drifted between iterations:\n%s\n%s", agg, key)
		}
	}
	b.StopTimer()

	clusterIOs := cr.CanonIOs + cr.Stats.BlockReads + cr.Stats.BlockWrites
	singleIOs := res.Stats.BlockReads + res.Stats.BlockWrites
	b.ReportMetric(float64(clusterIOs), "clusterIOs")
	b.ReportMetric(float64(singleIOs), "singleIOs")
	b.ReportMetric(float64(cr.Subproblems), "subproblems")
	b.ReportMetric(float64(cr.Matches), "matches")
}
