// Cluster invariance suite: the scatter–gather layer's contract, pinned
// end to end over real HTTP shard servers.
//
// The contract under test: for any shard count S, the gathered stream
// of a cluster query is byte-identical to a single-process Query.Ordered
// run of the full graph at every Workers value, and the aggregate
// simulated IOs summed over shards are a pure function of (graph,
// manifest, query) — never of process placement, shard count, backing
// store, or concurrency.
//
// This file lives in package repro_test (not repro) because it imports
// internal/serve for the shard server side; the root package itself
// must not depend on serve.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// startCluster partitions g into S shards under a fresh directory and
// serves each sub-image on its own httptest server. When memoryBacked,
// the shard handles are rebuilt in memory from the sub-image edge sets
// instead of serving the durable images directly — the gathered stream
// must not care.
func startCluster(t testing.TB, g *repro.Graph, shards, colors int, memoryBacked bool) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	pr, err := repro.Partition(context.Background(), g, repro.PartitionOptions{Dir: dir, Shards: shards, Colors: colors})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	man, err := cluster.Load(pr.ManifestPath)
	if err != nil {
		t.Fatalf("loading manifest: %v", err)
	}
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		sg, _, err := repro.Open(pr.Shards[i].Image, repro.Options{})
		if err != nil {
			t.Fatalf("opening shard %d: %v", i, err)
		}
		if memoryBacked {
			var es [][2]uint32
			if err := sg.EdgesFunc(nil, func(u, v uint32) { es = append(es, [2]uint32{u, v}) }); err != nil {
				t.Fatal(err)
			}
			if err := sg.Close(); err != nil {
				t.Fatal(err)
			}
			sg, err = repro.Build(repro.FromEdges(es), repro.Options{
				MemoryWords: man.MemoryWords, BlockWords: man.BlockWords,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		srv := serve.New(serve.Config{})
		if err := srv.ServeShard(man, i, sg); err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(func() { srv.Close() })
		urls[i] = hs.URL
	}
	return pr.ManifestPath, urls
}

func dial(t testing.TB, manifestPath string, urls []string) *repro.Cluster {
	t.Helper()
	cl, err := repro.DialCluster(context.Background(), manifestPath, urls, repro.DialOptions{})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// orderedRef encodes the single-process Query.Ordered stream of g with
// the wire encoder — the byte string every gathered stream must equal.
func orderedRef(t testing.TB, g *repro.Graph, kind string, k int, pat *repro.Pattern, q Q) ([]byte, repro.Result) {
	t.Helper()
	q.Ordered = true
	var buf bytes.Buffer
	var res repro.Result
	q.Result = &res
	var err error
	switch kind {
	case "triangles":
		_, err = g.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
			buf.Write(serve.AppendEmission(nil, []uint32{a, b, c}))
		})
	case "cliques":
		_, err = g.CliquesFunc(context.Background(), k, q, func(vs []uint32) {
			buf.Write(serve.AppendEmission(nil, vs))
		})
	case "match":
		_, err = g.MatchFunc(context.Background(), pat, q, func(vs []uint32) {
			buf.Write(serve.AppendEmission(nil, vs))
		})
	}
	if err != nil {
		t.Fatalf("reference %s query: %v", kind, err)
	}
	return buf.Bytes(), res
}

// Q aliases repro.Query for brevity in table literals.
type Q = repro.Query

// gather runs one cluster query and encodes the gathered stream with
// the wire encoder.
func gather(t testing.TB, cl *repro.Cluster, kind string, k int, pat *repro.Pattern, q Q) ([]byte, repro.ClusterResult) {
	t.Helper()
	var buf bytes.Buffer
	var cr repro.ClusterResult
	var err error
	switch kind {
	case "triangles":
		cr, err = cl.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
			buf.Write(serve.AppendEmission(nil, []uint32{a, b, c}))
		})
	case "cliques":
		cr, err = cl.CliquesFunc(context.Background(), k, q, func(vs []uint32) {
			buf.Write(serve.AppendEmission(nil, vs))
		})
	case "match":
		cr, err = cl.MatchFunc(context.Background(), pat, q, func(vs []uint32) {
			buf.Write(serve.AppendEmission(nil, vs))
		})
	}
	if err != nil {
		t.Fatalf("gathered %s query: %v", kind, err)
	}
	return buf.Bytes(), cr
}

// aggKey is the placement-invariant aggregate of a gathered query: if
// any of this varies with S, Workers, or backing store, the cluster's
// cost accounting has leaked its topology.
func aggKey(cr repro.ClusterResult) string {
	return fmt.Sprintf("m=%d sub=%d builds=%d canon=%d stats=%+v v=%d e=%d",
		cr.Matches, cr.Subproblems, cr.Builds, cr.CanonIOs, cr.Stats, cr.Vertices, cr.Edges)
}

// TestClusterByteIdentity is the tentpole contract: S ∈ {1,2,4} ×
// Workers ∈ {1,4}, gathered triangle stream byte-identical to the
// single-process ordered query, aggregates identical across every cell.
func TestClusterByteIdentity(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=300,m=1600"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	want, _ := orderedRef(t, g, "triangles", 0, nil, Q{Seed: 7})

	var agg string
	for _, S := range []int{1, 2, 4} {
		manPath, urls := startCluster(t, g, S, 4, false)
		cl := dial(t, manPath, urls)
		for _, workers := range []int{1, 4} {
			got, cr := gather(t, cl, "triangles", 0, nil, Q{Seed: 7, Workers: workers})
			if !bytes.Equal(got, want) {
				t.Fatalf("S=%d workers=%d: gathered stream diverges from the single-process ordered stream", S, workers)
			}
			if cr.Epoch != 0 || cr.Delivered != cr.Matches {
				t.Fatalf("S=%d workers=%d: trailer epoch/delivered wrong: %+v", S, workers, cr)
			}
			if key := aggKey(cr); agg == "" {
				agg = key
			} else if key != agg {
				t.Fatalf("S=%d workers=%d: aggregate IOs changed with placement:\n got %s\nwant %s", S, workers, key, agg)
			}
			if len(cr.Shards) != S {
				t.Fatalf("S=%d: trailer has %d shard runs", S, len(cr.Shards))
			}
		}
	}
}

// TestClusterKindsAndLimit covers cliques and match gathering, plus the
// Limit contract: a limited gather is a prefix of the stream while the
// aggregates still describe the full enumeration.
func TestClusterKindsAndLimit(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=150,m=900"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	manPath, urls := startCluster(t, g, 2, 4, false)
	cl := dial(t, manPath, urls)

	for _, tc := range []struct {
		kind string
		k    int
		pat  *repro.Pattern
	}{
		{kind: "cliques", k: 4},
		{kind: "match", pat: repro.PatternDiamond},
		{kind: "match", pat: repro.PatternPath3},
	} {
		want, _ := orderedRef(t, g, tc.kind, tc.k, tc.pat, Q{Seed: 3})
		got, _ := gather(t, cl, tc.kind, tc.k, tc.pat, Q{Seed: 3, Workers: 2})
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: gathered stream diverges from single-process ordered stream", tc.kind)
		}
	}

	full, fullCR := gather(t, cl, "triangles", 0, nil, Q{})
	if fullCR.Matches < 8 {
		t.Fatalf("test graph too sparse: %d triangles", fullCR.Matches)
	}
	lim, limCR := gather(t, cl, "triangles", 0, nil, Q{Limit: 5})
	lines := bytes.SplitAfter(full, []byte("\n"))
	var prefix []byte
	for i := 0; i < 5; i++ {
		prefix = append(prefix, lines[i]...)
	}
	if !bytes.Equal(lim, prefix) {
		t.Fatal("limited gather is not a prefix of the full gathered stream")
	}
	if limCR.Delivered != 5 || limCR.Matches != fullCR.Matches {
		t.Fatalf("limited trailer: delivered=%d matches=%d, want 5/%d", limCR.Delivered, limCR.Matches, fullCR.Matches)
	}
	if aggKey(limCR) != aggKey(fullCR) {
		t.Fatal("a Limit changed the aggregate statistics (shards must enumerate fully)")
	}
}

// TestClusterBackingStoreInvariance: disk-backed and memory-backed
// shard handles serve byte-identical gathered streams with identical
// aggregates.
func TestClusterBackingStoreInvariance(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=200,m=1100"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	manDisk, urlsDisk := startCluster(t, g, 2, 4, false)
	manMem, urlsMem := startCluster(t, g, 2, 4, true)
	clDisk := dial(t, manDisk, urlsDisk)
	clMem := dial(t, manMem, urlsMem)

	sDisk, crDisk := gather(t, clDisk, "triangles", 0, nil, Q{Seed: 9})
	sMem, crMem := gather(t, clMem, "triangles", 0, nil, Q{Seed: 9})
	if !bytes.Equal(sDisk, sMem) {
		t.Fatal("gathered stream depends on the shards' backing store")
	}
	if aggKey(crDisk) != aggKey(crMem) {
		t.Fatalf("aggregates depend on the shards' backing store:\n disk %s\n mem  %s", aggKey(crDisk), aggKey(crMem))
	}
}

// TestClusterRoutedUpdate: a routed update leaves the cluster
// answering exactly like a cluster freshly partitioned from the updated
// graph — and like a single-process ordered query of it.
func TestClusterRoutedUpdate(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=120,m=700"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	manPath, urls := startCluster(t, g, 2, 4, false)
	cl := dial(t, manPath, urls)

	delta := repro.Delta{
		Add:    [][2]uint32{{1, 2}, {3, 200}, {200, 201}, {2, 3}},
		Remove: [][2]uint32{{0, 1}, {5, 9}},
	}
	ur, err := cl.Update(context.Background(), delta)
	if err != nil {
		t.Fatalf("routed update: %v", err)
	}
	if ur.Epoch != 1 || cl.Epoch() != 1 {
		t.Fatalf("epoch after one update = %d/%d, want 1", ur.Epoch, cl.Epoch())
	}

	// The updated single-process truth.
	if _, err := g.Update(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	want, _ := orderedRef(t, g, "triangles", 0, nil, Q{Seed: 4})
	got, gotCR := gather(t, cl, "triangles", 0, nil, Q{Seed: 4})
	if !bytes.Equal(got, want) {
		t.Fatal("post-update gathered stream diverges from the updated graph's ordered stream")
	}
	if gotCR.Epoch != 1 {
		t.Fatalf("post-update query ran at epoch %d, want 1", gotCR.Epoch)
	}
	if gotCR.Vertices != g.NumVertices() || gotCR.Edges != g.NumEdges() {
		t.Fatalf("post-update cluster describes %d/%d, graph is %d/%d",
			gotCR.Vertices, gotCR.Edges, g.NumVertices(), g.NumEdges())
	}

	// Routed update equals rebuild: a cluster partitioned fresh from the
	// updated graph gathers the same bytes with the same aggregates.
	manPath2, urls2 := startCluster(t, g, 2, 4, false)
	cl2 := dial(t, manPath2, urls2)
	got2, cr2 := gather(t, cl2, "triangles", 0, nil, Q{Seed: 4})
	if !bytes.Equal(got, got2) {
		t.Fatal("routed-updated cluster and freshly-partitioned cluster gather different streams")
	}
	if aggKey(gotCR) != aggKey(cr2) {
		t.Fatalf("routed-updated cluster and fresh partition disagree on aggregates:\n upd   %s\n fresh %s",
			aggKey(gotCR), aggKey(cr2))
	}
}

// TestClusterMixedGenerationNeverObserved: queries racing a routed
// update each see exactly the pre-update or the post-update stream —
// never a mix of shard generations.
func TestClusterMixedGenerationNeverObserved(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=120,m=700"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	manPath, urls := startCluster(t, g, 2, 4, false)
	cl := dial(t, manPath, urls)

	delta := repro.Delta{Add: [][2]uint32{{1, 2}, {2, 3}, {1, 3}, {7, 8}}, Remove: [][2]uint32{{0, 1}}}
	pre, _ := orderedRef(t, g, "triangles", 0, nil, Q{Seed: 5})
	g2, err := repro.Build(repro.FromSpec("gnm:n=120,m=700"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if _, err := g2.Update(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	post, _ := orderedRef(t, g2, "triangles", 0, nil, Q{Seed: 5})

	const queriers = 4
	results := make(chan []byte, queriers*4)
	errs := make(chan error, queriers*4)
	start := make(chan struct{})
	done := make(chan struct{})
	for w := 0; w < queriers; w++ {
		go func() {
			<-start
			for i := 0; i < 4; i++ {
				var buf bytes.Buffer
				_, err := cl.TrianglesFunc(context.Background(), Q{Seed: 5}, func(a, b, c uint32) {
					buf.Write(serve.AppendEmission(nil, []uint32{a, b, c}))
				})
				if err != nil {
					errs <- err
				} else {
					results <- buf.Bytes()
				}
			}
			done <- struct{}{}
		}()
	}
	close(start)
	if _, err := cl.Update(context.Background(), delta); err != nil {
		t.Fatalf("update racing queries: %v", err)
	}
	for w := 0; w < queriers; w++ {
		<-done
	}
	close(results)
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query failed: %v", err)
	}
	var sawPre, sawPost bool
	for stream := range results {
		switch {
		case bytes.Equal(stream, pre):
			sawPre = true
		case bytes.Equal(stream, post):
			sawPost = true
		default:
			t.Fatal("a concurrent query observed a stream that is neither the pre- nor the post-update stream")
		}
	}
	_ = sawPre
	if !sawPost {
		// The update committed before the last round of queries, so at
		// least one must have seen the new generation.
		t.Log("note: no query observed the post-update stream (all raced ahead of the commit)")
	}
}

// TestClusterEpochPinning: a second coordinator that has not seen a
// routed update gets a clean epoch-mismatch failure, not stale or mixed
// results.
func TestClusterEpochPinning(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=100,m=500"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	manPath, urls := startCluster(t, g, 2, 4, false)
	cl1 := dial(t, manPath, urls)
	cl2 := dial(t, manPath, urls)

	if _, err := cl1.Update(context.Background(), repro.Delta{Add: [][2]uint32{{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	_, err = cl2.TrianglesFunc(context.Background(), Q{}, nil)
	if err == nil {
		t.Fatal("stale coordinator's query succeeded; want an epoch mismatch")
	}
	if !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("stale coordinator failed with %v; want an epoch mismatch", err)
	}
}

// TestClusterShardExactlyOnce: summing the per-shard Delivered counts
// reproduces the global count at every S — each match is owned by
// exactly one shard.
func TestClusterShardExactlyOnce(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=250,m=1400"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var res repro.Result
	if _, err := g.TrianglesFunc(context.Background(), Q{Result: &res}, nil); err != nil {
		t.Fatal(err)
	}
	for _, S := range []int{2, 4} {
		manPath, urls := startCluster(t, g, S, 4, false)
		cl := dial(t, manPath, urls)
		_, cr := gather(t, cl, "triangles", 0, nil, Q{})
		var sum uint64
		for _, sh := range cr.Shards {
			sum += sh.Delivered
		}
		if sum != res.Triangles || cr.Matches != res.Triangles {
			t.Fatalf("S=%d: shard deliveries sum to %d, matches %d, single-process %d", S, sum, cr.Matches, res.Triangles)
		}
	}
}

// TestClusterTinyGraph: a graph with fewer edges than shards leaves
// some sub-images empty; empty shards still participate (epochs, empty
// sorted streams) and the gathered result stays exact.
func TestClusterTinyGraph(t *testing.T) {
	g, err := repro.Build(repro.FromEdges([][2]uint32{{1, 2}, {2, 3}, {1, 3}}), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	want, _ := orderedRef(t, g, "triangles", 0, nil, Q{})
	manPath, urls := startCluster(t, g, 4, 4, false)
	cl := dial(t, manPath, urls)
	got, cr := gather(t, cl, "triangles", 0, nil, Q{})
	if !bytes.Equal(got, want) {
		t.Fatal("tiny-graph gathered stream diverges from the ordered stream")
	}
	if cr.Matches != 1 {
		t.Fatalf("the one triangle gathered %d times", cr.Matches)
	}
	// A routed update through the empty shards works too.
	if _, err := cl.Update(context.Background(), repro.Delta{Add: [][2]uint32{{3, 4}, {1, 4}}}); err != nil {
		t.Fatalf("routed update with empty sub-deltas: %v", err)
	}
	if cl.Epoch() != 1 {
		t.Fatalf("epoch = %d after update", cl.Epoch())
	}
}

// TestPartitionManifestRoundtrip: the manifest records what Partition
// did, and DialCluster rejects a shard serving the wrong range.
func TestPartitionManifestRoundtrip(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("gnm:n=100,m=500"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	manPath, urls := startCluster(t, g, 2, 4, false)
	man, err := cluster.Load(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if man.Colors != 4 || len(man.Shards) != 2 || man.Edges != g.NumEdges() {
		t.Fatalf("manifest does not describe the partition: %+v", man)
	}
	// Swapped URLs ↔ shard identity mismatch must be refused at dial.
	if _, err := repro.DialCluster(context.Background(), manPath, []string{urls[1], urls[0]}, repro.DialOptions{}); err == nil {
		t.Fatal("DialCluster accepted shards served in the wrong slots")
	}
	if !reflect.DeepEqual([]string{urls[0], urls[1]}, urls) {
		t.Fatal("unreachable")
	}
}
