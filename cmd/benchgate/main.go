// Command benchgate compares two `go test -bench` outputs and fails when
// a watched benchmark regresses beyond a threshold, and converts bench
// output to JSON for the per-commit perf-trajectory artifact.
//
// Usage:
//
//	benchgate -match 'E10|E13|E15' -metric IOs -max-regress 20 old.txt new.txt
//	benchgate -json new.txt > BENCH_<sha>.json
//
// The default gated metric is the simulated block-I/O count ("IOs"), which
// this repository's benchmarks report as a custom metric: unlike ns/op on
// a shared CI runner, it is deterministic for a fixed seed, so a >20%
// change is a real algorithmic regression, never scheduler noise.
// Benchmarks present in only one input (newly added or retired) are
// skipped; CI is expected to compare against a freshly regenerated
// baseline from the PR's base commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark line: its name, iteration count, and every
// reported "value unit" metric pair (ns/op included).
type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var (
		match      = flag.String("match", ".", "regexp of benchmark names to gate")
		metric     = flag.String("metric", "IOs", "metric to gate on (benchmarks lacking it are skipped)")
		maxRegress = flag.Float64("max-regress", 20, "maximum allowed regression in percent")
		jsonOut    = flag.Bool("json", false, "emit one input file's results as JSON instead of comparing")
	)
	flag.Parse()

	if *jsonOut {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("benchgate -json needs exactly one bench output file"))
		}
		results, err := parseFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 2 {
		fatal(fmt.Errorf("benchgate needs two bench output files: old new"))
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fatal(fmt.Errorf("bad -match regexp: %w", err))
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	new_, err := parseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	regressions, compared := gate(old, new_, re, *metric, *maxRegress)
	fmt.Printf("benchgate: compared %d benchmarks on %q (threshold +%.0f%%)\n", compared, *metric, *maxRegress)
	for _, r := range regressions {
		fmt.Println("  REGRESSION " + r)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
	if compared == 0 {
		if len(old) == 0 {
			// The baseline produced no parseable benchmarks (e.g. it
			// predates the suite, or CI substituted an empty file after a
			// baseline failure): nothing to gate, by design.
			fmt.Println("benchgate: baseline has no benchmarks; skipping gate")
			return
		}
		// Both sides ran benchmarks yet nothing matched the watched set
		// and metric — a rename or a lost metric would otherwise turn the
		// gate into a permanent green no-op.
		fatal(fmt.Errorf("no benchmark matched -match %q with metric %q in both inputs; gate is guarding nothing", *match, *metric))
	}
}

// gate compares the watched metric of every benchmark present in both
// result sets and returns the regression report lines.
func gate(old, new_ []benchResult, match *regexp.Regexp, metric string, maxRegress float64) (regressions []string, compared int) {
	oldBy := make(map[string]benchResult, len(old))
	for _, r := range old {
		oldBy[r.Name] = r
	}
	names := make([]string, 0, len(new_))
	newBy := make(map[string]benchResult, len(new_))
	for _, r := range new_ {
		newBy[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !match.MatchString(name) {
			continue
		}
		o, ok := oldBy[name]
		if !ok {
			continue // newly added benchmark: nothing to compare against
		}
		ov, ook := o.Metrics[metric]
		nv, nok := newBy[name].Metrics[metric]
		if !ook || !nok || ov <= 0 {
			continue
		}
		compared++
		if change := (nv/ov - 1) * 100; change > maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s %.0f -> %.0f (%+.1f%%, limit +%.0f%%)", name, metric, ov, nv, change, maxRegress))
		}
	}
	return regressions, compared
}

func parseFile(path string) ([]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []benchResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// parseLine parses one benchmark result line of `go test -bench` output:
// a name starting with "Benchmark", an iteration count, and then (value,
// unit) pairs.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
