package main

import (
	"regexp"
	"testing"
)

const oldBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE10Sorting/multiway-8         	       1	  52589021 ns/op	      2713 IOs
BenchmarkE13ParallelWorkers/workers=1  	       1	8478859423 ns/op	    117006 IOs	        25 subproblems
BenchmarkE15ParallelSort/multiway/workers=2         	       1	  47668261 ns/op	      2713 IOs
BenchmarkRetired 	       1	  100 ns/op	      50 IOs
PASS
ok  	repro	25.607s
`

const newBench = `BenchmarkE10Sorting/multiway-8         	       1	  60000000 ns/op	      2713 IOs
BenchmarkE13ParallelWorkers/workers=1  	       1	8400000000 ns/op	    150000 IOs	        25 subproblems
BenchmarkE15ParallelSort/multiway/workers=2         	       1	  47000000 ns/op	      3200 IOs
BenchmarkE16New 	       1	  100 ns/op	      70 IOs
`

func parse(t *testing.T, s string) []benchResult {
	t.Helper()
	var out []benchResult
	for _, line := range regexp.MustCompile(`\n`).Split(s, -1) {
		if r, ok := parseLine(line); ok {
			out = append(out, r)
		}
	}
	return out
}

func TestParseLine(t *testing.T) {
	rs := parse(t, oldBench)
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4", len(rs))
	}
	r := rs[1]
	if r.Name != "BenchmarkE13ParallelWorkers/workers=1" || r.Iters != 1 {
		t.Fatalf("bad result %+v", r)
	}
	if r.Metrics["IOs"] != 117006 || r.Metrics["subproblems"] != 25 || r.Metrics["ns/op"] != 8478859423 {
		t.Fatalf("bad metrics %+v", r.Metrics)
	}
}

func TestGate(t *testing.T) {
	old, new_ := parse(t, oldBench), parse(t, newBench)
	re := regexp.MustCompile(`E10|E13|E15`)

	// E13 regresses by 28%, E15 by 18%, E10 is flat: one regression at
	// the 20% threshold. Retired/new benchmarks are skipped silently.
	regressions, compared := gate(old, new_, re, "IOs", 20)
	if compared != 3 {
		t.Errorf("compared %d benchmarks, want 3", compared)
	}
	if len(regressions) != 1 || !regexp.MustCompile(`E13.*117006 -> 150000`).MatchString(regressions[0]) {
		t.Errorf("regressions = %q, want exactly the E13 IOs jump", regressions)
	}

	// At a 10% threshold E15's +18% trips as well.
	regressions, _ = gate(old, new_, re, "IOs", 10)
	if len(regressions) != 2 {
		t.Errorf("threshold 10%%: got %d regressions, want 2: %q", len(regressions), regressions)
	}

	// Gating on a metric no benchmark reports compares nothing (main
	// treats compared==0 with a non-empty baseline as a gate error).
	if _, compared := gate(old, new_, re, "widgets", 20); compared != 0 {
		t.Errorf("compared %d on a missing metric, want 0", compared)
	}
}
