// Command doccheck is the repository's documentation gate, run by the
// CI docs job (`make docs`). It enforces two invariants with no
// dependencies beyond the standard library:
//
//  1. Markdown link integrity: every relative link in every *.md file
//     under -root resolves — the target file exists, and a #fragment
//     resolves to a heading anchor of the target (GitHub slug rules:
//     lowercase, punctuation stripped, spaces to hyphens, -N suffixes
//     for duplicates). External links (with a URL scheme) are not
//     fetched.
//
//  2. Godoc coverage: every `go doc`-visible exported identifier of the
//     package at -pkg — package clause, functions, types, methods, and
//     const/var declarations — carries a doc comment. A const/var group
//     may be documented at the group level or per spec.
//
// Usage:
//
//	doccheck            # -root . -pkg . : check the whole repo
//	doccheck -root docs # links only under docs/
//	doccheck -pkg ""    # skip the godoc gate
//
// Exit status is non-zero if any check fails; every failure is listed.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "directory tree whose *.md files are link-checked")
	pkg := flag.String("pkg", ".", "directory of the Go package whose exported godoc coverage is gated (empty = skip)")
	// The retrieved reference artifacts (paper abstract, related-work
	// dump, code snippets) carry links into documents that were never
	// vendored; they are source material, not this repo's documentation.
	skip := flag.String("skip", "PAPER.md,PAPERS.md,SNIPPETS.md", "comma-separated markdown basenames exempt from link checking")
	flag.Parse()
	skipSet := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skipSet[s] = true
		}
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	if err := checkLinks(*root, skipSet, fail); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if *pkg != "" {
		if err := checkGodoc(*pkg, fail); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println(f)
		}
		fmt.Printf("doccheck: %d failure(s)\n", len(failures))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// linkRE matches inline markdown links and images: [text](target) /
// ![alt](target). Reference-style links are rare in this repo and not
// checked.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)`)

// codeFenceRE strips fenced code blocks before link extraction, so
// example snippets containing bracket syntax are not treated as links.
var codeFenceRE = regexp.MustCompile("(?s)```.*?```|`[^`\n]*`")

// checkLinks verifies every relative markdown link under root, except
// in files whose basename is in skip.
func checkLinks(root string, skip map[string]bool, fail func(string, ...any)) error {
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") && !skip[filepath.Base(path)] {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(mdFiles)

	// Anchor tables are built lazily, once per target file.
	anchors := map[string]map[string]bool{}
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := anchors[path]; ok {
			return a, nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a := headingAnchors(string(b))
		anchors[path] = a
		return a, nil
	}

	for _, md := range mdFiles {
		b, err := os.ReadFile(md)
		if err != nil {
			return err
		}
		text := codeFenceRE.ReplaceAllString(string(b), "")
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := md
			if file != "" {
				resolved = filepath.Join(filepath.Dir(md), file)
				st, err := os.Stat(resolved)
				if err != nil {
					fail("%s: broken link %q: %v", md, target, err)
					continue
				}
				if st.IsDir() {
					if frag != "" {
						fail("%s: link %q has a fragment but targets a directory", md, target)
					}
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.EqualFold(filepath.Ext(resolved), ".md") {
				continue // anchors into non-markdown files are not checkable
			}
			a, err := anchorsOf(resolved)
			if err != nil {
				return err
			}
			if !a[strings.ToLower(frag)] {
				fail("%s: link %q: no heading anchor #%s in %s", md, target, frag, resolved)
			}
		}
	}
	return nil
}

// headingAnchors extracts the GitHub-style anchor slugs of a markdown
// document's headings.
func headingAnchors(text string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		title := strings.TrimLeft(trimmed, "#")
		if title == trimmed || (title != "" && title[0] != ' ' && title[0] != '\t') {
			continue // not a heading (e.g. "#include")
		}
		slug := slugify(strings.TrimSpace(title))
		if n := seen[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		seen[slug]++
	}
	return out
}

// slugify lowercases, drops everything but letters, digits, spaces,
// hyphens and underscores, and turns spaces into hyphens — GitHub's
// heading-anchor rules, close enough for ASCII-plus-punctuation
// headings like this repo's.
func slugify(title string) string {
	title = strings.ReplaceAll(title, "`", "")
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// checkGodoc parses the package in dir and reports every exported,
// go doc-visible identifier without a doc comment.
func checkGodoc(dir string, fail func(string, ...any)) error {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fmt.Errorf("no Go files in %s", dir)
	}
	p, err := doc.NewFromFiles(fset, files, "repro")
	if err != nil {
		return err
	}

	if strings.TrimSpace(p.Doc) == "" {
		fail("package %s: missing package doc comment", p.Name)
	}
	checkValues := func(kind string, vals []*doc.Value) {
		for _, v := range vals {
			if strings.TrimSpace(v.Doc) != "" {
				continue
			}
			// No group doc: every exported spec must be documented
			// itself.
			for _, spec := range v.Decl.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				documented := vs.Doc != nil || vs.Comment != nil
				for _, n := range vs.Names {
					if n.IsExported() && !documented {
						fail("%s %s: missing doc comment", kind, n.Name)
					}
				}
			}
		}
	}
	checkFuncs := func(fns []*doc.Func, owner string) {
		for _, f := range fns {
			if !ast.IsExported(f.Name) {
				continue
			}
			if strings.TrimSpace(f.Doc) == "" {
				if owner != "" {
					fail("method %s.%s: missing doc comment", owner, f.Name)
				} else {
					fail("func %s: missing doc comment", f.Name)
				}
			}
		}
	}
	checkValues("const", p.Consts)
	checkValues("var", p.Vars)
	checkFuncs(p.Funcs, "")
	for _, t := range p.Types {
		if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
			fail("type %s: missing doc comment", t.Name)
		}
		checkValues("const", t.Consts)
		checkValues("var", t.Vars)
		checkFuncs(t.Funcs, "")
		checkFuncs(t.Methods, t.Name)
	}
	return nil
}
