package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func collect() (fail func(string, ...any), got *[]string) {
	var failures []string
	return func(format string, args ...any) {
		failures = append(failures, format)
		_ = args
	}, &failures
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Quick start":               "quick-start",
		"The `repro` package":       "the-repro-package",
		"E20: daemon round-trip":    "e20-daemon-round-trip",
		"Cursor & resume semantics": "cursor--resume-semantics",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeadingAnchors(t *testing.T) {
	doc := "# Title\n\n## Setup\n\n```sh\n# not a heading\n```\n\n## Setup\n\n#include <no>\n"
	a := headingAnchors(doc)
	for _, want := range []string{"title", "setup", "setup-1"} {
		if !a[want] {
			t.Errorf("missing anchor %q in %v", want, a)
		}
	}
	if a["not-a-heading"] || a["include-no"] {
		t.Errorf("false anchors in %v", a)
	}
}

func TestCheckLinksFindsBreakage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good.md", "# Good\n\nSee [other](other.md#here) and [ext](https://example.com/x).\n")
	write("other.md", "# Here\n")
	write("bad.md", "[gone](missing.md) and [noanchor](other.md#nope)\n\n`[code](not-a.md)`\n")
	write("SKIPPED.md", "[gone too](also-missing.md)\n")

	fail, failures := collect()
	if err := checkLinks(dir, map[string]bool{"SKIPPED.md": true}, fail); err != nil {
		t.Fatal(err)
	}
	if len(*failures) != 2 {
		t.Fatalf("want 2 failures (missing file + missing anchor), got %d", len(*failures))
	}
}

func TestCheckGodocFindsGaps(t *testing.T) {
	dir := t.TempDir()
	src := `package p

// Documented is fine.
func Documented() {}

func Bare() {}

type Undoc struct{}

// T is documented.
type T struct{}

func (T) Method() {}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fail, failures := collect()
	if err := checkGodoc(dir, fail); err != nil {
		t.Fatal(err)
	}
	// Missing: package doc, func Bare, type Undoc, method T.Method.
	if len(*failures) != 4 {
		t.Fatalf("want 4 failures, got %d: %v", len(*failures), *failures)
	}
	joined := strings.Join(*failures, "\n")
	for _, want := range []string{"package", "func %s", "type %s", "method %s.%s"} {
		if !strings.Contains(joined, want) {
			t.Errorf("failure formats missing %q: %v", want, *failures)
		}
	}
}
