// Command graphgen writes a generated workload graph to an edge file that
// cmd/trienum can load.
//
// Usage:
//
//	graphgen -gen powerlaw:n=100000,m=800000,beta=2.2 -seed 7 -out pl.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	gen := flag.String("gen", "", "graph spec (see repro.Generate)")
	out := flag.String("out", "", "output path")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	if *gen == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: need -gen and -out")
		os.Exit(2)
	}
	edges, err := repro.Generate(*gen, *seed)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := repro.WriteEdgeFile(f, edges); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d edges to %s\n", len(edges), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
