// Command ioexp regenerates the experiment tables in EXPERIMENTS.md: one
// table per theorem/lemma of the paper, measured on the simulated
// external-memory machine.
//
// Usage:
//
//	ioexp            # run everything (several minutes)
//	ioexp -exp E4    # run one experiment
//	ioexp -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/expt"
)

var experimentIDs = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "EA1"}

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experimentIDs {
			t, err := expt.ByID(id)
			if err != nil {
				continue
			}
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}

	ids := experimentIDs
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		t, err := expt.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("   (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
