// Command trienum enumerates the triangles of a graph on a simulated
// external-memory machine and reports I/O statistics.
//
// Usage:
//
//	trienum -gen clique:n=100 -algo cacheaware -m 65536 -b 128
//	trienum -in graph.bin -algo oblivious -list
//	trienum -gen gnm:n=10000,m=80000 -algo all
//	trienum -gen powerlaw:n=12000,m=64000 -workers 8 -workerstats
//
// For the cacheaware and deterministic algorithms, -workers runs the
// independent subproblems and the sort(E) substrate (canonicalization and
// color-pair ordering, via the parallel external-memory sorts of
// internal/emsort) on a worker pool; the triangle stream and aggregated
// I/O statistics are identical at every worker count, only wall-clock
// time changes. The scaling is measured by BenchmarkE13ParallelWorkers /
// BenchmarkE14ParallelDeterministic (engine), BenchmarkE15ParallelSort
// (sorts standalone) and BenchmarkE16ParallelPipeline (sorts
// in-pipeline); see `go test -bench='E13|E14|E15|E16'` at the repo root.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		gen     = flag.String("gen", "", "graph spec, e.g. clique:n=100 or gnm:n=1000,m=8000 (see repro.Generate)")
		in      = flag.String("in", "", "edge file to load (as written by graphgen)")
		algo    = flag.String("algo", "cacheaware", "algorithm name or 'all'")
		m       = flag.Int("m", 1<<16, "internal memory size M in words")
		b       = flag.Int("b", 1<<7, "block size B in words")
		seed    = flag.Uint64("seed", 1, "seed for randomized algorithms and generators")
		list    = flag.Bool("list", false, "print each triangle")
		disk    = flag.String("disk", "", "back external memory with this file instead of RAM")
		workers = flag.Int("workers", 0, "parallel workers for cacheaware/deterministic subproblems and sorts (0 = one per CPU)")
		wstats  = flag.Bool("workerstats", false, "print the per-worker I/O breakdown")
	)
	flag.Parse()

	edges, err := loadEdges(*gen, *in, *seed)
	if err != nil {
		fatal(err)
	}

	algos := []repro.Algorithm{}
	if *algo == "all" {
		algos = repro.Algorithms()
	} else {
		a, err := repro.ParseAlgorithm(*algo)
		if err != nil {
			fatal(err)
		}
		algos = append(algos, a)
	}

	for _, a := range algos {
		cfg := repro.Config{
			Algorithm:   a,
			MemoryWords: *m,
			BlockWords:  *b,
			Seed:        *seed,
			DiskPath:    *disk,
			Workers:     *workers,
		}
		var emit func(x, y, z uint32)
		if *list {
			emit = func(x, y, z uint32) { fmt.Printf("%d %d %d\n", x, y, z) }
		}
		res, err := repro.Enumerate(edges, cfg, emit)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s V=%-8d E=%-9d triangles=%-10d IOs=%-9d (reads=%d writes=%d) canonIOs=%d peakDisk=%d words workers=%d\n",
			a, res.Vertices, res.Edges, res.Triangles, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, res.Stats.PeakDiskWords, res.Workers)
		if *wstats {
			for i, w := range res.WorkerStats {
				fmt.Printf("  worker %-3d IOs=%-9d (reads=%d writes=%d)\n", i, w.IOs(), w.BlockReads, w.BlockWrites)
			}
		}
	}
}

func loadEdges(gen, in string, seed uint64) ([][2]uint32, error) {
	switch {
	case gen != "" && in != "":
		return nil, fmt.Errorf("trienum: -gen and -in are mutually exclusive")
	case gen != "":
		return repro.Generate(gen, seed)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(in, ".txt") || strings.HasSuffix(in, ".edges") {
			return repro.ReadTextEdges(f)
		}
		return repro.ReadEdgeFile(f)
	default:
		return nil, fmt.Errorf("trienum: need -gen or -in (try -gen clique:n=50)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
