// Command trienum enumerates the triangles — or, with -k / -pattern, the
// k-cliques and pattern embeddings of Section 6 — of a graph on a
// simulated external-memory machine and reports I/O statistics.
//
// Usage:
//
//	trienum -gen clique:n=100 -algo cacheaware -m 65536 -b 128
//	trienum -in graph.bin -algo oblivious -list
//	trienum -gen gnm:n=10000,m=80000 -algo all
//	trienum -gen powerlaw:n=12000,m=64000 -workers 8 -workerstats
//	trienum -gen planted:n=5000,m=20000,k=12 -k 4
//	trienum -gen gnm:n=2000,m=16000 -pattern diamond -timeout 5s
//	trienum -gen gnm:n=2000,m=16000 -update "+1-2,+2-3,+1-3,-0-5"
//	trienum -gen gnm:n=2000,m=16000 -disk graph.img   # build a durable image
//	trienum -open graph.img -algo all                  # adopt it later
//
// The graph is built once (one O(sort(E)) canonicalization, repro.Build)
// and every requested query runs against the same handle, so `-algo all`
// and mixed triangle/clique/pattern invocations pay the build exactly
// once — the canonIOs column repeats the one-time cost.
//
// -open adopts an existing canonical image (one written by a previous
// -disk run, promoted on exit) via repro.Open instead of building: no
// canonicalization at all — the open line reports the adoption scan and
// any write-ahead-log records replayed after a crash — and the queries
// run immediately. -open is mutually exclusive with -gen/-in/-disk, and
// -b must match the image's block size (its default is adopted from the
// image).
//
// -update applies a batched edge delta to the handle before the queries
// run: a comma-separated list of "+u-v" (add) and "-u-v" (remove) ops,
// merged against the frozen canonical image as one repro.Delta and
// installed as a new generation (the update line reports the effective
// changes and the merge's I/O cost, which for small deltas is well below
// re-canonicalizing). Queries then run on the updated generation,
// byte-identical to a fresh build of the updated edge set.
//
// For the cacheaware and deterministic algorithms, -workers runs the
// independent subproblems and the sort(E) substrate (canonicalization and
// color-pair ordering, via the parallel external-memory sorts of
// internal/emsort) on a worker pool; the triangle stream and aggregated
// I/O statistics are identical at every worker count, only wall-clock
// time changes. The scaling is measured by BenchmarkE13ParallelWorkers /
// BenchmarkE14ParallelDeterministic (engine), BenchmarkE15ParallelSort
// (sorts standalone) and BenchmarkE16ParallelPipeline (sorts
// in-pipeline); see EXPERIMENTS.md at the repo root.
//
// -timeout arms a context deadline: queries stop cooperatively (between
// subproblems), report the partial counts, and exit non-zero.
//
// -native runs every query natively on the canonical image (the fast
// path, repro.ModeNative): same decomposition, same results in the same
// order, but the simulated block-transfer accounting is compiled out —
// the IOs columns print 0. Use it to time the algorithms; drop it to
// measure them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		gen     = flag.String("gen", "", "graph spec, e.g. clique:n=100 or gnm:n=1000,m=8000 (see repro.Generate)")
		in      = flag.String("in", "", "edge file to load (as written by graphgen)")
		algo    = flag.String("algo", "cacheaware", "algorithm name or 'all'")
		m       = flag.Int("m", 1<<16, "internal memory size M in words")
		b       = flag.Int("b", 1<<7, "block size B in words")
		seed    = flag.Uint64("seed", 1, "seed for randomized algorithms and generators")
		list    = flag.Bool("list", false, "print each triangle/clique/embedding")
		disk    = flag.String("disk", "", "back external memory with this file instead of RAM")
		workers = flag.Int("workers", 0, "parallel workers for cacheaware/deterministic subproblems and sorts (0 = one per CPU)")
		wstats  = flag.Bool("workerstats", false, "print the per-worker I/O breakdown")
		kFlag   = flag.Int("k", 0, "also enumerate k-cliques (k >= 3) via the Section 6 extension")
		pattern = flag.String("pattern", "", "also enumerate a predefined pattern: triangle, path3, cycle4, diamond, k4, star3, house")
		timeout = flag.Duration("timeout", time.Duration(0), "cancel queries cooperatively after this duration (0 = none)")
		update  = flag.String("update", "", `apply an edge delta before querying: comma-separated "+u-v" adds and "-u-v" removes`)
		open    = flag.String("open", "", "adopt an existing canonical image instead of building (see repro.Open)")
		native  = flag.Bool("native", false, "run queries natively on the canonical image: same results, no simulated I/O accounting (IOs print as 0)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var g *repro.Graph
	if *open != "" {
		// Adopt a durable image: no canonicalization, replay the WAL if a
		// crash left one behind.
		if *gen != "" || *in != "" || *disk != "" {
			fatal(fmt.Errorf("trienum: -open is mutually exclusive with -gen/-in/-disk"))
		}
		blockWords := *b
		if !flagSet("b") {
			blockWords = 0 // adopt the image's block size
		}
		var ores repro.OpenResult
		var err error
		g, ores, err = repro.Open(*open, repro.Options{
			MemoryWords: *m,
			BlockWords:  blockWords,
			Workers:     *workers,
			Seed:        *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s generation=%d V=%d E=%d adoptIOs=%d replayed=%d replayIOs=%d cleaned=%d\n",
			"open", ores.Generation, ores.Vertices, ores.Edges, ores.AdoptIOs, ores.Replayed, ores.ReplayIOs, ores.Cleaned)
	} else {
		src, err := edgeSource(*gen, *in)
		if err != nil {
			fatal(err)
		}
		// One build, many queries: the canonicalization runs exactly once.
		g, err = repro.Build(src, repro.Options{
			MemoryWords: *m,
			BlockWords:  *b,
			Workers:     *workers,
			Seed:        *seed,
			DiskPath:    *disk,
		})
		if err != nil {
			fatal(err)
		}
	}
	defer g.Close()

	if *update != "" {
		delta, err := parseDelta(*update)
		if err != nil {
			fatal(err)
		}
		res, err := g.Update(ctx, delta)
		if err != nil {
			fatal(fmt.Errorf("update: %w", err))
		}
		fmt.Printf("%-14s generation=%d added=%d removed=%d V=%d E=%d mergeIOs=%d\n",
			"update", res.Generation, res.Added, res.Removed, res.Vertices, res.Edges, res.MergeIOs)
	}

	algos := []repro.Algorithm{}
	if *algo == "all" {
		algos = repro.Algorithms()
	} else {
		a, err := repro.ParseAlgorithm(*algo)
		if err != nil {
			fatal(err)
		}
		algos = append(algos, a)
	}

	mode := repro.ModeAuto
	if *native {
		mode = repro.ModeNative
	}

	for _, a := range algos {
		q := repro.Query{Algorithm: a, Seed: *seed, Mode: mode}
		var emit func(x, y, z uint32)
		if *list {
			emit = func(x, y, z uint32) { fmt.Printf("%d %d %d\n", x, y, z) }
		}
		res, err := g.TrianglesFunc(ctx, q, emit)
		if err != nil {
			fatal(fmt.Errorf("%v after %d triangles: %w", a, res.Matches, err))
		}
		fmt.Printf("%-14s V=%-8d E=%-9d triangles=%-10d IOs=%-9d (reads=%d writes=%d) canonIOs=%d peakDisk=%d words workers=%d\n",
			a, res.Vertices, res.Edges, res.Triangles, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, res.Stats.PeakDiskWords, res.Workers)
		if *wstats {
			for i, w := range res.WorkerStats {
				fmt.Printf("  worker %-3d IOs=%-9d (reads=%d writes=%d)\n", i, w.IOs(), w.BlockReads, w.BlockWrites)
			}
		}
	}

	if *kFlag > 0 {
		emit := listEmit(*list)
		res, err := g.CliquesFunc(ctx, *kFlag, repro.Query{Seed: *seed, Mode: mode}, emit)
		if err != nil {
			fatal(fmt.Errorf("k=%d after %d cliques: %w", *kFlag, res.Matches, err))
		}
		fmt.Printf("%-14s V=%-8d E=%-9d cliques=%-12d IOs=%-9d (reads=%d writes=%d) canonIOs=%d colors=%d subproblems=%d (largest %d edges)\n",
			fmt.Sprintf("k=%d-clique", *kFlag), res.Vertices, res.Edges, res.Matches, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, res.Colors, res.Subproblems, res.MaxSubproblem)
	}

	if *pattern != "" {
		p, err := repro.ParsePattern(*pattern)
		if err != nil {
			fatal(err)
		}
		emit := listEmit(*list)
		res, err := g.MatchFunc(ctx, p, repro.Query{Seed: *seed, Mode: mode}, emit)
		if err != nil {
			fatal(fmt.Errorf("pattern %s after %d embeddings: %w", p, res.Matches, err))
		}
		fmt.Printf("%-14s V=%-8d E=%-9d copies=%-13d IOs=%-9d (reads=%d writes=%d) canonIOs=%d |Aut|=%d subproblems=%d (largest %d edges)\n",
			p, res.Vertices, res.Edges, res.Matches, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, p.Automorphisms(), res.Subproblems, res.MaxSubproblem)
	}
}

func listEmit(list bool) func([]uint32) {
	if !list {
		return nil
	}
	return func(vs []uint32) {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " "))
	}
}

// parseDelta parses the -update spec: comma-separated ops, each "+u-v"
// (add the edge {u, v}) or "-u-v" (remove it).
func parseDelta(spec string) (repro.Delta, error) {
	var d repro.Delta
	for _, op := range strings.Split(spec, ",") {
		op = strings.TrimSpace(op)
		if len(op) < 4 || (op[0] != '+' && op[0] != '-') {
			return repro.Delta{}, fmt.Errorf("trienum: bad -update op %q (want +u-v or -u-v)", op)
		}
		us, vs, ok := strings.Cut(op[1:], "-")
		if !ok {
			return repro.Delta{}, fmt.Errorf("trienum: bad -update op %q (want +u-v or -u-v)", op)
		}
		u, err := strconv.ParseUint(us, 10, 32)
		if err != nil {
			return repro.Delta{}, fmt.Errorf("trienum: bad -update op %q: %v", op, err)
		}
		v, err := strconv.ParseUint(vs, 10, 32)
		if err != nil {
			return repro.Delta{}, fmt.Errorf("trienum: bad -update op %q: %v", op, err)
		}
		e := repro.Edge{uint32(u), uint32(v)}
		if op[0] == '+' {
			d.Add = append(d.Add, e)
		} else {
			d.Remove = append(d.Remove, e)
		}
	}
	return d, nil
}

func edgeSource(gen, in string) (repro.Source, error) {
	switch {
	case gen != "" && in != "":
		return nil, fmt.Errorf("trienum: -gen and -in are mutually exclusive")
	case gen != "":
		return repro.FromSpec(gen), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		// The file stays open until Build has consumed it; Build reads
		// eagerly, so closing on main's exit is fine.
		if strings.HasSuffix(in, ".txt") || strings.HasSuffix(in, ".edges") {
			return repro.FromTextReader(f), nil
		}
		return repro.FromReader(f), nil
	default:
		return nil, fmt.Errorf("trienum: need -gen or -in (try -gen clique:n=50)")
	}
}

// flagSet reports whether the named flag was given on the command line
// (as opposed to holding its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
