// Command trienum enumerates the triangles — or, with -k / -pattern, the
// k-cliques and pattern embeddings of Section 6 — of a graph on a
// simulated external-memory machine and reports I/O statistics.
//
// Usage:
//
//	trienum -gen clique:n=100 -algo cacheaware -m 65536 -b 128
//	trienum -in graph.bin -algo oblivious -list
//	trienum -gen gnm:n=10000,m=80000 -algo all
//	trienum -gen powerlaw:n=12000,m=64000 -workers 8 -workerstats
//	trienum -gen planted:n=5000,m=20000,k=12 -k 4
//	trienum -gen gnm:n=2000,m=16000 -pattern diamond -timeout 5s
//
// The graph is built once (one O(sort(E)) canonicalization, repro.Build)
// and every requested query runs against the same handle, so `-algo all`
// and mixed triangle/clique/pattern invocations pay the build exactly
// once — the canonIOs column repeats the one-time cost.
//
// For the cacheaware and deterministic algorithms, -workers runs the
// independent subproblems and the sort(E) substrate (canonicalization and
// color-pair ordering, via the parallel external-memory sorts of
// internal/emsort) on a worker pool; the triangle stream and aggregated
// I/O statistics are identical at every worker count, only wall-clock
// time changes. The scaling is measured by BenchmarkE13ParallelWorkers /
// BenchmarkE14ParallelDeterministic (engine), BenchmarkE15ParallelSort
// (sorts standalone) and BenchmarkE16ParallelPipeline (sorts
// in-pipeline); see EXPERIMENTS.md at the repo root.
//
// -timeout arms a context deadline: queries stop cooperatively (between
// subproblems), report the partial counts, and exit non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		gen     = flag.String("gen", "", "graph spec, e.g. clique:n=100 or gnm:n=1000,m=8000 (see repro.Generate)")
		in      = flag.String("in", "", "edge file to load (as written by graphgen)")
		algo    = flag.String("algo", "cacheaware", "algorithm name or 'all'")
		m       = flag.Int("m", 1<<16, "internal memory size M in words")
		b       = flag.Int("b", 1<<7, "block size B in words")
		seed    = flag.Uint64("seed", 1, "seed for randomized algorithms and generators")
		list    = flag.Bool("list", false, "print each triangle/clique/embedding")
		disk    = flag.String("disk", "", "back external memory with this file instead of RAM")
		workers = flag.Int("workers", 0, "parallel workers for cacheaware/deterministic subproblems and sorts (0 = one per CPU)")
		wstats  = flag.Bool("workerstats", false, "print the per-worker I/O breakdown")
		kFlag   = flag.Int("k", 0, "also enumerate k-cliques (k >= 3) via the Section 6 extension")
		pattern = flag.String("pattern", "", "also enumerate a predefined pattern: triangle, path3, cycle4, diamond, k4, star3, house")
		timeout = flag.Duration("timeout", time.Duration(0), "cancel queries cooperatively after this duration (0 = none)")
	)
	flag.Parse()

	src, err := edgeSource(*gen, *in)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// One build, many queries: the canonicalization runs exactly once.
	g, err := repro.Build(src, repro.Options{
		MemoryWords: *m,
		BlockWords:  *b,
		Workers:     *workers,
		Seed:        *seed,
		DiskPath:    *disk,
	})
	if err != nil {
		fatal(err)
	}
	defer g.Close()

	algos := []repro.Algorithm{}
	if *algo == "all" {
		algos = repro.Algorithms()
	} else {
		a, err := repro.ParseAlgorithm(*algo)
		if err != nil {
			fatal(err)
		}
		algos = append(algos, a)
	}

	for _, a := range algos {
		q := repro.Query{Algorithm: a, Seed: *seed}
		var emit func(x, y, z uint32)
		if *list {
			emit = func(x, y, z uint32) { fmt.Printf("%d %d %d\n", x, y, z) }
		}
		res, err := g.TrianglesFunc(ctx, q, emit)
		if err != nil {
			fatal(fmt.Errorf("%v after %d triangles: %w", a, res.Matches, err))
		}
		fmt.Printf("%-14s V=%-8d E=%-9d triangles=%-10d IOs=%-9d (reads=%d writes=%d) canonIOs=%d peakDisk=%d words workers=%d\n",
			a, res.Vertices, res.Edges, res.Triangles, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, res.Stats.PeakDiskWords, res.Workers)
		if *wstats {
			for i, w := range res.WorkerStats {
				fmt.Printf("  worker %-3d IOs=%-9d (reads=%d writes=%d)\n", i, w.IOs(), w.BlockReads, w.BlockWrites)
			}
		}
	}

	if *kFlag > 0 {
		emit := listEmit(*list)
		res, err := g.CliquesFunc(ctx, *kFlag, repro.Query{Seed: *seed}, emit)
		if err != nil {
			fatal(fmt.Errorf("k=%d after %d cliques: %w", *kFlag, res.Matches, err))
		}
		fmt.Printf("%-14s V=%-8d E=%-9d cliques=%-12d IOs=%-9d (reads=%d writes=%d) canonIOs=%d colors=%d subproblems=%d (largest %d edges)\n",
			fmt.Sprintf("k=%d-clique", *kFlag), res.Vertices, res.Edges, res.Matches, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, res.Colors, res.Subproblems, res.MaxSubproblem)
	}

	if *pattern != "" {
		p, err := repro.ParsePattern(*pattern)
		if err != nil {
			fatal(err)
		}
		emit := listEmit(*list)
		res, err := g.MatchFunc(ctx, p, repro.Query{Seed: *seed}, emit)
		if err != nil {
			fatal(fmt.Errorf("pattern %s after %d embeddings: %w", p, res.Matches, err))
		}
		fmt.Printf("%-14s V=%-8d E=%-9d copies=%-13d IOs=%-9d (reads=%d writes=%d) canonIOs=%d |Aut|=%d subproblems=%d (largest %d edges)\n",
			p, res.Vertices, res.Edges, res.Matches, res.Stats.IOs(),
			res.Stats.BlockReads, res.Stats.BlockWrites, res.CanonIOs, p.Automorphisms(), res.Subproblems, res.MaxSubproblem)
	}
}

func listEmit(list bool) func([]uint32) {
	if !list {
		return nil
	}
	return func(vs []uint32) {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " "))
	}
}

func edgeSource(gen, in string) (repro.Source, error) {
	switch {
	case gen != "" && in != "":
		return nil, fmt.Errorf("trienum: -gen and -in are mutually exclusive")
	case gen != "":
		return repro.FromSpec(gen), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		// The file stays open until Build has consumed it; Build reads
		// eagerly, so closing on main's exit is fine.
		if strings.HasSuffix(in, ".txt") || strings.HasSuffix(in, ".edges") {
			return repro.FromTextReader(f), nil
		}
		return repro.FromReader(f), nil
	default:
		return nil, fmt.Errorf("trienum: need -gen or -in (try -gen clique:n=50)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
