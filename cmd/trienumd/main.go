// Command trienumd serves repro graphs over HTTP/JSON: a multi-tenant
// query daemon over the library's handle machinery (immutable shared
// cores, per-query session Spaces, MVCC generations, durable images).
//
// Usage:
//
//	trienumd -addr :7154
//	trienumd -addr :7154 -open social=social.img -build toy=gnm:n=1000,m=8000
//	trienumd -addr :7154 -max-tenant-sessions 4 -max-tenant-mwords 262144
//	trienumd -addr :7154 -pprof localhost:6060
//
// Endpoints (docs/API.md specifies the wire contract in full):
//
//	GET    /v1/graphs                   list loaded graphs
//	POST   /v1/graphs                   build or open a graph
//	GET    /v1/graphs/{id}              one graph's info
//	DELETE /v1/graphs/{id}              close and unload
//	POST   /v1/graphs/{id}/query       stream results as NDJSON
//	POST   /v1/graphs/{id}/update      apply a batched delta
//	POST   /v1/graphs/{id}/subscriptions  standing query: long-lived change stream
//	POST   /v1/graphs/{id}/checkpoint  promote the durable image
//	GET    /v1/stats                    per-tenant budgets and usage
//
// Cluster roles (the scatter–gather layer; see ARCHITECTURE.md):
//
//	trienumd -addr :7155 -shard cluster.json -shard-index 0
//	trienumd -addr :7154 -coordinator cluster.json -shards http://h0:7155,http://h1:7156
//
// A shard daemon opens its sub-image from the manifest written by
// repro.Partition and adds the /v1/cluster/shard/* endpoints; a
// coordinator daemon dials every shard and adds /v1/cluster/query,
// /v1/cluster/update and /v1/cluster/info — the gathered stream is
// byte-identical to a single-process ordered query of the full graph.
//
// -auth-token-file names a file holding a bearer token (surrounding
// whitespace trimmed); when set, every endpoint except GET /healthz
// requires "Authorization: Bearer <token>" and answers 401 otherwise,
// before the X-Tenant header is trusted. A coordinator forwards the
// same token to its shards, so one shared token secures the cluster.
//
// Query streams preserve the library's determinism contract over the
// wire: the NDJSON lines are byte-identical to the in-process callback
// query at every worker count, a limit-stopped stream returns an opaque
// cursor, and resuming with it emits exactly the uncursored stream's
// suffix. Subscription streams carry one generation-stamped ChangeSet
// line per effective update — exactly the tuples the update added and
// retracted, computed differentially — and reconnect exactly via
// after_generation. Tenants (the X-Tenant header) are
// admission-controlled budgets of concurrent sessions and session
// M-words; exhausted budgets get 429.
//
// -pprof serves the standard net/http/pprof profiling endpoints on a
// separate listener (off by default; keep it on localhost — it is
// unauthenticated). The service address never exposes the profiler.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the listener
// closes, in-flight query streams drain to their trailers (bounded by
// -shutdown-timeout), and every graph handle is closed — disk-backed
// ones checkpoint their latest generation over the image on the way
// out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// multiFlag collects repeated id=value flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		addr        = flag.String("addr", ":7154", "listen address")
		maxSessions = flag.Int("max-tenant-sessions", 0, "max concurrent sessions per tenant (0 = unlimited)")
		maxMWords   = flag.Int64("max-tenant-mwords", 0, "max total session M-words per tenant (0 = unlimited)")
		flushEvery  = flag.Int("flush-every", 0, "flush NDJSON streams every N lines (0 = default)")
		m           = flag.Int("m", 0, "MemoryWords for graphs loaded via -open/-build (0 = library default)")
		b           = flag.Int("b", 0, "BlockWords for graphs loaded via -open/-build (0 = library default)")
		workers     = flag.Int("workers", 0, "default Workers for loaded graphs (0 = one per CPU)")
		shutdownT   = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for draining active streams on shutdown")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address, e.g. localhost:6060 (off when empty)")
		authFile    = flag.String("auth-token-file", "", "file holding the bearer token every request must carry (off when empty)")
		shardMan    = flag.String("shard", "", "cluster manifest path: serve this daemon as one shard of the cluster")
		shardIndex  = flag.Int("shard-index", 0, "which manifest shard this daemon serves (with -shard)")
		coordMan    = flag.String("coordinator", "", "cluster manifest path: serve this daemon as the cluster coordinator")
		shardURLs   = flag.String("shards", "", "comma-separated shard base URLs, in manifest order (with -coordinator)")
		opens       multiFlag
		builds      multiFlag
	)
	flag.Var(&opens, "open", "id=path: adopt a durable image at boot (repeatable)")
	flag.Var(&builds, "build", "id=spec: build a memory graph from a generator spec at boot (repeatable)")
	flag.Parse()

	var authToken string
	if *authFile != "" {
		b, err := os.ReadFile(*authFile)
		if err != nil {
			log.Fatalf("-auth-token-file: %v", err)
		}
		authToken = strings.TrimSpace(string(b))
		if authToken == "" {
			log.Fatalf("-auth-token-file %s: file holds no token", *authFile)
		}
	}

	srv := serve.New(serve.Config{
		MaxTenantSessions:    *maxSessions,
		MaxTenantMemoryWords: *maxMWords,
		FlushEvery:           *flushEvery,
		AuthToken:            authToken,
	})
	opts := repro.Options{MemoryWords: *m, BlockWords: *b, Workers: *workers}
	if err := bootLoad(srv, opens, builds, opts); err != nil {
		srv.Close()
		log.Fatal(err)
	}
	if err := bootCluster(srv, *shardMan, *shardIndex, *coordMan, *shardURLs, authToken, opts); err != nil {
		srv.Close()
		log.Fatal(err)
	}

	// The profiler gets its own listener and mux so it is never exposed
	// on the service address: opt in with -pprof, point it at localhost,
	// and the query endpoints stay unprofiled and unpolluted.
	var ps *http.Server
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps = &http.Server{Addr: *pprofAddr, Handler: pmux}
		go func() {
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
		log.Printf("pprof listening on %s", *pprofAddr)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("trienumd listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("%v: draining active streams (up to %v)", sig, *shutdownT)
	case err := <-errCh:
		srv.Close()
		log.Fatal(err)
	}

	// Graceful shutdown: stop accepting, let in-flight streams run to
	// their trailers, then close every handle — Graph.Close's
	// close-guard waits for any query that outlived the HTTP drain, and
	// disk-backed handles promote their latest generation (checkpoint)
	// before the process exits.
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownT)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v (closing anyway)", err)
		hs.Close()
	}
	if ps != nil {
		ps.Close()
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("closing graphs: %v", err)
	}
	log.Printf("trienumd stopped")
}

// bootCluster configures the daemon's cluster role, if any: open the
// owned sub-image for a shard, dial the shard fleet for a coordinator.
func bootCluster(srv *serve.Server, shardMan string, shardIndex int, coordMan, shardURLs, authToken string, opts repro.Options) error {
	if shardMan != "" && coordMan != "" {
		return errors.New("-shard and -coordinator are mutually exclusive")
	}
	if shardMan != "" {
		man, err := cluster.Load(shardMan)
		if err != nil {
			return err
		}
		if shardIndex < 0 || shardIndex >= len(man.Shards) {
			return fmt.Errorf("-shard-index %d out of range (manifest has %d shards)", shardIndex, len(man.Shards))
		}
		img := man.ImagePath(shardMan, shardIndex)
		g, or, err := repro.Open(img, repro.Options{
			MemoryWords: man.MemoryWords,
			BlockWords:  man.BlockWords,
			Workers:     opts.Workers,
		})
		if err != nil {
			return fmt.Errorf("-shard: opening sub-image %s: %w", img, err)
		}
		if err := srv.ServeShard(man, shardIndex, g); err != nil {
			return errors.Join(err, g.Close())
		}
		sh := man.Shards[shardIndex]
		log.Printf("serving shard %d: colors [%d,%d) of %d, %d vertices, %d edges from %s",
			shardIndex, sh.Lo, sh.Hi, man.Colors, or.Vertices, or.Edges, img)
		return nil
	}
	if coordMan != "" {
		urls := strings.Split(shardURLs, ",")
		if shardURLs == "" || len(urls) == 0 {
			return errors.New("-coordinator needs -shards url1,url2,...")
		}
		cl, err := repro.DialCluster(context.Background(), coordMan, urls, repro.DialOptions{AuthToken: authToken})
		if err != nil {
			return err
		}
		if err := srv.ServeCoordinator(cl); err != nil {
			return errors.Join(err, cl.Close())
		}
		log.Printf("coordinating %d shards: %d colors, epoch %d, %d vertices, %d edges",
			cl.Shards(), cl.Colors(), cl.Epoch(), cl.NumVertices(), cl.NumEdges())
	}
	return nil
}

// bootLoad registers the -open and -build graphs before the listener
// starts, so they are queryable from the first request.
func bootLoad(srv *serve.Server, opens, builds multiFlag, opts repro.Options) error {
	for _, kv := range opens {
		id, path, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("-open %q: want id=path", kv)
		}
		g, or, err := repro.Open(path, opts)
		if err != nil {
			return fmt.Errorf("-open %s: %w", kv, err)
		}
		if err := srv.AddGraph(id, g, path); err != nil {
			return errors.Join(err, g.Close())
		}
		log.Printf("opened %s from %s: generation %d, %d vertices, %d edges, %d WAL records replayed",
			id, path, or.Generation, or.Vertices, or.Edges, or.Replayed)
	}
	for _, kv := range builds {
		id, spec, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("-build %q: want id=spec", kv)
		}
		g, err := repro.Build(repro.FromSpec(spec), opts)
		if err != nil {
			return fmt.Errorf("-build %s: %w", kv, err)
		}
		if err := srv.AddGraph(id, g, ""); err != nil {
			return errors.Join(err, g.Close())
		}
		log.Printf("built %s from %s: %d vertices, %d edges", id, spec, g.NumVertices(), g.NumEdges())
	}
	return nil
}
