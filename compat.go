package repro

// The one-shot compatibility surface. Enumerate and Count predate the
// Graph handle; they remain supported as thin shims over
// Build + TrianglesFunc with byte-identical emission and identical
// Result fields — including the per-algorithm CanonIOs accounting, which
// the shims reproduce by selecting the historical canonicalization path
// (parallel sorts for the parallel-capable algorithms, sequential sorts
// for the rest). Each call builds a throwaway handle and runs one query
// session on it, so concurrent Enumerate/Count calls are as independent
// as concurrent queries of one handle. One-shot callers pay the
// canonicalization on every call; callers issuing repeated queries
// should Build once instead.

// Enumerate runs the configured algorithm over the given undirected edge
// list (self-loops and duplicates are ignored) and calls emit exactly once
// per triangle. Vertices are reported with the input's ids, sorted so that
// a < b < c. A nil emit counts only.
func Enumerate(edges [][2]uint32, cfg Config, emit func(a, b, c uint32)) (Result, error) {
	cfg = cfg.withDefaults()
	parallelAlgo := cfg.Algorithm == CacheAware || cfg.Algorithm == CacheOblivious || cfg.Algorithm == Deterministic
	g, err := Build(FromEdges(edges), Options{
		MemoryWords:     cfg.MemoryWords,
		BlockWords:      cfg.BlockWords,
		Workers:         cfg.Workers,
		DiskPath:        cfg.DiskPath,
		Native:          cfg.Native,
		SequentialCanon: !parallelAlgo,
	})
	if err != nil {
		return Result{}, err
	}
	defer g.Close()
	return g.TrianglesFunc(nil, Query{
		Algorithm:  cfg.Algorithm,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		FamilySize: cfg.FamilySize,
	}, emit)
}

// Count is Enumerate without an emit callback.
func Count(edges [][2]uint32, cfg Config) (Result, error) {
	return Enumerate(edges, cfg, nil)
}
