package repro

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestEnumerateShimEquivalence pins the compatibility contract: Enumerate
// is byte-identical to Build + TrianglesFunc — same emission sequence and
// deep-equal Result — for every algorithm at every worker count, with the
// shim reproducing the historical canonicalization accounting through
// Options.SequentialCanon.
func TestEnumerateShimEquivalence(t *testing.T) {
	edges, err := Generate("powerlaw:n=400,m=3000,beta=2.1", 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		for _, workers := range []int{1, 4} {
			cfg := Config{Algorithm: alg, MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 8, Workers: workers}

			var viaShim []graph.Triple
			shimRes, err := Enumerate(edges, cfg, func(a, b, c uint32) {
				viaShim = append(viaShim, graph.Triple{V1: a, V2: b, V3: c})
			})
			if err != nil {
				t.Fatalf("%v/workers=%d: Enumerate: %v", alg, workers, err)
			}

			parallelAlgo := alg == CacheAware || alg == CacheOblivious || alg == Deterministic
			g, err := Build(FromEdges(edges), Options{
				MemoryWords:     cfg.MemoryWords,
				BlockWords:      cfg.BlockWords,
				Workers:         workers,
				SequentialCanon: !parallelAlgo,
			})
			if err != nil {
				t.Fatalf("%v/workers=%d: Build: %v", alg, workers, err)
			}
			var viaQuery []graph.Triple
			queryRes, err := g.TrianglesFunc(nil, Query{Algorithm: alg, Seed: 8, Workers: workers}, func(a, b, c uint32) {
				viaQuery = append(viaQuery, graph.Triple{V1: a, V2: b, V3: c})
			})
			g.Close()
			if err != nil {
				t.Fatalf("%v/workers=%d: TrianglesFunc: %v", alg, workers, err)
			}

			if len(viaShim) != len(viaQuery) {
				t.Fatalf("%v/workers=%d: shim emitted %d, query emitted %d", alg, workers, len(viaShim), len(viaQuery))
			}
			for i := range viaShim {
				if viaShim[i] != viaQuery[i] {
					t.Fatalf("%v/workers=%d: emission %d: shim %v, query %v", alg, workers, i, viaShim[i], viaQuery[i])
				}
			}
			// Individual WorkerStats entries are scheduling-dependent by
			// documented contract; their sum is not. Compare the Results
			// with the per-worker vectors reduced to their aggregate.
			if a, b := sumWorkerStats(shimRes), sumWorkerStats(queryRes); a != b {
				t.Errorf("%v/workers=%d: summed WorkerStats differ: shim %+v, query %+v", alg, workers, a, b)
			}
			shimRes.WorkerStats, queryRes.WorkerStats = nil, nil
			if !reflect.DeepEqual(shimRes, queryRes) {
				t.Errorf("%v/workers=%d: Results differ:\nshim:  %+v\nquery: %+v", alg, workers, shimRes, queryRes)
			}
		}
	}
}

// sumWorkerStats folds the scheduling-dependent per-worker vector into
// its scheduling-invariant aggregate (transfer and word counters only;
// peaks are per-shard high-water marks).
func sumWorkerStats(r Result) IOStats {
	var sum IOStats
	for _, w := range r.WorkerStats {
		sum.BlockReads += w.BlockReads
		sum.BlockWrites += w.BlockWrites
		sum.WordReads += w.WordReads
		sum.WordWrites += w.WordWrites
	}
	return sum
}

// TestCountMatchesEnumerate: the nil-emit path reports the same Result.
func TestCountMatchesEnumerate(t *testing.T) {
	edges, _ := Generate("gnm:n=150,m=1200", 3)
	cfg := Config{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 5}
	a, err := Count(edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(edges, cfg, func(_, _, _ uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	// Individual WorkerStats entries are scheduling-dependent (visible
	// under -cpu > 1); compare their scheduling-invariant aggregate.
	if x, y := sumWorkerStats(a), sumWorkerStats(b); x != y {
		t.Errorf("summed WorkerStats differ: Count %+v, Enumerate %+v", x, y)
	}
	a.WorkerStats, b.WorkerStats = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Count %+v differs from Enumerate %+v", a, b)
	}
}
