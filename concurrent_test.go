package repro

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// querySpec is one query of the concurrency suite: run executes it
// against the handle and returns the emission transcript plus the Result.
type querySpec struct {
	name string
	run  func(g *Graph) (string, Result, error)
}

func trianglesSpec(name string, q Query) querySpec {
	return querySpec{name: name, run: func(g *Graph) (string, Result, error) {
		var b strings.Builder
		res, err := g.TrianglesFunc(nil, q, func(a, x, c uint32) {
			fmt.Fprintf(&b, "%d,%d,%d;", a, x, c)
		})
		return b.String(), res, err
	}}
}

// concurrencySuite is the query mix of the stress test: both
// parallel-capable algorithms at Workers 1 and 4, the sequential
// algorithms, and the two subgraph query kinds — every engine the handle
// can drive, all against one core.
func concurrencySuite() []querySpec {
	specs := []querySpec{
		trianglesSpec("cacheaware/w1", Query{Seed: 9, Workers: 1}),
		trianglesSpec("cacheaware/w4", Query{Seed: 9, Workers: 4}),
		trianglesSpec("deterministic/w1", Query{Algorithm: Deterministic, Workers: 1}),
		trianglesSpec("deterministic/w4", Query{Algorithm: Deterministic, Workers: 4}),
		trianglesSpec("oblivious", Query{Algorithm: CacheOblivious, Seed: 4}),
		trianglesSpec("hutaochung", Query{Algorithm: HuTaoChung}),
		trianglesSpec("sortmerge", Query{Algorithm: SortMerge}),
		{name: "cliques4", run: func(g *Graph) (string, Result, error) {
			var b strings.Builder
			res, err := g.CliquesFunc(nil, 4, Query{Seed: 3}, func(c []uint32) {
				fmt.Fprintf(&b, "%v;", c)
			})
			return b.String(), res, err
		}},
		{name: "match/diamond", run: func(g *Graph) (string, Result, error) {
			var b strings.Builder
			res, err := g.MatchFunc(nil, PatternDiamond, Query{Seed: 11}, func(m []uint32) {
				fmt.Fprintf(&b, "%v;", m)
			})
			return b.String(), res, err
		}},
	}
	return specs
}

// normalizeResult splits a Result into its deterministic part and the
// aggregate of the scheduling-dependent per-worker vector (individual
// WorkerStats entries vary run to run by documented contract; their sum
// does not).
func normalizeResult(r Result) (Result, IOStats) {
	var sum IOStats
	for _, w := range r.WorkerStats {
		sum.BlockReads += w.BlockReads
		sum.BlockWrites += w.BlockWrites
		sum.WordReads += w.WordReads
		sum.WordWrites += w.WordWrites
	}
	r.WorkerStats = nil
	return r, sum
}

// TestConcurrentQueriesByteIdentical is the stress test of the per-query
// session model: every query of the suite, run from its own goroutine
// concurrently with all the others (several rounds each), must reproduce
// the transcript and Result of its serialized run exactly — emission
// order within the query, I/O stats, CanonIOs — at Workers 1 and 4 alike.
func TestConcurrentQueriesByteIdentical(t *testing.T) {
	g, err := Build(FromSpec("planted:n=300,m=2400,k=15"), Options{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	specs := concurrencySuite()
	type baseline struct {
		transcript string
		res        Result
		workerSum  IOStats
	}
	serial := make([]baseline, len(specs))
	for i, s := range specs {
		tr, res, err := s.run(g)
		if err != nil {
			t.Fatalf("%s: serialized run: %v", s.name, err)
		}
		nres, sum := normalizeResult(res)
		serial[i] = baseline{transcript: tr, res: nres, workerSum: sum}
		if res.Matches == 0 {
			t.Fatalf("%s: degenerate serialized run: %+v", s.name, res)
		}
	}

	const rounds = 3
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s querySpec) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tr, res, err := s.run(g)
				if err != nil {
					t.Errorf("%s: concurrent round %d: %v", s.name, r, err)
					return
				}
				nres, sum := normalizeResult(res)
				if tr != serial[i].transcript {
					t.Errorf("%s: concurrent round %d: emission transcript differs from serialized run", s.name, r)
				}
				if !reflect.DeepEqual(nres, serial[i].res) {
					t.Errorf("%s: concurrent round %d: Result differs:\nserial:     %+v\nconcurrent: %+v",
						s.name, r, serial[i].res, nres)
				}
				if sum != serial[i].workerSum {
					t.Errorf("%s: concurrent round %d: summed WorkerStats differ: %+v want %+v",
						s.name, r, sum, serial[i].workerSum)
				}
			}
		}(i, s)
	}
	wg.Wait()
}

// TestConcurrentDiskBackedSessions: a disk-backed handle serves
// concurrent queries (sessions spill scratch to per-session temp files),
// reports the identical statistics of a memory-backed handle, and leaves
// no scratch files behind.
func TestConcurrentDiskBackedSessions(t *testing.T) {
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 5}
	mem, err := Build(FromSpec("gnm:n=200,m=2000"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	want, err := mem.TrianglesFunc(nil, Query{Seed: 1, Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts.DiskPath = filepath.Join(dir, "em.bin")
	disk, err := Build(FromSpec("gnm:n=200,m=2000"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := disk.TrianglesFunc(nil, Query{Seed: 1, Workers: 2}, nil)
			if err != nil {
				t.Errorf("disk query: %v", err)
				return
			}
			nres, _ := normalizeResult(res)
			nwant, _ := normalizeResult(want)
			if !reflect.DeepEqual(nres, nwant) {
				t.Errorf("disk session Result %+v differs from memory %+v", nres, nwant)
			}
		}()
	}
	wg.Wait()

	leftovers, err := filepath.Glob(opts.DiskPath + ".q*")
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) > 0 {
		t.Errorf("session scratch files not removed: %v", leftovers)
	}
}

// TestNestedQueryFromEmit: emit callbacks and iterator bodies may issue
// follow-up queries against the same handle — the serialization lock that
// used to deadlock this pattern is gone.
func TestNestedQueryFromEmit(t *testing.T) {
	g, err := Build(FromSpec("planted:n=120,m=900,k=10"), Options{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)

		// Callback form: the first triangle triggers a nested clique query.
		nested := false
		var nestedRes Result
		if _, err := g.TrianglesFunc(nil, Query{Seed: 1}, func(_, _, _ uint32) {
			if nested {
				return
			}
			nested = true
			res, err := g.CliquesFunc(nil, 4, Query{Seed: 3}, nil)
			if err != nil {
				t.Errorf("nested query from emit: %v", err)
			}
			nestedRes = res
		}); err != nil {
			t.Errorf("outer query: %v", err)
		}
		if !nested || nestedRes.Matches == 0 {
			t.Errorf("nested query did not run (ran=%v, matches=%d)", nested, nestedRes.Matches)
		}

		// Iterator form: the loop body issues a query mid-iteration.
		count := 0
		for _, err := range g.Triangles(context.Background(), Query{Seed: 1}) {
			if err != nil {
				t.Errorf("iterator: %v", err)
				break
			}
			if count == 0 {
				if _, err := g.TrianglesFunc(nil, Query{Algorithm: HuTaoChung}, nil); err != nil {
					t.Errorf("nested query from iterator body: %v", err)
				}
			}
			count++
			if count == 3 {
				break
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("nested query deadlocked")
	}
}

// TestCloseWaitsForActiveQueries pins the refcounted Close semantics:
// Close blocks until in-flight queries drain (the gated emit holds the
// query open while Close is observed not to return), the in-flight query
// completes successfully, and queries issued after Close fail with
// ErrGraphClosed.
func TestCloseWaitsForActiveQueries(t *testing.T) {
	g, err := Build(FromSpec("clique:n=40"), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	gate := make(chan struct{})
	queryDone := make(chan Result, 1)
	go func() {
		first := true
		res, err := g.TrianglesFunc(nil, Query{Seed: 1}, func(_, _, _ uint32) {
			if first {
				first = false
				close(started)
				<-gate
			}
		})
		if err != nil {
			t.Errorf("in-flight query failed: %v", err)
		}
		queryDone <- res
	}()

	<-started
	closeDone := make(chan struct{})
	go func() {
		if err := g.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		close(closeDone)
	}()

	// Close must not return while the gated query holds its session.
	select {
	case <-closeDone:
		t.Fatal("Close returned while a query was active")
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	select {
	case <-closeDone:
	case <-time.After(60 * time.Second):
		t.Fatal("Close did not return after the query drained")
	}
	res := <-queryDone
	if res.Triangles == 0 {
		t.Errorf("in-flight query lost its result across Close: %+v", res)
	}

	if _, err := g.TrianglesFunc(nil, Query{}, nil); !errors.Is(err, ErrGraphClosed) {
		t.Errorf("query after Close: %v, want ErrGraphClosed", err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestAccessorsAfterClose pins the documented post-Close behavior of the
// canonical-metadata accessors: they keep answering with their build-time
// values.
func TestAccessorsAfterClose(t *testing.T) {
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 3}
	g, err := Build(FromSpec("gnm:n=100,m=600"), opts)
	if err != nil {
		t.Fatal(err)
	}
	nv, ne, cio, o := g.NumVertices(), g.NumEdges(), g.CanonIOs(), g.Options()
	if nv == 0 || ne == 0 || cio == 0 {
		t.Fatalf("degenerate handle: V=%d E=%d canonIOs=%d", nv, ne, cio)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumVertices(); got != nv {
		t.Errorf("NumVertices after Close: %d, want %d", got, nv)
	}
	if got := g.NumEdges(); got != ne {
		t.Errorf("NumEdges after Close: %d, want %d", got, ne)
	}
	if got := g.CanonIOs(); got != cio {
		t.Errorf("CanonIOs after Close: %d, want %d", got, cio)
	}
	if got := g.Options(); got != o {
		t.Errorf("Options after Close: %+v, want %+v", got, o)
	}
}
