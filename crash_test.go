package repro

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// The crash-injection suite: a disk-backed handle's durable state is the
// promoted image plus the write-ahead log, and the recovery contract is
// byte-identity — Open on the state a crash left behind, cut at ANY
// point, must serve a graph byte-identical to a fresh Build of exactly
// the updates whose log records survived whole. The tests simulate the
// crash by snapshotting the image and log bytes mid-life (the image at
// DiskPath stays at its last promoted generation until Close) and
// re-opening truncated and corrupted copies.

func cloneSet(s edgeSet) edgeSet {
	out := make(edgeSet, len(s))
	for e := range s {
		out[e] = struct{}{}
	}
	return out
}

// walRecordEnds returns the byte offset just past each whole record.
func walRecordEnds(t *testing.T, wal []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(wal) {
		_, n, err := graph.DecodeWALRecord(wal[off:])
		if err != nil {
			t.Fatalf("log undecodable at %d: %v", off, err)
		}
		off += n
		ends = append(ends, off)
	}
	return ends
}

// crashScenario builds a disk graph, applies the update scenario without
// ever checkpointing, and returns the simulated crash state: the
// generation-0 image bytes, the full log bytes, and the model edge set
// after each generation (models[k] = state at generation k).
func crashScenario(t *testing.T, opts Options) (img, wal []byte, models []edgeSet) {
	t.Helper()
	g, path, model := buildDiskGraph(t, "gnm:n=120,m=600", 17, opts)
	models = []edgeSet{cloneSet(model)}
	for i, d := range updateScenario(model.slice()) {
		res, err := g.Update(nil, d)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if res.Generation != uint64(i+1) {
			t.Fatalf("update %d installed generation %d, want %d", i, res.Generation, i+1)
		}
		model.apply(d)
		models = append(models, cloneSet(model))
	}
	// The crash snapshot: DiskPath still holds generation 0 (promotion
	// happens at Close/Checkpoint); the log holds every update.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wal, err = os.ReadFile(walPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return img, wal, models
}

// openCrashCopy writes the image and (cut) log into a fresh directory
// and opens it.
func openCrashCopy(t *testing.T, img, wal []byte, opts Options) (*Graph, OpenResult, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crash.img")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(path), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	opts.DiskPath = ""
	ro, or, err := Open(path, opts)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	return ro, or, path
}

// assertImageIdenticalToFresh requires the promoted image at path (the
// recovered handle must already be Closed) to carry byte-identical
// canonical artifacts to a fresh disk-backed Build of the model set:
// recovery reproduces the layout artifacts bit for bit, not just
// query-equivalent answers. Only the six persistent artifact regions are
// compared — the Raw and Work scratch regions keep whatever the build
// that wrote them left there (they depend on input order and are never
// read by queries), and the footers differ by design (Generation and
// CanonIOs record the path taken).
func assertImageIdenticalToFresh(t *testing.T, label, path string, model edgeSet, opts Options) {
	t.Helper()
	freshPath := filepath.Join(t.TempDir(), "fresh.img")
	opts.DiskPath = freshPath
	fresh, err := Build(FromEdges(model.slice()), opts)
	if err != nil {
		t.Fatalf("%s: fresh build: %v", label, err)
	}
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}

	gotMeta, gotLay, _, err := readImageMeta(path)
	if err != nil {
		t.Fatalf("%s: recovered image: %v", label, err)
	}
	wantMeta, wantLay, _, err := readImageMeta(freshPath)
	if err != nil {
		t.Fatalf("%s: fresh image: %v", label, err)
	}
	if gotMeta.EdgesLen != wantMeta.EdgesLen || gotMeta.NumVertices != wantMeta.NumVertices {
		t.Fatalf("%s: recovered image e=%d nv=%d, fresh e=%d nv=%d",
			label, gotMeta.EdgesLen, gotMeta.NumVertices, wantMeta.EdgesLen, wantMeta.NumVertices)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(freshPath)
	if err != nil {
		t.Fatal(err)
	}
	e, nv := gotMeta.EdgesLen, gotMeta.NumVertices
	regions := []struct {
		name              string
		gotBase, wantBase int64
		words             int64
	}{
		{"Dedup", gotLay.Dedup, wantLay.Dedup, e},
		{"Ends", gotLay.Ends, wantLay.Ends, 2 * e},
		{"ByDeg", gotLay.ByDeg, wantLay.ByDeg, nv},
		{"RankByID", gotLay.RankByID, wantLay.RankByID, nv},
		{"DegOut", gotLay.DegOut, wantLay.DegOut, nv},
		{"EdgeOut", gotLay.EdgeOut, wantLay.EdgeOut, e},
	}
	for _, r := range regions {
		g := got[r.gotBase*8 : (r.gotBase+r.words)*8]
		w := want[r.wantBase*8 : (r.wantBase+r.words)*8]
		if !bytes.Equal(g, w) {
			t.Fatalf("%s: recovered %s artifact differs from a fresh build", label, r.name)
		}
	}
}

// TestCrashRecoveryAtEveryWALCut cuts the write-ahead log at every
// record boundary and in the middle of every record: Open must recover
// exactly the whole records, truncate the torn tail, and serve a graph
// byte-identical to a fresh Build of the replayed set — full query-suite
// identity (Workers 1 and 4) at the boundary cuts, and promoted-image
// byte identity at every cut.
func TestCrashRecoveryAtEveryWALCut(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	img, wal, models := crashScenario(t, opts)
	ends := walRecordEnds(t, wal)
	if len(ends) != len(models)-1 {
		t.Fatalf("%d log records for %d generations", len(ends), len(models)-1)
	}

	type cut struct {
		at   int
		recs int // whole records surviving the cut
	}
	cuts := []cut{{0, 0}}
	prev := 0
	for i, e := range ends {
		cuts = append(cuts, cut{(prev + e) / 2, i}) // mid-record: record i+1 torn
		cuts = append(cuts, cut{e, i + 1})          // boundary: record i+1 whole
		prev = e
	}

	for _, c := range cuts {
		label := fmt.Sprintf("cut=%d/recs=%d", c.at, c.recs)
		ro, or, path := openCrashCopy(t, img, wal[:c.at], opts)
		if or.Generation != uint64(c.recs) || or.Replayed != c.recs {
			ro.Close()
			t.Fatalf("%s: recovered to %+v, want generation %d", label, or, c.recs)
		}
		// The torn tail must be gone: the log now ends at the last whole
		// record, so future appends extend a valid history.
		validLen := 0
		if c.recs > 0 {
			validLen = ends[c.recs-1]
		}
		st, err := os.Stat(walPath(path))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if st.Size() != int64(validLen) {
			ro.Close()
			t.Fatalf("%s: log is %d bytes after recovery, want %d", label, st.Size(), validLen)
		}
		model := models[c.recs]
		if or.Replayed > 0 && or.ReplayIOs == 0 {
			ro.Close()
			t.Fatalf("%s: replay reported zero IOs", label)
		}
		if c.at == validLen {
			// Boundary cut: full byte-identity of every query in the suite
			// against a fresh Build of the replayed set.
			assertQueriesMatchFresh(t, label, ro, model, opts)
		} else if ro.NumEdges() != int64(len(model)) {
			ro.Close()
			t.Fatalf("%s: recovered %d edges, model has %d", label, ro.NumEdges(), len(model))
		}
		if err := ro.Close(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}
		assertImageIdenticalToFresh(t, label, path, model, opts)
	}
}

// TestCrashRecoveryCorruptedRecord flips a byte inside the second log
// record: recovery must stop at the last whole record before the damage,
// never replaying anything after it (a checksummed log has no way to
// resynchronize past a torn record, and must not guess).
func TestCrashRecoveryCorruptedRecord(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	img, wal, models := crashScenario(t, opts)
	ends := walRecordEnds(t, wal)

	bad := append([]byte(nil), wal...)
	bad[ends[0]+(ends[1]-ends[0])/2] ^= 0x40
	ro, or, path := openCrashCopy(t, img, bad, opts)
	if or.Generation != 1 || or.Replayed != 1 {
		ro.Close()
		t.Fatalf("recovery past a corrupt record: %+v, want generation 1", or)
	}
	assertQueriesMatchFresh(t, "corrupt-record", ro, models[1], opts)
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	assertImageIdenticalToFresh(t, "corrupt-record", path, models[1], opts)
}

// TestRecoveredHandleKeepsUpdating: a handle recovered mid-history keeps
// accepting updates — the new records chain onto the replayed log — and
// both a second crash and a clean Close recover/promote the final
// generation exactly.
func TestRecoveredHandleKeepsUpdating(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	img, wal, models := crashScenario(t, opts)
	ends := walRecordEnds(t, wal)

	// Crash after the first update; recover; re-apply updates 2 and 3 (the
	// scenario deltas are derived from the base edge list, so the same
	// deltas replayed on the recovered handle rebuild the same history).
	ro, or, path := openCrashCopy(t, img, wal[:ends[0]], opts)
	if or.Generation != 1 {
		t.Fatalf("recovered to generation %d, want 1", or.Generation)
	}
	base := models[0].slice()
	for i, d := range updateScenario(base)[1:] {
		if _, err := ro.Update(nil, d); err != nil {
			t.Fatalf("post-recovery update %d: %v", i, err)
		}
	}
	if ro.Generation() != 3 {
		t.Fatalf("post-recovery handle at generation %d, want 3", ro.Generation())
	}

	// Second crash: image still generation 0, log = replayed record 1 plus
	// the two new appends. Recovery replays all three.
	img2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wal2, err := os.ReadFile(walPath(path))
	if err != nil {
		t.Fatal(err)
	}
	ro2, or2, _ := openCrashCopy(t, img2, wal2, opts)
	if or2.Generation != 3 || or2.Replayed != 3 {
		ro2.Close()
		t.Fatalf("second recovery: %+v, want generation 3 via 3 records", or2)
	}
	assertQueriesMatchFresh(t, "second-crash", ro2, models[3], opts)
	if err := ro2.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean close of the first recovered handle promotes generation 3.
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	reo, or3, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reo.Close()
	if or3.Generation != 3 || or3.Replayed != 0 {
		t.Fatalf("reopen after promoted recovery: %+v, want generation 3, nothing to replay", or3)
	}
	assertImageIdenticalToFresh(t, "promoted-recovery", path, models[3], opts)
}
