package repro

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueryPinsGenerationAcrossUpdate: a query that is mid-flight when an
// Update installs the next generation keeps reading the generation it
// started on, byte-identically — and a query issued after the install
// sees the new one.
func TestQueryPinsGenerationAcrossUpdate(t *testing.T) {
	edges, err := Generate("planted:n=120,m=700,k=10", 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5}
	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	q := Query{Seed: 6, Workers: 2}
	runQuery := func(h *Graph) (string, Result, error) {
		var b strings.Builder
		res, err := h.TrianglesFunc(nil, q, func(a, x, c uint32) {
			fmt.Fprintf(&b, "%d,%d,%d;", a, x, c)
		})
		return b.String(), res, err
	}
	wantTr, wantRes, err := runQuery(g)
	if err != nil {
		t.Fatal(err)
	}

	// Gate the pinned query open after its first emission, install the
	// update while it hangs, then let it finish.
	started := make(chan struct{})
	gate := make(chan struct{})
	type outcome struct {
		tr  string
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		var b strings.Builder
		first := true
		res, err := g.TrianglesFunc(nil, q, func(a, x, c uint32) {
			if first {
				first = false
				close(started)
				<-gate
			}
			fmt.Fprintf(&b, "%d,%d,%d;", a, x, c)
		})
		done <- outcome{b.String(), res, err}
	}()

	<-started
	delta := Delta{Add: [][2]uint32{{900, 901}, {901, 902}, {900, 902}}, Remove: [][2]uint32{edges[0]}}
	ures, err := g.Update(nil, delta)
	if err != nil {
		t.Fatalf("update during in-flight query: %v", err)
	}
	if ures.Generation != 1 {
		t.Fatalf("installed generation %d, want 1", ures.Generation)
	}
	close(gate)

	var got outcome
	select {
	case got = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("pinned query did not finish")
	}
	if got.err != nil {
		t.Fatalf("pinned query: %v", got.err)
	}
	if got.tr != wantTr {
		t.Fatal("pinned query transcript changed under a concurrent update")
	}
	ngot, _ := normalizeResult(got.res)
	nwant, _ := normalizeResult(wantRes)
	if !reflect.DeepEqual(ngot, nwant) {
		t.Fatalf("pinned query Result changed under a concurrent update:\nwant %+v\ngot  %+v", nwant, ngot)
	}

	// A fresh query runs on the new generation: identical to a fresh
	// build of the updated set.
	model := newEdgeSet(edges)
	model.apply(delta)
	fresh, err := Build(FromEdges(model.slice()), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	newTr, newRes, err := runQuery(g)
	if err != nil {
		t.Fatal(err)
	}
	freshTr, freshRes, err := runQuery(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if newTr != freshTr {
		t.Fatal("post-update query transcript differs from fresh build")
	}
	nnew, _ := normalizeResult(newRes)
	nfresh, _ := normalizeResult(freshRes)
	nnew.CanonIOs, nfresh.CanonIOs = 0, 0
	if !reflect.DeepEqual(nnew, nfresh) {
		t.Fatalf("post-update query Result differs from fresh build:\nupdated %+v\nfresh   %+v", nnew, nfresh)
	}
}

// TestConcurrentQueriesAcrossUpdates hammers the MVCC surface: goroutines
// query continuously while updates install new generations. Every query
// must report a Result byte-identical to the serialized baseline of
// *some* generation — identified by Result.Edges, which the scenario
// keeps distinct per generation — never a half-installed mix.
func TestConcurrentQueriesAcrossUpdates(t *testing.T) {
	edges, err := Generate("gnm:n=120,m=700", 21)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5}
	deltas := []Delta{
		{Add: [][2]uint32{{800, 801}, {801, 802}, {800, 802}}},
		{Remove: [][2]uint32{edges[0], edges[1]}},
		{Add: [][2]uint32{{803, 804}, {804, 805}}, Remove: [][2]uint32{edges[2]}},
	}

	// Serialized baselines, one per generation.
	type baseline struct {
		res Result
		sum IOStats
	}
	q := Query{Seed: 17, Workers: 2}
	byEdges := map[int64]baseline{}
	model := newEdgeSet(edges)
	addBaseline := func() {
		ref, err := Build(FromEdges(model.slice()), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		res, err := ref.TrianglesFunc(nil, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		nres, sum := normalizeResult(res)
		nres.CanonIOs = 0
		if _, dup := byEdges[nres.Edges]; dup {
			t.Fatalf("scenario broken: two generations share edge count %d", nres.Edges)
		}
		byEdges[nres.Edges] = baseline{nres, sum}
	}
	addBaseline()
	for _, d := range deltas {
		model.apply(d)
		addBaseline()
	}

	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := g.TrianglesFunc(nil, q, nil)
				if err != nil {
					t.Errorf("query under updates: %v", err)
					return
				}
				nres, sum := normalizeResult(res)
				nres.CanonIOs = 0
				want, ok := byEdges[nres.Edges]
				if !ok {
					t.Errorf("query saw unknown generation (E=%d)", nres.Edges)
					return
				}
				if !reflect.DeepEqual(nres, want.res) || sum != want.sum {
					t.Errorf("query on generation E=%d diverged from its serialized baseline", nres.Edges)
					return
				}
			}
		}()
	}
	for i, d := range deltas {
		if _, err := g.Update(nil, d); err != nil {
			t.Errorf("update %d under queries: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if g.Generation() != uint64(len(deltas)) {
		t.Fatalf("generation %d after %d updates", g.Generation(), len(deltas))
	}
}

// TestGenerationFilesLifecycle pins the disk contract: each update
// generation lives in <DiskPath>.g<n> while referenced, a superseded
// generation's file is removed the moment its last reader drains, Close
// removes the final generation's file (after promoting it over the
// image — the implicit checkpoint), and the image at DiskPath survives
// everything, now holding the latest generation rather than the
// original Build.
func TestGenerationFilesLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, DiskPath: filepath.Join(dir, "em.bin")}
	edges, err := Generate("gnm:n=100,m=500", 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		t.Fatal(err)
	}

	exists := func(path string) bool {
		m, _ := filepath.Glob(path)
		return len(m) > 0
	}
	gen1 := opts.DiskPath + ".g1"
	gen2 := opts.DiskPath + ".g2"

	if _, err := g.Update(nil, Delta{Add: [][2]uint32{{700, 701}}}); err != nil {
		t.Fatal(err)
	}
	if !exists(gen1) {
		t.Fatal("generation 1 file missing after install")
	}

	// Pin generation 1 with a gated query, then supersede it.
	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		_, err := g.TrianglesFunc(nil, Query{Seed: 2}, func(_, _, _ uint32) {
			if first {
				first = false
				close(started)
				<-gate
			}
		})
		done <- err
	}()
	<-started
	if _, err := g.Update(nil, Delta{Add: [][2]uint32{{702, 703}}}); err != nil {
		t.Fatal(err)
	}
	if !exists(gen1) {
		t.Fatal("generation 1 file removed while a query still reads it")
	}
	if !exists(gen2) {
		t.Fatal("generation 2 file missing after install")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("pinned query: %v", err)
	}
	if exists(gen1) {
		t.Fatal("generation 1 file not removed after its last reader drained")
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if exists(gen2) {
		t.Fatal("current generation file not removed by Close")
	}
	if !exists(opts.DiskPath) {
		t.Fatal("image at DiskPath removed — it must outlive the handle")
	}
	if leftovers, _ := filepath.Glob(opts.DiskPath + ".*"); len(leftovers) > 0 {
		t.Fatalf("stray files after Close: %v", leftovers)
	}
}
