package repro

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// This file makes the canonical on-disk image a first-class durable
// artifact (see FORMAT.md for the byte-level formats):
//
//   - Open adopts an existing image — validated against the
//     graph.LayoutFor address map its footer describes — and serves
//     queries immediately, without re-paying the O(sort(E))
//     canonicalization (the handle reports CanonIOs = 0);
//   - every effective Update of a disk-backed handle appends its delta
//     to a write-ahead log at <DiskPath>.wal, fsynced before the new
//     generation becomes current, so a crash between Updates replays on
//     Open to the exact generation;
//   - Checkpoint (and Close) atomically promote the current generation's
//     image over DiskPath — write a temp file, fsync, rename, fsync the
//     directory — and truncate the log it makes obsolete.
//
// The recovery contract is the library-wide byte-identity contract: the
// reopened or crash-recovered graph is byte-identical (emission, Result,
// I/O statistics) to a fresh Build of the replayed edge set at every
// Workers value, because replay runs the same deterministic MergeDelta
// the live Updates ran. The one documented divergence is
// Result.CanonIOs, which reports the cost actually paid in this process:
// 0 for the adopted image, plus the MergeIOs of any replayed or new
// updates.
//
// A durable image has a single writer: at most one live handle (Build or
// Open) may own a DiskPath at a time. Readers of a copied image are
// unrestricted.

// OpenResult reports what Open did to adopt a durable image.
type OpenResult struct {
	// Generation is the generation serving queries after the open: the
	// image's own generation plus every write-ahead-log record replayed
	// on top of it.
	Generation uint64
	// Vertices and Edges describe the adopted graph after replay.
	Vertices int
	Edges    int64
	// Replayed counts the write-ahead-log records replayed (0 when the
	// image was cleanly checkpointed or never updated).
	Replayed int
	// ReplayIOs is the total block-I/O cost of the replayed delta
	// merges — the sum of their UpdateResult.MergeIOs, deterministic and
	// worker-invariant like every merge. Compare with the CanonIOs a
	// fresh Build would have paid (BenchmarkE19Reopen does).
	ReplayIOs uint64
	// AdoptIOs is the block-I/O cost of adopting the image itself:
	// scanning the vertex table to rebind the rank→id index and verify
	// its ordering. O(scan(V)) — the "zero canonicalization IOs" of the
	// reopen path (the handle's CanonIOs stays 0 for the adopted
	// generation).
	AdoptIOs uint64
	// Cleaned counts stale handle-lifetime files of a crashed previous
	// life (session scratch <path>.q<n>, merge scratch <path>.u<n>,
	// generation images <path>.g<n>, checkpoint temps <path>.ckpt)
	// removed before adoption.
	Cleaned int
}

// Open adopts an existing canonical image — the file a disk-backed Build
// leaves at its Options.DiskPath, as promoted by Checkpoint/Close — and
// returns a Graph handle serving it, without re-paying the O(sort(E))
// canonicalization: the image footer is validated (magic, version,
// checksum, and the graph.LayoutFor size assertion), the canonical
// extents are rebound at their computed addresses, and queries run
// immediately. The adopted generation reports CanonIOs = 0 — the build
// cost was paid in a previous process — which is the one divergence from
// a fresh Build's Results.
//
// If a write-ahead log <path>.wal holds records beyond the image's
// generation — a previous process crashed between Updates — Open replays
// them in order through the same deterministic delta merges, recovering
// the exact pre-crash generation: the recovered graph is byte-identical
// (emission, Result, I/O statistics) to a fresh Build of the replayed
// edge set at every Workers value. A torn trailing record (crash during
// an append) is discarded and the log truncated at the last valid
// boundary. Stale scratch and generation files of the crashed process
// are removed.
//
// opts.BlockWords must match the image's layout block size (0 adopts
// it); opts.DiskPath, if set, must equal path. The other options are
// free — MemoryWords, Workers, and Seed are machine knobs, not image
// properties. At most one live handle may own a durable image at a time.
func Open(path string, opts Options) (*Graph, OpenResult, error) {
	var or OpenResult
	if path == "" {
		return nil, or, errors.New("repro: Open needs an image path")
	}
	if opts.DiskPath != "" && opts.DiskPath != path {
		return nil, or, fmt.Errorf("repro: Open(%q) conflicts with Options.DiskPath %q", path, opts.DiskPath)
	}
	meta, lay, coreWords, err := readImageMeta(path)
	if err != nil {
		return nil, or, err
	}
	if opts.BlockWords == 0 {
		opts.BlockWords = meta.BlockWords
	} else if opts.BlockWords != meta.BlockWords {
		return nil, or, fmt.Errorf("repro: image %s was laid out with BlockWords=%d, Options ask for %d", path, meta.BlockWords, opts.BlockWords)
	}
	opts.DiskPath = path
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, or, err
	}

	or.Cleaned, err = removeStaleSiblings(path, false)
	if err != nil {
		return nil, or, err
	}

	fc, err := extmem.NewFileCore(path)
	if err != nil {
		return nil, or, err
	}
	gen := &generation{
		gen:         meta.Generation,
		core:        fc,
		coreFile:    fc,
		coreWords:   coreWords,
		layout:      lay,
		rawLen:      meta.RawLen,
		numVertices: int(meta.NumVertices),
		edgesBase:   lay.EdgeOut,
		edgesLen:    meta.EdgesLen,
		degBase:     lay.DegOut,
		degLen:      meta.NumVertices,
		canonIOs:    0, // adoption is free; the sort(E) was paid in a previous life
		refs:        1, // the handle's current pointer
	}
	or.AdoptIOs, gen.rankToID, err = adoptRankTable(opts, gen)
	if err != nil {
		fc.Close()
		return nil, or, err
	}

	g := &Graph{opts: opts, cur: gen, persistedGen: meta.Generation}
	g.drain.L = &g.mu

	// Replay the write-ahead log past the image's generation. Records at
	// or below it are obsolete (a crash between a checkpoint's rename
	// and its log truncation leaves them behind) and are skipped; the
	// rest must chain contiguously.
	wdata, err := os.ReadFile(walPath(path))
	if err != nil && !os.IsNotExist(err) {
		g.discard()
		return nil, or, err
	}
	recs, validLen := graph.ScanWAL(wdata)
	if validLen < len(wdata) {
		// Torn tail from a crash mid-append: everything before it is the
		// durable history. Truncate so future appends extend a valid log.
		if err := os.Truncate(walPath(path), int64(validLen)); err != nil {
			g.discard()
			return nil, or, err
		}
	}
	for _, rec := range recs {
		if rec.Gen <= meta.Generation {
			continue
		}
		if rec.Gen != g.Generation()+1 {
			g.discard()
			return nil, or, fmt.Errorf("repro: %s: WAL generation %d does not follow %d", walPath(path), rec.Gen, g.Generation())
		}
		res, err := g.applyPacked(nil, rec.Adds, rec.Removes, false)
		if err != nil {
			g.discard()
			return nil, or, fmt.Errorf("repro: replaying WAL generation %d: %w", rec.Gen, err)
		}
		if res.Generation != rec.Gen {
			g.discard()
			return nil, or, fmt.Errorf("repro: WAL generation %d replayed as a no-op", rec.Gen)
		}
		or.Replayed++
		or.ReplayIOs += res.MergeIOs
	}

	or.Generation = g.Generation()
	or.Vertices = g.NumVertices()
	or.Edges = g.NumEdges()
	return g, or, nil
}

// Checkpoint durably promotes the current generation over the image at
// Options.DiskPath — write-temp, fsync, atomic rename, directory fsync —
// and truncates the write-ahead log it makes obsolete, so the next Open
// adopts the current generation directly with nothing to replay. A
// handle whose current generation is already the persisted one only
// truncates the log. Close checkpoints implicitly; call Checkpoint
// mid-life to bound replay work after a crash. Queries keep running
// throughout (the promotion only reads the frozen generation); updates
// wait, as they do for each other. Checkpoint is an error on
// memory-backed graphs and after Close.
func (g *Graph) Checkpoint() error {
	if g.opts.DiskPath == "" {
		return errors.New("repro: Checkpoint needs a disk-backed graph (Options.DiskPath)")
	}
	g.updateMu.Lock()
	defer g.updateMu.Unlock()

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrGraphClosed
	}
	cur := g.cur
	cur.refs++
	g.active++
	persisted := g.persistedGen
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		rel := g.unpinLocked(cur)
		g.mu.Unlock()
		g.releaseDetached(rel)
		g.mu.Lock()
		g.releaseRefLocked()
		g.mu.Unlock()
	}()

	if cur.gen > persisted {
		if err := g.promote(cur); err != nil {
			return err
		}
		g.mu.Lock()
		g.persistedGen = cur.gen
		g.mu.Unlock()
	}
	return g.walReset()
}

// writeImageFooter stamps a freshly written image with its durable
// footer at byte offset offsetWords*8 — just past the block-rounded
// watermark, where no session ever reads — and fsyncs, completing a
// Build's image file.
func writeImageFooter(path string, offsetWords int64, meta graph.ImageMeta) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(meta.EncodeFooter(), offsetWords*8); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readImageMeta reads and validates the footer of a durable image,
// returning its metadata, the recomputed layout, and the image size in
// words — the graph.LayoutFor assertion: the file must hold exactly the
// block-rounded layout watermark, then the footer.
func readImageMeta(path string) (graph.ImageMeta, graph.CanonLayout, int64, error) {
	fail := func(err error) (graph.ImageMeta, graph.CanonLayout, int64, error) {
		return graph.ImageMeta{}, graph.CanonLayout{}, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	size := st.Size()
	if size < graph.FooterSize || (size-graph.FooterSize)%8 != 0 {
		return fail(fmt.Errorf("repro: %s (%d bytes) is not a canonical image — truncated, or written before the durable format", path, size))
	}
	buf := make([]byte, graph.FooterSize)
	if _, err := f.ReadAt(buf, size-graph.FooterSize); err != nil {
		return fail(err)
	}
	meta, err := graph.DecodeFooter(buf)
	if err != nil {
		return fail(fmt.Errorf("repro: %s: %w", path, err))
	}
	lay, err := meta.Validate()
	if err != nil {
		return fail(fmt.Errorf("repro: %s: %w", path, err))
	}
	coreWords := meta.ImageWords(lay)
	if size != coreWords*8+graph.FooterSize {
		return fail(fmt.Errorf("repro: %s holds %d image bytes but its layout says %d — truncated or mismatched image", path, size-graph.FooterSize, coreWords*8))
	}
	return meta, lay, coreWords, nil
}

// adoptRankTable rebinds the native rank→id index from the image's ByDeg
// artifact — (deg<<32|id) records in rank order — verifying the strict
// ordering Canonicalize guarantees. The scan runs on a session machine
// over the adopted core, so its cost is exactly accounted: O(scan(V))
// block reads, reported as OpenResult.AdoptIOs.
func adoptRankTable(opts Options, gen *generation) (uint64, []uint32, error) {
	nv := int64(gen.numVertices)
	if nv == 0 {
		return 0, nil, nil
	}
	cfg := extmem.Config{M: opts.MemoryWords, B: opts.BlockWords}
	sp, err := extmem.NewSessionSpace(cfg, gen.core, gen.coreWords, "")
	if err != nil {
		return 0, nil, err
	}
	defer sp.Close()
	byDeg := sp.ExtentAt(gen.layout.ByDeg, nv)
	rankToID := make([]uint32, nv)
	var prev extmem.Word
	for r := int64(0); r < nv; r++ {
		w := byDeg.Read(r)
		if r > 0 && w <= prev {
			return 0, nil, fmt.Errorf("repro: image %s is corrupt: vertex table out of rank order at rank %d", opts.DiskPath, r)
		}
		prev = w
		rankToID[r] = uint32(w)
	}
	return sp.Stats().IOs(), rankToID, nil
}

// promote atomically replaces the image at DiskPath with gen's: copy the
// generation file plus a fresh footer into <DiskPath>.ckpt, fsync,
// rename over DiskPath, fsync the directory. A crash at any point leaves
// either the old image or the new one — never a mix — plus at worst a
// stale temp file that the next Open removes. The caller must hold a
// reference on gen (so its file cannot be removed mid-copy) and updates
// persistedGen on success.
func (g *Graph) promote(gen *generation) error {
	if gen.path == "" {
		return nil // gen is the DiskPath image itself
	}
	dst := g.opts.DiskPath
	tmp := dst + ".ckpt"
	in, err := os.Open(gen.path)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := io.CopyN(out, in, gen.coreWords*8); err != nil && err != io.EOF {
		return fail(err)
	}
	meta := graph.ImageMeta{
		BlockWords:  g.opts.BlockWords,
		RawLen:      gen.rawLen,
		EdgesLen:    gen.edgesLen,
		NumVertices: int64(gen.numVertices),
		Generation:  gen.gen,
		CanonIOs:    gen.canonIOs,
	}
	if _, err := out.WriteAt(meta.EncodeFooter(), gen.coreWords*8); err != nil {
		return fail(err)
	}
	if err := out.Sync(); err != nil {
		return fail(err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dst)
}

// walPath names the write-ahead log of a durable image.
func walPath(imagePath string) string { return imagePath + ".wal" }

// walAppend appends one record to the write-ahead log and fsyncs it —
// the durability point of an Update: once walAppend returns, the delta
// survives a crash. Called with updateMu held (appends are serialized
// like the updates that produce them). A failed partial write is rolled
// back by truncating to the pre-append offset, so the log never grows an
// unreadable middle.
func (g *Graph) walAppend(rec graph.WALRecord) error {
	if g.wal == nil {
		f, err := os.OpenFile(walPath(g.opts.DiskPath), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		g.wal = f
	}
	off, err := g.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := g.wal.Write(graph.AppendWALRecord(nil, rec)); err != nil {
		if trErr := g.wal.Truncate(off); trErr != nil {
			return errors.Join(err, trErr)
		}
		return err
	}
	return g.wal.Sync()
}

// walReset empties the write-ahead log after a checkpoint made its
// records obsolete. Called with updateMu held.
func (g *Graph) walReset() error {
	if g.wal != nil {
		if err := g.wal.Truncate(0); err != nil {
			return err
		}
		return g.wal.Sync()
	}
	if err := os.Truncate(walPath(g.opts.DiskPath), 0); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// closeWAL closes the log file handle and, when the log is obsolete
// (the current generation was promoted, or never diverged), removes the
// file — a cleanly closed image stands alone, with nothing to replay.
func (g *Graph) closeWAL(remove bool) error {
	var err error
	if g.wal != nil {
		err = g.wal.Close()
		g.wal = nil
	}
	if remove {
		if rmErr := os.Remove(walPath(g.opts.DiskPath)); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
			err = rmErr
		}
	}
	return err
}

// removeStaleSiblings removes the handle-lifetime files a crashed (or
// previous) process left next to a durable image: session scratch
// (.q<n>), merge scratch (.u<n>), generation images (.g<n>), and
// checkpoint temps (.ckpt). Build also drops the old write-ahead log —
// a rebuild starts a fresh durable life, and stale records must never
// replay onto the new image — while Open keeps it for replay.
func removeStaleSiblings(imagePath string, alsoWAL bool) (int, error) {
	patterns := []string{".q*", ".u*", ".g*", ".ckpt*"}
	if alsoWAL {
		patterns = append(patterns, ".wal")
	}
	n := 0
	for _, pat := range patterns {
		matches, err := filepath.Glob(imagePath + pat)
		if err != nil {
			return n, err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// syncDir fsyncs the directory holding path, making a just-renamed file
// durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cErr := d.Close(); err == nil {
		err = cErr
	}
	return err
}

// discard abandons a partially opened handle: mark closed, release the
// generations, keep the write-ahead log (the on-disk state is untouched
// and still recoverable by a later Open). Only used before the handle
// has been returned to a caller, so there is no concurrency to drain.
func (g *Graph) discard() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		for g.active > 0 {
			g.drain.Wait()
		}
		g.cur.refs--
		g.cur.release()
	}
	g.mu.Unlock()
	if g.wal != nil {
		g.wal.Close()
		g.wal = nil
	}
}
