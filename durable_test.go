package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildDiskGraph builds a disk-backed graph at a fresh path and returns
// the handle, the path, and the model edge set.
func buildDiskGraph(t *testing.T, spec string, seed uint64, opts Options) (*Graph, string, edgeSet) {
	t.Helper()
	edges, err := Generate(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.img")
	opts.DiskPath = path
	opts.Seed = seed
	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, path, newEdgeSet(edges)
}

// TestOpenServesWithoutCanonicalization is the tentpole contract of the
// reopen path: Open adopts a closed Build image without re-paying the
// O(sort(E)) canonicalization — the adopted generation reports
// CanonIOs = 0 and only the O(scan(V)) rank-table adoption is charged —
// and every query of the suite is byte-identical to a fresh Build.
func TestOpenServesWithoutCanonicalization(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, model := buildDiskGraph(t, "gnm:n=150,m=900", 13, opts)
	buildIOs := g.CanonIOs()
	wantV, wantE := g.NumVertices(), g.NumEdges()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if buildIOs == 0 {
		t.Fatal("build reported zero CanonIOs; the comparison below is vacuous")
	}

	ro, or, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.CanonIOs() != 0 {
		t.Fatalf("adopted image reports CanonIOs=%d, want 0 (build paid %d)", ro.CanonIOs(), buildIOs)
	}
	if or.Generation != 0 || or.Replayed != 0 || or.ReplayIOs != 0 {
		t.Fatalf("clean reopen reports %+v, want generation 0 with nothing replayed", or)
	}
	if or.Vertices != wantV || or.Edges != wantE {
		t.Fatalf("reopen reports V=%d E=%d, want V=%d E=%d", or.Vertices, or.Edges, wantV, wantE)
	}
	if or.AdoptIOs == 0 {
		t.Fatal("adopting the rank table reported zero IOs; the scan must be accounted")
	}
	if or.AdoptIOs >= buildIOs {
		t.Fatalf("adoption cost %d IOs is not below the build's %d", or.AdoptIOs, buildIOs)
	}

	// Every query — emission transcripts, Results, worker-stat sums, at
	// Workers 1 and 4 — matches a fresh Build (CanonIOs is the documented
	// divergence and is normalized inside the helper).
	assertQueriesMatchFresh(t, "reopen", ro, model, opts)

	// Options round-trip: BlockWords 0 adopts the image's layout.
	roOpts := ro.Options()
	if roOpts.BlockWords != opts.BlockWords || roOpts.DiskPath != path {
		t.Fatalf("reopened options %+v do not adopt the image", roOpts)
	}
}

// TestOpenAdoptsBlockWords pins that Open with BlockWords 0 adopts the
// image's layout block size instead of the package default.
func TestOpenAdoptsBlockWords(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, _ := buildDiskGraph(t, "gnm:n=60,m=240", 7, opts)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	ro, _, err := Open(path, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got := ro.Options().BlockWords; got != 1<<5 {
		t.Fatalf("adopted BlockWords %d, want %d", got, 1<<5)
	}
	if _, err := ro.TrianglesFunc(nil, Query{Workers: 1}, func(a, b, c uint32) {}); err != nil {
		t.Fatal(err)
	}
}

// TestClosePromotesLatestGeneration: after updates, Close atomically
// promotes the current generation over the Build image and removes the
// write-ahead log, so the next Open adopts the latest generation with
// nothing to replay.
func TestClosePromotesLatestGeneration(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, model := buildDiskGraph(t, "gnm:n=150,m=900", 13, opts)
	edges := model.slice()
	var lastGen uint64
	for i, d := range updateScenario(edges) {
		res, err := g.Update(nil, d)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		model.apply(d)
		lastGen = res.Generation
	}
	if lastGen != 3 {
		t.Fatalf("scenario installed generation %d, want 3", lastGen)
	}
	if _, err := os.Stat(walPath(path)); err != nil {
		t.Fatalf("write-ahead log missing while updates are unpromoted: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath(path)); !os.IsNotExist(err) {
		t.Fatalf("write-ahead log survives a clean Close: %v", err)
	}

	ro, or, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if or.Generation != lastGen || or.Replayed != 0 {
		t.Fatalf("reopen after promotion reports %+v, want generation %d with nothing replayed", or, lastGen)
	}
	assertQueriesMatchFresh(t, "promoted", ro, model, opts)
}

// TestCheckpointPromotesAndTruncates: a mid-life Checkpoint durably
// promotes the current generation and empties the log, bounding replay;
// updates and queries keep working afterwards.
func TestCheckpointPromotesAndTruncates(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, model := buildDiskGraph(t, "gnm:n=150,m=900", 13, opts)
	defer g.Close()
	edges := model.slice()
	deltas := updateScenario(edges)

	for _, d := range deltas[:2] {
		if _, err := g.Update(nil, d); err != nil {
			t.Fatal(err)
		}
		model.apply(d)
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(walPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("log holds %d bytes after checkpoint, want empty", st.Size())
	}

	// The image now holds generation 2: a copy opens at it directly.
	snap := filepath.Join(t.TempDir(), "snap.img")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ro, or, err := Open(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if or.Generation != 2 || or.Replayed != 0 {
		t.Fatalf("checkpoint snapshot opens at %+v, want generation 2, nothing replayed", or)
	}
	assertQueriesMatchFresh(t, "checkpoint-snapshot", ro, model, opts)
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// An idempotent re-checkpoint is a no-op; the handle keeps updating.
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Update(nil, deltas[2]); err != nil {
		t.Fatal(err)
	}
	model.apply(deltas[2])
	assertQueriesMatchFresh(t, "post-checkpoint-update", g, model, opts)
}

// TestCheckpointErrors: memory-backed handles and closed handles refuse.
func TestCheckpointErrors(t *testing.T) {
	mem, err := Build(FromSpec("gnm:n=40,m=160"), Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a memory-backed handle succeeded")
	}
	mem.Close()

	g, _, _ := buildDiskGraph(t, "gnm:n=40,m=160", 3, Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1})
	g.Close()
	if err := g.Checkpoint(); err != ErrGraphClosed {
		t.Fatalf("Checkpoint after Close: %v, want ErrGraphClosed", err)
	}
}

// TestOpenCleansStaleTempFiles: scratch, generation, and checkpoint
// leftovers of a crashed process are removed before adoption.
func TestOpenCleansStaleTempFiles(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, _ := buildDiskGraph(t, "gnm:n=60,m=240", 7, opts)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	stale := []string{path + ".q3", path + ".u7", path + ".g2", path + ".ckpt"}
	for _, s := range stale {
		if err := os.WriteFile(s, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ro, or, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if or.Cleaned != len(stale) {
		t.Fatalf("Open cleaned %d files, want %d", or.Cleaned, len(stale))
	}
	for _, s := range stale {
		if _, err := os.Stat(s); !os.IsNotExist(err) {
			t.Fatalf("stale file %s survived Open", s)
		}
	}
}

// TestOpenErrors walks the rejection paths: missing file, truncated
// image, corrupted footer, garbage file, BlockWords mismatch, and a
// conflicting Options.DiskPath.
func TestOpenErrors(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, _ := buildDiskGraph(t, "gnm:n=60,m=240", 7, opts)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name string
		path string
		opts Options
		want string
	}{
		{"missing", filepath.Join(dir, "nope.img"), opts, ""},
		{"empty-path", "", opts, "path"},
		{"truncated-tail", write("trunc.img", img[:len(img)-9]), opts, "not a canonical image"},
		{"truncated-body", write("body.img", append(append([]byte(nil), img[:len(img)/2]...), img[len(img)-64:]...)), opts, "layout says"},
		{"garbage", write("junk.img", make([]byte, 4096)), opts, "magic"},
		{"bad-footer", write("foot.img", flipByte(img, len(img)-30)), opts, "checksum"},
		{"bad-block-words", path, Options{MemoryWords: 1 << 12, BlockWords: 1 << 6, Workers: 1}, "BlockWords"},
		{"conflicting-diskpath", path, Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, DiskPath: path + ".other"}, "conflicts"},
	}
	for _, tc := range cases {
		ro, _, err := Open(tc.path, tc.opts)
		if err == nil {
			ro.Close()
			t.Fatalf("%s: Open succeeded", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// The pristine image still opens after all the rejected copies.
	ro, _, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	ro.Close()
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

// TestOpenRejectsCorruptVertexTable: a bit flipped inside the image's
// ByDeg artifact breaks the strict rank order the adoption scan verifies.
func TestOpenRejectsCorruptVertexTable(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, _ := buildDiskGraph(t, "gnm:n=60,m=240", 7, opts)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	meta, lay, _, err := readImageMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Zero the second ByDeg word: (deg<<32|id) records are strictly
	// increasing in rank order, so a zero at rank 1 must trip the scan.
	off := (lay.ByDeg + 1) * 8
	for i := 0; i < 8; i++ {
		img[off+int64(i)] = 0
	}
	bad := filepath.Join(t.TempDir(), "bad.img")
	if err := os.WriteFile(bad, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if ro, _, err := Open(bad, opts); err == nil {
		ro.Close()
		t.Fatalf("corrupt vertex table (gen %d) adopted cleanly", meta.Generation)
	} else if !strings.Contains(err.Error(), "rank order") {
		t.Fatalf("corrupt vertex table: %v, want rank-order error", err)
	}
}

// TestBuildDropsPreviousDurableLife: rebuilding at a path that has a
// write-ahead log and generation leftovers from a previous life must
// remove them — stale records must never replay onto the new image.
func TestBuildDropsPreviousDurableLife(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	g, path, model := buildDiskGraph(t, "gnm:n=60,m=240", 7, opts)
	if _, err := g.Update(nil, Delta{Add: [][2]uint32{{900, 901}}}); err != nil {
		t.Fatal(err)
	}
	// Crash: the WAL holds one record, the image is still generation 0.
	walBytes, err := os.ReadFile(walPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("effective update left no WAL record")
	}
	g.Close()
	if err := os.WriteFile(walPath(path), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".g9", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	opts.DiskPath = path
	g2, err := Build(FromEdges(model.slice()), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if _, err := os.Stat(walPath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale WAL survived a rebuild: %v", err)
	}
	if _, err := os.Stat(path + ".g9"); !os.IsNotExist(err) {
		t.Fatal("stale generation file survived a rebuild")
	}
	if g2.Generation() != 0 {
		t.Fatalf("rebuilt handle at generation %d, want 0", g2.Generation())
	}
}
