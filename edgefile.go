package repro

import (
	"encoding/binary"
	"fmt"
	"io"
)

const edgeFileMagic = uint64(0x5452_4947_5241_5048) // "TRIGRAPH"

// WriteEdgeFile stores an edge list in the library's simple binary format
// (little-endian: magic, count, then u32 pairs).
func WriteEdgeFile(w io.Writer, edges [][2]uint32) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], edgeFileMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(edges)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*len(edges))
	for i, e := range edges {
		binary.LittleEndian.PutUint32(buf[8*i:], e[0])
		binary.LittleEndian.PutUint32(buf[8*i+4:], e[1])
	}
	_, err := w.Write(buf)
	return err
}

// readChunkEdges bounds the per-read buffer of ReadEdgeFile: 1<<17 edges
// = 1 MiB. The header's count is untrusted input; memory is committed
// only as the body actually arrives, one chunk at a time.
const readChunkEdges = 1 << 17

// ReadEdgeFile loads an edge list written by WriteEdgeFile. The header's
// edge count is not trusted: the body is read in bounded chunks, so a
// forged count against a short stream fails after at most one chunk
// instead of first allocating count*8 bytes (up to 32 GiB) up front.
func ReadEdgeFile(r io.Reader) ([][2]uint32, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("repro: short edge file header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != edgeFileMagic {
		return nil, fmt.Errorf("repro: not an edge file (bad magic)")
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > 1<<32 {
		return nil, fmt.Errorf("repro: implausible edge count %d", n)
	}
	edges := make([][2]uint32, 0, min(n, readChunkEdges))
	buf := make([]byte, 8*min(n, readChunkEdges))
	for remaining := n; remaining > 0; {
		c := min(remaining, readChunkEdges)
		b := buf[:8*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("repro: short edge file body: %d of %d edges missing: %w", remaining, n, err)
		}
		for i := uint64(0); i < c; i++ {
			edges = append(edges, [2]uint32{
				binary.LittleEndian.Uint32(b[8*i:]),
				binary.LittleEndian.Uint32(b[8*i+4:]),
			})
		}
		remaining -= c
	}
	return edges, nil
}
