package repro

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// edgeFileHeader forges a header claiming n edges.
func edgeFileHeader(n uint64) []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], edgeFileMagic)
	binary.LittleEndian.PutUint64(hdr[8:], n)
	return hdr[:]
}

// TestReadEdgeFileForgedCount: a header claiming up to 2^32 edges over a
// short (or empty) body must fail fast without committing memory for the
// claimed count — the regression test for the 8*n-byte up-front
// allocation from an attacker-controlled header.
func TestReadEdgeFileForgedCount(t *testing.T) {
	for _, n := range []uint64{1, readChunkEdges + 1, 1 << 31, 1 << 32} {
		if _, err := ReadEdgeFile(bytes.NewReader(edgeFileHeader(n))); err == nil {
			t.Errorf("count=%d over empty body accepted", n)
		} else if !strings.Contains(err.Error(), "short edge file body") {
			t.Errorf("count=%d: unexpected error %v", n, err)
		}
	}
	// A body shorter than one chunk fails on the first chunk read.
	in := append(edgeFileHeader(1<<31), make([]byte, 8*100)...)
	if _, err := ReadEdgeFile(bytes.NewReader(in)); err == nil {
		t.Error("truncated body accepted")
	}
	// Over the plausibility bound.
	if _, err := ReadEdgeFile(bytes.NewReader(edgeFileHeader(1<<32 + 1))); err == nil {
		t.Error("implausible count accepted")
	} else if !strings.Contains(err.Error(), "implausible") {
		t.Error("wrong error for implausible count")
	}
}

// TestReadEdgeFileChunkBoundaries: round trips across the chunked-read
// boundaries (empty, one chunk exactly, one chunk plus one).
func TestReadEdgeFileChunkBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, readChunkEdges, readChunkEdges + 1} {
		edges := make([][2]uint32, n)
		for i := range edges {
			edges[i] = [2]uint32{uint32(i), uint32(i + 1)}
		}
		var buf bytes.Buffer
		if err := WriteEdgeFile(&buf, edges); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeFile(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(back) != n {
			t.Fatalf("n=%d: got %d edges back", n, len(back))
		}
		for i := range back {
			if back[i] != edges[i] {
				t.Fatalf("n=%d: edge %d mismatch", n, i)
			}
		}
	}
}

// FuzzReadEdgeFile: arbitrary input must never panic or over-allocate,
// and every successfully parsed file must re-serialize to an equivalent
// edge list.
func FuzzReadEdgeFile(f *testing.F) {
	good := func(edges [][2]uint32) []byte {
		var buf bytes.Buffer
		WriteEdgeFile(&buf, edges)
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(edgeFileHeader(1 << 31))
	f.Add(good(nil))
	f.Add(good([][2]uint32{{1, 2}, {3, 4}}))
	f.Add(good([][2]uint32{{0, 0}})[:17])
	f.Fuzz(func(t *testing.T, in []byte) {
		edges, err := ReadEdgeFile(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Parsed OK: the write-read round trip must be exact.
		var buf bytes.Buffer
		if err := WriteEdgeFile(&buf, edges); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeFile(&buf)
		if err != nil {
			t.Fatalf("round trip of valid parse failed: %v", err)
		}
		if len(back) != len(edges) {
			t.Fatalf("round trip length %d != %d", len(back), len(edges))
		}
		for i := range back {
			if back[i] != edges[i] {
				t.Fatalf("round trip edge %d mismatch", i)
			}
		}
	})
}
