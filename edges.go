package repro

import (
	"context"

	"repro/internal/ctxutil"
	"repro/internal/graph"
)

// EdgesFunc streams the graph's canonical edge set: every deduplicated
// edge exactly once, endpoints as the caller's original ids with u < v,
// in the canonical image's rank order — a deterministic sequence for a
// given edge set. It runs on a native session over the generation
// current at the call (so it may overlap queries and updates freely)
// and charges no simulated I/O: exporting edges is a serving-layer
// concern, like encoding a wire stream, not part of the enumeration
// cost model. ctx is checked periodically and may be nil.
//
// This is the export primitive of the cluster layer: Partition reads
// the edge set through it to build per-shard sub-images, and a shard
// server snapshots its sub-image through it before executing a query's
// color tuples.
func (g *Graph) EdgesFunc(ctx context.Context, emit func(u, v uint32)) error {
	s, err := g.acquire(true)
	if err != nil {
		return err
	}
	defer s.close()
	n := s.cg.Edges.Len()
	for i := int64(0); i < n; i++ {
		if i&0xffff == 0 {
			if err := ctxutil.Err(ctx); err != nil {
				return err
			}
		}
		w := s.cg.Edges.Read(i)
		u := s.cg.RankToID[graph.U(w)]
		v := s.cg.RankToID[graph.V(w)]
		if u > v {
			u, v = v, u
		}
		emit(u, v)
	}
	return nil
}
