package repro_test

import (
	"fmt"
	"sort"

	"repro"
)

// The basic use: enumerate the triangles of an edge list.
func ExampleEnumerate() {
	edges := [][2]uint32{
		{0, 1}, {1, 2}, {0, 2}, // triangle 0-1-2
		{2, 3}, {3, 4}, {2, 4}, // triangle 2-3-4
		{4, 5}, // dangling edge
	}
	var found [][3]uint32
	res, err := repro.Enumerate(edges, repro.Config{}, func(a, b, c uint32) {
		found = append(found, [3]uint32{a, b, c})
	})
	if err != nil {
		panic(err)
	}
	sort.Slice(found, func(i, j int) bool { return found[i][0] < found[j][0] })
	for _, t := range found {
		fmt.Println(t[0], t[1], t[2])
	}
	fmt.Println("triangles:", res.Triangles)
	// Output:
	// 0 1 2
	// 2 3 4
	// triangles: 2
}

// Counting triangles of a generated workload with an explicit machine.
func ExampleCount() {
	edges, err := repro.Generate("clique:n=20", 0)
	if err != nil {
		panic(err)
	}
	res, err := repro.Count(edges, repro.Config{
		Algorithm:   repro.CacheOblivious,
		MemoryWords: 1 << 12,
		BlockWords:  1 << 5,
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Triangles) // C(20,3)
	// Output:
	// 1140
}

// Choosing algorithms by name, e.g. from a CLI flag.
func ExampleParseAlgorithm() {
	alg, err := repro.ParseAlgorithm("deterministic")
	if err != nil {
		panic(err)
	}
	edges, _ := repro.Generate("gnm:n=64,m=256", 1)
	res, err := repro.Count(edges, repro.Config{Algorithm: alg})
	if err != nil {
		panic(err)
	}
	fmt.Println(alg, res.Triangles > 0 || res.Triangles == 0)
	// Output:
	// deterministic true
}

// All algorithms agree on every input; the randomized ones are
// deterministic in their seed.
func ExampleAlgorithms() {
	edges, _ := repro.Generate("planted:n=100,m=300,k=8", 5)
	counts := map[uint64]bool{}
	for _, alg := range repro.Algorithms() {
		res, err := repro.Count(edges, repro.Config{Algorithm: alg, Seed: 3})
		if err != nil {
			panic(err)
		}
		counts[res.Triangles] = true
	}
	fmt.Println("distinct counts across algorithms:", len(counts))
	// Output:
	// distinct counts across algorithms: 1
}
