package repro_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro"
)

// The basic use: enumerate the triangles of an edge list.
func ExampleEnumerate() {
	edges := [][2]uint32{
		{0, 1}, {1, 2}, {0, 2}, // triangle 0-1-2
		{2, 3}, {3, 4}, {2, 4}, // triangle 2-3-4
		{4, 5}, // dangling edge
	}
	var found [][3]uint32
	res, err := repro.Enumerate(edges, repro.Config{}, func(a, b, c uint32) {
		found = append(found, [3]uint32{a, b, c})
	})
	if err != nil {
		panic(err)
	}
	sort.Slice(found, func(i, j int) bool { return found[i][0] < found[j][0] })
	for _, t := range found {
		fmt.Println(t[0], t[1], t[2])
	}
	fmt.Println("triangles:", res.Triangles)
	// Output:
	// 0 1 2
	// 2 3 4
	// triangles: 2
}

// Counting triangles of a generated workload with an explicit machine.
func ExampleCount() {
	edges, err := repro.Generate("clique:n=20", 0)
	if err != nil {
		panic(err)
	}
	res, err := repro.Count(edges, repro.Config{
		Algorithm:   repro.CacheOblivious,
		MemoryWords: 1 << 12,
		BlockWords:  1 << 5,
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Triangles) // C(20,3)
	// Output:
	// 1140
}

// Choosing algorithms by name, e.g. from a CLI flag.
func ExampleParseAlgorithm() {
	alg, err := repro.ParseAlgorithm("deterministic")
	if err != nil {
		panic(err)
	}
	edges, _ := repro.Generate("gnm:n=64,m=256", 1)
	res, err := repro.Count(edges, repro.Config{Algorithm: alg})
	if err != nil {
		panic(err)
	}
	fmt.Println(alg, res.Triangles > 0 || res.Triangles == 0)
	// Output:
	// deterministic true
}

// Durability round trip: Build freezes a canonical on-disk image, Open
// adopts it in O(scan(V)) I/Os — no re-canonicalization — and queries
// against the reopened handle emit exactly what the original did.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "repro-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.img")

	// Build durably (Options.DiskPath), then release the handle.
	g, err := repro.Build(repro.FromSpec("clique:n=16"), repro.Options{DiskPath: path})
	if err != nil {
		panic(err)
	}
	bres, err := g.TrianglesFunc(context.Background(), repro.Query{}, func(a, b, c uint32) {})
	if err != nil {
		panic(err)
	}
	g.Close()

	// Open adopts the frozen image without rebuilding it.
	g2, info, err := repro.Open(path, repro.Options{})
	if err != nil {
		panic(err)
	}
	defer g2.Close()
	rres, err := g2.TrianglesFunc(context.Background(), repro.Query{}, func(a, b, c uint32) {})
	if err != nil {
		panic(err)
	}
	fmt.Println("generation:", info.Generation, "replayed:", info.Replayed)
	fmt.Println("same count after reopen:", bres.Triangles == rres.Triangles)
	fmt.Println("canonicalization IOs on reopen:", g2.CanonIOs())
	// Output:
	// generation: 0 replayed: 0
	// same count after reopen: true
	// canonicalization IOs on reopen: 0
}

// Batched mutation: Update merges a delta into a new immutable
// generation whose image — and therefore every query emission and I/O
// statistic — is byte-identical to a fresh Build of the updated edge
// set.
func ExampleGraph_Update() {
	g, err := repro.Build(repro.FromEdges([][2]uint32{
		{0, 1}, {1, 2}, // a path: no triangle yet
	}), repro.Options{})
	if err != nil {
		panic(err)
	}
	defer g.Close()

	res, err := g.Update(context.Background(), repro.Delta{
		Add:    []repro.Edge{{0, 2}, {2, 3}},
		Remove: []repro.Edge{{9, 10}}, // absent: a counted-as-zero no-op
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("generation:", res.Generation)
	fmt.Println("added:", res.Added, "removed:", res.Removed)
	qres, err := g.TrianglesFunc(context.Background(), repro.Query{}, func(a, b, c uint32) {})
	if err != nil {
		panic(err)
	}
	fmt.Println("triangles now:", qres.Triangles)
	// Output:
	// generation: 1
	// added: 2 removed: 0
	// triangles now: 1
}

// Query.Limit ends enumeration cleanly after exactly Limit emissions.
// Because the emission order is deterministic (fixed seed, any worker
// count), the limited prefix is a well-defined object — it is what the
// trienumd daemon's paginated cursors index into.
func ExampleQuery() {
	g, err := repro.Build(repro.FromSpec("clique:n=10"), repro.Options{})
	if err != nil {
		panic(err)
	}
	defer g.Close()

	q := repro.Query{Seed: 1, Limit: 4}
	var got [][3]uint32
	res, err := g.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
		got = append(got, [3]uint32{a, b, c})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered:", len(got), "of", 120) // C(10,3) without the limit
	fmt.Println("result counts the delivered prefix:", res.Triangles)
	// Output:
	// delivered: 4 of 120
	// result counts the delivered prefix: 4
}

// All algorithms agree on every input; the randomized ones are
// deterministic in their seed.
func ExampleAlgorithms() {
	edges, _ := repro.Generate("planted:n=100,m=300,k=8", 5)
	counts := map[uint64]bool{}
	for _, alg := range repro.Algorithms() {
		res, err := repro.Count(edges, repro.Config{Algorithm: alg, Seed: 3})
		if err != nil {
			panic(err)
		}
		counts[res.Triangles] = true
	}
	fmt.Println("distinct counts across algorithms:", len(counts))
	// Output:
	// distinct counts across algorithms: 1
}
