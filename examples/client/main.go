// The trienumd round trip: this example starts the daemon's HTTP
// handler in-process on a loopback listener, then drives it exactly the
// way a remote client would — build a graph over the wire, stream a
// paginated triangle query as NDJSON, resume it with the trailer's
// cursor, apply a batched update, and watch the stale cursor be refused
// (409) because the emission order it indexed belongs to the superseded
// generation.
//
// It self-checks the served stream against the same query run directly
// on the library — the daemon's contract is that the bytes match — and
// exits non-zero on any mismatch.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro"
	"repro/internal/serve"
)

type trailer struct {
	Done       bool            `json:"done"`
	Delivered  uint64          `json:"delivered"`
	Generation uint64          `json:"generation"`
	Cursor     string          `json:"cursor"`
	Result     json.RawMessage `json:"result"`
}

func main() {
	// A daemon with per-tenant budgets, as cmd/trienumd would run it.
	srv := serve.New(serve.Config{MaxTenantSessions: 4})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Build a graph over the wire.
	spec := "gnm:n=200,m=1400"
	post := func(path string, body any) *http.Response {
		b, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", base+path, bytes.NewReader(b))
		req.Header.Set("X-Tenant", "example")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		return resp
	}
	resp := post("/v1/graphs", map[string]any{"id": "g", "spec": spec, "seed": 8})
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("load: %s", resp.Status)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Page through the triangle stream: limit 25 per request, resuming
	// with the returned cursor, like a paginated list endpoint.
	var streamed []string
	cursor := ""
	pages := 0
	for {
		q := map[string]any{"seed": 3, "limit": 25}
		if cursor != "" {
			q["cursor"] = cursor
		}
		resp := post("/v1/graphs/g/query", q)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("query: %s", resp.Status)
		}
		var tr trailer
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, `"done"`) {
				if err := json.Unmarshal([]byte(line), &tr); err != nil {
					log.Fatalf("trailer: %v", err)
				}
				break
			}
			streamed = append(streamed, line)
		}
		resp.Body.Close()
		pages++
		if tr.Cursor == "" {
			break
		}
		cursor = tr.Cursor
	}

	// Reference: the same query against the library directly. The wire
	// contract says the concatenated pages equal this stream exactly.
	g, err := repro.Build(repro.FromSpec(spec), repro.Options{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	var want []string
	if _, err := g.TrianglesFunc(context.Background(), repro.Query{Seed: 3}, func(a, b, c uint32) {
		line := serve.AppendEmission(nil, []uint32{a, b, c})
		want = append(want, string(bytes.TrimSuffix(line, []byte("\n"))))
	}); err != nil {
		log.Fatal(err)
	}
	if len(streamed) != len(want) {
		log.Fatalf("paged stream has %d lines, in-process has %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			log.Fatalf("line %d: wire %q != in-process %q", i, streamed[i], want[i])
		}
	}
	fmt.Printf("paged %d triangles over %d requests; byte-identical to the in-process stream\n",
		len(streamed), pages)

	// Mint one more cursor, update the graph, and watch the daemon
	// refuse the now-stale token: its position indexes the superseded
	// generation's emission order.
	resp = post("/v1/graphs/g/query", map[string]any{"seed": 3, "limit": 5})
	var tr trailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"done"`) {
			json.Unmarshal(sc.Bytes(), &tr)
		}
	}
	resp.Body.Close()
	resp = post("/v1/graphs/g/update", map[string]any{"add": [][2]uint32{{900, 901}, {901, 902}, {900, 902}}})
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("update: %s", resp.Status)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp = post("/v1/graphs/g/query", map[string]any{"cursor": tr.Cursor})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		log.Fatalf("stale cursor: want 409 Conflict, got %s", resp.Status)
	}
	fmt.Println("update installed generation 1; stale cursor refused with 409")

	// Per-tenant usage is visible on /v1/stats.
	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		Tenants map[string]struct {
			Queries   uint64 `json:"queries"`
			Emissions uint64 `json:"emissions"`
		} `json:"tenants"`
	}
	json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	ex := stats.Tenants["example"]
	if ex.Queries == 0 || ex.Emissions == 0 {
		log.Fatalf("stats did not account the tenant: %+v", stats)
	}
	fmt.Printf("tenant \"example\": %d queries, %d emissions served\n", ex.Queries, ex.Emissions)
}
