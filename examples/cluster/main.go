// Scatter–gather over a color-partitioned cluster: this example builds
// a graph, partitions it into two sub-images by color range
// (repro.Partition), serves each sub-image from its own in-process
// shard daemon on a loopback listener — exactly what
// `trienumd -shard cluster.json -shard-index i` does — and dials a
// coordinator over both.
//
// It self-checks the cluster contract end to end and exits non-zero on
// any violation:
//
//   - the gathered triangle stream is byte-identical to the
//     single-process ordered query of the full graph;
//   - the gathered stream and its aggregate simulated I/Os are
//     invariant in the Workers value;
//   - after a routed update (two-phase commit across the shards), the
//     gathered stream equals the ordered query of the updated graph.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	const spec = "gnm:n=300,m=1800"
	g, err := repro.Build(repro.FromSpec(spec), repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	// Partition into two shards (four colors, so shard 0 owns colors
	// {0,1} and shard 1 owns {2,3}); the sub-images and cluster.json
	// land in a temp dir.
	dir, err := os.MkdirTemp("", "cluster-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pr, err := repro.Partition(context.Background(), g, repro.PartitionOptions{Dir: dir, Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %s into %d shards (%d colors):\n", spec, len(pr.Shards), pr.Colors)
	for _, sh := range pr.Shards {
		fmt.Printf("  shard %d: colors [%d,%d), %d edges\n", sh.Index, sh.LoColor, sh.HiColor, sh.Edges)
	}

	// Boot one shard daemon per sub-image, the way trienumd -shard
	// does: open the durable sub-image, serve the shard endpoints.
	man, err := cluster.Load(pr.ManifestPath)
	if err != nil {
		log.Fatal(err)
	}
	urls := make([]string, len(man.Shards))
	for i := range man.Shards {
		sg, _, err := repro.Open(man.ImagePath(pr.ManifestPath, i), repro.Options{
			MemoryWords: man.MemoryWords,
			BlockWords:  man.BlockWords,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv := serve.New(serve.Config{})
		if err := srv.ServeShard(man, i, sg); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		urls[i] = "http://" + ln.Addr().String()
	}

	// Dial the coordinator and gather a query across both shards.
	cl, err := repro.DialCluster(context.Background(), pr.ManifestPath, urls, repro.DialOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	q := repro.Query{Seed: 5}
	gathered, cres := gather(cl, q)
	want, _ := orderedRef(g, q)
	if !bytes.Equal(gathered, want) {
		log.Fatal("gathered stream is not byte-identical to the single-process ordered query")
	}
	par, pres := gather(cl, repro.Query{Seed: 5, Workers: 4})
	if !bytes.Equal(par, gathered) || pres.Stats != cres.Stats || pres.CanonIOs != cres.CanonIOs {
		log.Fatal("the gathered stream or its aggregate IOs depend on the Workers value")
	}
	fmt.Printf("gathered %d triangles over %d shards: byte-identical to the ordered single-process stream\n",
		cres.Matches, cl.Shards())
	fmt.Printf("  %d subproblems, %d built, aggregate stats %+v\n", cres.Subproblems, cres.Builds, cres.Stats)

	// Route an update through two-phase commit and re-check against the
	// same delta applied to the in-process graph.
	delta := repro.Delta{Add: [][2]uint32{{7, 9}, {9, 11}, {1, 299}}, Remove: [][2]uint32{{0, 1}}}
	ur, err := cl.Update(context.Background(), delta)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Update(context.Background(), delta); err != nil {
		log.Fatal(err)
	}
	gathered, cres = gather(cl, q)
	want, _ = orderedRef(g, q)
	if !bytes.Equal(gathered, want) {
		log.Fatal("after the routed update, the gathered stream diverges from the updated graph")
	}
	fmt.Printf("routed update installed epoch %d (+%d -%d edges): gathered stream still exact (%d triangles)\n",
		ur.Epoch, ur.Added, ur.Removed, cres.Matches)
}

// gather streams a cluster triangle query, wire-encoded like the
// daemon's NDJSON data lines.
func gather(cl *repro.Cluster, q repro.Query) ([]byte, repro.ClusterResult) {
	var buf []byte
	cres, err := cl.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
		buf = serve.AppendEmission(buf, []uint32{a, b, c})
	})
	if err != nil {
		log.Fatal(err)
	}
	return buf, cres
}

// orderedRef runs the single-process reference: the same query in the
// canonical global order, encoded identically.
func orderedRef(g *repro.Graph, q repro.Query) ([]byte, repro.Result) {
	var buf []byte
	var res repro.Result
	q.Ordered = true
	q.Result = &res
	if _, err := g.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
		buf = serve.AppendEmission(buf, []uint32{a, b, c})
	}); err != nil {
		log.Fatal(err)
	}
	return buf, res
}
