// concurrent demonstrates the per-query session model: one Graph handle
// serves several queries at once from different goroutines — triangles,
// 4-cliques, and a pattern match overlap freely, one query is cancelled
// mid-flight, and an emit callback legally issues a follow-up query
// against the same handle. The program self-checks that every concurrent
// Result equals its serialized run (the session contract: emission and
// statistics are a pure function of the query) and exits non-zero on any
// inconsistency.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"reflect"
	"sync"

	"repro"
)

func main() {
	g, err := repro.Build(repro.FromSpec("planted:n=2000,m=16000,k=25"), repro.Options{
		MemoryWords: 1 << 11,
		BlockWords:  1 << 5,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("one handle: V=%d E=%d, canonicalized once (%d I/Os)\n\n", g.NumVertices(), g.NumEdges(), g.CanonIOs())

	// Serialized baselines: each query run alone. The session model
	// guarantees the concurrent runs below reproduce these exactly.
	triSerial, err := g.TrianglesFunc(nil, repro.Query{Seed: 1}, nil)
	check(err, "triangles (serialized)")
	cliqueSerial, err := g.CliquesFunc(nil, 4, repro.Query{Seed: 2}, nil)
	check(err, "4-cliques (serialized)")
	matchSerial, err := g.MatchFunc(nil, repro.PatternDiamond, repro.Query{Seed: 5}, nil)
	check(err, "diamond match (serialized)")

	// Now all three concurrently on the same handle, plus a fourth query
	// cancelled mid-flight.
	var wg sync.WaitGroup
	results := make([]repro.Result, 3)
	errs := make([]error, 3)
	wg.Add(4)
	go func() {
		defer wg.Done()
		results[0], errs[0] = g.TrianglesFunc(nil, repro.Query{Seed: 1}, nil)
	}()
	go func() {
		defer wg.Done()
		results[1], errs[1] = g.CliquesFunc(nil, 4, repro.Query{Seed: 2}, nil)
	}()
	go func() {
		defer wg.Done()
		results[2], errs[2] = g.MatchFunc(nil, repro.PatternDiamond, repro.Query{Seed: 5}, nil)
	}()
	cancelled := make(chan struct {
		n   uint64
		err error
	}, 1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var n uint64
		_, err := g.TrianglesFunc(ctx, repro.Query{Seed: 9}, func(_, _, _ uint32) {
			n++
			if n == 500 {
				cancel() // a client went away mid-stream
			}
		})
		cancelled <- struct {
			n   uint64
			err error
		}{n, err}
	}()
	wg.Wait()
	for i, err := range errs {
		check(err, fmt.Sprintf("concurrent query %d", i))
	}

	assertEqual("triangles", results[0], triSerial)
	assertEqual("4-cliques", results[1], cliqueSerial)
	assertEqual("diamond match", results[2], matchSerial)
	fmt.Printf("concurrent triangles:    %8d matches, %7d I/Os — identical to serialized run\n", results[0].Matches, results[0].Stats.IOs())
	fmt.Printf("concurrent 4-cliques:    %8d matches, %7d I/Os — identical to serialized run\n", results[1].Matches, results[1].Stats.IOs())
	fmt.Printf("concurrent diamond match:%8d matches, %7d I/Os — identical to serialized run\n", results[2].Matches, results[2].Stats.IOs())

	c := <-cancelled
	if !errors.Is(c.err, context.Canceled) {
		log.Fatalf("cancelled query returned %v, want context.Canceled", c.err)
	}
	if c.n == 0 || c.n >= triSerial.Triangles {
		log.Fatalf("cancelled query emitted %d of %d — not an early stop", c.n, triSerial.Triangles)
	}
	fmt.Printf("cancelled query:         stopped after %d of %d triangles, others unaffected\n", c.n, triSerial.Triangles)

	// Follow-up queries from inside an emit callback: with per-query
	// sessions this composes instead of deadlocking — here, the first
	// triangle found triggers a nested clique count on the same handle.
	var nested repro.Result
	ran := false
	_, err = g.TrianglesFunc(nil, repro.Query{Seed: 1}, func(a, b, c uint32) {
		if ran {
			return
		}
		ran = true
		nested, err = g.CliquesFunc(nil, 4, repro.Query{Seed: 2}, nil)
		check(err, "nested query from emit")
	})
	check(err, "outer query")
	assertEqual("nested 4-cliques", nested, cliqueSerial)
	fmt.Printf("nested query from emit:  %8d matches — issued while the outer query was streaming\n", nested.Matches)
}

func check(err error, what string) {
	if err != nil {
		log.Fatalf("%s: %v", what, err)
	}
}

// assertEqual compares the deterministic parts of two Results (individual
// WorkerStats entries are scheduling-dependent by documented contract).
func assertEqual(what string, got, want repro.Result) {
	got.WorkerStats, want.WorkerStats = nil, nil
	if !reflect.DeepEqual(got, want) {
		log.Fatalf("%s: concurrent Result %+v differs from serialized %+v", what, got, want)
	}
}
