// diskbacked demonstrates that the external-memory substrate is not only
// a simulator: the same Space can be backed by a real file, so block
// transfers are genuine disk I/O. The run enumerates triangles of a graph
// sixteen times larger than the configured internal memory against a
// temporary file, then verifies the result matches a RAM-backed run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	edges, err := repro.Generate("gnm:n=8000,m=65536", 7)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "trienum")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "extmem.bin")

	cfg := repro.Config{
		Algorithm:   repro.CacheAware,
		MemoryWords: 1 << 12,
		BlockWords:  1 << 6,
		Seed:        7,
	}

	ram, err := repro.Count(edges, cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.DiskPath = path
	disk, err := repro.Count(edges, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: E=%d, machine: M=%d words (E/M = %.0fx)\n",
		disk.Edges, cfg.MemoryWords, float64(disk.Edges)/float64(cfg.MemoryWords))
	fmt.Printf("file-backed run: %d triangles, %d block I/Os against %s (%d KiB on disk)\n",
		disk.Triangles, disk.Stats.IOs(), path, fi.Size()/1024)
	fmt.Printf("RAM-backed run:  %d triangles, %d block I/Os\n", ram.Triangles, ram.Stats.IOs())
	if ram.Triangles != disk.Triangles || ram.Stats.IOs() != disk.Stats.IOs() {
		log.Fatal("backends disagree — this is a bug")
	}
	fmt.Println("identical counts and I/O traces: the cache is backend-transparent")
}
