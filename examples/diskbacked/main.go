// diskbacked demonstrates that the external-memory substrate is not only
// a simulator: a Graph handle can be backed by a real file, so block
// transfers are genuine disk I/O. The run builds a file-backed handle
// over a graph sixteen times larger than the configured internal memory,
// answers repeated queries against it — paying the O(sort(E))
// canonicalization exactly once — and verifies the results match a
// RAM-backed handle block for block.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "trienum")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "extmem.bin")

	opts := repro.Options{
		MemoryWords: 1 << 12,
		BlockWords:  1 << 6,
		Seed:        7,
	}
	ram, err := repro.Build(repro.FromSpec("gnm:n=8000,m=65536"), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ram.Close()

	opts.DiskPath = path
	disk, err := repro.Build(repro.FromSpec("gnm:n=8000,m=65536"), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer disk.Close()

	ctx := context.Background()
	q := repro.Query{Algorithm: repro.CacheAware, Seed: 7}
	ramRes, err := ram.TrianglesFunc(ctx, q, nil)
	if err != nil {
		log.Fatal(err)
	}
	diskRes, err := disk.TrianglesFunc(ctx, q, nil)
	if err != nil {
		log.Fatal(err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: E=%d, machine: M=%d words (E/M = %.0fx)\n",
		diskRes.Edges, opts.MemoryWords, float64(diskRes.Edges)/float64(opts.MemoryWords))
	fmt.Printf("file-backed query: %d triangles, %d block I/Os against %s (%d KiB on disk)\n",
		diskRes.Triangles, diskRes.Stats.IOs(), path, fi.Size()/1024)
	fmt.Printf("RAM-backed query:  %d triangles, %d block I/Os\n", ramRes.Triangles, ramRes.Stats.IOs())
	if ramRes.Triangles != diskRes.Triangles || ramRes.Stats.IOs() != diskRes.Stats.IOs() {
		log.Fatal("backends disagree — this is a bug")
	}
	fmt.Println("identical counts and I/O traces: the cache is backend-transparent")

	// The handle is reusable: a second query against the same file-backed
	// graph skips the canonicalization (CanonIOs repeats the one-time
	// cost) and reproduces the exact same I/O trace from a cold cache.
	again, err := disk.TrianglesFunc(ctx, q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat query: %d I/Os (same trace), canonIOs=%d paid once at build\n",
		again.Stats.IOs(), again.CanonIOs)
	if again.Stats != diskRes.Stats || again.CanonIOs != diskRes.CanonIOs {
		log.Fatal("repeated query drifted — this is a bug")
	}
}
