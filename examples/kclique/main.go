// kclique demonstrates the Section 6 extension through the public query
// API: enumerating k-cliques (k > 3) with the same color-coding
// decomposition, in O(E^(k/2)/(M^(k/2−1)·B)) expected I/Os, and
// arbitrary connected patterns à la Silvestri 2014. It hunts for the
// clique community planted inside a sparse random background graph.
//
// The graph is built once — one O(sort(E)) canonicalization — and every
// query (three clique sizes, four patterns) runs against the same
// repro.Graph handle.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A sparse network with a hidden tightly-knit community of 12.
	g, err := repro.Build(repro.FromSpec("planted:n=5000,m=20000,k=12"), repro.Options{
		MemoryWords: 1 << 12,
		BlockWords:  1 << 6,
		Seed:        99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("graph: V=%d E=%d, memory holds %.0f%% of the edges (canonicalized once: %d I/Os)\n\n",
		g.NumVertices(), g.NumEdges(), 100*float64(1<<12)/float64(g.NumEdges()), g.CanonIOs())

	ctx := context.Background()
	for _, k := range []int{3, 4, 5} {
		// Collect which vertices appear in k-cliques: members of the
		// planted community dominate for k >= 4.
		members := map[uint32]int{}
		res, err := g.CliquesFunc(ctx, k, repro.Query{Seed: 7}, func(vs []uint32) {
			for _, v := range vs {
				members[v]++
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d: %10d cliques, %7d I/Os, %d colors, %d subproblems (largest %d edges)\n",
			k, res.Matches, res.Stats.IOs(), res.Colors, res.Subproblems, res.MaxSubproblem)
		if k == 5 {
			fmt.Printf("\nvertices in 5-cliques (the planted community surfaces):\n  ")
			n := 0
			for v := range members {
				fmt.Printf("%d ", v)
				n++
				if n >= 12 {
					break
				}
			}
			fmt.Println()
		}
	}

	// The same decomposition enumerates any constant-size connected
	// pattern in the Alon class, not just cliques.
	fmt.Println("\narbitrary patterns (Section 6, general form):")
	for _, p := range []*repro.Pattern{repro.PatternPath3, repro.PatternCycle4, repro.PatternDiamond, repro.PatternStar3} {
		res, err := g.MatchFunc(ctx, p, repro.Query{Seed: 7}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s (|Aut|=%2d): %12d copies, %7d I/Os\n",
			p.Name(), p.Automorphisms(), res.Matches, res.Stats.IOs())
	}
}
