// kclique demonstrates the Section 6 extension: enumerating k-cliques
// (k > 3) with the same color-coding decomposition, in
// O(E^(k/2)/(M^(k/2−1)·B)) expected I/Os. It hunts for the 4-clique and
// 5-clique communities planted inside a sparse random background graph.
package main

import (
	"fmt"
	"log"

	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/subgraph"
)

func main() {
	// A sparse network with a hidden tightly-knit community of 12.
	el := graph.PlantedClique(5000, 20000, 12, 99)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
	g := graph.CanonicalizeList(sp, el)
	fmt.Printf("graph: V=%d E=%d, memory holds %.0f%% of the edges\n\n",
		g.NumVertices, g.Edges.Len(), 100*float64(1<<12)/float64(g.Edges.Len()))

	for _, k := range []int{3, 4, 5} {
		sp.DropCache()
		sp.ResetStats()
		// Collect which vertices appear in k-cliques: members of the
		// planted community dominate for k >= 4.
		members := map[uint32]int{}
		info, err := subgraph.KClique(sp, g, k, 7, func(vs []uint32) {
			for _, v := range vs {
				members[g.RankToID[v]]++
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d: %10d cliques, %7d I/Os, %d colors, %d subproblems (largest %d edges)\n",
			k, info.Cliques, sp.Stats().IOs(), info.Colors, info.Subproblems, info.MaxSubproblem)
		if k == 5 {
			fmt.Printf("\nvertices in 5-cliques (the planted community surfaces):\n  ")
			n := 0
			for v := range members {
				fmt.Printf("%d ", v)
				n++
				if n >= 12 {
					break
				}
			}
			fmt.Println()
		}
	}

	// The same decomposition enumerates any constant-size connected
	// pattern in the Alon class, not just cliques.
	fmt.Println("\narbitrary patterns (Section 6, general form):")
	for _, p := range []*subgraph.Pattern{subgraph.Path3, subgraph.Cycle4, subgraph.Diamond, subgraph.Star3} {
		sp.DropCache()
		sp.ResetStats()
		info, err := p.Enumerate(sp, g, 7, func([]uint32) {})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s (|Aut|=%2d): %12d copies, %7d I/Os\n",
			p.Name(), p.Automorphisms(), info.Cliques, sp.Stats().IOs())
	}
}
