// Quickstart: enumerate the triangles of a small graph with the default
// (cache-aware, Section 2) algorithm and print them with I/O statistics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A bowtie: two triangles sharing vertex 2.
	edges := [][2]uint32{
		{0, 1}, {1, 2}, {0, 2},
		{2, 3}, {3, 4}, {2, 4},
	}

	res, err := repro.Enumerate(edges, repro.Config{}, func(a, b, c uint32) {
		fmt.Printf("triangle {%d, %d, %d}\n", a, b, c)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d triangles over %d edges, %d block I/Os (M=%d words, B=%d words)\n",
		res.Triangles, res.Edges, res.Stats.IOs(), 1<<16, 1<<7)

	// The same library scales to graphs far larger than memory. Simulate
	// a machine whose memory holds only 1/16 of the edges:
	big, err := repro.Generate("gnm:n=20000,m=131072", 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err = repro.Count(big, repro.Config{
		Algorithm:   repro.CacheAware,
		MemoryWords: 1 << 13,
		BlockWords:  1 << 6,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nout-of-core run: E=%d (16x memory), %d triangles, %d I/Os, %d color classes\n",
		res.Edges, res.Triangles, res.Stats.IOs(), res.Colors*res.Colors)
}
