// Quickstart: build a reusable graph handle, stream its triangles with
// the range-over-func iterator, then run an out-of-core count — two
// queries, one canonicalization.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A bowtie: two triangles sharing vertex 2.
	edges := [][2]uint32{
		{0, 1}, {1, 2}, {0, 2},
		{2, 3}, {3, 4}, {2, 4},
	}

	g, err := repro.Build(repro.FromEdges(edges), repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	var res repro.Result
	for t, err := range g.Triangles(context.Background(), repro.Query{Result: &res}) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("triangle {%d, %d, %d}\n", t.A, t.B, t.C)
	}
	fmt.Printf("\n%d triangles over %d edges, %d block I/Os (M=%d words, B=%d words)\n",
		res.Triangles, res.Edges, res.Stats.IOs(), 1<<16, 1<<7)

	// The same library scales to graphs far larger than memory. Simulate
	// a machine whose memory holds only 1/16 of the edges:
	big, err := repro.Build(repro.FromSpec("gnm:n=20000,m=131072"), repro.Options{
		MemoryWords: 1 << 13,
		BlockWords:  1 << 6,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer big.Close()
	bigRes, err := big.TrianglesFunc(context.Background(), repro.Query{Algorithm: repro.CacheAware, Seed: 42}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nout-of-core run: E=%d (16x memory), %d triangles, %d I/Os, %d color classes\n",
		bigRes.Edges, bigRes.Triangles, bigRes.Stats.IOs(), bigRes.Colors*bigRes.Colors)

	// One-shot compatibility shim, equivalent to Build + TrianglesFunc:
	one, err := repro.Count(edges, repro.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot Count agrees: %d triangles\n", one.Triangles)
}
