// reopen demonstrates the durable-image lifecycle: build a disk-backed
// graph, update it, close (which atomically promotes the latest
// generation over the image and removes the write-ahead log), and Open
// it again in a "new process" — serving queries immediately, with zero
// canonicalization I/Os. It then simulates a crash: the image and WAL
// bytes are snapshotted mid-life, before any checkpoint, and Open on the
// snapshot replays the logged delta to recover the exact pre-crash
// generation. The program self-checks the recovery contract — the
// recovered and the cleanly reopened graph answer queries with identical
// counts and I/O statistics — and exits non-zero on any divergence.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "reopen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.img")

	edges, err := repro.Generate("gnm:n=3000,m=24000", 11)
	if err != nil {
		log.Fatal(err)
	}
	delta := repro.Delta{
		Add:    [][2]uint32{{9000, 9001}, {9001, 9002}, {9000, 9002}},
		Remove: [][2]uint32{edges[0], edges[1], edges[2]},
	}
	opts := repro.Options{MemoryWords: 1 << 12, BlockWords: 1 << 6, DiskPath: path}

	// Life 1: build to disk, update once.
	g, err := repro.Build(repro.FromEdges(edges), opts)
	if err != nil {
		log.Fatal(err)
	}
	buildIOs := g.CanonIOs()
	if _, err := g.Update(nil, delta); err != nil {
		log.Fatal(err)
	}
	want, err := g.TrianglesFunc(nil, repro.Query{Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("life 1: built for %d I/Os, updated to generation %d, %d triangles\n",
		buildIOs, g.Generation(), want.Triangles)

	// Crash snapshot: what a power cut after the update would leave — the
	// generation-0 image plus the one-record write-ahead log.
	crash := filepath.Join(dir, "crash.img")
	for _, s := range []string{"", ".wal"} {
		data, err := os.ReadFile(path + s)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(crash+s, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Clean shutdown: Close promotes generation 1 over the image and
	// removes the WAL — the image now stands alone.
	if err := g.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := os.Stat(path + ".wal"); !os.IsNotExist(err) {
		log.Fatalf("WAL survived a clean Close: %v", err)
	}

	// Life 2: reopen the promoted image. No canonicalization, no replay —
	// the O(sort(E)) cost of life 1 is not paid again.
	g2, ores, err := repro.Open(path, repro.Options{MemoryWords: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	defer g2.Close()
	fmt.Printf("life 2: adopted generation %d for %d I/Os (replayed %d records; a rebuild would cost %d)\n",
		ores.Generation, ores.AdoptIOs, ores.Replayed, buildIOs)
	if ores.Replayed != 0 || g2.CanonIOs() != 0 {
		log.Fatalf("clean reopen should adopt without replay and report CanonIOs=0, got %+v / %d",
			ores, g2.CanonIOs())
	}
	if ores.AdoptIOs >= buildIOs {
		log.Fatalf("adoption (%d IOs) was not cheaper than the build (%d IOs)", ores.AdoptIOs, buildIOs)
	}
	clean, err := g2.TrianglesFunc(nil, repro.Query{Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Life 3: recover the crash snapshot. Open finds the image at
	// generation 0 and a WAL record for generation 1, and replays it
	// through the same deterministic delta merge the live Update ran.
	g3, rres, err := repro.Open(crash, repro.Options{MemoryWords: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	defer g3.Close()
	fmt.Printf("life 3: crash recovery replayed %d record(s) for %d I/Os, at generation %d\n",
		rres.Replayed, rres.ReplayIOs, rres.Generation)
	if rres.Replayed != 1 || rres.Generation != 1 {
		log.Fatalf("recovery expected to replay 1 record to generation 1, got %+v", rres)
	}
	recovered, err := g3.TrianglesFunc(nil, repro.Query{Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The contract: pre-crash, cleanly-reopened, and crash-recovered
	// graphs are indistinguishable — same triangles, same I/O trace.
	for name, got := range map[string]repro.Result{"clean reopen": clean, "crash recovery": recovered} {
		if got.Triangles != want.Triangles || got.Stats != want.Stats {
			log.Fatalf("%s diverged from the pre-crash graph: %d triangles/%d IOs vs %d/%d",
				name, got.Triangles, got.Stats.IOs(), want.Triangles, want.Stats.IOs())
		}
	}
	fmt.Printf("all three lives agree: %d triangles, identical I/O traces\n", want.Triangles)
}
