// salesdb reproduces the database example from the paper's introduction
// through the public join API: a Sells(salesperson, brand, productType)
// relation in 5th normal form is stored as three binary projections;
// reconstructing it is a three-way join, which is exactly triangle
// enumeration on the union of the three bipartite graphs. Every triangle
// found is one row of Sells.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The projections of a small product catalog. Salespeople carry brand
	// portfolios and product-type specialties; a (brand, type) pair in BT
	// means that product exists.
	dec := repro.JoinDecomposition{
		SB: []repro.JoinPair{
			{A: "ann", B: "acme"}, {A: "ann", B: "bolt"},
			{A: "bob", B: "bolt"}, {A: "bob", B: "cord"},
			{A: "eve", B: "acme"}, {A: "eve", B: "cord"},
		},
		BT: []repro.JoinPair{
			{A: "acme", B: "vacuum"}, {A: "acme", B: "toaster"},
			{A: "bolt", B: "vacuum"}, {A: "bolt", B: "kettle"},
			{A: "cord", B: "kettle"}, {A: "cord", B: "toaster"},
		},
		ST: []repro.JoinPair{
			{A: "ann", B: "vacuum"}, {A: "ann", B: "kettle"},
			{A: "bob", B: "vacuum"}, {A: "bob", B: "kettle"},
			{A: "eve", B: "toaster"}, {A: "eve", B: "kettle"},
		},
	}

	fmt.Println("SELECT * FROM SB NATURAL JOIN BT NATURAL JOIN ST;")
	fmt.Println()
	fmt.Printf("%-12s %-8s %s\n", "salesperson", "brand", "productType")
	stats, err := dec.Join(repro.JoinOptions{Algorithm: repro.CacheOblivious, Seed: 7}, func(r repro.JoinRow) {
		fmt.Printf("%-12s %-8s %s\n", r.Salesperson, r.Brand, r.ProductType)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d rows reconstructed with %d block I/Os (%d reads, %d writes)\n",
		stats.Rows, stats.IOs, stats.BlockReads, stats.BlockWrites)

	// Round-trip property: decomposing the join's output projects back to
	// (a superset-free version of) the inputs, demonstrating losslessness
	// of the 5NF decomposition for relations satisfying the dependency.
	var rows []repro.JoinRow
	if _, err := dec.Join(repro.JoinOptions{Seed: 7}, func(r repro.JoinRow) { rows = append(rows, r) }); err != nil {
		log.Fatal(err)
	}
	again := repro.DecomposeJoinRows(rows)
	fmt.Printf("round trip: |SB|=%d |BT|=%d |ST|=%d (projections of the reconstructed relation)\n",
		len(again.SB), len(again.BT), len(again.ST))
}
