// salesdb reproduces the database example from the paper's introduction:
// a Sells(salesperson, brand, productType) relation in 5th normal form is
// stored as three binary projections; reconstructing it is a three-way
// join, which is exactly triangle enumeration on the union of the three
// bipartite graphs. Every triangle found is one row of Sells.
package main

import (
	"fmt"
	"log"

	"repro/internal/join"
)

func main() {
	// The projections of a small product catalog. Salespeople carry brand
	// portfolios and product-type specialties; a (brand, type) pair in BT
	// means that product exists.
	dec := join.Decomposition{
		SB: []join.Pair{
			{A: "ann", B: "acme"}, {A: "ann", B: "bolt"},
			{A: "bob", B: "bolt"}, {A: "bob", B: "cord"},
			{A: "eve", B: "acme"}, {A: "eve", B: "cord"},
		},
		BT: []join.Pair{
			{A: "acme", B: "vacuum"}, {A: "acme", B: "toaster"},
			{A: "bolt", B: "vacuum"}, {A: "bolt", B: "kettle"},
			{A: "cord", B: "kettle"}, {A: "cord", B: "toaster"},
		},
		ST: []join.Pair{
			{A: "ann", B: "vacuum"}, {A: "ann", B: "kettle"},
			{A: "bob", B: "vacuum"}, {A: "bob", B: "kettle"},
			{A: "eve", B: "toaster"}, {A: "eve", B: "kettle"},
		},
	}

	fmt.Println("SELECT * FROM SB NATURAL JOIN BT NATURAL JOIN ST;")
	fmt.Println()
	fmt.Printf("%-12s %-8s %s\n", "salesperson", "brand", "productType")
	stats, err := dec.Join(join.Options{Algorithm: join.CacheOblivious, Seed: 7}, func(r join.Row) {
		fmt.Printf("%-12s %-8s %s\n", r.Salesperson, r.Brand, r.ProductType)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d rows reconstructed with %d block I/Os (%d reads, %d writes)\n",
		stats.Rows, stats.IOs, stats.BlockReads, stats.BlockWrite)

	// Round-trip property: decomposing the join's output projects back to
	// (a superset-free version of) the inputs, demonstrating losslessness
	// of the 5NF decomposition for relations satisfying the dependency.
	var rows []join.Row
	if _, err := dec.Join(join.Options{Seed: 7}, func(r join.Row) { rows = append(rows, r) }); err != nil {
		log.Fatal(err)
	}
	again := join.Decompose(rows)
	fmt.Printf("round trip: |SB|=%d |BT|=%d |ST|=%d (projections of the reconstructed relation)\n",
		len(again.SB), len(again.BT), len(again.ST))
}
