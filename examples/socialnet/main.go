// socialnet analyzes a scale-free social network under memory pressure:
// triangle counts, clustering coefficients, and the most embedded members,
// computed entirely in the external-memory model via internal/analytics,
// then compares the I/O cost of the paper's algorithms against the
// baselines on the same machine. Heavy-tailed degree distributions are
// exactly where the paper's high-degree-vertex handling (step 1 of the
// algorithms) earns its keep.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/analytics"
	"repro/internal/baseline"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

func main() {
	const (
		users       = 10000
		friendships = 40000
		memoryWords = 1 << 12 // memory holds ~10% of the edges
		blockWords  = 1 << 6
	)
	el := graph.PowerLaw(users, friendships, 2.1, 2024)
	sp := extmem.NewSpace(extmem.Config{M: memoryWords, B: blockWords})
	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()

	profile := analytics.Compute(sp, g, 1,
		func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) trienum.Info {
			return trienum.CacheAware(sp, g, seed, emit)
		})
	fmt.Printf("network: %d users, %d friendships (E/M = %.0fx memory)\n",
		g.NumVertices, g.Edges.Len(), float64(g.Edges.Len())/float64(memoryWords))
	fmt.Printf("triangles:                   %d\n", profile.Total)
	fmt.Printf("global clustering (3t/wedges): %.4f\n", profile.GlobalClustering())
	fmt.Printf("average local clustering:      %.4f\n", profile.AverageLocalClustering(g))
	fmt.Printf("analytics pipeline I/Os:       %d\n\n", sp.Stats().IOs())

	fmt.Println("most embedded users (triangles through them, local clustering):")
	for _, vc := range profile.TopK(5) {
		fmt.Printf("  user %-6d %6d triangles  c=%.3f\n",
			g.RankToID[vc.Rank], vc.Triangles, profile.LocalClustering(g, vc.Rank))
	}

	fmt.Println("\nI/O comparison, same machine, enumeration only:")
	runs := []struct {
		name string
		run  func(*extmem.Space, graph.Canonical, graph.Emit) trienum.Info
	}{
		{"cacheaware (PS'14 §2)", func(sp *extmem.Space, g graph.Canonical, e graph.Emit) trienum.Info {
			return trienum.CacheAware(sp, g, 1, e)
		}},
		{"oblivious  (PS'14 §3)", func(sp *extmem.Space, g graph.Canonical, e graph.Emit) trienum.Info {
			return trienum.Oblivious(sp, g, 1, e)
		}},
		{"hutaochung (SIGMOD'13)", trienum.HuTaoChung},
		{"edgeiterator", baseline.EdgeIterator},
	}
	for _, r := range runs {
		sp.DropCache()
		sp.ResetStats()
		var n uint64
		info := r.run(sp, g, graph.Counter(&n))
		sp.Flush()
		fmt.Printf("  %-24s %9d I/Os  (Lemma-1 vertices: %d)\n", r.name, sp.Stats().IOs(), info.HighDegVertices)
	}
	if err := checkConsistency(profile.Total); err != nil {
		log.Fatal(err)
	}
}

// checkConsistency re-counts through the public query API with a second
// algorithm; a mismatch would indicate a bug, so the example doubles as
// an end-to-end smoke test of the internal pipeline against the public
// surface.
func checkConsistency(want uint64) error {
	pg, err := repro.Build(repro.FromSpec("powerlaw:n=10000,m=40000,beta=2.1"), repro.Options{
		MemoryWords: 1 << 12,
		BlockWords:  1 << 6,
		Seed:        2024,
	})
	if err != nil {
		return err
	}
	defer pg.Close()
	res, err := pg.TrianglesFunc(context.Background(), repro.Query{Algorithm: repro.HuTaoChung}, nil)
	if err != nil {
		return err
	}
	if res.Triangles != want {
		return fmt.Errorf("count mismatch: %d vs %d", res.Triangles, want)
	}
	return nil
}
