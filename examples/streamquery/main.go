// streamquery demonstrates the streaming, cancellable query API: one
// graph handle serves many queries; results arrive as range-over-func
// iterators that can be broken out of mid-stream (which cancels the
// underlying worker pool), and whole queries can be cancelled through a
// context deadline — the pattern a production service uses to bound
// per-request latency against a shared graph.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A triangle-dense graph: memory holds ~6% of the edges, and the
	// planted clique guarantees a long triangle stream.
	g, err := repro.Build(repro.FromSpec("planted:n=4000,m=30000,k=40"), repro.Options{
		MemoryWords: 1 << 11,
		BlockWords:  1 << 5,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("graph: V=%d E=%d, canonicalized once (%d I/Os); every query below reuses it\n\n",
		g.NumVertices(), g.NumEdges(), g.CanonIOs())

	// Query 1 — stream and stop early: take the first 10 triangles, then
	// break. The break cancels the query; its workers drain before the
	// loop exits.
	fmt.Println("first 10 triangles of the stream:")
	n := 0
	for t, err := range g.Triangles(context.Background(), repro.Query{Seed: 1}) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  {%d, %d, %d}\n", t.A, t.B, t.C)
		if n++; n == 10 {
			break
		}
	}

	// Query 2 — the same handle, full run: the early stop above left no
	// residue; statistics depend only on the query.
	res, err := g.TrianglesFunc(context.Background(), repro.Query{Seed: 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull count on the same handle: %d triangles, %d I/Os\n", res.Triangles, res.Stats.IOs())

	// Query 3 — a deadline: cancel cooperatively if the enumeration
	// outruns its budget. An impossibly tight deadline demonstrates the
	// mechanism; the query returns context.DeadlineExceeded, reports the
	// prefix it emitted, and leaks nothing.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	var partial uint64
	_, err = g.TrianglesFunc(ctx, repro.Query{Seed: 1}, func(_, _, _ uint32) { partial++ })
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("deadline query: cancelled after %d triangles (prefix of the full stream)\n", partial)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("deadline query: finished under budget (%d triangles)\n", partial)
	}

	// Query 4 — the handle serves other workloads too: 4-cliques of the
	// planted community, streamed the same way.
	cliques := 0
	for _, err := range g.Cliques(context.Background(), 4, repro.Query{Seed: 1}) {
		if err != nil {
			log.Fatal(err)
		}
		if cliques++; cliques == 1000 {
			break
		}
	}
	fmt.Printf("4-clique stream: stopped after %d cliques\n", cliques)
}
