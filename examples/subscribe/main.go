// Standing queries, both ways a program consumes them: the library's
// Subscribe API, where each effective Update delivers an exact
// ChangeSet of added and retracted triangles, and the daemon's
// long-lived NDJSON stream (POST /v1/graphs/{id}/subscriptions), whose
// lines are the same ChangeSets on the wire.
//
// It self-checks both: every library ChangeSet is compared against the
// diff of two fresh enumerations (before and after the update), and
// every wire line is compared byte-for-byte against the in-process
// subscription observing the same updates. Exits non-zero on any
// mismatch.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"

	"repro"
	"repro/internal/serve"
)

// triangles enumerates a fresh build of edges and returns the triangle
// set as ascending tuples in lexicographic order — the same shape
// ChangeSet lists use.
func triangles(edges [][2]uint32, opts repro.Options) [][]uint32 {
	g, err := repro.Build(repro.FromEdges(edges), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	out := [][]uint32{}
	if _, err := g.TrianglesFunc(context.Background(), repro.Query{}, func(a, b, c uint32) {
		t := []uint32{a, b, c}
		sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
		out = append(out, t)
	}); err != nil {
		log.Fatal(err)
	}
	sortTuples(out)
	return out
}

func sortTuples(ts [][]uint32) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

// minus returns the tuples in a that are not in b, preserving order.
func minus(a, b [][]uint32) [][]uint32 {
	have := make(map[string]bool, len(b))
	for _, t := range b {
		have[fmt.Sprint(t)] = true
	}
	out := [][]uint32{}
	for _, t := range a {
		if !have[fmt.Sprint(t)] {
			out = append(out, t)
		}
	}
	return out
}

func equalTuples(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			return false
		}
	}
	return true
}

func main() {
	// ---- Library: Subscribe on an updatable handle. ----
	opts := repro.Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Seed: 7}
	edges, err := repro.Generate("gnm:n=120,m=700", 7)
	if err != nil {
		log.Fatal(err)
	}
	g, err := repro.Build(repro.FromEdges(edges), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	sub, err := g.Subscribe(context.Background(), repro.Query{})
	if err != nil {
		log.Fatal(err)
	}

	model := map[[2]uint32]bool{}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		model[[2]uint32{a, b}] = true
	}
	slice := func() [][2]uint32 {
		out := make([][2]uint32, 0, len(model))
		for e := range model {
			out = append(out, e)
		}
		sort.Slice(out, func(i, j int) bool {
			return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
		})
		return out
	}

	deltas := []repro.Delta{
		// A fresh triangle on new vertices plus densification around 0..3.
		{Add: [][2]uint32{{500, 501}, {501, 502}, {500, 502}, {0, 1}, {1, 2}, {0, 2}, {2, 3}}},
		// Retract part of it again and close another wedge.
		{Remove: [][2]uint32{{500, 502}, {0, 1}}, Add: [][2]uint32{{1, 3}}},
	}
	for _, d := range deltas {
		before := triangles(slice(), opts)
		ur, err := g.Update(context.Background(), d)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range d.Remove {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			delete(model, [2]uint32{a, b})
		}
		for _, e := range d.Add {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			model[[2]uint32{a, b}] = true
		}
		after := triangles(slice(), opts)

		cs := <-sub.Changes()
		if cs.Generation != ur.Generation {
			log.Fatalf("ChangeSet generation %d, update installed %d", cs.Generation, ur.Generation)
		}
		if !equalTuples(cs.Added, minus(after, before)) || !equalTuples(cs.Removed, minus(before, after)) {
			log.Fatalf("generation %d: ChangeSet (+%d -%d) does not match the fresh-enumeration diff (+%d -%d)",
				cs.Generation, len(cs.Added), len(cs.Removed), len(minus(after, before)), len(minus(before, after)))
		}
		fmt.Printf("generation %d: +%d -%d triangles in %d block I/Os; matches the fresh-enumeration diff\n",
			cs.Generation, len(cs.Added), len(cs.Removed), cs.Stats.IOs())
	}
	sub.Close()

	// ---- Daemon: the same contract over the NDJSON stream. ----
	srv := serve.New(serve.Config{})
	defer srv.Close()
	gd, err := repro.Build(repro.FromSpec("gnm:n=150,m=900"), repro.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.AddGraph("g", gd, ""); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Open the stream, then register the in-process reference on the
	// daemon's own handle. Reading the hello line first guarantees the
	// wire subscription is installed before any update runs, so both
	// observers see the identical sequence of generations.
	body, _ := json.Marshal(serve.SubscribeRequest{Kind: "triangles"})
	resp, err := http.Post(base+"/v1/graphs/g/subscriptions", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("subscribe: %s", resp.Status)
	}
	rd := bufio.NewReader(resp.Body)
	hello, err := rd.ReadBytes('\n')
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Contains(hello, []byte(`"subscribed":true`)) {
		log.Fatalf("unexpected hello line: %s", hello)
	}
	ref, err := gd.Subscribe(context.Background(), repro.Query{})
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()

	for i, upd := range []map[string]any{
		{"add": [][2]uint32{{700, 701}, {701, 702}, {700, 702}}},
		{"remove": [][2]uint32{{700, 702}}, "add": [][2]uint32{{702, 703}, {700, 703}, {701, 703}}},
	} {
		ub, _ := json.Marshal(upd)
		uresp, err := http.Post(base+"/v1/graphs/g/update", "application/json", bytes.NewReader(ub))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, uresp.Body)
		uresp.Body.Close()
		if uresp.StatusCode != http.StatusOK {
			log.Fatalf("update %d: %s", i, uresp.Status)
		}
		line, err := rd.ReadBytes('\n')
		if err != nil {
			log.Fatal(err)
		}
		want, _ := json.Marshal(serve.ToWireChange(<-ref.Changes()))
		if !bytes.Equal(bytes.TrimSuffix(line, []byte("\n")), want) {
			log.Fatalf("wire line %d diverges from the in-process ChangeSet:\n wire %s\n want %s", i, line, want)
		}
		fmt.Printf("wire change %d: byte-identical to the in-process ChangeSet (%d bytes)\n", i, len(want))
	}
	fmt.Println("standing queries verified: library diffs exact, daemon stream byte-identical")
}
