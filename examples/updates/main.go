// updates demonstrates the versioned, updatable Graph handle: build once,
// query, merge a batched edge delta with Update, and re-query — without
// ever paying the O(sort(E)) canonicalization a second time. The program
// self-checks the two contracts that make updates safe to rely on:
// queries on the updated generation are byte-identical (counts and I/O
// statistics) to a fresh build of the updated edge set, and the delta
// merge is cheaper than that rebuild.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A random graph, plus a delta that grafts a triangle onto it and
	// removes a few original edges.
	edges, err := repro.Generate("gnm:n=3000,m=24000", 11)
	if err != nil {
		log.Fatal(err)
	}
	delta := repro.Delta{
		Add:    [][2]uint32{{9000, 9001}, {9001, 9002}, {9000, 9002}},
		Remove: [][2]uint32{edges[0], edges[1], edges[2]},
	}

	opts := repro.Options{MemoryWords: 1 << 12, BlockWords: 1 << 6}
	g, err := repro.Build(repro.FromEdges(edges), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	before, err := g.TrianglesFunc(nil, repro.Query{Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d: V=%d E=%d, %d triangles in %d block I/Os\n",
		g.Generation(), before.Vertices, before.Edges, before.Triangles, before.Stats.IOs())

	ures, err := g.Update(nil, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: +%d/-%d edges merged for %d I/Os, generation %d installed\n",
		ures.Added, ures.Removed, ures.MergeIOs, ures.Generation)

	after, err := g.TrianglesFunc(nil, repro.Query{Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d: V=%d E=%d, %d triangles in %d block I/Os\n",
		g.Generation(), after.Vertices, after.Edges, after.Triangles, after.Stats.IOs())

	// Cross-check against a from-scratch build of the updated edge set:
	// same triangles, and the same enumeration I/O trace — the updated
	// generation's image is byte-identical to the rebuilt one.
	updated := edges[3:]
	updated = append(updated, delta.Add...)
	fresh, err := repro.Build(repro.FromEdges(updated), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.TrianglesFunc(nil, repro.Query{Seed: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if after.Triangles != want.Triangles || after.Stats != want.Stats {
		log.Fatalf("updated generation diverged from fresh build: %d triangles/%d IOs vs %d/%d",
			after.Triangles, after.Stats.IOs(), want.Triangles, want.Stats.IOs())
	}
	fmt.Printf("fresh rebuild agrees: %d triangles, identical I/O trace\n", want.Triangles)
	if ures.MergeIOs >= fresh.CanonIOs() {
		log.Fatalf("delta merge (%d IOs) was not cheaper than the rebuild (%d IOs)",
			ures.MergeIOs, fresh.CanonIOs())
	}
	fmt.Printf("and the merge cost %d I/Os vs %d to re-canonicalize — the delta path wins\n",
		ures.MergeIOs, fresh.CanonIOs())
}
