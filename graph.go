package repro

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// ErrGraphClosed is returned by queries against a closed Graph handle.
var ErrGraphClosed = errors.New("repro: graph handle is closed")

// Source supplies the edges a Graph is built from. Use FromEdges,
// FromReader, FromTextReader, or FromSpec.
type Source interface {
	loadEdges(o Options) ([][2]uint32, error)
}

type edgesSource [][2]uint32

func (s edgesSource) loadEdges(Options) ([][2]uint32, error) { return s, nil }

type readerSource struct{ r io.Reader }

func (s readerSource) loadEdges(Options) ([][2]uint32, error) { return ReadEdgeFile(s.r) }

type textReaderSource struct{ r io.Reader }

func (s textReaderSource) loadEdges(Options) ([][2]uint32, error) { return ReadTextEdges(s.r) }

type specSource string

func (s specSource) loadEdges(o Options) ([][2]uint32, error) { return Generate(string(s), o.Seed) }

// FromEdges sources a graph from an in-memory undirected edge list.
// Self-loops and duplicate edges are ignored during canonicalization.
func FromEdges(edges [][2]uint32) Source { return edgesSource(edges) }

// FromReader sources a graph from the library's binary edge-file format
// (as written by WriteEdgeFile / cmd/graphgen).
func FromReader(r io.Reader) Source { return readerSource{r} }

// FromTextReader sources a graph from a whitespace-separated text edge
// list (see ReadTextEdges).
func FromTextReader(r io.Reader) Source { return textReaderSource{r} }

// FromSpec sources a graph from a generator spec such as
// "gnm:n=1000,m=8000" (see Generate); the generator seed is Options.Seed.
func FromSpec(spec string) Source { return specSource(spec) }

// Graph is a reusable, updatable handle to a canonicalized graph frozen
// in a simulated (or file-backed) external memory. Build pays the
// O(sort(E)) canonicalization of Section 1.3 exactly once and freezes the
// result into an immutable read-only core; every query — Triangles,
// Cliques, Match — then runs on its own session: a private M-word cache,
// private statistics, and a private scratch allocator layered over the
// shared core (the PEM model of P processors with private internal
// memories over a shared disk, one level up from the worker shards inside
// a query).
//
// The handle is versioned: Update merges a batched edge delta against the
// current core and atomically installs a new immutable generation whose
// image is byte-identical to a fresh Build of the updated edge set. Every
// query pins the generation it started on, so in-flight queries keep
// reading their version while updates install new ones (snapshot
// isolation); a superseded generation's core is released when the last
// query pinning it finishes.
//
// Because sessions share nothing mutable, any number of queries —
// different patterns, k's, seeds, contexts — may run concurrently on one
// handle from different goroutines, and each reports exactly the Result
// it would report run alone: every session starts from the identical
// cold machine state, so emission order within a query, its I/O
// statistics, and CanonIOs are all byte-identical to a serialized run.
// Emit callbacks and iterator loop bodies run on their query's calling
// goroutine and may issue follow-up queries against the same handle;
// the one thing they must not do is Close it (Close waits for active
// queries, so a Close from inside one deadlocks).
//
// The handle's only lock is a close-guard: Close marks the handle closed
// (new queries fail with ErrGraphClosed), waits for active queries and
// updates to drain, and releases every generation core.
type Graph struct {
	opts Options // defaulted

	mu     sync.Mutex
	drain  sync.Cond   // signalled when active drops to zero
	cur    *generation // current generation; survives Close for the accessors
	active int         // live query sessions and updates
	seq    uint64      // per-session scratch-file suffix
	closed bool
	// releaseErr is the first failure releasing a superseded
	// generation's core (which happens on a query drain, with nobody to
	// report to); Close surfaces it.
	releaseErr error
	// persistedGen is the generation durably stored in the image at
	// DiskPath: 0 after Build, the footer's generation after Open,
	// advanced by Checkpoint and the Close promotion. Guarded by mu.
	persistedGen uint64

	// subs are the live standing queries (see Subscribe), keyed by their
	// registration sequence number. Guarded by mu; the install path of an
	// update snapshots them in the same critical section that swaps cur,
	// which is what makes registration atomic against updates.
	subs   map[uint64]*Subscription
	subSeq uint64

	// updateMu serializes Update calls; queries never take it. The
	// write-ahead log below is touched only under it (and by Close, after
	// the drain has excluded every update).
	updateMu sync.Mutex
	// wal is the open write-ahead-log file of a disk-backed handle,
	// opened lazily by the first logged update.
	wal *os.File
}

// generation is one immutable version of the graph: the frozen
// external-memory image plus the canonical metadata, refcounted by the
// sessions reading it and by the handle's current pointer. Disk-backed
// update generations own a file (<DiskPath>.g<n>) that is removed when
// the refcount drains; the Build image at DiskPath itself outlives the
// handle, as before.
type generation struct {
	gen uint64

	core      extmem.Core
	coreFile  *extmem.FileCore
	path      string // file to remove on release ("" for gen 0 and memory graphs)
	coreWords int64  // block-rounded watermark: session scratch starts here
	layout    graph.CanonLayout
	rawLen    int64 // the m of LayoutFor — what a footer for this image records

	numVertices int
	edgesBase   int64
	edgesLen    int64
	degBase     int64
	degLen      int64
	rankToID    []uint32
	canonIOs    uint64

	refs     int // sessions reading this generation, +1 while current
	released bool
}

// Build ingests edges from src, canonicalizes them once — O(sort(E))
// I/Os, run on the parallel external-memory sorts at Options.Workers
// unless Options.SequentialCanon is set — and freezes the canonical
// region into the handle's immutable core. Graphs with Options.DiskPath
// set leave the canonical image in the file at that path and serve
// queries from it; Close the handle to release it.
func Build(src Source, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	edges, err := src.loadEdges(opts)
	if err != nil {
		return nil, err
	}

	emCfg := extmem.Config{M: opts.MemoryWords, B: opts.BlockWords}
	var sp *extmem.Space
	if opts.DiskPath != "" {
		// A Build starts a fresh durable life at DiskPath: drop any
		// write-ahead log, generation image, scratch, or checkpoint temp a
		// previous life left behind, so stale records can never replay onto
		// the new image.
		if _, err := removeStaleSiblings(opts.DiskPath, true); err != nil {
			return nil, err
		}
		sp, err = extmem.NewFileSpace(emCfg, opts.DiskPath)
		if err != nil {
			return nil, err
		}
	} else {
		sp = extmem.NewSpace(emCfg)
	}

	var el graph.EdgeList
	for _, e := range edges {
		el.Add(e[0], e[1])
	}
	rawLen := int64(el.Len())
	var cg graph.Canonical
	var canonWS []extmem.Stats
	if opts.SequentialCanon {
		cg = graph.CanonicalizeList(sp, el)
	} else {
		// The parallel sort workers' I/Os are part of the canonicalization
		// cost; the sorts are byte-identical to the sequential ones at
		// every worker count (including 1), so CanonIOs is invariant in
		// Options.Workers.
		workers := opts.workers()
		sorter := func(ext extmem.Extent, stride int, key emsort.Key) {
			canonWS = extmem.AddStatsVec(canonWS, emsort.ParallelSortRecords(ext, stride, key, workers))
		}
		cg = graph.Canonicalize(sp, el.Write(sp), sorter)
	}
	canonStats := sp.Stats()
	for _, w := range canonWS {
		canonStats.Add(w)
	}

	gen := &generation{
		canonIOs:    canonStats.IOs(),
		rawLen:      rawLen,
		numVertices: cg.NumVertices,
		edgesBase:   cg.Edges.Base(),
		edgesLen:    cg.Edges.Len(),
		degBase:     cg.Degrees.Base(),
		degLen:      cg.Degrees.Len(),
		rankToID:    cg.RankToID,
		refs:        1, // the handle's current pointer
	}

	// Freeze the canonicalized region [0, mark) into the immutable core.
	// Memory-backed graphs take the one Snapshot here (writing back the
	// build cache's dirty blocks; those write-backs are part of the build,
	// not of any query, and canonStats is already captured). Disk-backed
	// graphs flush the image to the backing file instead and serve the
	// core from it read-only, so the frozen graph does not have to fit in
	// process memory.
	mark := sp.Mark()
	gen.layout = graph.LayoutFor(rawLen, cg.Edges.Len(), int64(cg.NumVertices), opts.BlockWords)
	if gen.layout.EdgeOut != gen.edgesBase || gen.layout.DegOut != gen.degBase || gen.layout.Mark != mark {
		return nil, fmt.Errorf("repro: internal: canonical layout drift (edges %d/%d, degrees %d/%d, mark %d/%d)",
			gen.layout.EdgeOut, gen.edgesBase, gen.layout.DegOut, gen.degBase, gen.layout.Mark, mark)
	}
	gen.coreWords = (mark + int64(opts.BlockWords) - 1) &^ int64(opts.BlockWords-1)
	if opts.DiskPath != "" {
		sp.Flush()
		if err := sp.Sync(); err != nil {
			sp.Close()
			return nil, err
		}
		if err := sp.Close(); err != nil {
			return nil, err
		}
		// Stamp the durable footer just past the image words — sessions
		// never read at or beyond coreWords, so the image bytes stay
		// identical to the model's view — making the file a self-describing
		// artifact that Open can validate and adopt (see FORMAT.md).
		meta := graph.ImageMeta{
			BlockWords:  opts.BlockWords,
			RawLen:      rawLen,
			EdgesLen:    gen.edgesLen,
			NumVertices: int64(gen.numVertices),
			Generation:  0,
			CanonIOs:    gen.canonIOs,
		}
		if err := writeImageFooter(opts.DiskPath, gen.coreWords, meta); err != nil {
			return nil, err
		}
		fc, err := extmem.NewFileCore(opts.DiskPath)
		if err != nil {
			return nil, err
		}
		gen.core, gen.coreFile = fc, fc
	} else {
		gen.core = extmem.WordsCore(sp.Snapshot(sp.ExtentAt(0, mark)))
		sp.Close()
	}

	g := &Graph{opts: opts, cur: gen}
	g.drain.L = &g.mu
	return g, nil
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// session is the per-query execution state: a private Space layered over
// one generation's immutable core, with the canonical extents rebound
// into it. Acquired at query start, closed (scratch file removed, pinned
// generation unpinned) when the query returns.
type session struct {
	g   *Graph
	gen *generation
	sp  *extmem.Space
	cg  graph.Canonical
}

// acquire opens a new session against the handle's current generation,
// failing with ErrGraphClosed after Close. The session pins its
// generation: updates installed while the query runs do not affect it.
// A native session runs directly on the generation's words (no
// simulated cache, no scratch spill file) and reports zero Stats.
func (g *Graph) acquire(native bool) (*session, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrGraphClosed
	}
	gen := g.cur
	gen.refs++
	g.active++
	g.seq++
	scratch := ""
	if g.opts.DiskPath != "" && !native {
		scratch = fmt.Sprintf("%s.q%d", g.opts.DiskPath, g.seq)
	}
	g.mu.Unlock()

	cfg := extmem.Config{M: g.opts.MemoryWords, B: g.opts.BlockWords, Native: native}
	sp, err := extmem.NewSessionSpace(cfg, gen.core, gen.coreWords, scratch)
	if err != nil {
		g.mu.Lock()
		rel := g.unpinLocked(gen)
		g.releaseRefLocked()
		g.mu.Unlock()
		g.releaseDetached(rel)
		return nil, err
	}
	return &session{
		g:   g,
		gen: gen,
		sp:  sp,
		cg: graph.Canonical{
			Edges:       sp.ExtentAt(gen.edgesBase, gen.edgesLen),
			NumVertices: gen.numVertices,
			Degrees:     sp.ExtentAt(gen.degBase, gen.degLen),
			RankToID:    gen.rankToID,
		},
	}, nil
}

// close releases the session's private machine, unpins its generation
// (releasing a superseded generation's core when its last reader drains),
// and wakes a pending Close when the last session finishes. The core
// release — file syscalls for disk generations — runs outside the lock,
// before the drain signal, so Close still observes any release error.
func (s *session) close() {
	s.sp.Close()
	s.g.mu.Lock()
	rel := s.g.unpinLocked(s.gen)
	s.g.mu.Unlock()
	s.g.releaseDetached(rel)
	s.g.mu.Lock()
	s.g.releaseRefLocked()
	s.g.mu.Unlock()
}

func (g *Graph) releaseRefLocked() {
	g.active--
	if g.active == 0 {
		g.drain.Broadcast()
	}
}

// unpinLocked drops one reference to gen and, when no reader is left and
// it is no longer the current generation, hands it back for the caller
// to release with releaseDetached once the lock is dropped — releasing
// means file syscalls for disk generations, which must not stall every
// concurrent acquire behind g.mu. Nothing can re-pin the detached
// generation: acquire only pins g.cur, and a superseded generation never
// becomes current again.
func (g *Graph) unpinLocked(gen *generation) *generation {
	gen.refs--
	if gen.refs == 0 && gen != g.cur {
		return gen
	}
	return nil
}

// releaseDetached releases a generation handed out by unpinLocked (nil is
// a no-op). The failure has no caller to report to — the draining query
// already returned its Result — so the first one is kept for Close.
func (g *Graph) releaseDetached(gen *generation) {
	if gen == nil {
		return
	}
	if err := gen.release(); err != nil {
		g.mu.Lock()
		if g.releaseErr == nil {
			g.releaseErr = err
		}
		g.mu.Unlock()
	}
}

// release frees the generation's core: superseded disk generations close
// and remove their <DiskPath>.g<n> file; the Build image at DiskPath is
// closed but kept. The canonical metadata survives for the accessors.
func (gen *generation) release() error {
	if gen.released {
		return nil
	}
	gen.released = true
	gen.core = nil
	var err error
	if gen.coreFile != nil {
		err = gen.coreFile.Close()
		gen.coreFile = nil
	}
	if gen.path != "" {
		if rmErr := os.Remove(gen.path); err == nil {
			err = rmErr
		}
	}
	return err
}

// Close marks the handle closed — queries issued from now on return
// ErrGraphClosed — waits for the active queries and updates to finish,
// and releases every generation: superseded cores were already dropped
// when their last reader drained, and the current one is released here
// (closing the canonical-image file of disk-backed graphs and removing
// any <DiskPath>.g<n> update image). Disk-backed handles first checkpoint
// implicitly: the current generation is atomically promoted over the
// image at DiskPath and the now-obsolete write-ahead log is removed, so a
// cleanly closed image stands alone — the next Open adopts the latest
// generation with nothing to replay. If the promotion fails, the log is
// kept: the old image plus the log still replays to the current
// generation. Closing an already-closed Graph is a no-op. Close also
// surfaces the first failure, if any, from releasing a superseded
// generation earlier in the handle's life (those releases run when a
// query drains, where no caller can receive the error). Close must not be
// called from inside an emit callback or iterator body of this handle: it
// would wait for the very query it is running under.
//
// The handle's canonical metadata outlives Close: NumVertices, NumEdges,
// CanonIOs, Generation, and Options keep answering with the values of the
// generation that was current at Close time.
func (g *Graph) Close() error {
	g.mu.Lock()
	first := !g.closed
	g.closed = true
	for g.active > 0 {
		g.drain.Wait()
	}
	var err error
	if first {
		// End every live subscription with ErrGraphClosed. The drain above
		// excluded in-flight updates, so no delivery races this; queued
		// ChangeSets stay deliverable (drop=false) — consumers drain the
		// tail of the stream and then see the channel close.
		subs := g.subs
		g.subs = nil
		for _, s := range subs {
			s.finish(ErrGraphClosed, false)
		}
		var promoteErr, walErr error
		if g.opts.DiskPath != "" {
			walObsolete := true
			if g.cur.gen > g.persistedGen {
				if promoteErr = g.promote(g.cur); promoteErr == nil {
					g.persistedGen = g.cur.gen
				} else {
					// Keep the log: the durable state (persisted image plus
					// WAL) still replays to the current generation on the
					// next Open.
					walObsolete = false
				}
			}
			walErr = g.closeWAL(walObsolete)
		}
		g.cur.refs-- // the current pointer's own reference
		err = errors.Join(promoteErr, walErr, g.cur.release(), g.releaseErr)
	}
	g.mu.Unlock()
	return err
}

// NumVertices is the number of non-isolated vertices after deduplication,
// of the current generation. Like all canonical-metadata accessors it
// remains valid after Close.
func (g *Graph) NumVertices() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur.numVertices
}

// NumEdges is the number of canonical (deduplicated) edges of the current
// generation. It remains valid after Close.
func (g *Graph) NumEdges() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur.edgesLen
}

// CanonIOs is the one-time I/O cost paid to produce the current
// generation's canonical image: the Build canonicalization plus every
// delta merge installed so far (each Update adds its MergeIOs). Every
// Result of a query pinned to a generation reports that generation's
// value. It remains valid after Close.
func (g *Graph) CanonIOs() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur.canonIOs
}

// Generation is the current generation number: 0 after Build,
// incremented by every effective Update. It remains valid after Close.
func (g *Graph) Generation() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur.gen
}

// Options returns the (defaulted) build options of the handle. It remains
// valid after Close.
func (g *Graph) Options() Options { return g.opts }
