package repro

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// ErrGraphClosed is returned by queries against a closed Graph handle.
var ErrGraphClosed = errors.New("repro: graph handle is closed")

// Source supplies the edges a Graph is built from. Use FromEdges,
// FromReader, FromTextReader, or FromSpec.
type Source interface {
	loadEdges(o Options) ([][2]uint32, error)
}

type edgesSource [][2]uint32

func (s edgesSource) loadEdges(Options) ([][2]uint32, error) { return s, nil }

type readerSource struct{ r io.Reader }

func (s readerSource) loadEdges(Options) ([][2]uint32, error) { return ReadEdgeFile(s.r) }

type textReaderSource struct{ r io.Reader }

func (s textReaderSource) loadEdges(Options) ([][2]uint32, error) { return ReadTextEdges(s.r) }

type specSource string

func (s specSource) loadEdges(o Options) ([][2]uint32, error) { return Generate(string(s), o.Seed) }

// FromEdges sources a graph from an in-memory undirected edge list.
// Self-loops and duplicate edges are ignored during canonicalization.
func FromEdges(edges [][2]uint32) Source { return edgesSource(edges) }

// FromReader sources a graph from the library's binary edge-file format
// (as written by WriteEdgeFile / cmd/graphgen).
func FromReader(r io.Reader) Source { return readerSource{r} }

// FromTextReader sources a graph from a whitespace-separated text edge
// list (see ReadTextEdges).
func FromTextReader(r io.Reader) Source { return textReaderSource{r} }

// FromSpec sources a graph from a generator spec such as
// "gnm:n=1000,m=8000" (see Generate); the generator seed is Options.Seed.
func FromSpec(spec string) Source { return specSource(spec) }

// Graph is a reusable handle to a canonicalized graph frozen in a
// simulated (or file-backed) external memory. Build pays the O(sort(E))
// canonicalization of Section 1.3 exactly once and freezes the result
// into an immutable read-only core; every query — Triangles, Cliques,
// Match — then runs on its own session: a private M-word cache, private
// statistics, and a private scratch allocator layered over the shared
// core (the PEM model of P processors with private internal memories over
// a shared disk, one level up from the worker shards inside a query).
//
// Because sessions share nothing mutable, any number of queries —
// different patterns, k's, seeds, contexts — may run concurrently on one
// handle from different goroutines, and each reports exactly the Result
// it would report run alone: every session starts from the identical
// cold machine state, so emission order within a query, its I/O
// statistics, and CanonIOs are all byte-identical to a serialized run.
// Emit callbacks and iterator loop bodies run on their query's calling
// goroutine and may issue follow-up queries against the same handle;
// the one thing they must not do is Close it (Close waits for active
// queries, so a Close from inside one deadlocks).
//
// The handle's only lock is a close-guard: Close marks the handle closed
// (new queries fail with ErrGraphClosed), waits for active queries to
// drain, and releases the core.
type Graph struct {
	opts     Options // defaulted
	canonIOs uint64

	// The immutable canonical core: the external-memory image at the
	// allocation watermark after canonicalization, plus the (space-
	// independent) canonical metadata. Sessions rebind the extents into
	// their own Space; rankToID is shared read-only.
	core        extmem.Core
	coreWords   int64 // block-rounded watermark: session scratch starts here
	coreFile    *extmem.FileCore
	numVertices int
	edgesBase   int64
	edgesLen    int64
	degBase     int64
	degLen      int64
	rankToID    []uint32

	mu     sync.Mutex
	drain  sync.Cond // signalled when active drops to zero
	active int       // live query sessions
	seq    uint64    // per-session scratch-file suffix
	closed bool
}

// Build ingests edges from src, canonicalizes them once — O(sort(E))
// I/Os, run on the parallel external-memory sorts at Options.Workers
// unless Options.SequentialCanon is set — and freezes the canonical
// region into the handle's immutable core. Graphs with Options.DiskPath
// set leave the canonical image in the file at that path and serve
// queries from it; Close the handle to release it.
func Build(src Source, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	edges, err := src.loadEdges(opts)
	if err != nil {
		return nil, err
	}

	emCfg := extmem.Config{M: opts.MemoryWords, B: opts.BlockWords}
	var sp *extmem.Space
	if opts.DiskPath != "" {
		sp, err = extmem.NewFileSpace(emCfg, opts.DiskPath)
		if err != nil {
			return nil, err
		}
	} else {
		sp = extmem.NewSpace(emCfg)
	}

	var el graph.EdgeList
	for _, e := range edges {
		el.Add(e[0], e[1])
	}
	var cg graph.Canonical
	var canonWS []extmem.Stats
	if opts.SequentialCanon {
		cg = graph.CanonicalizeList(sp, el)
	} else {
		// The parallel sort workers' I/Os are part of the canonicalization
		// cost; the sorts are byte-identical to the sequential ones at
		// every worker count (including 1), so CanonIOs is invariant in
		// Options.Workers.
		workers := opts.workers()
		sorter := func(ext extmem.Extent, stride int, key emsort.Key) {
			canonWS = extmem.AddStatsVec(canonWS, emsort.ParallelSortRecords(ext, stride, key, workers))
		}
		cg = graph.Canonicalize(sp, el.Write(sp), sorter)
	}
	canonStats := sp.Stats()
	for _, w := range canonWS {
		canonStats.Add(w)
	}

	g := &Graph{
		opts:        opts,
		canonIOs:    canonStats.IOs(),
		numVertices: cg.NumVertices,
		edgesBase:   cg.Edges.Base(),
		edgesLen:    cg.Edges.Len(),
		degBase:     cg.Degrees.Base(),
		degLen:      cg.Degrees.Len(),
		rankToID:    cg.RankToID,
	}
	g.drain.L = &g.mu

	// Freeze the canonicalized region [0, mark) into the immutable core.
	// Memory-backed graphs take the one Snapshot here (writing back the
	// build cache's dirty blocks; those write-backs are part of the build,
	// not of any query, and canonStats is already captured). Disk-backed
	// graphs flush the image to the backing file instead and serve the
	// core from it read-only, so the frozen graph does not have to fit in
	// process memory.
	mark := sp.Mark()
	g.coreWords = (mark + int64(opts.BlockWords) - 1) &^ int64(opts.BlockWords-1)
	if opts.DiskPath != "" {
		sp.Flush()
		if err := sp.Close(); err != nil {
			return nil, err
		}
		fc, err := extmem.NewFileCore(opts.DiskPath)
		if err != nil {
			return nil, err
		}
		g.core, g.coreFile = fc, fc
	} else {
		g.core = extmem.WordsCore(sp.Snapshot(sp.ExtentAt(0, mark)))
		sp.Close()
	}
	return g, nil
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// session is the per-query execution state: a private Space layered over
// the handle's immutable core, with the canonical extents rebound into
// it. Acquired at query start, closed (scratch file removed, refcount
// dropped) when the query returns.
type session struct {
	g  *Graph
	sp *extmem.Space
	cg graph.Canonical
}

// acquire opens a new session against the handle, failing with
// ErrGraphClosed after Close.
func (g *Graph) acquire() (*session, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrGraphClosed
	}
	g.active++
	g.seq++
	scratch := ""
	if g.opts.DiskPath != "" {
		scratch = fmt.Sprintf("%s.q%d", g.opts.DiskPath, g.seq)
	}
	core := g.core
	g.mu.Unlock()

	cfg := extmem.Config{M: g.opts.MemoryWords, B: g.opts.BlockWords}
	sp, err := extmem.NewSessionSpace(cfg, core, g.coreWords, scratch)
	if err != nil {
		g.releaseRef()
		return nil, err
	}
	return &session{
		g:  g,
		sp: sp,
		cg: graph.Canonical{
			Edges:       sp.ExtentAt(g.edgesBase, g.edgesLen),
			NumVertices: g.numVertices,
			Degrees:     sp.ExtentAt(g.degBase, g.degLen),
			RankToID:    g.rankToID,
		},
	}, nil
}

// close releases the session's private machine and drops the handle
// reference, waking a pending Close when the last session drains.
func (s *session) close() {
	s.sp.Close()
	s.g.releaseRef()
}

func (g *Graph) releaseRef() {
	g.mu.Lock()
	g.active--
	if g.active == 0 {
		g.drain.Broadcast()
	}
	g.mu.Unlock()
}

// Close marks the handle closed — queries issued from now on return
// ErrGraphClosed — waits for the active queries to finish, and releases
// the core (closing the canonical-image file of disk-backed graphs).
// Closing an already-closed Graph is a no-op. Close must not be called
// from inside an emit callback or iterator body of this handle: it would
// wait for the very query it is running under.
//
// The handle's canonical metadata outlives Close: NumVertices, NumEdges,
// CanonIOs, and Options keep answering with their build-time values.
func (g *Graph) Close() error {
	g.mu.Lock()
	g.closed = true
	for g.active > 0 {
		g.drain.Wait()
	}
	fc := g.coreFile
	g.core, g.coreFile = nil, nil
	g.mu.Unlock()
	if fc != nil {
		return fc.Close()
	}
	return nil
}

// NumVertices is the number of non-isolated vertices after deduplication.
// Like all canonical-metadata accessors it remains valid after Close.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges is the number of canonical (deduplicated) edges. It remains
// valid after Close.
func (g *Graph) NumEdges() int64 { return g.edgesLen }

// CanonIOs is the I/O cost of the one-time canonicalization paid by
// Build; every Result of this handle reports the same value. It remains
// valid after Close.
func (g *Graph) CanonIOs() uint64 { return g.canonIOs }

// Options returns the (defaulted) build options of the handle. It remains
// valid after Close.
func (g *Graph) Options() Options { return g.opts }
