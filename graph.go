package repro

import (
	"errors"
	"io"
	"runtime"
	"sync"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// ErrGraphClosed is returned by queries against a closed Graph handle.
var ErrGraphClosed = errors.New("repro: graph handle is closed")

// Source supplies the edges a Graph is built from. Use FromEdges,
// FromReader, FromTextReader, or FromSpec.
type Source interface {
	loadEdges(o Options) ([][2]uint32, error)
}

type edgesSource [][2]uint32

func (s edgesSource) loadEdges(Options) ([][2]uint32, error) { return s, nil }

type readerSource struct{ r io.Reader }

func (s readerSource) loadEdges(Options) ([][2]uint32, error) { return ReadEdgeFile(s.r) }

type textReaderSource struct{ r io.Reader }

func (s textReaderSource) loadEdges(Options) ([][2]uint32, error) { return ReadTextEdges(s.r) }

type specSource string

func (s specSource) loadEdges(o Options) ([][2]uint32, error) { return Generate(string(s), o.Seed) }

// FromEdges sources a graph from an in-memory undirected edge list.
// Self-loops and duplicate edges are ignored during canonicalization.
func FromEdges(edges [][2]uint32) Source { return edgesSource(edges) }

// FromReader sources a graph from the library's binary edge-file format
// (as written by WriteEdgeFile / cmd/graphgen).
func FromReader(r io.Reader) Source { return readerSource{r} }

// FromTextReader sources a graph from a whitespace-separated text edge
// list (see ReadTextEdges).
func FromTextReader(r io.Reader) Source { return textReaderSource{r} }

// FromSpec sources a graph from a generator spec such as
// "gnm:n=1000,m=8000" (see Generate); the generator seed is Options.Seed.
func FromSpec(spec string) Source { return specSource(spec) }

// Graph is a reusable handle to a canonicalized graph resident in a
// simulated (or file-backed) external memory. Build pays the O(sort(E))
// canonicalization of Section 1.3 exactly once; every query — Triangles,
// Cliques, Match — then runs against the retained degree-ordered
// representation, so N queries cost one canonicalization plus N
// enumerations. Queries serialize on an internal lock (the simulated
// machine is single-socket by construction: one coordinator cache;
// worker parallelism lives inside a query, not across queries), are
// independently cancellable through their context, and leave the handle
// in a pristine cold-cache state, so a query's I/O statistics depend only
// on its Query value — never on the queries that ran before it. Because
// of that lock, emit callbacks and iterator loop bodies — which run
// while their query holds it — must not issue further queries against,
// or Close, the same handle; collect what a follow-up query needs and
// run it after the current one returns.
type Graph struct {
	mu       sync.Mutex
	sp       *extmem.Space
	cg       graph.Canonical
	opts     Options // defaulted
	canonIOs uint64
	mark     int64 // allocator watermark after canonicalization
	closed   bool
}

// Build ingests edges from src, canonicalizes them once — O(sort(E))
// I/Os, run on the parallel external-memory sorts at Options.Workers
// unless Options.SequentialCanon is set — and returns the reusable
// handle. Graphs with Options.DiskPath set hold an open file; Close the
// handle to release it.
func Build(src Source, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	edges, err := src.loadEdges(opts)
	if err != nil {
		return nil, err
	}

	emCfg := extmem.Config{M: opts.MemoryWords, B: opts.BlockWords}
	var sp *extmem.Space
	if opts.DiskPath != "" {
		sp, err = extmem.NewFileSpace(emCfg, opts.DiskPath)
		if err != nil {
			return nil, err
		}
	} else {
		sp = extmem.NewSpace(emCfg)
	}

	var el graph.EdgeList
	for _, e := range edges {
		el.Add(e[0], e[1])
	}
	var cg graph.Canonical
	var canonWS []extmem.Stats
	if opts.SequentialCanon {
		cg = graph.CanonicalizeList(sp, el)
	} else {
		// The parallel sort workers' I/Os are part of the canonicalization
		// cost; the sorts are byte-identical to the sequential ones at
		// every worker count (including 1), so CanonIOs is invariant in
		// Options.Workers.
		workers := opts.workers()
		sorter := func(ext extmem.Extent, stride int, key emsort.Key) {
			canonWS = extmem.AddStatsVec(canonWS, emsort.ParallelSortRecords(ext, stride, key, workers))
		}
		cg = graph.Canonicalize(sp, el.Write(sp), sorter)
	}
	canonStats := sp.Stats()
	for _, w := range canonWS {
		canonStats.Add(w)
	}
	sp.DropCache()
	sp.ResetStats()

	return &Graph{
		sp:       sp,
		cg:       cg,
		opts:     opts,
		canonIOs: canonStats.IOs(),
		mark:     sp.Mark(),
	}, nil
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Close releases the handle's external memory (closing the backing file
// for disk-backed graphs). Closing an already-closed Graph is a no-op;
// queries against a closed Graph return ErrGraphClosed.
func (g *Graph) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	g.closed = true
	return g.sp.Close()
}

// NumVertices is the number of non-isolated vertices after deduplication.
func (g *Graph) NumVertices() int { return g.cg.NumVertices }

// NumEdges is the number of canonical (deduplicated) edges.
func (g *Graph) NumEdges() int64 { return g.cg.Edges.Len() }

// CanonIOs is the I/O cost of the one-time canonicalization paid by
// Build; every Result of this handle reports the same value.
func (g *Graph) CanonIOs() uint64 { return g.canonIOs }

// Options returns the (defaulted) build options of the handle.
func (g *Graph) Options() Options { return g.opts }

// resetQueryLocked restores the handle to its post-Build state: query
// scratch released, cache cold, statistics zeroed. Called with g.mu held
// after every query, successful or cancelled, so each query starts from
// an identical machine state and its accounting is reproducible.
func (g *Graph) resetQueryLocked() {
	g.sp.Release(g.mark)
	g.sp.DropCache()
	g.sp.ResetStats()
}
