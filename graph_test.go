package repro

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// TestBuildOnceQueriesMany is the core contract of the Graph handle: the
// O(sort(E)) canonicalization is paid exactly once at Build time, every
// query reports that same one-time CanonIOs, and repeated identical
// queries — interleaved with queries of other algorithms — reproduce
// identical statistics, because each query starts from the handle's
// pristine post-Build state.
func TestBuildOnceQueriesMany(t *testing.T) {
	g, err := Build(FromSpec("planted:n=300,m=2400,k=15"), Options{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	q := Query{Algorithm: CacheAware, Seed: 9}
	first, err := g.TrianglesFunc(nil, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.CanonIOs != g.CanonIOs() {
		t.Errorf("query CanonIOs %d != handle CanonIOs %d", first.CanonIOs, g.CanonIOs())
	}
	if first.Triangles == 0 || first.Stats.IOs() == 0 {
		t.Fatalf("degenerate first query: %+v", first)
	}

	// Interleave a different algorithm and a clique query, then repeat the
	// original query: CanonIOs must not be re-paid (same value, and the
	// repeat's enumeration stats are identical — no canonicalization cost
	// leaked into them).
	if _, err := g.TrianglesFunc(nil, Query{Algorithm: HuTaoChung}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CliquesFunc(nil, 4, Query{Seed: 3}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := g.TrianglesFunc(nil, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.CanonIOs != first.CanonIOs {
			t.Errorf("repeat %d: CanonIOs %d, want the one-time %d", i, res.CanonIOs, first.CanonIOs)
		}
		if res.Stats != first.Stats {
			t.Errorf("repeat %d: Stats %+v differ from first query %+v", i, res.Stats, first.Stats)
		}
		if res.Triangles != first.Triangles {
			t.Errorf("repeat %d: %d triangles, want %d", i, res.Triangles, first.Triangles)
		}
	}
}

// TestBuildSourcesAgree: the same graph through every Source kind yields
// the same canonical representation and triangle count.
func TestBuildSourcesAgree(t *testing.T) {
	edges, err := Generate("gnm:n=200,m=1600", 5)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteEdgeFile(&bin, edges); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := WriteTextEdges(&txt, edges); err != nil {
		t.Fatal(err)
	}
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 5}
	sources := map[string]Source{
		"edges": FromEdges(edges),
		"bin":   FromReader(&bin),
		"text":  FromTextReader(&txt),
		"spec":  FromSpec("gnm:n=200,m=1600"),
	}
	var want Result
	for _, name := range []string{"edges", "bin", "text", "spec"} {
		g, err := Build(sources[name], opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := g.TrianglesFunc(nil, Query{Seed: 2}, nil)
		g.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "edges" {
			want = res
			continue
		}
		if res.Triangles != want.Triangles || res.Vertices != want.Vertices || res.Edges != want.Edges {
			t.Errorf("%s: (t=%d V=%d E=%d) differs from edges source (t=%d V=%d E=%d)",
				name, res.Triangles, res.Vertices, res.Edges, want.Triangles, want.Vertices, want.Edges)
		}
	}
}

// TestBuildDiskBacked: a file-backed handle answers repeated queries with
// the identical I/O trace of a memory-backed one.
func TestBuildDiskBacked(t *testing.T) {
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 5}
	mem, err := Build(FromSpec("gnm:n=200,m=2000"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	opts.DiskPath = filepath.Join(t.TempDir(), "em.bin")
	disk, err := Build(FromSpec("gnm:n=200,m=2000"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	q := Query{Seed: 1}
	a, err := mem.TrianglesFunc(nil, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b, err := disk.TrianglesFunc(nil, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Triangles != b.Triangles || a.Stats.IOs() != b.Stats.IOs() {
			t.Errorf("disk query %d: (t=%d IOs=%d) vs memory (t=%d IOs=%d)",
				i, b.Triangles, b.Stats.IOs(), a.Triangles, a.Stats.IOs())
		}
	}
}

// TestGraphClosed: queries against a closed handle fail with
// ErrGraphClosed; closing twice is a no-op.
func TestGraphClosed(t *testing.T) {
	g, err := Build(FromSpec("clique:n=10"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TrianglesFunc(nil, Query{}, nil); !errors.Is(err, ErrGraphClosed) {
		t.Errorf("TrianglesFunc on closed handle: %v, want ErrGraphClosed", err)
	}
	if _, err := g.CliquesFunc(nil, 4, Query{}, nil); !errors.Is(err, ErrGraphClosed) {
		t.Errorf("CliquesFunc on closed handle: %v, want ErrGraphClosed", err)
	}
	if _, err := g.MatchFunc(nil, PatternDiamond, Query{}, nil); !errors.Is(err, ErrGraphClosed) {
		t.Errorf("MatchFunc on closed handle: %v, want ErrGraphClosed", err)
	}
	sawErr := false
	for _, err := range g.Triangles(context.Background(), Query{}) {
		if !errors.Is(err, ErrGraphClosed) {
			t.Errorf("iterator on closed handle yielded %v", err)
		}
		sawErr = true
	}
	if !sawErr {
		t.Error("iterator on closed handle yielded nothing")
	}
}

// TestBuildValidation: the machine description is validated at Build.
func TestBuildValidation(t *testing.T) {
	if _, err := Build(FromEdges(nil), Options{BlockWords: 100, MemoryWords: 100000}); err == nil {
		t.Error("non-power-of-two block accepted")
	}
	if _, err := Build(FromEdges(nil), Options{BlockWords: 128, MemoryWords: 1000}); err == nil {
		t.Error("short cache accepted")
	}
	if _, err := Build(FromSpec("nope:n=3"), Options{}); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := Build(FromReader(bytes.NewReader([]byte("junk"))), Options{}); err == nil {
		t.Error("bad edge file accepted")
	}
}
