// Package analytics computes triangle-based graph statistics — per-vertex
// triangle counts, local and global clustering coefficients, top-k most
// clustered vertices — entirely in the external-memory model, on top of
// the enumeration algorithms. It is the kind of downstream consumer the
// paper's introduction motivates (community detection, social-network
// analysis).
package analytics

import (
	"container/heap"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

// Profile holds the triangle statistics of a graph. Extents index by
// vertex rank (the canonical order).
type Profile struct {
	// Total is the number of triangles in the graph.
	Total uint64
	// Counts.Read(r) is the number of triangles containing rank r.
	Counts extmem.Extent
	// Wedges is the number of paths of length two, Σ_v C(deg(v), 2).
	Wedges uint64
}

// Compute runs the given enumeration algorithm and aggregates per-vertex
// triangle counts with sorting and scanning: O(sort(t) + sort(E)) I/Os on
// top of the enumeration itself.
func Compute(sp *extmem.Space, g graph.Canonical, seed uint64, run trienum.Lister) Profile {
	v := int64(g.NumVertices)
	counts := sp.Alloc(v)
	p := Profile{Counts: counts}

	list, _ := trienum.ListTriangles(sp, g, seed, run)
	t := trienum.ListLen(list)
	p.Total = uint64(t)

	mark := sp.Mark()
	// Flatten to one vertex id per word, sort, and run-length encode.
	flat := sp.Alloc(3 * t)
	for i := int64(0); i < t; i++ {
		a, b, c := trienum.ReadTriple(list, i)
		flat.Write(3*i, extmem.Word(a))
		flat.Write(3*i+1, extmem.Word(b))
		flat.Write(3*i+2, extmem.Word(c))
	}
	emsort.Sort(flat, emsort.Identity)
	var pos int64
	for r := int64(0); r < v; r++ {
		var n extmem.Word
		for pos < flat.Len() && flat.Read(pos) == extmem.Word(r) {
			n++
			pos++
		}
		counts.Write(r, n)
	}
	sp.Release(mark)

	// Wedge count from the degree extent.
	for r := int64(0); r < v; r++ {
		d := g.Degrees.Read(r)
		p.Wedges += d * (d - 1) / 2
	}
	return p
}

// GlobalClustering returns the global clustering coefficient (transitivity)
// 3t / wedges, or 0 for wedgeless graphs.
func (p Profile) GlobalClustering() float64 {
	if p.Wedges == 0 {
		return 0
	}
	return 3 * float64(p.Total) / float64(p.Wedges)
}

// LocalClustering returns the local clustering coefficient of rank r:
// triangles(r) / C(deg(r), 2), or 0 for degree < 2.
func (p Profile) LocalClustering(g graph.Canonical, r uint32) float64 {
	d := g.Degrees.Read(int64(r))
	if d < 2 {
		return 0
	}
	return float64(p.Counts.Read(int64(r))) / (float64(d) * float64(d-1) / 2)
}

// AverageLocalClustering returns the mean local clustering coefficient
// over all vertices (Watts–Strogatz style).
func (p Profile) AverageLocalClustering(g graph.Canonical) float64 {
	v := int64(g.NumVertices)
	if v == 0 {
		return 0
	}
	var sum float64
	for r := int64(0); r < v; r++ {
		sum += p.LocalClustering(g, uint32(r))
	}
	return sum / float64(v)
}

// VertexCount pairs a vertex (by rank) with its triangle count.
type VertexCount struct {
	Rank      uint32
	Triangles uint64
}

// TopK returns the k vertices participating in the most triangles, in
// decreasing order, using a single scan and an O(k)-word heap.
func (p Profile) TopK(k int) []VertexCount {
	if k <= 0 {
		return nil
	}
	release := p.Counts.Space().Lease(2 * k)
	defer release()
	h := &vcHeap{}
	v := p.Counts.Len()
	for r := int64(0); r < v; r++ {
		n := p.Counts.Read(r)
		if n == 0 {
			continue
		}
		vc := VertexCount{Rank: uint32(r), Triangles: n}
		if h.Len() < k {
			heap.Push(h, vc)
		} else if less((*h)[0], vc) {
			(*h)[0] = vc
			heap.Fix(h, 0)
		}
	}
	out := make([]VertexCount, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(VertexCount)
	}
	return out
}

// less orders by (triangles, then rank) ascending so TopK output is
// deterministic.
func less(a, b VertexCount) bool {
	if a.Triangles != b.Triangles {
		return a.Triangles < b.Triangles
	}
	return a.Rank > b.Rank
}

type vcHeap []VertexCount

func (h vcHeap) Len() int            { return len(h) }
func (h vcHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h vcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vcHeap) Push(x interface{}) { *h = append(*h, x.(VertexCount)) }
func (h *vcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
