package analytics

import (
	"math"
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
}

func cacheAware(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) trienum.Info {
	return trienum.CacheAware(sp, g, seed, emit)
}

func profileOf(t *testing.T, el graph.EdgeList) (Profile, graph.Canonical) {
	t.Helper()
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	return Compute(sp, g, 1, cacheAware), g
}

func TestProfileClique(t *testing.T) {
	n := 10
	p, g := profileOf(t, graph.Clique(n))
	wantTotal := uint64(n * (n - 1) * (n - 2) / 6)
	if p.Total != wantTotal {
		t.Fatalf("total %d want %d", p.Total, wantTotal)
	}
	// Every vertex of K_n is in C(n-1, 2) triangles, clustering 1.
	per := uint64((n - 1) * (n - 2) / 2)
	for r := 0; r < n; r++ {
		if got := p.Counts.Read(int64(r)); got != extmem.Word(per) {
			t.Errorf("rank %d count %d want %d", r, got, per)
		}
		if c := p.LocalClustering(g, uint32(r)); math.Abs(c-1) > 1e-12 {
			t.Errorf("rank %d clustering %f want 1", r, c)
		}
	}
	if gc := p.GlobalClustering(); math.Abs(gc-1) > 1e-12 {
		t.Errorf("global clustering %f want 1", gc)
	}
	if ac := p.AverageLocalClustering(g); math.Abs(ac-1) > 1e-12 {
		t.Errorf("average clustering %f want 1", ac)
	}
}

func TestProfileTriangleFree(t *testing.T) {
	p, g := profileOf(t, graph.Grid(6, 6))
	if p.Total != 0 || p.GlobalClustering() != 0 || p.AverageLocalClustering(g) != 0 {
		t.Error("triangle-free graph must have zero statistics")
	}
	if p.Wedges == 0 {
		t.Error("grid has wedges")
	}
}

func TestProfileAgainstOracle(t *testing.T) {
	el := graph.PlantedClique(100, 400, 11, 7)
	oracle := graph.NewOracle(el)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	p := Compute(sp, g, 5, cacheAware)
	if p.Total != oracle.Count() {
		t.Fatalf("total %d, oracle %d", p.Total, oracle.Count())
	}
	// Recompute per-vertex counts from the oracle's triples.
	want := make(map[uint32]uint64)
	for _, tr := range oracle.Triples() {
		want[tr.V1]++
		want[tr.V2]++
		want[tr.V3]++
	}
	for r := 0; r < g.NumVertices; r++ {
		id := g.RankToID[r]
		if got := uint64(p.Counts.Read(int64(r))); got != want[id] {
			t.Errorf("vertex %d: count %d, oracle %d", id, got, want[id])
		}
	}
	// Wedge count cross-check.
	var wedges uint64
	deg := map[uint32]uint64{}
	for _, e := range el.Edges {
		deg[graph.U(e)]++
		deg[graph.V(e)]++
	}
	seen := map[uint64]bool{}
	_ = seen
	for _, d := range deg {
		wedges += d * (d - 1) / 2
	}
	if p.Wedges != wedges {
		t.Errorf("wedges %d, recomputed %d", p.Wedges, wedges)
	}
}

func TestTopK(t *testing.T) {
	// Planted clique: its members must dominate the top-k.
	el := graph.PlantedClique(200, 300, 12, 9)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	p := Compute(sp, g, 2, cacheAware)
	top := p.TopK(12)
	if len(top) != 12 {
		t.Fatalf("topk returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Triangles > top[i-1].Triangles {
			t.Fatal("topk not in decreasing order")
		}
	}
	// All top-12 counts must be at least C(11,2) = 55 (clique-internal).
	if top[11].Triangles < 55 {
		t.Errorf("12th vertex has %d triangles; planted clique guarantees 55", top[11].Triangles)
	}
	if p.TopK(0) != nil {
		t.Error("TopK(0) should be nil")
	}
	if got := p.TopK(10 * g.NumVertices); len(got) == 0 {
		t.Error("huge k should return all participating vertices")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	p, _ := profileOf(t, graph.Clique(8)) // all counts equal
	a := p.TopK(3)
	b := p.TopK(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopK not deterministic")
		}
	}
	if a[0].Rank > a[1].Rank {
		t.Error("ties should prefer lower ranks first")
	}
}

func TestProfileWithObliviousEnumerator(t *testing.T) {
	el := graph.GNM(80, 500, 3)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	p := Compute(sp, g, 4, func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) trienum.Info {
		return trienum.Oblivious(sp, g, seed, emit)
	})
	if p.Total != graph.NewOracle(el).Count() {
		t.Error("oblivious-backed profile wrong")
	}
}
