// Package baseline implements the comparison algorithms from Section 1.1
// of the paper — the pre-existing approaches the paper's algorithms are
// measured against:
//
//   - BlockNestedLoop: triangle enumeration as two pipelined block-nested-
//     loop joins, O(E³/(M²·B)) I/Os (the classical database plan).
//   - EdgeIterator: Menegola-style edge iterator intersecting forward
//     adjacency lists, O(E + E^1.5/B) I/Os.
//   - trienum.Dementiev: sort-based node iterator, O(sort(E^1.5)) I/Os.
//   - trienum.HuTaoChung: the SIGMOD 2013 algorithm, O(E²/(M·B)) I/Os.
//
// All consume graphs in canonical form and honor the same emit contract as
// the paper's algorithms.
package baseline

import (
	"context"

	"repro/internal/ctxutil"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

// edgeIterCheckEvery is the EdgeIterator cancellation granularity: the
// context is consulted once per this many edges of the outer scan.
const edgeIterCheckEvery = 512

// BlockNestedLoop enumerates triangles with two pipelined block-nested-
// loop joins: E(v1,v2) ⋈ E(v2,v3) produces a wedge stream that is buffered
// in memory and closed against E(v1,v3) one buffer-load at a time. This is
// the O(E³/(M²·B)) plan the introduction says any relational engine could
// run; it is competitive only when E is close to M.
func BlockNestedLoop(sp *extmem.Space, g graph.Canonical, emit graph.Emit) trienum.Info {
	info, _ := BlockNestedLoopCtx(nil, sp, g, emit)
	return info
}

// BlockNestedLoopCtx is BlockNestedLoop with cooperative cancellation
// between the outer build-side chunks — the plan's pass boundaries. On
// cancellation it returns ctx.Err(); the rows emitted before it are a
// prefix of the full stream. A nil ctx never cancels.
func BlockNestedLoopCtx(ctx context.Context, sp *extmem.Space, g graph.Canonical, emit graph.Emit) (trienum.Info, error) {
	var info trienum.Info
	n := g.Edges.Len()
	if n == 0 {
		return info, ctxutil.Err(ctx)
	}
	cfg := sp.Config()
	chunk := int64(cfg.M / 8)
	if chunk < 4 {
		chunk = 4
	}
	edges := g.Edges

	type wedge struct{ v1, v2, v3 uint32 }

	for lo := int64(0); lo < n; lo += chunk {
		if err := ctxutil.Err(ctx); err != nil {
			return info, err
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		release := leaseFor(sp, int(hi-lo)*6)
		// First join operand: chunk of (v1, v2) edges, hashed on v2.
		byMid := make(map[uint32][]uint32, hi-lo)
		for i := lo; i < hi; i++ {
			e := edges.Read(i)
			byMid[graph.V(e)] = append(byMid[graph.V(e)], graph.U(e))
		}
		// Wedge buffer for the second pipelined join.
		wedgeCap := int(chunk)
		wedges := make([]wedge, 0, wedgeCap)
		releaseW := leaseFor(sp, wedgeCap*3)

		closeWedges := func() {
			if len(wedges) == 0 {
				return
			}
			probe := make(map[extmem.Word][]wedge, len(wedges))
			for _, w := range wedges {
				k := graph.PackOrdered(w.v1, w.v3)
				probe[k] = append(probe[k], w)
			}
			for i := int64(0); i < n; i++ {
				e := edges.Read(i)
				for _, w := range probe[e] {
					info.Triangles++
					emit(w.v1, w.v2, w.v3)
				}
			}
			wedges = wedges[:0]
		}

		// Scan the (v2, v3) side, streaming wedges into the buffer.
		for i := int64(0); i < n; i++ {
			e := edges.Read(i)
			mid, far := graph.U(e), graph.V(e)
			for _, v1 := range byMid[mid] {
				wedges = append(wedges, wedge{v1, mid, far})
				if len(wedges) == wedgeCap {
					closeWedges()
				}
			}
		}
		closeWedges()
		releaseW()
		release()
		info.Subproblems++
	}
	return info, nil
}

// EdgeIterator enumerates triangles by intersecting the forward adjacency
// lists of each edge's endpoints (Menegola's external-memory edge
// iterator): O(E + E^1.5/B) I/Os — the E term is the per-edge random
// access into the adjacency index.
func EdgeIterator(sp *extmem.Space, g graph.Canonical, emit graph.Emit) trienum.Info {
	info, _ := EdgeIteratorCtx(nil, sp, g, emit)
	return info
}

// EdgeIteratorCtx is EdgeIterator with cooperative cancellation every
// edgeIterCheckEvery edges of the outer scan. On cancellation it returns
// ctx.Err(); the triangles emitted before it are a prefix of the full
// stream. A nil ctx never cancels.
func EdgeIteratorCtx(ctx context.Context, sp *extmem.Space, g graph.Canonical, emit graph.Emit) (trienum.Info, error) {
	var info trienum.Info
	n := g.Edges.Len()
	if n == 0 {
		return info, ctxutil.Err(ctx)
	}
	if err := ctxutil.Err(ctx); err != nil {
		return info, err
	}
	mark := sp.Mark()
	defer sp.Release(mark)

	// Offset index: off[v] .. off[v+1] is v's forward list in the sorted
	// canonical edge extent.
	v := int64(g.NumVertices)
	off := sp.Alloc(v + 1)
	var cur int64
	for r := int64(0); r <= v; r++ {
		for cur < n && int64(graph.U(g.Edges.Read(cur))) < r {
			cur++
		}
		off.Write(r, extmem.Word(cur))
	}

	for i := int64(0); i < n; i++ {
		if i%edgeIterCheckEvery == 0 {
			if err := ctxutil.Err(ctx); err != nil {
				return info, err
			}
		}
		e := g.Edges.Read(i)
		u, w := graph.U(e), graph.V(e)
		// Merge-intersect forward lists of u and w.
		a, aEnd := int64(off.Read(int64(u))), int64(off.Read(int64(u)+1))
		b, bEnd := int64(off.Read(int64(w))), int64(off.Read(int64(w)+1))
		for a < aEnd && b < bEnd {
			x, y := graph.V(g.Edges.Read(a)), graph.V(g.Edges.Read(b))
			switch {
			case x < y:
				a++
			case x > y:
				b++
			default:
				info.Triangles++
				emit(u, w, x)
				a++
				b++
			}
		}
	}
	return info, nil
}

func leaseFor(sp *extmem.Space, words int) func() {
	cfg := sp.Config()
	if maxLease := cfg.M - 2*cfg.B - sp.Leased(); words > maxLease {
		words = maxLease
	}
	if words <= 0 {
		return func() {}
	}
	return sp.Lease(words)
}
