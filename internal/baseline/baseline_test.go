package baseline

import (
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
}

type runner struct {
	name string
	run  func(sp *extmem.Space, g graph.Canonical, emit graph.Emit) trienum.Info
}

var runners = []runner{
	{"blocknestedloop", BlockNestedLoop},
	{"edgeiterator", EdgeIterator},
	{"hutaochung", trienum.HuTaoChung},
	{"dementiev", trienum.Dementiev},
}

func TestBaselinesAgainstOracle(t *testing.T) {
	workloads := map[string]graph.EdgeList{
		"empty":     {},
		"triangle":  graph.Clique(3),
		"k15":       graph.Clique(15),
		"gnm":       graph.GNM(90, 600, 4),
		"powerlaw":  graph.PowerLaw(120, 500, 2.3, 5),
		"bipartite": graph.BipartiteRandom(25, 25, 200, 6),
		"grid":      graph.Grid(6, 7),
		"sells":     graph.Sells(12, 7, 7, 3, 0.5, 7),
		"planted":   graph.PlantedClique(70, 150, 9, 8),
	}
	for name, el := range workloads {
		oracle := graph.NewOracle(el)
		for _, r := range runners {
			sp := newSpace()
			g := graph.CanonicalizeList(sp, el)
			var got []graph.Triple
			info := r.run(sp, g, func(a, b, c uint32) {
				got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
			})
			if ok, diag := oracle.SameSet(got); !ok {
				t.Errorf("%s/%s: wrong set (want %d got %d): %s", name, r.name, oracle.Count(), len(got), diag)
			}
			if info.Triangles != oracle.Count() {
				t.Errorf("%s/%s: Info.Triangles=%d want %d", name, r.name, info.Triangles, oracle.Count())
			}
		}
	}
}

func TestBaselinesTinyMemory(t *testing.T) {
	el := graph.PlantedClique(100, 500, 11, 9)
	oracle := graph.NewOracle(el)
	for _, r := range runners {
		sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
		g := graph.CanonicalizeList(sp, el)
		var got []graph.Triple
		r.run(sp, g, func(a, b, c uint32) {
			got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
		})
		if ok, diag := oracle.SameSet(got); !ok {
			t.Errorf("%s under tiny memory: %s", r.name, diag)
		}
	}
}

func TestEmitOrdering(t *testing.T) {
	el := graph.Clique(12)
	for _, r := range runners {
		sp := newSpace()
		g := graph.CanonicalizeList(sp, el)
		bad := 0
		r.run(sp, g, func(a, b, c uint32) {
			if !(a < b && b < c) {
				bad++
			}
		})
		if bad > 0 {
			t.Errorf("%s: %d unsorted emissions", r.name, bad)
		}
	}
}

func TestHuTaoChungIOBeatsNestedLoopWhenMemorySmall(t *testing.T) {
	// With E >> M, the SIGMOD'13 algorithm must use far fewer I/Os than
	// block-nested-loop join: E²/(MB) vs E³/(M²B).
	el := graph.GNM(220, 4000, 10)
	measure := func(run func(sp *extmem.Space, g graph.Canonical, emit graph.Emit) trienum.Info) uint64 {
		sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
		g := graph.CanonicalizeList(sp, el)
		sp.DropCache()
		sp.ResetStats()
		run(sp, g, func(a, b, c uint32) {})
		return sp.Stats().IOs()
	}
	bnl := measure(BlockNestedLoop)
	htc := measure(trienum.HuTaoChung)
	if htc >= bnl {
		t.Errorf("HuTaoChung %d I/Os >= BlockNestedLoop %d I/Os; expected clear win at E>>M", htc, bnl)
	}
	t.Logf("bnl=%d huTaoChung=%d ratio=%.1f", bnl, htc, float64(bnl)/float64(htc))
}
