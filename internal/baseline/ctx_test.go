package baseline

import (
	"context"
	"errors"
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// TestBaselineCtxCancellation mirrors trienum's cancellation suites for
// the Section 1.1 baselines: cancelling from inside emit stops the run
// at its next chunk/scan boundary with a strict prefix emitted and
// context.Canceled returned; a pre-cancelled context never starts the
// run; the Space is reusable afterwards.
func TestBaselineCtxCancellation(t *testing.T) {
	el := graph.Clique(60)
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	sp := extmem.NewSpace(cfg)
	g := graph.CanonicalizeList(sp, el)

	engines := map[string]func(ctx context.Context, emit graph.Emit) error{
		"nestedloop": func(ctx context.Context, emit graph.Emit) error {
			_, err := BlockNestedLoopCtx(ctx, sp, g, emit)
			return err
		},
		"edgeiterator": func(ctx context.Context, emit graph.Emit) error {
			_, err := EdgeIteratorCtx(ctx, sp, g, emit)
			return err
		},
	}
	for name, run := range engines {
		var full uint64
		if err := run(nil, graph.Counter(&full)); err != nil {
			t.Fatalf("%s: full run: %v", name, err)
		}
		if full == 0 {
			t.Fatalf("%s: degenerate full run", name)
		}

		ctx, cancel := context.WithCancel(context.Background())
		var seen uint64
		err := run(ctx, func(_, _, _ uint32) {
			seen++
			if seen == 50 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancelled run returned %v, want context.Canceled", name, err)
		}
		if seen == 0 || seen >= full {
			t.Errorf("%s: cancelled run emitted %d of %d — not an early stop", name, seen, full)
		}

		var n uint64
		if err := run(ctx, graph.Counter(&n)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled run returned %v", name, err)
		}
		if n != 0 {
			t.Errorf("%s: pre-cancelled run emitted %d triangles", name, n)
		}

		var again uint64
		if err := run(nil, graph.Counter(&again)); err != nil {
			t.Fatalf("%s: run after cancellation: %v", name, err)
		}
		if again != full {
			t.Errorf("%s: run after cancellation found %d triangles, want %d", name, again, full)
		}
	}
}
