// Package bias implements the small-bias sample spaces the deterministic
// algorithm of Section 4 draws its two-colorings from (Lemma 6, citing
// Alon, Goldreich, Håstad and Peralta).
//
// Construction. A two-coloring b: V → {0,1} is b_s(v) = <s, C(v)> where
//
//   - C(v) ∈ {0,1}^ℓ is the v-th column of the parity-check matrix of a
//     double-error-correcting BCH code: C(v) = (1, x_v, x_v^3) with x_v the
//     (v+1)-st nonzero element of GF(2^m), ℓ = 2m+1. Any four distinct
//     columns are linearly independent, so for a uniformly random seed s
//     the bits b_s(v1..v4) would be exactly 4-wise independent.
//   - s is drawn not uniformly but from an ε-biased space over ℓ bits
//     (AGHP "powering" construction: seeds are pairs (x,y) ∈ GF(2^r)², and
//     s_i = <bits(x^(i+1)), bits(y)>), which shrinks the family to
//     t = |GF(2^r)|² functions while keeping every 4-tuple of bits within
//     ε of uniform in L∞ — the guarantee Lemma 6 states.
//
// The theoretical family size for the paper's α = 1/log c is far too large
// to enumerate in a simulation, so Family takes its size as a parameter
// and the caller (the derandomized algorithm) verifies the paper's
// invariant (4) at run time after greedily selecting from the enumerated
// prefix. See DESIGN.md §2 for the substitution note.
package bias

import "math/bits"

// gf2Primitive holds primitive/irreducible polynomials for GF(2^m),
// m = 1..31, as the low-order bits beyond x^m (the standard table of
// primitive trinomials/pentanomials).
var gf2Primitive = map[int]uint64{
	1: 0x1, 2: 0x3, 3: 0x3, 4: 0x3, 5: 0x5, 6: 0x3, 7: 0x3, 8: 0x1b,
	9: 0x11, 10: 0x9, 11: 0x5, 12: 0x53, 13: 0x1b, 14: 0x2b, 15: 0x3,
	16: 0x2d, 17: 0x9, 18: 0x81, 19: 0x27, 20: 0x9, 21: 0x5, 22: 0x3,
	23: 0x21, 24: 0x87, 25: 0x9, 26: 0x47, 27: 0x27, 28: 0x9, 29: 0x5,
	30: 0x53, 31: 0x9,
}

// GF is a binary extension field GF(2^m) with m <= 31.
type GF struct {
	m    int
	poly uint64 // reduction polynomial: x^m + (poly bits)
}

// NewGF returns the field GF(2^m).
func NewGF(m int) GF {
	p, ok := gf2Primitive[m]
	if !ok {
		panic("bias: unsupported field degree")
	}
	return GF{m: m, poly: p}
}

// Degree returns m.
func (f GF) Degree() int { return f.m }

// Order returns 2^m.
func (f GF) Order() uint64 { return 1 << uint(f.m) }

// Mul multiplies two field elements (carry-less multiply with reduction).
func (f GF) Mul(a, b uint64) uint64 {
	var acc uint64
	for b != 0 {
		if b&1 != 0 {
			acc ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<uint(f.m)) != 0 {
			a ^= (1 << uint(f.m)) | f.poly
		}
	}
	return acc
}

// Pow raises a to the e-th power.
func (f GF) Pow(a uint64, e uint64) uint64 {
	result := uint64(1)
	for e > 0 {
		if e&1 != 0 {
			result = f.Mul(result, a)
		}
		a = f.Mul(a, a)
		e >>= 1
	}
	return result
}

// BCHCode generates the codewords C(v) = (1, x_v, x_v^3) packed into a
// uint64: bit 0 is the constant 1, bits 1..m are x_v, bits m+1..2m are
// x_v^3. Any four distinct codewords are linearly independent over GF(2).
type BCHCode struct {
	f GF
}

// NewBCHCode returns a code able to address at least n positions (vertex
// ids 0..n−1).
func NewBCHCode(n int) BCHCode {
	m := 1
	for (uint64(1)<<uint(m))-1 < uint64(n) {
		m++
	}
	if 2*m+1 > 63 {
		panic("bias: position space too large")
	}
	return BCHCode{f: NewGF(m)}
}

// Len returns the codeword length ℓ = 2m+1.
func (c BCHCode) Len() int { return 2*c.f.m + 1 }

// Positions returns the number of addressable positions, 2^m − 1.
func (c BCHCode) Positions() uint64 { return c.f.Order() - 1 }

// Word returns the packed codeword for position v (0-based).
func (c BCHCode) Word(v uint32) uint64 {
	x := uint64(v)%c.Positions() + 1 // nonzero field element
	x3 := c.f.Mul(c.f.Mul(x, x), x)
	return 1 | x<<1 | x3<<uint(1+c.f.m)
}

// EpsBiased is an ε-biased sample space over ℓ-bit strings via the AGHP
// powering construction: the seed set is GF(2^r)², and the string for seed
// (x, y) has i-th bit <bits(x^(i+1)), bits(y)>. Its bias is at most
// (ℓ−1)/2^r.
type EpsBiased struct {
	f GF
	l int
}

// NewEpsBiased returns a space over strings of length l whose size is at
// least minSize (rounded up to the next 4^k).
func NewEpsBiased(l, minSize int) EpsBiased {
	r := 1
	for (1<<uint(2*r)) < minSize || r < 2 {
		r++
	}
	if r > 31 {
		panic("bias: sample space too large")
	}
	return EpsBiased{f: NewGF(r), l: l}
}

// Size returns the number of sample points, |GF(2^r)|².
func (e EpsBiased) Size() int { return int(e.f.Order() * e.f.Order()) }

// Bias returns the construction's bias upper bound (ℓ−1)/2^r.
func (e EpsBiased) Bias() float64 {
	return float64(e.l-1) / float64(e.f.Order())
}

// String returns the j-th sample string packed into a uint64 (ℓ <= 63).
func (e EpsBiased) String(j int) uint64 {
	q := e.f.Order()
	x := uint64(j) % q
	y := uint64(j) / q
	var s uint64
	xi := x // x^(i+1), starting at x^1
	for i := 0; i < e.l; i++ {
		if parity(xi&y) == 1 {
			s |= 1 << uint(i)
		}
		xi = e.f.Mul(xi, x)
	}
	return s
}

func parity(x uint64) uint64 { return uint64(bits.OnesCount64(x)) & 1 }

// Family is the almost 4-wise independent family of two-colorings used by
// the derandomization: member j is b_j(v) = <s_j, C(v)>.
type Family struct {
	code  BCHCode
	space EpsBiased
	seeds []uint64
}

// NewFamily builds a family of at least size colorings of positions
// 0..n−1. The family is fully deterministic.
func NewFamily(n, size int) *Family {
	code := NewBCHCode(n)
	space := NewEpsBiased(code.Len(), size)
	f := &Family{code: code, space: space}
	f.seeds = make([]uint64, space.Size())
	for j := range f.seeds {
		f.seeds[j] = space.String(j)
	}
	return f
}

// Size returns the number of colorings in the family.
func (f *Family) Size() int { return len(f.seeds) }

// BiasBound returns the ε for which every 4-tuple pattern probability over
// the family is within ε of the uniform 2^-4 (Lemma 6's (1+α)2^-4 with
// α = 16ε).
func (f *Family) BiasBound() float64 { return f.space.Bias() }

// CodeWord exposes the packed BCH codeword of v so callers can evaluate
// many family members per vertex with one AND+POPCNT each.
func (f *Family) CodeWord(v uint32) uint64 { return f.code.Word(v) }

// Seed returns the packed seed string of member j.
func (f *Family) Seed(j int) uint64 { return f.seeds[j] }

// Bit evaluates member j at position v.
func (f *Family) Bit(j int, v uint32) uint64 {
	return parity(f.seeds[j] & f.code.Word(v))
}

// EvalSeed evaluates a packed seed against a packed codeword.
func EvalSeed(seed, codeword uint64) uint64 { return parity(seed & codeword) }
