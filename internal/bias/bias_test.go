package bias

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	for _, m := range []int{3, 5, 8, 16} {
		f := NewGF(m)
		prop := func(a, b, c uint64) bool {
			mask := f.Order() - 1
			a, b, c = a&mask, b&mask, c&mask
			if f.Mul(a, b) != f.Mul(b, a) {
				return false
			}
			if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
				return false
			}
			if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
				return false
			}
			return f.Mul(a, 1) == a
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestGFMulClosed(t *testing.T) {
	f := NewGF(8)
	for a := uint64(0); a < 256; a += 7 {
		for b := uint64(0); b < 256; b += 11 {
			if p := f.Mul(a, b); p >= 256 {
				t.Fatalf("product %d escapes the field", p)
			}
		}
	}
}

func TestGFNoZeroDivisors(t *testing.T) {
	f := NewGF(6)
	for a := uint64(1); a < f.Order(); a++ {
		for b := uint64(1); b < f.Order(); b++ {
			if f.Mul(a, b) == 0 {
				t.Fatalf("zero divisor: %d*%d", a, b)
			}
		}
	}
}

func TestGFPow(t *testing.T) {
	f := NewGF(5)
	// Fermat: a^(2^m - 1) = 1 for nonzero a.
	for a := uint64(1); a < f.Order(); a++ {
		if got := f.Pow(a, f.Order()-1); got != 1 {
			t.Fatalf("a=%d: a^(q-1)=%d, want 1", a, got)
		}
	}
	if f.Pow(0, 5) != 0 || f.Pow(7, 0) != 1 {
		t.Error("pow edge cases")
	}
}

// gaussRank computes the GF(2) rank of packed bit-vectors.
func gaussRank(rows []uint64) int {
	rank := 0
	for bit := 0; bit < 64; bit++ {
		pivot := -1
		for i := rank; i < len(rows); i++ {
			if rows[i]&(1<<uint(bit)) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for i := 0; i < len(rows); i++ {
			if i != rank && rows[i]&(1<<uint(bit)) != 0 {
				rows[i] ^= rows[rank]
			}
		}
		rank++
	}
	return rank
}

func TestBCHFourColumnsIndependent(t *testing.T) {
	// The defining property: any 4 distinct codewords are linearly
	// independent over GF(2). This is what makes <s, C(v)> 4-wise
	// independent for uniform s.
	code := NewBCHCode(1000)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		vs := map[uint32]bool{}
		for len(vs) < 4 {
			vs[uint32(rng.Intn(1000))] = true
		}
		var rows []uint64
		for v := range vs {
			rows = append(rows, code.Word(v))
		}
		if r := gaussRank(rows); r != 4 {
			t.Fatalf("codewords of %v have rank %d", vs, r)
		}
	}
}

func TestBCHExhaustiveTriples(t *testing.T) {
	// Small field: check exhaustively that any <=4 columns among the first
	// 60 are independent (spot-checking all 3-subsets and random 4th).
	code := NewBCHCode(60)
	n := 60
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				rows := []uint64{code.Word(uint32(a)), code.Word(uint32(b)), code.Word(uint32(c))}
				if gaussRank(rows) != 3 {
					t.Fatalf("columns %d,%d,%d dependent", a, b, c)
				}
			}
		}
	}
}

func TestBCHWordDeterministicDistinct(t *testing.T) {
	code := NewBCHCode(500)
	seen := map[uint64]uint32{}
	for v := uint32(0); v < 500; v++ {
		w := code.Word(v)
		if prev, dup := seen[w]; dup {
			t.Fatalf("codeword collision: %d and %d", prev, v)
		}
		seen[w] = v
		if w&1 == 0 {
			t.Fatalf("codeword of %d lacks constant bit", v)
		}
	}
}

func TestEpsBiasedBias(t *testing.T) {
	// Empirical bias: for random nonzero test vectors u, the sample
	// average of (-1)^<s_j, u> must stay within the claimed bias bound.
	sp := NewEpsBiased(21, 1024)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		u := uint64(rng.Int63()) & ((1 << 21) - 1)
		if u == 0 {
			continue
		}
		sum := 0
		for j := 0; j < sp.Size(); j++ {
			if parity(sp.String(j)&u) == 0 {
				sum++
			} else {
				sum--
			}
		}
		bias := math.Abs(float64(sum)) / float64(sp.Size())
		if bias > sp.Bias()+1e-9 {
			t.Errorf("test vector %x: bias %f exceeds bound %f", u, bias, sp.Bias())
		}
	}
}

func TestFamilyFourTupleBalance(t *testing.T) {
	// Lemma 6's guarantee: for any 4 positions and any target pattern x,
	// the fraction of family members realizing x is (1 ± small)·2^-4.
	// With an enumerable family we can check it exactly.
	fam := NewFamily(200, 1<<14)
	rng := rand.New(rand.NewSource(12))
	worst := 0.0
	for trial := 0; trial < 40; trial++ {
		var vs [4]uint32
		seen := map[uint32]bool{}
		for i := 0; i < 4; {
			v := uint32(rng.Intn(200))
			if !seen[v] {
				seen[v] = true
				vs[i] = v
				i++
			}
		}
		var words [4]uint64
		for k, v := range vs {
			words[k] = fam.CodeWord(v)
		}
		var counts [16]int
		for j := 0; j < fam.Size(); j++ {
			s := fam.Seed(j)
			pat := 0
			for k := range words {
				pat |= int(EvalSeed(s, words[k])) << k
			}
			counts[pat]++
		}
		for _, got := range counts {
			dev := math.Abs(float64(got)/float64(fam.Size()) - 1.0/16)
			if dev > worst {
				worst = dev
			}
		}
	}
	// An ε-biased seed space keeps every pattern probability within ε of
	// uniform (Fourier inversion over the 15 nonzero characters).
	if worst > fam.BiasBound() {
		t.Errorf("worst 4-tuple pattern deviation %f exceeds bias bound %f", worst, fam.BiasBound())
	}
}

func TestFamilyCodewordSeedConsistency(t *testing.T) {
	fam := NewFamily(300, 256)
	for j := 0; j < fam.Size(); j += 17 {
		for v := uint32(0); v < 300; v += 23 {
			if fam.Bit(j, v) != EvalSeed(fam.Seed(j), fam.CodeWord(v)) {
				t.Fatalf("EvalSeed disagrees with Bit at j=%d v=%d", j, v)
			}
		}
	}
}

func TestFamilySizeAtLeastRequested(t *testing.T) {
	for _, want := range []int{1, 16, 100, 1000} {
		fam := NewFamily(50, want)
		if fam.Size() < want {
			t.Errorf("requested %d, got %d", want, fam.Size())
		}
	}
}

func TestNewGFUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGF(40) should panic")
		}
	}()
	NewGF(40)
}
