package cluster

import (
	"path/filepath"
	"reflect"
	"testing"
)

func testManifest(colors, shards int) *Manifest {
	ranges, err := PlanRanges(colors, shards)
	if err != nil {
		panic(err)
	}
	return &Manifest{
		Version:     ManifestVersion,
		Colors:      colors,
		Seed:        7,
		MemoryWords: 1 << 16,
		BlockWords:  1 << 7,
		Shards:      ranges,
	}
}

func TestPlanRanges(t *testing.T) {
	for _, tc := range []struct{ colors, shards int }{
		{4, 1}, {4, 2}, {4, 4}, {5, 2}, {7, 3}, {32, 5},
	} {
		ranges, err := PlanRanges(tc.colors, tc.shards)
		if err != nil {
			t.Fatalf("PlanRanges(%d, %d): %v", tc.colors, tc.shards, err)
		}
		next := uint32(0)
		for i, sh := range ranges {
			if sh.Index != i || sh.Lo != next || sh.Hi <= sh.Lo {
				t.Fatalf("PlanRanges(%d, %d)[%d] = %+v, want contiguous from %d", tc.colors, tc.shards, i, sh, next)
			}
			next = sh.Hi
		}
		if next != uint32(tc.colors) {
			t.Fatalf("PlanRanges(%d, %d) covers [0, %d)", tc.colors, tc.shards, next)
		}
	}
	if _, err := PlanRanges(2, 3); err == nil {
		t.Fatal("PlanRanges(2, 3) should fail: more shards than colors")
	}
	if _, err := PlanRanges(4, 0); err == nil {
		t.Fatal("PlanRanges(4, 0) should fail")
	}
}

func TestManifestValidate(t *testing.T) {
	m := testManifest(8, 3)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := *m
	bad.Version = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("bad version accepted")
	}
	bad = *m
	bad.Colors = MaxColors + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized color count accepted")
	}
	bad = *m
	bad.Shards = append([]Shard{}, m.Shards...)
	bad.Shards[1].Lo++
	if err := bad.Validate(); err == nil {
		t.Fatal("gap in ranges accepted")
	}
	bad = *m
	bad.Shards = bad.Shards[:2]
	if err := bad.Validate(); err == nil {
		t.Fatal("ranges not covering [0, C) accepted")
	}
}

func TestShardForHoldsOwns(t *testing.T) {
	m := testManifest(8, 3) // ranges [0,2) [2,5) [5,8)
	for c := uint32(0); c < 8; c++ {
		i := m.ShardFor(c)
		if !m.Owns(i, c) {
			t.Fatalf("ShardFor(%d) = %d but Owns is false", c, i)
		}
		owners := 0
		for j := range m.Shards {
			if m.Owns(j, c) {
				owners++
			}
			// The suffix view: shard j holds color c iff Lo_j <= c.
			if got, want := m.Holds(j, c), m.Shards[j].Lo <= c; got != want {
				t.Fatalf("Holds(%d, %d) = %v, want %v", j, c, got, want)
			}
		}
		if owners != 1 {
			t.Fatalf("color %d owned by %d shards, want exactly 1", c, owners)
		}
	}
}

// TestOwnedTuplesPartition pins the exactly-once contract: across any
// shard plan, the owned tuple sets are disjoint, lexicographically
// ordered within a shard, and their union is the full nondecreasing
// tuple family over [0, C).
func TestOwnedTuplesPartition(t *testing.T) {
	const colors = 5
	for _, k := range []int{1, 2, 3, 4} {
		var all [][]uint32
		var rec func(t []uint32, lo uint32)
		rec = func(tu []uint32, lo uint32) {
			if len(tu) == k {
				all = append(all, append([]uint32{}, tu...))
				return
			}
			for c := lo; c < colors; c++ {
				rec(append(tu, c), c)
			}
		}
		rec(nil, 0)

		for _, shards := range []int{1, 2, 4, 5} {
			m := testManifest(colors, shards)
			var gathered [][]uint32
			for i := range m.Shards {
				var prev []uint32
				err := m.OwnedTuples(i, k, func(tu []uint32) error {
					if prev != nil && CompareTuples(prev, tu) >= 0 {
						t.Fatalf("shard %d tuples out of order: %v then %v", i, prev, tu)
					}
					prev = append(prev[:0], tu...)
					if got := m.ShardFor(tu[0]); got != i {
						t.Fatalf("shard %d enumerated tuple %v owned by shard %d", i, tu, got)
					}
					gathered = append(gathered, append([]uint32{}, tu...))
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(gathered) != len(all) {
				t.Fatalf("k=%d shards=%d: gathered %d tuples, want %d", k, shards, len(gathered), len(all))
			}
			seen := map[string]bool{}
			for _, tu := range gathered {
				key := keyOf(tu)
				if seen[key] {
					t.Fatalf("k=%d shards=%d: tuple %v enumerated twice", k, shards, tu)
				}
				seen[key] = true
			}
		}
	}
}

func keyOf(t []uint32) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

func TestSortTuples(t *testing.T) {
	flat := []uint32{
		3, 1, 2,
		1, 2, 3,
		1, 2, 2,
		0, 9, 9,
	}
	SortTuples(flat, 3)
	want := []uint32{
		0, 9, 9,
		1, 2, 2,
		1, 2, 3,
		3, 1, 2,
	}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("SortTuples = %v, want %v", flat, want)
	}
}

func TestManifestRoundtrip(t *testing.T) {
	m := testManifest(8, 3)
	m.Vertices = 100
	m.Edges = 400
	for i := range m.Shards {
		m.Shards[i].Image = filepath.Join(".", "sub", "shard.img")
	}
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if got.ImagePath(path, 1) != filepath.Join(filepath.Dir(path), "sub", "shard.img") {
		t.Fatalf("ImagePath = %q", got.ImagePath(path, 1))
	}
}

// TestColoringStable pins the cluster coloring as a pure function of
// (seed, colors, vertex id): two manifests with the same parameters
// agree color for color, and every color is in range.
func TestColoringStable(t *testing.T) {
	a := testManifest(8, 2).Coloring()
	b := testManifest(8, 4).Coloring() // shard plan must not matter
	for v := uint32(0); v < 10000; v++ {
		ca, cb := a.Color(v), b.Color(v)
		if ca != cb {
			t.Fatalf("coloring depends on shard plan: color(%d) = %d vs %d", v, ca, cb)
		}
		if ca >= 8 {
			t.Fatalf("color(%d) = %d out of range", v, ca)
		}
	}
}
