// Package cluster is the pure core of the scatter–gather cluster layer:
// the manifest that fixes a cluster-wide vertex coloring and assigns
// contiguous color ranges to shards, the color-tuple arithmetic that
// decomposes a query into per-shard subproblems, and the wire types of
// the shard and coordinator endpoints. It deliberately imports nothing
// above internal/hashing, so both the public repro package (the
// coordinator side) and internal/serve (the shard side) can share it.
//
// The design lifts the paper's decomposition across process boundaries.
// A cluster fixes C colors and a coloring seed once, at Partition time;
// a vertex's cluster color is a 4-wise independent hash of its original
// id (not its canonical rank), so it is stable across generations and
// across the differently-canonicalized sub-images. Shard i owns the
// contiguous color range [Lo_i, Hi_i), and its sub-image is the suffix
// view — every edge whose endpoint-color minimum is at least Lo_i.
// That view is exactly the edge set needed to execute every color tuple
// whose minimum lies in the owned range: a tuple's subproblem touches
// only edges with both endpoint colors in the tuple's support, and all
// of those have min color ≥ min(tuple) ≥ Lo_i. Tuples are therefore
// partitioned by their minimum color — every tuple runs exactly once
// cluster-wide — while edges are replicated down the suffix (shard 0,
// whose range starts at color 0, always holds the full edge set).
//
// The gathered stream's order is the engine's canonical global emission
// order (Query.Ordered): each shard sorts its owned emissions
// lexicographically and the coordinator k-way merges the S sorted,
// pairwise-disjoint streams, which is exactly the single-process ordered
// stream — byte-identical at every shard count and Workers value.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/hashing"
)

// ManifestVersion is the manifest codec version this package writes.
const ManifestVersion = 1

// MaxColors bounds a manifest's color count. A query of tuple size k
// fans out into multiset(C, k) subproblems cluster-wide; the bound keeps
// that fan-out (and the per-query sub-builds it implies) small.
const MaxColors = 32

// ManifestName is the conventional manifest file name Partition writes
// next to the sub-images.
const ManifestName = "cluster.json"

// Shard is one manifest entry: a contiguous color range and the
// sub-image serving it. The sub-image holds every edge with
// min-endpoint-color ≥ Lo; the shard owns (executes) the color tuples
// whose minimum falls in [Lo, Hi).
type Shard struct {
	// Index is the shard's position, 0-based and dense.
	Index int `json:"index"`
	// Lo and Hi bound the owned color range [Lo, Hi).
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
	// Image is the sub-image path, relative to the manifest file.
	Image string `json:"image"`
	// Edges counts the sub-image's edges at partition time (suffix
	// views overlap, so these do not sum to the graph's edge count).
	Edges int64 `json:"edges"`
}

// Manifest is the cluster's shared contract, written at Partition time
// and consulted by every shard and coordinator: the coloring (Colors +
// Seed fix the hash), the simulated machine the subproblems run on, and
// the color-range → shard assignment. Field order is part of the file
// format (FORMAT.md).
type Manifest struct {
	// Version is the manifest codec version (ManifestVersion).
	Version int `json:"version"`
	// Colors is C, the cluster color count. Every vertex hashes to
	// [0, C); the shard ranges partition [0, C).
	Colors int `json:"colors"`
	// Seed derives the cluster coloring (hashing.NewColoring over
	// hashing.NewRand(Seed)). Fixed for the cluster's lifetime: colors
	// must agree across shards, coordinators, and routed updates.
	Seed uint64 `json:"seed"`
	// MemoryWords and BlockWords are the simulated machine every
	// per-tuple subproblem runs on — recorded here so aggregate shard
	// IOs are a pure function of (graph, manifest, query), independent
	// of any one process's defaults.
	MemoryWords int `json:"memory_words"`
	BlockWords  int `json:"block_words"`
	// Vertices and Edges describe the partitioned graph at partition
	// time (informational; updates move the live values).
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// Generation is the source handle's generation at partition time.
	Generation uint64 `json:"generation"`
	// Shards maps color ranges to sub-images, ordered by Index with
	// contiguous ranges covering [0, Colors).
	Shards []Shard `json:"shards"`
}

// Validate checks the manifest's structural invariants: a known
// version, a color count in (0, MaxColors], and shard ranges that are
// dense, ordered, non-empty, and exactly cover [0, Colors).
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("cluster: unsupported manifest version %d", m.Version)
	}
	if m.Colors <= 0 || m.Colors > MaxColors {
		return fmt.Errorf("cluster: colors must be in [1, %d], got %d", MaxColors, m.Colors)
	}
	if len(m.Shards) == 0 {
		return errors.New("cluster: manifest has no shards")
	}
	if len(m.Shards) > m.Colors {
		return fmt.Errorf("cluster: %d shards exceed %d colors", len(m.Shards), m.Colors)
	}
	next := uint32(0)
	for i, sh := range m.Shards {
		if sh.Index != i {
			return fmt.Errorf("cluster: shard %d has index %d", i, sh.Index)
		}
		if sh.Lo != next || sh.Hi <= sh.Lo {
			return fmt.Errorf("cluster: shard %d range [%d, %d) does not continue at %d", i, sh.Lo, sh.Hi, next)
		}
		next = sh.Hi
	}
	if next != uint32(m.Colors) {
		return fmt.Errorf("cluster: shard ranges cover [0, %d), want [0, %d)", next, m.Colors)
	}
	return nil
}

// Coloring returns the cluster's vertex→color hash: 4-wise independent
// over the original vertex ids, so it agrees across sub-images and
// generations. All shards and coordinators of a manifest compute the
// same function.
func (m *Manifest) Coloring() hashing.Coloring {
	return hashing.NewColoring(hashing.NewRand(m.Seed), m.Colors)
}

// ShardFor returns the index of the shard owning color.
func (m *Manifest) ShardFor(color uint32) int {
	return sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].Hi > color })
}

// Holds reports whether shard i's sub-image contains an edge whose
// endpoint-color minimum is minColor — true for every shard whose range
// starts at or below it (the suffix view).
func (m *Manifest) Holds(i int, minColor uint32) bool {
	return m.Shards[i].Lo <= minColor
}

// Owns reports whether shard i executes the color tuples whose minimum
// is minColor.
func (m *Manifest) Owns(i int, minColor uint32) bool {
	return m.Shards[i].Lo <= minColor && minColor < m.Shards[i].Hi
}

// PlanRanges splits colors into shards contiguous, non-empty,
// near-equal ranges — the partition planner. It requires
// 1 ≤ shards ≤ colors.
func PlanRanges(colors, shards int) ([]Shard, error) {
	if shards < 1 || shards > colors {
		return nil, fmt.Errorf("cluster: cannot split %d colors into %d shards", colors, shards)
	}
	out := make([]Shard, shards)
	for i := range out {
		out[i] = Shard{
			Index: i,
			Lo:    uint32(i * colors / shards),
			Hi:    uint32((i + 1) * colors / shards),
		}
	}
	return out, nil
}

// Save writes the manifest to path (atomically: temp file + rename).
func (m *Manifest) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads and validates a manifest written by Save.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %v", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %w", path, err)
	}
	return &m, nil
}

// ImagePath resolves shard i's sub-image path against the manifest's
// own location (Image entries are relative to the manifest file).
func (m *Manifest) ImagePath(manifestPath string, i int) string {
	img := m.Shards[i].Image
	if filepath.IsAbs(img) {
		return img
	}
	return filepath.Join(filepath.Dir(manifestPath), img)
}

// OwnedTuples enumerates shard i's subproblems for tuple size k: every
// nondecreasing color tuple over [0, Colors) whose minimum (first)
// element lies in the shard's range, in lexicographic order. The tuple
// slice is reused between calls. Stopping early propagates f's error.
//
// Across all shards the owned tuple sets partition the full multiset
// family — every subproblem runs exactly once cluster-wide — and each
// emission of the graph belongs to exactly one tuple (the sorted colors
// of its vertices), which is how the gathered streams stay disjoint.
func (m *Manifest) OwnedTuples(i, k int, f func(t []uint32) error) error {
	sh := m.Shards[i]
	t := make([]uint32, k)
	var rec func(pos int, lo uint32) error
	rec = func(pos int, lo uint32) error {
		if pos == k {
			return f(t)
		}
		for c := lo; c < uint32(m.Colors); c++ {
			t[pos] = c
			if err := rec(pos+1, c); err != nil {
				return err
			}
		}
		return nil
	}
	for c := sh.Lo; c < sh.Hi; c++ {
		t[0] = c
		if err := rec(1, c); err != nil {
			return err
		}
	}
	return nil
}

// CompareTuples orders two emission tuples lexicographically (shorter
// prefixes first) — the canonical global emission order the gathered
// stream is merged into.
func CompareTuples(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// SortTuples sorts n flattened k-tuples (flat has n*k elements) into
// the canonical lexicographic order, in place. The sort is total —
// duplicate tuples cannot occur in a shard's owned emissions — so the
// output bytes are a pure function of the tuple set.
func SortTuples(flat []uint32, k int) {
	if k <= 0 {
		return
	}
	n := len(flat) / k
	sort.Sort(&tupleSorter{flat: flat, k: k, n: n, tmp: make([]uint32, k)})
}

type tupleSorter struct {
	flat []uint32
	k, n int
	tmp  []uint32
}

func (s *tupleSorter) Len() int { return s.n }
func (s *tupleSorter) Less(i, j int) bool {
	return CompareTuples(s.flat[i*s.k:(i+1)*s.k], s.flat[j*s.k:(j+1)*s.k]) < 0
}
func (s *tupleSorter) Swap(i, j int) {
	a, b := s.flat[i*s.k:(i+1)*s.k], s.flat[j*s.k:(j+1)*s.k]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}
