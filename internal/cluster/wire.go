package cluster

// Wire types of the cluster endpoints — shared between the shard server
// (internal/serve) and the coordinator client (repro.Cluster). Field
// order is part of the wire contract: encoding/json emits struct fields
// in declaration order, and the byte-identity tests compare encoded
// streams directly.

// IOStats mirrors repro.IOStats on the cluster wire (this package
// cannot import repro; the fields and JSON keys match serve's
// WireIOStats exactly).
type IOStats struct {
	BlockReads     uint64 `json:"block_reads"`
	BlockWrites    uint64 `json:"block_writes"`
	WordReads      uint64 `json:"word_reads"`
	WordWrites     uint64 `json:"word_writes"`
	PeakLeaseWords int    `json:"peak_lease_words"`
	PeakDiskWords  int64  `json:"peak_disk_words"`
}

// Add accumulates other into s. Peaks aggregate additively: summed over
// subproblems they bound the shard's total scratch footprint, and the
// sum — unlike a maximum over concurrently-live sessions — is
// deterministic and placement-invariant.
func (s *IOStats) Add(other IOStats) {
	s.BlockReads += other.BlockReads
	s.BlockWrites += other.BlockWrites
	s.WordReads += other.WordReads
	s.WordWrites += other.WordWrites
	s.PeakLeaseWords += other.PeakLeaseWords
	if other.PeakDiskWords > 0 {
		s.PeakDiskWords += other.PeakDiskWords
	}
}

// ShardQueryRequest is the body of POST /v1/cluster/shard/query: run
// the shard's share of one cluster query. The response is an NDJSON
// stream: the shard's owned emissions — {"v":[...]}, already sorted
// into the canonical lexicographic order — followed by one
// ShardQueryTrailer line.
type ShardQueryRequest struct {
	// Kind selects the query: "triangles" (default), "cliques", or
	// "match"; K and Pattern qualify it exactly as in serve's
	// QueryRequest.
	Kind    string `json:"kind,omitempty"`
	K       int    `json:"k,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	// Algorithm names the triangle algorithm (triangles only).
	Algorithm string `json:"algorithm,omitempty"`
	// Seed and Workers configure each per-tuple subproblem run; the
	// emission stream and aggregate statistics are invariant in
	// Workers.
	Seed    uint64 `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Native runs the per-tuple subproblems natively: same emission
	// bytes, zero enumeration Stats (CanonIOs of the per-tuple builds
	// are still simulated and reported).
	Native bool `json:"native,omitempty"`
	// Epoch, when set, pins the cluster epoch the coordinator believes
	// current; a mismatch is answered 409 before any work, so a fanned
	// out query never mixes shard generations. Nil skips the check
	// (direct, single-shard use).
	Epoch *uint64 `json:"epoch,omitempty"`
}

// ShardQueryTrailer is the final line of a shard query stream.
type ShardQueryTrailer struct {
	Done bool `json:"done"`
	// Delivered counts the emission lines streamed (the shard's owned
	// matches).
	Delivered uint64 `json:"delivered"`
	// Epoch is the shard's cluster epoch the query ran on.
	Epoch uint64 `json:"epoch"`
	// Vertices and Edges describe the shard's sub-image generation the
	// query ran on (shard 0 holds the full graph, so its values are the
	// cluster-wide truth).
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// Subproblems counts the owned color tuples executed; Builds counts
	// those that were non-empty and actually built + enumerated.
	Subproblems int `json:"subproblems"`
	Builds      int `json:"builds"`
	// CanonIOs sums the per-tuple sub-build canonicalization costs;
	// Stats sums the per-tuple enumeration statistics. Both are pure
	// functions of (graph, manifest, query) — invariant in Workers and
	// in the cluster's shard count — so the coordinator's aggregates
	// are deterministic.
	CanonIOs uint64  `json:"canon_ios"`
	Stats    IOStats `json:"stats"`
	// Error reports a failure after streaming began. Empty on success.
	Error string `json:"error,omitempty"`
}

// Update phases of the two-phase commit.
const (
	// PhasePrepare stages a sub-delta under an update id: the shard
	// validates and parks it without touching its graph.
	PhasePrepare = "prepare"
	// PhaseCommit applies the staged sub-delta and advances the shard's
	// cluster epoch. Committing an already-committed update id is
	// idempotent (the remembered response is replayed), so a
	// coordinator retry cannot double-apply.
	PhaseCommit = "commit"
	// PhaseAbort drops a staged sub-delta.
	PhaseAbort = "abort"
)

// ShardUpdateRequest is the body of POST /v1/cluster/shard/update: one
// phase of a routed update's two-phase commit.
type ShardUpdateRequest struct {
	// Phase is PhasePrepare, PhaseCommit, or PhaseAbort.
	Phase string `json:"phase"`
	// UpdateID names the update across phases; the coordinator uses the
	// target epoch (current + 1), which is unique under its write lock.
	UpdateID uint64 `json:"update_id"`
	// Epoch is the cluster epoch the coordinator prepared against; a
	// mismatch at prepare is answered 409.
	Epoch uint64 `json:"epoch"`
	// Add and Remove are the shard's sub-delta: exactly the delta edges
	// whose endpoint-color minimum the shard's suffix view holds
	// (prepare only).
	Add    [][2]uint32 `json:"add,omitempty"`
	Remove [][2]uint32 `json:"remove,omitempty"`
}

// ShardUpdateResponse answers every update phase.
type ShardUpdateResponse struct {
	// Phase echoes the request phase.
	Phase string `json:"phase"`
	// UpdateID echoes the update id.
	UpdateID uint64 `json:"update_id"`
	// Epoch is the shard's cluster epoch after the phase (advanced by
	// commit).
	Epoch uint64 `json:"epoch"`
	// Generation is the sub-image's MVCC generation after the phase.
	Generation uint64 `json:"generation"`
	// Added, Removed, Vertices, Edges and MergeIOs mirror the shard's
	// repro.UpdateResult for a commit (zero for prepare/abort). Counts
	// are per sub-image: an edge replicated down the suffix is counted
	// by every shard holding it, so only shard 0's values are the
	// cluster-wide truth.
	Added    int64  `json:"added"`
	Removed  int64  `json:"removed"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	MergeIOs uint64 `json:"merge_ios"`
}

// ShardInfoResponse is the body of GET /v1/cluster/shard/info: the
// shard's identity, for the coordinator's dial-time handshake.
type ShardInfoResponse struct {
	// Index, Lo, Hi, Colors and Seed echo the shard's manifest entry;
	// the coordinator refuses a shard whose identity disagrees with its
	// own manifest.
	Index  int    `json:"index"`
	Lo     uint32 `json:"lo"`
	Hi     uint32 `json:"hi"`
	Colors int    `json:"colors"`
	Seed   uint64 `json:"seed"`
	// MemoryWords and BlockWords echo the manifest's simulated machine.
	MemoryWords int `json:"memory_words"`
	BlockWords  int `json:"block_words"`
	// Epoch is the shard's current cluster epoch (0 at boot; advanced
	// by each committed routed update).
	Epoch uint64 `json:"epoch"`
	// Generation, Vertices and Edges describe the sub-image being
	// served.
	Generation uint64 `json:"generation"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
}

// Emission is one NDJSON data line on the cluster wire — the same
// {"v":[...]} line serve.AppendEmission encodes — in decodable form for
// the coordinator's merge.
type Emission struct {
	V []uint32 `json:"v"`
}

// CoordinatorQueryRequest is the body of POST /v1/cluster/query on a
// coordinator: the same query surface as ShardQueryRequest minus the
// epoch (the coordinator pins epochs itself), plus a Limit. The
// response is NDJSON: the gathered, k-way-merged emission lines in the
// canonical global order, then one CoordinatorTrailer line.
type CoordinatorQueryRequest struct {
	Kind      string `json:"kind,omitempty"`
	K         int    `json:"k,omitempty"`
	Pattern   string `json:"pattern,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Native    bool   `json:"native,omitempty"`
	// Limit, when positive, ends the gathered stream cleanly after
	// Limit emissions.
	Limit uint64 `json:"limit,omitempty"`
}

// ShardRun is one shard's contribution to a gathered query, as reported
// in the coordinator trailer.
type ShardRun struct {
	Index       int     `json:"index"`
	Delivered   uint64  `json:"delivered"`
	Subproblems int     `json:"subproblems"`
	Builds      int     `json:"builds"`
	CanonIOs    uint64  `json:"canon_ios"`
	Stats       IOStats `json:"stats"`
}

// CoordinatorTrailer is the final line of a gathered query stream.
type CoordinatorTrailer struct {
	Done bool `json:"done"`
	// Delivered counts the gathered emission lines.
	Delivered uint64 `json:"delivered"`
	// Matches counts the cluster-wide matches enumerated (= Delivered
	// unless a Limit stopped the stream early).
	Matches uint64 `json:"matches"`
	// Epoch is the cluster epoch the query ran on; every shard's
	// trailer carried the same value.
	Epoch uint64 `json:"epoch"`
	// Vertices and Edges are the cluster-wide graph description (from
	// shard 0, the full suffix view).
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// Subproblems, CanonIOs and Stats aggregate the shard trailers: the
	// deterministic cluster-wide totals, invariant in the shard count
	// and Workers.
	Subproblems int     `json:"subproblems"`
	CanonIOs    uint64  `json:"canon_ios"`
	Stats       IOStats `json:"stats"`
	// Shards is the per-shard breakdown, ordered by Index.
	Shards []ShardRun `json:"shards"`
	// Error reports a failure after streaming began. Empty on success.
	Error string `json:"error,omitempty"`
}

// CoordinatorUpdateRequest is the body of POST /v1/cluster/update on a
// coordinator: a batched delta to route.
type CoordinatorUpdateRequest struct {
	Add    [][2]uint32 `json:"add,omitempty"`
	Remove [][2]uint32 `json:"remove,omitempty"`
}

// CoordinatorUpdateResponse reports a routed update.
type CoordinatorUpdateResponse struct {
	// Epoch is the cluster epoch now serving queries.
	Epoch uint64 `json:"epoch"`
	// Added, Removed, Vertices and Edges are the cluster-wide effective
	// change (shard 0's view).
	Added    int64 `json:"added"`
	Removed  int64 `json:"removed"`
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// MergeIOs sums the per-shard merge costs. Unlike query statistics
	// this does scale with the cluster: suffix replication re-merges an
	// edge once per holding shard.
	MergeIOs uint64 `json:"merge_ios"`
}

// CoordinatorInfoResponse is the body of GET /v1/cluster/info.
type CoordinatorInfoResponse struct {
	Colors   int    `json:"colors"`
	Seed     uint64 `json:"seed"`
	Epoch    uint64 `json:"epoch"`
	Shards   int    `json:"shards"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
}
