// Package ctxutil holds the nil-tolerant context helpers shared by every
// layer that threads cooperative cancellation: a nil context is the
// "never cancels" default throughout the module, so the guards live here
// exactly once.
package ctxutil

import "context"

// Err reports the context's cancellation error; a nil context never
// cancels.
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Done returns the context's done channel; nil (never ready) for a nil
// context.
func Done(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
