// Package diff is the differential enumeration kernel behind standing
// queries: given one frozen generation's canonical image and the set of
// delta edges that distinguishes it from its neighbor generation, it
// enumerates exactly the subgraph copies (triangles, k-cliques, or
// pattern embeddings modulo Aut(H)) whose image contains at least one
// delta edge — the copies an Update created on the new image, or
// destroyed on the old one.
//
// The algorithm is the delta-restricted degenerate form of the paper's
// Section 6 trie join: every changed copy must touch a delta edge, so
// anchoring the join's first leg on the delta bounds each subproblem by
// the delta's neighborhood instead of a color bucket's. Concretely the
// kernel runs two phases on the session Space it is handed:
//
//  1. Closure scans. A changed copy containing anchor edge {u, v} maps
//     every pattern position at H-distance d from the anchored edge to
//     a G-vertex within distance d of {u, v}. The kernel therefore
//     collects the adjacency of the delta's BFS closure by `depth`
//     sequential scans of the canonical edge extent — round r reads
//     every edge once and keeps the full neighbor lists of the
//     frontier (the vertices discovered at distance r) — where depth
//     is the largest anchored H-distance (1 for cliques). When the
//     pattern has an H-edge whose endpoints can both land at distance
//     depth (k-cliques with k >= 4, or patterns like cycle4), one
//     final scan collects the closure-internal edges of the outermost
//     layer, so every membership probe the search needs is answered
//     natively. Cost: (depth [+1]) · scan(E) block I/Os, independent
//     of the anchor count; the adjacency lists are leased native
//     memory, O(closure volume) words.
//
//  2. Anchored search. Anchors are visited in sorted order. For
//     cliques, the candidates are the sorted intersection of the two
//     endpoints' neighbor lists, extended by the same
//     ascending-candidate DFS the full enumerator uses. For patterns,
//     the anchor is pre-placed on every H-edge in both orientations
//     and completed along Pattern.AnchoredOrder with native back-edge
//     checks; Pattern.IsMinimalEmbedding keeps one representative per
//     Aut(H) orbit, exactly as the full enumerator does. A copy whose
//     image contains several anchors is emitted only from its minimal
//     one (the smallest packed delta edge), so the union over anchors
//     is exactly-once. This phase reads no blocks at all — it is pure
//     in-memory work on the leased adjacency — so the kernel's I/O
//     statistics are a function of the image and the delta alone.
//
// Determinism contract, inherited by Graph.Subscribe: the emission
// order is a pure function of (canonical image, anchors, spec) —
// anchors ascending, then the deterministic per-anchor search order —
// and both the emissions and the Space's I/O statistics are invariant
// in workers. Parallelism partitions the anchors into fixed-size
// chunks solved concurrently into private buffers that are drained in
// chunk order, and phase 1 (all the I/O) is sequential by
// construction.
package diff

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ctxutil"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/subgraph"
)

// Spec selects the subgraph family a differential pass enumerates:
// k-cliques when Pattern is nil (K >= 3; 3 is triangles), embeddings of
// Pattern modulo Aut(H) otherwise.
type Spec struct {
	K       int
	Pattern *subgraph.Pattern
}

// Info reports one differential pass.
type Info struct {
	// Matches counts the emitted copies.
	Matches uint64
	// Scans counts the sequential passes over the canonical edge extent
	// (the closure rounds plus the final closure-internal scan, if any).
	Scans int
	// Anchors is the number of distinct delta edges anchoring the pass.
	Anchors int
}

// anchorChunk is the fixed parallel work grain: anchors are solved in
// chunks of this size whose emission buffers are drained in chunk
// order, so the stream is identical at every worker count.
const anchorChunk = 64

// Enumerate runs one differential pass over g — the canonical image of
// the generation the emissions are counted against: the new generation
// for added copies (anchors = effective added edges), the old one for
// removed copies (anchors = effective removed edges). anchors are
// packed rank-space edges that must be present in g.Edges; duplicates
// are tolerated. emit receives each changed copy exactly once as
// pattern-position-to-rank assignments (for cliques: the k member
// ranks, ascending); the slice is only valid during the call. workers
// bounds the search parallelism; emissions and the Space's statistics
// are invariant in it. ctx is checked cooperatively during scans and
// between anchors; it may be nil.
func Enumerate(ctx context.Context, sp *extmem.Space, g graph.Canonical, anchors []extmem.Word, spec Spec, workers int, emit func(verts []uint32)) (Info, error) {
	var info Info
	k := spec.K
	if spec.Pattern != nil {
		k = spec.Pattern.K()
	} else if k < 3 {
		return info, fmt.Errorf("diff: clique size %d out of range (need k >= 3)", k)
	}

	anchors = dedupSorted(anchors)
	info.Anchors = len(anchors)
	if len(anchors) == 0 || g.Edges.Len() == 0 || k < 2 {
		return info, nil
	}

	anchorSet := make(map[extmem.Word]extmem.Word, len(anchors))
	for _, e := range anchors {
		anchorSet[e] = e
	}

	depth, final := plan(spec)
	adj, err := buildClosure(ctx, sp, g.Edges, anchors, depth, final, &info)
	if err != nil {
		return info, err
	}
	words := 2 * len(anchors)
	for _, l := range adj {
		words += len(l) + 2
	}
	release := sp.LeaseAtMost(words)
	defer release()

	var plans []patternSeed
	if spec.Pattern != nil {
		plans = seedPlans(spec.Pattern)
	}

	chunks := (len(anchors) + anchorChunk - 1) / anchorChunk
	runChunk := func(ci int, buf *[][]uint32) error {
		lo := ci * anchorChunk
		hi := lo + anchorChunk
		if hi > len(anchors) {
			hi = len(anchors)
		}
		for _, e := range anchors[lo:hi] {
			if err := ctxutil.Err(ctx); err != nil {
				return err
			}
			if spec.Pattern != nil {
				anchorPattern(spec.Pattern, plans, e, adj, anchorSet, buf)
			} else {
				anchorClique(k, e, adj, anchorSet, buf)
			}
		}
		return nil
	}

	results := make([][][]uint32, chunks)
	if workers <= 1 || chunks <= 1 {
		for ci := 0; ci < chunks; ci++ {
			if err := runChunk(ci, &results[ci]); err != nil {
				return info, err
			}
		}
	} else {
		if workers > chunks {
			workers = chunks
		}
		var next atomic.Int64
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= chunks {
						return
					}
					if errs[w] = runChunk(ci, &results[ci]); errs[w] != nil {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return info, err
			}
		}
	}

	for _, chunk := range results {
		for _, verts := range chunk {
			info.Matches++
			if emit != nil {
				emit(verts)
			}
		}
	}
	return info, nil
}

// plan returns the closure radius (scan rounds collecting full
// adjacency) and whether the final closure-internal scan is needed —
// it is exactly when some anchoring leaves an H-edge with both
// endpoints at the maximal anchored distance, so a membership probe
// could pair two outermost-layer vertices.
func plan(spec Spec) (depth int, final bool) {
	if spec.Pattern == nil {
		return 1, spec.K > 3
	}
	p := spec.Pattern
	edges := p.Edges()
	dists := make([][]int, len(edges))
	for i, he := range edges {
		dists[i] = p.DistFrom(he[0], he[1])
		for _, d := range dists[i] {
			if d > depth {
				depth = d
			}
		}
	}
	for i, he := range edges {
		for _, pq := range edges {
			if pq[0] == he[0] || pq[0] == he[1] || pq[1] == he[0] || pq[1] == he[1] {
				continue
			}
			m := dists[i][pq[0]]
			if dists[i][pq[1]] < m {
				m = dists[i][pq[1]]
			}
			if m >= depth {
				final = true
			}
		}
	}
	return depth, final
}

// buildClosure collects sorted neighbor lists for the BFS closure of
// the anchor endpoints: full lists for vertices within depth-1 of an
// anchor, and (when final is set) closure-internal lists for the
// outermost layer. Each list is written by exactly one scan, and each
// scan appends neighbors in ascending order (the canonical extent is
// sorted with the smaller endpoint in the high bits), so every list
// comes out sorted without a sort pass.
func buildClosure(ctx context.Context, sp *extmem.Space, edges extmem.Extent, anchors []extmem.Word, depth int, final bool, info *Info) (map[uint32][]uint32, error) {
	adj := make(map[uint32][]uint32)
	seen := make(map[uint32]struct{})
	done := make(map[uint32]struct{})
	var frontier []uint32
	add := func(v uint32) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			frontier = append(frontier, v)
		}
	}
	for _, e := range anchors {
		add(graph.U(e))
		add(graph.V(e))
	}

	n := edges.Len()
	scan := func(visit func(u, v uint32)) error {
		info.Scans++
		for i := int64(0); i < n; i++ {
			if i%8192 == 0 {
				if err := ctxutil.Err(ctx); err != nil {
					return err
				}
			}
			e := edges.Read(i)
			visit(graph.U(e), graph.V(e))
		}
		return nil
	}

	for r := 0; r < depth && len(frontier) > 0; r++ {
		inFrontier := make(map[uint32]struct{}, len(frontier))
		for _, v := range frontier {
			inFrontier[v] = struct{}{}
		}
		frontier = frontier[:0]
		err := scan(func(u, v uint32) {
			if _, ok := inFrontier[u]; ok {
				adj[u] = append(adj[u], v)
				add(v)
			}
			if _, ok := inFrontier[v]; ok {
				adj[v] = append(adj[v], u)
				add(u)
			}
		})
		if err != nil {
			return nil, err
		}
		for v := range inFrontier {
			done[v] = struct{}{}
		}
	}
	if final {
		err := scan(func(u, v uint32) {
			_, su := seen[u]
			_, sv := seen[v]
			if !su || !sv {
				return
			}
			if _, ok := done[u]; !ok {
				adj[u] = append(adj[u], v)
			}
			if _, ok := done[v]; !ok {
				adj[v] = append(adj[v], u)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return adj, nil
}

// anchorClique emits every k-clique through anchor edge e that has no
// smaller anchor among its edges: candidates are the common neighbors
// of the endpoints, extended ascending as in the full enumerator.
func anchorClique(k int, e extmem.Word, adj map[uint32][]uint32, anchorSet map[extmem.Word]extmem.Word, buf *[][]uint32) {
	u, v := graph.U(e), graph.V(e)
	cands := intersectSorted(adj[u], adj[v])
	if len(cands) < k-2 {
		return
	}
	verts := make([]uint32, 2, k)
	verts[0], verts[1] = u, v
	var rec func(cands []uint32)
	rec = func(cands []uint32) {
		for i, w := range cands {
			verts = append(verts, w)
			if len(verts) == k {
				if minimalAnchor(verts, e, anchorSet) {
					out := append([]uint32(nil), verts...)
					sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
					*buf = append(*buf, out)
				}
			} else {
				rec(intersectSorted(cands[i+1:], adj[w]))
			}
			verts = verts[:len(verts)-1]
		}
	}
	rec(cands)
}

// patternSeed is one way to pre-place an anchor edge on the pattern: an
// H-edge, an orientation, and the anchored search order completing it.
type patternSeed struct {
	i, j  int // anchored positions, in placement order
	order []int
	back  []uint8
}

func seedPlans(p *subgraph.Pattern) []patternSeed {
	var plans []patternSeed
	for _, he := range p.Edges() {
		for _, s := range [2][2]int{{he[0], he[1]}, {he[1], he[0]}} {
			order, back := p.AnchoredOrder(s[0], s[1])
			plans = append(plans, patternSeed{i: s[0], j: s[1], order: order, back: back})
		}
	}
	return plans
}

// anchorPattern emits every embedding (modulo Aut(H)) whose image
// contains anchor edge e and no smaller anchor: the anchor is
// pre-placed on every H-edge in both orientations and completed along
// the anchored search order. A given minimal-representative tuple maps
// exactly one H-edge onto the anchor pair in exactly one orientation,
// so the seeds never produce a tuple twice.
func anchorPattern(p *subgraph.Pattern, plans []patternSeed, e extmem.Word, adj map[uint32][]uint32, anchorSet map[extmem.Word]extmem.Word, buf *[][]uint32) {
	u, v := graph.U(e), graph.V(e)
	k := p.K()
	assign := make([]uint32, k)
	has := func(a, b uint32) bool {
		l := adj[a]
		i := sort.Search(len(l), func(i int) bool { return l[i] >= b })
		return i < len(l) && l[i] == b
	}
	for _, seed := range plans {
		assign[seed.i], assign[seed.j] = u, v
		var walk func(step int)
		walk = func(step int) {
			if step == k {
				if p.IsMinimalEmbedding(assign) && minimalEmbeddingAnchor(p, assign, e, anchorSet) {
					*buf = append(*buf, append([]uint32(nil), assign...))
				}
				return
			}
			pos := seed.order[step]
			pivot := uint32(0)
			found := false
			for j := 0; j < k && !found; j++ {
				if seed.back[step]&(1<<uint(j)) != 0 {
					pivot = assign[j]
					found = true
				}
			}
			if !found {
				return
			}
			for _, cand := range adj[pivot] {
				dup := false
				for s := 0; s < step; s++ {
					if assign[seed.order[s]] == cand {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				ok := true
				for j := 0; j < k; j++ {
					if seed.back[step]&(1<<uint(j)) != 0 && !has(assign[j], cand) {
						ok = false
						break
					}
				}
				if ok {
					assign[pos] = cand
					walk(step + 1)
				}
			}
		}
		walk(2)
	}
}

// minimalAnchor reports whether e is the smallest anchor among the
// pairs of the clique's members — the exactly-once rule for copies
// touching several delta edges.
func minimalAnchor(verts []uint32, e extmem.Word, anchorSet map[extmem.Word]extmem.Word) bool {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			w := graph.Pack(verts[i], verts[j])
			if w < e {
				if _, ok := anchorSet[w]; ok {
					return false
				}
			}
		}
	}
	return true
}

// minimalEmbeddingAnchor is minimalAnchor over the embedding's image
// edges (only pairs carrying an H-edge count).
func minimalEmbeddingAnchor(p *subgraph.Pattern, assign []uint32, e extmem.Word, anchorSet map[extmem.Word]extmem.Word) bool {
	for _, he := range p.Edges() {
		w := graph.Pack(assign[he[0]], assign[he[1]])
		if w < e {
			if _, ok := anchorSet[w]; ok {
				return false
			}
		}
	}
	return true
}

// intersectSorted returns the ascending intersection of two sorted
// lists.
func intersectSorted(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// dedupSorted sorts a copy of ws ascending and drops duplicates.
func dedupSorted(ws []extmem.Word) []extmem.Word {
	if len(ws) == 0 {
		return nil
	}
	out := append([]extmem.Word(nil), ws...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[n-1] {
			out[n] = out[i]
			n++
		}
	}
	return out[:n]
}
