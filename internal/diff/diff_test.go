package diff

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/subgraph"
)

// edgeSet is a native undirected edge set in original-id space.
type edgeSet map[extmem.Word]struct{}

func (s edgeSet) add(a, b uint32) {
	if a != b {
		s[graph.Pack(a, b)] = struct{}{}
	}
}

func (s edgeSet) clone() edgeSet {
	out := make(edgeSet, len(s))
	for e := range s {
		out[e] = struct{}{}
	}
	return out
}

func (s edgeSet) list() graph.EdgeList {
	var el graph.EdgeList
	maxV := uint32(0)
	for e := range s {
		el.Edges = append(el.Edges, e)
		if v := graph.V(e); v > maxV {
			maxV = v
		}
	}
	sort.Slice(el.Edges, func(i, j int) bool { return el.Edges[i] < el.Edges[j] })
	el.NumVertices = int(maxV) + 1
	return el
}

// image canonicalizes an edge set into a fresh memory-backed Space and
// returns the Canonical view plus the id->rank inverse of RankToID.
func image(t *testing.T, s edgeSet) (*extmem.Space, graph.Canonical, map[uint32]uint32) {
	t.Helper()
	sp := extmem.NewSpace(extmem.Config{M: 1 << 14, B: 1 << 5})
	cg := graph.CanonicalizeList(sp, s.list())
	idToRank := make(map[uint32]uint32, len(cg.RankToID))
	for r, id := range cg.RankToID {
		idToRank[id] = uint32(r)
	}
	return sp, cg, idToRank
}

// bruteforce enumerates every copy of spec in the native edge set and
// returns the canonical id-space tuples (ascending for cliques,
// Minimize'd for patterns), deduped.
func bruteforce(s edgeSet, spec Spec) map[string][]uint32 {
	vs := make(map[uint32]struct{})
	has := func(a, b uint32) bool {
		_, ok := s[graph.Pack(a, b)]
		return ok
	}
	for e := range s {
		vs[graph.U(e)] = struct{}{}
		vs[graph.V(e)] = struct{}{}
	}
	var verts []uint32
	for v := range vs {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })

	out := make(map[string][]uint32)
	if spec.Pattern == nil {
		k := spec.K
		var rec func(start int, cur []uint32)
		rec = func(start int, cur []uint32) {
			if len(cur) == k {
				key := fmt.Sprint(cur)
				out[key] = append([]uint32(nil), cur...)
				return
			}
			for i := start; i < len(verts); i++ {
				ok := true
				for _, u := range cur {
					if !has(u, verts[i]) {
						ok = false
						break
					}
				}
				if ok {
					rec(i+1, append(cur, verts[i]))
				}
			}
		}
		rec(0, nil)
		return out
	}

	p := spec.Pattern
	k := p.K()
	edges := p.Edges()
	assign := make([]uint32, k)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			tuple := append([]uint32(nil), assign...)
			p.Minimize(tuple)
			out[fmt.Sprint(tuple)] = tuple
			return
		}
		for _, v := range verts {
			dup := false
			for i := 0; i < pos; i++ {
				if assign[i] == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			ok := true
			for _, he := range edges {
				if he[0] < pos && he[1] == pos && !has(assign[he[0]], v) {
					ok = false
					break
				}
				if he[1] < pos && he[0] == pos && !has(assign[he[1]], v) {
					ok = false
					break
				}
			}
			if ok {
				assign[pos] = v
				rec(pos + 1)
			}
		}
	}
	rec(0)
	return out
}

// setDiff returns a - b as a map keyed like bruteforce output.
func setDiff(a, b map[string][]uint32) map[string][]uint32 {
	out := make(map[string][]uint32)
	for k, v := range a {
		if _, ok := b[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// runPass runs a differential pass for spec against the image of set,
// anchored on the given id-space delta edges, and returns the emitted
// tuples mapped back to id space and normalized like bruteforce output.
func runPass(t *testing.T, set edgeSet, deltaIDs []extmem.Word, spec Spec, workers int) ([][]uint32, extmem.Stats, Info) {
	t.Helper()
	sp, cg, idToRank := image(t, set)
	anchors := make([]extmem.Word, 0, len(deltaIDs))
	for _, e := range deltaIDs {
		u, ok1 := idToRank[graph.U(e)]
		v, ok2 := idToRank[graph.V(e)]
		if !ok1 || !ok2 {
			t.Fatalf("delta edge %x has endpoints unknown to the image", e)
		}
		anchors = append(anchors, graph.Pack(u, v))
	}
	pre := sp.Stats()
	var got [][]uint32
	info, err := Enumerate(nil, sp, cg, anchors, spec, workers, func(rverts []uint32) {
		ids := make([]uint32, len(rverts))
		for i, r := range rverts {
			ids[i] = cg.RankToID[r]
		}
		if spec.Pattern == nil {
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		} else {
			spec.Pattern.Minimize(ids)
		}
		got = append(got, ids)
	})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	post := sp.Stats()
	stats := extmem.Stats{
		BlockReads:  post.BlockReads - pre.BlockReads,
		BlockWrites: post.BlockWrites - pre.BlockWrites,
	}
	return got, stats, info
}

func asSet(t *testing.T, tuples [][]uint32) map[string][]uint32 {
	t.Helper()
	out := make(map[string][]uint32, len(tuples))
	for _, tu := range tuples {
		key := fmt.Sprint(tu)
		if _, dup := out[key]; dup {
			t.Fatalf("tuple %v emitted twice", tu)
		}
		out[key] = tu
	}
	return out
}

func specs() []Spec {
	return []Spec{
		{K: 3},
		{K: 4},
		{K: 5},
		{Pattern: subgraph.Triangle},
		{Pattern: subgraph.Path3},
		{Pattern: subgraph.Cycle4},
		{Pattern: subgraph.Diamond},
		{Pattern: subgraph.K4},
		{Pattern: subgraph.Star3},
		{Pattern: subgraph.House},
	}
}

func specName(s Spec) string {
	if s.Pattern != nil {
		return "pattern_" + s.Pattern.Name()
	}
	return fmt.Sprintf("clique_k%d", s.K)
}

// TestDiffOracle checks the kernel against a brute-force diff of full
// enumerations on random graphs and deltas, for cliques and every
// predefined pattern, at one and several workers.
func TestDiffOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		n := uint32(8 + rng.Intn(8))
		old := make(edgeSet)
		m := 2*int(n) + rng.Intn(3*int(n))
		for i := 0; i < m; i++ {
			old.add(rng.Uint32()%n, rng.Uint32()%n)
		}
		next := old.clone()
		var oldEdges []extmem.Word
		for e := range old {
			oldEdges = append(oldEdges, e)
		}
		sort.Slice(oldEdges, func(i, j int) bool { return oldEdges[i] < oldEdges[j] })
		for i := 0; i < 3+rng.Intn(4) && len(oldEdges) > 0; i++ {
			delete(next, oldEdges[rng.Intn(len(oldEdges))])
		}
		for i := 0; i < 3+rng.Intn(4); i++ {
			a, b := rng.Uint32()%n, n+uint32(rng.Intn(3)) // some brand-new vertices
			if rng.Intn(2) == 0 {
				b = rng.Uint32() % n
			}
			if a != b {
				next[graph.Pack(a, b)] = struct{}{}
			}
		}
		if len(old) == 0 || len(next) == 0 {
			continue
		}
		// Effective delta: exactly the edges present in one generation
		// and absent in the other (the kernel's anchor precondition).
		var addIDs, removeIDs []extmem.Word
		for e := range next {
			if _, ok := old[e]; !ok {
				addIDs = append(addIDs, e)
			}
		}
		for e := range old {
			if _, ok := next[e]; !ok {
				removeIDs = append(removeIDs, e)
			}
		}
		for _, spec := range specs() {
			spec := spec
			name := fmt.Sprintf("trial%d/%s", trial, specName(spec))
			t.Run(name, func(t *testing.T) {
				before := bruteforce(old, spec)
				after := bruteforce(next, spec)
				wantAdded := setDiff(after, before)
				wantRemoved := setDiff(before, after)

				gotAdded, addStats, _ := runPass(t, next, addIDs, spec, 1)
				gotRemoved, remStats, _ := runPass(t, old, removeIDs, spec, 1)
				if !reflect.DeepEqual(asSet(t, gotAdded), wantAdded) {
					t.Fatalf("added mismatch:\n got %v\nwant %v", asSet(t, gotAdded), wantAdded)
				}
				if !reflect.DeepEqual(asSet(t, gotRemoved), wantRemoved) {
					t.Fatalf("removed mismatch:\n got %v\nwant %v", asSet(t, gotRemoved), wantRemoved)
				}

				// Worker invariance: identical emissions in identical
				// order, identical block I/O.
				gotAdded4, addStats4, _ := runPass(t, next, addIDs, spec, 4)
				gotRemoved4, remStats4, _ := runPass(t, old, removeIDs, spec, 4)
				if !reflect.DeepEqual(gotAdded, gotAdded4) || !reflect.DeepEqual(gotRemoved, gotRemoved4) {
					t.Fatalf("emissions differ across workers")
				}
				if addStats != addStats4 || remStats != remStats4 {
					t.Fatalf("stats differ across workers: %+v vs %+v / %+v vs %+v",
						addStats, addStats4, remStats, remStats4)
				}
			})
		}
	}
}

// TestDiffEdgeCases covers the empty delta, a delta that only adds
// never-seen vertices, and anchor duplicates.
func TestDiffEdgeCases(t *testing.T) {
	s := make(edgeSet)
	s.add(0, 1)
	s.add(1, 2)
	s.add(0, 2)

	got, _, info := runPass(t, s, nil, Spec{K: 3}, 1)
	if len(got) != 0 || info.Matches != 0 || info.Scans != 0 {
		t.Fatalf("empty delta: got %v, info %+v", got, info)
	}

	// Adding a pendant triangle on fresh vertices: only the new triangle
	// must come out, and duplicate anchors must not double-emit.
	next := s.clone()
	next.add(2, 10)
	next.add(2, 11)
	next.add(10, 11)
	delta := []extmem.Word{
		graph.Pack(2, 10), graph.Pack(2, 11), graph.Pack(10, 11),
		graph.Pack(2, 10), // duplicate
	}
	got, _, info = runPass(t, next, delta, Spec{K: 3}, 1)
	if len(got) != 1 || !reflect.DeepEqual(got[0], []uint32{2, 10, 11}) {
		t.Fatalf("pendant triangle: got %v", got)
	}
	if info.Anchors != 3 {
		t.Fatalf("duplicate anchors not deduped: %+v", info)
	}

	// Removing one edge of the original triangle retracts it.
	got, _, _ = runPass(t, s, []extmem.Word{graph.Pack(0, 1)}, Spec{K: 3}, 1)
	if len(got) != 1 || !reflect.DeepEqual(got[0], []uint32{0, 1, 2}) {
		t.Fatalf("retraction: got %v", got)
	}
}

// TestPlan pins the closure radii the kernel derives for the predefined
// families; these are load-bearing for correctness (too shallow would
// silently drop matches far from the anchor).
func TestPlan(t *testing.T) {
	cases := []struct {
		spec  Spec
		depth int
		final bool
	}{
		{Spec{K: 3}, 1, false},
		{Spec{K: 4}, 1, true},
		{Spec{K: 5}, 1, true},
		{Spec{Pattern: subgraph.Triangle}, 1, false},
		{Spec{Pattern: subgraph.Path3}, 1, false},
		{Spec{Pattern: subgraph.Cycle4}, 1, true},
		{Spec{Pattern: subgraph.Diamond}, 1, true},
		{Spec{Pattern: subgraph.K4}, 1, true},
		{Spec{Pattern: subgraph.Star3}, 1, false},
		{Spec{Pattern: subgraph.House}, 2, false},
	}
	for _, c := range cases {
		depth, final := plan(c.spec)
		if depth != c.depth || final != c.final {
			t.Errorf("%s: plan = (%d, %v), want (%d, %v)",
				specName(c.spec), depth, final, c.depth, c.final)
		}
	}
}
