// Package emio provides sequential streaming primitives over extmem
// extents: readers, writers, and merge scans. Sequential access to an
// extent of n words costs ceil(n/B) + O(1) I/Os through the block cache,
// which is the "scan" primitive every external-memory bound builds on.
package emio

import "repro/internal/extmem"

// Reader is a forward sequential cursor over an extent.
type Reader struct {
	ext extmem.Extent
	pos int64
}

// NewReader returns a reader positioned at the start of ext.
func NewReader(ext extmem.Extent) *Reader { return &Reader{ext: ext} }

// Next returns the next word, or ok=false at the end.
func (r *Reader) Next() (w extmem.Word, ok bool) {
	if r.pos >= r.ext.Len() {
		return 0, false
	}
	w = r.ext.Read(r.pos)
	r.pos++
	return w, true
}

// Peek returns the next word without advancing.
func (r *Reader) Peek() (w extmem.Word, ok bool) {
	if r.pos >= r.ext.Len() {
		return 0, false
	}
	return r.ext.Read(r.pos), true
}

// Pos returns the number of words consumed.
func (r *Reader) Pos() int64 { return r.pos }

// Remaining returns the number of words left.
func (r *Reader) Remaining() int64 { return r.ext.Len() - r.pos }

// Writer appends words sequentially to an extent.
type Writer struct {
	ext extmem.Extent
	pos int64
}

// NewWriter returns a writer positioned at the start of ext.
func NewWriter(ext extmem.Extent) *Writer { return &Writer{ext: ext} }

// Append writes the next word. It panics if the extent is full; extents are
// sized by the caller, so overflow is a logic error.
func (w *Writer) Append(v extmem.Word) {
	w.ext.Write(w.pos, v)
	w.pos++
}

// Len returns the number of words written.
func (w *Writer) Len() int64 { return w.pos }

// Written returns the prefix extent holding everything appended so far.
func (w *Writer) Written() extmem.Extent { return w.ext.Prefix(w.pos) }

// Copy copies src into dst sequentially and returns the words copied.
func Copy(dst, src extmem.Extent) int64 {
	n := src.Len()
	if dst.Len() < n {
		panic("emio: Copy destination too small")
	}
	for i := int64(0); i < n; i++ {
		dst.Write(i, src.Read(i))
	}
	return n
}

// ForEach applies fn to each word of ext in order.
func ForEach(ext extmem.Extent, fn func(i int64, w extmem.Word)) {
	n := ext.Len()
	for i := int64(0); i < n; i++ {
		fn(i, ext.Read(i))
	}
}

// Filter scans src and appends every word satisfying keep to dst, returning
// the number kept. dst may be sized pessimistically (src.Len()).
func Filter(dst *Writer, src extmem.Extent, keep func(extmem.Word) bool) int64 {
	var kept int64
	n := src.Len()
	for i := int64(0); i < n; i++ {
		w := src.Read(i)
		if keep(w) {
			dst.Append(w)
			kept++
		}
	}
	return kept
}

// MergeJoin scans two sorted extents and calls onMatch for every pair of
// equal keys (one call per pair in the cross product of equal runs).
// keyA/keyB extract comparison keys from the stored words.
func MergeJoin(a, b extmem.Extent, key func(extmem.Word) uint64, onMatch func(wa, wb extmem.Word)) {
	var i, j int64
	na, nb := a.Len(), b.Len()
	for i < na && j < nb {
		wa, wb := a.Read(i), b.Read(j)
		ka, kb := key(wa), key(wb)
		switch {
		case ka < kb:
			i++
		case ka > kb:
			j++
		default:
			// Cross product of the equal-key runs.
			jEnd := j
			for jEnd < nb && key(b.Read(jEnd)) == ka {
				jEnd++
			}
			for ; i < na && key(a.Read(i)) == ka; i++ {
				wa = a.Read(i)
				for jj := j; jj < jEnd; jj++ {
					onMatch(wa, b.Read(jj))
				}
			}
			j = jEnd
		}
	}
}

// Contains reports whether sorted extent ext contains a word with the given
// key, via a merge-style scan from a reader (the caller drives ordering).
// For point lookups in unsorted data, scan with Filter instead.
func Contains(ext extmem.Extent, key func(extmem.Word) uint64, k uint64) bool {
	// Binary search: O(log n) random block accesses.
	lo, hi := int64(0), ext.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if key(ext.Read(mid)) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < ext.Len() && key(ext.Read(lo)) == k
}
