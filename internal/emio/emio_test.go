package emio

import (
	"testing"

	"repro/internal/extmem"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 10, B: 1 << 5})
}

func TestReaderWriter(t *testing.T) {
	sp := newSpace()
	ext := sp.Alloc(100)
	w := NewWriter(ext)
	for i := uint64(0); i < 50; i++ {
		w.Append(i * 2)
	}
	if w.Len() != 50 {
		t.Fatalf("writer len %d", w.Len())
	}
	r := NewReader(w.Written())
	if r.Remaining() != 50 {
		t.Fatalf("remaining %d", r.Remaining())
	}
	if v, ok := r.Peek(); !ok || v != 0 {
		t.Fatal("peek")
	}
	for i := uint64(0); i < 50; i++ {
		v, ok := r.Next()
		if !ok || v != i*2 {
			t.Fatalf("read %d: %d %v", i, v, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("read past end")
	}
	if _, ok := r.Peek(); ok {
		t.Error("peek past end")
	}
	if r.Pos() != 50 {
		t.Error("pos")
	}
}

func TestCopyAndForEach(t *testing.T) {
	sp := newSpace()
	src := sp.Alloc(64)
	for i := int64(0); i < 64; i++ {
		src.Write(i, uint64(i*i))
	}
	dst := sp.Alloc(64)
	if n := Copy(dst, src); n != 64 {
		t.Fatalf("copied %d", n)
	}
	var sum uint64
	ForEach(dst, func(i int64, w extmem.Word) { sum += w })
	var want uint64
	for i := uint64(0); i < 64; i++ {
		want += i * i
	}
	if sum != want {
		t.Errorf("sum %d want %d", sum, want)
	}
}

func TestFilter(t *testing.T) {
	sp := newSpace()
	src := sp.Alloc(100)
	for i := int64(0); i < 100; i++ {
		src.Write(i, uint64(i))
	}
	dst := sp.Alloc(100)
	w := NewWriter(dst)
	kept := Filter(w, src, func(x extmem.Word) bool { return x%3 == 0 })
	if kept != 34 {
		t.Fatalf("kept %d, want 34", kept)
	}
	out := w.Written()
	for i := int64(0); i < out.Len(); i++ {
		if out.Read(i)%3 != 0 {
			t.Fatal("filter leak")
		}
	}
}

func TestMergeJoin(t *testing.T) {
	sp := newSpace()
	a := sp.Alloc(5)
	b := sp.Alloc(6)
	for i, v := range []uint64{1, 3, 3, 5, 9} {
		a.Write(int64(i), v)
	}
	for i, v := range []uint64{2, 3, 3, 3, 5, 10} {
		b.Write(int64(i), v)
	}
	pairs := 0
	MergeJoin(a, b, func(w extmem.Word) uint64 { return w }, func(wa, wb extmem.Word) {
		if wa != wb {
			t.Fatalf("joined %d with %d", wa, wb)
		}
		pairs++
	})
	// 3 appears 2x in a and 3x in b (6 pairs); 5 appears 1x1 (1 pair).
	if pairs != 7 {
		t.Errorf("merge join found %d pairs, want 7", pairs)
	}
}

func TestContainsBinarySearch(t *testing.T) {
	sp := newSpace()
	ext := sp.Alloc(128)
	for i := int64(0); i < 128; i++ {
		ext.Write(i, uint64(i*3))
	}
	id := func(w extmem.Word) uint64 { return w }
	for i := uint64(0); i < 384; i++ {
		want := i%3 == 0
		if got := Contains(ext, id, i); got != want {
			t.Fatalf("Contains(%d) = %v", i, got)
		}
	}
	if Contains(ext, id, 999) {
		t.Error("found beyond range")
	}
	empty := sp.Alloc(0)
	if Contains(empty, id, 0) {
		t.Error("found in empty extent")
	}
}
