package emsort

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/extmem"
)

// TestParallelSortCtxPreCancelled: an already-cancelled context stops the
// sort before any work (and before any fallback runs), returning the
// context's error.
func TestParallelSortCtxPreCancelled(t *testing.T) {
	sp := extmem.NewSpace(extmem.Config{M: 1 << 10, B: 1 << 5})
	ext := sp.Alloc(1 << 12)
	for i := int64(0); i < ext.Len(); i++ {
		ext.Write(i, extmem.Word(ext.Len()-i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, sort := range map[string]func() ([]extmem.Stats, error){
		"multiway": func() ([]extmem.Stats, error) { return ParallelSortRecordsCtx(ctx, ext, 1, Identity, 2) },
		"funnel":   func() ([]extmem.Stats, error) { return ParallelFunnelSortRecordsCtx(ctx, ext, 1, Identity, 2) },
	} {
		if _, err := sort(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled context returned %v, want context.Canceled", name, err)
		}
	}
	// First element still unsorted: no partial fallback ran.
	if ext.Read(0) == 1 {
		t.Error("pre-cancelled sort modified the extent into sorted order")
	}
}

// TestParallelSortCtxMidRunCancel: a cancellation racing the sort (fired
// from inside the key function once the engine is demonstrably mid-run)
// drains the worker pool — no goroutine outlives the call — and either
// surfaces context.Canceled or, if the engine already passed its last
// check, completes with a correctly sorted extent. Both outcomes are
// legal for cooperative cancellation; leaking workers or returning a
// half-sorted extent without an error is not.
func TestParallelSortCtxMidRunCancel(t *testing.T) {
	sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 5})
	n := int64(1 << 15)
	ext := sp.Alloc(n)
	for i := int64(0); i < n; i++ {
		ext.Write(i, extmem.Word((i*2654435761)%uint32max))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var keyed atomic.Int64
	key := func(w extmem.Word) uint64 {
		if keyed.Add(1) == 3*n/2 {
			cancel()
		}
		return uint64(w)
	}
	before := runtime.NumGoroutine()
	_, err := ParallelSortRecordsCtx(ctx, ext, 1, key, 4)
	switch {
	case err == nil:
		for i := int64(1); i < n; i++ {
			if ext.Read(i-1) > ext.Read(i) {
				t.Fatalf("completed without error but element %d is out of order", i)
			}
		}
	case errors.Is(err, context.Canceled):
		// Expected: cancelled mid-run.
	default:
		t.Fatalf("unexpected error %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

const uint32max = 1 << 32
