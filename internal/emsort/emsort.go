// Package emsort provides external-memory sorting over extmem extents.
//
// Three sorters are provided:
//
//   - Sort: cache-aware multiway mergesort. Runs of Θ(M) words are formed
//     in internal memory, then merged Θ(M/B) ways per pass, achieving the
//     optimal sort(n) = O((n/B)·log_{M/B}(n/B)) I/Os.
//   - ObliviousSort: cache-oblivious bottom-up binary mergesort using no
//     knowledge of M or B; O((n/B)·log2(n)) I/Os. Simple and robust; used
//     as the reference oblivious sorter.
//   - FunnelSort: cache-oblivious lazy funnelsort (Frigo et al.; lazy
//     variant of Brodal–Fagerberg) achieving the optimal
//     O((n/B)·log_{M/B}(n/B)) I/Os under the tall-cache assumption.
//
// All sorters order fixed-stride records by a key extracted from the first
// word of each record (Stride=1 sorts plain words).
package emsort

import (
	"sort"

	"repro/internal/extmem"
)

// Key extracts the sort key from the first word of a record.
type Key func(extmem.Word) uint64

// Identity orders words by their own value; the common case for packed
// edges, whose lexicographic (u,v) order coincides with uint64 order.
func Identity(w extmem.Word) uint64 { return w }

// Sort sorts the records of ext in place using cache-aware multiway
// mergesort with the Space's configured M and B.
func Sort(ext extmem.Extent, key Key) { SortRecords(ext, 1, key) }

// sortPlan is the run/merge geometry of the cache-aware multiway
// mergesort, a pure function of the available internal memory and the
// record stride. The sequential and parallel sorts compute it from the
// same inputs, which is what makes the parallel sort's runs — and hence
// its output bytes — identical to the sequential sort's.
type sortPlan struct {
	// runWords is the formation-run length: up to 3/4 of the available
	// internal memory, rounded to whole records.
	runWords int64
	// fanIn is the merge fan-in k, limited by block frames: k input
	// streams plus one output stream, plus heap state.
	fanIn int
}

// planSort computes the multiway sort geometry for a space with avail
// words of free internal memory. avail must be at least 8*B (callers
// below that fall back to the oblivious sorter).
func planSort(cfg extmem.Config, avail, stride int) sortPlan {
	runWords := int64(avail/4*3) / int64(stride) * int64(stride)
	if runWords < 2*int64(stride) {
		runWords = 2 * int64(stride)
	}
	k := avail/cfg.B - 2
	if k < 2 {
		k = 2
	}
	if k > 1<<16 {
		k = 1 << 16
	}
	return sortPlan{runWords: runWords, fanIn: k}
}

// SortRecords sorts fixed-size records of stride words, ordered by
// key(record[0]). ext.Len() must be a multiple of stride.
func SortRecords(ext extmem.Extent, stride int, key Key) {
	n := ext.Len()
	if n%int64(stride) != 0 {
		panic("emsort: extent length not a multiple of record stride")
	}
	if n <= int64(stride) {
		return
	}
	sp := ext.Space()
	cfg := sp.Config()
	avail := cfg.M - sp.Leased()
	if avail < 8*cfg.B {
		// Too little internal memory remains for multiway merging; fall
		// back to the oblivious sorter, which needs only O(1) state.
		ObliviousSortRecords(ext, stride, key)
		return
	}
	plan := planSort(cfg, avail, stride)
	runWords := plan.runWords
	if n <= runWords {
		loadSortStore(ext, stride, key)
		return
	}
	for lo := int64(0); lo < n; lo += runWords {
		hi := lo + runWords
		if hi > n {
			hi = n
		}
		loadSortStore(ext.Slice(lo, hi), stride, key)
	}
	k := plan.fanIn
	mark := sp.Mark()
	scratch := sp.Alloc(n)
	src, dst := ext, scratch
	for runLen := runWords; runLen < n; runLen *= int64(k) {
		mergePass(src, dst, runLen, k, stride, key)
		src, dst = dst, src
	}
	if src.Base() != ext.Base() {
		src.CopyTo(ext)
	}
	sp.Release(mark)
}

// mergePass merges groups of up to k sorted runs of runLen words from src
// into dst.
func mergePass(src, dst extmem.Extent, runLen int64, k, stride int, key Key) {
	n := src.Len()
	group := runLen * int64(k)
	for glo := int64(0); glo < n; glo += group {
		ghi := glo + group
		if ghi > n {
			ghi = n
		}
		mergeRuns(src.Slice(glo, ghi), dst.Slice(glo, ghi), runLen, stride, key)
	}
}

// mergeRuns k-way merges consecutive sorted runs of runLen words in src
// into dst using a native tournament heap. The heap and cursor state are
// O(k) words and are leased from internal memory.
//
// Ties are broken first by the full first word — the contract every
// sorter in this package shares (and that the color-pair bucketing in
// trienum relies on to get buckets in canonical edge order) — and then by
// run index, so the merge is stable with respect to run order and the
// multi-pass result equals one big stable merge of all runs.
func mergeRuns(src, dst extmem.Extent, runLen int64, stride int, key Key) {
	n := src.Len()
	if n <= runLen {
		src.CopyTo(dst)
		return
	}
	numRuns := int((n + runLen - 1) / runLen)
	sp := src.Space()
	release := sp.Lease(numRuns * 4)
	defer release()

	pos := make([]int64, numRuns) // next unread word of each run
	end := make([]int64, numRuns)
	h := make([]mergeEnt, 0, numRuns)
	for r := 0; r < numRuns; r++ {
		pos[r] = int64(r) * runLen
		end[r] = pos[r] + runLen
		if end[r] > n {
			end[r] = n
		}
		w := src.Read(pos[r])
		h = append(h, mergeEnt{key(w), w, int32(r)})
	}
	heapifyMerge(h)
	out := int64(0)
	for len(h) > 0 {
		r := int(h[0].run)
		for s := 0; s < stride; s++ {
			dst.Write(out, src.Read(pos[r]+int64(s)))
			out++
		}
		pos[r] += int64(stride)
		if pos[r] < end[r] {
			w := src.Read(pos[r])
			h[0].k, h[0].w = key(w), w
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		downMerge(h, 0)
	}
}

// mergeEnt is one tournament-heap entry of a k-way run merge: the key and
// full first word of a run's head record, plus the run index for stable
// tie-breaking.
type mergeEnt struct {
	k   uint64
	w   extmem.Word
	run int32
}

func mergeLess(a, b mergeEnt) bool {
	if a.k != b.k {
		return a.k < b.k
	}
	if a.w != b.w {
		return a.w < b.w
	}
	return a.run < b.run
}

func heapifyMerge(h []mergeEnt) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		downMerge(h, i)
	}
}

func downMerge(h []mergeEnt, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && mergeLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && mergeLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// loadSortStore sorts an extent that fits in the internal-memory budget by
// loading it into a leased native buffer, sorting, and storing back.
func loadSortStore(ext extmem.Extent, stride int, key Key) {
	n := ext.Len()
	sp := ext.Space()
	release := sp.Lease(int(n))
	defer release()
	buf := make([]extmem.Word, n)
	ext.Load(buf)
	sortNative(buf, stride, key)
	ext.Store(buf)
}

// sortNative sorts records in a native buffer.
func sortNative(buf []extmem.Word, stride int, key Key) {
	if stride == 1 {
		sort.Slice(buf, func(i, j int) bool {
			ki, kj := key(buf[i]), key(buf[j])
			return ki < kj || (ki == kj && buf[i] < buf[j])
		})
		return
	}
	rs := &recSorter{buf: buf, stride: stride, key: key}
	sort.Sort(rs)
}

type recSorter struct {
	buf    []extmem.Word
	stride int
	key    Key
}

func (r *recSorter) Len() int { return len(r.buf) / r.stride }

func (r *recSorter) Less(i, j int) bool {
	a, b := r.buf[i*r.stride], r.buf[j*r.stride]
	ka, kb := r.key(a), r.key(b)
	return ka < kb || (ka == kb && a < b)
}

func (r *recSorter) Swap(i, j int) {
	for s := 0; s < r.stride; s++ {
		r.buf[i*r.stride+s], r.buf[j*r.stride+s] = r.buf[j*r.stride+s], r.buf[i*r.stride+s]
	}
}

// ObliviousSort sorts words without consulting M or B: bottom-up binary
// mergesort with ping-pong buffers, O((n/B)·log2 n) I/Os.
func ObliviousSort(ext extmem.Extent, key Key) { ObliviousSortRecords(ext, 1, key) }

// obliviousBaseRecords is the constant-size base case of the oblivious
// sorters: runs of this many records are sorted through an O(1)-word native
// buffer. Constant extra registers are permitted in the cache-oblivious
// model; this is purely a constant-factor optimization.
const obliviousBaseRecords = 64

// ObliviousSortRecords sorts fixed-stride records cache-obliviously.
func ObliviousSortRecords(ext extmem.Extent, stride int, key Key) {
	n := ext.Len()
	if n%int64(stride) != 0 {
		panic("emsort: extent length not a multiple of record stride")
	}
	if n <= int64(stride) {
		return
	}
	base := int64(obliviousBaseRecords * stride)
	tmp := make([]extmem.Word, base)
	for lo := int64(0); lo < n; lo += base {
		hi := lo + base
		if hi > n {
			hi = n
		}
		seg := ext.Slice(lo, hi)
		t := tmp[:hi-lo]
		seg.Load(t)
		sortNative(t, stride, key)
		seg.Store(t)
	}
	if n <= base {
		return
	}
	sp := ext.Space()
	mark := sp.Mark()
	scratch := sp.Alloc(n)
	src, dst := ext, scratch
	for width := base; width < n; width *= 2 {
		for lo := int64(0); lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeTwo(src, dst, lo, mid, hi, stride, key)
		}
		src, dst = dst, src
	}
	if src.Base() != ext.Base() {
		src.CopyTo(ext)
	}
	sp.Release(mark)
}

// mergeTwo merges src[lo:mid] and src[mid:hi] (both sorted) into
// dst[lo:hi].
func mergeTwo(src, dst extmem.Extent, lo, mid, hi int64, stride int, key Key) {
	i, j, out := lo, mid, lo
	st := int64(stride)
	for i < mid && j < hi {
		wi, wj := src.Read(i), src.Read(j)
		ki, kj := key(wi), key(wj)
		if ki < kj || (ki == kj && wi <= wj) {
			for s := int64(0); s < st; s++ {
				dst.Write(out, src.Read(i+s))
				out++
			}
			i += st
		} else {
			for s := int64(0); s < st; s++ {
				dst.Write(out, src.Read(j+s))
				out++
			}
			j += st
		}
	}
	for ; i < mid; i++ {
		dst.Write(out, src.Read(i))
		out++
	}
	for ; j < hi; j++ {
		dst.Write(out, src.Read(j))
		out++
	}
}

// IsSorted reports whether the records of ext are in nondecreasing key
// order (ties broken by full first word, matching the sorters).
func IsSorted(ext extmem.Extent, stride int, key Key) bool {
	n := ext.Len()
	st := int64(stride)
	for i := st; i < n; i += st {
		a, b := ext.Read(i-st), ext.Read(i)
		ka, kb := key(a), key(b)
		if ka > kb || (ka == kb && a > b) {
			return false
		}
	}
	return true
}
