package emsort

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/extmem"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
}

func fillRandom(ext extmem.Extent, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	ref := make([]uint64, ext.Len())
	for i := range ref {
		ref[i] = rng.Uint64()
		ext.Write(int64(i), ref[i])
	}
	return ref
}

type sorter struct {
	name string
	fn   func(extmem.Extent, int, Key)
}

var sorters = []sorter{
	{"multiway", SortRecords},
	{"oblivious", ObliviousSortRecords},
	{"funnel", FunnelSortRecords},
}

func TestSortersAgainstReference(t *testing.T) {
	sizes := []int64{0, 1, 2, 3, 7, 64, 65, 1000, 4096, 10000, 50000}
	for _, s := range sorters {
		for _, n := range sizes {
			sp := newSpace()
			ext := sp.Alloc(n)
			ref := fillRandom(ext, n+17)
			sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
			s.fn(ext, 1, Identity)
			for i := int64(0); i < n; i++ {
				if got := ext.Read(i); got != ref[i] {
					t.Fatalf("%s n=%d: word %d = %d, want %d", s.name, n, i, got, ref[i])
				}
			}
		}
	}
}

func TestSortWithCustomKey(t *testing.T) {
	// Sort descending by using the complement as key.
	for _, s := range sorters {
		sp := newSpace()
		n := int64(5000)
		ext := sp.Alloc(n)
		fillRandom(ext, 3)
		s.fn(ext, 1, func(w extmem.Word) uint64 { return ^w })
		for i := int64(1); i < n; i++ {
			if ext.Read(i-1) < ext.Read(i) {
				t.Fatalf("%s: not descending at %d", s.name, i)
			}
		}
	}
}

func TestSortRecordsStride2(t *testing.T) {
	for _, s := range sorters {
		sp := newSpace()
		nRec := 4000
		ext := sp.Alloc(int64(2 * nRec))
		rng := rand.New(rand.NewSource(9))
		type rec struct{ k, v uint64 }
		ref := make([]rec, nRec)
		for i := range ref {
			ref[i] = rec{uint64(rng.Intn(500)), uint64(i)} // many duplicate keys
			ext.Write(int64(2*i), ref[i].k)
			ext.Write(int64(2*i+1), ref[i].v)
		}
		s.fn(ext, 2, Identity)
		// Keys nondecreasing and payloads still paired with their keys.
		pair := make(map[uint64]uint64, nRec)
		for i := range ref {
			pair[ref[i].v] = ref[i].k
		}
		var prev uint64
		for i := 0; i < nRec; i++ {
			k, v := ext.Read(int64(2*i)), ext.Read(int64(2*i+1))
			if k < prev {
				t.Fatalf("%s: keys not sorted at record %d", s.name, i)
			}
			prev = k
			if pair[v] != k {
				t.Fatalf("%s: record %d payload %d has key %d, want %d", s.name, i, v, k, pair[v])
			}
		}
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	prop := func(vals []uint16, which uint8) bool {
		sp := newSpace()
		ext := sp.Alloc(int64(len(vals)))
		counts := map[uint64]int{}
		for i, v := range vals {
			ext.Write(int64(i), uint64(v))
			counts[uint64(v)]++
		}
		s := sorters[int(which)%len(sorters)]
		s.fn(ext, 1, Identity)
		for i := int64(0); i < ext.Len(); i++ {
			counts[ext.Read(i)]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return IsSorted(ext, 1, Identity)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStrideValidation(t *testing.T) {
	sp := newSpace()
	ext := sp.Alloc(7)
	for _, s := range sorters {
		func() {
			defer func() { recover() }()
			s.fn(ext, 2, Identity)
			t.Errorf("%s: odd length with stride 2 should panic", s.name)
		}()
	}
}

func TestMultiwaySortIOComplexity(t *testing.T) {
	// For n in the single-merge-pass regime, multiway mergesort should use
	// roughly 4n/B I/Os (read+write runs, read+write merge). Allow 3x slack
	// for copy-back and partial blocks.
	cfg := extmem.Config{M: 1 << 12, B: 1 << 6}
	for _, n := range []int64{1 << 14, 1 << 16} {
		sp := extmem.NewSpace(cfg)
		ext := sp.Alloc(n)
		fillRandom(ext, 1)
		sp.DropCache()
		sp.ResetStats()
		Sort(ext, Identity)
		sp.Flush()
		ios := sp.Stats().IOs()
		ideal := uint64(4 * n / int64(cfg.B))
		if ios > 3*ideal {
			t.Errorf("n=%d: multiway sort used %d I/Os, ideal ~%d", n, ios, ideal)
		}
	}
}

func TestObliviousSortIOScaling(t *testing.T) {
	// Oblivious binary mergesort is O((n/B) log2 n); check the measured
	// I/Os stay within a small constant of (n/B)·log2(n/base).
	cfg := extmem.Config{M: 1 << 12, B: 1 << 6}
	n := int64(1 << 16)
	sp := extmem.NewSpace(cfg)
	ext := sp.Alloc(n)
	fillRandom(ext, 2)
	sp.DropCache()
	sp.ResetStats()
	ObliviousSort(ext, Identity)
	sp.Flush()
	ios := float64(sp.Stats().IOs())
	passes := math.Ceil(math.Log2(float64(n) / float64(obliviousBaseRecords)))
	bound := 4 * (passes + 2) * float64(n) / float64(cfg.B)
	if ios > bound {
		t.Errorf("oblivious sort: %d I/Os exceeds bound %.0f", uint64(ios), bound)
	}
	if !IsSorted(ext, 1, Identity) {
		t.Error("not sorted")
	}
}

func TestFunnelBeatsBinaryOblivious(t *testing.T) {
	// Funnelsort's recursion saves I/Os versus log2-pass binary mergesort
	// once n/M is large. This is the whole point of implementing it; make
	// sure it holds on at least one configuration.
	cfg := extmem.Config{M: 1 << 10, B: 1 << 5}
	n := int64(1 << 17)
	run := func(fn func(extmem.Extent, int, Key)) uint64 {
		sp := extmem.NewSpace(cfg)
		ext := sp.Alloc(n)
		fillRandom(ext, 5)
		sp.DropCache()
		sp.ResetStats()
		fn(ext, 1, Identity)
		sp.Flush()
		if !IsSorted(ext, 1, Identity) {
			t.Fatal("not sorted")
		}
		return sp.Stats().IOs()
	}
	funnel := run(FunnelSortRecords)
	binary := run(ObliviousSortRecords)
	if funnel >= binary {
		t.Errorf("funnelsort used %d I/Os, binary oblivious %d; expected funnel < binary", funnel, binary)
	}
	t.Logf("funnel=%d binary=%d (%.2fx)", funnel, binary, float64(binary)/float64(funnel))
}

func TestSortAllEqual(t *testing.T) {
	for _, s := range sorters {
		sp := newSpace()
		ext := sp.Alloc(3000)
		ext.Fill(42)
		s.fn(ext, 1, Identity)
		for i := int64(0); i < ext.Len(); i++ {
			if ext.Read(i) != 42 {
				t.Fatalf("%s: constant input corrupted", s.name)
			}
		}
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	for _, s := range sorters {
		for _, reversed := range []bool{false, true} {
			sp := newSpace()
			n := int64(10000)
			ext := sp.Alloc(n)
			for i := int64(0); i < n; i++ {
				if reversed {
					ext.Write(i, uint64(n-i))
				} else {
					ext.Write(i, uint64(i))
				}
			}
			s.fn(ext, 1, Identity)
			if !IsSorted(ext, 1, Identity) {
				t.Fatalf("%s reversed=%v: not sorted", s.name, reversed)
			}
		}
	}
}

func TestIsSorted(t *testing.T) {
	sp := newSpace()
	ext := sp.Alloc(4)
	for i, v := range []uint64{1, 2, 2, 3} {
		ext.Write(int64(i), v)
	}
	if !IsSorted(ext, 1, Identity) {
		t.Error("sorted input reported unsorted")
	}
	ext.Write(3, 0)
	if IsSorted(ext, 1, Identity) {
		t.Error("unsorted input reported sorted")
	}
}
