package emsort

import (
	"math"

	"repro/internal/extmem"
)

// FunnelSort sorts words cache-obliviously with lazy funnelsort, achieving
// the optimal O((n/B)·log_{M/B}(n/B)) I/Os under the tall-cache assumption
// without ever consulting M or B.
//
// Structure (Frigo–Leiserson–Prokop–Ramachandran; lazy variant of Brodal
// and Fagerberg): split the input into k = ceil(n^(1/3)) segments, sort
// them recursively, and merge with a k-funnel. A k-funnel is a binary
// merge tree laid out by van-Emde-Boas-style recursion: a funnel over J
// streams splits into a top funnel over ~sqrt(J) sub-funnels, and each
// sub-funnel's output buffer has capacity J^(3/2) records, so a sub-funnel
// with j leaves owns a buffer of ~j^3 records. Buffers are refilled lazily
// when drained.
func FunnelSort(ext extmem.Extent, key Key) { FunnelSortRecords(ext, 1, key) }

// funnelBaseRecords is the constant base-case size below which segments
// are sorted through a native buffer of O(1) words.
const funnelBaseRecords = 128

// FunnelSortRecords sorts fixed-stride records with lazy funnelsort.
func FunnelSortRecords(ext extmem.Extent, stride int, key Key) {
	n := ext.Len()
	if n%int64(stride) != 0 {
		panic("emsort: extent length not a multiple of record stride")
	}
	funnelSortRec(ext, stride, key)
}

func funnelSortRec(ext extmem.Extent, stride int, key Key) {
	nRec := ext.Len() / int64(stride)
	if nRec <= funnelBaseRecords {
		if nRec > 1 {
			tmp := make([]extmem.Word, ext.Len())
			ext.Load(tmp)
			sortNative(tmp, stride, key)
			ext.Store(tmp)
		}
		return
	}
	segs := funnelSplit(ext, stride)
	for _, seg := range segs {
		funnelSortRec(seg, stride, key)
	}
	funnelMergeSegs(ext, segs, stride, key)
}

// funnelSplit returns the top-level partition of the funnel recursion:
// k ~ n^(1/3) segments of ~n^(2/3) records each. The boundaries are a pure
// function of the extent geometry, so the sequential recursion and the
// parallel variant (parallel.go) partition identically.
func funnelSplit(ext extmem.Extent, stride int) []extmem.Extent {
	nRec := ext.Len() / int64(stride)
	k := int(math.Ceil(math.Cbrt(float64(nRec))))
	if k < 2 {
		k = 2
	}
	segRec := (nRec + int64(k) - 1) / int64(k)
	var segs []extmem.Extent
	for lo := int64(0); lo < nRec; lo += segRec {
		hi := lo + segRec
		if hi > nRec {
			hi = nRec
		}
		segs = append(segs, ext.Slice(lo*int64(stride), hi*int64(stride)))
	}
	return segs
}

// funnelMergeSegs merges the sorted segments of ext (as produced by
// funnelSplit + recursive sorting) back into ext with a k-funnel.
func funnelMergeSegs(ext extmem.Extent, segs []extmem.Extent, stride int, key Key) {
	if len(segs) <= 1 {
		return
	}
	sp := ext.Space()
	mark := sp.Mark()
	out := sp.Alloc(ext.Len())
	leaves := make([]*funnelNode, len(segs))
	for i, s := range segs {
		leaves[i] = &funnelNode{stream: s, stride: int64(stride), key: key, leaf: true}
	}
	root := buildFunnelRec(sp, leaves, int64(stride), key)
	root.out = out
	root.outCapRec = out.Len() / int64(stride)
	root.refill()
	out.CopyTo(ext)
	sp.Release(mark)
}

// funnelNode is either a leaf (stream != zero extent semantics, streaming a
// sorted segment) or a binary merger with an output buffer.
type funnelNode struct {
	stride int64
	key    Key

	// Leaf state.
	stream    extmem.Extent
	streamPos int64 // in words
	leaf      bool

	// Internal-node state.
	left, right *funnelNode
	out         extmem.Extent // output buffer (records)
	outCapRec   int64
	outLenRec   int64 // filled records
	outPosRec   int64 // consumed records
	exhausted   bool
}

// buildFunnelRec builds the merge tree over the given input nodes
// following the funnel recursion, allocating intermediate buffers in sp.
func buildFunnelRec(sp *extmem.Space, inputs []*funnelNode, stride int64, key Key) *funnelNode {
	k := len(inputs)
	if k == 1 {
		return inputs[0]
	}
	if k == 2 {
		return &funnelNode{stride: stride, key: key, left: inputs[0], right: inputs[1]}
	}
	// Split into g ~ sqrt(k) groups; each group becomes a sub-funnel with
	// an output buffer of k^(3/2) records.
	g := int(math.Ceil(math.Sqrt(float64(k))))
	bufRec := int64(math.Ceil(math.Pow(float64(k), 1.5)))
	if bufRec < 8 {
		bufRec = 8
	}
	per := (k + g - 1) / g
	var tops []*funnelNode
	for lo := 0; lo < k; lo += per {
		hi := lo + per
		if hi > k {
			hi = k
		}
		sub := buildFunnelRec(sp, inputs[lo:hi], stride, key)
		if sub.left != nil && sub.out.Len() == 0 {
			// Give the sub-funnel root its middle buffer.
			sub.out = sp.Alloc(bufRec * stride)
			sub.outCapRec = bufRec
		}
		tops = append(tops, sub)
	}
	return buildFunnelRec(sp, tops, stride, key)
}

// empty reports whether the node has no buffered record ready.
func (v *funnelNode) empty() bool {
	if v.leaf {
		return v.streamPos >= v.stream.Len()
	}
	return v.outPosRec >= v.outLenRec
}

// done reports whether the node will never produce another record.
func (v *funnelNode) done() bool {
	if v.leaf {
		return v.streamPos >= v.stream.Len()
	}
	return v.exhausted && v.empty()
}

// head returns the key and full first word of the next record — ties on
// key are broken by the word, the tie-break contract shared by every
// sorter in this package. Caller ensures !empty().
func (v *funnelNode) head() (k uint64, w extmem.Word) {
	if v.leaf {
		w = v.stream.Read(v.streamPos)
	} else {
		w = v.out.Read(v.outPosRec * v.stride)
	}
	return v.key(w), w
}

// pop copies the node's next record into dst starting at word dstOff.
func (v *funnelNode) pop(dst extmem.Extent, dstOff int64) {
	if v.leaf {
		for s := int64(0); s < v.stride; s++ {
			dst.Write(dstOff+s, v.stream.Read(v.streamPos+s))
		}
		v.streamPos += v.stride
		return
	}
	src := v.outPosRec * v.stride
	for s := int64(0); s < v.stride; s++ {
		dst.Write(dstOff+s, v.out.Read(src+s))
	}
	v.outPosRec++
}

// ensure makes the child ready to produce, refilling if drained.
func (v *funnelNode) ensure() {
	if v.leaf || !v.empty() || v.exhausted {
		return
	}
	v.refill()
}

// refill fills the node's output buffer as full as possible by merging its
// children (lazily refilling them when they drain).
func (v *funnelNode) refill() {
	v.outPosRec = 0
	v.outLenRec = 0
	l, r := v.left, v.right
	for v.outLenRec < v.outCapRec {
		l.ensure()
		r.ensure()
		le, re := l.empty(), r.empty()
		if le && re {
			v.exhausted = true
			return
		}
		var from *funnelNode
		switch {
		case le:
			from = r
		case re:
			from = l
		default:
			lk, lw := l.head()
			rk, rw := r.head()
			if lk < rk || (lk == rk && lw <= rw) {
				from = l
			} else {
				from = r
			}
		}
		from.pop(v.out, v.outLenRec*v.stride)
		v.outLenRec++
	}
}
