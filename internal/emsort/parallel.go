package emsort

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ctxutil"
	"repro/internal/extmem"
)

// The parallel sort(E) substrate. The cache-aware multiway mergesort and
// the funnel recursion both decompose into independent units — one
// formation run (resp. one top-level funnel segment) per Θ(M) slice of
// the input, and one top-level merge per key range of the output — that
// share no mutable state once the coordinator has frozen the input with
// extmem.Snapshot. This file dispatches those units to a pool of workers,
// each executing on its own extmem shard (a private M-word cache over the
// shared read-only region, the PEM accounting of shard.go), and replays
// the units' output streams in the fixed unit order on the coordinator.
//
// Two properties hold by construction, for every worker count:
//
//   - Byte-identity: the parallel sorts emit exactly the bytes of their
//     sequential counterparts. Formation runs use the geometry of
//     planSort (resp. funnelSplit), so run contents match; the key-range
//     merges partition the output at value boundaries with the stable
//     (key, word, run) comparator of mergeRuns, so the concatenated
//     chunks equal the sequential stable multi-pass merge.
//   - Exact accounting: every unit runs against the same frozen input
//     from a cold private cache, so its I/O counts do not depend on
//     scheduling; summed per-worker Stats plus the coordinator's equal
//     the one-worker parallel run exactly. (As with the trienum engine,
//     parallel totals differ from the *sequential reference sorts* by a
//     constant factor — units are charged cold starts and the coordinator
//     re-writes the streamed results — which is the accounting the PEM
//     model performs.)
//
// Inputs whose geometry leaves nothing to parallelize (a single run, too
// little internal memory, an unaligned extent, or a sample index that
// would not fit the internal-memory budget) fall back to the sequential
// sorts. In the multi-pass merge regime (n > k·runWords) the engine runs
// the sequential intermediate passes on the coordinator and parallelizes
// the top-level pass — see ParallelSortRecordsCtx. Every fallback
// predicate is a pure function of the input and the machine
// configuration — never of the worker count — so the fallbacks cannot
// break cross-worker-count invariance.

const (
	// sortBatchWords is the number of words per stream handoff from a
	// worker to the coordinator's merge layer.
	sortBatchWords = 1 << 13
	// sortStreamDepth bounds the batches a not-yet-consumed unit may
	// buffer before its worker blocks, keeping the engine's native memory
	// at O(workers · sortStreamDepth · sortBatchWords) words.
	sortStreamDepth = 4
)

// wordTask is one unit of parallel sort work: it runs against a worker's
// shard Space and streams its output words (in the unit's canonical
// order) through send, which reports false when the engine is unwinding.
type wordTask func(shard *extmem.Space, send func([]extmem.Word) bool)

// runWordTasks executes tasks on up to `workers` workers, each owning one
// shard Space over the shared snapshot, and hands every task's output
// batches to consume in task order on the calling goroutine. Between
// tasks a worker releases its scratch and drops its cache, so each task
// runs cold, exactly as on a fresh shard. Returns the per-worker stats.
//
// Cancellation is cooperative with unit granularity: when ctx is
// cancelled the coordinator stops consuming and dispatching, in-flight
// units unwind at their next blocked send, the pool drains cleanly (no
// goroutine outlives the call), and the already-accumulated per-worker
// stats are returned together with ctx.Err().
func runWordTasks(ctx context.Context, cfg extmem.Config, shared []extmem.Word, tasks []wordTask, workers int, consume func(task int, batch []extmem.Word)) ([]extmem.Stats, error) {
	if len(tasks) == 0 {
		return nil, ctxutil.Err(ctx)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	streams := make([]chan []extmem.Word, len(tasks))
	for i := range streams {
		streams[i] = make(chan []extmem.Word, sortStreamDepth)
	}
	jobs := make(chan int)
	window := make(chan struct{}, 2*workers)
	// done is closed when the merge layer stops consuming — normally
	// after the last task, but also if consume panics — so blocked
	// workers and the dispatcher always unwind instead of leaking.
	done := make(chan struct{})
	stats := make([]extmem.Stats, workers)
	var wg sync.WaitGroup
	defer func() {
		close(done)
		wg.Wait()
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := extmem.NewShardSpace(cfg, shared)
			base := shard.Mark()
			for idx := range jobs {
				alive := true
				tasks[idx](shard, func(batch []extmem.Word) bool {
					if !alive {
						return false
					}
					select {
					case streams[idx] <- batch:
						return true
					case <-done:
						alive = false
						return false
					}
				})
				close(streams[idx])
				shard.Release(base)
				shard.DropCache()
			}
			stats[w] = shard.Stats()
		}(w)
	}
	go func() {
		defer close(jobs)
		for i := range tasks {
			select {
			case window <- struct{}{}: // blocks while the merge cursor lags
			case <-done:
				return
			}
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()
	cancelled := ctxutil.Done(ctx)
	for i := range tasks {
		stream := streams[i]
		for stream != nil {
			select {
			case batch, ok := <-stream:
				if !ok {
					stream = nil
					break
				}
				consume(i, batch)
			case <-cancelled:
				return stats, ctx.Err()
			}
		}
		select {
		case <-window:
		case <-cancelled:
			return stats, ctx.Err()
		}
	}
	return stats, nil
}

// ParallelSort sorts words with the parallel cache-aware multiway
// mergesort; see ParallelSortRecords.
func ParallelSort(ext extmem.Extent, key Key, workers int) []extmem.Stats {
	return ParallelSortRecords(ext, 1, key, workers)
}

// ParallelSortRecords sorts fixed-stride records like SortRecords —
// producing byte-identical output — with run formation and the top-level
// multiway merge fanned out across worker shards. workers <= 0 selects
// runtime.GOMAXPROCS(0). The returned per-worker stats are the parallel
// phases' I/O breakdown (the coordinator's own I/Os accrue to the
// extent's Space as usual); their aggregate is identical at every worker
// count.
func ParallelSortRecords(ext extmem.Extent, stride int, key Key, workers int) []extmem.Stats {
	ws, _ := ParallelSortRecordsCtx(nil, ext, stride, key, workers)
	return ws
}

// ParallelSortRecordsCtx is ParallelSortRecords with cooperative
// cancellation: the engine checks ctx between runs and between merge
// chunks, drains its worker pool cleanly, and returns ctx.Err() with the
// stats accumulated so far. On a non-nil error the extent's contents are
// unspecified (a prefix may hold merged records); callers are expected to
// release the scratch the sort was working in. A nil ctx never cancels.
func ParallelSortRecordsCtx(ctx context.Context, ext extmem.Extent, stride int, key Key, workers int) ([]extmem.Stats, error) {
	n := ext.Len()
	if n%int64(stride) != 0 {
		panic("emsort: extent length not a multiple of record stride")
	}
	if err := ctxutil.Err(ctx); err != nil {
		return nil, err
	}
	if n <= int64(stride) {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp := ext.Space()
	cfg := sp.Config()
	avail := cfg.M - sp.Leased()
	if avail < 8*cfg.B {
		ObliviousSortRecords(ext, stride, key)
		return nil, nil
	}
	plan := planSort(cfg, avail, stride)
	if n <= plan.runWords {
		loadSortStore(ext, stride, key)
		return nil, nil
	}
	if ext.Base()&int64(cfg.B-1) != 0 {
		// Snapshot needs a block-aligned shared region; stay sequential.
		SortRecords(ext, stride, key)
		return nil, nil
	}
	numRuns := int((n + plan.runWords - 1) / plan.runWords)
	// Multi-pass merge regime: when the formation runs exceed the merge
	// fan-in, the sequential engine merges in several passes. The parallel
	// engine mirrors its geometry exactly: every pass but the last runs
	// sequentially on the coordinator (whole-extent rewrites with nothing
	// for the key-range splitter to partition), collapsing the formation
	// runs to at most fanIn top-level runs, and the final pass — over the
	// same top-level runs the sequential engine would merge last — is
	// fanned out below. With numRuns <= fanIn this degenerates to zero
	// intermediate passes and the single-pass geometry.
	topRunWords := plan.runWords
	passes := 0
	for (n+topRunWords-1)/topRunWords > int64(plan.fanIn) {
		topRunWords *= int64(plan.fanIn)
		passes++
	}
	numTop := int((n + topRunWords - 1) / topRunWords)
	// Sample geometry: one sampled record per block of top-level run
	// data. The sample index localizes every boundary search to one
	// block; both the coordinator and each consulting shard lease its
	// footprint.
	qRec := int64(cfg.B / stride)
	if qRec < 1 {
		qRec = 1
	}
	st := int64(stride)
	nRec := n / st
	runRecs := make([]int64, numTop)
	totalSamples := 0
	for r := range runRecs {
		lo := int64(r) * (topRunWords / st)
		hi := lo + topRunWords/st
		if hi > nRec {
			hi = nRec
		}
		runRecs[r] = hi - lo
		totalSamples += int((runRecs[r] + qRec - 1) / qRec)
	}
	if totalSamples > avail-2*cfg.B || totalSamples+4*numTop > cfg.M-2*cfg.B {
		SortRecords(ext, stride, key)
		return nil, nil
	}

	// Phase 1 — run formation. Freeze the input; each task loads its run
	// from the shared region, sorts it natively, and streams it back; the
	// coordinator lays the runs down in a fresh scratch extent and — in
	// the single-pass regime, where formation runs are the top-level
	// runs — extracts the per-run sample index on the way through.
	shared := sp.Snapshot(ext)
	mark := sp.Mark()
	defer sp.Release(mark)
	runsBuf := sp.Alloc(n)

	// The sample index is leased only while it exists: from phase 1's
	// inline extraction in the single-pass regime, but not before the
	// intermediate passes in the multi-pass one — mergePass needs the
	// merge heap's headroom, and the samples are extracted after it.
	if passes == 0 {
		releaseSamples := sp.Lease(totalSamples)
		defer releaseSamples()
	}
	samples := make([][]extmem.Word, numTop)
	runTasks := make([]wordTask, numRuns)
	for r := 0; r < numRuns; r++ {
		lo := int64(r) * plan.runWords
		hi := lo + plan.runWords
		if hi > n {
			hi = n
		}
		runTasks[r] = func(shard *extmem.Space, send func([]extmem.Word) bool) {
			release := shard.Lease(int(hi - lo))
			defer release()
			buf := make([]extmem.Word, hi-lo)
			shard.ExtentAt(lo, hi-lo).Load(buf)
			sortNative(buf, stride, key)
			for o := 0; o < len(buf); o += sortBatchWords {
				e := o + sortBatchWords
				if e > len(buf) {
					e = len(buf)
				}
				if !send(buf[o:e:e]) {
					return
				}
			}
		}
	}
	var cur int64
	ws, err := runWordTasks(ctx, cfg, shared, runTasks, workers, func(task int, batch []extmem.Word) {
		runLo := int64(task) * plan.runWords
		for _, w := range batch {
			if passes == 0 {
				off := cur - runLo
				if off%st == 0 && (off/st)%qRec == 0 {
					samples[task] = append(samples[task], w)
				}
			}
			runsBuf.Write(cur, w)
			cur++
		}
	})
	if err != nil {
		return ws, err
	}

	if passes > 0 {
		// Intermediate merge passes — the sequential engine's exact
		// ping-pong geometry, run on the coordinator. After them the
		// scratch holds numTop sorted runs of topRunWords each, the same
		// top-level runs SortRecords would merge in its final pass.
		scratch2 := sp.Alloc(n)
		src, dst := runsBuf, scratch2
		runLen := plan.runWords
		for p := 0; p < passes; p++ {
			if err := ctxutil.Err(ctx); err != nil {
				return ws, err
			}
			mergePass(src, dst, runLen, plan.fanIn, stride, key)
			runLen *= int64(plan.fanIn)
			src, dst = dst, src
		}
		runsBuf = src
		// The formation runs the inline extraction would have indexed no
		// longer exist; sample the top-level runs in the same grid —
		// records 0, qRec, 2·qRec, … of each run.
		releaseSamples := sp.Lease(totalSamples)
		defer releaseSamples()
		for r := 0; r < numTop; r++ {
			runLo := int64(r) * topRunWords
			for rec := int64(0); rec < runRecs[r]; rec += qRec {
				samples[r] = append(samples[r], runsBuf.Read(runLo+rec*st))
			}
		}
	}

	// Phase 2 — key-range merge. Splitters are drawn from the global
	// sample multiset; chunk j merges, from every run, the records whose
	// (key, word) lies in [splitter j-1, splitter j) — located exactly by
	// a lower-bound probe confined to one sample gap — with the stable
	// (key, word, run) comparator. Concatenating the chunks in order
	// therefore reproduces the sequential merge bytes.
	wordLess := func(a, b extmem.Word) bool {
		ka, kb := key(a), key(b)
		return ka < kb || (ka == kb && a < b)
	}
	all := make([]extmem.Word, 0, totalSamples)
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return wordLess(all[i], all[j]) })
	var splitters []extmem.Word
	for j := 1; j < numTop; j++ {
		cand := all[j*len(all)/numTop]
		if len(splitters) == 0 || wordLess(splitters[len(splitters)-1], cand) {
			splitters = append(splitters, cand)
		}
	}

	shared2 := sp.Snapshot(runsBuf)
	chunkTasks := make([]wordTask, len(splitters)+1)
	for j := range chunkTasks {
		var sLo, sHi *extmem.Word
		if j > 0 {
			sLo = &splitters[j-1]
		}
		if j < len(splitters) {
			sHi = &splitters[j]
		}
		chunkTasks[j] = func(shard *extmem.Space, send func([]extmem.Word) bool) {
			release := shard.Lease(totalSamples + 4*numTop)
			defer release()
			view := shard.ExtentAt(0, n)
			segs := make([][2]int64, numTop) // [pos, end) in words
			for r := 0; r < numTop; r++ {
				runLo := int64(r) * topRunWords
				lo, hi := int64(0), runRecs[r]
				if sLo != nil {
					lo = lowerBoundInRun(view, runLo, runRecs[r], st, qRec, samples[r], wordLess, *sLo)
				}
				if sHi != nil {
					hi = lowerBoundInRun(view, runLo, runRecs[r], st, qRec, samples[r], wordLess, *sHi)
				}
				segs[r] = [2]int64{runLo + lo*st, runLo + hi*st}
			}
			mergeChunk(view, segs, stride, key, send)
		}
	}
	var out int64
	ws2, err := runWordTasks(ctx, cfg, shared2, chunkTasks, workers, func(_ int, batch []extmem.Word) {
		for _, w := range batch {
			ext.Write(out, w)
			out++
		}
	})
	return extmem.AddStatsVec(ws, ws2), err
}

// lowerBoundInRun returns the first record index in [0, runRec) of the
// run starting at word runLo whose (key, word) is not less than s. The
// native sample index (one sample per qRec records, record 0 included)
// confines the probe to a single sample gap of at most one block.
func lowerBoundInRun(view extmem.Extent, runLo, runRec, stride, qRec int64, samples []extmem.Word, wordLess func(a, b extmem.Word) bool, s extmem.Word) int64 {
	i := sort.Search(len(samples), func(i int) bool { return !wordLess(samples[i], s) })
	lo := int64(0)
	if i > 0 {
		lo = int64(i-1) * qRec
	}
	hi := int64(i) * qRec
	if hi > runRec {
		hi = runRec
	}
	for rec := lo; rec < hi; rec++ {
		if !wordLess(view.Read(runLo+rec*stride), s) {
			return rec
		}
	}
	return hi
}

// mergeChunk k-way merges the sorted run segments segs (word ranges of
// view) with the stable (key, word, run) comparator of mergeRuns,
// streaming the merged records out in batches.
func mergeChunk(view extmem.Extent, segs [][2]int64, stride int, key Key, send func([]extmem.Word) bool) {
	h := make([]mergeEnt, 0, len(segs))
	pos := make([]int64, len(segs))
	for r, seg := range segs {
		pos[r] = seg[0]
		if seg[0] < seg[1] {
			w := view.Read(seg[0])
			h = append(h, mergeEnt{key(w), w, int32(r)})
		}
	}
	heapifyMerge(h)
	batch := make([]extmem.Word, 0, sortBatchWords)
	for len(h) > 0 {
		r := int(h[0].run)
		for s := 0; s < stride; s++ {
			batch = append(batch, view.Read(pos[r]+int64(s)))
		}
		if len(batch) >= sortBatchWords {
			if !send(batch) {
				return
			}
			batch = make([]extmem.Word, 0, sortBatchWords)
		}
		pos[r] += int64(stride)
		if pos[r] < segs[r][1] {
			w := view.Read(pos[r])
			h[0].k, h[0].w = key(w), w
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		downMerge(h, 0)
	}
	if len(batch) > 0 {
		send(batch)
	}
}

// ParallelFunnelSort sorts words with the parallel funnelsort; see
// ParallelFunnelSortRecords.
func ParallelFunnelSort(ext extmem.Extent, key Key, workers int) []extmem.Stats {
	return ParallelFunnelSortRecords(ext, 1, key, workers)
}

// ParallelFunnelSortRecords sorts fixed-stride records like
// FunnelSortRecords — producing byte-identical output — with the
// top-level recursion's k ~ n^(1/3) independent segment sorts fanned out
// across worker shards. Each task funnel-sorts a private copy of its
// segment (the recursion itself never consults M or B; only the engine
// around it does) and streams it back; the coordinator then runs the
// top-level k-funnel merge, which is inherently sequential. workers <= 0
// selects runtime.GOMAXPROCS(0); the stats contract matches
// ParallelSortRecords.
func ParallelFunnelSortRecords(ext extmem.Extent, stride int, key Key, workers int) []extmem.Stats {
	ws, _ := ParallelFunnelSortRecordsCtx(nil, ext, stride, key, workers)
	return ws
}

// ParallelFunnelSortRecordsCtx is ParallelFunnelSortRecords with
// cooperative cancellation between top-level segments; the cancellation
// contract matches ParallelSortRecordsCtx.
func ParallelFunnelSortRecordsCtx(ctx context.Context, ext extmem.Extent, stride int, key Key, workers int) ([]extmem.Stats, error) {
	n := ext.Len()
	if n%int64(stride) != 0 {
		panic("emsort: extent length not a multiple of record stride")
	}
	if err := ctxutil.Err(ctx); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp := ext.Space()
	cfg := sp.Config()
	if n/int64(stride) <= funnelBaseRecords || ext.Base()&int64(cfg.B-1) != 0 {
		FunnelSortRecords(ext, stride, key)
		return nil, nil
	}
	segs := funnelSplit(ext, stride)
	shared := sp.Snapshot(ext)
	tasks := make([]wordTask, len(segs))
	for i, seg := range segs {
		lo := seg.Base() - ext.Base()
		segLen := seg.Len()
		tasks[i] = func(shard *extmem.Space, send func([]extmem.Word) bool) {
			priv := shard.Alloc(segLen)
			shard.ExtentAt(lo, segLen).CopyTo(priv)
			funnelSortRec(priv, stride, key)
			shard.Flush()
			buf := make([]extmem.Word, sortBatchWords)
			for o := int64(0); o < segLen; o += sortBatchWords {
				e := o + sortBatchWords
				if e > segLen {
					e = segLen
				}
				b := buf[:e-o]
				priv.Slice(o, e).Load(b)
				if !send(b) {
					return
				}
				buf = make([]extmem.Word, sortBatchWords)
			}
		}
	}
	var cur int64
	ws, err := runWordTasks(ctx, cfg, shared, tasks, workers, func(_ int, batch []extmem.Word) {
		for _, w := range batch {
			ext.Write(cur, w)
			cur++
		}
	})
	if err != nil {
		return ws, err
	}
	funnelMergeSegs(ext, segs, stride, key)
	return ws, nil
}
