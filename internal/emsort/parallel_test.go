package emsort

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/extmem"
)

// The parallel-sort engine contract, mirroring the trienum engine's
// invariance suite: for Workers ∈ {1, 2, 8} the output bytes are
// identical to the sequential sort's and the aggregated I/O stats
// (coordinator plus summed worker shards) are identical at every worker
// count, on random, presorted, reversed, all-equal, and duplicate-key
// inputs.

// sortInput fills ext (and a reference native slice) with the named
// workload. key returns the (possibly non-injective) sort key to use.
func sortInput(ext extmem.Extent, shape string, seed int64) Key {
	n := ext.Len()
	rng := rand.New(rand.NewSource(seed))
	key := Identity
	for i := int64(0); i < n; i++ {
		var w uint64
		switch shape {
		case "random":
			w = rng.Uint64()
		case "presorted":
			w = uint64(i)
		case "reversed":
			w = uint64(n - i)
		case "allequal":
			w = 42
		case "fewkeys":
			// Non-injective key with heavy cross-run ties: the word-level
			// tie-break contract must hold in the merged output.
			w = rng.Uint64()
			key = func(w extmem.Word) uint64 { return w >> 58 }
		default:
			panic("unknown shape " + shape)
		}
		ext.Write(i, w)
	}
	return key
}

var sortShapes = []string{"random", "presorted", "reversed", "allequal", "fewkeys"}

type parallelSorter struct {
	name string
	seq  func(extmem.Extent, int, Key)
	par  func(extmem.Extent, int, Key, int) []extmem.Stats
}

var parallelSorters = []parallelSorter{
	{"multiway", SortRecords, ParallelSortRecords},
	{"funnel", FunnelSortRecords, ParallelFunnelSortRecords},
}

// parallelSortRun executes one measured parallel sort on a fresh space
// and returns the extent contents and the aggregated stats.
func parallelSortRun(cfg extmem.Config, n int64, shape string, s parallelSorter, workers int) ([]extmem.Word, extmem.Stats) {
	sp := extmem.NewSpace(cfg)
	ext := sp.Alloc(n)
	key := sortInput(ext, shape, n+7)
	sp.DropCache()
	sp.ResetStats()
	ws := s.par(ext, 1, key, workers)
	sp.Flush()
	total := sp.Stats()
	for _, w := range ws {
		total.Add(w)
	}
	out := make([]extmem.Word, n)
	ext.Load(out)
	return out, total
}

func TestParallelSortMatchesSequentialBytes(t *testing.T) {
	cfg := extmem.Config{M: 1 << 12, B: 1 << 6}
	n := int64(20000)
	for _, s := range parallelSorters {
		for _, shape := range sortShapes {
			t.Run(s.name+"/"+shape, func(t *testing.T) {
				ref := extmem.NewSpace(cfg)
				refExt := ref.Alloc(n)
				key := sortInput(refExt, shape, n+7)
				s.seq(refExt, 1, key)
				want := make([]extmem.Word, n)
				refExt.Load(want)
				for _, workers := range []int{1, 2, 8} {
					got, _ := parallelSortRun(cfg, n, shape, s, workers)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d: word %d = %#x, sequential has %#x", workers, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

func TestParallelSortStatsInvariantAcrossWorkerCounts(t *testing.T) {
	cfg := extmem.Config{M: 1 << 12, B: 1 << 6}
	n := int64(20000)
	for _, s := range parallelSorters {
		for _, shape := range sortShapes {
			t.Run(s.name+"/"+shape, func(t *testing.T) {
				_, base := parallelSortRun(cfg, n, shape, s, 1)
				if base.IOs() == 0 {
					t.Fatal("no I/Os measured on an out-of-core sort")
				}
				for _, workers := range []int{2, 8} {
					_, got := parallelSortRun(cfg, n, shape, s, workers)
					if got != base {
						t.Errorf("workers=%d: aggregated stats %+v differ from workers=1 %+v", workers, got, base)
					}
				}
			})
		}
	}
}

// TestParallelSortRecordsStride: byte-identity must survive stride-2
// records with heavily duplicated first words, where only the stable
// (key, word, run) merge order reproduces the sequential payload order.
func TestParallelSortRecordsStride(t *testing.T) {
	cfg := extmem.Config{M: 1 << 12, B: 1 << 6}
	nRec := int64(9000)
	build := func(sp *extmem.Space) extmem.Extent {
		ext := sp.Alloc(2 * nRec)
		rng := rand.New(rand.NewSource(31))
		for i := int64(0); i < nRec; i++ {
			ext.Write(2*i, uint64(rng.Intn(40))) // ~225 records per key word
			ext.Write(2*i+1, uint64(i))          // distinct payload
		}
		return ext
	}
	ref := extmem.NewSpace(cfg)
	refExt := build(ref)
	SortRecords(refExt, 2, Identity)
	want := make([]extmem.Word, 2*nRec)
	refExt.Load(want)
	for _, workers := range []int{1, 2, 8} {
		sp := extmem.NewSpace(cfg)
		ext := build(sp)
		ParallelSortRecords(ext, 2, Identity, workers)
		got := make([]extmem.Word, 2*nRec)
		ext.Load(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: word %d = %d, sequential has %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelSortFallbacks drives the sequential-fallback predicates —
// single-run inputs, unaligned extents, and geometries whose sample index
// would overrun the internal-memory budget — which must stay correct (and
// identical) at every worker count.
func TestParallelSortFallbacks(t *testing.T) {
	cases := []struct {
		name string
		cfg  extmem.Config
		n    int64
		off  int64 // slice offset to force misalignment
	}{
		{"singlerun", extmem.Config{M: 1 << 12, B: 1 << 6}, 1000, 0},
		{"unaligned", extmem.Config{M: 1 << 12, B: 1 << 6}, 20000, 1},
		{"multipass", extmem.Config{M: 1 << 8, B: 1 << 4}, 4000, 0},
		{"tiny", extmem.Config{M: 1 << 12, B: 1 << 6}, 1, 0},
	}
	for _, s := range parallelSorters {
		for _, tc := range cases {
			t.Run(s.name+"/"+tc.name, func(t *testing.T) {
				for _, workers := range []int{1, 4} {
					sp := extmem.NewSpace(tc.cfg)
					ext := sp.Alloc(tc.n+tc.off).Slice(tc.off, tc.n+tc.off)
					key := sortInput(ext, "random", tc.n)
					s.par(ext, 1, key, workers)
					if !IsSorted(ext, 1, key) {
						t.Fatalf("workers=%d: not sorted", workers)
					}
				}
			})
		}
	}
}

// TestSortersWordTieOrder pins the tie-break contract every sorter in the
// package shares: equal keys are ordered by the full first word. (The
// color-pair bucketing in trienum depends on it to get buckets in
// canonical edge order regardless of the input's prior order.)
func TestSortersWordTieOrder(t *testing.T) {
	fns := []struct {
		name string
		fn   func(extmem.Extent, int, Key)
	}{
		{"multiway", SortRecords},
		{"oblivious", ObliviousSortRecords},
		{"funnel", FunnelSortRecords},
		{"parallel-multiway", func(ext extmem.Extent, stride int, key Key) { ParallelSortRecords(ext, stride, key, 4) }},
		{"parallel-funnel", func(ext extmem.Extent, stride int, key Key) { ParallelFunnelSortRecords(ext, stride, key, 4) }},
	}
	for _, s := range fns {
		t.Run(s.name, func(t *testing.T) {
			sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
			n := int64(1200)
			ext := sp.Alloc(n)
			rng := rand.New(rand.NewSource(1))
			for i := int64(0); i < n; i++ {
				ext.Write(i, rng.Uint64())
			}
			key := func(w extmem.Word) uint64 { return w >> 60 } // 16 buckets, heavy ties
			s.fn(ext, 1, key)
			for i := int64(1); i < n; i++ {
				a, b := ext.Read(i-1), ext.Read(i)
				if key(a) == key(b) && a > b {
					t.Fatalf("word-tie order violated at %d: %#x > %#x (key %d)", i, a, b, key(a))
				}
				if key(a) > key(b) {
					t.Fatalf("not key-sorted at %d", i)
				}
			}
		})
	}
}

// TestParallelSortMultipass pins the multi-pass merge regime: a geometry
// whose formation runs exceed the merge fan-in, so ParallelSortRecords
// must run the sequential intermediate passes on the coordinator and fan
// out only the top-level pass. The output bytes must equal SortRecords'
// exactly and the aggregated stats must be invariant across worker
// counts. With M=512, B=64: fan-in 6, run words 384, so n=8192 forms 22
// runs — one intermediate pass collapsing them to 4 top-level runs.
func TestParallelSortMultipass(t *testing.T) {
	cfg := extmem.Config{M: 512, B: 64, AllowShortCache: true}
	n := int64(8192)
	plan := planSort(cfg, cfg.M, 1)
	if numRuns := int((n + plan.runWords - 1) / plan.runWords); numRuns <= plan.fanIn {
		t.Fatalf("geometry does not force multi-pass: %d runs <= fan-in %d", numRuns, plan.fanIn)
	}
	{
		// The parallel engine must actually take the fanned-out path:
		// every sequential fallback returns no worker stats.
		sp := extmem.NewSpace(cfg)
		ext := sp.Alloc(n)
		key := sortInput(ext, "random", n+7)
		if ws := ParallelSortRecords(ext, 1, key, 2); len(ws) == 0 {
			t.Fatal("multi-pass input fell back to the sequential engine")
		}
	}
	s := parallelSorters[0] // multiway
	for _, shape := range sortShapes {
		t.Run(shape, func(t *testing.T) {
			ref := extmem.NewSpace(cfg)
			refExt := ref.Alloc(n)
			key := sortInput(refExt, shape, n+7)
			SortRecords(refExt, 1, key)
			want := make([]extmem.Word, n)
			refExt.Load(want)

			var base extmem.Stats
			for i, workers := range []int{1, 2, 8} {
				got, stats := parallelSortRun(cfg, n, shape, s, workers)
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("workers=%d: word %d = %#x, sequential has %#x", workers, j, got[j], want[j])
					}
				}
				if i == 0 {
					base = stats
					if base.IOs() == 0 {
						t.Fatal("no I/Os measured on a multi-pass sort")
					}
				} else if stats != base {
					t.Errorf("workers=%d: aggregated stats %+v differ from workers=1 %+v", workers, stats, base)
				}
			}
		})
	}
}

// TestParallelSortMultipassStride: multi-pass byte-identity with stride-2
// records and heavy key ties — the stable (key, word, run) merge order
// must survive the intermediate passes' run renumbering.
func TestParallelSortMultipassStride(t *testing.T) {
	cfg := extmem.Config{M: 512, B: 64, AllowShortCache: true}
	nRec := int64(4096)
	build := func(sp *extmem.Space) extmem.Extent {
		ext := sp.Alloc(2 * nRec)
		rng := rand.New(rand.NewSource(97))
		for i := int64(0); i < nRec; i++ {
			ext.Write(2*i, uint64(rng.Intn(24))) // ~170 records per key word
			ext.Write(2*i+1, uint64(i))          // distinct payload
		}
		return ext
	}
	ref := extmem.NewSpace(cfg)
	refExt := build(ref)
	SortRecords(refExt, 2, Identity)
	want := make([]extmem.Word, 2*nRec)
	refExt.Load(want)
	for _, workers := range []int{1, 2, 8} {
		sp := extmem.NewSpace(cfg)
		ext := build(sp)
		if ws := ParallelSortRecords(ext, 2, Identity, workers); len(ws) == 0 {
			t.Fatal("multi-pass stride-2 input fell back to the sequential engine")
		}
		got := make([]extmem.Word, 2*nRec)
		ext.Load(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: word %d = %d, sequential has %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelSortDefaultWorkers: workers <= 0 resolves to one worker per
// CPU and still sorts correctly.
func TestParallelSortDefaultWorkers(t *testing.T) {
	for _, s := range parallelSorters {
		sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
		ext := sp.Alloc(20000)
		key := sortInput(ext, "random", 5)
		s.par(ext, 1, key, 0)
		if !IsSorted(ext, 1, key) {
			t.Fatalf("%s: not sorted with default workers", s.name)
		}
	}
}

// TestParallelSortConcurrentSpaces: distinct coordinator Spaces may sort
// concurrently (the engine must not share mutable state across calls);
// exercised under -race in CI.
func TestParallelSortConcurrentSpaces(t *testing.T) {
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
			ext := sp.Alloc(20000)
			key := sortInput(ext, "random", int64(g))
			ParallelSortRecords(ext, 1, key, 2)
			if !IsSorted(ext, 1, key) {
				done <- fmt.Errorf("goroutine %d: not sorted", g)
				return
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
