package expt

import (
	"repro/internal/graph"
	"repro/internal/trienum"
)

// EA1HighDegreeAblation: why step 1 exists. On hub-heavy graphs, skipping
// the Lemma 1 pass for vertices of degree > sqrt(E·M) blows up the
// partition potential X_ξ (Lemma 3's proof needs deg <= sqrt(E·M)) and
// with it the I/O cost of step 3; on degree-regular graphs it changes
// nothing. The algorithm stays correct either way — the knob isolates the
// design choice.
func EA1HighDegreeAblation() Table {
	m := Machine{M: 1 << 8, B: 1 << 4}
	t := Table{
		ID:     "EA1",
		Title:  "ablation: step 1 (high-degree vertices via Lemma 1)",
		Claim:  "removing deg > sqrt(E·M) vertices first keeps X_ξ <= E·M on skewed graphs",
		Header: []string{"graph", "E", "Vh", "X with", "X without", "X ratio", "IOs with", "IOs without"},
	}
	workloads := []struct {
		name string
		el   graph.EdgeList
	}{
		{"hubs", hubGraph()},
		{"powerlaw", graph.PowerLaw(3000, 9000, 1.9, 7)},
		{"gnm", graph.GNM(2250, 9000, 8)},
	}
	for _, w := range workloads {
		with := measureOpt(w.el, m, trienum.Options{})
		without := measureOpt(w.el, m, trienum.Options{DisableHighDegree: true})
		ratio := "-"
		if with.Info.X > 0 {
			ratio = f2(float64(without.Info.X) / float64(with.Info.X))
		}
		t.Rows = append(t.Rows, []string{w.name, d64(with.Edges), di(with.Info.HighDegVertices),
			d(with.Info.X), d(without.Info.X), ratio, d(with.IOs), d(without.IOs)})
	}
	t.Notes = append(t.Notes, "both variants emit identical triangle sets (verified in tests); only cost differs")
	return t
}

func measureOpt(el graph.EdgeList, m Machine, opt trienum.Options) Measurement {
	sp := m.space()
	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()
	var n uint64
	info := trienum.CacheAwareWithOptions(sp, g, 5, opt, graph.Counter(&n))
	sp.Flush()
	return Measurement{IOs: sp.Stats().IOs(), Triangles: n, Info: info, Edges: g.Edges.Len()}
}

func hubGraph() graph.EdgeList {
	el := graph.GNM(3000, 4000, 3)
	for v := uint32(0); v < 2500; v++ {
		el.Add(2998, v)
		el.Add(2999, v)
	}
	return el
}
