package expt

import (
	"fmt"
	"math"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/subgraph"
)

// E1CacheAwareScaling: Theorem 4. I/Os of the cache-aware randomized
// algorithm across an edge-count sweep, normalized by E^1.5/(sqrt(M)·B);
// the normalized column must be flat (a constant), on both the
// triangle-dense lower-bound instance (cliques) and sparse random graphs.
func E1CacheAwareScaling() Table {
	m := Machine{M: 1 << 11, B: 1 << 5}
	t := Table{
		ID:     "E1",
		Title:  "cache-aware randomized scaling (Theorem 4)",
		Claim:  "I/Os = O(E^1.5/(sqrt(M)·B)) in expectation",
		Header: []string{"graph", "E", "triangles", "IOs", "IOs/bound"},
	}
	run := Runner("cacheaware")
	for _, e := range []int64{2048, 4096, 8192, 16384, 32768} {
		el := cliqueWithEdges(e)
		ms := Measure(el, m, run, 1)
		t.Rows = append(t.Rows, []string{"clique", d64(ms.Edges), d(ms.Triangles), d(ms.IOs), f3(float64(ms.IOs) / OptBound(ms.Edges, m))})
	}
	for _, e := range []int{4096, 8192, 16384, 32768, 65536} {
		el := graph.GNM(e/4, e, uint64(e))
		ms := Measure(el, m, run, 1)
		t.Rows = append(t.Rows, []string{"gnm", d64(ms.Edges), d(ms.Triangles), d(ms.IOs), f3(float64(ms.IOs) / OptBound(ms.Edges, m))})
	}
	t.Notes = append(t.Notes, "flat IOs/bound across a 16x range of E confirms the E^1.5 exponent")
	return t
}

// E2ObliviousScaling: Theorem 1. Same normalization for the
// cache-oblivious algorithm, plus a machine sweep at fixed E: the same
// algorithm execution pattern (no knowledge of M, B) must track the bound
// as the cache it runs on changes.
func E2ObliviousScaling() Table {
	t := Table{
		ID:     "E2",
		Title:  "cache-oblivious randomized scaling (Theorem 1)",
		Claim:  "I/Os = O(E^1.5/(sqrt(M)·B)) expected, without using M or B",
		Header: []string{"graph", "E", "M", "B", "IOs", "IOs/bound"},
	}
	run := Runner("oblivious")
	m0 := Machine{M: 1 << 11, B: 1 << 5}
	for _, e := range []int64{1024, 2048, 4096, 8192, 16384} {
		el := cliqueWithEdges(e)
		ms := Measure(el, m0, run, 2)
		t.Rows = append(t.Rows, []string{"clique", d64(ms.Edges), di(m0.M), di(m0.B),
			d(ms.IOs), f3(float64(ms.IOs) / OptBound(ms.Edges, m0))})
	}
	// Machine sweep at fixed input: the algorithm is one fixed program.
	el := graph.GNM(4096, 16384, 7)
	for _, m := range []Machine{{1 << 9, 1 << 4}, {1 << 11, 1 << 5}, {1 << 13, 1 << 6}, {1 << 15, 1 << 7}} {
		ms := Measure(el, m, run, 2)
		t.Rows = append(t.Rows, []string{"gnm", d64(ms.Edges), di(m.M), di(m.B),
			d(ms.IOs), f3(float64(ms.IOs) / OptBound(ms.Edges, m))})
	}
	t.Notes = append(t.Notes, "rows with the same graph and varying (M,B) run the identical oblivious execution against different caches")
	return t
}

// E3DeterministicScaling: Theorem 2. Scaling of the derandomized
// algorithm plus its certified invariant: the realized X_ξ of the greedy
// coloring against the e·E·M ceiling the proof needs.
func E3DeterministicScaling() Table {
	m := Machine{M: 1 << 9, B: 1 << 4}
	t := Table{
		ID:     "E3",
		Title:  "deterministic cache-aware scaling (Theorem 2)",
		Claim:  "worst-case I/Os = O(E^1.5/(sqrt(M)·B)); greedy coloring keeps X_ξ < e·E·M",
		Header: []string{"graph", "E", "colors", "X", "X/(E·M)", "IOs", "IOs/bound"},
	}
	run := Runner("deterministic")
	for _, e := range []int{2048, 4096, 8192, 16384} {
		el := graph.GNM(e/4, e, uint64(e)*3)
		ms := Measure(el, m, run, 0)
		t.Rows = append(t.Rows, []string{"gnm", d64(ms.Edges), di(ms.Info.Colors), d(ms.Info.X),
			f3(float64(ms.Info.X) / (float64(ms.Edges) * float64(m.M))),
			d(ms.IOs), f3(float64(ms.IOs) / OptBound(ms.Edges, m))})
	}
	for _, e := range []int64{2048, 8192} {
		el := cliqueWithEdges(e)
		ms := Measure(el, m, run, 0)
		t.Rows = append(t.Rows, []string{"clique", d64(ms.Edges), di(ms.Info.Colors), d(ms.Info.X),
			f3(float64(ms.Info.X) / (float64(ms.Edges) * float64(m.M))),
			d(ms.IOs), f3(float64(ms.IOs) / OptBound(ms.Edges, m))})
	}
	t.Notes = append(t.Notes, "X/(E·M) < e = 2.718 is invariant (4) at the final level; verified at run time")
	return t
}

// E4OptimalityGap: Theorem 3. On cliques (t = Θ(E^1.5), the worst case),
// the ratio of measured I/Os to the lower bound t/(sqrt(M)·B) + t^(2/3)/B
// must be a bounded constant for the paper's algorithms — and visibly
// diverging for the superlinear baselines.
func E4OptimalityGap() Table {
	m := Machine{M: 1 << 10, B: 1 << 5}
	t := Table{
		ID:     "E4",
		Title:  "optimality against the Theorem 3 lower bound",
		Claim:  "enumerating t triangles needs Ω(t/(sqrt(M)·B) + t^(2/3)/B) I/Os; the paper's algorithms are within O(1) of it",
		Header: []string{"n", "E", "t", "LB", "cacheaware", "oblivious", "deterministic", "hutaochung"},
	}
	for _, n := range []int{64, 91, 128, 181} {
		el := graph.Clique(n)
		row := []string{di(n)}
		var lb float64
		first := true
		for _, name := range []string{"cacheaware", "oblivious", "deterministic", "hutaochung"} {
			ms := Measure(el, m, Runner(name), 4)
			if first {
				lb = LowerBound(ms.Triangles, m)
				row = append(row, d64(ms.Edges), d(ms.Triangles), e0(lb))
				first = false
			}
			row = append(row, f2(float64(ms.IOs)/lb))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"columns 5-8 are IOs/LB; flat for the paper's three algorithms, growing like sqrt(E/M) for Hu et al.")
	return t
}

// E5ImprovementFactor: the headline claim — the new bound improves Hu et
// al. by min(sqrt(E/M), sqrt(M)). Measured ratio of Hu et al. I/Os to
// cache-aware I/Os across an E/M sweep, against the predicted factor.
func E5ImprovementFactor() Table {
	m := Machine{M: 1 << 10, B: 1 << 5}
	t := Table{
		ID:     "E5",
		Title:  "improvement factor over Hu–Tao–Chung (SIGMOD 2013)",
		Claim:  "I/O improvement = Θ(min(sqrt(E/M), sqrt(M))) — significant whenever E >> M",
		Header: []string{"E", "E/M", "predicted", "hutaochung", "cacheaware", "measured", "measured/predicted"},
	}
	for _, e := range []int64{4096, 8192, 16384, 32768, 65536} {
		el := cliqueWithEdges(e)
		hu := Measure(el, m, Runner("hutaochung"), 5)
		ca := Measure(el, m, Runner("cacheaware"), 5)
		pred := math.Min(math.Sqrt(float64(hu.Edges)/float64(m.M)), math.Sqrt(float64(m.M)))
		meas := float64(hu.IOs) / float64(ca.IOs)
		t.Rows = append(t.Rows, []string{d64(hu.Edges), f1(float64(hu.Edges) / float64(m.M)),
			f2(pred), d(hu.IOs), d(ca.IOs), f2(meas), f2(meas / pred)})
	}
	t.Notes = append(t.Notes, "measured/predicted settling to a constant confirms the min(sqrt(E/M), sqrt(M)) factor")
	return t
}

// E6ColoringBalance: Lemma 3. Sample mean of X_ξ over random 4-wise
// independent colorings with c = sqrt(E/M), against the E·M ceiling, on
// graph classes with very different degree profiles.
func E6ColoringBalance() Table {
	m := Machine{M: 1 << 9, B: 1 << 4}
	t := Table{
		ID:     "E6",
		Title:  "random coloring balance (Lemma 3)",
		Claim:  "E[X_ξ] <= E·M for 4-wise independent ξ with c = sqrt(E/M) colors",
		Header: []string{"graph", "E", "c", "mean X", "max X", "mean X/(E·M)"},
	}
	workloads := []struct {
		name string
		el   graph.EdgeList
	}{
		{"gnm", graph.GNM(4096, 16384, 61)},
		{"powerlaw", graph.PowerLaw(6000, 16384, 2.1, 62)},
		{"clique", cliqueWithEdges(16384)},
		{"bipartite", graph.BipartiteRandom(2048, 2048, 16384, 63)},
	}
	const samples = 20
	for _, w := range workloads {
		sp := m.space()
		g := graph.CanonicalizeList(sp, w.el)
		// Apply the algorithm's own preprocessing: remove high-degree
		// vertices first, as Lemma 3's bound assumes deg <= sqrt(E·M).
		e := g.Edges.Len()
		c := 1
		for int64(c)*int64(c) < e/int64(m.M) {
			c++
		}
		var sum, max float64
		for s := 0; s < samples; s++ {
			x := colorPotential(sp, g, c, uint64(s)*77+1, m)
			sum += x
			if x > max {
				max = x
			}
		}
		mean := sum / samples
		t.Rows = append(t.Rows, []string{w.name, d64(e), di(c), e0(mean), e0(max),
			f3(mean / (float64(e) * float64(m.M)))})
	}
	t.Notes = append(t.Notes, "mean X/(E·M) <= 1 on every class (high-degree vertices removed per step 1)")
	return t
}

// colorPotential computes X_ξ for one random coloring after removing
// high-degree vertices, mirroring the algorithm's step 1 + Lemma 3 setup.
func colorPotential(sp *extmem.Space, g graph.Canonical, c int, seed uint64, m Machine) float64 {
	th := math.Sqrt(float64(g.Edges.Len()) * float64(m.M))
	col := hashing.NewColoring(hashing.NewRand(seed), c)
	counts := map[uint64]int64{}
	n := g.Edges.Len()
	for i := int64(0); i < n; i++ {
		e := g.Edges.Read(i)
		u, v := graph.U(e), graph.V(e)
		if float64(g.Degrees.Read(int64(u))) > th || float64(g.Degrees.Read(int64(v))) > th {
			continue
		}
		key := uint64(col.Color(u))*uint64(c) + uint64(col.Color(v))
		counts[key]++
	}
	var x float64
	for _, k := range counts {
		x += float64(k) * float64(k-1) / 2
	}
	return x
}

// E7MemorySweep: fixed input, varying M. Shows each algorithm's memory
// sensitivity and the crossover the introduction mentions: nested-loop
// joins are fine when the edge set almost fits in memory, and hopeless
// when it does not.
func E7MemorySweep() Table {
	t := Table{
		ID:     "E7",
		Title:  "memory sensitivity at fixed E (introduction discussion)",
		Claim:  "pipelined nested loop is adequate only when E ~ M; the gap to the optimal algorithms widens as E/M grows",
		Header: []string{"M", "E/M", "cacheaware", "oblivious", "hutaochung", "nestedloop", "sortmerge", "edgeiterator"},
	}
	el := graph.GNM(4096, 16384, 71)
	for _, mWords := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		m := Machine{M: mWords, B: 1 << 4}
		row := []string{di(mWords), f1(16384.0 / float64(mWords))}
		for _, name := range []string{"cacheaware", "oblivious", "hutaochung", "nestedloop", "sortmerge", "edgeiterator"} {
			ms := Measure(el, m, Runner(name), 7)
			row = append(row, d(ms.IOs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E8Comparison: the state-of-the-art table of Section 1.1, measured: all
// algorithms on all workload classes.
func E8Comparison() Table {
	m := Machine{M: 1 << 10, B: 1 << 5}
	t := Table{
		ID:     "E8",
		Title:  "end-to-end comparison across workloads (Section 1.1)",
		Claim:  "the paper's algorithms dominate every prior bound across graph classes",
		Header: []string{"graph", "E", "t", "cacheaware", "oblivious", "determ", "hutaochung", "sortmerge", "edgeiter", "nestedloop"},
	}
	workloads := []struct {
		name string
		el   graph.EdgeList
	}{
		{"clique", cliqueWithEdges(8192)},
		{"gnm", graph.GNM(2048, 8192, 81)},
		{"powerlaw", graph.PowerLaw(3000, 8192, 2.1, 82)},
		{"sells", graph.Sells(400, 120, 120, 6, 0.15, 83)},
		{"bipartite", graph.BipartiteRandom(1024, 1024, 8192, 84)},
	}
	for _, w := range workloads {
		row := []string{w.name}
		first := true
		for _, name := range []string{"cacheaware", "oblivious", "deterministic", "hutaochung", "sortmerge", "edgeiterator", "nestedloop"} {
			ms := Measure(w.el, m, Runner(name), 8)
			if first {
				row = append(row, d64(ms.Edges), d(ms.Triangles))
				first = false
			}
			row = append(row, d(ms.IOs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E9KClique: Section 6 extension. 4-clique enumeration I/Os against the
// predicted O(E²/(M·B)) (the k=4 instance of E^(k/2)/(M^(k/2−1)·B)).
func E9KClique() Table {
	m := Machine{M: 1 << 10, B: 1 << 5}
	t := Table{
		ID:     "E9",
		Title:  "k-clique extension, k=4 (Section 6)",
		Claim:  "O(E^(k/2)/(M^(k/2-1)·B)) expected I/Os; for k=4 that is E²/(M·B)",
		Header: []string{"graph", "E", "4-cliques", "IOs", "IOs/bound", "maxSub/E[k²M]"},
	}
	workloads := []struct {
		name string
		el   graph.EdgeList
	}{
		{"clique", graph.Clique(64)},
		{"clique", graph.Clique(91)},
		{"planted", graph.PlantedClique(2000, 6000, 24, 91)},
		{"gnm", graph.GNM(1024, 8192, 92)},
	}
	for _, w := range workloads {
		sp := m.space()
		g := graph.CanonicalizeList(sp, w.el)
		sp.DropCache()
		sp.ResetStats()
		info, err := subgraph.KClique(nil, sp, g, 4, 9, func([]uint32) {})
		if err != nil {
			panic(err)
		}
		sp.Flush()
		ios := sp.Stats().IOs()
		e := float64(g.Edges.Len())
		bound := e * e / (float64(m.M) * float64(m.B))
		t.Rows = append(t.Rows, []string{w.name, d64(g.Edges.Len()), d(info.Cliques), d(ios),
			f3(float64(ios) / bound),
			f2(float64(info.MaxSubproblem) / (16 * float64(m.M)))})
	}
	return t
}

// E10Sorting: the sort(E) substrate. Optimal cache-aware multiway
// mergesort, optimal cache-oblivious funnelsort, and log2-pass binary
// mergesort, against the sort(n) bound.
func E10Sorting() Table {
	m := Machine{M: 1 << 10, B: 1 << 5}
	t := Table{
		ID:     "E10",
		Title:  "external sorting substrate",
		Claim:  "sort(n) = Θ((n/B)·log_{M/B}(n/B)) I/Os; funnelsort achieves it cache-obliviously",
		Header: []string{"n", "bound", "multiway", "funnel", "binary"},
	}
	for _, n := range []int64{1 << 13, 1 << 15, 1 << 17} {
		row := []string{d64(n)}
		bound := float64(n) / float64(m.B) * math.Log(float64(n)/float64(m.B)) / math.Log(float64(m.M)/float64(m.B))
		row = append(row, e0(bound))
		for _, sorter := range []graph.SortFunc{emsort.SortRecords, emsort.FunnelSortRecords, emsort.ObliviousSortRecords} {
			sp := m.space()
			ext := sp.Alloc(n)
			rng := hashing.NewRand(uint64(n))
			for i := int64(0); i < n; i++ {
				ext.Write(i, rng.Next())
			}
			sp.DropCache()
			sp.ResetStats()
			sorter(ext, 1, emsort.Identity)
			sp.Flush()
			row = append(row, d(sp.Stats().IOs()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// All returns every experiment table, in order.
func All() []Table {
	return []Table{
		E1CacheAwareScaling(),
		E2ObliviousScaling(),
		E3DeterministicScaling(),
		E4OptimalityGap(),
		E5ImprovementFactor(),
		E6ColoringBalance(),
		E7MemorySweep(),
		E8Comparison(),
		E9KClique(),
		E10Sorting(),
		E11RecursionConcentration(),
		E12ListingVsEnumeration(),
		EA1HighDegreeAblation(),
	}
}

// ByID returns one experiment by its id (e.g. "E4").
func ByID(id string) (Table, error) {
	switch id {
	case "E1":
		return E1CacheAwareScaling(), nil
	case "E2":
		return E2ObliviousScaling(), nil
	case "E3":
		return E3DeterministicScaling(), nil
	case "E4":
		return E4OptimalityGap(), nil
	case "E5":
		return E5ImprovementFactor(), nil
	case "E6":
		return E6ColoringBalance(), nil
	case "E7":
		return E7MemorySweep(), nil
	case "E8":
		return E8Comparison(), nil
	case "E9":
		return E9KClique(), nil
	case "E10":
		return E10Sorting(), nil
	case "E11":
		return E11RecursionConcentration(), nil
	case "E12":
		return E12ListingVsEnumeration(), nil
	case "EA1":
		return EA1HighDegreeAblation(), nil
	}
	return Table{}, fmt.Errorf("expt: unknown experiment %q", id)
}
