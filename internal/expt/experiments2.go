package expt

import (
	"math"

	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

// E11RecursionConcentration: Lemmas 4 and 5. The cache-oblivious
// recursion's measured subproblem population per level against the
// predicted expectations: mean subproblem size E/4^i and total edge
// copies E·2^i (each edge survives into about two of the eight children).
func E11RecursionConcentration() Table {
	t := Table{
		ID:     "E11",
		Title:  "recursion concentration (Lemmas 4 and 5)",
		Claim:  "E[size of a level-i subproblem] = E/4^i; total level-i edges ~ E·2^i; sizes concentrate (Chebyshev)",
		Header: []string{"level", "subproblems", "total edges", "total/(E·2^i)", "mean size", "mean/(E/4^i)", "max size"},
	}
	m := Machine{M: 1 << 11, B: 1 << 5}
	el := graph.GNM(4096, 16384, 41)
	ms := Measure(el, m, Runner("oblivious"), 11)
	e := float64(ms.Edges)
	for _, lv := range ms.Info.Recursion {
		if lv.Subproblems == 0 {
			continue
		}
		pred2 := e * math.Pow(2, float64(lv.Level))
		pred4 := e / math.Pow(4, float64(lv.Level))
		mean := float64(lv.TotalEdges) / float64(lv.Subproblems)
		t.Rows = append(t.Rows, []string{
			di(lv.Level), di(lv.Subproblems), d64(lv.TotalEdges),
			f3(float64(lv.TotalEdges) / pred2),
			f1(mean), f2(mean / pred4), d64(lv.MaxEdges),
		})
	}
	t.Notes = append(t.Notes,
		"total/(E·2^i) converges to a constant: an edge is compatible with ~2 of 8 children once colors separate (up to 6 near the root, where the color triple is degenerate)",
		"mean/(E/4^i) flat while subproblems remain above the base-case cutoff confirms Lemma 4's per-subproblem expectation; the bounded max/mean gap reflects Lemma 5's concentration")
	return t
}

// E12ListingVsEnumeration: the enumeration/listing distinction of
// Section 1. Materializing the output adds Θ(t/B) I/Os, which dominates
// on triangle-dense inputs (t = Θ(E^1.5)) and is negligible on sparse
// ones — precisely why the paper separates the two problems.
func E12ListingVsEnumeration() Table {
	m := Machine{M: 1 << 11, B: 1 << 5}
	t := Table{
		ID:     "E12",
		Title:  "enumeration vs listing (Section 1)",
		Claim:  "listing costs an extra Theta(t/B) I/Os over enumeration; enumeration avoids materializing the output",
		Header: []string{"graph", "E", "t", "2t/B", "enumIOs", "listIOs", "extra/(2t/B)"},
	}
	workloads := []struct {
		name string
		el   graph.EdgeList
	}{
		{"clique", cliqueWithEdges(8192)},
		{"planted", graph.PlantedClique(2000, 7000, 40, 121)},
		{"gnm", graph.GNM(2048, 8192, 122)},
	}
	for _, w := range workloads {
		sp := m.space()
		g := graph.CanonicalizeList(sp, w.el)

		sp.DropCache()
		sp.ResetStats()
		var n uint64
		trienum.CacheAware(sp, g, 12, graph.Counter(&n))
		sp.Flush()
		enumIOs := sp.Stats().IOs()

		// ListTriangles runs the enumeration twice (count + fill), so the
		// materialization overhead is listIOs − 2·enumIOs, predicted to be
		// the sequential output traffic ~ 2·t·stride/B (write + flush).
		sp.DropCache()
		sp.ResetStats()
		list, _ := trienum.ListTriangles(sp, g, 12,
			func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) trienum.Info {
				return trienum.CacheAware(sp, g, seed, emit)
			})
		sp.Flush()
		listIOs := sp.Stats().IOs()

		outWords := float64(list.Len())
		pred := 2 * outWords / float64(m.B)
		extra := float64(listIOs) - 2*float64(enumIOs)
		t.Rows = append(t.Rows, []string{w.name, d64(g.Edges.Len()), d(n),
			e0(pred), d(enumIOs), d(listIOs), f2(extra / pred)})
	}
	t.Notes = append(t.Notes,
		"on the clique t/B dominates the enumeration cost itself; on sparse gnm it is negligible — the reason Section 1 separates the problems")
	return t
}
