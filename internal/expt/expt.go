// Package expt is the experiment harness reproducing the paper's
// evaluation. PODS 2014 is a theory paper: its "results" are Theorems 1–4
// and Lemma 3, not empirical tables, so each experiment here regenerates
// the measured quantity a theorem bounds and reports it against the
// predicted shape (constant ratios, improvement factors, crossovers).
// EXPERIMENTS.md records the outputs; cmd/ioexp and bench_test.go rerun
// them.
package expt

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/baseline"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		fmt.Fprintf(w, "   %s\n", sb.String())
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Machine is a simulated machine description.
type Machine struct{ M, B int }

func (m Machine) space() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: m.M, B: m.B, AllowShortCache: m.M < m.B*m.B})
}

// Run names an algorithm runner over canonical graphs.
type Run struct {
	Name string
	Fn   func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) trienum.Info
}

// Runners returns every algorithm under measurement.
func Runners() []Run {
	return []Run{
		{"cacheaware", func(sp *extmem.Space, g graph.Canonical, seed uint64, e graph.Emit) trienum.Info {
			return trienum.CacheAware(sp, g, seed, e)
		}},
		{"oblivious", func(sp *extmem.Space, g graph.Canonical, seed uint64, e graph.Emit) trienum.Info {
			return trienum.Oblivious(sp, g, seed, e)
		}},
		{"deterministic", func(sp *extmem.Space, g graph.Canonical, seed uint64, e graph.Emit) trienum.Info {
			info, err := trienum.Deterministic(sp, g, 0, e)
			if err != nil {
				panic(err)
			}
			return info
		}},
		{"hutaochung", func(sp *extmem.Space, g graph.Canonical, _ uint64, e graph.Emit) trienum.Info {
			return trienum.HuTaoChung(sp, g, e)
		}},
		{"sortmerge", func(sp *extmem.Space, g graph.Canonical, _ uint64, e graph.Emit) trienum.Info {
			return trienum.Dementiev(sp, g, e)
		}},
		{"edgeiterator", func(sp *extmem.Space, g graph.Canonical, _ uint64, e graph.Emit) trienum.Info {
			return baseline.EdgeIterator(sp, g, e)
		}},
		{"nestedloop", func(sp *extmem.Space, g graph.Canonical, _ uint64, e graph.Emit) trienum.Info {
			return baseline.BlockNestedLoop(sp, g, e)
		}},
	}
}

// Runner returns the named runner.
func Runner(name string) Run {
	for _, r := range Runners() {
		if r.Name == name {
			return r
		}
	}
	panic("expt: unknown runner " + name)
}

// Measurement is one algorithm execution's observables.
type Measurement struct {
	IOs       uint64
	Triangles uint64
	Info      trienum.Info
	Edges     int64
}

// Measure canonicalizes el on a fresh machine, drops the cache, runs r
// cold, and returns the measurement (canonicalization excluded, matching
// the paper's assumption of canonical input).
func Measure(el graph.EdgeList, m Machine, r Run, seed uint64) Measurement {
	sp := m.space()
	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()
	var n uint64
	info := r.Fn(sp, g, seed, graph.Counter(&n))
	sp.Flush()
	return Measurement{IOs: sp.Stats().IOs(), Triangles: n, Info: info, Edges: g.Edges.Len()}
}

// theoretical bound helpers

// OptBound is the paper's upper-bound form E^1.5/(sqrt(M)·B).
func OptBound(e int64, m Machine) float64 {
	return math.Pow(float64(e), 1.5) / (math.Sqrt(float64(m.M)) * float64(m.B))
}

// LowerBound is Theorem 3's Ω(t/(sqrt(M)·B) + t^(2/3)/B).
func LowerBound(t uint64, m Machine) float64 {
	tf := float64(t)
	return tf/(math.Sqrt(float64(m.M))*float64(m.B)) + math.Pow(tf, 2.0/3)/float64(m.B)
}

// HuBound is O(E²/(M·B)), the strongest prior upper bound.
func HuBound(e int64, m Machine) float64 {
	ef := float64(e)
	return ef * ef / (float64(m.M) * float64(m.B))
}

// cliqueWithEdges returns K_n with roughly e edges.
func cliqueWithEdges(e int64) graph.EdgeList {
	n := int(math.Round((1 + math.Sqrt(1+8*float64(e))) / 2))
	return graph.Clique(n)
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func d(x uint64) string   { return fmt.Sprintf("%d", x) }
func di(x int) string     { return fmt.Sprintf("%d", x) }
func d64(x int64) string  { return fmt.Sprintf("%d", x) }
func e0(x float64) string { return fmt.Sprintf("%.0f", x) }
