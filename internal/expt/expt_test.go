package expt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:     "T0",
		Title:  "demo",
		Claim:  "x",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== T0: demo", "claim: x", "bbbb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestMeasureCountsColdIOs(t *testing.T) {
	el := graph.Clique(40)
	m := Machine{M: 1 << 10, B: 1 << 5}
	ms := Measure(el, m, Runner("cacheaware"), 1)
	if ms.Triangles != 40*39*38/6 {
		t.Errorf("triangles %d", ms.Triangles)
	}
	if ms.IOs == 0 {
		t.Error("no I/Os measured for out-of-memory input")
	}
	if ms.Edges != 780 {
		t.Errorf("edges %d", ms.Edges)
	}
}

func TestRunnersAllAgree(t *testing.T) {
	el := graph.PlantedClique(60, 150, 8, 2)
	m := Machine{M: 1 << 10, B: 1 << 5}
	want := graph.NewOracle(el).Count()
	for _, r := range Runners() {
		ms := Measure(el, m, r, 3)
		if ms.Triangles != want {
			t.Errorf("%s: %d triangles, want %d", r.Name, ms.Triangles, want)
		}
	}
}

func TestRunnerUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown runner should panic")
		}
	}()
	Runner("bogus")
}

func TestBoundHelpers(t *testing.T) {
	m := Machine{M: 1024, B: 32}
	if OptBound(1024, m) <= 0 || LowerBound(1000, m) <= 0 || HuBound(1024, m) <= 0 {
		t.Error("bounds must be positive")
	}
	// E^1.5 monotone.
	if OptBound(2048, m) <= OptBound(1024, m) {
		t.Error("OptBound not monotone")
	}
	// cliqueWithEdges inverts E = n(n-1)/2 approximately.
	el := cliqueWithEdges(4095)
	if n := len(el.Edges); n < 3800 || n > 4400 {
		t.Errorf("cliqueWithEdges(4095) gave %d edges", n)
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestSmallExperimentsRun exercises the fast experiment drivers end to
// end; the heavyweight sweeps are covered by cmd/ioexp and benchmarks.
func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	tb := E10Sorting()
	if len(tb.Rows) == 0 {
		t.Error("E10 empty")
	}
	tb = E6ColoringBalance()
	if len(tb.Rows) != 4 {
		t.Errorf("E6 rows %d", len(tb.Rows))
	}
	// Lemma 3's conclusion should hold in the rendered numbers: the mean
	// normalized potential is at most 1 for every class.
	for _, row := range tb.Rows {
		var norm float64
		if _, err := fmt.Sscan(row[len(row)-1], &norm); err != nil {
			t.Fatalf("bad cell %q", row[len(row)-1])
		}
		if norm > 1.0 {
			t.Errorf("%s: mean X/(E·M) = %v > 1 violates Lemma 3", row[0], norm)
		}
	}
}
