package extmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Backend is the raw block store behind a Space: the "disk" of the model.
// Implementations transfer whole blocks; the Space's cache decides when.
type Backend interface {
	// ReadBlock fills dst (exactly B words) with block b.
	ReadBlock(b int64, dst []Word) error
	// WriteBlock stores src (exactly B words) as block b.
	WriteBlock(b int64, src []Word) error
	// Grow ensures the store can hold at least words words.
	Grow(words int64) error
	// Sync forces written blocks to stable storage (fsync for file
	// backends; a no-op in memory). Durable images call it before they
	// are considered committed.
	Sync() error
	// Close releases resources.
	Close() error
}

// memBackend keeps external memory in process RAM; the default, and the
// fastest choice for simulations.
type memBackend struct {
	words []Word
}

func newMemBackend() *memBackend { return &memBackend{} }

func (m *memBackend) ReadBlock(b int64, dst []Word) error {
	off := b * int64(len(dst))
	if off >= int64(len(m.words)) {
		zero(dst)
		return nil
	}
	n := copy(dst, m.words[off:])
	zero(dst[n:])
	return nil
}

func (m *memBackend) WriteBlock(b int64, src []Word) error {
	off := b * int64(len(src))
	need := off + int64(len(src))
	if need > int64(len(m.words)) {
		grown := make([]Word, need)
		copy(grown, m.words)
		m.words = grown
	}
	copy(m.words[off:], src)
	return nil
}

func (m *memBackend) Grow(words int64) error { return nil } // lazy

func (m *memBackend) Sync() error { return nil }

func (m *memBackend) Close() error { return nil }

// fileBackend stores external memory in a real file, one little-endian
// uint64 per word, so that block transfers are actual disk I/O.
type fileBackend struct {
	f   *os.File
	buf []byte
}

func newFileBackend(path string) (*fileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("extmem: open backing file: %w", err)
	}
	return &fileBackend{f: f}, nil
}

func (fb *fileBackend) ensureBuf(n int) []byte {
	if cap(fb.buf) < n {
		fb.buf = make([]byte, n)
	}
	return fb.buf[:n]
}

func (fb *fileBackend) ReadBlock(b int64, dst []Word) error {
	buf := fb.ensureBuf(len(dst) * 8)
	n, err := fb.f.ReadAt(buf, b*int64(len(buf)))
	return decodeBlock(buf, n, err, dst)
}

// decodeBlock turns a ReadAt result into words: a short read that ran
// into EOF pads with zeros (unwritten external memory reads as zero); any
// other error is a genuine I/O failure and must surface, never be
// mistaken for zeros.
func decodeBlock(buf []byte, n int, err error, dst []Word) error {
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return nil
}

func (fb *fileBackend) WriteBlock(b int64, src []Word) error {
	buf := fb.ensureBuf(len(src) * 8)
	for i, w := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	_, err := fb.f.WriteAt(buf, b*int64(len(buf)))
	return err
}

func (fb *fileBackend) Grow(words int64) error { return nil } // sparse file

func (fb *fileBackend) Sync() error { return fb.f.Sync() }

func (fb *fileBackend) Close() error { return fb.f.Close() }

// tempFileBackend is a fileBackend whose file exists only as long as the
// backend does: per-session scratch spill for disk-backed graphs.
type tempFileBackend struct {
	*fileBackend
	path string
}

func newTempFileBackend(path string) (*tempFileBackend, error) {
	fb, err := newFileBackend(path)
	if err != nil {
		return nil, err
	}
	return &tempFileBackend{fileBackend: fb, path: path}, nil
}

func (tb *tempFileBackend) Close() error {
	err := tb.fileBackend.Close()
	if rmErr := os.Remove(tb.path); err == nil {
		err = rmErr
	}
	return err
}

// FileCore serves an immutable core from a file holding one little-endian
// uint64 per word — the canonical image a disk-backed Build leaves at
// Options.DiskPath. Reads go through os.File.ReadAt, which is safe for
// concurrent use, so every live session of a handle can read the same
// core straight from disk; words past EOF read as zero (unwritten
// external memory), as in fileBackend.
type FileCore struct {
	f    *os.File
	bufs sync.Pool // transfer buffers; pooled because sessions read concurrently

	// Native sessions view the image as one contiguous slice; it is
	// decoded lazily on the first NativeWords call and shared (read-only)
	// by every native session of the handle afterwards.
	natMu sync.Mutex
	nat   []Word
}

// NewFileCore opens the file read-only as a Core.
func NewFileCore(path string) (*FileCore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extmem: open core file: %w", err)
	}
	return &FileCore{f: f}, nil
}

// ReadCoreBlock implements Core.
func (fc *FileCore) ReadCoreBlock(blk int64, dst []Word) error {
	want := len(dst) * 8
	buf, _ := fc.bufs.Get().([]byte)
	if len(buf) != want {
		buf = make([]byte, want)
	}
	defer fc.bufs.Put(buf)
	n, err := fc.f.ReadAt(buf, blk*int64(want))
	return decodeBlock(buf, n, err, dst)
}

// NativeWords implements NativeCore: it decodes the first n words of the
// image into process memory once (an mmap-style read-only view, loaded
// eagerly) and serves every later native session from the same slice.
// Words past EOF read as zero, exactly as ReadCoreBlock pads them.
func (fc *FileCore) NativeWords(n int64) ([]Word, error) {
	fc.natMu.Lock()
	defer fc.natMu.Unlock()
	if int64(len(fc.nat)) >= n {
		return fc.nat[:n], nil
	}
	buf := make([]byte, n*8)
	rn, err := fc.f.ReadAt(buf, 0)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	for i := rn; i < len(buf); i++ {
		buf[i] = 0
	}
	words := make([]Word, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	fc.nat = words
	return words, nil
}

// Close closes the backing file. The owner of the core (the graph handle)
// calls it once every session is done.
func (fc *FileCore) Close() error { return fc.f.Close() }
