package extmem

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Backend is the raw block store behind a Space: the "disk" of the model.
// Implementations transfer whole blocks; the Space's cache decides when.
type Backend interface {
	// ReadBlock fills dst (exactly B words) with block b.
	ReadBlock(b int64, dst []Word) error
	// WriteBlock stores src (exactly B words) as block b.
	WriteBlock(b int64, src []Word) error
	// Grow ensures the store can hold at least words words.
	Grow(words int64) error
	// Close releases resources.
	Close() error
}

// memBackend keeps external memory in process RAM; the default, and the
// fastest choice for simulations.
type memBackend struct {
	words []Word
}

func newMemBackend() *memBackend { return &memBackend{} }

func (m *memBackend) ReadBlock(b int64, dst []Word) error {
	off := b * int64(len(dst))
	if off >= int64(len(m.words)) {
		zero(dst)
		return nil
	}
	n := copy(dst, m.words[off:])
	zero(dst[n:])
	return nil
}

func (m *memBackend) WriteBlock(b int64, src []Word) error {
	off := b * int64(len(src))
	need := off + int64(len(src))
	if need > int64(len(m.words)) {
		grown := make([]Word, need)
		copy(grown, m.words)
		m.words = grown
	}
	copy(m.words[off:], src)
	return nil
}

func (m *memBackend) Grow(words int64) error { return nil } // lazy

func (m *memBackend) Close() error { return nil }

// fileBackend stores external memory in a real file, one little-endian
// uint64 per word, so that block transfers are actual disk I/O.
type fileBackend struct {
	f   *os.File
	buf []byte
}

func newFileBackend(path string) (*fileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("extmem: open backing file: %w", err)
	}
	return &fileBackend{f: f}, nil
}

func (fb *fileBackend) ensureBuf(n int) []byte {
	if cap(fb.buf) < n {
		fb.buf = make([]byte, n)
	}
	return fb.buf[:n]
}

func (fb *fileBackend) ReadBlock(b int64, dst []Word) error {
	buf := fb.ensureBuf(len(dst) * 8)
	off := b * int64(len(buf))
	n, err := fb.f.ReadAt(buf, off)
	if err != nil && n == 0 {
		// Reading past EOF yields zeros: unwritten external memory.
		zero(dst)
		return nil
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return nil
}

func (fb *fileBackend) WriteBlock(b int64, src []Word) error {
	buf := fb.ensureBuf(len(src) * 8)
	for i, w := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	_, err := fb.f.WriteAt(buf, b*int64(len(buf)))
	return err
}

func (fb *fileBackend) Grow(words int64) error { return nil } // sparse file

func (fb *fileBackend) Close() error { return fb.f.Close() }
