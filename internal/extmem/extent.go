package extmem

import "fmt"

// Extent is a contiguous region of external memory, the unit algorithms
// operate on (an edge file, a bucket, a scratch buffer). Extents are cheap
// values; sub-slicing does not copy.
type Extent struct {
	sp   *Space
	base int64
	n    int64
}

// Len returns the extent length in words.
func (e Extent) Len() int64 { return e.n }

// Base returns the starting address of the extent in its Space.
func (e Extent) Base() int64 { return e.base }

// Space returns the Space the extent lives in.
func (e Extent) Space() *Space { return e.sp }

// Read returns word i of the extent.
func (e Extent) Read(i int64) Word {
	if i < 0 || i >= e.n {
		panic(fmt.Sprintf("extmem: extent read out of range: %d not in [0,%d)", i, e.n))
	}
	return e.sp.Read(e.base + i)
}

// Write stores v at word i of the extent.
func (e Extent) Write(i int64, v Word) {
	if i < 0 || i >= e.n {
		panic(fmt.Sprintf("extmem: extent write out of range: %d not in [0,%d)", i, e.n))
	}
	e.sp.Write(e.base+i, v)
}

// Slice returns the sub-extent [lo, hi).
func (e Extent) Slice(lo, hi int64) Extent {
	if lo < 0 || hi < lo || hi > e.n {
		panic(fmt.Sprintf("extmem: bad extent slice [%d,%d) of %d", lo, hi, e.n))
	}
	return Extent{sp: e.sp, base: e.base + lo, n: hi - lo}
}

// Prefix returns the sub-extent [0, n).
func (e Extent) Prefix(n int64) Extent { return e.Slice(0, n) }

// Load copies the extent into the native slice dst (which must be at least
// Len words). The words pass through the cache, so the copy is charged the
// usual scan cost; the caller is responsible for leasing space for dst.
func (e Extent) Load(dst []Word) {
	if int64(len(dst)) < e.n {
		panic("extmem: Load destination too small")
	}
	for i := int64(0); i < e.n; i++ {
		dst[i] = e.sp.Read(e.base + i)
	}
}

// Store copies the native slice src into the extent (charged as a scan).
func (e Extent) Store(src []Word) {
	if int64(len(src)) > e.n {
		panic("extmem: Store source too large")
	}
	for i, w := range src {
		e.sp.Write(e.base+int64(i), w)
	}
}

// CopyTo copies the extent into dst, which must be at least as long.
func (e Extent) CopyTo(dst Extent) {
	if dst.n < e.n {
		panic("extmem: CopyTo destination too small")
	}
	for i := int64(0); i < e.n; i++ {
		dst.sp.Write(dst.base+i, e.sp.Read(e.base+i))
	}
}

// Fill sets every word of the extent to v.
func (e Extent) Fill(v Word) {
	for i := int64(0); i < e.n; i++ {
		e.sp.Write(e.base+i, v)
	}
}
