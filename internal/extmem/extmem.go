// Package extmem simulates the external memory (I/O) model of Aggarwal and
// Vitter: an internal memory of M words, an external memory of unbounded
// size, and data transfer in blocks of B consecutive words.
//
// All algorithm data lives in a word-addressable Space. Every word access
// goes through a write-back LRU block cache of capacity M words; cache
// misses are counted as I/Os. This gives a uniform, honest I/O measurement
// for both cache-aware algorithms (which are told M and B and arrange their
// access patterns accordingly) and cache-oblivious algorithms (which never
// look at M or B — the LRU replacement policy stands in for the optimal
// replacement policy assumed by the cache-oblivious model, losing at most a
// constant factor by the Sleator–Tarjan competitiveness argument that the
// framework of Frigo et al. relies on).
//
// Internal-memory computation is free in the I/O model, but internal memory
// is not: algorithms that keep O(M) words of native scratch state (hash
// sets, heaps, buffers) must lease that space with Space.Lease, which
// shrinks the block cache by the same number of words while held.
package extmem

import "fmt"

// Word is the unit of storage in the model. The paper assumes each vertex
// and each edge occupies one memory word; an edge {u,v} with u < v is packed
// as uint64(u)<<32 | uint64(v).
type Word = uint64

// Stats records the I/O activity of a Space since the last ResetStats.
type Stats struct {
	// BlockReads is the number of blocks fetched from external memory.
	BlockReads uint64
	// BlockWrites is the number of dirty blocks written back to external
	// memory (on eviction or explicit Flush).
	BlockWrites uint64
	// WordReads and WordWrites count individual word accesses. They are
	// free in the I/O model and are reported only as a work measure.
	WordReads  uint64
	WordWrites uint64
	// PeakLease is the high-water mark of leased internal memory in words.
	PeakLease int
	// PeakAlloc is the high-water mark of allocated disk space in words.
	PeakAlloc int64
}

// IOs returns the total number of input/output operations (block reads plus
// block writes), the quantity every bound in the paper is stated in.
func (s Stats) IOs() uint64 { return s.BlockReads + s.BlockWrites }

// Config describes the simulated machine.
type Config struct {
	// M is the internal memory size in words. The tall-cache assumption
	// M >= B*B is standard (and necessary for optimal cache-oblivious
	// sorting); NewSpace rejects configurations that violate it unless
	// AllowShortCache is set.
	M int
	// B is the block size in words. Must be a power of two.
	B int
	// AllowShortCache disables the tall-cache check (useful in tests).
	AllowShortCache bool
	// Native selects the native fast path: every word access is a direct
	// slice access with no block cache and no I/O accounting. M, B, and
	// the Lease bookkeeping keep their exact simulated semantics — the
	// values algorithms size their decompositions from are unchanged, so
	// the emission order is byte-identical to the simulated machine — but
	// Stats reports zero and writes below a session's core watermark
	// panic immediately instead of at write-back time.
	Native bool
}

const noFrame = int32(-1)

// frame is a cache slot holding one block.
type frame struct {
	block      int64 // block index held, or -1 if free
	prev, next int32 // LRU list links
	dirty      bool
}

// Space is a word-addressable external memory with a simulated block cache.
// It is not safe for concurrent use; the I/O model is sequential.
type Space struct {
	cfg       Config
	logB      uint
	backend   Backend
	stats     Stats
	size      int64 // allocated words (bump allocator)
	leased    int
	frames    []frame
	data      []Word          // frame storage, len = maxFrames*B
	table     map[int64]int32 // block index -> frame
	lruHead   int32           // most recently used
	lruTail   int32           // least recently used
	freeList  []int32
	capFrames int // current frame budget = (M - leased)/B
	// fast path: the most recently accessed block stays pinned in these
	// fields so sequential scans skip the map lookup B-1 times out of B.
	lastBlock int64
	lastFrame int32
	virgin    map[int64]struct{} // blocks never materialized: first write skips the fetch
	closed    bool
	// Native-mode storage (Config.Native): no frames, no table, no
	// accounting. Addresses [0, natBase) read from the immutable natCore
	// slice; [natBase, size) live in natScratch. The Lease counter above
	// keeps its simulated bookkeeping so cache-aware algorithms compute
	// identical decompositions, but nothing is evicted or counted.
	native     bool
	natCore    []Word
	natBase    int64
	natScratch []Word
}

// NewSpace creates a Space backed by process memory.
func NewSpace(cfg Config) *Space {
	sp, err := newSpace(cfg, newMemBackend())
	if err != nil {
		panic(err) // memory backend cannot fail; config errors panic early
	}
	return sp
}

// NewFileSpace creates a Space whose external memory is the named file,
// making the library usable against a real disk. The file is truncated.
func NewFileSpace(cfg Config, path string) (*Space, error) {
	be, err := newFileBackend(path)
	if err != nil {
		return nil, err
	}
	return newSpace(cfg, be)
}

func newSpace(cfg Config, be Backend) (*Space, error) {
	if cfg.B <= 0 || cfg.B&(cfg.B-1) != 0 {
		return nil, fmt.Errorf("extmem: block size B=%d must be a positive power of two", cfg.B)
	}
	if cfg.M < 2*cfg.B {
		return nil, fmt.Errorf("extmem: memory M=%d must hold at least two blocks of B=%d", cfg.M, cfg.B)
	}
	if !cfg.AllowShortCache && cfg.M < cfg.B*cfg.B {
		return nil, fmt.Errorf("extmem: tall-cache assumption violated: M=%d < B^2=%d", cfg.M, cfg.B*cfg.B)
	}
	logB := uint(0)
	for 1<<logB != cfg.B {
		logB++
	}
	if cfg.Native {
		// No cache machinery at all: the validation above keeps the
		// machine description honest (algorithms still consult M and B),
		// but words live in plain slices and the backend is inert.
		return &Space{
			cfg:       cfg,
			logB:      logB,
			backend:   be,
			lastBlock: -1,
			lastFrame: noFrame,
			native:    true,
		}, nil
	}
	maxFrames := cfg.M / cfg.B
	sp := &Space{
		cfg:       cfg,
		logB:      logB,
		backend:   be,
		frames:    make([]frame, maxFrames),
		data:      make([]Word, maxFrames*cfg.B),
		table:     make(map[int64]int32, maxFrames*2),
		lruHead:   noFrame,
		lruTail:   noFrame,
		capFrames: maxFrames,
		lastBlock: -1,
		lastFrame: noFrame,
		virgin:    make(map[int64]struct{}),
	}
	for i := range sp.frames {
		sp.frames[i].block = -1
		sp.freeList = append(sp.freeList, int32(i))
	}
	return sp, nil
}

// Config returns the machine description. Cache-oblivious algorithms must
// not consult it; it exists for cache-aware algorithms and test harnesses.
func (s *Space) Config() Config { return s.cfg }

// Stats returns a snapshot of the I/O counters. A native Space (see
// Config.Native) reports zero: accounting is compiled out of its hot
// path, the one documented divergence from the simulated machine.
func (s *Space) Stats() Stats {
	if s.native {
		return Stats{}
	}
	st := s.stats
	st.PeakAlloc = maxI64(st.PeakAlloc, s.size)
	return st
}

// ResetStats zeroes the I/O counters. It does not flush the cache; call
// DropCache first to measure an algorithm from a cold cache.
func (s *Space) ResetStats() { s.stats = Stats{} }

// DropCache writes back all dirty blocks and empties the cache, so that the
// next measurements start cold. The write-backs are NOT counted (they are
// charged to whatever computation dirtied them before the reset).
func (s *Space) DropCache() {
	if s.native {
		return // no cache to drop
	}
	for b, f := range s.table {
		fr := &s.frames[f]
		if fr.dirty {
			s.writeBack(b, f)
			s.stats.BlockWrites-- // uncounted by contract
		}
		fr.block = -1
		fr.dirty = false
		s.lruUnlink(f)
		s.freeList = append(s.freeList, f)
	}
	clear(s.table)
	s.lastBlock = -1
	s.lastFrame = noFrame
}

// Flush writes back all dirty blocks, counting the writes. Data remains
// cached (clean).
func (s *Space) Flush() {
	if s.native {
		return // nothing cached, nothing dirty
	}
	for b, f := range s.table {
		if s.frames[f].dirty {
			s.writeBack(b, f)
			s.frames[f].dirty = false
		}
	}
}

// Sync forces written-back blocks to stable storage (fsync for
// file-backed spaces; a no-op in memory). It does not flush the cache —
// call Flush first so every dirty block has reached the backend.
func (s *Space) Sync() error { return s.backend.Sync() }

// Close releases the backend (closing the file for file-backed spaces).
func (s *Space) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.backend.Close()
}

// Lease reserves n words of internal memory for native scratch state,
// shrinking the block cache accordingly, and returns a release function.
// It panics if the total leased memory would exceed the configured M minus
// two blocks (the model always needs room to move at least input and output
// blocks).
func (s *Space) Lease(n int) (release func()) {
	if n < 0 {
		panic("extmem: negative lease")
	}
	if s.leased+n > s.cfg.M-2*s.cfg.B {
		panic(fmt.Sprintf("extmem: lease of %d words exceeds internal memory (M=%d, leased=%d)", n, s.cfg.M, s.leased))
	}
	s.leased += n
	if s.leased > s.stats.PeakLease {
		s.stats.PeakLease = s.leased
	}
	if !s.native {
		// Native mode keeps the lease counter (algorithms derive their
		// decomposition grain from M - Leased(), which must match the
		// simulated machine exactly) but has no cache to shrink.
		s.capFrames = (s.cfg.M - s.leased) / s.cfg.B
		s.evictOver()
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		s.leased -= n
		if !s.native {
			s.capFrames = (s.cfg.M - s.leased) / s.cfg.B
		}
	}
}

// LeaseAtMost leases n words of internal memory, or as much as remains if
// less. Algorithms size their native state from the configured M, but
// configurations at the edge of the model's memory assumptions (M barely
// above B²) can leave less than the sized amount; accounting then charges
// everything that is chargeable rather than refusing to run.
func (s *Space) LeaseAtMost(n int) (release func()) {
	if maxLease := s.cfg.M - 2*s.cfg.B - s.leased; n > maxLease {
		n = maxLease
	}
	if n <= 0 {
		return func() {}
	}
	return s.Lease(n)
}

// Leased reports the currently leased internal memory in words.
func (s *Space) Leased() int { return s.leased }

// Size returns the number of allocated words of external memory.
func (s *Space) Size() int64 { return s.size }

// Alloc reserves n consecutive words of external memory and returns the
// extent. Allocations are block-aligned, so a fresh extent always reads as
// zero. Allocation follows stack discipline: use Mark/Release to free.
func (s *Space) Alloc(n int64) Extent {
	if n < 0 {
		panic("extmem: negative allocation")
	}
	base := (s.size + int64(s.cfg.B) - 1) &^ int64(s.cfg.B-1)
	s.size = base + n
	if s.native {
		s.natGrow(s.size - s.natBase)
		return Extent{sp: s, base: base, n: n}
	}
	if s.size > s.stats.PeakAlloc {
		s.stats.PeakAlloc = s.size
	}
	if err := s.backend.Grow(s.size); err != nil {
		panic(fmt.Sprintf("extmem: grow failed: %v", err))
	}
	if n == 0 {
		return Extent{sp: s, base: base, n: 0}
	}
	// Freshly allocated blocks are virgin: their first materialization does
	// not need a fetch from external memory, and they read as zero even if
	// the backend holds stale data from a released extent.
	first := base >> s.logB
	last := (s.size - 1) >> s.logB
	for b := first; b <= last; b++ {
		if _, ok := s.table[b]; !ok {
			s.virgin[b] = struct{}{}
		}
	}
	return Extent{sp: s, base: base, n: n}
}

// Mark returns the current allocation watermark.
func (s *Space) Mark() int64 { return s.size }

// natGrow extends the native scratch slice to n words. Words between the
// old and new lengths are zeroed explicitly: after a Release truncation
// the capacity may hold stale data, and a fresh extent must read as zero
// exactly like a virgin simulated block.
func (s *Space) natGrow(n int64) {
	old := int64(len(s.natScratch))
	if n <= old {
		return
	}
	if n <= int64(cap(s.natScratch)) {
		s.natScratch = s.natScratch[:n]
		zero(s.natScratch[old:])
		return
	}
	newCap := 2 * int64(cap(s.natScratch))
	if newCap < n {
		newCap = n
	}
	grown := make([]Word, n, newCap)
	copy(grown, s.natScratch)
	s.natScratch = grown
}

// Release frees all extents allocated after the given mark. Any cached
// blocks wholly above the mark are discarded without write-back (their
// contents are dead).
func (s *Space) Release(mark int64) {
	if mark > s.size || mark < 0 {
		panic("extmem: bad release mark")
	}
	if s.native {
		s.size = mark
		if keep := mark - s.natBase; keep >= 0 && keep < int64(len(s.natScratch)) {
			s.natScratch = s.natScratch[:keep]
		}
		return
	}
	boundary := (mark + int64(s.cfg.B) - 1) >> s.logB
	for b, f := range s.table {
		if b >= boundary {
			fr := &s.frames[f]
			fr.block = -1
			fr.dirty = false
			s.lruUnlink(f)
			s.freeList = append(s.freeList, f)
			delete(s.table, b)
			delete(s.virgin, b)
		}
	}
	for b := range s.virgin {
		if b >= boundary {
			delete(s.virgin, b)
		}
	}
	if s.lastBlock >= boundary {
		s.lastBlock = -1
		s.lastFrame = noFrame
	}
	s.size = mark
}

// Read returns the word at address a, counting a block read on a miss.
// On a native Space it is a direct slice access: no cache, no counters.
func (s *Space) Read(a int64) Word {
	if s.native {
		if a < s.natBase {
			return s.natCore[a]
		}
		return s.natScratch[a-s.natBase]
	}
	s.stats.WordReads++
	b := a >> s.logB
	if b == s.lastBlock {
		return s.data[int64(s.lastFrame)<<s.logB|(a&int64(s.cfg.B-1))]
	}
	f := s.fetch(b, false)
	return s.data[int64(f)<<s.logB|(a&int64(s.cfg.B-1))]
}

// Write stores v at address a, counting a block read on a miss (write-
// allocate) unless the block has never been materialized, and a block write
// when the dirty block is eventually evicted or flushed.
func (s *Space) Write(a int64, v Word) {
	if s.native {
		if a < s.natBase {
			panic(fmt.Sprintf("extmem: native write to read-only core address %d", a))
		}
		s.natScratch[a-s.natBase] = v
		return
	}
	s.stats.WordWrites++
	b := a >> s.logB
	var f int32
	if b == s.lastBlock {
		f = s.lastFrame
	} else {
		f = s.fetch(b, true)
	}
	s.frames[f].dirty = true
	s.data[int64(f)<<s.logB|(a&int64(s.cfg.B-1))] = v
}

// fetch brings block b into the cache and returns its frame, updating LRU
// order and the fast-path registers.
func (s *Space) fetch(b int64, forWrite bool) int32 {
	if f, ok := s.table[b]; ok {
		s.lruTouch(f)
		s.lastBlock, s.lastFrame = b, f
		return f
	}
	f := s.grabFrame()
	fr := &s.frames[f]
	fr.block = b
	fr.dirty = false
	if _, isVirgin := s.virgin[b]; isVirgin {
		delete(s.virgin, b)
		// First touch of a never-written block: contents are zero by
		// definition; no transfer from external memory is needed.
		zero(s.data[int64(f)<<s.logB : (int64(f)+1)<<s.logB])
	} else {
		s.stats.BlockReads++
		if err := s.backend.ReadBlock(b, s.data[int64(f)<<s.logB:(int64(f)+1)<<s.logB]); err != nil {
			panic(fmt.Sprintf("extmem: read block %d: %v", b, err))
		}
	}
	s.table[b] = f
	s.lruPushFront(f)
	s.lastBlock, s.lastFrame = b, f
	return f
}

// grabFrame returns a free frame, evicting the LRU block if necessary.
func (s *Space) grabFrame() int32 {
	if len(s.table) >= s.capFrames {
		s.evictLRU()
	}
	if n := len(s.freeList); n > 0 {
		f := s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		return f
	}
	// All frames busy but under budget cannot happen: budget <= len(frames).
	s.evictLRU()
	f := s.freeList[len(s.freeList)-1]
	s.freeList = s.freeList[:len(s.freeList)-1]
	return f
}

func (s *Space) evictOver() {
	for len(s.table) > s.capFrames {
		s.evictLRU()
	}
}

func (s *Space) evictLRU() {
	f := s.lruTail
	if f == noFrame {
		panic("extmem: cache empty but eviction requested")
	}
	fr := &s.frames[f]
	if fr.dirty {
		s.writeBack(fr.block, f)
	}
	delete(s.table, fr.block)
	if s.lastBlock == fr.block {
		s.lastBlock = -1
		s.lastFrame = noFrame
	}
	fr.block = -1
	fr.dirty = false
	s.lruUnlink(f)
	s.freeList = append(s.freeList, f)
}

func (s *Space) writeBack(b int64, f int32) {
	s.stats.BlockWrites++
	if err := s.backend.WriteBlock(b, s.data[int64(f)<<s.logB:(int64(f)+1)<<s.logB]); err != nil {
		panic(fmt.Sprintf("extmem: write block %d: %v", b, err))
	}
}

// LRU list management (intrusive doubly-linked list over frames).

func (s *Space) lruPushFront(f int32) {
	fr := &s.frames[f]
	fr.prev = noFrame
	fr.next = s.lruHead
	if s.lruHead != noFrame {
		s.frames[s.lruHead].prev = f
	}
	s.lruHead = f
	if s.lruTail == noFrame {
		s.lruTail = f
	}
}

func (s *Space) lruUnlink(f int32) {
	fr := &s.frames[f]
	if fr.prev != noFrame {
		s.frames[fr.prev].next = fr.next
	} else if s.lruHead == f {
		s.lruHead = fr.next
	}
	if fr.next != noFrame {
		s.frames[fr.next].prev = fr.prev
	} else if s.lruTail == f {
		s.lruTail = fr.prev
	}
	fr.prev, fr.next = noFrame, noFrame
}

func (s *Space) lruTouch(f int32) {
	if s.lruHead == f {
		return
	}
	s.lruUnlink(f)
	s.lruPushFront(f)
}

// Resident reports whether the block containing address a is currently in
// internal memory. Used by tests and by the emit-witness checker. On a
// native Space every word is process memory, so everything is resident.
func (s *Space) Resident(a int64) bool {
	if s.native {
		return true
	}
	_, ok := s.table[a>>s.logB]
	return ok
}

func zero(w []Word) {
	for i := range w {
		w[i] = 0
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
