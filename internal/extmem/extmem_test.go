package extmem

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testConfig() Config { return Config{M: 1 << 12, B: 1 << 6} }

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{M: 4096, B: 64}, true},
		{Config{M: 4096, B: 63}, false}, // not a power of two
		{Config{M: 4096, B: 0}, false},  // zero block
		{Config{M: 64, B: 64}, false},   // fewer than two blocks
		{Config{M: 1024, B: 64}, false}, // tall-cache violated
		{Config{M: 1024, B: 64, AllowShortCache: true}, true},
		{Config{M: 4096, B: -64}, false},
	}
	for _, c := range cases {
		_, err := newSpace(c.cfg, newMemBackend())
		if (err == nil) != c.ok {
			t.Errorf("config %+v: err=%v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	sp := NewSpace(testConfig())
	ext := sp.Alloc(10000)
	for i := int64(0); i < ext.Len(); i++ {
		ext.Write(i, uint64(i*i+1))
	}
	for i := int64(0); i < ext.Len(); i++ {
		if got := ext.Read(i); got != uint64(i*i+1) {
			t.Fatalf("word %d: got %d want %d", i, got, i*i+1)
		}
	}
}

func TestFreshMemoryReadsZero(t *testing.T) {
	sp := NewSpace(testConfig())
	ext := sp.Alloc(1000)
	for i := int64(0); i < ext.Len(); i++ {
		if got := ext.Read(i); got != 0 {
			t.Fatalf("fresh word %d: got %d want 0", i, got)
		}
	}
}

func TestSequentialScanCost(t *testing.T) {
	cfg := testConfig()
	sp := NewSpace(cfg)
	n := int64(100 * cfg.B)
	ext := sp.Alloc(n)
	for i := int64(0); i < n; i++ {
		ext.Write(i, uint64(i))
	}
	sp.DropCache()
	sp.ResetStats()
	for i := int64(0); i < n; i++ {
		ext.Read(i)
	}
	st := sp.Stats()
	wantReads := uint64(n) / uint64(cfg.B)
	if st.BlockReads != wantReads {
		t.Errorf("sequential scan of %d words: %d block reads, want %d", n, st.BlockReads, wantReads)
	}
	if st.BlockWrites != 0 {
		t.Errorf("read-only scan caused %d block writes", st.BlockWrites)
	}
}

func TestWriteOnlyScanCostsNoReads(t *testing.T) {
	cfg := testConfig()
	sp := NewSpace(cfg)
	n := int64(64 * cfg.B)
	ext := sp.Alloc(n)
	sp.ResetStats()
	for i := int64(0); i < n; i++ {
		ext.Write(i, uint64(i))
	}
	sp.Flush()
	st := sp.Stats()
	if st.BlockReads != 0 {
		t.Errorf("writing fresh extent caused %d block reads (virgin blocks should not be fetched)", st.BlockReads)
	}
	wantWrites := uint64(n) / uint64(cfg.B)
	if st.BlockWrites != wantWrites {
		t.Errorf("flush wrote %d blocks, want %d", st.BlockWrites, wantWrites)
	}
}

func TestWorkingSetWithinMemoryIsFreeAfterLoad(t *testing.T) {
	cfg := testConfig()
	sp := NewSpace(cfg)
	n := int64(cfg.M / 2)
	ext := sp.Alloc(n)
	for i := int64(0); i < n; i++ {
		ext.Write(i, uint64(i))
	}
	sp.DropCache()
	sp.ResetStats()
	rng := rand.New(rand.NewSource(7))
	// Random access within a working set smaller than M: after the first
	// pass, everything is resident and misses stop.
	for pass := 0; pass < 20; pass++ {
		for k := 0; k < 1000; k++ {
			ext.Read(rng.Int63n(n))
		}
	}
	st := sp.Stats()
	maxReads := uint64(n)/uint64(cfg.B) + 1
	if st.BlockReads > maxReads {
		t.Errorf("working set < M incurred %d reads, want <= %d", st.BlockReads, maxReads)
	}
}

func TestThrashingBeyondMemory(t *testing.T) {
	cfg := Config{M: 1 << 12, B: 1 << 6}
	sp := NewSpace(cfg)
	n := int64(4 * cfg.M)
	ext := sp.Alloc(n)
	for i := int64(0); i < n; i++ {
		ext.Write(i, 1)
	}
	sp.DropCache()
	sp.ResetStats()
	// Cyclic scans over 4M words under LRU miss on every block, every pass.
	passes := 5
	for p := 0; p < passes; p++ {
		for i := int64(0); i < n; i += int64(cfg.B) {
			ext.Read(i)
		}
	}
	st := sp.Stats()
	want := uint64(passes) * uint64(n) / uint64(cfg.B)
	if st.BlockReads != want {
		t.Errorf("cyclic thrash: %d reads, want %d", st.BlockReads, want)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	cfg := Config{M: 4 * 64, B: 64, AllowShortCache: true} // 4 frames
	sp := NewSpace(cfg)
	ext := sp.Alloc(int64(10 * cfg.B))
	for i := int64(0); i < ext.Len(); i++ {
		ext.Write(i, 1)
	}
	sp.DropCache()
	sp.ResetStats()
	b := int64(cfg.B)
	ext.Read(0 * b) // blocks 0..3 resident
	ext.Read(1 * b)
	ext.Read(2 * b)
	ext.Read(3 * b)
	ext.Read(0 * b) // touch 0: LRU order now 1,2,3,0
	ext.Read(4 * b) // evicts 1
	if !sp.Resident(ext.Base() + 0*b) {
		t.Error("block 0 should be resident (recently touched)")
	}
	if sp.Resident(ext.Base() + 1*b) {
		t.Error("block 1 should have been evicted as LRU")
	}
	ext.Read(1 * b) // miss
	st := sp.Stats()
	if st.BlockReads != 6 {
		t.Errorf("got %d block reads, want 6", st.BlockReads)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := Config{M: 2 * 64, B: 64, AllowShortCache: true} // 2 frames
	sp := NewSpace(cfg)
	ext := sp.Alloc(int64(8 * cfg.B))
	ext.Write(0, 42)
	// Touch enough other blocks to evict block 0.
	for blk := int64(1); blk < 8; blk++ {
		ext.Write(blk*int64(cfg.B), uint64(blk))
	}
	if got := ext.Read(0); got != 42 {
		t.Fatalf("after eviction round trip got %d want 42", got)
	}
	st := sp.Stats()
	if st.BlockWrites == 0 {
		t.Error("dirty evictions should count block writes")
	}
}

func TestLeaseShrinksCache(t *testing.T) {
	cfg := Config{M: 8 * 64, B: 64, AllowShortCache: true} // 8 frames
	sp := NewSpace(cfg)
	n := int64(8 * cfg.B)
	ext := sp.Alloc(n)
	for i := int64(0); i < n; i++ {
		ext.Write(i, 1)
	}
	sp.DropCache()
	// Lease 6 blocks worth: only 2 frames remain.
	release := sp.Lease(6 * cfg.B)
	sp.ResetStats()
	b := int64(cfg.B)
	ext.Read(0)
	ext.Read(1 * b)
	ext.Read(2 * b) // evicts 0
	ext.Read(0)     // miss again
	if st := sp.Stats(); st.BlockReads != 4 {
		t.Errorf("with shrunken cache got %d reads, want 4", st.BlockReads)
	}
	release()
	if sp.Leased() != 0 {
		t.Errorf("lease not returned: %d", sp.Leased())
	}
	// Double release is a no-op.
	release()
	if sp.Leased() != 0 {
		t.Errorf("double release changed lease: %d", sp.Leased())
	}
}

func TestLeaseOverflowPanics(t *testing.T) {
	sp := NewSpace(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic when leasing more than M")
		}
	}()
	sp.Lease(sp.Config().M)
}

func TestPeakLeaseTracking(t *testing.T) {
	sp := NewSpace(testConfig())
	r1 := sp.Lease(100)
	r2 := sp.Lease(200)
	r2()
	r1()
	if got := sp.Stats().PeakLease; got != 300 {
		t.Errorf("PeakLease = %d, want 300", got)
	}
}

func TestMarkRelease(t *testing.T) {
	sp := NewSpace(testConfig())
	a := sp.Alloc(1000)
	a.Fill(7)
	mark := sp.Mark()
	b := sp.Alloc(5000)
	b.Fill(9)
	sp.Release(mark)
	if sp.Size() != mark {
		t.Fatalf("size after release = %d, want %d", sp.Size(), mark)
	}
	c := sp.Alloc(5000)
	for i := int64(0); i < c.Len(); i++ {
		if got := c.Read(i); got != 0 {
			t.Fatalf("reallocated word %d = %d, want 0 (fresh)", i, got)
		}
	}
	for i := int64(0); i < a.Len(); i++ {
		if got := a.Read(i); got != 7 {
			t.Fatalf("surviving extent word %d = %d, want 7", i, got)
		}
	}
}

func TestExtentSliceBounds(t *testing.T) {
	sp := NewSpace(testConfig())
	ext := sp.Alloc(100)
	s := ext.Slice(10, 60)
	if s.Len() != 50 {
		t.Fatalf("slice len %d want 50", s.Len())
	}
	s.Write(0, 5)
	if ext.Read(10) != 5 {
		t.Error("slice write did not alias parent")
	}
	for _, bad := range [][2]int64{{-1, 10}, {5, 101}, {60, 50}} {
		func() {
			defer func() { recover() }()
			ext.Slice(bad[0], bad[1])
			t.Errorf("Slice(%d,%d) should panic", bad[0], bad[1])
		}()
	}
}

func TestExtentOutOfRangePanics(t *testing.T) {
	sp := NewSpace(testConfig())
	ext := sp.Alloc(10)
	for _, i := range []int64{-1, 10, 100} {
		func() {
			defer func() { recover() }()
			ext.Read(i)
			t.Errorf("Read(%d) should panic", i)
		}()
	}
}

func TestLoadStoreCopy(t *testing.T) {
	sp := NewSpace(testConfig())
	src := sp.Alloc(256)
	for i := int64(0); i < 256; i++ {
		src.Write(i, uint64(i)*3)
	}
	buf := make([]Word, 256)
	src.Load(buf)
	for i, w := range buf {
		if w != uint64(i)*3 {
			t.Fatalf("Load[%d]=%d", i, w)
		}
	}
	dst := sp.Alloc(256)
	src.CopyTo(dst)
	for i := int64(0); i < 256; i++ {
		if dst.Read(i) != uint64(i)*3 {
			t.Fatalf("CopyTo[%d]", i)
		}
	}
	dst2 := sp.Alloc(300)
	dst2.Store(buf)
	if dst2.Read(255) != 255*3 {
		t.Error("Store mismatch")
	}
}

func TestFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.bin")
	sp, err := NewFileSpace(Config{M: 1 << 10, B: 1 << 5}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	n := int64(10000)
	ext := sp.Alloc(n)
	for i := int64(0); i < n; i++ {
		ext.Write(i, uint64(i)^0xdeadbeef)
	}
	sp.DropCache() // forces write-back through the file
	for i := int64(0); i < n; i += 97 {
		if got := ext.Read(i); got != uint64(i)^0xdeadbeef {
			t.Fatalf("file round trip word %d: got %d", i, got)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestStatsReset(t *testing.T) {
	sp := NewSpace(testConfig())
	ext := sp.Alloc(int64(10 * sp.Config().B))
	ext.Fill(1)
	sp.ResetStats()
	if io := sp.Stats().IOs(); io != 0 {
		t.Errorf("after reset IOs=%d", io)
	}
}

// Property: the simulated space behaves exactly like a flat array under any
// access sequence (the cache is transparent).
func TestQuickTransparency(t *testing.T) {
	prop := func(ops []uint32, seed int64) bool {
		cfg := Config{M: 1 << 9, B: 1 << 4, AllowShortCache: true}
		sp := NewSpace(cfg)
		const n = 2048
		ext := sp.Alloc(n)
		ref := make([]Word, n)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			addr := int64(op) % n
			if op&1 == 0 {
				v := rng.Uint64()
				ext.Write(addr, v)
				ref[addr] = v
			} else if ext.Read(addr) != ref[addr] {
				return false
			}
		}
		for i := int64(0); i < n; i++ {
			if ext.Read(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LRU miss counts match a straightforward reference simulation.
func TestQuickLRUMatchesReference(t *testing.T) {
	prop := func(accesses []uint16) bool {
		cfg := Config{M: 8 * 16, B: 16, AllowShortCache: true} // 8 frames
		sp := NewSpace(cfg)
		const n = 64 * 16
		ext := sp.Alloc(n)
		for i := int64(0); i < n; i++ {
			ext.Write(i, 1)
		}
		sp.DropCache()
		sp.ResetStats()
		// Reference LRU.
		type ref struct{ blocks []int64 }
		var r ref
		misses := uint64(0)
		touch := func(b int64) {
			for i, x := range r.blocks {
				if x == b {
					r.blocks = append(append(append([]int64{}, r.blocks[:i]...), r.blocks[i+1:]...), b)
					return
				}
			}
			misses++
			r.blocks = append(r.blocks, b)
			if len(r.blocks) > 8 {
				r.blocks = r.blocks[1:]
			}
		}
		for _, a := range accesses {
			addr := int64(a) % n
			ext.Read(addr)
			touch(addr / 16)
		}
		return sp.Stats().BlockReads == misses
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
