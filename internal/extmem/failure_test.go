package extmem

import (
	"errors"
	"strings"
	"testing"
)

// flakyBackend fails reads/writes after a fuse burns down, simulating a
// failing device under the cache.
type flakyBackend struct {
	inner      Backend
	readsLeft  int
	writesLeft int
}

var errInjected = errors.New("injected device failure")

func (f *flakyBackend) ReadBlock(b int64, dst []Word) error {
	if f.readsLeft <= 0 {
		return errInjected
	}
	f.readsLeft--
	return f.inner.ReadBlock(b, dst)
}

func (f *flakyBackend) WriteBlock(b int64, src []Word) error {
	if f.writesLeft <= 0 {
		return errInjected
	}
	f.writesLeft--
	return f.inner.WriteBlock(b, src)
}

func (f *flakyBackend) Grow(words int64) error { return f.inner.Grow(words) }
func (f *flakyBackend) Sync() error            { return f.inner.Sync() }
func (f *flakyBackend) Close() error           { return f.inner.Close() }

func mustPanicWith(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

func TestReadFailureSurfaces(t *testing.T) {
	cfg := Config{M: 4 * 16, B: 16, AllowShortCache: true}
	sp, err := newSpace(cfg, &flakyBackend{inner: newMemBackend(), readsLeft: 2, writesLeft: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ext := sp.Alloc(16 * 16)
	for i := int64(0); i < ext.Len(); i++ {
		ext.Write(i, 1)
	}
	sp.DropCache() // consumes the write fuse generously
	mustPanicWith(t, "read block", func() {
		// Two reads succeed, the third read of distinct blocks fails.
		ext.Read(0)
		ext.Read(16)
		ext.Read(32)
	})
}

func TestWriteBackFailureSurfaces(t *testing.T) {
	cfg := Config{M: 2 * 16, B: 16, AllowShortCache: true} // 2 frames
	sp, err := newSpace(cfg, &flakyBackend{inner: newMemBackend(), readsLeft: 1000, writesLeft: 0})
	if err != nil {
		t.Fatal(err)
	}
	ext := sp.Alloc(8 * 16)
	mustPanicWith(t, "write block", func() {
		// Dirty three blocks; the third insertion evicts a dirty block,
		// which must write back and fail.
		ext.Write(0, 1)
		ext.Write(16, 1)
		ext.Write(32, 1)
	})
}

func TestFlushFailureSurfaces(t *testing.T) {
	cfg := Config{M: 8 * 16, B: 16, AllowShortCache: true}
	sp, err := newSpace(cfg, &flakyBackend{inner: newMemBackend(), readsLeft: 1000, writesLeft: 1})
	if err != nil {
		t.Fatal(err)
	}
	ext := sp.Alloc(4 * 16)
	ext.Write(0, 1)
	ext.Write(16, 1)
	mustPanicWith(t, "write block", func() { sp.Flush() })
}
