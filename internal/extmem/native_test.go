package extmem

import (
	"testing"
)

// nativeTestCfg returns matching simulated and native machine configs.
func nativeTestCfg() (sim, nat Config) {
	sim = Config{M: 1 << 10, B: 1 << 4, AllowShortCache: true}
	nat = sim
	nat.Native = true
	return
}

// TestNativeSpaceRoundTrip checks that a native Space stores and returns
// words exactly like the simulated machine, with zero Stats.
func TestNativeSpaceRoundTrip(t *testing.T) {
	_, cfg := nativeTestCfg()
	sp, err := newSpace(cfg, newMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	ext := sp.Alloc(100)
	for i := int64(0); i < 100; i++ {
		ext.Write(i, Word(i*i+7))
	}
	for i := int64(0); i < 100; i++ {
		if got := ext.Read(i); got != Word(i*i+7) {
			t.Fatalf("word %d: got %d, want %d", i, got, i*i+7)
		}
	}
	if st := sp.Stats(); st != (Stats{}) {
		t.Fatalf("native Stats not zero: %+v", st)
	}
	if !sp.Resident(ext.Base()) {
		t.Fatal("native words should always be resident")
	}
}

// TestNativeFreshExtentReadsZero pins the virgin-block contract on the
// native path: after Release, a re-allocation over the same addresses
// must read as zero even though the slice capacity holds stale data.
func TestNativeFreshExtentReadsZero(t *testing.T) {
	_, cfg := nativeTestCfg()
	sp, err := newSpace(cfg, newMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	mark := sp.Mark()
	a := sp.Alloc(64)
	a.Fill(0xdead)
	sp.Release(mark)
	b := sp.Alloc(64)
	for i := int64(0); i < 64; i++ {
		if got := b.Read(i); got != 0 {
			t.Fatalf("fresh extent word %d reads %#x, want 0", i, got)
		}
	}
}

// TestNativeLeaseBookkeeping checks the lease counter keeps its simulated
// semantics — same Leased() trajectory, same over-budget panic — because
// cache-aware algorithms derive decomposition grain from M - Leased().
func TestNativeLeaseBookkeeping(t *testing.T) {
	simCfg, natCfg := nativeTestCfg()
	sim, _ := newSpace(simCfg, newMemBackend())
	nat, _ := newSpace(natCfg, newMemBackend())
	defer sim.Close()
	defer nat.Close()

	relS := sim.Lease(100)
	relN := nat.Lease(100)
	if sim.Leased() != nat.Leased() {
		t.Fatalf("leased diverged: sim %d, native %d", sim.Leased(), nat.Leased())
	}
	relS2 := sim.LeaseAtMost(1 << 20)
	relN2 := nat.LeaseAtMost(1 << 20)
	if sim.Leased() != nat.Leased() {
		t.Fatalf("clamped lease diverged: sim %d, native %d", sim.Leased(), nat.Leased())
	}
	relS2()
	relN2()
	relS()
	relN()

	defer func() {
		if recover() == nil {
			t.Fatal("over-budget native Lease did not panic")
		}
	}()
	nat.Lease(natCfg.M)
}

// TestNativeSessionMatchesSimulated runs one session workload twice —
// simulated and native — over the same core and checks that every read
// and the resulting snapshot agree word for word.
func TestNativeSessionMatchesSimulated(t *testing.T) {
	simCfg, natCfg := nativeTestCfg()

	core := make([]Word, 4*simCfg.B)
	for i := range core {
		core[i] = Word(i)*2654435761 + 17
	}

	run := func(cfg Config) ([]Word, []Word) {
		sp, err := NewSessionSpace(cfg, WordsCore(core), int64(len(core)), "")
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		in := sp.ExtentAt(0, int64(len(core)))
		scratch := sp.Alloc(in.Len())
		for i := int64(0); i < in.Len(); i++ {
			scratch.Write(i, in.Read(i)^0xabcd)
		}
		reads := make([]Word, 0, 2*in.Len())
		for i := int64(0); i < in.Len(); i++ {
			reads = append(reads, in.Read(i), scratch.Read(i))
		}
		return reads, sp.Snapshot(scratch)
	}

	simReads, simSnap := run(simCfg)
	natReads, natSnap := run(natCfg)
	for i := range simReads {
		if simReads[i] != natReads[i] {
			t.Fatalf("read %d diverged: sim %#x, native %#x", i, simReads[i], natReads[i])
		}
	}
	if len(simSnap) != len(natSnap) {
		t.Fatalf("snapshot length diverged: sim %d, native %d", len(simSnap), len(natSnap))
	}
	for i := range simSnap {
		if simSnap[i] != natSnap[i] {
			t.Fatalf("snapshot word %d diverged: sim %#x, native %#x", i, simSnap[i], natSnap[i])
		}
	}
}

// TestNativeCoreWritePanics pins the read-only-core contract: a native
// session panics immediately on a write below the core watermark.
func TestNativeCoreWritePanics(t *testing.T) {
	_, cfg := nativeTestCfg()
	core := make([]Word, 2*cfg.B)
	sp, err := NewSessionSpace(cfg, WordsCore(core), int64(len(core)), "")
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("native write into the core did not panic")
		}
	}()
	sp.Write(0, 1)
}

// TestNativeShardOverSnapshot checks the worker-shard path: a native
// coordinator's snapshot feeds a native shard that reads the shared
// region and allocates private scratch above it.
func TestNativeShardOverSnapshot(t *testing.T) {
	_, cfg := nativeTestCfg()
	sp, err := newSpace(cfg, newMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	ext := sp.Alloc(int64(3 * cfg.B))
	for i := int64(0); i < ext.Len(); i++ {
		ext.Write(i, Word(i)+1000)
	}
	shared := sp.Snapshot(ext)
	shard := NewShardSpace(cfg, shared)
	defer shard.Close()

	in := shard.ExtentAt(0, ext.Len())
	priv := shard.Alloc(ext.Len())
	in.CopyTo(priv)
	for i := int64(0); i < ext.Len(); i++ {
		if got := priv.Read(i); got != Word(i)+1000 {
			t.Fatalf("shard word %d: got %d, want %d", i, got, i+1000)
		}
	}
	if st := shard.Stats(); st != (Stats{}) {
		t.Fatalf("native shard Stats not zero: %+v", st)
	}
}
