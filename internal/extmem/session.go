package extmem

import "fmt"

// This file lifts the shard machinery of shard.go one level up: from
// workers-within-a-query to queries-over-a-handle. A graph handle freezes
// its canonicalized region once (Snapshot at build time, or the flushed
// backing file for disk-backed graphs) into an immutable Core; every
// query then runs on its own session Space created by NewSessionSpace — a
// private M-word cache, private Stats, and a private scratch allocator
// layered over the shared core. The model is the same PEM picture shard.go
// simulates (P processors with private internal memories over a shared
// disk), so N sessions overlap freely while each one's I/O accounting is
// exactly the accounting a serialized run would produce: a session starts
// cold by construction — empty cache, zero stats, allocator at the core
// watermark — which is precisely the state the old per-handle machine was
// reset to between queries.

// Core is an immutable external-memory image — whole blocks — that
// session Spaces read below their private scratch. Implementations must
// be safe for concurrent ReadCoreBlock calls: every live session of a
// handle reads the same core.
type Core interface {
	// ReadCoreBlock fills dst (exactly B words) with block b of the core.
	ReadCoreBlock(b int64, dst []Word) error
}

// wordsCore serves a core from a native snapshot, as returned by
// Space.Snapshot. Reads are plain copies of a slice nobody writes, so
// concurrent use is safe.
type wordsCore []Word

func (c wordsCore) ReadCoreBlock(b int64, dst []Word) error {
	copy(dst, c[b*int64(len(dst)):])
	return nil
}

// WordsCore wraps a snapshot (whole blocks, as returned by Snapshot) as a
// Core.
func WordsCore(words []Word) Core { return wordsCore(words) }

// NativeCore is implemented by cores that can hand out their first n
// words as one contiguous read-only slice — the zero-copy entry to a
// native session (Config.Native). Cores without it are loaded block by
// block through ReadCoreBlock instead.
type NativeCore interface {
	// NativeWords returns words [0, n) of the core. The slice is shared
	// and must never be written; it stays valid for the core's lifetime.
	NativeWords(n int64) ([]Word, error)
}

func (c wordsCore) NativeWords(n int64) ([]Word, error) {
	if n <= int64(len(c)) {
		return c[:n], nil
	}
	out := make([]Word, n) // past-the-end core words read as zero
	copy(out, c)
	return out, nil
}

// nativeCoreWords resolves a core to a contiguous native slice of n
// words: zero-copy when the core supports it, a one-time block-by-block
// load otherwise.
func nativeCoreWords(core Core, n int64, b int) ([]Word, error) {
	if n == 0 {
		return nil, nil
	}
	if nc, ok := core.(NativeCore); ok {
		return nc.NativeWords(n)
	}
	out := make([]Word, n)
	for blk := int64(0); blk < n/int64(b); blk++ {
		if err := core.ReadCoreBlock(blk, out[blk*int64(b):(blk+1)*int64(b)]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sessionBackend serves the read-only core below coreBlocks and
// everything above it from a private scratch backend, so sessions never
// copy the shared data and cannot corrupt each other. Closing the backend
// closes only the private scratch; the core is owned by the handle.
type sessionBackend struct {
	core       Core
	coreBlocks int64
	priv       Backend
}

func (sb *sessionBackend) ReadBlock(b int64, dst []Word) error {
	if b < sb.coreBlocks {
		return sb.core.ReadCoreBlock(b, dst)
	}
	return sb.priv.ReadBlock(b-sb.coreBlocks, dst)
}

func (sb *sessionBackend) WriteBlock(b int64, src []Word) error {
	if b < sb.coreBlocks {
		return fmt.Errorf("extmem: write-back to read-only core block %d", b)
	}
	return sb.priv.WriteBlock(b-sb.coreBlocks, src)
}

func (sb *sessionBackend) Grow(words int64) error { return nil }

func (sb *sessionBackend) Sync() error { return sb.priv.Sync() }

func (sb *sessionBackend) Close() error { return sb.priv.Close() }

// NewSessionSpace creates a per-query session Space over an immutable
// core of coreWords words (whole blocks): addresses [0, coreWords) read
// from the shared core, and everything above is private scratch. The
// session has its own cfg.M-word block cache, its own Stats, and its own
// bump allocator starting at the core watermark; writing into the core is
// a logic error that panics at write-back time.
//
// scratchPath selects where private scratch spills: "" keeps it in
// process memory; a path backs it with a temp file at that location
// (created here, removed when the session Space is Closed), so scratch of
// disk-backed graphs spills to a real disk instead of RAM.
func NewSessionSpace(cfg Config, core Core, coreWords int64, scratchPath string) (*Space, error) {
	if cfg.B <= 0 || coreWords%int64(cfg.B) != 0 {
		return nil, fmt.Errorf("extmem: core of %d words is not whole blocks of B=%d", coreWords, cfg.B)
	}
	if cfg.Native {
		// Native sessions address the core as one read-only slice and keep
		// scratch in process memory regardless of scratchPath — there is
		// no block traffic to spill, so a scratch file would only cost.
		words, err := nativeCoreWords(core, coreWords, cfg.B)
		if err != nil {
			return nil, err
		}
		sp, err := newSpace(cfg, newMemBackend())
		if err != nil {
			return nil, err
		}
		sp.natCore = words
		sp.natBase = coreWords
		sp.size = coreWords
		return sp, nil
	}
	var priv Backend
	if scratchPath != "" {
		fb, err := newTempFileBackend(scratchPath)
		if err != nil {
			return nil, err
		}
		priv = fb
	} else {
		priv = newMemBackend()
	}
	sb := &sessionBackend{core: core, coreBlocks: coreWords / int64(cfg.B), priv: priv}
	sp, err := newSpace(cfg, sb)
	if err != nil {
		priv.Close()
		return nil, err
	}
	sp.size = coreWords
	return sp, nil
}
