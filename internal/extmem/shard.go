package extmem

import "fmt"

// This file provides the pieces of the parallel execution engine that
// belong to the memory model: snapshots of external memory and worker
// shards. A coordinating Space lays out some region (say, the color-sorted
// edge array), takes a Snapshot of it, and hands the snapshot to N worker
// shards created with NewShardSpace. Each shard is a full Space — its own
// block cache of M words, its own Stats, its own scratch allocator — whose
// external memory begins with the shared read-only region. The model this
// simulates is P processors with private internal memories of M words over
// a shared disk (the PEM model of Arge et al.); because every shard is
// charged its own block transfers against its own M-word cache, per-shard
// counts are exact and their sum is independent of how tasks are scheduled
// across shards.

// Snapshot returns the contents of the whole blocks covering ext as a
// native slice. Dirty cached blocks overlapping the extent are written
// back first and the write-backs are counted as usual — the sequential
// algorithm pays the same writes at eviction or Flush time. The extent's
// base must be block-aligned (any Alloc result is). The snapshot itself is
// free: it is the external-memory image handed to worker shards, not a
// transfer into internal memory; shards are charged block reads when they
// fetch from it.
func (s *Space) Snapshot(ext Extent) []Word {
	if ext.sp != s {
		panic("extmem: Snapshot of an extent from another Space")
	}
	if ext.n == 0 {
		return nil
	}
	if ext.base&int64(s.cfg.B-1) != 0 {
		panic(fmt.Sprintf("extmem: Snapshot extent base %d is not block-aligned", ext.base))
	}
	first := ext.base >> s.logB
	last := (ext.base + ext.n - 1) >> s.logB
	out := make([]Word, (last-first+1)<<s.logB)
	if s.native {
		// Straight word copy from the native address space; the tail of
		// the last block past the allocation watermark reads as zero.
		start := first << s.logB
		end := (last + 1) << s.logB
		if end > s.size {
			end = s.size
		}
		if start < s.natBase {
			hi := end
			if hi > s.natBase {
				hi = s.natBase
			}
			copy(out, s.natCore[start:hi])
		}
		if end > s.natBase {
			lo := start
			if lo < s.natBase {
				lo = s.natBase
			}
			copy(out[lo-start:], s.natScratch[lo-s.natBase:end-s.natBase])
		}
		return out
	}
	for b := first; b <= last; b++ {
		dst := out[(b-first)<<s.logB : (b-first+1)<<s.logB]
		if f, ok := s.table[b]; ok {
			if s.frames[f].dirty {
				s.writeBack(b, f)
				s.frames[f].dirty = false
			}
			copy(dst, s.data[int64(f)<<s.logB:(int64(f)+1)<<s.logB])
			continue
		}
		if _, virgin := s.virgin[b]; virgin {
			continue // never materialized: reads as zero
		}
		if err := s.backend.ReadBlock(b, dst); err != nil {
			panic(fmt.Sprintf("extmem: snapshot read block %d: %v", b, err))
		}
	}
	return out
}

// NewShardSpace creates a worker-private Space whose external memory
// begins with the given read-only shared region — addresses
// [0, len(shared)), which must be whole blocks, as returned by Snapshot —
// and continues with private scratch space served from process memory.
// The shard has its own cfg.M-word block cache and its own Stats; writing
// into the shared region is a logic error that panics at write-back time.
// It is the worker-level special case of NewSessionSpace (session.go),
// which layers the same machinery under whole queries.
func NewShardSpace(cfg Config, shared []Word) *Space {
	sp, err := NewSessionSpace(cfg, WordsCore(shared), int64(len(shared)), "")
	if err != nil {
		panic(err)
	}
	return sp
}

// ExtentAt returns the extent [base, base+n) of already-allocated space.
// It is the bridge by which worker shards address the shared region laid
// out by the coordinating Space: the shard sees the snapshot at address 0.
func (s *Space) ExtentAt(base, n int64) Extent {
	if base < 0 || n < 0 || base+n > s.size {
		panic(fmt.Sprintf("extmem: ExtentAt [%d,%d) outside allocated space [0,%d)", base, base+n, s.size))
	}
	return Extent{sp: s, base: base, n: n}
}

// Absorb credits the I/O activity of worker shards to this Space's own
// counters, so callers that measure a parallel run through a single
// Space's Stats (rather than aggregating per-worker vectors themselves)
// still see the full cost.
func (s *Space) Absorb(st Stats) {
	s.stats.Add(st)
}

// AddStatsVec merges two per-worker stat vectors index-wise and returns
// the result (the longer input, mutated). Phases of a parallel run may
// engage different worker counts; merging index-wise keeps one entry per
// worker slot while the vector sum — the quantity the engine contracts to
// be identical at every worker count — is preserved.
func AddStatsVec(a, b []Stats) []Stats {
	if len(b) > len(a) {
		a, b = b, a
	}
	for i := range b {
		a[i].Add(b[i])
	}
	return a
}

// Add accumulates o into s: transfer and word counters add, peaks take the
// maximum (high-water marks of distinct machines do not stack). It is how
// per-shard stats aggregate into a run total whose counters equal the
// one-worker run's exactly.
func (s *Stats) Add(o Stats) {
	s.BlockReads += o.BlockReads
	s.BlockWrites += o.BlockWrites
	s.WordReads += o.WordReads
	s.WordWrites += o.WordWrites
	if o.PeakLease > s.PeakLease {
		s.PeakLease = o.PeakLease
	}
	if o.PeakAlloc > s.PeakAlloc {
		s.PeakAlloc = o.PeakAlloc
	}
}
