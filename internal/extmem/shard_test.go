package extmem

import (
	"sync"
	"testing"
)

func shardCfg() Config { return Config{M: 1 << 8, B: 1 << 4, AllowShortCache: true} }

func TestSnapshotSeesFlushedAndCachedData(t *testing.T) {
	sp := NewSpace(shardCfg())
	ext := sp.Alloc(100)
	for i := int64(0); i < 100; i++ {
		ext.Write(i, Word(i*i+1))
	}
	// Force some blocks out of the cache so the snapshot must read the
	// backend, and leave others dirty in the cache.
	spill := sp.Alloc(int64(sp.Config().M) * 4)
	for i := int64(0); i < spill.Len(); i += int64(sp.Config().B) {
		spill.Write(i, 7)
	}
	snap := sp.Snapshot(ext)
	if len(snap)%sp.Config().B != 0 {
		t.Fatalf("snapshot length %d is not whole blocks", len(snap))
	}
	for i := int64(0); i < 100; i++ {
		if snap[i] != Word(i*i+1) {
			t.Fatalf("snapshot[%d] = %d, want %d", i, snap[i], i*i+1)
		}
	}
}

func TestSnapshotVirginBlocksReadZero(t *testing.T) {
	sp := NewSpace(shardCfg())
	// Dirty a region, release it, and allocate over the same addresses:
	// the stale backend content must not leak into the snapshot.
	mark := sp.Mark()
	junk := sp.Alloc(64)
	junk.Fill(0xdead)
	sp.Flush()
	sp.Release(mark)
	ext := sp.Alloc(64)
	ext.Write(0, 42) // materialize only the first block
	snap := sp.Snapshot(ext)
	if snap[0] != 42 {
		t.Fatalf("snap[0] = %d, want 42", snap[0])
	}
	for i := int64(sp.Config().B); i < 64; i++ {
		if snap[i] != 0 {
			t.Fatalf("virgin word %d reads %d, want 0", i, snap[i])
		}
	}
}

func TestSnapshotCountsDirtyWriteBacks(t *testing.T) {
	sp := NewSpace(shardCfg())
	ext := sp.Alloc(int64(sp.Config().B) * 2)
	ext.Fill(3)
	before := sp.Stats().BlockWrites
	sp.Snapshot(ext)
	after := sp.Stats().BlockWrites
	if after != before+2 {
		t.Errorf("snapshot of 2 dirty blocks counted %d writes, want 2", after-before)
	}
	// A second snapshot finds the blocks clean: no further writes.
	if sp.Snapshot(ext); sp.Stats().BlockWrites != after {
		t.Error("snapshot of clean blocks counted writes")
	}
}

func TestShardReadsSharedRegion(t *testing.T) {
	sp := NewSpace(shardCfg())
	ext := sp.Alloc(96)
	for i := int64(0); i < 96; i++ {
		ext.Write(i, Word(i+5))
	}
	snap := sp.Snapshot(ext)
	shard := NewShardSpace(shardCfg(), snap)
	view := shard.ExtentAt(0, 96)
	for i := int64(0); i < 96; i++ {
		if got := view.Read(i); got != Word(i+5) {
			t.Fatalf("shard read %d = %d, want %d", i, got, i+5)
		}
	}
	if r := shard.Stats().BlockReads; r != 6 {
		t.Errorf("cold scan of 6 shared blocks cost %d reads, want 6", r)
	}
}

func TestShardPrivateScratchIsIsolated(t *testing.T) {
	base := make([]Word, 32)
	for i := range base {
		base[i] = Word(100 + i)
	}
	cfg := shardCfg()
	a := NewShardSpace(cfg, base)
	b := NewShardSpace(cfg, base)
	ea := a.Alloc(50)
	eb := b.Alloc(50)
	ea.Fill(1)
	eb.Fill(2)
	a.Flush()
	b.Flush()
	a.DropCache()
	b.DropCache()
	for i := int64(0); i < 50; i++ {
		if ea.Read(i) != 1 || eb.Read(i) != 2 {
			t.Fatalf("scratch not isolated at %d: %d/%d", i, ea.Read(i), eb.Read(i))
		}
	}
	// The shared region is still intact underneath both.
	if a.ExtentAt(0, 32).Read(7) != 107 || b.ExtentAt(0, 32).Read(7) != 107 {
		t.Error("shared region corrupted by private scratch")
	}
}

func TestShardWriteToSharedRegionPanics(t *testing.T) {
	shard := NewShardSpace(shardCfg(), make([]Word, 32))
	defer func() {
		if recover() == nil {
			t.Error("write-back into the shared region did not panic")
		}
	}()
	shard.ExtentAt(0, 32).Write(0, 9)
	shard.Flush()
}

func TestShardStatsSumIndependentOfScheduling(t *testing.T) {
	// The same task set, run on 1 shard and on 4 concurrent shards, must
	// produce the same summed stats: per-task accounting is confined.
	cfg := shardCfg()
	shared := make([]Word, 256)
	for i := range shared {
		shared[i] = Word(i)
	}
	task := func(sp *Space, salt int64) {
		base := sp.Mark()
		scratch := sp.Alloc(128)
		view := sp.ExtentAt(0, 256)
		for i := int64(0); i < 128; i++ {
			scratch.Write(i, view.Read(2*i)+Word(salt))
		}
		var sum Word
		for i := int64(0); i < 128; i++ {
			sum += scratch.Read(i)
		}
		_ = sum
		sp.Release(base)
		sp.DropCache()
	}
	sequential := func() Stats {
		sp := NewShardSpace(cfg, shared)
		for salt := int64(0); salt < 8; salt++ {
			task(sp, salt)
		}
		return sp.Stats()
	}()
	var wg sync.WaitGroup
	shards := make([]*Space, 4)
	for w := range shards {
		shards[w] = NewShardSpace(cfg, shared)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for salt := int64(w); salt < 8; salt += 4 {
				task(shards[w], salt)
			}
		}(w)
	}
	wg.Wait()
	var total Stats
	for _, sp := range shards {
		total.Add(sp.Stats())
	}
	if total.BlockReads != sequential.BlockReads || total.BlockWrites != sequential.BlockWrites ||
		total.WordReads != sequential.WordReads || total.WordWrites != sequential.WordWrites {
		t.Errorf("scheduling changed the aggregate: 1 shard %+v, 4 shards %+v", sequential, total)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{BlockReads: 1, BlockWrites: 2, WordReads: 3, WordWrites: 4, PeakLease: 10, PeakAlloc: 100}
	b := Stats{BlockReads: 10, BlockWrites: 20, WordReads: 30, WordWrites: 40, PeakLease: 5, PeakAlloc: 500}
	a.Add(b)
	want := Stats{BlockReads: 11, BlockWrites: 22, WordReads: 33, WordWrites: 44, PeakLease: 10, PeakAlloc: 500}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}

func TestExtentAtBounds(t *testing.T) {
	sp := NewSpace(shardCfg())
	sp.Alloc(40)
	if got := sp.ExtentAt(8, 16); got.Len() != 16 || got.Base() != 8 {
		t.Errorf("ExtentAt gave base=%d len=%d", got.Base(), got.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range ExtentAt did not panic")
		}
	}()
	sp.ExtentAt(8, 1<<40)
}

func TestNewShardSpaceRejectsRaggedRegion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged shared region accepted")
		}
	}()
	NewShardSpace(shardCfg(), make([]Word, 17))
}
