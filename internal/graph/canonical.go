package graph

import (
	"repro/internal/emsort"
	"repro/internal/extmem"
)

// Canonical is a graph in the paper's working representation (Section
// 1.3): vertices renamed to their degree rank (ties broken by original
// id), each edge {u, v} stored as one word with u < v in rank order, and
// the edge extent sorted lexicographically — so for every vertex the list
// of neighbors that come after it in the ordering is stored consecutively.
type Canonical struct {
	// Edges is the sorted canonical edge extent.
	Edges extmem.Extent
	// NumVertices is the number of non-isolated vertices (= number of
	// ranks in use).
	NumVertices int
	// Degrees is an extent of NumVertices words; Degrees.Read(r) is the
	// degree of rank r. Because ranks are assigned in degree order, the
	// sequence is nondecreasing.
	Degrees extmem.Extent
	// RankToID maps ranks back to original vertex ids so emitted
	// triangles can be reported in the caller's id space. It is a native
	// O(V)-word convenience index for API boundaries; the enumeration
	// algorithms themselves never touch it.
	RankToID []uint32
}

// SortFunc sorts fixed-stride records of an extent by key of word 0; both
// emsort.SortRecords (cache-aware) and emsort.FunnelSortRecords /
// emsort.ObliviousSortRecords (cache-oblivious) satisfy it.
type SortFunc func(ext extmem.Extent, stride int, key emsort.Key)

// Canonicalize converts a raw edge list into canonical form using
// O(sort(E)) I/Os, as the paper assumes any input representation can be.
// Duplicate edges are removed. The sorter selects the sorting algorithm
// (pass emsort.SortRecords for cache-aware, emsort.FunnelSortRecords for
// cache-oblivious canonicalization).
func Canonicalize(sp *extmem.Space, raw extmem.Extent, sorter SortFunc) Canonical {
	m := raw.Len()
	if m == 0 {
		return Canonical{Edges: sp.Alloc(0), Degrees: sp.Alloc(0)}
	}

	// 1. Sort raw edges and deduplicate into `edges`.
	work := sp.Alloc(m)
	raw.CopyTo(work)
	sorter(work, 1, emsort.Identity)
	dedup := sp.Alloc(m)
	var e int64
	var prev extmem.Word
	for i := int64(0); i < m; i++ {
		w := work.Read(i)
		if i == 0 || w != prev {
			dedup.Write(e, w)
			e++
		}
		prev = w
	}
	edges := dedup.Prefix(e)

	// 2. Degree of each original id: double the endpoints and sort.
	ends := sp.Alloc(2 * e)
	for i := int64(0); i < e; i++ {
		w := edges.Read(i)
		ends.Write(2*i, extmem.Word(U(w)))
		ends.Write(2*i+1, extmem.Word(V(w)))
	}
	sorter(ends, 1, emsort.Identity)

	// 3. Run-length encode into (deg<<32 | id) records; sorting them gives
	// the degree order, and positions become ranks.
	byDeg := sp.Alloc(2 * e) // at most 2e distinct endpoints
	var nv int64
	for i := int64(0); i < 2*e; {
		id := ends.Read(i)
		j := i
		for j < 2*e && ends.Read(j) == id {
			j++
		}
		byDeg.Write(nv, extmem.Word(j-i)<<32|id)
		nv++
		i = j
	}
	verts := byDeg.Prefix(nv)
	sorter(verts, 1, emsort.Identity)

	// 4. Rank table sorted by id: records (id<<32 | rank).
	rankByID := sp.Alloc(nv)
	degrees := sp.Alloc(nv)
	rankToID := make([]uint32, nv)
	for r := int64(0); r < nv; r++ {
		w := verts.Read(r)
		id := uint32(w)
		deg := extmem.Word(w >> 32)
		rankByID.Write(r, extmem.Word(id)<<32|extmem.Word(r))
		degrees.Write(r, deg)
		rankToID[r] = id
	}
	sorter(rankByID, 1, emsort.Identity)

	// 5. Relabel: first the smaller endpoint (edges are sorted by it), by
	// a merge scan against rankByID; then re-sort by the second endpoint
	// and relabel it the same way.
	relabel := func(src extmem.Extent) extmem.Extent {
		// src holds (key<<32 | other) sorted by key; replace key by its
		// rank, producing (other<<32 | rank) for the next pass.
		out := sp.Alloc(src.Len())
		var ri int64
		for i := int64(0); i < src.Len(); i++ {
			w := src.Read(i)
			key := uint32(w >> 32)
			for uint32(rankByID.Read(ri)>>32) != key {
				ri++
			}
			rank := uint32(rankByID.Read(ri))
			out.Write(i, extmem.Word(uint32(w))<<32|extmem.Word(rank))
		}
		return out
	}
	pass1 := relabel(edges) // (v_orig << 32 | rank_u), sorted by... not sorted
	sorter(pass1, 1, emsort.Identity)
	pass2 := relabel(pass1) // (rank_u << 32 | rank_v)... keyed on rank order

	// 6. Normalize each edge to (min-rank, max-rank) and sort.
	canon := sp.Alloc(e)
	for i := int64(0); i < e; i++ {
		w := pass2.Read(i)
		canon.Write(i, Pack(uint32(w>>32), uint32(w)))
	}
	sorter(canon, 1, emsort.Identity)

	// Compact the result to the front of a fresh allocation region so the
	// caller can release everything above it... The scratch extents above
	// stay allocated; callers measuring space should Mark before calling.
	degOut := sp.Alloc(nv)
	degrees.CopyTo(degOut)
	edgeOut := sp.Alloc(e)
	canon.CopyTo(edgeOut)

	return Canonical{
		Edges:       edgeOut,
		NumVertices: int(nv),
		Degrees:     degOut,
		RankToID:    rankToID,
	}
}

// CanonicalizeList is a convenience wrapper: write a native EdgeList into
// the space and canonicalize it with the cache-aware sorter.
func CanonicalizeList(sp *extmem.Space, el EdgeList) Canonical {
	raw := el.Write(sp)
	return Canonicalize(sp, raw, emsort.SortRecords)
}
