package graph

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ctxutil"
	"repro/internal/extmem"
)

// This file is the delta-merge engine behind updatable graph handles: it
// turns the frozen canonicalization artifacts of one generation plus a
// sorted edge delta into the artifacts of the next generation, without
// re-canonicalizing from scratch. The contract is exact equivalence: the
// merged Edges/Degrees/RankToID are byte-for-byte the ones Canonicalize
// would produce for the updated edge set, because every derivation step
// below mirrors the corresponding canonicalization step on merged — not
// re-sorted — inputs:
//
//   - the updated edge set (E \ Remove) ∪ Add comes from one three-way
//     merge scan of the id-sorted streams, so it is the sorted dedup set
//     Canonicalize's step 1 would compute;
//   - degrees change only at delta endpoints, so the new (deg, id)
//     records come from run-length re-encoding the endpoint list under a
//     native O(delta) correction map (step 3's output, without step 2's
//     endpoint sort);
//   - the rank order changes only where (deg, id) records changed, and
//     the surviving records keep their relative order, so the new rank
//     sequence is one merge scan of the old rank order against the
//     removed/inserted records, and every unchanged vertex's new rank is
//     its old rank shifted by the records that moved past it (two native
//     binary searches — no re-sort of the vertex table);
//   - only the final relabeling (steps 5–6) pays sort(E), exactly the
//     two record sorts Canonicalize itself runs there.
//
// Total cost: O(sort(E_delta) + scan(E) + scan(V)) I/Os of merging plus
// the two relabeling sorts — strictly below a full rebuild, which
// additionally pays the raw edge sort, the endpoint-doubling sort, and
// both vertex-table sorts (measured by BenchmarkE18UpdateDelta).

// GenView addresses the previous generation's merge substrate — the four
// canonicalization artifacts located by CanonLayout — through a session
// Space over the generation's frozen core.
type GenView struct {
	// IDEdges is the deduplicated edge set packed by original id, sorted.
	IDEdges extmem.Extent
	// Ends is the sorted endpoint-occurrence list (two words per edge).
	Ends extmem.Extent
	// ByDeg is the (deg<<32|id) vertex records in rank order.
	ByDeg extmem.Extent
	// RankByID is the (id<<32|rank) table in id order.
	RankByID extmem.Extent
}

// Merged carries the next generation's artifacts, living in the merge
// session's scratch until the caller copies them into the new image.
type Merged struct {
	// IDEdges, Ends, ByDeg, RankByID are the next generation's merge
	// substrate (see GenView).
	IDEdges, Ends, ByDeg, RankByID extmem.Extent
	// Degrees is the by-rank degree table (the DegOut content).
	Degrees extmem.Extent
	// Edges is the canonical rank-packed sorted edge set (the EdgeOut
	// content).
	Edges extmem.Extent
	// NumVertices is the updated non-isolated vertex count.
	NumVertices int
	// RankToID maps new ranks to original ids.
	RankToID []uint32
	// Added and Removed count the effective edge changes: edges that were
	// absent and are now present, and vice versa.
	Added, Removed int64
	// AddedEdges and RemovedEdges are the effective changes themselves,
	// packed in original-id space and sorted (the merge scan visits edges
	// in sorted order). They are native O(delta)-word slices collected for
	// differential consumers at no extra I/O; their lengths equal Added
	// and Removed.
	AddedEdges, RemovedEdges []extmem.Word
}

// SortErrFunc sorts single-word records by Identity key, reporting a
// cancellation error; MergeDelta runs all its record sorts through it so
// the caller chooses the engine (and collects per-worker statistics).
type SortErrFunc func(ext extmem.Extent) error

// noRank marks a vrec entry whose vertex did not exist in the previous
// generation.
const noRank = ^extmem.Word(0)

// MergeDelta merges sorted-and-packed add/remove word lists into the
// previous generation's artifacts, producing the next generation's. The
// updated edge set is (old \ removes) ∪ adds: removing an absent edge
// and adding a present one are no-ops, and an edge in both lists ends up
// present. adds and removes may contain duplicates; self-loops must have
// been dropped by the caller.
func MergeDelta(ctx context.Context, sp *extmem.Space, old GenView, adds, removes []extmem.Word, sorter SortErrFunc) (Merged, error) {
	eOld := old.IDEdges.Len()
	nvOld := old.ByDeg.Len()

	// Native merge state is O(delta): the per-endpoint degree corrections
	// plus the removed/inserted vertex records derived from them.
	release := sp.LeaseAtMost(6*(len(adds)+len(removes)) + 16)
	defer release()

	// Sort the delta. The streams are consumed with duplicate-skipping
	// cursors, so no separate dedup pass is needed.
	addExt := sp.Alloc(int64(len(adds)))
	addExt.Store(adds)
	if err := sorter(addExt); err != nil {
		return Merged{}, err
	}
	remExt := sp.Alloc(int64(len(removes)))
	remExt.Store(removes)
	if err := sorter(remExt); err != nil {
		return Merged{}, err
	}

	// Merge the updated edge set and collect the degree corrections.
	var out Merged
	es := mergeCursor{ext: old.IDEdges}
	as := mergeCursor{ext: addExt}
	rs := mergeCursor{ext: remExt}
	newIDEdges := sp.Alloc(eOld + int64(len(adds)))
	ddelta := make(map[uint32]int32)
	var eNew int64
	for {
		v, ok := minHead(&es, &as, &rs)
		if !ok {
			break
		}
		inE, inA, inR := es.headIs(v), as.headIs(v), rs.headIs(v)
		present := inA || (inE && !inR)
		if present {
			newIDEdges.Write(eNew, v)
			eNew++
		}
		if present && !inE {
			out.Added++
			out.AddedEdges = append(out.AddedEdges, v)
			ddelta[U(v)]++
			ddelta[V(v)]++
		} else if !present && inE {
			out.Removed++
			out.RemovedEdges = append(out.RemovedEdges, v)
			ddelta[U(v)]--
			ddelta[V(v)]--
		}
		es.skipPast(v)
		as.skipPast(v)
		rs.skipPast(v)
	}
	if err := ctxutil.Err(ctx); err != nil {
		return Merged{}, err
	}

	// Changed vertices: endpoints whose degree actually moved. (An id
	// that gained one edge and lost another keeps its record.)
	changed := make([]uint32, 0, len(ddelta))
	for id, dd := range ddelta {
		if dd != 0 {
			changed = append(changed, id)
		} else {
			delete(ddelta, id)
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })

	// Re-derive the vertex table in id order: run-length decode the old
	// endpoint list (lockstep with the old rank table, which lists the
	// same ids in the same order), apply the corrections, and emit the
	// new endpoint list plus a scratch record per surviving vertex —
	// (newdeg<<32|id, old rank) — for the rank re-derivation below.
	newEnds := sp.Alloc(2 * eNew)
	vrec := sp.Alloc(2 * (nvOld + int64(len(changed))))
	var removedRecs, insertedRecs []extmem.Word
	var nvNew, endPos int64
	ei, ki := int64(0), int64(0)
	ci := 0
	for ei < old.Ends.Len() || ci < len(changed) {
		var id uint32
		fromOld := false
		if ei < old.Ends.Len() {
			id = uint32(old.Ends.Read(ei))
			fromOld = true
		}
		if ci < len(changed) && (!fromOld || changed[ci] < id) {
			id = changed[ci]
			fromOld = ei < old.Ends.Len() && uint32(old.Ends.Read(ei)) == id
		}
		var oldDeg int64
		oldRank := noRank
		if fromOld {
			for ei < old.Ends.Len() && uint32(old.Ends.Read(ei)) == id {
				oldDeg++
				ei++
			}
			rec := old.RankByID.Read(ki)
			ki++
			if uint32(rec>>32) != id {
				panic(fmt.Sprintf("graph: rank table out of step: id %d vs record %d", id, rec>>32))
			}
			oldRank = extmem.Word(uint32(rec))
		}
		if ci < len(changed) && changed[ci] == id {
			ci++
		}
		newDeg := oldDeg + int64(ddelta[id])
		if newDeg < 0 {
			panic(fmt.Sprintf("graph: negative merged degree for id %d", id))
		}
		if newDeg > 0 {
			vrec.Write(2*nvNew, extmem.Word(newDeg)<<32|extmem.Word(id))
			vrec.Write(2*nvNew+1, oldRank)
			nvNew++
			for j := int64(0); j < newDeg; j++ {
				newEnds.Write(endPos, extmem.Word(id))
				endPos++
			}
		}
		if ddelta[id] != 0 {
			if oldDeg > 0 {
				removedRecs = append(removedRecs, extmem.Word(oldDeg)<<32|extmem.Word(id))
			}
			if newDeg > 0 {
				insertedRecs = append(insertedRecs, extmem.Word(newDeg)<<32|extmem.Word(id))
			}
		}
	}
	if endPos != 2*eNew {
		panic(fmt.Sprintf("graph: merged degree sum %d != 2*%d edges", endPos, eNew))
	}
	sortWords(removedRecs)
	sortWords(insertedRecs)
	if err := ctxutil.Err(ctx); err != nil {
		return Merged{}, err
	}

	// New rank order: the old rank order minus the removed records plus
	// the inserted ones, merged at their sorted positions. Vertex records
	// are unique (the id is in the low bits), so strict comparison
	// places every insertion exactly.
	newByDeg := sp.Alloc(nvNew)
	newDegrees := sp.Alloc(nvNew)
	rankToID := make([]uint32, nvNew)
	changedRank := make(map[uint32]uint32, len(changed))
	var r int64
	ip := 0
	emit := func(w extmem.Word) {
		newByDeg.Write(r, w)
		newDegrees.Write(r, w>>32)
		rankToID[r] = uint32(w)
		if ddelta[uint32(w)] != 0 {
			changedRank[uint32(w)] = uint32(r)
		}
		r++
	}
	removedSet := make(map[extmem.Word]struct{}, len(removedRecs))
	for _, w := range removedRecs {
		removedSet[w] = struct{}{}
	}
	for i := int64(0); i < nvOld; i++ {
		w := old.ByDeg.Read(i)
		for ip < len(insertedRecs) && insertedRecs[ip] < w {
			emit(insertedRecs[ip])
			ip++
		}
		if _, rm := removedSet[w]; rm {
			continue
		}
		emit(w)
	}
	for ; ip < len(insertedRecs); ip++ {
		emit(insertedRecs[ip])
	}
	if r != nvNew {
		panic(fmt.Sprintf("graph: rank merge produced %d vertices, want %d", r, nvNew))
	}

	// New id→rank table, in id order (so it is already "sorted by id" as
	// Canonicalize leaves it): a changed vertex's rank was recorded
	// during the rank merge; an unchanged vertex's record w kept its
	// place relative to every other survivor, so its rank moved by
	// exactly the inserted-minus-removed records ordered below w.
	newRankByID := sp.Alloc(nvNew)
	for k := int64(0); k < nvNew; k++ {
		w := vrec.Read(2 * k)
		id := uint32(w)
		var rank uint32
		if ddelta[id] != 0 {
			rank = changedRank[id]
		} else {
			oldRank := int64(uint32(vrec.Read(2*k + 1)))
			rank = uint32(oldRank - countBelow(removedRecs, w) + countBelow(insertedRecs, w))
		}
		newRankByID.Write(k, extmem.Word(id)<<32|extmem.Word(rank))
	}
	if err := ctxutil.Err(ctx); err != nil {
		return Merged{}, err
	}

	// Relabel the merged edges into rank space — the mirror of
	// Canonicalize's steps 5 and 6, and the only part of the merge that
	// sorts at sort(E) scale.
	relabel := func(src extmem.Extent) extmem.Extent {
		dst := sp.Alloc(src.Len())
		var ri int64
		for i := int64(0); i < src.Len(); i++ {
			w := src.Read(i)
			key := uint32(w >> 32)
			for uint32(newRankByID.Read(ri)>>32) != key {
				ri++
			}
			rank := uint32(newRankByID.Read(ri))
			dst.Write(i, extmem.Word(uint32(w))<<32|extmem.Word(rank))
		}
		return dst
	}
	edges := newIDEdges.Prefix(eNew)
	pass1 := relabel(edges)
	if err := sorter(pass1); err != nil {
		return Merged{}, err
	}
	pass2 := relabel(pass1)
	canon := sp.Alloc(eNew)
	for i := int64(0); i < eNew; i++ {
		w := pass2.Read(i)
		canon.Write(i, Pack(uint32(w>>32), uint32(w)))
	}
	if err := sorter(canon); err != nil {
		return Merged{}, err
	}

	out.IDEdges = edges
	out.Ends = newEnds
	out.ByDeg = newByDeg
	out.RankByID = newRankByID
	out.Degrees = newDegrees
	out.Edges = canon
	out.NumVertices = int(nvNew)
	out.RankToID = rankToID
	return out, nil
}

// mergeCursor walks a sorted extent, skipping duplicate records.
type mergeCursor struct {
	ext extmem.Extent
	i   int64
}

func (c *mergeCursor) head() (extmem.Word, bool) {
	if c.i >= c.ext.Len() {
		return 0, false
	}
	return c.ext.Read(c.i), true
}

func (c *mergeCursor) headIs(v extmem.Word) bool {
	w, ok := c.head()
	return ok && w == v
}

func (c *mergeCursor) skipPast(v extmem.Word) {
	for {
		w, ok := c.head()
		if !ok || w != v {
			return
		}
		c.i++
	}
}

// minHead returns the smallest head value across the cursors.
func minHead(cs ...*mergeCursor) (extmem.Word, bool) {
	var best extmem.Word
	found := false
	for _, c := range cs {
		if w, ok := c.head(); ok && (!found || w < best) {
			best, found = w, true
		}
	}
	return best, found
}

func sortWords(ws []extmem.Word) {
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
}

// countBelow counts the records of the sorted slice strictly below w.
func countBelow(ws []extmem.Word, w extmem.Word) int64 {
	return int64(sort.Search(len(ws), func(i int) bool { return ws[i] >= w }))
}
