package graph

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/emsort"
	"repro/internal/extmem"
)

// extentWords reads an extent into a native slice for comparison.
func extentWords(ext extmem.Extent) []extmem.Word {
	out := make([]extmem.Word, ext.Len())
	for i := int64(0); i < ext.Len(); i++ {
		out[i] = ext.Read(i)
	}
	return out
}

// canonSet computes the deduplicated sorted edge set of an EdgeList
// natively.
func canonSet(el EdgeList) []extmem.Word {
	set := map[extmem.Word]struct{}{}
	for _, e := range el.Edges {
		set[e] = struct{}{}
	}
	out := make([]extmem.Word, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestLayoutMatchesCanonicalize pins LayoutFor to the allocation sequence
// Canonicalize actually performs — the invariant every Update rests on:
// the returned extents sit at the computed bases, the watermark matches,
// and the four merge-substrate regions hold exactly the artifacts
// MergeDelta reads (id-sorted edges, sorted endpoints, rank-ordered
// vertex records, the id→rank table).
func TestLayoutMatchesCanonicalize(t *testing.T) {
	cases := []EdgeList{
		Clique(9),
		GNM(40, 160, 7),
		GNM(300, 900, 3),
		{}, // empty input: the all-zero layout
	}
	// Duplicate edges in the raw input make m > e.
	withDups := GNM(50, 200, 11)
	withDups.Edges = append(withDups.Edges, withDups.Edges[:37]...)
	cases = append(cases, withDups)

	for ci, el := range cases {
		sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
		cg := CanonicalizeList(sp, el)
		lay := LayoutFor(int64(el.Len()), cg.Edges.Len(), int64(cg.NumVertices), sp.Config().B)
		if cg.Edges.Base() != lay.EdgeOut || cg.Degrees.Base() != lay.DegOut || sp.Mark() != lay.Mark {
			t.Fatalf("case %d: layout drift: edges %d/%d degrees %d/%d mark %d/%d",
				ci, cg.Edges.Base(), lay.EdgeOut, cg.Degrees.Base(), lay.DegOut, sp.Mark(), lay.Mark)
		}
		if el.Len() == 0 {
			continue
		}

		set := canonSet(el)
		e := int64(len(set))
		if cg.Edges.Len() != e {
			t.Fatalf("case %d: %d canonical edges, want %d", ci, cg.Edges.Len(), e)
		}
		got := extentWords(sp.ExtentAt(lay.Dedup, e))
		for i, w := range got {
			if w != set[i] {
				t.Fatalf("case %d: dedup region word %d = %x, want %x", ci, i, w, set[i])
			}
		}

		var ends []extmem.Word
		deg := map[uint32]int{}
		for _, w := range set {
			ends = append(ends, extmem.Word(U(w)), extmem.Word(V(w)))
			deg[U(w)]++
			deg[V(w)]++
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		for i, w := range extentWords(sp.ExtentAt(lay.Ends, 2*e)) {
			if w != ends[i] {
				t.Fatalf("case %d: ends region word %d = %d, want %d", ci, i, w, ends[i])
			}
		}

		var recs []extmem.Word
		for id, d := range deg {
			recs = append(recs, extmem.Word(d)<<32|extmem.Word(id))
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i] < recs[j] })
		nv := int64(len(recs))
		if int64(cg.NumVertices) != nv {
			t.Fatalf("case %d: %d vertices, want %d", ci, cg.NumVertices, nv)
		}
		for i, w := range extentWords(sp.ExtentAt(lay.ByDeg, nv)) {
			if w != recs[i] {
				t.Fatalf("case %d: byDeg region word %d = %x, want %x", ci, i, w, recs[i])
			}
		}

		var byID []extmem.Word
		for r, w := range recs {
			byID = append(byID, extmem.Word(uint32(w))<<32|extmem.Word(r))
		}
		sort.Slice(byID, func(i, j int) bool { return byID[i] < byID[j] })
		for i, w := range extentWords(sp.ExtentAt(lay.RankByID, nv)) {
			if w != byID[i] {
				t.Fatalf("case %d: rankByID region word %d = %x, want %x", ci, i, w, byID[i])
			}
		}
	}
}

// applyDelta computes (set \ removes) ∪ adds natively.
func applyDelta(set, adds, removes []extmem.Word) []extmem.Word {
	m := map[extmem.Word]struct{}{}
	for _, w := range set {
		m[w] = struct{}{}
	}
	for _, w := range removes {
		delete(m, w)
	}
	for _, w := range adds {
		m[w] = struct{}{}
	}
	out := make([]extmem.Word, 0, len(m))
	for w := range m {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestMergeDeltaMatchesRecanonicalization: for random base graphs and
// random add/remove mixes, every artifact MergeDelta produces must be
// word-identical to what a from-scratch canonicalization of the updated
// edge set produces — including the merge substrate the *next* delta
// would consume, so equivalence survives arbitrary update sequences.
func TestMergeDeltaMatchesRecanonicalization(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seqSorter := func(ext extmem.Extent) error {
		emsort.SortRecords(ext, 1, emsort.Identity)
		return nil
	}

	for trial := 0; trial < 12; trial++ {
		base := GNM(60+trial*10, 180+trial*40, uint64(trial))
		sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
		cg := CanonicalizeList(sp, base)
		e, nv := cg.Edges.Len(), int64(cg.NumVertices)
		lay := LayoutFor(int64(base.Len()), e, nv, sp.Config().B)
		view := GenView{
			IDEdges:  sp.ExtentAt(lay.Dedup, e),
			Ends:     sp.ExtentAt(lay.Ends, 2*e),
			ByDeg:    sp.ExtentAt(lay.ByDeg, nv),
			RankByID: sp.ExtentAt(lay.RankByID, nv),
		}

		set := canonSet(base)
		var adds, removes []extmem.Word
		// Removals of existing edges (some repeated), removals of absent
		// edges (no-ops), adds of new edges (some from brand-new vertex
		// ids), adds of already-present edges (no-ops), and edges in both
		// lists (add wins).
		for i := 0; i < 10 && len(set) > 0; i++ {
			removes = append(removes, set[rng.Intn(len(set))])
		}
		removes = append(removes, removes[0], Pack(9000, 9001))
		for i := 0; i < 12; i++ {
			adds = append(adds, Pack(uint32(rng.Intn(90)), uint32(rng.Intn(90)+1000+trial)))
		}
		adds = append(adds, set[rng.Intn(len(set))], adds[0], removes[1])

		m, err := MergeDelta(nil, sp, view, adds, removes, seqSorter)
		if err != nil {
			t.Fatal(err)
		}

		want := applyDelta(set, adds, removes)
		var wantAdded, wantRemoved int64
		inOld := map[extmem.Word]struct{}{}
		for _, w := range set {
			inOld[w] = struct{}{}
		}
		inNew := map[extmem.Word]struct{}{}
		for _, w := range want {
			inNew[w] = struct{}{}
		}
		for _, w := range want {
			if _, ok := inOld[w]; !ok {
				wantAdded++
			}
		}
		for _, w := range set {
			if _, ok := inNew[w]; !ok {
				wantRemoved++
			}
		}
		if m.Added != wantAdded || m.Removed != wantRemoved {
			t.Fatalf("trial %d: effective counts %d/%d, want %d/%d", trial, m.Added, m.Removed, wantAdded, wantRemoved)
		}

		// Reference: canonicalize the updated set from scratch.
		var el2 EdgeList
		for _, w := range want {
			el2.Add(U(w), V(w))
		}
		sp2 := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
		cg2 := CanonicalizeList(sp2, el2)
		lay2 := LayoutFor(int64(el2.Len()), cg2.Edges.Len(), int64(cg2.NumVertices), sp2.Config().B)

		if m.NumVertices != cg2.NumVertices {
			t.Fatalf("trial %d: %d vertices, want %d", trial, m.NumVertices, cg2.NumVertices)
		}
		if len(m.RankToID) != len(cg2.RankToID) {
			t.Fatalf("trial %d: rankToID length %d, want %d", trial, len(m.RankToID), len(cg2.RankToID))
		}
		for i := range m.RankToID {
			if m.RankToID[i] != cg2.RankToID[i] {
				t.Fatalf("trial %d: rankToID[%d] = %d, want %d", trial, i, m.RankToID[i], cg2.RankToID[i])
			}
		}
		compare := func(name string, got extmem.Extent, wantExt extmem.Extent) {
			gw, ww := extentWords(got), extentWords(wantExt)
			if len(gw) != len(ww) {
				t.Fatalf("trial %d: %s length %d, want %d", trial, name, len(gw), len(ww))
			}
			for i := range gw {
				if gw[i] != ww[i] {
					t.Fatalf("trial %d: %s word %d = %x, want %x", trial, name, i, gw[i], ww[i])
				}
			}
		}
		e2, nv2 := cg2.Edges.Len(), int64(cg2.NumVertices)
		compare("edges", m.Edges, cg2.Edges)
		compare("degrees", m.Degrees, cg2.Degrees)
		compare("idEdges", m.IDEdges, sp2.ExtentAt(lay2.Dedup, e2))
		compare("ends", m.Ends, sp2.ExtentAt(lay2.Ends, 2*e2))
		compare("byDeg", m.ByDeg, sp2.ExtentAt(lay2.ByDeg, nv2))
		compare("rankByID", m.RankByID, sp2.ExtentAt(lay2.RankByID, nv2))
	}
}

// TestMergeDeltaDegenerate covers the update edge cases: a delta that
// removes every edge (empty next generation) and a delta applied to an
// empty graph.
func TestMergeDeltaDegenerate(t *testing.T) {
	seqSorter := func(ext extmem.Extent) error {
		emsort.SortRecords(ext, 1, emsort.Identity)
		return nil
	}

	base := Clique(5)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
	cg := CanonicalizeList(sp, base)
	lay := LayoutFor(int64(base.Len()), cg.Edges.Len(), int64(cg.NumVertices), sp.Config().B)
	view := GenView{
		IDEdges:  sp.ExtentAt(lay.Dedup, cg.Edges.Len()),
		Ends:     sp.ExtentAt(lay.Ends, 2*cg.Edges.Len()),
		ByDeg:    sp.ExtentAt(lay.ByDeg, int64(cg.NumVertices)),
		RankByID: sp.ExtentAt(lay.RankByID, int64(cg.NumVertices)),
	}
	m, err := MergeDelta(nil, sp, view, nil, canonSet(base), seqSorter)
	if err != nil {
		t.Fatal(err)
	}
	if m.Edges.Len() != 0 || m.NumVertices != 0 || m.Removed != 10 || m.Added != 0 {
		t.Fatalf("remove-all: edges=%d nv=%d added=%d removed=%d", m.Edges.Len(), m.NumVertices, m.Added, m.Removed)
	}

	// Empty old generation: everything added is new.
	sp3 := extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
	empty := GenView{IDEdges: sp3.Alloc(0), Ends: sp3.Alloc(0), ByDeg: sp3.Alloc(0), RankByID: sp3.Alloc(0)}
	m3, err := MergeDelta(nil, sp3, empty, []extmem.Word{Pack(1, 2), Pack(2, 3), Pack(1, 2)}, nil, seqSorter)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Added != 2 || m3.Edges.Len() != 2 || m3.NumVertices != 3 {
		t.Fatalf("from-empty: added=%d edges=%d nv=%d", m3.Added, m3.Edges.Len(), m3.NumVertices)
	}
}
