package graph

import (
	"math"
	"sort"

	"repro/internal/hashing"
)

// Clique returns the complete graph K_n: the paper's lower-bound instance,
// with E = n(n−1)/2 edges and t = C(n,3) = Θ(E^1.5) triangles.
func Clique(n int) EdgeList {
	el := EdgeList{NumVertices: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			el.Edges = append(el.Edges, PackOrdered(uint32(u), uint32(v)))
		}
	}
	return el
}

// GNM returns an Erdős–Rényi random graph with n vertices and m distinct
// edges, deterministic in seed.
func GNM(n, m int, seed uint64) EdgeList {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	rng := hashing.NewRand(seed)
	el := EdgeList{NumVertices: n}
	seen := make(map[uint64]struct{}, m*2)
	for len(el.Edges) < m {
		u := uint32(rng.Intn(int64(n)))
		v := uint32(rng.Intn(int64(n)))
		if u == v {
			continue
		}
		e := Pack(u, v)
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		el.Edges = append(el.Edges, e)
	}
	return el
}

// PowerLaw returns a Chung–Lu random graph: vertex i has expected degree
// proportional to (i+1)^(−1/(exponent−1)), normalized so the expected edge
// count is m. Heavy-tailed degree sequences are where the paper's
// high-degree-vertex handling (Step 1 of the algorithms) matters.
func PowerLaw(n, m int, exponent float64, seed uint64) EdgeList {
	if exponent <= 1 {
		panic("graph: power-law exponent must exceed 1")
	}
	rng := hashing.NewRand(seed)
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -1/(exponent-1))
		total += w[i]
	}
	// Cumulative distribution for endpoint sampling.
	cum := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / total
		cum[i] = acc
	}
	pick := func() uint32 {
		x := float64(rng.Next()>>11) / (1 << 53)
		return uint32(sort.SearchFloat64s(cum, x))
	}
	el := EdgeList{NumVertices: n}
	seen := make(map[uint64]struct{}, m*2)
	attempts := 0
	for len(el.Edges) < m && attempts < 50*m {
		attempts++
		u, v := pick(), v2(pick, n)
		if u == v {
			continue
		}
		e := Pack(u, v)
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		el.Edges = append(el.Edges, e)
	}
	return el
}

func v2(pick func() uint32, n int) uint32 {
	v := pick()
	if int(v) >= n {
		v = uint32(n - 1)
	}
	return v
}

// Sells models the paper's introductory database example: a ternary
// relation Sells(salesperson, brand, productType) in 5th normal form,
// decomposed into three bipartite graphs. Salespeople are vertices
// [0, nS), brands [nS, nS+nB), product types [nS+nB, nS+nB+nT). Each
// salesperson carries `per` brands and `per` product types; a fraction
// `avail` of all brand×type pairs is available. Every triangle is one row
// of the reconstructed Sells relation.
func Sells(nS, nB, nT, per int, avail float64, seed uint64) EdgeList {
	rng := hashing.NewRand(seed)
	el := EdgeList{NumVertices: nS + nB + nT}
	bOff, tOff := uint32(nS), uint32(nS+nB)
	seen := make(map[uint64]struct{})
	add := func(a, b uint32) {
		e := Pack(a, b)
		if _, dup := seen[e]; !dup {
			seen[e] = struct{}{}
			el.Edges = append(el.Edges, e)
		}
	}
	for s := uint32(0); s < uint32(nS); s++ {
		for i := 0; i < per; i++ {
			add(s, bOff+uint32(rng.Intn(int64(nB))))
			add(s, tOff+uint32(rng.Intn(int64(nT))))
		}
	}
	for b := uint32(0); b < uint32(nB); b++ {
		for t := uint32(0); t < uint32(nT); t++ {
			if float64(rng.Next()>>11)/(1<<53) < avail {
				add(bOff+b, tOff+t)
			}
		}
	}
	return el
}

// BipartiteRandom returns a random bipartite graph (hence triangle-free):
// the adversarial no-output workload.
func BipartiteRandom(n1, n2, m int, seed uint64) EdgeList {
	rng := hashing.NewRand(seed)
	el := EdgeList{NumVertices: n1 + n2}
	seen := make(map[uint64]struct{}, m*2)
	max := int64(n1) * int64(n2)
	if int64(m) > max {
		m = int(max)
	}
	for len(el.Edges) < m {
		u := uint32(rng.Intn(int64(n1)))
		v := uint32(n1) + uint32(rng.Intn(int64(n2)))
		e := Pack(u, v)
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		el.Edges = append(el.Edges, e)
	}
	return el
}

// Grid returns an r×c grid graph: sparse, triangle-free, maximum degree 4.
func Grid(r, c int) EdgeList {
	el := EdgeList{NumVertices: r * c}
	id := func(i, j int) uint32 { return uint32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				el.Edges = append(el.Edges, Pack(id(i, j), id(i, j+1)))
			}
			if i+1 < r {
				el.Edges = append(el.Edges, Pack(id(i, j), id(i+1, j)))
			}
		}
	}
	return el
}

// PlantedClique returns GNM(n, m) plus a clique on k random vertices: a
// controlled triangle-dense spot inside a sparse background.
func PlantedClique(n, m, k int, seed uint64) EdgeList {
	el := GNM(n, m, seed)
	rng := hashing.NewRand(seed ^ 0xc11c)
	seen := make(map[uint64]struct{}, len(el.Edges))
	for _, e := range el.Edges {
		seen[e] = struct{}{}
	}
	members := make([]uint32, 0, k)
	chosen := map[uint32]bool{}
	for len(members) < k && len(members) < n {
		v := uint32(rng.Intn(int64(n)))
		if !chosen[v] {
			chosen[v] = true
			members = append(members, v)
		}
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			e := Pack(members[i], members[j])
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				el.Edges = append(el.Edges, e)
			}
		}
	}
	return el
}

// RMAT returns a recursive-matrix random graph (Chakrabarti et al.) with
// 2^scale vertices and about m distinct edges; skewed like real networks.
func RMAT(scale, m int, seed uint64) EdgeList {
	rng := hashing.NewRand(seed)
	n := 1 << uint(scale)
	el := EdgeList{NumVertices: n}
	seen := make(map[uint64]struct{}, m*2)
	const a, b, c = 0.57, 0.19, 0.19 // d = 0.05
	attempts := 0
	for len(el.Edges) < m && attempts < 100*m {
		attempts++
		var u, v uint32
		for bit := 0; bit < scale; bit++ {
			x := float64(rng.Next()>>11) / (1 << 53)
			switch {
			case x < a:
				// upper-left: no bits
			case x < a+b:
				v |= 1 << uint(bit)
			case x < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		e := Pack(u, v)
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		el.Edges = append(el.Edges, e)
	}
	return el
}
