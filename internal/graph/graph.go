// Package graph provides the graph representation the paper works with:
// simple undirected graphs whose edges are packed one per machine word,
// vertices ordered by degree, and edges sorted lexicographically (Section
// 1.3 of the paper). It also supplies deterministic workload generators
// and an in-memory reference enumerator used as the correctness oracle.
package graph

import (
	"fmt"

	"repro/internal/extmem"
)

// Pack packs an undirected edge into one word with the smaller endpoint in
// the high 32 bits, so that uint64 order is lexicographic (u, v) order.
func Pack(a, b uint32) extmem.Word {
	if a > b {
		a, b = b, a
	}
	return extmem.Word(a)<<32 | extmem.Word(b)
}

// PackOrdered packs (u, v) assuming u < v already holds.
func PackOrdered(u, v uint32) extmem.Word {
	return extmem.Word(u)<<32 | extmem.Word(v)
}

// U returns the smaller endpoint of a packed edge.
func U(e extmem.Word) uint32 { return uint32(e >> 32) }

// V returns the larger endpoint of a packed edge.
func V(e extmem.Word) uint32 { return uint32(e) }

// EdgeList is a graph in native memory, as produced by the generators:
// normalized (u < v), possibly unsorted, with vertex ids in [0, NumVertices).
type EdgeList struct {
	NumVertices int
	Edges       []extmem.Word
}

// Len returns the number of edges.
func (el EdgeList) Len() int { return len(el.Edges) }

// Add appends the undirected edge {a, b}, dropping self-loops.
func (el *EdgeList) Add(a, b uint32) {
	if a == b {
		return
	}
	el.Edges = append(el.Edges, Pack(a, b))
	if int(a) >= el.NumVertices {
		el.NumVertices = int(a) + 1
	}
	if int(b) >= el.NumVertices {
		el.NumVertices = int(b) + 1
	}
}

// Write copies the edge list into freshly allocated external memory.
func (el EdgeList) Write(sp *extmem.Space) extmem.Extent {
	ext := sp.Alloc(int64(len(el.Edges)))
	for i, e := range el.Edges {
		ext.Write(int64(i), e)
	}
	return ext
}

// Triple is a triangle {V1 < V2 < V3}. Following Section 1.3, V1 is the
// cone vertex and {V2, V3} the pivot edge.
type Triple struct {
	V1, V2, V3 uint32
}

// MakeTriple sorts three distinct vertices into a Triple.
func MakeTriple(a, b, c uint32) Triple {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triple{a, b, c}
}

func (t Triple) String() string {
	return fmt.Sprintf("{%d,%d,%d}", t.V1, t.V2, t.V3)
}

// Emit receives each enumerated triangle exactly once, with v1 < v2 < v3.
// All three edges of the triangle are resident in (simulated) internal
// memory at the moment of the call, per the paper's enumeration contract.
type Emit func(v1, v2, v3 uint32)

// Counter returns an Emit that counts triangles into *n.
func Counter(n *uint64) Emit {
	return func(_, _, _ uint32) { *n++ }
}

// Collector returns an Emit that appends triples to *out.
func Collector(out *[]Triple) Emit {
	return func(a, b, c uint32) { *out = append(*out, Triple{a, b, c}) }
}
