package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/emsort"
	"repro/internal/extmem"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
}

func TestPackUnpack(t *testing.T) {
	prop := func(a, b uint32) bool {
		e := Pack(a, b)
		u, v := U(e), V(e)
		if a == b {
			return u == v
		}
		return u < v && ((u == a && v == b) || (u == b && v == a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPackOrderIsLexicographic(t *testing.T) {
	a := PackOrdered(1, 5)
	b := PackOrdered(1, 6)
	c := PackOrdered(2, 3)
	if !(a < b && b < c) {
		t.Error("packed order is not lexicographic")
	}
}

func TestMakeTriple(t *testing.T) {
	prop := func(a, b, c uint32) bool {
		tr := MakeTriple(a, b, c)
		return tr.V1 <= tr.V2 && tr.V2 <= tr.V3
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if got := MakeTriple(9, 2, 5); got != (Triple{2, 5, 9}) {
		t.Errorf("MakeTriple(9,2,5) = %v", got)
	}
}

func TestCliqueProperties(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 10, 40} {
		el := Clique(n)
		want := n * (n - 1) / 2
		if len(el.Edges) != want {
			t.Errorf("K_%d has %d edges, want %d", n, len(el.Edges), want)
		}
	}
	o := NewOracle(Clique(10))
	if o.Count() != 120 { // C(10,3)
		t.Errorf("K_10 triangles = %d, want 120", o.Count())
	}
}

func TestGNMProperties(t *testing.T) {
	el := GNM(100, 500, 7)
	if len(el.Edges) != 500 {
		t.Fatalf("GNM edge count %d", len(el.Edges))
	}
	seen := map[uint64]bool{}
	for _, e := range el.Edges {
		if U(e) == V(e) {
			t.Fatal("self loop")
		}
		if U(e) > V(e) {
			t.Fatal("not normalized")
		}
		if seen[e] {
			t.Fatal("duplicate edge")
		}
		seen[e] = true
	}
	// Determinism.
	el2 := GNM(100, 500, 7)
	for i := range el.Edges {
		if el.Edges[i] != el2.Edges[i] {
			t.Fatal("GNM not deterministic")
		}
	}
	el3 := GNM(100, 500, 8)
	diff := false
	for i := range el.Edges {
		if el.Edges[i] != el3.Edges[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds gave identical graphs")
	}
	// Overfull request is clamped.
	small := GNM(5, 100, 1)
	if len(small.Edges) != 10 {
		t.Errorf("clamped GNM(5, 100) = %d edges, want 10", len(small.Edges))
	}
}

func TestTriangleFreeGenerators(t *testing.T) {
	if n := NewOracle(BipartiteRandom(50, 50, 400, 3)).Count(); n != 0 {
		t.Errorf("bipartite graph has %d triangles", n)
	}
	if n := NewOracle(Grid(8, 9)).Count(); n != 0 {
		t.Errorf("grid graph has %d triangles", n)
	}
}

func TestGridShape(t *testing.T) {
	el := Grid(3, 4)
	want := 3*3 + 2*4 // horizontal + vertical
	if len(el.Edges) != want {
		t.Errorf("grid edges %d want %d", len(el.Edges), want)
	}
}

func TestPlantedCliqueHasAtLeastCliqueTriangles(t *testing.T) {
	k := 8
	el := PlantedClique(200, 100, k, 5)
	o := NewOracle(el)
	min := uint64(k * (k - 1) * (k - 2) / 6)
	if o.Count() < min {
		t.Errorf("planted clique: %d triangles, want >= %d", o.Count(), min)
	}
}

func TestSellsTriangleSemantics(t *testing.T) {
	// Every triangle must span one salesperson, one brand, one type.
	nS, nB, nT := 20, 10, 10
	el := Sells(nS, nB, nT, 3, 0.5, 11)
	o := NewOracle(el)
	if o.Count() == 0 {
		t.Fatal("sells instance has no triangles; broken generator")
	}
	kind := func(v uint32) int {
		switch {
		case v < uint32(nS):
			return 0
		case v < uint32(nS+nB):
			return 1
		default:
			return 2
		}
	}
	for _, tr := range o.Triples() {
		if kind(tr.V1) != 0 || kind(tr.V2) != 1 || kind(tr.V3) != 2 {
			t.Fatalf("triangle %v does not span S,B,T", tr)
		}
	}
}

func TestRMATAndPowerLawProduceGraphs(t *testing.T) {
	el := RMAT(8, 600, 3)
	if len(el.Edges) < 500 {
		t.Errorf("RMAT produced only %d edges", len(el.Edges))
	}
	pl := PowerLaw(300, 900, 2.5, 4)
	if len(pl.Edges) < 800 {
		t.Errorf("PowerLaw produced only %d edges", len(pl.Edges))
	}
	for _, e := range append(el.Edges, pl.Edges...) {
		if U(e) >= V(e) {
			t.Fatal("unnormalized or self-loop edge")
		}
	}
}

func TestCanonicalizeSmall(t *testing.T) {
	// Path 0-1-2 plus edge 0-2: one triangle; vertex degrees all 2.
	var el EdgeList
	el.Add(0, 1)
	el.Add(1, 2)
	el.Add(0, 2)
	sp := newSpace()
	c := CanonicalizeList(sp, el)
	if c.NumVertices != 3 || c.Edges.Len() != 3 {
		t.Fatalf("V=%d E=%d", c.NumVertices, c.Edges.Len())
	}
	if !emsort.IsSorted(c.Edges, 1, emsort.Identity) {
		t.Error("canonical edges not sorted")
	}
	for r := 0; r < 3; r++ {
		if c.Degrees.Read(int64(r)) != 2 {
			t.Errorf("degree of rank %d = %d", r, c.Degrees.Read(int64(r)))
		}
	}
}

func TestCanonicalizeInvariants(t *testing.T) {
	graphs := map[string]EdgeList{
		"gnm":     GNM(120, 700, 1),
		"clique":  Clique(25),
		"rmat":    RMAT(7, 400, 2),
		"powlaw":  PowerLaw(150, 600, 2.2, 3),
		"grid":    Grid(10, 10),
		"bipart":  BipartiteRandom(40, 40, 300, 4),
		"planted": PlantedClique(100, 200, 10, 5),
	}
	for name, el := range graphs {
		sp := newSpace()
		c := CanonicalizeList(sp, el)
		checkCanonical(t, name, el, c)
	}
}

func checkCanonical(t *testing.T, name string, el EdgeList, c Canonical) {
	t.Helper()
	// Dedup reference edges.
	ref := map[uint64]bool{}
	for _, e := range el.Edges {
		ref[e] = true
	}
	if int(c.Edges.Len()) != len(ref) {
		t.Errorf("%s: canonical has %d edges, want %d", name, c.Edges.Len(), len(ref))
		return
	}
	if !emsort.IsSorted(c.Edges, 1, emsort.Identity) {
		t.Errorf("%s: canonical edges not sorted", name)
	}
	// Every canonical edge maps back to an input edge; u < v in rank space.
	var prevDeg uint64
	for r := 0; r < c.NumVertices; r++ {
		d := c.Degrees.Read(int64(r))
		if d < prevDeg {
			t.Errorf("%s: degrees not nondecreasing at rank %d", name, r)
			break
		}
		prevDeg = d
	}
	degCount := map[uint32]uint64{}
	for i := int64(0); i < c.Edges.Len(); i++ {
		e := c.Edges.Read(i)
		ru, rv := U(e), V(e)
		if ru >= rv {
			t.Errorf("%s: edge %d not rank-normalized", name, i)
		}
		orig := Pack(c.RankToID[ru], c.RankToID[rv])
		if !ref[orig] {
			t.Errorf("%s: canonical edge %d maps to nonexistent input edge", name, i)
		}
		delete(ref, orig)
		degCount[ru]++
		degCount[rv]++
	}
	if len(ref) != 0 {
		t.Errorf("%s: %d input edges missing from canonical form", name, len(ref))
	}
	for r, d := range degCount {
		if c.Degrees.Read(int64(r)) != d {
			t.Errorf("%s: rank %d degree %d, recomputed %d", name, r, c.Degrees.Read(int64(r)), d)
		}
	}
	// Triangle count is invariant under relabeling.
	oOrig := NewOracle(el)
	relabeled := EdgeList{NumVertices: c.NumVertices}
	for i := int64(0); i < c.Edges.Len(); i++ {
		e := c.Edges.Read(i)
		relabeled.Edges = append(relabeled.Edges, e)
	}
	if got := NewOracle(relabeled).Count(); got != oOrig.Count() {
		t.Errorf("%s: triangle count changed under canonicalization: %d vs %d", name, got, oOrig.Count())
	}
}

func TestCanonicalizeDedupAndSelfLoops(t *testing.T) {
	var el EdgeList
	el.Add(3, 3) // dropped by Add
	el.Add(1, 2)
	el.Edges = append(el.Edges, Pack(1, 2), Pack(2, 1)) // duplicates
	sp := newSpace()
	c := CanonicalizeList(sp, el)
	if c.Edges.Len() != 1 {
		t.Errorf("dedup failed: %d edges", c.Edges.Len())
	}
}

func TestCanonicalizeEmpty(t *testing.T) {
	sp := newSpace()
	c := CanonicalizeList(sp, EdgeList{})
	if c.Edges.Len() != 0 || c.NumVertices != 0 {
		t.Error("empty graph canonicalization")
	}
}

func TestCanonicalizeWithObliviousSorter(t *testing.T) {
	el := GNM(80, 400, 9)
	sp := newSpace()
	raw := el.Write(sp)
	c := Canonicalize(sp, raw, emsort.FunnelSortRecords)
	checkCanonical(t, "oblivious", el, c)
}

func TestOracleAgainstBruteForce(t *testing.T) {
	el := GNM(30, 130, 6)
	adj := map[uint64]bool{}
	for _, e := range el.Edges {
		adj[e] = true
	}
	var brute []Triple
	for a := uint32(0); a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			if !adj[Pack(a, b)] {
				continue
			}
			for c := b + 1; c < 30; c++ {
				if adj[Pack(a, c)] && adj[Pack(b, c)] {
					brute = append(brute, Triple{a, b, c})
				}
			}
		}
	}
	o := NewOracle(el)
	ok, diag := o.SameSet(brute)
	if !ok {
		t.Errorf("oracle disagrees with brute force: %s", diag)
	}
}

func TestOracleSameSetDetectsErrors(t *testing.T) {
	el := Clique(5)
	o := NewOracle(el)
	good := append([]Triple(nil), o.Triples()...)
	if ok, _ := o.SameSet(good); !ok {
		t.Error("SameSet rejected the correct set")
	}
	if ok, _ := o.SameSet(good[1:]); ok {
		t.Error("SameSet accepted a missing triangle")
	}
	dup := append(append([]Triple(nil), good...), good[0])
	if ok, _ := o.SameSet(dup); ok {
		t.Error("SameSet accepted a duplicate")
	}
	wrong := append([]Triple(nil), good...)
	wrong[0] = Triple{90, 91, 92}
	if ok, _ := o.SameSet(wrong); ok {
		t.Error("SameSet accepted a wrong triangle")
	}
}

func TestCounterAndCollector(t *testing.T) {
	var n uint64
	e := Counter(&n)
	e(1, 2, 3)
	e(4, 5, 6)
	if n != 2 {
		t.Error("Counter")
	}
	var ts []Triple
	c := Collector(&ts)
	c(1, 2, 3)
	if len(ts) != 1 || ts[0] != (Triple{1, 2, 3}) {
		t.Error("Collector")
	}
}
