package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file defines the durable-image metadata of a canonical on-disk
// graph: a fixed-size, versioned, checksummed footer appended past the
// block-rounded allocation watermark of the image file (see FORMAT.md at
// the repo root). The footer makes the image self-describing — Open can
// validate a file it did not write, recompute the CanonLayout address
// map, and adopt the image without re-canonicalizing — while leaving the
// word-addressable image itself untouched: no session reads at or past
// the watermark, so the image bytes below it remain exactly what a fresh
// canonicalization writes.

// ImageMagic identifies a canonical-image footer ("PS14" for Pagh &
// Silvestri 2014, "IMG" for image, then the format generation byte).
const ImageMagic = "PS14IMG\x01"

// ImageVersion is the current image-format version. Decoding rejects
// footers with any other version, so a format change cannot be silently
// misread as the old layout.
const ImageVersion = 1

// FooterSize is the byte size of the image footer.
const FooterSize = 64

// ImageMeta describes a canonical on-disk image: everything needed to
// recompute its CanonLayout address map and rebind the canonical extents
// without re-running the canonicalization.
type ImageMeta struct {
	// BlockWords is the block size B the image was laid out with; the
	// layout's block-rounded bases depend on it, so an adopting machine
	// must use the same value.
	BlockWords int
	// RawLen is the raw edge count m the layout was computed for: the
	// pre-dedup input length at Build time, or the deduplicated count for
	// images written by a delta merge (whose layout is LayoutFor(e, e, nv)).
	RawLen int64
	// EdgesLen is the deduplicated canonical edge count e.
	EdgesLen int64
	// NumVertices is the non-isolated vertex count nv.
	NumVertices int64
	// Generation is the graph generation frozen in the image: 0 for a
	// Build image, n for a checkpoint of generation n.
	Generation uint64
	// CanonIOs records the block-I/O cost paid to produce the image
	// (informational: Open adopts the image for free and reports 0).
	CanonIOs uint64
}

// EncodeFooter serializes the metadata into the fixed-size footer:
// magic, version, the layout inputs, and a CRC-32 over everything before
// it, all little-endian.
func (m ImageMeta) EncodeFooter() []byte {
	buf := make([]byte, FooterSize)
	copy(buf[0:8], ImageMagic)
	binary.LittleEndian.PutUint32(buf[8:], ImageVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.BlockWords))
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.RawLen))
	binary.LittleEndian.PutUint64(buf[24:], uint64(m.EdgesLen))
	binary.LittleEndian.PutUint64(buf[32:], uint64(m.NumVertices))
	binary.LittleEndian.PutUint64(buf[40:], m.Generation)
	binary.LittleEndian.PutUint64(buf[48:], m.CanonIOs)
	// buf[56:60] reserved, zero.
	binary.LittleEndian.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
	return buf
}

// DecodeFooter parses and verifies a footer: magic, version, checksum.
// The returned metadata still needs Validate before the image is trusted.
func DecodeFooter(buf []byte) (ImageMeta, error) {
	if len(buf) != FooterSize {
		return ImageMeta{}, fmt.Errorf("graph: image footer is %d bytes, want %d", len(buf), FooterSize)
	}
	if string(buf[0:8]) != ImageMagic {
		return ImageMeta{}, fmt.Errorf("graph: bad image magic %q", buf[0:8])
	}
	if got := crc32.ChecksumIEEE(buf[:60]); got != binary.LittleEndian.Uint32(buf[60:]) {
		return ImageMeta{}, fmt.Errorf("graph: image footer checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != ImageVersion {
		return ImageMeta{}, fmt.Errorf("graph: image version %d, this library reads version %d", v, ImageVersion)
	}
	return ImageMeta{
		BlockWords:  int(binary.LittleEndian.Uint32(buf[12:])),
		RawLen:      int64(binary.LittleEndian.Uint64(buf[16:])),
		EdgesLen:    int64(binary.LittleEndian.Uint64(buf[24:])),
		NumVertices: int64(binary.LittleEndian.Uint64(buf[32:])),
		Generation:  binary.LittleEndian.Uint64(buf[40:]),
		CanonIOs:    binary.LittleEndian.Uint64(buf[48:]),
	}, nil
}

// Validate checks the metadata's internal consistency and returns the
// image's CanonLayout — the LayoutFor assertion an adopting Open is
// written against. A caller must additionally check that the file holds
// exactly the block-rounded layout.Mark words followed by the footer.
func (m ImageMeta) Validate() (CanonLayout, error) {
	if m.BlockWords <= 0 || m.BlockWords&(m.BlockWords-1) != 0 {
		return CanonLayout{}, fmt.Errorf("graph: image block size %d is not a positive power of two", m.BlockWords)
	}
	if m.RawLen < 0 || m.EdgesLen < 0 || m.NumVertices < 0 {
		return CanonLayout{}, fmt.Errorf("graph: negative image dimensions (m=%d e=%d nv=%d)", m.RawLen, m.EdgesLen, m.NumVertices)
	}
	if m.RawLen == 0 {
		if m.EdgesLen != 0 || m.NumVertices != 0 {
			return CanonLayout{}, fmt.Errorf("graph: empty image with e=%d nv=%d", m.EdgesLen, m.NumVertices)
		}
		return LayoutFor(0, 0, 0, m.BlockWords), nil
	}
	if m.EdgesLen == 0 || m.EdgesLen > m.RawLen {
		return CanonLayout{}, fmt.Errorf("graph: deduplicated edge count %d not in [1, %d]", m.EdgesLen, m.RawLen)
	}
	if m.NumVertices < 2 || m.NumVertices > 2*m.EdgesLen {
		return CanonLayout{}, fmt.Errorf("graph: vertex count %d not in [2, %d]", m.NumVertices, 2*m.EdgesLen)
	}
	return LayoutFor(m.RawLen, m.EdgesLen, m.NumVertices, m.BlockWords), nil
}

// ImageWords returns the image size in words for the given layout under
// this metadata's block size: the allocation watermark rounded up to a
// whole block — the address where session scratch starts and where the
// footer is written.
func (m ImageMeta) ImageWords(lay CanonLayout) int64 {
	return (lay.Mark + int64(m.BlockWords) - 1) &^ int64(m.BlockWords-1)
}
