package graph

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

func TestImageFooterRoundTrip(t *testing.T) {
	metas := []ImageMeta{
		{BlockWords: 1 << 5, RawLen: 600, EdgesLen: 587, NumVertices: 100, Generation: 0, CanonIOs: 23000},
		{BlockWords: 1 << 7, RawLen: 587, EdgesLen: 587, NumVertices: 100, Generation: 7, CanonIOs: 40000},
		{BlockWords: 1 << 5}, // empty graph
	}
	for _, m := range metas {
		buf := m.EncodeFooter()
		if len(buf) != FooterSize {
			t.Fatalf("footer is %d bytes, want %d", len(buf), FooterSize)
		}
		got, err := DecodeFooter(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
		if _, err := m.Validate(); err != nil {
			t.Fatalf("validate %+v: %v", m, err)
		}
	}
}

// TestImageFooterRejectsCorruption flips every byte of a valid footer in
// turn: each corruption must be caught (magic, version, or checksum), so
// a damaged image can never be adopted silently.
func TestImageFooterRejectsCorruption(t *testing.T) {
	m := ImageMeta{BlockWords: 1 << 5, RawLen: 600, EdgesLen: 587, NumVertices: 100, Generation: 3, CanonIOs: 17}
	buf := m.EncodeFooter()
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xff
		if _, err := DecodeFooter(bad); err == nil {
			t.Fatalf("corruption at byte %d decoded cleanly", i)
		}
	}
	if _, err := DecodeFooter(buf[:FooterSize-1]); err == nil {
		t.Fatal("short footer decoded cleanly")
	}
}

func TestImageFooterRejectsFutureVersion(t *testing.T) {
	m := ImageMeta{BlockWords: 1 << 5, RawLen: 10, EdgesLen: 10, NumVertices: 5}
	buf := m.EncodeFooter()
	// Bump the version and re-checksum, so the version check itself (not
	// the CRC) must reject the footer.
	buf[8] = ImageVersion + 1
	binary.LittleEndian.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
	_, err := DecodeFooter(buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v, want version error", err)
	}
}

func TestImageMetaValidateRejectsNonsense(t *testing.T) {
	cases := []ImageMeta{
		{BlockWords: 0, RawLen: 10, EdgesLen: 10, NumVertices: 5},
		{BlockWords: 3, RawLen: 10, EdgesLen: 10, NumVertices: 5},   // not a power of two
		{BlockWords: 32, RawLen: -1},                                // negative
		{BlockWords: 32, RawLen: 0, EdgesLen: 1, NumVertices: 2},    // empty with edges
		{BlockWords: 32, RawLen: 10, EdgesLen: 11, NumVertices: 5},  // e > m
		{BlockWords: 32, RawLen: 10, EdgesLen: 0, NumVertices: 0},   // m > 0 with no edges
		{BlockWords: 32, RawLen: 10, EdgesLen: 10, NumVertices: 1},  // nv < 2
		{BlockWords: 32, RawLen: 10, EdgesLen: 10, NumVertices: 21}, // nv > 2e
	}
	for _, m := range cases {
		if _, err := m.Validate(); err == nil {
			t.Fatalf("meta %+v validated", m)
		}
	}
}

// TestImageMetaLayoutMatchesLayoutFor pins that Validate returns exactly
// the LayoutFor address map — the assertion Open performs against a file
// it did not write.
func TestImageMetaLayoutMatchesLayoutFor(t *testing.T) {
	m := ImageMeta{BlockWords: 1 << 6, RawLen: 1000, EdgesLen: 900, NumVertices: 300}
	lay, err := m.Validate()
	if err != nil {
		t.Fatal(err)
	}
	want := LayoutFor(1000, 900, 300, 1<<6)
	if lay != want {
		t.Fatalf("layout %+v != LayoutFor %+v", lay, want)
	}
	if w := m.ImageWords(lay); w < lay.Mark || w%int64(m.BlockWords) != 0 {
		t.Fatalf("ImageWords %d is not the block-rounded mark %d", w, lay.Mark)
	}
}
