package graph

// CanonLayout is the address map of the external-memory image a fresh
// canonicalization leaves below its allocation watermark: one base per
// extent Canonicalize allocates, in allocation order. It is a pure
// function of the raw edge count m, the deduplicated edge count e, the
// non-isolated vertex count nv, and the block size B — Canonicalize's
// bump allocator rounds every base up to a block boundary and the sorters
// restore the watermark they found (Mark/Release discipline) — which is
// what lets an Update reconstruct a fresh-Build image for a merged edge
// set without running the canonicalization: it computes the layout,
// writes the merged artifacts at their fresh-Build addresses, and leaves
// the scratch regions (whose contents no reader ever consults) empty.
//
// Four of the regions double as the merge substrate of MergeDelta,
// because Canonicalize leaves them holding exactly the artifacts an
// incremental re-derivation needs:
//
//	Dedup    [0, e)  the deduplicated edge set, packed by original id
//	         and sorted — the representation deltas merge against;
//	Ends     [0, 2e) the sorted endpoint occurrences — run-length
//	         encoding them yields every vertex's degree in id order;
//	ByDeg    [0, nv) the (deg<<32|id) vertex records in rank order;
//	RankByID [0, nv) the (id<<32|rank) records in id order.
//
// Build asserts the computed DegOut/EdgeOut bases and Mark against the
// extents Canonicalize actually returned, so any drift between this
// formula and the allocation sequence fails fast instead of corrupting a
// later Update.
type CanonLayout struct {
	// Raw is the input edge list written by EdgeList.Write (m words).
	Raw int64
	// Work is the sorted copy of the raw list (m words).
	Work int64
	// Dedup holds the deduplicated id-sorted edges in its first e words.
	Dedup int64
	// Ends is the sorted endpoint-occurrence list (2e words).
	Ends int64
	// ByDeg holds the (deg<<32|id) records, rank-ordered, in its first
	// nv words.
	ByDeg int64
	// RankByID is the (id<<32|rank) table sorted by id (nv words).
	RankByID int64
	// Degrees is the by-rank degree scratch (nv words).
	Degrees int64
	// Pass1 and Pass2 are the two relabeling passes (e words each).
	Pass1, Pass2 int64
	// Canon is the rank-packed edge scratch before the final copy (e words).
	Canon int64
	// DegOut and EdgeOut are the canonical outputs Canonicalize returns.
	DegOut, EdgeOut int64
	// Mark is the allocation watermark after EdgeOut — the image size.
	Mark int64
}

// LayoutFor computes the canonicalization image layout for a raw input of
// m edges that deduplicates to e edges over nv non-isolated vertices on
// blocks of B words. m == 0 yields the all-zero layout of Canonicalize's
// empty-input path.
func LayoutFor(m, e, nv int64, B int) CanonLayout {
	var l CanonLayout
	if m == 0 {
		return l
	}
	var size int64
	alloc := func(n int64) int64 {
		base := (size + int64(B) - 1) &^ int64(B-1)
		size = base + n
		return base
	}
	l.Raw = alloc(m)
	l.Work = alloc(m)
	l.Dedup = alloc(m)
	l.Ends = alloc(2 * e)
	l.ByDeg = alloc(2 * e)
	l.RankByID = alloc(nv)
	l.Degrees = alloc(nv)
	l.Pass1 = alloc(e)
	l.Pass2 = alloc(e)
	l.Canon = alloc(e)
	l.DegOut = alloc(nv)
	l.EdgeOut = alloc(e)
	l.Mark = size
	return l
}
