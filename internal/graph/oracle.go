package graph

import "sort"

// Oracle enumerates triangles entirely in native memory using the standard
// degree-ordered forward-adjacency intersection algorithm (O(E^1.5) work).
// It is the correctness reference every external-memory algorithm is
// checked against; it plays no part in the I/O experiments.
type Oracle struct {
	triples []Triple
}

// NewOracle enumerates all triangles of el. Duplicate edges and self-loops
// in el are ignored.
func NewOracle(el EdgeList) *Oracle {
	// Dedup edges.
	edges := append([]uint64(nil), el.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	edges = dedupSorted(edges)

	// Degree-rank the vertices (degree asc, id tiebreak), like Section 1.3.
	deg := map[uint32]int{}
	for _, e := range edges {
		deg[U(e)]++
		deg[V(e)]++
	}
	ids := make([]uint32, 0, len(deg))
	for id := range deg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := deg[ids[i]], deg[ids[j]]
		return di < dj || (di == dj && ids[i] < ids[j])
	})
	rank := make(map[uint32]uint32, len(ids))
	for r, id := range ids {
		rank[id] = uint32(r)
	}

	// Forward adjacency in rank order.
	fwd := make([][]uint32, len(ids))
	for _, e := range edges {
		ru, rv := rank[U(e)], rank[V(e)]
		if ru > rv {
			ru, rv = rv, ru
		}
		fwd[ru] = append(fwd[ru], rv)
	}
	for _, l := range fwd {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}

	o := &Oracle{}
	for u := range fwd {
		lu := fwd[u]
		for _, v := range lu {
			lv := fwd[v]
			// Intersect lu and lv by merge.
			i, j := 0, 0
			for i < len(lu) && j < len(lv) {
				switch {
				case lu[i] < lv[j]:
					i++
				case lu[i] > lv[j]:
					j++
				default:
					o.triples = append(o.triples,
						MakeTriple(ids[u], ids[v], ids[lu[i]]))
					i++
					j++
				}
			}
		}
	}
	sort.Slice(o.triples, func(i, j int) bool { return tripleLess(o.triples[i], o.triples[j]) })
	return o
}

// Count returns the number of triangles.
func (o *Oracle) Count() uint64 { return uint64(len(o.triples)) }

// Triples returns the triangles sorted by (V1, V2, V3) in original ids.
func (o *Oracle) Triples() []Triple { return o.triples }

// SameSet reports whether got (in any order, original ids) is exactly the
// oracle's triangle set with no duplicates, returning a diagnostic string
// when it is not.
func (o *Oracle) SameSet(got []Triple) (bool, string) {
	if len(got) != len(o.triples) {
		return false, diffMsg(o.triples, got)
	}
	sorted := append([]Triple(nil), got...)
	sort.Slice(sorted, func(i, j int) bool { return tripleLess(sorted[i], sorted[j]) })
	for i := range sorted {
		if sorted[i] != o.triples[i] {
			return false, diffMsg(o.triples, sorted)
		}
	}
	return true, ""
}

func tripleLess(a, b Triple) bool {
	if a.V1 != b.V1 {
		return a.V1 < b.V1
	}
	if a.V2 != b.V2 {
		return a.V2 < b.V2
	}
	return a.V3 < b.V3
}

func diffMsg(want, got []Triple) string {
	w := map[Triple]int{}
	for _, t := range want {
		w[t]++
	}
	for _, t := range got {
		w[t]--
	}
	var missing, extra []Triple
	for t, c := range w {
		for ; c > 0; c-- {
			missing = append(missing, t)
		}
		for ; c < 0; c++ {
			extra = append(extra, t)
		}
	}
	limit := func(ts []Triple) []Triple {
		if len(ts) > 8 {
			return ts[:8]
		}
		return ts
	}
	return "missing=" + sprintTriples(limit(missing)) + " extra=" + sprintTriples(limit(extra))
}

func sprintTriples(ts []Triple) string {
	s := "["
	for i, t := range ts {
		if i > 0 {
			s += " "
		}
		s += t.String()
	}
	return s + "]"
}

func dedupSorted(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
