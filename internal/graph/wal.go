package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/extmem"
)

// This file defines the write-ahead-log record format of durable graph
// handles (see FORMAT.md at the repo root). Each effective Update appends
// one record — the packed add/remove word lists of its delta, tagged with
// the generation the merge installs — to <DiskPath>.wal before the new
// generation becomes current, so a crash between Updates replays on Open
// to the exact generation: the recovery contract is that replaying the
// surviving record prefix over the base image yields a graph
// byte-identical (emission, Result, I/O statistics) to a fresh Build of
// the replayed edge set, which holds because replay runs the very same
// deterministic MergeDelta the live Update ran.
//
// Records are length-prefixed and checksummed; a record that is
// truncated mid-write by a crash (or corrupted) fails its checksum, and
// the scanner treats everything from the first bad record on as a torn
// tail — the longest valid prefix defines the replayed edge set.

// WALRecord is one logged delta: the packed (self-loop-free, possibly
// duplicate) add and remove word lists of an effective Update, and the
// generation number its merge installed.
type WALRecord struct {
	Gen           uint64
	Adds, Removes []extmem.Word
}

// ErrWALTorn reports a WAL record that cannot be decoded — truncated by
// a crash mid-append, or corrupted. Scanning stops at the first torn
// record; everything before it is the valid prefix.
var ErrWALTorn = errors.New("graph: torn WAL record")

// walHeaderSize is the record header: u32 payload length + u32 CRC-32.
const walHeaderSize = 8

// walPayloadFixed is the fixed part of the payload: u64 generation,
// u32 add count, u32 remove count.
const walPayloadFixed = 16

// maxWALPayload bounds a single record's payload so a corrupt length
// field cannot drive a giant allocation; 1 GiB of packed words is far
// beyond any batched delta.
const maxWALPayload = 1 << 30

// AppendWALRecord appends the encoded record to dst and returns the
// extended slice. All integers are little-endian.
func AppendWALRecord(dst []byte, r WALRecord) []byte {
	payload := walPayloadFixed + 8*(len(r.Adds)+len(r.Removes))
	start := len(dst)
	dst = append(dst, make([]byte, walHeaderSize+payload)...)
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:], uint32(payload))
	p := b[walHeaderSize:]
	binary.LittleEndian.PutUint64(p[0:], r.Gen)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(r.Adds)))
	binary.LittleEndian.PutUint32(p[12:], uint32(len(r.Removes)))
	off := walPayloadFixed
	for _, w := range r.Adds {
		binary.LittleEndian.PutUint64(p[off:], w)
		off += 8
	}
	for _, w := range r.Removes {
		binary.LittleEndian.PutUint64(p[off:], w)
		off += 8
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(p))
	return dst
}

// DecodeWALRecord decodes the record at the front of b, returning it and
// the number of bytes consumed. Any defect — short buffer, impossible
// length, checksum or count mismatch — is reported as ErrWALTorn
// (wrapped with the detail): the caller cannot distinguish a crash-torn
// tail from corruption, and treats both as end-of-log.
func DecodeWALRecord(b []byte) (WALRecord, int, error) {
	if len(b) < walHeaderSize {
		return WALRecord{}, 0, fmt.Errorf("%w: %d-byte tail", ErrWALTorn, len(b))
	}
	payload := int(binary.LittleEndian.Uint32(b[0:]))
	if payload < walPayloadFixed || payload > maxWALPayload || (payload-walPayloadFixed)%8 != 0 {
		return WALRecord{}, 0, fmt.Errorf("%w: impossible payload length %d", ErrWALTorn, payload)
	}
	if len(b) < walHeaderSize+payload {
		return WALRecord{}, 0, fmt.Errorf("%w: payload of %d bytes, %d available", ErrWALTorn, payload, len(b)-walHeaderSize)
	}
	p := b[walHeaderSize : walHeaderSize+payload]
	if got := crc32.ChecksumIEEE(p); got != binary.LittleEndian.Uint32(b[4:]) {
		return WALRecord{}, 0, fmt.Errorf("%w: checksum mismatch", ErrWALTorn)
	}
	nAdd := int(binary.LittleEndian.Uint32(p[8:]))
	nRem := int(binary.LittleEndian.Uint32(p[12:]))
	if walPayloadFixed+8*(nAdd+nRem) != payload {
		return WALRecord{}, 0, fmt.Errorf("%w: counts %d+%d disagree with payload length %d", ErrWALTorn, nAdd, nRem, payload)
	}
	rec := WALRecord{Gen: binary.LittleEndian.Uint64(p[0:])}
	off := walPayloadFixed
	if nAdd > 0 {
		rec.Adds = make([]extmem.Word, nAdd)
		for i := range rec.Adds {
			rec.Adds[i] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
	}
	if nRem > 0 {
		rec.Removes = make([]extmem.Word, nRem)
		for i := range rec.Removes {
			rec.Removes[i] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
	}
	return rec, walHeaderSize + payload, nil
}

// ScanWAL decodes the longest valid record prefix of a WAL image,
// returning the records and the byte length of that prefix. A non-empty
// remainder is a torn tail: the caller truncates the log there before
// appending new records.
func ScanWAL(b []byte) (recs []WALRecord, validLen int) {
	for validLen < len(b) {
		rec, n, err := DecodeWALRecord(b[validLen:])
		if err != nil {
			break
		}
		recs = append(recs, rec)
		validLen += n
	}
	return recs, validLen
}
