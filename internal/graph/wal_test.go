package graph

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/extmem"
)

func walFixture() []WALRecord {
	return []WALRecord{
		{Gen: 1, Adds: []extmem.Word{Pack(1, 2), Pack(2, 3)}, Removes: []extmem.Word{Pack(0, 9)}},
		{Gen: 2, Removes: []extmem.Word{Pack(1, 2)}},
		{Gen: 3, Adds: []extmem.Word{Pack(7, 8)}},
		{Gen: 4}, // degenerate but encodable: no packed words
	}
}

func encodeAll(recs []WALRecord) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendWALRecord(buf, r)
	}
	return buf
}

func TestWALRoundTrip(t *testing.T) {
	recs := walFixture()
	buf := encodeAll(recs)
	got, validLen := ScanWAL(buf)
	if validLen != len(buf) {
		t.Fatalf("valid prefix %d of %d bytes", validLen, len(buf))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, recs)
	}
}

// TestWALScanStopsAtEveryCut truncates the log at every byte position:
// the scanner must recover exactly the records whose encodings fit
// wholly in the prefix, never error, and never read past the cut.
func TestWALScanStopsAtEveryCut(t *testing.T) {
	recs := walFixture()
	buf := encodeAll(recs)
	// Record end offsets, to know how many full records each cut keeps.
	ends := make([]int, 0, len(recs))
	off := 0
	for range recs {
		_, n, err := DecodeWALRecord(buf[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		ends = append(ends, off)
	}
	for cut := 0; cut <= len(buf); cut++ {
		wantN := 0
		wantValid := 0
		for i, e := range ends {
			if e <= cut {
				wantN = i + 1
				wantValid = e
			}
		}
		got, validLen := ScanWAL(buf[:cut])
		if len(got) != wantN || validLen != wantValid {
			t.Fatalf("cut %d: %d records / prefix %d, want %d / %d", cut, len(got), validLen, wantN, wantValid)
		}
		if wantN > 0 && !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut %d: wrong records", cut)
		}
	}
}

// TestWALRejectsCorruption flips each byte of a single-record log: the
// decoder must report ErrWALTorn (length, checksum, or count mismatch)
// for every corruption that does not leave the record exactly valid.
func TestWALRejectsCorruption(t *testing.T) {
	buf := encodeAll(walFixture()[:1])
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x01
		_, _, err := DecodeWALRecord(bad)
		if err == nil {
			t.Fatalf("corruption at byte %d decoded cleanly", i)
		}
		if !errors.Is(err, ErrWALTorn) {
			t.Fatalf("corruption at byte %d: %v, want ErrWALTorn", i, err)
		}
	}
}

func TestWALRejectsGiantLength(t *testing.T) {
	buf := encodeAll(walFixture()[:1])
	// An absurd length field must be rejected before any allocation.
	buf[0], buf[1], buf[2], buf[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeWALRecord(buf); !errors.Is(err, ErrWALTorn) {
		t.Fatalf("giant length: %v, want ErrWALTorn", err)
	}
}

// FuzzWALReplay fuzzes the record decoder with arbitrary bytes: it must
// never panic or over-read, a decoded record must re-encode to exactly
// the bytes it was decoded from, and ScanWAL's valid prefix must itself
// rescan to the same records.
func FuzzWALReplay(f *testing.F) {
	f.Add(encodeAll(walFixture()))
	f.Add(encodeAll(walFixture()[:1])[:11]) // torn mid-header/payload
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen := ScanWAL(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid prefix %d outside [0,%d]", validLen, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = AppendWALRecord(re, r)
		}
		if string(re) != string(data[:validLen]) {
			t.Fatal("decoded records do not re-encode to the valid prefix")
		}
		again, againLen := ScanWAL(data[:validLen])
		if againLen != validLen || !reflect.DeepEqual(again, recs) {
			t.Fatal("rescan of the valid prefix diverged")
		}
	})
}
