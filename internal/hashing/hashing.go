// Package hashing provides the random primitives the paper's algorithms
// rely on: a deterministic seeded PRNG, and 4-wise independent hash
// families (degree-3 polynomials over the Mersenne prime 2^61−1) used for
// the color-coding of Section 2 and the per-level bits of Section 3.
package hashing

import "math/bits"

// mersenne61 is the prime 2^61 − 1; arithmetic modulo it reduces with
// shifts and adds, and the field is large enough for 32-bit vertex ids.
const mersenne61 = (1 << 61) - 1

// Rand is a small deterministic PRNG (splitmix64). It is used to derive
// hash-function coefficients reproducibly from a user seed; it is not a
// source of cryptographic randomness.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Next returns the next pseudo-random 64-bit value.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random value in [0, n).
func (r *Rand) Intn(n int64) int64 {
	if n <= 0 {
		panic("hashing: Intn with n <= 0")
	}
	return int64(r.Next() % uint64(n))
}

// Split derives an independent generator; used to give each recursion path
// of the cache-oblivious algorithm its own randomness deterministically.
func (r *Rand) Split(label uint64) *Rand {
	return NewRand(r.Next() ^ mix(label))
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// mulMod61 multiplies two values modulo 2^61 − 1.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61-1), split lo.
	res := (lo & mersenne61) + (lo >> 61) + hi*8
	res = (res & mersenne61) + (res >> 61)
	if res >= mersenne61 {
		res -= mersenne61
	}
	return res
}

// Poly4 is a 4-wise independent hash family member: a uniformly random
// degree-3 polynomial over GF(2^61 − 1). For distinct inputs x1..x4 the
// values h(x1)..h(x4) are independent and uniform over the field.
type Poly4 struct {
	a [4]uint64
}

// NewPoly4 draws a function from the family using rng.
func NewPoly4(rng *Rand) Poly4 {
	var p Poly4
	for i := range p.a {
		p.a[i] = rng.Next() % mersenne61
	}
	return p
}

// Hash evaluates the polynomial at x, returning a value in [0, 2^61−1).
func (p Poly4) Hash(x uint64) uint64 {
	x %= mersenne61
	h := p.a[3]
	h = mulMod61(h, x) + p.a[2]
	if h >= mersenne61 {
		h -= mersenne61
	}
	h = mulMod61(h, x) + p.a[1]
	if h >= mersenne61 {
		h -= mersenne61
	}
	h = mulMod61(h, x) + p.a[0]
	if h >= mersenne61 {
		h -= mersenne61
	}
	return h
}

// Bit returns a 4-wise independent bit for x, as needed by step 2 of the
// cache-oblivious recursion.
func (p Poly4) Bit(x uint64) uint64 {
	// Use a high bit of the field element; low bits are slightly biased by
	// the mod-p range, high bits negligibly so (bias < 2^-60).
	return (p.Hash(x) >> 60) & 1
}

// Coloring maps vertices 4-wise independently onto colors {0, ..., c−1},
// the coloring ξ of Section 2.
type Coloring struct {
	p Poly4
	c uint64
}

// NewColoring draws a coloring with c colors.
func NewColoring(rng *Rand, c int) Coloring {
	if c <= 0 {
		panic("hashing: coloring needs at least one color")
	}
	return Coloring{p: NewPoly4(rng), c: uint64(c)}
}

// Colors returns the number of colors c.
func (cl Coloring) Colors() int { return int(cl.c) }

// Color returns ξ(v) in [0, c).
func (cl Coloring) Color(v uint32) uint32 {
	// Multiply-shift from [0, 2^61) onto [0, c): each color class has mass
	// within 2^-61 of 1/c, preserving the 4-wise independence bound of
	// Lemma 3 up to negligible terms.
	h := cl.p.Hash(uint64(v))
	hi, _ := bits.Mul64(h<<3, cl.c) // h < 2^61, so h<<3 spans [0, 2^64)
	return uint32(hi)
}
