package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(7)
	s1 := r.Split(1)
	s2 := r.Split(1) // second split with same label still differs: parent advanced
	if s1.Next() == s2.Next() {
		t.Error("consecutive splits should differ")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	func() {
		defer func() { recover() }()
		r.Intn(0)
		t.Error("Intn(0) should panic")
	}()
}

func TestMulMod61(t *testing.T) {
	cases := [][3]uint64{
		{0, 0, 0},
		{1, 1, 1},
		{mersenne61 - 1, 1, mersenne61 - 1},
		{2, mersenne61 - 1, mersenne61 - 2},
		{1 << 60, 1 << 60, 0}, // computed below via big-int identity
	}
	// Verify 2^60 * 2^60 mod (2^61-1): 2^120 = 2^(61*1+59) ≡ 2^59.
	cases[4][2] = 1 << 59
	for _, c := range cases {
		if got := mulMod61(c[0], c[1]); got != c[2] {
			t.Errorf("mulMod61(%d,%d)=%d want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestMulMod61Quick(t *testing.T) {
	// Against a reference using 128-bit arithmetic via math/bits identity:
	// check (a*b) mod p by repeated addition decomposition a*b = sum of
	// shifted b, too slow; instead verify ring axioms probabilistically.
	prop := func(a, b, c uint64) bool {
		a %= mersenne61
		b %= mersenne61
		c %= mersenne61
		// commutativity and distributivity
		if mulMod61(a, b) != mulMod61(b, a) {
			return false
		}
		left := mulMod61(a, (b+c)%mersenne61)
		right := (mulMod61(a, b) + mulMod61(a, c)) % mersenne61
		return left == right
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPoly4Uniformity(t *testing.T) {
	// Chi-square-ish check: colors over [16] should be near uniform.
	rng := NewRand(99)
	cl := NewColoring(rng, 16)
	const n = 1 << 16
	counts := make([]int, 16)
	for v := uint32(0); v < n; v++ {
		counts[cl.Color(v)]++
	}
	want := float64(n) / 16
	for c, got := range counts {
		if math.Abs(float64(got)-want) > 6*math.Sqrt(want) {
			t.Errorf("color %d: count %d deviates from %f", c, got, want)
		}
	}
}

func TestColoringRange(t *testing.T) {
	rng := NewRand(3)
	for _, c := range []int{1, 2, 3, 7, 64} {
		cl := NewColoring(rng, c)
		if cl.Colors() != c {
			t.Fatalf("Colors()=%d want %d", cl.Colors(), c)
		}
		for v := uint32(0); v < 5000; v++ {
			if int(cl.Color(v)) >= c {
				t.Fatalf("color out of range for c=%d", c)
			}
		}
	}
}

func TestPoly4PairwiseCollisions(t *testing.T) {
	// 4-wise independence implies pairwise: collision probability of two
	// fixed distinct keys over random functions is 1/c. Estimate it.
	const trials = 4000
	const c = 8
	rng := NewRand(5)
	coll := 0
	for i := 0; i < trials; i++ {
		cl := NewColoring(rng, c)
		if cl.Color(12345) == cl.Color(67890) {
			coll++
		}
	}
	p := float64(coll) / trials
	if math.Abs(p-1.0/c) > 0.03 {
		t.Errorf("pairwise collision rate %f, want ~%f", p, 1.0/c)
	}
}

func TestPoly4FourWiseBalance(t *testing.T) {
	// For 4 fixed distinct keys and random functions, the 16 sign patterns
	// of Bit() should be close to uniform (this is what 4-wise gives).
	const trials = 16000
	rng := NewRand(11)
	counts := make([]int, 16)
	keys := [4]uint64{3, 141, 59265, 358979}
	for i := 0; i < trials; i++ {
		p := NewPoly4(rng)
		pat := 0
		for k, x := range keys {
			pat |= int(p.Bit(x)) << k
		}
		counts[pat]++
	}
	want := float64(trials) / 16
	for pat, got := range counts {
		if math.Abs(float64(got)-want) > 7*math.Sqrt(want) {
			t.Errorf("pattern %04b: %d, want ~%f", pat, got, want)
		}
	}
}

func TestBitIsStable(t *testing.T) {
	rng := NewRand(2)
	p := NewPoly4(rng)
	for x := uint64(0); x < 100; x++ {
		if p.Bit(x) != p.Bit(x) {
			t.Fatal("Bit not deterministic")
		}
		if b := p.Bit(x); b != 0 && b != 1 {
			t.Fatalf("Bit out of range: %d", b)
		}
	}
}
