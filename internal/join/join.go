// Package join implements the database application that motivates the
// paper (Section 1): reconstructing a ternary relation in 5th normal form
// from its three binary projections. The relation
// Sells(salesperson, brand, productType) decomposes into
// SB(salesperson, brand), BT(brand, productType) and
// ST(salesperson, productType); computing SB ⋈ BT ⋈ ST is exactly triangle
// enumeration on the union of the three bipartite graphs, with every
// triangle corresponding to one row of the join.
package join

import (
	"fmt"

	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

// Pair is one tuple of a binary relation.
type Pair struct{ A, B string }

// Row is one tuple of the reconstructed ternary relation.
type Row struct{ Salesperson, Brand, ProductType string }

// Decomposition holds the three binary projections of a 5NF-decomposed
// ternary relation.
type Decomposition struct {
	SB []Pair // (salesperson, brand)
	BT []Pair // (brand, productType)
	ST []Pair // (salesperson, productType)
}

// Algorithm selects the triangle-enumeration algorithm used for the join.
type Algorithm int

const (
	// CacheAware is the randomized algorithm of Section 2.
	CacheAware Algorithm = iota
	// CacheOblivious is the algorithm of Section 3.
	CacheOblivious
	// Deterministic is the derandomized algorithm of Section 4.
	Deterministic
	// HuTaoChung is the SIGMOD 2013 baseline.
	HuTaoChung
)

// Options configures Join.
type Options struct {
	Algorithm Algorithm
	// MemoryWords and BlockWords describe the simulated machine; zero
	// values default to 1<<16 and 1<<7.
	MemoryWords int
	BlockWords  int
	Seed        uint64
}

// Stats reports the I/O work of a join.
type Stats struct {
	Rows       uint64
	IOs        uint64
	BlockReads uint64
	BlockWrite uint64
}

// dictionary interns strings of one attribute class into dense ids.
type dictionary struct {
	ids   map[string]uint32
	names []string
}

func newDictionary() *dictionary { return &dictionary{ids: map[string]uint32{}} }

func (d *dictionary) intern(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.names))
	d.ids[s] = id
	d.names = append(d.names, s)
	return id
}

// Encoded is a Decomposition dictionary-encoded onto its tripartite
// triangle graph: the three attribute classes occupy disjoint vertex-id
// ranges (salespeople, then brands, then product types), each projection
// contributes one bipartite edge set, and every triangle of the union is
// one row of SB ⋈ BT ⋈ ST. It is the bridge by which any triangle
// enumerator — the internal Spaces here, or a session of the public Graph
// handle — serves the join: enumerate Edges, hand each triangle's vertex
// ids (in any order) to Row.
type Encoded struct {
	// Edges is the union of the three bipartite graphs.
	Edges      [][2]uint32
	sd, bd, td *dictionary
	bOff, tOff uint32
}

// Encode dictionary-encodes the decomposition.
func (dec Decomposition) Encode() *Encoded {
	e := &Encoded{sd: newDictionary(), bd: newDictionary(), td: newDictionary()}
	for _, p := range dec.SB {
		e.sd.intern(p.A)
		e.bd.intern(p.B)
	}
	for _, p := range dec.BT {
		e.bd.intern(p.A)
		e.td.intern(p.B)
	}
	for _, p := range dec.ST {
		e.sd.intern(p.A)
		e.td.intern(p.B)
	}
	e.bOff = uint32(len(e.sd.names))
	e.tOff = e.bOff + uint32(len(e.bd.names))
	for _, p := range dec.SB {
		e.Edges = append(e.Edges, [2]uint32{e.sd.ids[p.A], e.bOff + e.bd.ids[p.B]})
	}
	for _, p := range dec.BT {
		e.Edges = append(e.Edges, [2]uint32{e.bOff + e.bd.ids[p.A], e.tOff + e.td.ids[p.B]})
	}
	for _, p := range dec.ST {
		e.Edges = append(e.Edges, [2]uint32{e.sd.ids[p.A], e.tOff + e.td.ids[p.B]})
	}
	return e
}

// Row decodes one triangle (vertex ids of the encoded graph, any order)
// into the join row it represents; the tripartite structure means each
// triangle has exactly one vertex per attribute class.
func (e *Encoded) Row(a, b, c uint32) Row {
	var r Row
	for _, id := range [3]uint32{a, b, c} {
		switch {
		case id < e.bOff:
			r.Salesperson = e.sd.names[id]
		case id < e.tOff:
			r.Brand = e.bd.names[id-e.bOff]
		default:
			r.ProductType = e.td.names[id-e.tOff]
		}
	}
	return r
}

// Join computes SB ⋈ BT ⋈ ST and returns its rows (in no particular
// order) together with I/O statistics of the underlying enumeration.
func (dec Decomposition) Join(opt Options, visit func(Row)) (Stats, error) {
	var st Stats
	m, b := opt.MemoryWords, opt.BlockWords
	if m == 0 {
		m = 1 << 16
	}
	if b == 0 {
		b = 1 << 7
	}
	sp, err := newSpace(m, b)
	if err != nil {
		return st, err
	}

	enc := dec.Encode()
	var el graph.EdgeList
	for _, e := range enc.Edges {
		el.Add(e[0], e[1])
	}

	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()

	emit := func(a, b, c uint32) {
		st.Rows++
		visit(enc.Row(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
	}

	switch opt.Algorithm {
	case CacheAware:
		trienum.CacheAware(sp, g, opt.Seed, emit)
	case CacheOblivious:
		trienum.Oblivious(sp, g, opt.Seed, emit)
	case Deterministic:
		if _, err := trienum.Deterministic(sp, g, 0, emit); err != nil {
			return st, err
		}
	case HuTaoChung:
		trienum.HuTaoChung(sp, g, emit)
	default:
		return st, fmt.Errorf("join: unknown algorithm %d", opt.Algorithm)
	}
	ios := sp.Stats()
	st.IOs = ios.IOs()
	st.BlockReads = ios.BlockReads
	st.BlockWrite = ios.BlockWrites
	return st, nil
}

func newSpace(m, b int) (*extmem.Space, error) {
	if b <= 0 || b&(b-1) != 0 || m < 2*b || m < b*b {
		return nil, fmt.Errorf("join: invalid machine M=%d B=%d (need power-of-two B, M >= max(2B, B²))", m, b)
	}
	return extmem.NewSpace(extmem.Config{M: m, B: b}), nil
}

// Decompose projects a ternary relation onto its three binary
// projections, deduplicating pairs. If the relation is in 5th normal
// form, Join(Decompose(R)) reconstructs R exactly.
func Decompose(rows []Row) Decomposition {
	var dec Decomposition
	sb := map[Pair]bool{}
	bt := map[Pair]bool{}
	st := map[Pair]bool{}
	for _, r := range rows {
		p1 := Pair{r.Salesperson, r.Brand}
		p2 := Pair{r.Brand, r.ProductType}
		p3 := Pair{r.Salesperson, r.ProductType}
		if !sb[p1] {
			sb[p1] = true
			dec.SB = append(dec.SB, p1)
		}
		if !bt[p2] {
			bt[p2] = true
			dec.BT = append(dec.BT, p2)
		}
		if !st[p3] {
			st[p3] = true
			dec.ST = append(dec.ST, p3)
		}
	}
	return dec
}
