package join

import (
	"fmt"
	"sort"
	"testing"
)

// fifthNormalFormRelation builds a relation satisfying the 5NF join
// dependency: each salesperson sells all of B_s × T_s for personal sets
// B_s, T_s restricted to available (brand, type) pairs... To guarantee
// lossless reconstruction we close the relation under the join dependency.
func fifthNormalFormRelation() []Row {
	base := []Row{
		{"ann", "acme", "vacuum"},
		{"ann", "acme", "toaster"},
		{"ann", "bolt", "vacuum"},
		{"bob", "bolt", "toaster"},
		{"bob", "cord", "kettle"},
		{"eve", "acme", "kettle"},
	}
	return joinClosure(base)
}

// joinClosure closes rows under the ternary join dependency, so that the
// decomposition is lossless (the relation is the join of its projections).
func joinClosure(rows []Row) []Row {
	set := map[Row]bool{}
	for _, r := range rows {
		set[r] = true
	}
	for {
		dec := decomposeSet(set)
		added := false
		for _, r := range joinNaive(dec) {
			if !set[r] {
				set[r] = true
				added = true
			}
		}
		if !added {
			break
		}
	}
	var out []Row
	for r := range set {
		out = append(out, r)
	}
	sortRows(out)
	return out
}

func decomposeSet(set map[Row]bool) Decomposition {
	var rows []Row
	for r := range set {
		rows = append(rows, r)
	}
	return Decompose(rows)
}

// joinNaive is an in-memory nested-loop reference join.
func joinNaive(d Decomposition) []Row {
	bt := map[string][]string{}
	for _, p := range d.BT {
		bt[p.A] = append(bt[p.A], p.B)
	}
	st := map[Pair]bool{}
	for _, p := range d.ST {
		st[p] = true
	}
	var out []Row
	for _, p := range d.SB {
		for _, ty := range bt[p.B] {
			if st[Pair{p.A, ty}] {
				out = append(out, Row{p.A, p.B, ty})
			}
		}
	}
	sortRows(out)
	return out
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Salesperson != b.Salesperson {
			return a.Salesperson < b.Salesperson
		}
		if a.Brand != b.Brand {
			return a.Brand < b.Brand
		}
		return a.ProductType < b.ProductType
	})
}

func TestJoinReconstructsRelation(t *testing.T) {
	rel := fifthNormalFormRelation()
	dec := Decompose(rel)
	for _, alg := range []Algorithm{CacheAware, CacheOblivious, Deterministic, HuTaoChung} {
		var got []Row
		stats, err := dec.Join(Options{Algorithm: alg, Seed: 5}, func(r Row) {
			got = append(got, r)
		})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		sortRows(got)
		if len(got) != len(rel) {
			t.Fatalf("alg %d: %d rows, want %d\ngot:  %v\nwant: %v", alg, len(got), len(rel), got, rel)
		}
		for i := range rel {
			if got[i] != rel[i] {
				t.Fatalf("alg %d row %d: %v != %v", alg, i, got[i], rel[i])
			}
		}
		if stats.Rows != uint64(len(rel)) {
			t.Errorf("alg %d: Stats.Rows=%d want %d", alg, stats.Rows, len(rel))
		}
	}
}

func TestJoinMatchesNaiveOnRandomRelations(t *testing.T) {
	// Random decompositions (not necessarily from a 5NF relation): the
	// triangle join must agree with the naive in-memory join of the three
	// projections.
	for trial := 0; trial < 5; trial++ {
		var dec Decomposition
		nS, nB, nT := 8+trial, 6, 7
		for s := 0; s < nS; s++ {
			for b := 0; b < nB; b++ {
				if (s*7+b*3+trial)%3 == 0 {
					dec.SB = append(dec.SB, Pair{name("s", s), name("b", b)})
				}
			}
		}
		for b := 0; b < nB; b++ {
			for ty := 0; ty < nT; ty++ {
				if (b*5+ty+trial)%2 == 0 {
					dec.BT = append(dec.BT, Pair{name("b", b), name("t", ty)})
				}
			}
		}
		for s := 0; s < nS; s++ {
			for ty := 0; ty < nT; ty++ {
				if (s+ty*11+trial)%4 != 1 {
					dec.ST = append(dec.ST, Pair{name("s", s), name("t", ty)})
				}
			}
		}
		want := joinNaive(dec)
		var got []Row
		if _, err := dec.Join(Options{Algorithm: CacheOblivious, Seed: uint64(trial)}, func(r Row) {
			got = append(got, r)
		}); err != nil {
			t.Fatal(err)
		}
		sortRows(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestJoinEmptyInput(t *testing.T) {
	var dec Decomposition
	stats, err := dec.Join(Options{}, func(Row) { t.Fatal("no rows expected") })
	if err != nil || stats.Rows != 0 {
		t.Errorf("empty join: stats=%v err=%v", stats, err)
	}
}

func TestJoinRejectsBadMachine(t *testing.T) {
	var dec Decomposition
	if _, err := dec.Join(Options{MemoryWords: 100, BlockWords: 33}, func(Row) {}); err == nil {
		t.Error("non-power-of-two block size accepted")
	}
}

func TestDecomposeDeduplicates(t *testing.T) {
	rows := []Row{{"a", "b", "c"}, {"a", "b", "d"}}
	dec := Decompose(rows)
	if len(dec.SB) != 1 {
		t.Errorf("SB has %d pairs, want 1", len(dec.SB))
	}
	if len(dec.BT) != 2 || len(dec.ST) != 2 {
		t.Errorf("BT=%d ST=%d, want 2 and 2", len(dec.BT), len(dec.ST))
	}
}

func name(prefix string, i int) string { return fmt.Sprintf("%s%02d", prefix, i) }
