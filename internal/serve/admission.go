package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Admission control: a tenant is a budget.
//
// Every query and update session the daemon runs costs real internal
// memory — the session Space's M-word cache (the graph's
// Options.MemoryWords) — and the admission controller meters exactly
// that unit per tenant: at most MaxSessions concurrent sessions and at
// most MaxMemoryWords total M-words outstanding. Work beyond either cap
// is rejected immediately (the handler answers 429) instead of queueing,
// so one tenant saturating its budget cannot delay another tenant's
// admissions; budgets are independent, and the underlying handle runs
// all admitted sessions concurrently (PR 4's shared-core isolation).

// errOverBudget is the admission failure; the handler maps it to 429.
type errOverBudget struct {
	tenant string
	what   string
}

func (e errOverBudget) Error() string {
	return fmt.Sprintf("tenant %q over %s budget", e.tenant, e.what)
}

// admission tracks per-tenant budgets and cumulative usage statistics.
// A zero cap means unlimited.
type admission struct {
	maxSessions int
	maxWords    int64

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is the live budget plus the cumulative counters surfaced
// on /v1/stats. Guarded by admission.mu.
type tenantState struct {
	sessions int
	words    int64

	admitted  uint64
	rejected  uint64
	queries   uint64
	updates   uint64
	emissions uint64
	reads     uint64
	writes    uint64
	updateIOs uint64
	bytes     uint64
}

func newAdmission(maxSessions int, maxWords int64) *admission {
	return &admission{
		maxSessions: maxSessions,
		maxWords:    maxWords,
		tenants:     map[string]*tenantState{},
	}
}

func (a *admission) state(tenant string) *tenantState {
	st := a.tenants[tenant]
	if st == nil {
		st = &tenantState{}
		a.tenants[tenant] = st
	}
	return st
}

// acquire admits one session of `words` M-words for tenant, returning
// the release closure, or an errOverBudget when either cap would be
// exceeded. Release is idempotent.
func (a *admission) acquire(tenant string, words int64) (func(), error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tenant)
	if a.maxSessions > 0 && st.sessions+1 > a.maxSessions {
		st.rejected++
		return nil, errOverBudget{tenant, "session"}
	}
	if a.maxWords > 0 && st.words+words > a.maxWords {
		st.rejected++
		return nil, errOverBudget{tenant, "memory"}
	}
	st.sessions++
	st.words += words
	st.admitted++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			st.sessions--
			st.words -= words
			a.mu.Unlock()
		})
	}, nil
}

// recordQuery folds a completed query's deterministic statistics into
// the tenant's counters.
func (a *admission) recordQuery(tenant string, emissions, reads, writes, bytes uint64) {
	a.mu.Lock()
	st := a.state(tenant)
	st.queries++
	st.emissions += emissions
	st.reads += reads
	st.writes += writes
	st.bytes += bytes
	a.mu.Unlock()
}

// recordUpdate folds a completed update's merge cost into the tenant's
// counters.
func (a *admission) recordUpdate(tenant string, mergeIOs uint64) {
	a.mu.Lock()
	st := a.state(tenant)
	st.updates++
	st.updateIOs += mergeIOs
	a.mu.Unlock()
}

// snapshot renders every tenant seen so far, for /v1/stats. Map
// iteration order does not leak: the JSON encoder sorts map keys, and
// tenantNames gives tests a deterministic view too.
func (a *admission) snapshot() map[string]TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStats, len(a.tenants))
	for name, st := range a.tenants {
		out[name] = TenantStats{
			ActiveSessions:    st.sessions,
			ActiveMemoryWords: st.words,
			Admitted:          st.admitted,
			Rejected:          st.rejected,
			Queries:           st.queries,
			Updates:           st.updates,
			Emissions:         st.emissions,
			BlockReads:        st.reads,
			BlockWrites:       st.writes,
			UpdateIOs:         st.updateIOs,
			BytesStreamed:     st.bytes,
		}
	}
	return out
}

// tenantNames lists the tenants seen so far, sorted.
func (a *admission) tenantNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.tenants))
	for n := range a.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
