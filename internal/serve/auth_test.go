package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro"
)

// doAuthed issues a request with an optional bearer token and returns
// the status code.
func doAuthed(t *testing.T, method, url, token string, body []byte) (int, []byte) {
	t.Helper()
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestAuthToken: with Config.AuthToken set, every route except
// GET /healthz requires the exact bearer token, checked before the
// X-Tenant header buys anything; without it, no auth applies.
func TestAuthToken(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{AuthToken: "sesame"}, "g", "gnm:n=60,m=200", repro.Options{})

	// The liveness probe stays open: orchestration must not need the
	// token to see the process is up.
	if code, _ := doAuthed(t, "GET", ts.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz without token = %d, want 200", code)
	}

	for _, tc := range []struct {
		name  string
		token string
		want  int
	}{
		{"missing token", "", http.StatusUnauthorized},
		{"wrong token", "open says me", http.StatusUnauthorized},
		{"right token", "sesame", http.StatusOK},
	} {
		code, body := doAuthed(t, "GET", ts.URL+"/v1/graphs", tc.token, nil)
		if code != tc.want {
			t.Fatalf("%s: GET /v1/graphs = %d, want %d", tc.name, code, tc.want)
		}
		if code == http.StatusUnauthorized {
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("%s: 401 body is not an ErrorResponse: %q", tc.name, body)
			}
		}
	}

	// A query with a tenant header but no token is rejected before any
	// admission accounting happens.
	qb, _ := json.Marshal(QueryRequest{})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/graphs/g/query", bytes.NewReader(qb))
	req.Header.Set("X-Tenant", "sneaky")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated tenant query = %d, want 401", resp.StatusCode)
	}
	var stats StatsResponse
	code, sb := doAuthed(t, "GET", ts.URL+"/v1/stats", "sesame", nil)
	if code != http.StatusOK {
		t.Fatalf("authed stats = %d", code)
	}
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats.Tenants["sneaky"]; ok {
		t.Fatal("a rejected unauthenticated request consumed admission accounting")
	}
}

// TestAuthOffByDefault: an empty AuthToken leaves every route open, as
// before the auth satellite.
func TestAuthOffByDefault(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=60,m=200", repro.Options{})
	if code, _ := doAuthed(t, "GET", ts.URL+"/v1/graphs", "", nil); code != http.StatusOK {
		t.Fatalf("no-auth server rejected a bare request: %d", code)
	}
}
