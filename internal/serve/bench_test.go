package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

// BenchmarkE20ServeQuery measures the daemon round-trip overhead of a
// streamed query against the in-process callback query it wraps — the
// price of the network boundary — and asserts the served-results
// byte-identity contract on every iteration: the NDJSON data lines must
// equal the in-process stream encoded with the same wire encoder, and
// the trailer Result must equal the in-process Result. Reported
// metrics: IOs (the deterministic per-query block transfers, identical
// on both sides by construction), wireB/op (response bytes), and
// xRTT (wall-clock ratio wire/in-process; scheduling-dependent, not
// gated). See EXPERIMENTS.md E20.
func BenchmarkE20ServeQuery(b *testing.B) {
	g, err := repro.Build(repro.FromSpec("gnm:n=400,m=2800"), repro.Options{Seed: 20})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{})
	if err := s.AddGraph("g", g, ""); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// In-process reference: stream bytes and Result, plus its wall-clock.
	var want []byte
	t0 := time.Now()
	res, err := g.TrianglesFunc(context.Background(), repro.Query{Seed: 1}, func(x, y, z uint32) {
		want = AppendEmission(want, []uint32{x, y, z})
	})
	if err != nil {
		b.Fatal(err)
	}
	inprocNs := float64(time.Since(t0).Nanoseconds())
	wantRes := ToWireResult(res)
	qb, _ := json.Marshal(QueryRequest{Seed: 1})

	var wireBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/graphs/g/query", "application/json", bytes.NewReader(qb))
		if err != nil {
			b.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		wireBytes = len(raw)
		nl := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
		var trailer QueryTrailer
		if err := json.Unmarshal(raw[nl:], &trailer); err != nil {
			b.Fatalf("trailer: %v", err)
		}
		if !bytes.Equal(raw[:nl], want) {
			b.Fatalf("served stream differs from in-process stream (%d vs %d bytes)", nl, len(want))
		}
		if trailer.Result != wantRes {
			b.Fatalf("served result %+v != in-process %+v", trailer.Result, wantRes)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Stats.IOs()), "IOs")
	b.ReportMetric(float64(wireBytes), "wireB/op")
	b.ReportMetric(float64(res.Matches), "matches")
	if b.N > 0 && inprocNs > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/inprocNs, "xRTT")
	}
}
