package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro"
	"repro/internal/cluster"
)

// Cluster roles of the daemon — the server side of the scatter–gather
// layer (see the cluster package doc for the design).
//
// A shard daemon (trienumd -shard) serves one sub-image and executes
// exactly the color tuples its manifest range owns: for each owned
// tuple it assembles the tuple's edge set from a coloring-bucketed
// snapshot of the sub-image, builds an in-memory sub-graph on the
// manifest's simulated machine, runs the query ordered, and keeps the
// emissions whose vertex-color multiset is exactly the tuple. The
// collected emissions are sorted into the canonical order and streamed;
// the coordinator k-way merges the (disjoint, sorted) shard streams.
//
// The cluster endpoints are an operator-internal wire: they bypass
// tenant admission (the coordinator is the only intended client) but
// sit behind the daemon's bearer-token auth like every other route.

// shardState is the daemon's shard role.
type shardState struct {
	man   *cluster.Manifest
	index int
	g     *repro.Graph

	// mu orders queries against routed-update commits: a query holds the
	// read lock from reading the epoch through snapshotting the edge
	// set, a commit holds the write lock while applying its sub-delta
	// and advancing the epoch. A stream therefore runs entirely on one
	// (epoch, generation) pair — never a mix.
	mu       sync.RWMutex
	epoch    uint64
	staged   map[uint64]stagedDelta
	lastID   uint64
	lastResp cluster.ShardUpdateResponse
}

// stagedDelta is a prepared-but-uncommitted sub-delta.
type stagedDelta struct {
	add    [][2]uint32
	remove [][2]uint32
}

// ServeShard configures the server's shard role: serve sub-image g as
// shard index of the manifest's cluster. Call before Handler; the
// server takes ownership of g (Close closes it). The shard's cluster
// epoch starts at 0 on every boot — it counts routed updates committed
// through this process, not a durable property of the image — so a
// restarted shard must be re-dialed by a fresh coordinator.
func (s *Server) ServeShard(man *cluster.Manifest, index int, g *repro.Graph) error {
	if err := man.Validate(); err != nil {
		return err
	}
	if index < 0 || index >= len(man.Shards) {
		return fmt.Errorf("serve: shard index %d out of range (manifest has %d shards)", index, len(man.Shards))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shard != nil {
		return errors.New("serve: shard role already configured")
	}
	s.shard = &shardState{man: man, index: index, g: g, staged: map[uint64]stagedDelta{}}
	return nil
}

// ServeCoordinator configures the server's coordinator role: expose the
// gathered query/update surface of an already-dialed cluster handle.
// Call before Handler; the server takes ownership (Close closes it).
func (s *Server) ServeCoordinator(cl *repro.Cluster) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coord != nil {
		return errors.New("serve: coordinator role already configured")
	}
	s.coord = cl
	return nil
}

// registerCluster mounts the routes of whichever cluster roles are
// configured.
func (s *Server) registerCluster(mux *http.ServeMux) {
	if s.shard != nil {
		mux.HandleFunc("GET /v1/cluster/shard/info", s.handleShardInfo)
		mux.HandleFunc("POST /v1/cluster/shard/query", s.handleShardQuery)
		mux.HandleFunc("POST /v1/cluster/shard/update", s.handleShardUpdate)
	}
	if s.coord != nil {
		mux.HandleFunc("GET /v1/cluster/info", s.handleClusterInfo)
		mux.HandleFunc("POST /v1/cluster/query", s.handleClusterQuery)
		mux.HandleFunc("POST /v1/cluster/update", s.handleClusterUpdate)
	}
}

func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	st := s.shard
	st.mu.RLock()
	epoch := st.epoch
	st.mu.RUnlock()
	sh := st.man.Shards[st.index]
	writeJSON(w, http.StatusOK, cluster.ShardInfoResponse{
		Index:       st.index,
		Lo:          sh.Lo,
		Hi:          sh.Hi,
		Colors:      st.man.Colors,
		Seed:        st.man.Seed,
		MemoryWords: st.man.MemoryWords,
		BlockWords:  st.man.BlockWords,
		Epoch:       epoch,
		Generation:  st.g.Generation(),
		Vertices:    st.g.NumVertices(),
		Edges:       st.g.NumEdges(),
	})
}

// clusterQuery is a resolved cluster query: the tuple size and the
// per-subproblem query parameters shared by shard and coordinator
// handlers.
type clusterQuery struct {
	kind    string
	tupleK  int
	pattern *repro.Pattern
	alg     repro.Algorithm
}

func resolveClusterQuery(kind string, k int, patName, algName string) (clusterQuery, error) {
	cq := clusterQuery{kind: kind}
	if cq.kind == "" {
		cq.kind = "triangles"
	}
	switch cq.kind {
	case "triangles":
		if k != 0 || patName != "" {
			return cq, errors.New("k and pattern do not apply to a triangles query")
		}
		cq.tupleK = 3
		if algName != "" {
			alg, err := repro.ParseAlgorithm(algName)
			if err != nil {
				return cq, err
			}
			cq.alg = alg
		} else {
			cq.alg = repro.CacheAware
		}
	case "cliques":
		if k < 3 {
			return cq, fmt.Errorf("cliques query needs k >= 3, got %d", k)
		}
		if algName != "" || patName != "" {
			return cq, errors.New("algorithm and pattern do not apply to a cliques query")
		}
		cq.tupleK = k
	case "match":
		if patName == "" {
			return cq, errors.New("match query needs a pattern name")
		}
		if algName != "" || k != 0 {
			return cq, errors.New("algorithm and k do not apply to a match query")
		}
		p, err := repro.ParsePattern(patName)
		if err != nil {
			return cq, err
		}
		cq.pattern = p
		cq.tupleK = p.K()
	default:
		return cq, fmt.Errorf("unknown query kind %q (have triangles, cliques, match)", cq.kind)
	}
	return cq, nil
}

// runShardQuery executes the shard's share of one cluster query: every
// owned color tuple, each as an independent in-memory sub-build plus
// enumeration on the manifest's simulated machine. The returned flat
// tuple buffer is sorted into the canonical order. Everything about the
// result — emissions, counts, CanonIOs, Stats — is a pure function of
// (edge set, manifest, query): the per-tuple edge lists are assembled
// in a fixed deterministic order (lexicographic color pairs, each
// bucket sorted by id pair), so no trace of this process's history or
// placement leaks into the aggregates.
func runShardQuery(ctx context.Context, st *shardState, req cluster.ShardQueryRequest, cq clusterQuery) (flat []uint32, tr cluster.ShardQueryTrailer, err error) {
	// Epoch read and edge snapshot under one read lock: the stream's
	// (epoch, generation) pair is consistent.
	st.mu.RLock()
	epoch := st.epoch
	if req.Epoch != nil && *req.Epoch != epoch {
		st.mu.RUnlock()
		return nil, tr, fmt.Errorf("epoch mismatch: coordinator at %d, shard at %d", *req.Epoch, epoch)
	}
	col := st.man.Coloring()
	buckets := map[uint64][][2]uint32{}
	snapErr := st.g.EdgesFunc(ctx, func(u, v uint32) {
		cu, cv := col.Color(u), col.Color(v)
		if cu > cv {
			cu, cv = cv, cu
		}
		key := uint64(cu)<<32 | uint64(cv)
		buckets[key] = append(buckets[key], [2]uint32{u, v})
	})
	tr.Epoch = epoch
	tr.Vertices = st.g.NumVertices()
	tr.Edges = st.g.NumEdges()
	st.mu.RUnlock()
	if snapErr != nil {
		return nil, tr, snapErr
	}
	// EdgesFunc emits in canonical rank order, which is an artifact of
	// this sub-image's canonicalization; re-sort by id pair so the
	// per-tuple input order (and with it the sub-build cost) depends
	// only on the edge set.
	for _, b := range buckets {
		sort.Slice(b, func(i, j int) bool {
			if b[i][0] != b[j][0] {
				return b[i][0] < b[j][0]
			}
			return b[i][1] < b[j][1]
		})
	}

	sq := repro.Query{Seed: req.Seed, Workers: req.Workers, Ordered: true}
	if req.Native {
		sq.Mode = repro.ModeNative
	}
	emColors := make([]uint32, cq.tupleK)
	distinct := make([]uint32, 0, cq.tupleK)
	err = st.man.OwnedTuples(st.index, cq.tupleK, func(t []uint32) error {
		tr.Subproblems++
		distinct = distinct[:0]
		for _, c := range t {
			if len(distinct) == 0 || distinct[len(distinct)-1] != c {
				distinct = append(distinct, c)
			}
		}
		var es [][2]uint32
		for i := 0; i < len(distinct); i++ {
			for j := i; j < len(distinct); j++ {
				es = append(es, buckets[uint64(distinct[i])<<32|uint64(distinct[j])]...)
			}
		}
		if len(es) == 0 {
			// Nothing to build — and crucially, nothing any other shard
			// count would have built either: the skip is a function of
			// the edge set and tuple alone.
			return nil
		}
		tr.Builds++
		sg, err := repro.Build(repro.FromEdges(es), repro.Options{
			MemoryWords: st.man.MemoryWords,
			BlockWords:  st.man.BlockWords,
			Workers:     req.Workers,
		})
		if err != nil {
			return err
		}
		tr.CanonIOs += sg.CanonIOs()
		// Keep exactly the emissions whose vertex-color multiset is the
		// tuple: the sub-graph contains every edge among the tuple's
		// colors, so it also finds matches belonging to sub-multisets —
		// those belong to (and are found by) other tuples.
		collect := func(vs []uint32) {
			for i, v := range vs {
				emColors[i] = col.Color(v)
			}
			sort.Slice(emColors, func(i, j int) bool { return emColors[i] < emColors[j] })
			for i := range emColors {
				if emColors[i] != t[i] {
					return
				}
			}
			flat = append(flat, vs...)
		}
		var res repro.Result
		switch cq.kind {
		case "triangles":
			sq2 := sq
			sq2.Algorithm = cq.alg
			var tri [3]uint32
			res, err = sg.TrianglesFunc(ctx, sq2, func(a, b, c uint32) {
				tri[0], tri[1], tri[2] = a, b, c
				collect(tri[:])
			})
		case "cliques":
			res, err = sg.CliquesFunc(ctx, cq.tupleK, sq, collect)
		case "match":
			res, err = sg.MatchFunc(ctx, cq.pattern, sq, collect)
		}
		cerr := sg.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		tr.Stats.Add(toClusterStats(res.Stats))
		return nil
	})
	if err != nil {
		return nil, tr, err
	}
	cluster.SortTuples(flat, cq.tupleK)
	tr.Done = true
	tr.Delivered = uint64(len(flat) / cq.tupleK)
	return flat, tr, nil
}

func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	st := s.shard
	var req cluster.ShardQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard query: %v", err)
		return
	}
	cq, err := resolveClusterQuery(req.Kind, req.K, req.Pattern, req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flat, tr, err := runShardQuery(r.Context(), st, req, cq)
	if err != nil {
		// The stream has not started: every failure still gets a proper
		// status line.
		status := http.StatusInternalServerError
		switch {
		case req.Epoch != nil && tr.Epoch != *req.Epoch:
			status = http.StatusConflict
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusRequestTimeout
		case errors.Is(err, repro.ErrGraphClosed):
			status = http.StatusGone
		}
		writeError(w, status, "shard query: %v", err)
		return
	}
	s.streamFlat(w, flat, cq.tupleK, tr)
}

// streamFlat writes an NDJSON stream of k-tuples followed by one
// trailer line.
func (s *Server) streamFlat(w http.ResponseWriter, flat []uint32, k int, trailer any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw, flush := newStreamWriter(w)
	var line []byte
	since := 0
	for i := 0; i+k <= len(flat); i += k {
		line = AppendEmission(line[:0], flat[i:i+k])
		if _, err := bw.Write(line); err != nil {
			return
		}
		if since++; since >= s.cfg.FlushEvery {
			flush()
			since = 0
		}
	}
	tb, _ := json.Marshal(trailer)
	bw.Write(append(tb, '\n'))
	flush()
}

func (s *Server) handleShardUpdate(w http.ResponseWriter, r *http.Request) {
	st := s.shard
	var req cluster.ShardUpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard update: %v", err)
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	resp := cluster.ShardUpdateResponse{Phase: req.Phase, UpdateID: req.UpdateID, Epoch: st.epoch, Generation: st.g.Generation()}
	switch req.Phase {
	case cluster.PhasePrepare:
		if req.Epoch != st.epoch {
			writeError(w, http.StatusConflict, "prepare against epoch %d but shard is at %d", req.Epoch, st.epoch)
			return
		}
		if req.UpdateID != st.epoch+1 {
			writeError(w, http.StatusConflict, "prepare id %d but the next update is %d", req.UpdateID, st.epoch+1)
			return
		}
		// Re-preparing the same id overwrites: a coordinator retry of a
		// failed round restages cleanly.
		st.staged[req.UpdateID] = stagedDelta{add: req.Add, remove: req.Remove}
	case cluster.PhaseAbort:
		delete(st.staged, req.UpdateID)
	case cluster.PhaseCommit:
		if req.UpdateID == st.lastID && st.lastID != 0 {
			// Idempotent replay: the commit already happened; a retrying
			// coordinator (repairing a partially-committed round) gets
			// the remembered outcome instead of a double-apply.
			writeJSON(w, http.StatusOK, st.lastResp)
			return
		}
		d, ok := st.staged[req.UpdateID]
		if !ok {
			writeError(w, http.StatusConflict, "commit %d: nothing staged under that id", req.UpdateID)
			return
		}
		if req.Epoch != st.epoch {
			writeError(w, http.StatusConflict, "commit against epoch %d but shard is at %d", req.Epoch, st.epoch)
			return
		}
		res, err := st.g.Update(r.Context(), repro.Delta{Add: d.add, Remove: d.remove})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "commit %d: %v", req.UpdateID, err)
			return
		}
		delete(st.staged, req.UpdateID)
		st.epoch++
		resp.Epoch = st.epoch
		resp.Generation = res.Generation
		resp.Added, resp.Removed = res.Added, res.Removed
		resp.Vertices, resp.Edges = res.Vertices, res.Edges
		resp.MergeIOs = res.MergeIOs
		st.lastID = req.UpdateID
		st.lastResp = resp
	default:
		writeError(w, http.StatusBadRequest, "unknown update phase %q", req.Phase)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	cl := s.coord
	writeJSON(w, http.StatusOK, cluster.CoordinatorInfoResponse{
		Colors:   cl.Colors(),
		Seed:     cl.Seed(),
		Epoch:    cl.Epoch(),
		Shards:   cl.Shards(),
		Vertices: cl.NumVertices(),
		Edges:    cl.NumEdges(),
	})
}

// handleClusterQuery streams a gathered cluster query: the coordinator
// fans out to every shard, k-way merges, and this handler re-encodes
// the merged tuples — the same {"v":[...]} lines a single-process
// Query.Ordered stream carries, byte for byte.
func (s *Server) handleClusterQuery(w http.ResponseWriter, r *http.Request) {
	cl := s.coord
	var req cluster.CoordinatorQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad cluster query: %v", err)
		return
	}
	cq, err := resolveClusterQuery(req.Kind, req.K, req.Pattern, req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := repro.Query{Seed: req.Seed, Workers: req.Workers, Limit: req.Limit}
	if req.Native {
		q.Mode = repro.ModeNative
	}

	bw, flush := newStreamWriter(w)
	var (
		line     []byte
		since    int
		wroteAny bool
		writeErr error
	)
	emit := func(vs []uint32) {
		if writeErr != nil {
			return
		}
		if !wroteAny {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wroteAny = true
		}
		line = AppendEmission(line[:0], vs)
		if _, err := bw.Write(line); err != nil {
			writeErr = err
			return
		}
		if since++; since >= s.cfg.FlushEvery {
			flush()
			since = 0
		}
	}

	var cr repro.ClusterResult
	switch cq.kind {
	case "triangles":
		q.Algorithm = cq.alg
		cr, err = cl.TrianglesFunc(r.Context(), q, func(a, b, c uint32) { emit([]uint32{a, b, c}) })
	case "cliques":
		cr, err = cl.CliquesFunc(r.Context(), cq.tupleK, q, emit)
	case "match":
		cr, err = cl.MatchFunc(r.Context(), cq.pattern, q, emit)
	}
	if err != nil && !wroteAny {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusRequestTimeout
		case errors.Is(err, repro.ErrClusterClosed):
			status = http.StatusGone
		}
		writeError(w, status, "cluster query: %v", err)
		return
	}
	if !wroteAny {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	trailer := cluster.CoordinatorTrailer{
		Done:        err == nil,
		Delivered:   cr.Delivered,
		Matches:     cr.Matches,
		Epoch:       cr.Epoch,
		Vertices:    cr.Vertices,
		Edges:       cr.Edges,
		Subproblems: cr.Subproblems,
		CanonIOs:    cr.CanonIOs,
		Stats:       toClusterStats(cr.Stats),
	}
	for _, sr := range cr.Shards {
		trailer.Shards = append(trailer.Shards, cluster.ShardRun{
			Index:       sr.Index,
			Delivered:   sr.Delivered,
			Subproblems: sr.Subproblems,
			Builds:      sr.Builds,
			CanonIOs:    sr.CanonIOs,
			Stats:       toClusterStats(sr.Stats),
		})
	}
	if err != nil {
		trailer.Error = err.Error()
	}
	tb, _ := json.Marshal(trailer)
	bw.Write(append(tb, '\n'))
	flush()
}

func (s *Server) handleClusterUpdate(w http.ResponseWriter, r *http.Request) {
	cl := s.coord
	var req cluster.CoordinatorUpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad cluster update: %v", err)
		return
	}
	ur, err := cl.Update(r.Context(), repro.Delta{Add: req.Add, Remove: req.Remove})
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, repro.ErrClusterClosed) {
			status = http.StatusGone
		}
		writeError(w, status, "cluster update: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.CoordinatorUpdateResponse{
		Epoch:    ur.Epoch,
		Added:    ur.Added,
		Removed:  ur.Removed,
		Vertices: ur.Vertices,
		Edges:    ur.Edges,
		MergeIOs: ur.MergeIOs,
	})
}

// toClusterStats converts in-process statistics to the cluster wire.
func toClusterStats(st repro.IOStats) cluster.IOStats {
	return cluster.IOStats{
		BlockReads:     st.BlockReads,
		BlockWrites:    st.BlockWrites,
		WordReads:      st.WordReads,
		WordWrites:     st.WordWrites,
		PeakLeaseWords: st.PeakLeaseWords,
		PeakDiskWords:  st.PeakDiskWords,
	}
}
