package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// The cursor token: an opaque, resumable position in a query's
// deterministic emission stream.
//
// The engine's emission order is a pure function of (canonical image,
// query kind, k/pattern, algorithm, seed) — invariant in Workers,
// concurrency, and time — so a position in the stream is fully
// described by the number of emissions before it plus the query
// identity and the generation whose image it ran on. Resuming replays
// the producer and suppresses the first Pos emissions; the suffix
// delivered is byte-identical to what the uncursored stream would have
// carried from that position, which the wire-contract tests pin.
//
// The token is base64url(JSON) + "." + an FNV-1a checksum. The checksum
// guards against truncation and accidental corruption in transit, not
// against a malicious client — a forged cursor can only reposition that
// client's own stream.

// cursor is the decoded token. Short JSON keys keep the token compact;
// it is opaque to clients either way.
type cursor struct {
	V         int    `json:"v"`           // codec version, currently 1
	Graph     string `json:"g"`           // registry ID the token is valid for
	Gen       uint64 `json:"n"`           // generation the emission order belongs to
	Kind      string `json:"k"`           // resolved query kind
	K         int    `json:"c,omitempty"` // clique size (kind "cliques")
	Pattern   string `json:"p,omitempty"` // pattern name (kind "match")
	Algorithm string `json:"a,omitempty"` // algorithm name (kind "triangles")
	Seed      uint64 `json:"s,omitempty"` // decomposition seed
	Native    bool   `json:"x,omitempty"` // native execution mode
	Ordered   bool   `json:"d,omitempty"` // canonical global order
	Pos       uint64 `json:"o"`           // emissions already delivered
}

const cursorVersion = 1

func cursorSum(payload string) string {
	h := fnv.New32a()
	h.Write([]byte(payload))
	return fmt.Sprintf("%08x", h.Sum32())
}

// encodeCursor mints the opaque token for c.
func encodeCursor(c cursor) string {
	c.V = cursorVersion
	b, err := json.Marshal(c)
	if err != nil {
		// cursor has no unmarshalable fields; unreachable.
		panic(err)
	}
	payload := base64.RawURLEncoding.EncodeToString(b)
	return payload + "." + cursorSum(payload)
}

// decodeCursor validates and decodes a token minted by encodeCursor.
func decodeCursor(tok string) (cursor, error) {
	var c cursor
	i := len(tok) - 9
	if i < 0 || tok[i] != '.' {
		return c, fmt.Errorf("malformed cursor")
	}
	payload, sum := tok[:i], tok[i+1:]
	if cursorSum(payload) != sum {
		return c, fmt.Errorf("cursor checksum mismatch")
	}
	b, err := base64.RawURLEncoding.DecodeString(payload)
	if err != nil {
		return c, fmt.Errorf("malformed cursor: %v", err)
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("malformed cursor: %v", err)
	}
	if c.V != cursorVersion {
		return c, fmt.Errorf("unsupported cursor version %d", c.V)
	}
	return c, nil
}
