package serve

import (
	"strings"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	in := cursor{
		Graph: "social",
		Gen:   7,
		Kind:  "cliques",
		K:     5,
		Seed:  42,
		Pos:   123456,
	}
	tok := encodeCursor(in)
	out, err := decodeCursor(tok)
	if err != nil {
		t.Fatal(err)
	}
	in.V = cursorVersion
	if out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestCursorRejectsCorruption(t *testing.T) {
	tok := encodeCursor(cursor{Graph: "g", Kind: "triangles", Pos: 9})
	cases := []string{
		"",
		"garbage",
		tok[:len(tok)-1], // truncated checksum
		tok[1:],          // truncated payload
		"x" + tok[1:],    // flipped payload byte
		strings.Repeat("A", len(tok)) + ".deadbeef", // wrong checksum
	}
	for _, c := range cases {
		if _, err := decodeCursor(c); err == nil {
			t.Errorf("decodeCursor(%q) accepted corrupt token", c)
		}
	}
	// A token that checks out but carries a future version is rejected.
	future := cursor{Graph: "g", Kind: "triangles"}
	good := encodeCursor(future)
	if _, err := decodeCursor(good); err != nil {
		t.Fatalf("control token rejected: %v", err)
	}
}

func TestAdmissionCaps(t *testing.T) {
	a := newAdmission(2, 100)
	r1, err := a.acquire("t", 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquire("t", 60); err == nil {
		t.Error("word budget 100 admitted 50+60")
	}
	r2, err := a.acquire("t", 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquire("t", 1); err == nil {
		t.Error("session cap 2 admitted a third session")
	}
	// Budgets are per tenant.
	r3, err := a.acquire("u", 50)
	if err != nil {
		t.Errorf("independent tenant rejected: %v", err)
	}
	r1()
	r1() // idempotent
	r4, err := a.acquire("t", 50)
	if err != nil {
		t.Errorf("release did not free budget: %v", err)
	}
	for _, r := range []func(){r2, r3, r4} {
		if r != nil {
			r()
		}
	}
	snap := a.snapshot()
	st := snap["t"]
	if st.ActiveSessions != 0 || st.ActiveMemoryWords != 0 {
		t.Errorf("budget not drained: %+v", st)
	}
	if st.Admitted != 3 || st.Rejected != 2 {
		t.Errorf("admission counters: %+v", st)
	}
	if names := a.tenantNames(); len(names) != 2 || names[0] != "t" || names[1] != "u" {
		t.Errorf("tenantNames: %v", names)
	}
}

func TestResolveQueryDefaults(t *testing.T) {
	rq, err := resolveQuery(QueryRequest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rq.kind != "triangles" || rq.algName != "cacheaware" {
		t.Errorf("defaults: %+v", rq)
	}
	if _, err := resolveQuery(QueryRequest{Kind: "cliques", K: 2}, nil); err == nil {
		t.Error("cliques with k=2 accepted")
	}
	if _, err := resolveQuery(QueryRequest{Kind: "match"}, nil); err == nil {
		t.Error("match without pattern accepted")
	}
	if _, err := resolveQuery(QueryRequest{K: 4}, nil); err == nil {
		t.Error("triangles with k accepted")
	}
}
