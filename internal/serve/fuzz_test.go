package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro"
)

// FuzzCursorDecode hammers the opaque-token codec: whatever bytes a
// client sends, decodeCursor must either return an error or a token
// that round-trips exactly — never panic, and never "validate" a token
// the checksum or codec version does not actually cover.
func FuzzCursorDecode(f *testing.F) {
	// Valid tokens across the query kinds, so the mutator starts from
	// structures that pass every layer of validation.
	seeds := []cursor{
		{Graph: "g", Gen: 0, Kind: "triangles", Algorithm: "cacheaware"},
		{Graph: "g", Gen: 3, Kind: "triangles", Algorithm: "colorcoded", Seed: 7, Pos: 41},
		{Graph: "social", Gen: 12, Kind: "cliques", K: 5, Pos: 1 << 40},
		{Graph: "g", Gen: 1, Kind: "match", Pattern: "diamond", Pos: 9},
		// Cross-graph replay: valid codec-wise, rejected by the handler.
		{Graph: "other", Gen: 3, Kind: "triangles", Pos: 2},
	}
	for _, c := range seeds {
		tok := encodeCursor(c)
		f.Add(tok)
		// Truncations at both ends and a corrupted checksum digit.
		f.Add(tok[:len(tok)-1])
		f.Add(tok[1:])
		if tok[len(tok)-1] == '0' {
			f.Add(tok[:len(tok)-1] + "1")
		} else {
			f.Add(tok[:len(tok)-1] + "0")
		}
	}
	f.Add("")
	f.Add(".")
	f.Add("garbage")
	f.Add(strings.Repeat(".", 32))
	f.Add("eyJ2IjoxfQ.00000000")

	f.Fuzz(func(t *testing.T, tok string) {
		c, err := decodeCursor(tok)
		if err != nil {
			return
		}
		// Anything that decodes must be a current-version token whose
		// canonical re-encoding decodes back to the identical cursor:
		// a forged or mangled token cannot smuggle in state the codec
		// would not mint itself.
		if c.V != cursorVersion {
			t.Fatalf("decodeCursor(%q) accepted version %d", tok, c.V)
		}
		re := encodeCursor(c)
		c2, err := decodeCursor(re)
		if err != nil {
			t.Fatalf("re-encoded cursor %q does not decode: %v", re, err)
		}
		if c2 != c {
			t.Fatalf("round trip drift: %+v -> %+v", c, c2)
		}
	})
}

// Malformed or misdirected cursors reaching the HTTP layer are always a
// 4xx — the codec's error paths and the handler's graph check map to
// client errors, never a 5xx or a served stream.
func TestCursorMalformedAlways4xx(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=60,m=300", repro.Options{Seed: 5})
	crossGraph := encodeCursor(cursor{Graph: "other", Kind: "triangles", Pos: 1})
	valid := encodeCursor(cursor{Graph: "g", Kind: "triangles", Algorithm: "cacheaware"})
	for _, tok := range []string{
		"garbage",
		".",
		valid[:len(valid)-2],
		valid[2:],
		strings.ToUpper(valid),
		crossGraph,
	} {
		raw, _, status, err := tryQuery(ts.URL, "g", "", QueryRequest{Cursor: tok})
		if err != nil {
			t.Fatalf("cursor %q: transport error %v", tok, err)
		}
		if status < 400 || status >= 500 {
			t.Errorf("cursor %q: want 4xx, got %d (%s)", tok, status, raw)
		}
	}
	if _, _, status, _ := tryQuery(ts.URL, "g", "", QueryRequest{Cursor: valid}); status != http.StatusOK {
		t.Errorf("control cursor rejected with %d", status)
	}
}
