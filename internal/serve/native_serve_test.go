package serve

import (
	"bytes"
	"net/http"
	"testing"

	"repro"
)

// TestNativeQueryWire pins the wire contract of the native query option:
// for every query kind the NDJSON data lines are byte-identical to the
// simulated run — emission order is execution-mode-invariant — while the
// trailer's result.stats is zero (native execution compiles the
// accounting out) and every other trailer field matches.
func TestNativeQueryWire(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=200,m=1600",
		repro.Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 7})

	reqs := []QueryRequest{
		{Kind: "triangles", Seed: 3},
		{Kind: "triangles", Algorithm: "oblivious", Seed: 3},
		{Kind: "cliques", K: 4, Seed: 5},
		{Kind: "match", Pattern: "diamond", Seed: 5},
	}
	for _, req := range reqs {
		name := req.Kind + "/" + req.Algorithm
		sim, simTrailer, status := postQuery(t, ts.URL, "g", "", req)
		if status != http.StatusOK {
			t.Fatalf("%s: simulated status %d", name, status)
		}
		nreq := req
		nreq.Native = true
		nat, natTrailer, status := postQuery(t, ts.URL, "g", "", nreq)
		if status != http.StatusOK {
			t.Fatalf("%s: native status %d", name, status)
		}
		if !bytes.Equal(sim, nat) {
			t.Errorf("%s: native data lines differ from simulated (%d vs %d bytes)", name, len(nat), len(sim))
		}
		if natTrailer.Result.Stats != (WireIOStats{}) {
			t.Errorf("%s: native trailer stats not zero: %+v", name, natTrailer.Result.Stats)
		}
		if simTrailer.Result.Stats == (WireIOStats{}) {
			t.Errorf("%s: simulated trailer stats unexpectedly zero", name)
		}
		natTrailer.Result.Stats = simTrailer.Result.Stats
		if natTrailer != simTrailer {
			t.Errorf("%s: trailers differ beyond stats:\nnative:    %+v\nsimulated: %+v", name, natTrailer, simTrailer)
		}
	}
}

// TestNativeCursorContract pins the cursor semantics of the execution
// mode: a cursor inherits the mode it was minted under, and a request
// that forces native on a simulated cursor is rejected with 400 — a
// cursor is a position in one specific stream, statistics included.
func TestNativeCursorContract(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=200,m=1600",
		repro.Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 7})

	// Full native stream as the reference.
	full, _, status := postQuery(t, ts.URL, "g", "", QueryRequest{Seed: 3, Native: true})
	if status != http.StatusOK {
		t.Fatalf("full query status %d", status)
	}

	// A limit-stopped native query mints a native cursor; resuming with
	// the mode unset inherits it and delivers the exact suffix.
	head, trailer, status := postQuery(t, ts.URL, "g", "", QueryRequest{Seed: 3, Native: true, Limit: 5})
	if status != http.StatusOK || trailer.Cursor == "" {
		t.Fatalf("limited query: status %d, cursor %q", status, trailer.Cursor)
	}
	tail, tailTrailer, status := postQuery(t, ts.URL, "g", "", QueryRequest{Cursor: trailer.Cursor})
	if status != http.StatusOK {
		t.Fatalf("resume status %d", status)
	}
	if got := append(append([]byte{}, head...), tail...); !bytes.Equal(got, full) {
		t.Errorf("native head+tail != full stream (%d vs %d bytes)", len(got), len(full))
	}
	if tailTrailer.Result.Stats != (WireIOStats{}) {
		t.Errorf("resumed stream did not inherit native mode: stats %+v", tailTrailer.Result.Stats)
	}

	// Simulated cursor + native request: 400.
	_, simTrailer, status := postQuery(t, ts.URL, "g", "", QueryRequest{Seed: 3, Limit: 5})
	if status != http.StatusOK || simTrailer.Cursor == "" {
		t.Fatalf("simulated limited query: status %d, cursor %q", status, simTrailer.Cursor)
	}
	raw, _, status, err := tryQuery(ts.URL, "g", "", QueryRequest{Cursor: simTrailer.Cursor, Native: true})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("native resume of simulated cursor: status %d, body %s", status, raw)
	}
}
