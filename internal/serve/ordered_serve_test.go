package serve

import (
	"bytes"
	"context"
	"net/http"
	"testing"

	"repro"
)

// TestOrderedOverWire: a query with ordered:true streams the canonical
// global order — byte-identical to the in-process Query.Ordered run —
// and its trailer statistics equal the engine-order run's.
func TestOrderedOverWire(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, "g", "gnm:n=200,m=1000", repro.Options{})

	var want []byte
	var res repro.Result
	if _, err := g.TrianglesFunc(context.Background(), repro.Query{Seed: 5, Ordered: true, Result: &res}, func(a, b, c uint32) {
		want = AppendEmission(want, []uint32{a, b, c})
	}); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		data, trailer, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Seed: 5, Ordered: true, Workers: workers})
		if !bytes.Equal(data, want) {
			t.Fatalf("workers=%d: ordered wire stream diverges from the in-process ordered run", workers)
		}
		if !trailer.Done || trailer.Result != ToWireResult(res) {
			t.Fatalf("workers=%d: ordered trailer %+v does not match the in-process result", workers, trailer)
		}
	}
}

// TestOrderedCursor: a cursor minted on an ordered stream resumes the
// ordered order exactly, and the mode is pinned — resuming an
// engine-order cursor with ordered:true (or vice versa) is rejected.
func TestOrderedCursor(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, "g", "gnm:n=200,m=1000", repro.Options{})

	var want []byte
	if _, err := g.TrianglesFunc(context.Background(), repro.Query{Ordered: true}, func(a, b, c uint32) {
		want = AppendEmission(want, []uint32{a, b, c})
	}); err != nil {
		t.Fatal(err)
	}
	total := uint64(bytes.Count(want, []byte("\n")))
	if total < 6 {
		t.Fatalf("test graph too sparse: %d triangles", total)
	}

	first, tr1, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Ordered: true, Limit: 3})
	if tr1.Cursor == "" {
		t.Fatal("limited ordered stream returned no cursor")
	}
	rest, tr2, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Cursor: tr1.Cursor})
	if !bytes.Equal(append(first, rest...), want) {
		t.Fatal("ordered stream + cursor resume is not the uncursored ordered stream")
	}
	if tr2.Cursor != "" || tr2.Delivered != total-3 {
		t.Fatalf("resume trailer %+v, want %d delivered and no cursor", tr2, total-3)
	}

	// Mode pinning: an ordered cursor cannot resume an engine-order
	// stream, and an engine-order cursor cannot resume ordered.
	_, _, status, err := tryQuery(ts.URL, "g", "", QueryRequest{Cursor: tr1.Cursor, Ordered: true})
	if err != nil || status != http.StatusOK {
		t.Fatalf("explicit ordered resume of an ordered cursor: %d, %v", status, err)
	}
	_, plainTr, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Limit: 3})
	if plainTr.Cursor == "" {
		t.Fatal("limited engine-order stream returned no cursor")
	}
	_, _, status, err = tryQuery(ts.URL, "g", "", QueryRequest{Cursor: plainTr.Cursor, Ordered: true})
	if err != nil || status != http.StatusBadRequest {
		t.Fatalf("ordered resume of an engine-order cursor = %d, want 400 (%v)", status, err)
	}
}
