package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// newTestServer builds a graph from spec and serves it under id on an
// httptest server. The returned Graph is the server's own handle, handy
// for in-process reference runs (sessions are isolated, so sharing it
// with the server is safe by the PR 4 contract).
func newTestServer(t *testing.T, cfg Config, id, spec string, opts repro.Options) (*Server, *httptest.Server, *repro.Graph) {
	t.Helper()
	g, err := repro.Build(repro.FromSpec(spec), opts)
	if err != nil {
		t.Fatalf("Build(%s): %v", spec, err)
	}
	s := New(cfg)
	if err := s.AddGraph(id, g, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, g
}

// postQuery posts a QueryRequest and returns the raw NDJSON data lines
// (emission lines only, concatenated bytes) plus the decoded trailer.
func postQuery(t *testing.T, url, id, tenant string, req QueryRequest) ([]byte, QueryTrailer, int) {
	t.Helper()
	body, trailer, status, err := tryQuery(url, id, tenant, req)
	if err != nil {
		t.Fatalf("query %s: %v", id, err)
	}
	return body, trailer, status
}

func tryQuery(url, id, tenant string, req QueryRequest) ([]byte, QueryTrailer, int, error) {
	var trailer QueryTrailer
	b, _ := json.Marshal(req)
	hreq, err := http.NewRequest("POST", url+"/v1/graphs/"+id+"/query", bytes.NewReader(b))
	if err != nil {
		return nil, trailer, 0, err
	}
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, trailer, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, trailer, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return raw, trailer, resp.StatusCode, nil
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// Last non-empty line is the trailer.
	var last []byte
	n := len(lines)
	for n > 0 && len(bytes.TrimSpace(lines[n-1])) == 0 {
		n--
	}
	if n == 0 {
		return nil, trailer, resp.StatusCode, fmt.Errorf("empty NDJSON response")
	}
	last = lines[n-1]
	if err := json.Unmarshal(last, &trailer); err != nil {
		return nil, trailer, resp.StatusCode, fmt.Errorf("bad trailer %q: %v", last, err)
	}
	data := raw[:len(raw)-len(last)]
	return data, trailer, resp.StatusCode, nil
}

// splitStream splits a raw NDJSON query response into its data bytes
// and its decoded trailer line.
func splitStream(t *testing.T, raw []byte) ([]byte, QueryTrailer) {
	t.Helper()
	trimmed := bytes.TrimRight(raw, "\n")
	nl := bytes.LastIndexByte(trimmed, '\n') + 1
	var trailer QueryTrailer
	if err := json.Unmarshal(trimmed[nl:], &trailer); err != nil {
		t.Fatalf("bad trailer %q: %v", trimmed[nl:], err)
	}
	return raw[:nl], trailer
}

// referenceStream runs the same query in-process and encodes its
// emission stream with the wire encoder.
func referenceStream(t *testing.T, g *repro.Graph, kind string, k int, pattern string, q repro.Query) ([]byte, repro.Result) {
	t.Helper()
	var buf []byte
	var res repro.Result
	var err error
	switch kind {
	case "triangles":
		res, err = g.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
			buf = AppendEmission(buf, []uint32{a, b, c})
		})
	case "cliques":
		res, err = g.CliquesFunc(context.Background(), k, q, func(vs []uint32) {
			buf = AppendEmission(buf, vs)
		})
	case "match":
		p, perr := repro.ParsePattern(pattern)
		if perr != nil {
			t.Fatal(perr)
		}
		res, err = g.MatchFunc(context.Background(), p, q, func(vs []uint32) {
			buf = AppendEmission(buf, vs)
		})
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err != nil {
		t.Fatalf("in-process %s query: %v", kind, err)
	}
	return buf, res
}

// The wire contract: the streamed NDJSON data lines are byte-identical
// to the in-process callback query — same deterministic emission order,
// same encoding — at every Workers value, and the trailer carries
// exactly the in-process Result (minus the scheduling-dependent
// per-worker breakdown).
func TestWireByteIdentity(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, "g", "gnm:n=300,m=2400", repro.Options{Seed: 11})
	for _, kind := range []string{"triangles", "cliques", "match"} {
		req := QueryRequest{Kind: kind, Seed: 5}
		k, pattern := 0, ""
		switch kind {
		case "cliques":
			req.K, k = 4, 4
		case "match":
			req.Pattern, pattern = "path3", "path3"
		}
		want, wantRes := referenceStream(t, g, kind, k, pattern, repro.Query{Seed: 5})
		var first []byte
		for _, workers := range []int{1, 4} {
			req.Workers = workers
			data, trailer, status := postQuery(t, ts.URL, "g", "", req)
			if status != http.StatusOK {
				t.Fatalf("%s workers=%d: status %d", kind, workers, status)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("%s workers=%d: streamed bytes differ from in-process stream (%d vs %d bytes)",
					kind, workers, len(data), len(want))
			}
			if trailer.Result != ToWireResult(wantRes) {
				t.Errorf("%s workers=%d: trailer result %+v != in-process %+v",
					kind, workers, trailer.Result, ToWireResult(wantRes))
			}
			if !trailer.Done || trailer.Cursor != "" {
				t.Errorf("%s workers=%d: exhaustive stream should be done with no cursor, got %+v", kind, workers, trailer)
			}
			if trailer.Delivered != wantRes.Matches {
				t.Errorf("%s workers=%d: delivered %d != matches %d", kind, workers, trailer.Delivered, wantRes.Matches)
			}
			if workers == 1 {
				first = data
			} else if !bytes.Equal(first, data) {
				t.Errorf("%s: stream bytes differ between workers=1 and workers=%d", kind, workers)
			}
		}
	}
}

// A cursor-resumed query emits exactly the uncursored stream's suffix:
// paging through with Limit and concatenating the pages reproduces the
// full stream byte for byte.
func TestCursorResumeEqualsSuffix(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}, "g", "gnm:n=200,m=1600", repro.Options{Seed: 3})
	full, fullRes := referenceStream(t, g, "triangles", 0, "", repro.Query{Seed: 9})

	// One limited page, then one unlimited resume: page + suffix == full.
	page, trailer, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Seed: 9, Limit: 7})
	if trailer.Delivered != 7 || trailer.Cursor == "" {
		t.Fatalf("limited page: delivered=%d cursor=%q", trailer.Delivered, trailer.Cursor)
	}
	suffix, st, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Cursor: trailer.Cursor})
	if st.Cursor != "" || !st.Done {
		t.Fatalf("unlimited resume should exhaust the stream: %+v", st)
	}
	if got := append(append([]byte{}, page...), suffix...); !bytes.Equal(got, full) {
		t.Errorf("page+suffix (%d bytes) != full stream (%d bytes)", len(got), len(full))
	}
	if st.Delivered+7 != fullRes.Matches {
		t.Errorf("resume delivered %d, page 7, want total %d", st.Delivered, fullRes.Matches)
	}

	// Pagination loop: fixed-size pages until the cursor disappears.
	var paged []byte
	cur := ""
	pages := 0
	for {
		req := QueryRequest{Seed: 9, Limit: 13}
		if cur != "" {
			req = QueryRequest{Cursor: cur, Limit: 13}
		}
		data, tr, _ := postQuery(t, ts.URL, "g", "", req)
		paged = append(paged, data...)
		pages++
		if tr.Cursor == "" {
			break
		}
		cur = tr.Cursor
		if pages > int(fullRes.Matches/13)+2 {
			t.Fatal("pagination did not terminate")
		}
	}
	if !bytes.Equal(paged, full) {
		t.Errorf("concatenated pages (%d bytes) != full stream (%d bytes)", len(paged), len(full))
	}
}

// A cursor pins the generation its emission order belongs to: an
// intervening update invalidates it with 409 Conflict.
func TestCursorStaleAfterUpdate(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=100,m=800", repro.Options{Seed: 1})
	_, trailer, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Limit: 3})
	if trailer.Cursor == "" {
		t.Fatal("expected a cursor from the limited query")
	}

	ub, _ := json.Marshal(UpdateRequest{Add: [][2]uint32{{1000, 1001}, {1001, 1002}, {1000, 1002}}})
	resp, err := http.Post(ts.URL+"/v1/graphs/g/update", "application/json", bytes.NewReader(ub))
	if err != nil {
		t.Fatal(err)
	}
	var ur UpdateResponse
	json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ur.Generation != 1 {
		t.Fatalf("update: status %d, resp %+v", resp.StatusCode, ur)
	}

	raw, _, status, err := tryQuery(ts.URL, "g", "", QueryRequest{Cursor: trailer.Cursor})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusConflict {
		t.Fatalf("stale cursor: want 409, got %d (%s)", status, raw)
	}

	// A fresh query runs on the new generation and can page again.
	_, tr2, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Limit: 3})
	if tr2.Generation != 1 {
		t.Errorf("fresh query generation = %d, want 1", tr2.Generation)
	}
}

// Mismatched query parameters on a resume are rejected: a cursor is a
// position in one specific stream.
func TestCursorParameterMismatch(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=100,m=800", repro.Options{Seed: 1})
	_, trailer, _ := postQuery(t, ts.URL, "g", "", QueryRequest{Seed: 4, Limit: 3})
	for _, req := range []QueryRequest{
		{Cursor: trailer.Cursor, Seed: 5},
		{Cursor: trailer.Cursor, Kind: "cliques", K: 4},
		{Cursor: trailer.Cursor, Algorithm: "oblivious"},
	} {
		raw, _, status, err := tryQuery(ts.URL, "g", "", req)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusBadRequest {
			t.Errorf("mismatched resume %+v: want 400, got %d (%s)", req, status, raw)
		}
	}
	// Tampered token.
	tok := trailer.Cursor
	tampered := strings.Replace(tok, tok[:1], "A", 1)
	if tampered == tok {
		tampered = "B" + tok[1:]
	}
	raw, _, status, err := tryQuery(ts.URL, "g", "", QueryRequest{Cursor: tampered})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Errorf("tampered cursor: want 400, got %d (%s)", status, raw)
	}
}

// gateWriter is a ResponseWriter that lets exactly one body write
// through and then blocks until released — holding the handler (and the
// admission slot it occupies) in flight deterministically, with no
// dependence on socket buffer sizes.
type gateWriter struct {
	header  http.Header
	buf     bytes.Buffer
	wrote   chan struct{} // closed after the first write lands
	release chan struct{} // close to let subsequent writes proceed
	writes  int
	once    sync.Once
}

func newGateWriter() *gateWriter {
	return &gateWriter{
		header:  http.Header{},
		wrote:   make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (w *gateWriter) Header() http.Header { return w.header }
func (w *gateWriter) WriteHeader(int)     {}
func (w *gateWriter) Write(p []byte) (int, error) {
	if w.writes++; w.writes > 1 {
		<-w.release
	}
	n, err := w.buf.Write(p)
	w.once.Do(func() { close(w.wrote) })
	return n, err
}

// Tenant budgets: with a one-session cap, a tenant whose stream is
// still draining is rejected with 429 on its next query while another
// tenant's queries are admitted and complete with correct results; once
// the stream drains, the first tenant is admitted again.
func TestTenantBudgetEnforced(t *testing.T) {
	cfg := Config{MaxTenantSessions: 1, FlushEvery: 1}
	srv, ts, g := newTestServer(t, cfg, "g", "clique:n=16", repro.Options{})
	want, wantRes := referenceStream(t, g, "triangles", 0, "", repro.Query{})

	// Tenant A's stream runs through the handler directly, against a
	// write gate: with FlushEvery 1 every emission is a ResponseWriter
	// write, so after the first line the producer is parked mid-stream
	// and the session provably held.
	gw := newGateWriter()
	qb, _ := json.Marshal(QueryRequest{})
	areq := httptest.NewRequest("POST", "/v1/graphs/g/query", bytes.NewReader(qb))
	areq.Header.Set("X-Tenant", "a")
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(gw, areq)
		close(done)
	}()
	<-gw.wrote

	// Tenant A is now over its session budget.
	raw, _, status, err := tryQuery(ts.URL, "g", "a", QueryRequest{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("tenant a second query: want 429, got %d (%s)", status, raw)
	}

	// Tenant B is an independent budget: full stream, correct bytes.
	data, trailer, st := postQuery(t, ts.URL, "g", "b", QueryRequest{})
	if st != http.StatusOK || !bytes.Equal(data, want) || trailer.Result != ToWireResult(wantRes) {
		t.Fatalf("tenant b: status %d, %d bytes (want %d), result match %v",
			st, len(data), len(want), trailer.Result == ToWireResult(wantRes))
	}

	// Release the gate: tenant A's parked stream drains in full — and is
	// byte-identical despite having been stalled — then its budget frees
	// and it is admitted again.
	close(gw.release)
	<-done
	adata, atrailer := splitStream(t, gw.buf.Bytes())
	if !bytes.Equal(adata, want) || atrailer.Result != ToWireResult(wantRes) {
		t.Fatalf("tenant a drained stream: %d bytes (want %d), result match %v",
			len(adata), len(want), atrailer.Result == ToWireResult(wantRes))
	}
	if _, _, status, err = tryQuery(ts.URL, "g", "a", QueryRequest{Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("tenant a not re-admitted after drain: status %d", status)
	}
}

// The M-word budget rejects a session that would exceed the tenant's
// total, independent of the session cap.
func TestTenantMemoryBudget(t *testing.T) {
	opts := repro.Options{MemoryWords: 1 << 14, BlockWords: 1 << 6}
	// Budget fits one session (2^14 words) but not two.
	cfg := Config{MaxTenantMemoryWords: 3 << 13, FlushEvery: 1}
	srv, ts, _ := newTestServer(t, cfg, "g", "clique:n=16", opts)

	// Park one stream mid-flight behind a write gate (see
	// TestTenantBudgetEnforced) so its 2^14-word session provably holds
	// the budget.
	gw := newGateWriter()
	qb, _ := json.Marshal(QueryRequest{})
	areq := httptest.NewRequest("POST", "/v1/graphs/g/query", bytes.NewReader(qb))
	areq.Header.Set("X-Tenant", "a")
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(gw, areq)
		close(done)
	}()
	<-gw.wrote

	_, _, status, err := tryQuery(ts.URL, "g", "a", QueryRequest{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("over memory budget: want 429, got %d", status)
	}
	close(gw.release)
	<-done
}

// Graceful shutdown drains in-flight streams: Shutdown returns only
// after the active stream has delivered its full byte-identical body
// and trailer.
func TestShutdownDrainsStreams(t *testing.T) {
	g, err := repro.Build(repro.FromSpec("clique:n=64"), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{FlushEvery: 1})
	if err := s.AddGraph("g", g, ""); err != nil {
		t.Fatal(err)
	}
	want, _ := referenceStream(t, g, "triangles", 0, "", repro.Query{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	qb, _ := json.Marshal(QueryRequest{})
	resp, err := http.Post(url+"/v1/graphs/g/query", "application/json", bytes.NewReader(qb))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.Peek(1); err != nil {
		t.Fatal(err)
	}

	// Shutdown while the stream is mid-flight; it must wait for the
	// stream to finish.
	done := make(chan error, 1)
	var mu sync.Mutex
	shutdownReturned := false
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		err := hs.Shutdown(ctx)
		mu.Lock()
		shutdownReturned = true
		mu.Unlock()
		done <- err
	}()

	raw, err := io.ReadAll(br)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("draining stream during shutdown: %v", err)
	}
	mu.Lock()
	sr := shutdownReturned
	mu.Unlock()
	_ = sr // Shutdown may or may not have returned yet; what matters is the stream completed intact.
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	lines := bytes.SplitAfter(raw, []byte("\n"))
	n := len(lines)
	for n > 0 && len(bytes.TrimSpace(lines[n-1])) == 0 {
		n--
	}
	var trailer QueryTrailer
	if err := json.Unmarshal(lines[n-1], &trailer); err != nil || !trailer.Done {
		t.Fatalf("stream cut short by shutdown: trailer %q err %v", lines[n-1], err)
	}
	if data := raw[:len(raw)-len(lines[n-1])]; !bytes.Equal(data, want) {
		t.Errorf("drained stream differs from reference (%d vs %d bytes)", len(data), len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// New queries against the closed registry fail cleanly.
	_, _, status, err := tryQuery(url, "g", "", QueryRequest{})
	if err == nil && status == http.StatusOK {
		t.Error("query after Close should not succeed")
	}
	ln.Close()
}

// The REST surface: list, info, load (build and open), update,
// checkpoint, unload, stats.
func TestRegistryLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Build a durable graph via the API.
	img := dir + "/g.img"
	lb, _ := json.Marshal(LoadRequest{ID: "d", Spec: "gnm:n=100,m=700", Path: img, Seed: 2})
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", bytes.NewReader(lb))
	if err != nil {
		t.Fatal(err)
	}
	var lr LoadResponse
	json.NewDecoder(resp.Body).Decode(&lr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || lr.Graph.ID != "d" || lr.Opened {
		t.Fatalf("load: status %d, %+v", resp.StatusCode, lr)
	}

	// Duplicate id is a conflict.
	resp, _ = http.Post(ts.URL+"/v1/graphs", "application/json",
		bytes.NewReader(lb))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate load: want 409, got %d", resp.StatusCode)
	}

	// Update, checkpoint, then unload (closes and promotes the image).
	ub, _ := json.Marshal(UpdateRequest{Add: [][2]uint32{{200, 201}, {201, 202}, {200, 202}}})
	resp, err = http.Post(ts.URL+"/v1/graphs/d/update", "application/json", bytes.NewReader(ub))
	if err != nil {
		t.Fatal(err)
	}
	var ur UpdateResponse
	json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if ur.Generation != 1 || ur.Added != 3 {
		t.Fatalf("update: %+v", ur)
	}
	resp, err = http.Post(ts.URL+"/v1/graphs/d/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr CheckpointResponse
	json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cr.Generation != 1 {
		t.Fatalf("checkpoint: status %d, %+v", resp.StatusCode, cr)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/graphs/d", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unload: want 204, got %d", resp.StatusCode)
	}

	// Reopen the checkpointed image through the API: generation 1,
	// nothing to replay.
	ob, _ := json.Marshal(LoadRequest{ID: "d2", Path: img})
	resp, err = http.Post(ts.URL+"/v1/graphs", "application/json", bytes.NewReader(ob))
	if err != nil {
		t.Fatal(err)
	}
	lr = LoadResponse{}
	json.NewDecoder(resp.Body).Decode(&lr)
	resp.Body.Close()
	if !lr.Opened || lr.Graph.Generation != 1 || lr.Replayed != 0 {
		t.Fatalf("reopen: %+v", lr)
	}

	// List and stats.
	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var gl GraphList
	json.NewDecoder(resp.Body).Decode(&gl)
	resp.Body.Close()
	if len(gl.Graphs) != 1 || gl.Graphs[0].ID != "d2" {
		t.Fatalf("list: %+v", gl)
	}
	postQuery(t, ts.URL, "d2", "acme", QueryRequest{Limit: 2})
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	acme, ok := sr.Tenants["acme"]
	if !ok || acme.Queries != 1 || acme.Emissions != 2 || acme.ActiveSessions != 0 {
		t.Fatalf("stats for acme: %+v (ok=%v)", acme, ok)
	}
	if acme.BlockReads == 0 || acme.BytesStreamed == 0 {
		t.Errorf("stats should account IO and bytes: %+v", acme)
	}
}

// Sanity on the error surface: unknown graph, bad kind, bad body.
func TestQueryErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=50,m=200", repro.Options{})
	raw, _, status, err := tryQuery(ts.URL, "nope", "", QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNotFound {
		t.Errorf("unknown graph: want 404, got %d (%s)", status, raw)
	}
	raw, _, status, err = tryQuery(ts.URL, "g", "", QueryRequest{Kind: "squares"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Errorf("bad kind: want 400, got %d (%s)", status, raw)
	}
	resp, err := http.Post(ts.URL+"/v1/graphs/g/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: want 400, got %d", resp.StatusCode)
	}
}
