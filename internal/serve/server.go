package serve

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro"
)

// Config parametrizes a Server. The zero value serves with unlimited
// tenant budgets.
type Config struct {
	// MaxTenantSessions caps the concurrent query/update sessions of one
	// tenant (0 = unlimited). Work beyond the cap is answered 429.
	MaxTenantSessions int
	// MaxTenantMemoryWords caps the total session M-words one tenant may
	// have outstanding (0 = unlimited); each session costs its graph's
	// Options.MemoryWords. Work beyond the cap is answered 429.
	MaxTenantMemoryWords int64
	// FlushEvery flushes the NDJSON stream to the client every N
	// emission lines (default 64; 1 flushes every line). The trailer
	// always flushes.
	FlushEvery int
	// AuthToken, when non-empty, requires every request (except
	// GET /healthz) to carry "Authorization: Bearer <AuthToken>".
	// Authentication runs before anything else — in particular before
	// the X-Tenant header is trusted for admission accounting — and a
	// missing or wrong token is answered 401. Comparison is constant
	// time.
	AuthToken string
}

// Server is the daemon state: a registry of loaded Graph handles plus
// the admission controller. Create with New, mount Handler on an
// http.Server, and Close on the way out — Close drains every active
// query through the handles' close-guards.
type Server struct {
	cfg Config
	adm *admission

	mu     sync.Mutex
	graphs map[string]*graphEntry
	closed bool

	// Cluster roles, configured before Handler via ServeShard /
	// ServeCoordinator (see cluster_serve.go). Nil when this daemon is
	// not part of a cluster.
	shard *shardState
	coord *repro.Cluster
}

// graphEntry is one registry slot.
type graphEntry struct {
	id      string
	g       *repro.Graph
	path    string
	queries atomic.Uint64

	// genMu orders generation installs against stream starts: an update
	// holds the write lock while installing its generation; a starting
	// query holds the read lock from capturing g.Generation() until its
	// producer's first emission (by which point the session has pinned
	// that generation). The generation a stream reports — and mints
	// cursors against — is therefore exactly the one it ran on, with no
	// install window in between. Queries never block each other, and an
	// update waits only for streams still before their first emission.
	genMu sync.RWMutex
}

// New returns an empty Server.
func New(cfg Config) *Server {
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 64
	}
	return &Server{
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxTenantSessions, cfg.MaxTenantMemoryWords),
		graphs: map[string]*graphEntry{},
	}
}

// AddGraph registers an already-built handle under id — the programmatic
// form of POST /v1/graphs, used by cmd/trienumd's -load flag and by
// tests. The Server takes ownership: Close (or DELETE) will Close it.
func (s *Server) AddGraph(id string, g *repro.Graph, path string) error {
	if err := validateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("serve: server is closed")
	}
	if _, ok := s.graphs[id]; ok {
		return fmt.Errorf("serve: graph %q already loaded", id)
	}
	s.graphs[id] = &graphEntry{id: id, g: g, path: path}
	return nil
}

// Close unregisters and closes every graph, draining their active
// queries and updates (repro.Graph.Close waits on the close-guard;
// disk-backed handles checkpoint implicitly). Streams already running
// finish normally; new requests against the registry fail.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	entries := make([]*graphEntry, 0, len(s.graphs))
	for _, e := range s.graphs {
		entries = append(entries, e)
	}
	s.graphs = map[string]*graphEntry{}
	s.mu.Unlock()
	var err error
	for _, e := range entries {
		err = errors.Join(err, e.g.Close())
	}
	if s.shard != nil {
		err = errors.Join(err, s.shard.g.Close())
	}
	if s.coord != nil {
		err = errors.Join(err, s.coord.Close())
	}
	return err
}

// Handler returns the daemon's HTTP routes. See docs/API.md for the
// wire contract of each endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/graphs", s.handleList)
	mux.HandleFunc("POST /v1/graphs", s.handleLoad)
	mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphInfo)
	mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleUnload)
	mux.HandleFunc("POST /v1/graphs/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/graphs/{id}/subscriptions", s.handleSubscribe)
	mux.HandleFunc("POST /v1/graphs/{id}/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/graphs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.registerCluster(mux)
	return s.withAuth(mux)
}

// withAuth gates every route except the liveness probe behind the
// configured bearer token. With no token configured it is a no-op.
func (s *Server) withAuth(next http.Handler) http.Handler {
	if s.cfg.AuthToken == "" {
		return next
	}
	want := []byte(s.cfg.AuthToken)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		// The token is checked before the X-Tenant header (or anything
		// else in the request) is acted on: an unauthenticated caller
		// cannot consume admission budget or learn registry state.
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) == 0 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="trienumd"`)
			writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (s *Server) lookup(id string) *graphEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graphs[id]
}

func validateID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\ \t\n") {
		return fmt.Errorf("serve: invalid graph id %q", id)
	}
	return nil
}

// tenantOf resolves the request's tenant: the X-Tenant header, or
// "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (e *graphEntry) info() GraphInfo {
	return GraphInfo{
		ID:          e.id,
		Generation:  e.g.Generation(),
		Vertices:    e.g.NumVertices(),
		Edges:       e.g.NumEdges(),
		CanonIOs:    e.g.CanonIOs(),
		MemoryWords: e.g.Options().MemoryWords,
		DiskPath:    e.path,
		Queries:     e.queries.Load(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*graphEntry, 0, len(s.graphs))
	for _, e := range s.graphs {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	list := GraphList{Graphs: make([]GraphInfo, 0, len(entries))}
	for _, e := range entries {
		list.Graphs = append(list.Graphs, e.info())
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "graph %q not loaded", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad load request: %v", err)
		return
	}
	if err := validateID(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Spec != "" && len(req.Edges) > 0 {
		writeError(w, http.StatusBadRequest, "spec and edges are mutually exclusive")
		return
	}
	if req.Spec == "" && len(req.Edges) == 0 && req.Path == "" {
		writeError(w, http.StatusBadRequest, "one of spec, edges, or path is required")
		return
	}

	opts := repro.Options{
		MemoryWords: req.MemoryWords,
		BlockWords:  req.BlockWords,
		Workers:     req.Workers,
		Seed:        req.Seed,
		DiskPath:    req.Path,
	}
	var (
		g      *repro.Graph
		or     repro.OpenResult
		opened bool
		err    error
	)
	switch {
	case req.Spec != "":
		g, err = repro.Build(repro.FromSpec(req.Spec), opts)
	case len(req.Edges) > 0:
		g, err = repro.Build(repro.FromEdges(req.Edges), opts)
	default:
		// Path alone: adopt the existing durable image.
		opts.DiskPath = ""
		g, or, err = repro.Open(req.Path, opts)
		opened = true
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "load %q: %v", req.ID, err)
		return
	}
	if err := s.AddGraph(req.ID, g, req.Path); err != nil {
		g.Close()
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	resp := LoadResponse{Graph: s.lookup(req.ID).info(), Opened: opened}
	if opened {
		resp.Replayed = or.Replayed
		resp.ReplayIOs = or.ReplayIOs
		resp.AdoptIOs = or.AdoptIOs
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e := s.graphs[id]
	delete(s.graphs, id)
	s.mu.Unlock()
	if e == nil {
		writeError(w, http.StatusNotFound, "graph %q not loaded", id)
		return
	}
	if err := e.g.Close(); err != nil {
		writeError(w, http.StatusInternalServerError, "closing %q: %v", id, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		MaxTenantSessions:    s.cfg.MaxTenantSessions,
		MaxTenantMemoryWords: s.cfg.MaxTenantMemoryWords,
		Tenants:              s.adm.snapshot(),
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "graph %q not loaded", r.PathValue("id"))
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad update request: %v", err)
		return
	}
	tenant := tenantOf(r)
	release, err := s.adm.acquire(tenant, int64(e.g.Options().MemoryWords))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer release()

	// The write side of the stream-start ordering: no query captures its
	// generation while the install is in flight (see graphEntry.genMu).
	e.genMu.Lock()
	res, err := e.g.Update(r.Context(), repro.Delta{Add: req.Add, Remove: req.Remove})
	e.genMu.Unlock()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, repro.ErrGraphClosed) {
			status = http.StatusGone
		}
		writeError(w, status, "update %q: %v", e.id, err)
		return
	}
	s.adm.recordUpdate(tenant, res.MergeIOs)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Generation: res.Generation,
		Added:      res.Added,
		Removed:    res.Removed,
		Vertices:   res.Vertices,
		Edges:      res.Edges,
		MergeIOs:   res.MergeIOs,
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "graph %q not loaded", r.PathValue("id"))
		return
	}
	gen := e.g.Generation()
	if err := e.g.Checkpoint(); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, repro.ErrGraphClosed) {
			status = http.StatusGone
		}
		writeError(w, status, "checkpoint %q: %v", e.id, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Generation: gen})
}

// resolvedQuery is a QueryRequest after defaulting, validation, and
// cursor reconciliation: the exact query identity the emission order is
// deterministic in, plus the resume position.
type resolvedQuery struct {
	kind    string
	k       int
	pattern *repro.Pattern
	patName string
	alg     repro.Algorithm
	algName string
	seed    uint64
	workers int
	native  bool
	ordered bool
	limit   uint64
	pos     uint64
}

// resolveQuery reconciles the request with its cursor, if any: zero
// request fields inherit the cursor's query identity; non-zero fields
// must match it (a cursor is a position in one specific stream).
func resolveQuery(req QueryRequest, cur *cursor) (resolvedQuery, error) {
	rq := resolvedQuery{
		kind:    req.Kind,
		k:       req.K,
		patName: req.Pattern,
		algName: req.Algorithm,
		seed:    req.Seed,
		workers: req.Workers,
		native:  req.Native,
		ordered: req.Ordered,
		limit:   req.Limit,
	}
	if cur != nil {
		rq.pos = cur.Pos
		inherit := func(have *string, want string, what string) error {
			if *have == "" {
				*have = want
			} else if *have != want {
				return fmt.Errorf("query %s %q does not match cursor %s %q", what, *have, what, want)
			}
			return nil
		}
		if err := inherit(&rq.kind, cur.Kind, "kind"); err != nil {
			return rq, err
		}
		if err := inherit(&rq.patName, cur.Pattern, "pattern"); err != nil {
			return rq, err
		}
		if err := inherit(&rq.algName, cur.Algorithm, "algorithm"); err != nil {
			return rq, err
		}
		if rq.k == 0 {
			rq.k = cur.K
		} else if rq.k != cur.K {
			return rq, fmt.Errorf("query k %d does not match cursor k %d", rq.k, cur.K)
		}
		if rq.seed == 0 {
			rq.seed = cur.Seed
		} else if rq.seed != cur.Seed {
			return rq, fmt.Errorf("query seed %d does not match cursor seed %d", rq.seed, cur.Seed)
		}
		// The execution mode never changes the emission order, but the
		// trailer statistics differ, so a cursor pins it like the rest of
		// the query identity: unset inherits, set must match.
		if !rq.native {
			rq.native = cur.Native
		} else if !cur.Native {
			return rq, errors.New("query requests native execution but the cursor was minted on a simulated run")
		}
		// Ordered changes the emission order itself, so a cursor position
		// is only meaningful in the mode it was minted under.
		if !rq.ordered {
			rq.ordered = cur.Ordered
		} else if !cur.Ordered {
			return rq, errors.New("query requests the canonical order but the cursor was minted on an engine-order run")
		}
	}
	if rq.kind == "" {
		rq.kind = "triangles"
	}
	switch rq.kind {
	case "triangles":
		if rq.k != 0 || rq.patName != "" {
			return rq, errors.New("k and pattern do not apply to a triangles query")
		}
		if rq.algName != "" {
			alg, err := repro.ParseAlgorithm(rq.algName)
			if err != nil {
				return rq, err
			}
			rq.alg = alg
			rq.algName = alg.String()
		} else {
			rq.alg = repro.CacheAware
			rq.algName = rq.alg.String()
		}
	case "cliques":
		if rq.k < 3 {
			return rq, fmt.Errorf("cliques query needs k >= 3, got %d", rq.k)
		}
		if rq.algName != "" || rq.patName != "" {
			return rq, errors.New("algorithm and pattern do not apply to a cliques query")
		}
	case "match":
		if rq.patName == "" {
			return rq, errors.New("match query needs a pattern name")
		}
		if rq.algName != "" || rq.k != 0 {
			return rq, errors.New("algorithm and k do not apply to a match query")
		}
		p, err := repro.ParsePattern(rq.patName)
		if err != nil {
			return rq, err
		}
		rq.pattern = p
	default:
		return rq, fmt.Errorf("unknown query kind %q (have triangles, cliques, match)", rq.kind)
	}
	return rq, nil
}

// mintCursor encodes the position this stream stopped at.
func (rq resolvedQuery) mintCursor(graphID string, gen, delivered uint64) string {
	return encodeCursor(cursor{
		Graph:     graphID,
		Gen:       gen,
		Kind:      rq.kind,
		K:         rq.k,
		Pattern:   rq.patName,
		Algorithm: rq.algName,
		Seed:      rq.seed,
		Native:    rq.native,
		Ordered:   rq.ordered,
		Pos:       rq.pos + delivered,
	})
}

// handleQuery streams one query as NDJSON: emission lines in the
// engine's deterministic order, then one QueryTrailer line. Backpressure
// is the response write path: emit runs on this handler goroutine, so a
// slow client stalls the producer cooperatively rather than buffering
// the stream.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "graph %q not loaded", r.PathValue("id"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	var cur *cursor
	if req.Cursor != "" {
		c, err := decodeCursor(req.Cursor)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if c.Graph != e.id {
			writeError(w, http.StatusBadRequest, "cursor belongs to graph %q, not %q", c.Graph, e.id)
			return
		}
		cur = &c
	}
	rq, err := resolveQuery(req, cur)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	tenant := tenantOf(r)
	release, err := s.adm.acquire(tenant, int64(e.g.Options().MemoryWords))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer release()

	// Capture the generation under the read lock and hold it until the
	// producer's first emission: the session acquired inside the query
	// pins its generation before emitting, and updates install under the
	// write lock, so gen is exactly the stream's generation — a stale
	// cursor is rejected here with no install window to race through.
	e.genMu.RLock()
	gen := e.g.Generation()
	var unlockOnce sync.Once
	unlock := func() { unlockOnce.Do(e.genMu.RUnlock) }
	defer unlock()
	if cur != nil && cur.Gen != gen {
		unlock()
		writeError(w, http.StatusConflict,
			"cursor was minted on generation %d but the graph is at %d; restart the query", cur.Gen, gen)
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	var (
		skipped, delivered uint64
		bytesOut           uint64
		sinceFlush         int
		writeErr           error
		wroteAny           bool
		line               []byte
	)
	flush := func() {
		if err := bw.Flush(); err != nil && writeErr == nil {
			writeErr = err
			cancel()
		}
		if flusher != nil {
			flusher.Flush()
		}
		sinceFlush = 0
	}
	emitVs := func(vs []uint32) {
		unlock()
		if writeErr != nil {
			return
		}
		if skipped < rq.pos {
			skipped++
			return
		}
		if !wroteAny {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Graph-Generation", strconv.FormatUint(gen, 10))
			wroteAny = true
		}
		line = AppendEmission(line[:0], vs)
		n, err := bw.Write(line)
		bytesOut += uint64(n)
		if err != nil {
			writeErr = err
			cancel()
			return
		}
		delivered++
		if sinceFlush++; sinceFlush >= s.cfg.FlushEvery {
			flush()
		}
	}

	q := repro.Query{Algorithm: rq.alg, Seed: rq.seed, Workers: rq.workers, Ordered: rq.ordered}
	if rq.native {
		q.Mode = repro.ModeNative
	}
	if rq.limit > 0 {
		q.Limit = rq.pos + rq.limit
	}
	var res repro.Result
	var tri [3]uint32
	switch rq.kind {
	case "triangles":
		res, err = e.g.TrianglesFunc(ctx, q, func(a, b, c uint32) {
			tri[0], tri[1], tri[2] = a, b, c
			emitVs(tri[:])
		})
	case "cliques":
		res, err = e.g.CliquesFunc(ctx, rq.k, q, emitVs)
	case "match":
		res, err = e.g.MatchFunc(ctx, rq.pattern, q, emitVs)
	}
	unlock() // a query with zero emissions never triggered the callback
	e.queries.Add(1)

	if err != nil && !wroteAny {
		// Nothing streamed yet: the failure can still be a proper status.
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, repro.ErrGraphClosed):
			status = http.StatusGone
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusRequestTimeout
		}
		writeError(w, status, "query %q: %v", e.id, err)
		return
	}
	if writeErr != nil {
		// The client went away mid-stream; the producer was cancelled and
		// there is nobody left to read a trailer.
		s.adm.recordQuery(tenant, delivered, res.Stats.BlockReads, res.Stats.BlockWrites, bytesOut)
		return
	}
	if !wroteAny {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Graph-Generation", strconv.FormatUint(gen, 10))
	}
	trailer := QueryTrailer{
		Done:       err == nil,
		Delivered:  delivered,
		Generation: gen,
		Result:     ToWireResult(res),
	}
	if err != nil {
		trailer.Error = err.Error()
	}
	// A stream that stopped at its limit may have more behind it: hand
	// back the position in the deterministic emission order.
	if err == nil && rq.limit > 0 && delivered == rq.limit {
		trailer.Cursor = rq.mintCursor(e.id, gen, delivered)
	}
	tb, _ := json.Marshal(trailer)
	n, werr := bw.Write(append(tb, '\n'))
	bytesOut += uint64(n)
	_ = werr
	flush()
	s.adm.recordQuery(tenant, delivered, res.Stats.BlockReads, res.Stats.BlockWrites, bytesOut)
}

// newStreamWriter pairs a buffered response writer with a flush that
// also pushes the HTTP chunk to the client when the ResponseWriter
// supports it.
func newStreamWriter(w http.ResponseWriter) (*bufio.Writer, func()) {
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	return bw, func() {
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// AppendEmission appends the NDJSON emission line for one result —
// {"v":[...]} plus newline — to dst. It is the single encoder of the
// wire's data lines: the server streams through it, and tests encode
// their in-process reference streams with it to assert byte-identity.
func AppendEmission(dst []byte, vs []uint32) []byte {
	dst = append(dst, '{', '"', 'v', '"', ':', '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, uint64(v), 10)
	}
	return append(dst, ']', '}', '\n')
}
