package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro"
)

// handleSubscribe opens a long-lived NDJSON change stream: the request
// registers a standing query on the graph and the connection carries
// one WireChange line per effective update until either side ends it.
// The connection is the backpressure — a slow client stalls only its
// own deliveries (they queue inside the subscription), never the
// updates producing them — and the subscription charges the tenant's
// session budget for as long as the stream lives, exactly like a query
// session. Generation numbers are stamped on every line so a client
// that reconnects with AfterGeneration resumes exactly or learns (409)
// that it must re-baseline.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "graph %q not loaded", r.PathValue("id"))
		return
	}
	var req SubscribeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad subscribe request: %v", err)
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = "triangles"
	}
	var pattern *repro.Pattern
	switch kind {
	case "triangles":
		if req.K != 0 || req.Pattern != "" {
			writeError(w, http.StatusBadRequest, "k and pattern do not apply to a triangles subscription")
			return
		}
	case "cliques":
		if req.K < 3 {
			writeError(w, http.StatusBadRequest, "cliques subscription needs k >= 3, got %d", req.K)
			return
		}
		if req.Pattern != "" {
			writeError(w, http.StatusBadRequest, "pattern does not apply to a cliques subscription")
			return
		}
	case "match":
		if req.Pattern == "" {
			writeError(w, http.StatusBadRequest, "match subscription needs a pattern name")
			return
		}
		if req.K != 0 {
			writeError(w, http.StatusBadRequest, "k does not apply to a match subscription")
			return
		}
		p, err := repro.ParsePattern(req.Pattern)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		pattern = p
	default:
		writeError(w, http.StatusBadRequest, "unknown subscription kind %q (have triangles, cliques, match)", kind)
		return
	}

	tenant := tenantOf(r)
	release, err := s.adm.acquire(tenant, int64(e.g.Options().MemoryWords))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer release()

	// Register the standing query. The request context is the
	// subscription's lifetime: a client disconnect cancels it, which ends
	// the subscription and this stream.
	q := repro.Query{Workers: req.Workers}
	var sub *repro.Subscription
	switch kind {
	case "triangles":
		sub, err = e.g.Subscribe(r.Context(), q)
	case "cliques":
		sub, err = e.g.SubscribeCliques(r.Context(), req.K, q)
	case "match":
		sub, err = e.g.SubscribeMatch(r.Context(), pattern, q)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, repro.ErrGraphClosed) {
			status = http.StatusGone
		}
		writeError(w, status, "subscribe %q: %v", e.id, err)
		return
	}
	defer sub.Close()

	// Reconnect handshake: registration is atomic against updates, so
	// sub.Generation() is exactly where this stream begins. If the client
	// already integrated a different generation, the gap (or overlap) is
	// unservable — changes for it were never retained — and the client
	// must re-baseline with a full query.
	if req.AfterGeneration != nil && *req.AfterGeneration != sub.Generation() {
		writeError(w, http.StatusConflict,
			"subscription resumes at generation %d but the client integrated %d; re-baseline with a full query",
			sub.Generation(), *req.AfterGeneration)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Graph-Generation", strconv.FormatUint(sub.Generation(), 10))
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	var bytesOut uint64
	var writeErr error
	writeLine := func(v any) {
		if writeErr != nil {
			return
		}
		line, err := json.Marshal(v)
		if err != nil {
			writeErr = err
			return
		}
		n, err := bw.Write(append(line, '\n'))
		bytesOut += uint64(n)
		if err != nil {
			writeErr = err
			return
		}
		// A live stream flushes every line: a change the client cannot
		// see yet is a change that did not happen for it.
		if err := bw.Flush(); err != nil {
			writeErr = err
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	writeLine(WireSubscribed{Subscribed: true, Generation: sub.Generation()})

	var delivered, reads, writes uint64
	lastGen := sub.Generation()
	for cs := range sub.Changes() {
		writeLine(ToWireChange(cs))
		delivered++
		lastGen = cs.Generation
		reads += cs.Stats.BlockReads
		writes += cs.Stats.BlockWrites
		// The client went away: stop draining and let the deferred Close
		// unregister the standing query.
		if writeErr != nil {
			break
		}
	}

	subErr := sub.Err()
	end := WireSubEnd{
		Done:       subErr == nil || errors.Is(subErr, repro.ErrGraphClosed) || errors.Is(subErr, context.Canceled),
		Generation: lastGen,
		Delivered:  delivered,
	}
	if subErr != nil {
		end.Error = fmt.Sprintf("subscription ended: %v", subErr)
	}
	writeLine(end)
	s.adm.recordQuery(tenant, delivered, reads, writes, bytesOut)
}
