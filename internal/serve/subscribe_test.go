package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro"
)

// subStream is an open subscription stream: the live response body plus
// a line reader over it.
type subStream struct {
	resp *http.Response
	rd   *bufio.Reader
}

func openSubscription(t *testing.T, url, id, tenant string, req SubscribeRequest) (*subStream, int) {
	t.Helper()
	b, _ := json.Marshal(req)
	hreq, err := http.NewRequest("POST", url+"/v1/graphs/"+id+"/subscriptions", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		t.Logf("subscription not opened: %d %s", resp.StatusCode, e.Error)
		return nil, resp.StatusCode
	}
	return &subStream{resp: resp, rd: bufio.NewReader(resp.Body)}, resp.StatusCode
}

// line blocks until the next NDJSON line arrives on the stream.
func (s *subStream) line(t *testing.T) []byte {
	t.Helper()
	ln, err := s.rd.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading subscription stream: %v (got %q)", err, ln)
	}
	return ln
}

func (s *subStream) close() { s.resp.Body.Close() }

func postUpdate(t *testing.T, url, id string, req UpdateRequest) UpdateResponse {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/graphs/"+id+"/update", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ur UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d, decode err %v", resp.StatusCode, err)
	}
	return ur
}

// TestSubscriptionStreamByteIdentity is the wire half of the standing-
// query determinism contract: every change line on the NDJSON stream is
// byte-identical to ToWireChange of the ChangeSet a parallel in-process
// subscription of the same family receives — at a different worker
// count, which must not show on the wire.
func TestSubscriptionStreamByteIdentity(t *testing.T) {
	opts := repro.Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	_, ts, g := newTestServer(t, Config{}, "g", "gnm:n=120,m=600", opts)

	kinds := []struct {
		name string
		req  SubscribeRequest
		sub  func() (*repro.Subscription, error)
	}{
		{"triangles", SubscribeRequest{Workers: 4},
			func() (*repro.Subscription, error) { return g.Subscribe(nil, repro.Query{Workers: 1}) }},
		{"cliques", SubscribeRequest{Kind: "cliques", K: 4, Workers: 4},
			func() (*repro.Subscription, error) { return g.SubscribeCliques(nil, 4, repro.Query{Workers: 1}) }},
		{"match", SubscribeRequest{Kind: "match", Pattern: "diamond", Workers: 4},
			func() (*repro.Subscription, error) {
				return g.SubscribeMatch(nil, repro.PatternDiamond, repro.Query{Workers: 1})
			}},
	}

	type open struct {
		stream *subStream
		ref    *repro.Subscription
	}
	opened := make([]open, len(kinds))
	startGen := g.Generation()
	for i, k := range kinds {
		stream, status := openSubscription(t, ts.URL, "g", "", k.req)
		if status != http.StatusOK {
			t.Fatalf("%s: subscription refused with %d", k.name, status)
		}
		defer stream.close()
		var hello WireSubscribed
		if err := json.Unmarshal(stream.line(t), &hello); err != nil {
			t.Fatalf("%s: bad hello line: %v", k.name, err)
		}
		if !hello.Subscribed || hello.Generation != startGen {
			t.Fatalf("%s: hello %+v, want subscribed at generation %d", k.name, hello, startGen)
		}
		ref, err := k.sub()
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		opened[i] = open{stream, ref}
	}

	updates := []UpdateRequest{
		{Add: [][2]uint32{{700, 701}, {701, 702}, {700, 702}, {700, 703}, {701, 703}, {702, 703}}},
		{Remove: [][2]uint32{{700, 703}}},
		{Add: [][2]uint32{{0, 700}}, Remove: [][2]uint32{{700, 701}}},
	}
	for ui, u := range updates {
		ur := postUpdate(t, ts.URL, "g", u)
		if ur.Generation != startGen+uint64(ui)+1 {
			t.Fatalf("update %d installed generation %d", ui, ur.Generation)
		}
		for i, k := range kinds {
			cs, ok := <-opened[i].ref.Changes()
			if !ok {
				t.Fatalf("%s: reference subscription ended early", k.name)
			}
			want, _ := json.Marshal(ToWireChange(cs))
			want = append(want, '\n')
			got := opened[i].stream.line(t)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: update %d: wire line differs from in-process ChangeSet:\n got %s\nwant %s", k.name, ui, got, want)
			}
			if cs.Generation != ur.Generation {
				t.Fatalf("%s: update %d delivered generation %d, want %d", k.name, ui, cs.Generation, ur.Generation)
			}
		}
	}
}

// TestSubscribeResumeHandshake pins the reconnect contract: matching
// AfterGeneration opens the stream; a stale one answers 409 before any
// stream bytes; generation numbers let the client resume exactly.
func TestSubscribeResumeHandshake(t *testing.T) {
	opts := repro.Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=60,m=240", opts)

	gen0 := uint64(0)
	stream, status := openSubscription(t, ts.URL, "g", "", SubscribeRequest{AfterGeneration: &gen0})
	if status != http.StatusOK {
		t.Fatalf("matching after_generation refused with %d", status)
	}
	var hello WireSubscribed
	if err := json.Unmarshal(stream.line(t), &hello); err != nil || hello.Generation != 0 {
		t.Fatalf("hello %+v, err %v", hello, err)
	}

	ur := postUpdate(t, ts.URL, "g", UpdateRequest{Add: [][2]uint32{{500, 501}, {501, 502}, {500, 502}}})
	var change WireChange
	if err := json.Unmarshal(stream.line(t), &change); err != nil {
		t.Fatal(err)
	}
	if change.Generation != ur.Generation || len(change.Added) == 0 {
		t.Fatalf("change %+v, want added triangles at generation %d", change, ur.Generation)
	}
	stream.close()

	// The graph moved to generation 1; a client that only integrated 0
	// cannot resume — its gap was never retained.
	if _, status := openSubscription(t, ts.URL, "g", "", SubscribeRequest{AfterGeneration: &gen0}); status != http.StatusConflict {
		t.Fatalf("stale after_generation answered %d, want 409", status)
	}
	// One that integrated generation 1 resumes exactly.
	stream2, status := openSubscription(t, ts.URL, "g", "", SubscribeRequest{AfterGeneration: &ur.Generation})
	if status != http.StatusOK {
		t.Fatalf("current after_generation refused with %d", status)
	}
	defer stream2.close()
	if err := json.Unmarshal(stream2.line(t), &hello); err != nil || hello.Generation != ur.Generation {
		t.Fatalf("resumed hello %+v, err %v", hello, err)
	}
}

// TestSubscribeValidation covers the 4xx surface of the endpoint.
func TestSubscribeValidation(t *testing.T) {
	opts := repro.Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=60,m=240", opts)

	cases := []struct {
		name   string
		id     string
		body   string
		status int
	}{
		{"unknown graph", "nope", `{}`, http.StatusNotFound},
		{"bad json", "g", `{`, http.StatusBadRequest},
		{"bad kind", "g", `{"kind":"rings"}`, http.StatusBadRequest},
		{"cliques without k", "g", `{"kind":"cliques"}`, http.StatusBadRequest},
		{"cliques k too small", "g", `{"kind":"cliques","k":2}`, http.StatusBadRequest},
		{"match without pattern", "g", `{"kind":"match"}`, http.StatusBadRequest},
		{"match unknown pattern", "g", `{"kind":"match","pattern":"heptagon"}`, http.StatusBadRequest},
		{"triangles with k", "g", `{"k":3}`, http.StatusBadRequest},
		{"match with k", "g", `{"kind":"match","pattern":"diamond","k":4}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/graphs/"+c.id+"/subscriptions", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
}

// TestSubscriptionEndsOnUnload: unloading the graph closes its handle,
// which ends the stream with an orderly WireSubEnd naming the last
// delivered generation — the client's exact resume point.
func TestSubscriptionEndsOnUnload(t *testing.T) {
	opts := repro.Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	_, ts, _ := newTestServer(t, Config{}, "g", "gnm:n=60,m=240", opts)

	stream, status := openSubscription(t, ts.URL, "g", "", SubscribeRequest{})
	if status != http.StatusOK {
		t.Fatalf("subscription refused with %d", status)
	}
	defer stream.close()
	stream.line(t) // hello

	ur := postUpdate(t, ts.URL, "g", UpdateRequest{Add: [][2]uint32{{500, 501}, {501, 502}, {500, 502}}})
	var change WireChange
	if err := json.Unmarshal(stream.line(t), &change); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/graphs/g", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unload answered %d", resp.StatusCode)
	}

	var end WireSubEnd
	if err := json.Unmarshal(stream.line(t), &end); err != nil {
		t.Fatal(err)
	}
	if !end.Done || end.Generation != ur.Generation || end.Delivered != 1 {
		t.Fatalf("end line %+v, want done at generation %d with 1 delivered", end, ur.Generation)
	}
	if !strings.Contains(end.Error, "closed") {
		t.Fatalf("end line error %q does not name the close", end.Error)
	}
}

// TestSubscriptionChargesBudget: a live stream holds one session of the
// tenant's budget for its whole lifetime, so a budget of one rejects a
// second subscription with 429 until the first disconnects.
func TestSubscriptionChargesBudget(t *testing.T) {
	opts := repro.Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	_, ts, _ := newTestServer(t, Config{MaxTenantSessions: 1}, "g", "gnm:n=60,m=240", opts)

	stream, status := openSubscription(t, ts.URL, "g", "tight", SubscribeRequest{})
	if status != http.StatusOK {
		t.Fatalf("first subscription refused with %d", status)
	}
	stream.line(t) // hello: the session is held now
	if _, status := openSubscription(t, ts.URL, "g", "tight", SubscribeRequest{}); status != http.StatusTooManyRequests {
		t.Fatalf("second subscription answered %d, want 429", status)
	}
	// A different tenant is unaffected.
	other, status := openSubscription(t, ts.URL, "g", "roomy", SubscribeRequest{})
	if status != http.StatusOK {
		t.Fatalf("other tenant refused with %d", status)
	}
	other.close()
	stream.close()
}

// TestToWireChangeNeverNull pins the JSON shape: empty change lists
// encode as [], not null.
func TestToWireChangeNeverNull(t *testing.T) {
	b, err := json.Marshal(ToWireChange(repro.ChangeSet{Generation: 3}))
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if strings.Contains(s, "null") {
		t.Fatalf("wire change encodes null: %s", s)
	}
	for _, want := range []string{`"added":[]`, `"removed":[]`} {
		if !strings.Contains(s, want) {
			t.Fatalf("wire change %s missing %s", s, want)
		}
	}
}
