// Package serve is the engine room of cmd/trienumd: an HTTP/JSON
// multi-tenant query daemon over repro Graph handles, built entirely on
// the standard library.
//
// The daemon is a thin network boundary around machinery the library
// already provides — immutable shared cores, per-query session Spaces,
// MVCC generations, cancellation, Query.Limit — and it preserves the
// library's signature contract across the wire: the NDJSON result
// stream of a query is byte-identical to the in-process callback query
// at every Workers value, because emissions are encoded one per line in
// the engine's deterministic emission order, from the producer's
// calling goroutine. Backpressure is the HTTP connection itself: a slow
// client blocks the response write, which blocks the emit callback,
// which stalls the producer cooperatively.
//
// Pagination follows the paginated list-endpoint idiom: a query with
// Limit n streams at most n results and ends with an opaque resumable
// cursor token encoding the position reached in the deterministic
// emission order; replaying the query with that cursor emits exactly
// the uncursored stream's suffix, as long as the graph generation the
// cursor pinned is still current (an intervening Update invalidates it
// with 409).
//
// Multi-tenancy is admission control over the session-Space budget: a
// tenant (the X-Tenant request header) is a budget of concurrent
// sessions and total M-words, each query or update costing one session
// of the graph's Options.MemoryWords until it drains. Exhausting either
// cap fails fast with 429; per-tenant Result and IO statistics are
// surfaced on /v1/stats. See docs/API.md for the wire contract.
package serve

import "repro"

// Wire types: the JSON bodies of every endpoint. Field order is part of
// the wire contract — encoding/json emits struct fields in declaration
// order, and the byte-identity tests compare encoded streams directly.

// GraphInfo describes one loaded graph, as listed by GET /v1/graphs.
type GraphInfo struct {
	// ID is the registry name the graph was loaded under.
	ID string `json:"id"`
	// Generation is the current MVCC generation: 0 after a build,
	// incremented by every effective update.
	Generation uint64 `json:"generation"`
	// Vertices and Edges describe the current generation's canonical
	// (deduplicated) graph.
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// CanonIOs is the one-time block-I/O cost paid for the current
	// generation's canonical image (build + delta merges; 0 for an
	// adopted image).
	CanonIOs uint64 `json:"canon_ios"`
	// MemoryWords is the per-session M-word cost a query against this
	// graph charges to its tenant's budget.
	MemoryWords int `json:"memory_words"`
	// DiskPath is the durable image path for disk-backed graphs
	// (empty for memory-backed ones).
	DiskPath string `json:"disk_path,omitempty"`
	// Queries counts the queries served against this graph since load.
	Queries uint64 `json:"queries"`
}

// GraphList is the response of GET /v1/graphs. Graphs are sorted by ID,
// so the listing is deterministic.
type GraphList struct {
	Graphs []GraphInfo `json:"graphs"`
}

// LoadRequest is the body of POST /v1/graphs: load (build or open) a
// graph into the registry under ID. Exactly one source must be set:
//
//   - Spec: build from a generator spec (repro.Generate syntax);
//   - Edges: build from an inline edge list;
//   - Path with neither: open (adopt) an existing durable image via
//     repro.Open, replaying its write-ahead log if a crash left one.
//
// Path combined with Spec or Edges builds a durable image at Path
// (Options.DiskPath). The machine options default like repro.Options.
type LoadRequest struct {
	ID    string      `json:"id"`
	Spec  string      `json:"spec,omitempty"`
	Edges [][2]uint32 `json:"edges,omitempty"`
	Path  string      `json:"path,omitempty"`
	// MemoryWords, BlockWords, Workers, Seed configure the simulated
	// machine (see repro.Options); zero values take the library
	// defaults.
	MemoryWords int    `json:"memory_words,omitempty"`
	BlockWords  int    `json:"block_words,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
}

// LoadResponse is the response of POST /v1/graphs.
type LoadResponse struct {
	Graph GraphInfo `json:"graph"`
	// Opened is true when the graph was adopted from an existing image
	// (repro.Open) rather than built.
	Opened bool `json:"opened,omitempty"`
	// Replayed, ReplayIOs and AdoptIOs mirror repro.OpenResult for an
	// opened graph: write-ahead-log records replayed and the block-I/O
	// cost of recovery and adoption.
	Replayed  int    `json:"replayed,omitempty"`
	ReplayIOs uint64 `json:"replay_ios,omitempty"`
	AdoptIOs  uint64 `json:"adopt_ios,omitempty"`
}

// QueryRequest is the body of POST /v1/graphs/{id}/query. The response
// is an NDJSON stream (Content-Type application/x-ndjson): zero or more
// emission lines — {"v":[...]} in the engine's deterministic emission
// order — followed by exactly one trailer line (QueryTrailer).
type QueryRequest struct {
	// Kind selects the query: "triangles" (default), "cliques", or
	// "match".
	Kind string `json:"kind,omitempty"`
	// K is the clique size for Kind "cliques" (k >= 3).
	K int `json:"k,omitempty"`
	// Pattern is the named pattern for Kind "match" (repro.ParsePattern
	// names, e.g. "diamond").
	Pattern string `json:"pattern,omitempty"`
	// Algorithm selects the triangle algorithm by name
	// (repro.ParseAlgorithm; default "cacheaware"). Triangles only.
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives the randomized decompositions; the emission stream is
	// deterministic in it.
	Seed uint64 `json:"seed,omitempty"`
	// Workers overrides the graph's worker count for this query. The
	// emission stream and aggregated statistics are identical at every
	// value — wall-clock only.
	Workers int `json:"workers,omitempty"`
	// Native runs the query natively on the canonical image
	// (repro.ModeNative): the emission lines are byte-identical to the
	// simulated run, but the trailer's result.stats is zero — native
	// execution compiles the block-I/O accounting out. Applies to every
	// kind. A cursor remembers the mode it was minted under; resuming
	// with a conflicting mode is a 400.
	Native bool `json:"native,omitempty"`
	// Ordered delivers the stream in the canonical global order
	// (repro.Query.Ordered): ascending lexicographic tuples, match
	// embeddings normalized. The canonical order is a pure function of
	// the edge set and the query — the order a cluster coordinator's
	// gathered stream arrives in — at the cost of buffering the full
	// result before the first emission line. Like Native, a cursor pins
	// the mode it was minted under.
	Ordered bool `json:"ordered,omitempty"`
	// Limit, when positive, ends the stream cleanly after Limit
	// emissions and returns a resumable cursor in the trailer.
	Limit uint64 `json:"limit,omitempty"`
	// Cursor resumes a previous query of this graph from the position
	// its trailer reported. The query parameters above must match the
	// cursor's (or be left zero to inherit them); the graph generation
	// must still be the one the cursor was minted on, else 409.
	Cursor string `json:"cursor,omitempty"`
}

// QueryTrailer is the final line of a query's NDJSON stream.
type QueryTrailer struct {
	Done bool `json:"done"`
	// Delivered counts the emission lines streamed by this response
	// (after any cursor skip).
	Delivered uint64 `json:"delivered"`
	// Generation is the MVCC generation the query ran on (the one a
	// returned cursor is valid for).
	Generation uint64 `json:"generation"`
	// Cursor, when non-empty, resumes the stream where this response
	// stopped (the query hit its Limit). Pass it back verbatim in
	// QueryRequest.Cursor.
	Cursor string `json:"cursor,omitempty"`
	// Result is the query's statistics, exactly the in-process
	// repro.Result of the same query (WorkerStats excluded: individual
	// per-worker entries are scheduling-dependent; their sum is already
	// in Result.Stats).
	Result WireResult `json:"result"`
	// Error reports a producer failure after streaming began (the HTTP
	// status was already committed as 200 by then). Empty on success.
	Error string `json:"error,omitempty"`
}

// WireResult is repro.Result on the wire, minus the scheduling-dependent
// per-worker breakdown — everything in it is deterministic and
// worker-invariant, so the trailer bytes are identical at every Workers
// value.
type WireResult struct {
	Triangles       uint64      `json:"triangles"`
	Matches         uint64      `json:"matches"`
	Vertices        int         `json:"vertices"`
	Edges           int64       `json:"edges"`
	Stats           WireIOStats `json:"stats"`
	CanonIOs        uint64      `json:"canon_ios"`
	Colors          int         `json:"colors,omitempty"`
	HighDegVertices int         `json:"high_deg_vertices,omitempty"`
	Subproblems     int         `json:"subproblems,omitempty"`
	MaxSubproblem   int64       `json:"max_subproblem,omitempty"`
}

// WireIOStats is repro.IOStats on the wire.
type WireIOStats struct {
	BlockReads     uint64 `json:"block_reads"`
	BlockWrites    uint64 `json:"block_writes"`
	WordReads      uint64 `json:"word_reads"`
	WordWrites     uint64 `json:"word_writes"`
	PeakLeaseWords int    `json:"peak_lease_words"`
	PeakDiskWords  int64  `json:"peak_disk_words"`
}

func toWireStats(s repro.IOStats) WireIOStats {
	return WireIOStats{
		BlockReads:     s.BlockReads,
		BlockWrites:    s.BlockWrites,
		WordReads:      s.WordReads,
		WordWrites:     s.WordWrites,
		PeakLeaseWords: s.PeakLeaseWords,
		PeakDiskWords:  s.PeakDiskWords,
	}
}

// ToWireResult converts an in-process Result to its wire form — exported
// so tests and clients can assert the trailer equals the in-process
// query bit for bit.
func ToWireResult(r repro.Result) WireResult {
	return WireResult{
		Triangles:       r.Triangles,
		Matches:         r.Matches,
		Vertices:        r.Vertices,
		Edges:           r.Edges,
		Stats:           toWireStats(r.Stats),
		CanonIOs:        r.CanonIOs,
		Colors:          r.Colors,
		HighDegVertices: r.HighDegVertices,
		Subproblems:     r.Subproblems,
		MaxSubproblem:   r.MaxSubproblem,
	}
}

// SubscribeRequest is the body of POST /v1/graphs/{id}/subscriptions:
// register a standing query and hold the connection open as its change
// stream. The response is NDJSON: one WireSubscribed hello line, then
// one WireChange line per effective update (flushed immediately — this
// is a live stream), then one WireSubEnd line when the subscription
// ends. The connection is the subscription's lifetime: closing it (or
// cancelling the request) unregisters the standing query.
type SubscribeRequest struct {
	// Kind selects the family: "triangles" (default), "cliques", or
	// "match" — the same families as a query, differentially enumerated.
	Kind string `json:"kind,omitempty"`
	// K is the clique size for Kind "cliques" (k >= 3).
	K int `json:"k,omitempty"`
	// Pattern is the named pattern for Kind "match".
	Pattern string `json:"pattern,omitempty"`
	// Workers bounds the differential kernel's parallelism; the change
	// stream and its statistics are identical at every value.
	Workers int `json:"workers,omitempty"`
	// AfterGeneration, when set, is the reconnect handshake: the last
	// generation this client has already integrated (the Generation of
	// the last WireChange or WireSubEnd it processed). The subscription
	// must begin exactly there — if the graph has moved past it (updates
	// applied while the client was away), the request fails with 409 and
	// the client must re-baseline with a fresh full query. When unset,
	// the stream simply starts at the current generation.
	AfterGeneration *uint64 `json:"after_generation,omitempty"`
}

// WireSubscribed is the hello line of a subscription stream: the
// registration generation. Every subsequent change carries consecutive
// generation numbers starting one past it.
type WireSubscribed struct {
	Subscribed bool   `json:"subscribed"`
	Generation uint64 `json:"generation"`
}

// WireChange is one repro.ChangeSet on the wire: the matches one
// effective update created and destroyed, in the deterministic
// lexicographic order the library delivers, with the differential
// enumeration cost. Like every wire body its bytes are invariant in
// workers and backend.
type WireChange struct {
	Generation uint64      `json:"generation"`
	Added      [][]uint32  `json:"added"`
	Removed    [][]uint32  `json:"removed"`
	Vertices   int         `json:"vertices"`
	Edges      int64       `json:"edges"`
	Stats      WireIOStats `json:"stats"`
}

// ToWireChange converts a delivered ChangeSet to its wire form —
// exported so tests and clients can assert the stream equals the
// in-process subscription bit for bit. Added/Removed are never null on
// the wire ([] when empty).
func ToWireChange(cs repro.ChangeSet) WireChange {
	added, removed := cs.Added, cs.Removed
	if added == nil {
		added = [][]uint32{}
	}
	if removed == nil {
		removed = [][]uint32{}
	}
	return WireChange{
		Generation: cs.Generation,
		Added:      added,
		Removed:    removed,
		Vertices:   cs.Vertices,
		Edges:      cs.Edges,
		Stats:      toWireStats(cs.Stats),
	}
}

// WireSubEnd is the final line of a subscription stream.
type WireSubEnd struct {
	// Done is true for an orderly ending (graph closed or unloaded,
	// stream cancelled); false when the differential kernel failed.
	Done bool `json:"done"`
	// Generation is the last generation delivered on this stream (the
	// registration generation when nothing was) — the value to hand back
	// as AfterGeneration to resume exactly.
	Generation uint64 `json:"generation"`
	// Delivered counts the WireChange lines streamed.
	Delivered uint64 `json:"delivered"`
	// Error reports why the subscription ended, empty for a plain close.
	Error string `json:"error,omitempty"`
}

// UpdateRequest is the body of POST /v1/graphs/{id}/update: a batched
// repro.Delta. The updated edge set is (E \ Remove) ∪ Add; no-op
// changes are ignored.
type UpdateRequest struct {
	Add    [][2]uint32 `json:"add,omitempty"`
	Remove [][2]uint32 `json:"remove,omitempty"`
}

// UpdateResponse mirrors repro.UpdateResult: the generation now serving
// queries, the effective change counts, and the deterministic merge
// cost.
type UpdateResponse struct {
	Generation uint64 `json:"generation"`
	Added      int64  `json:"added"`
	Removed    int64  `json:"removed"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	MergeIOs   uint64 `json:"merge_ios"`
}

// CheckpointResponse is the response of POST /v1/graphs/{id}/checkpoint.
type CheckpointResponse struct {
	// Generation is the generation durably promoted over the image.
	Generation uint64 `json:"generation"`
}

// TenantStats is one tenant's admission state and cumulative usage, as
// reported by GET /v1/stats.
type TenantStats struct {
	// ActiveSessions and ActiveMemoryWords are the budget in use right
	// now; the per-tenant caps bound them.
	ActiveSessions    int   `json:"active_sessions"`
	ActiveMemoryWords int64 `json:"active_memory_words"`
	// Admitted and Rejected count admission decisions (a rejection is a
	// 429 response).
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	// Queries, Updates and Emissions count completed work.
	Queries   uint64 `json:"queries"`
	Updates   uint64 `json:"updates"`
	Emissions uint64 `json:"emissions"`
	// BlockReads/BlockWrites aggregate the per-query Result.Stats of the
	// tenant's completed queries; UpdateIOs aggregates its updates'
	// MergeIOs. All deterministic block counts.
	BlockReads  uint64 `json:"block_reads"`
	BlockWrites uint64 `json:"block_writes"`
	UpdateIOs   uint64 `json:"update_ios"`
	// BytesStreamed counts NDJSON response bytes written to the tenant.
	BytesStreamed uint64 `json:"bytes_streamed"`
}

// StatsResponse is the body of GET /v1/stats: the admission caps and
// every tenant seen so far, keyed by tenant name.
type StatsResponse struct {
	MaxTenantSessions    int                    `json:"max_tenant_sessions"`
	MaxTenantMemoryWords int64                  `json:"max_tenant_memory_words"`
	Tenants              map[string]TenantStats `json:"tenants"`
}

// ErrorResponse is the JSON body of every non-2xx response (except
// mid-stream failures, which are reported in the QueryTrailer).
type ErrorResponse struct {
	Error string `json:"error"`
}
