// Package subgraph implements the extension sketched in Section 6 of the
// paper (crediting Silvestri, "Subgraph Enumeration in Massive Graphs"):
// enumerating k-cliques in O(E^(k/2)/(M^(k/2−1)·B)) expected I/Os by the
// same color-coding decomposition as the triangle algorithm — c = sqrt(E/M)
// colors split the problem into c^k subproblems of expected size O(k²·M),
// each solved in internal memory.
package subgraph

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ctxutil"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/trienum"
)

// EmitK receives each k-clique exactly once as strictly increasing ranks.
// The slice is reused between calls; copy it to retain.
type EmitK func(verts []uint32)

// Info reports decomposition statistics.
type Info struct {
	// Cliques counts the enumerated copies (k-cliques for KClique,
	// pattern embeddings modulo Aut(H) for Pattern.Enumerate).
	Cliques     uint64
	Colors      int
	Subproblems int
	// MaxSubproblem is the largest subproblem edge count actually loaded,
	// to compare against the O(k²·M) expectation.
	MaxSubproblem int64
}

// KClique enumerates all k-cliques (k >= 3) of g. Emission order follows
// the decomposition, not any global order. ctx (which may be nil) is
// checked cooperatively between color-tuple subproblems; on cancellation
// the enumeration stops early and returns ctx.Err(), with the cliques
// already emitted forming a prefix of the full stream.
func KClique(ctx context.Context, sp *extmem.Space, g graph.Canonical, k int, seed uint64, emit EmitK) (Info, error) {
	var info Info
	if k < 3 {
		return info, fmt.Errorf("subgraph: k must be at least 3, got %d", k)
	}
	E := g.Edges.Len()
	if E == 0 {
		return info, nil
	}
	cfg := sp.Config()
	mark := sp.Mark()
	defer sp.Release(mark)

	// c = ceil(sqrt(E/M)) colors, as in Section 2. We cap c so the c^k
	// tuple loop stays tractable for the larger k this package exists for.
	c := 1
	for c*c < int(E)/cfg.M {
		c *= 2
	}
	for pow(c, k) > 1<<22 {
		c /= 2
	}
	if c < 1 {
		c = 1
	}
	info.Colors = c
	col := hashing.NewColoring(hashing.NewRand(seed), c)

	edges := sp.Alloc(E)
	g.Edges.CopyTo(edges)
	cc := uint64(c)
	pairKey := func(e extmem.Word) uint64 {
		return uint64(col.Color(graph.U(e)))*cc + uint64(col.Color(graph.V(e)))
	}
	emsort.SortRecords(edges, 1, pairKey)

	off := make([]int64, c*c+1)
	counts := make([]int64, c*c)
	for i := int64(0); i < E; i++ {
		counts[pairKey(edges.Read(i))]++
	}
	var acc int64
	for i, n := range counts {
		off[i] = acc
		acc += n
	}
	off[c*c] = acc

	// Iterate all c^k color tuples. A k-clique v1<...<vk with colors
	// (ξ(v1),...,ξ(vk)) is found in exactly that tuple's subproblem.
	tuple := make([]int, k)
	verts := make([]uint32, k)
	var iterate func(pos int) error
	iterate = func(pos int) error {
		if pos == k {
			if err := ctxutil.Err(ctx); err != nil {
				return err
			}
			return solveTuple(sp, edges, off, c, col.Color, tuple, verts, &info, emit)
		}
		for t := 0; t < c; t++ {
			tuple[pos] = t
			if err := iterate(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	err := iterate(0)
	return info, err
}

// solveTuple loads the union of the C(k,2) buckets for one color tuple and
// enumerates its properly colored k-cliques in internal memory.
func solveTuple(sp *extmem.Space, edges extmem.Extent, off []int64, c int, colorOf func(uint32) uint32, tuple []int, verts []uint32, info *Info, emit EmitK) error {
	k := len(tuple)
	// Gather the distinct bucket ranges for all position pairs.
	type rng struct{ lo, hi int64 }
	var ranges []rng
	var total int64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b := tuple[i]*c + tuple[j]
			r := rng{off[b], off[b+1]}
			if r.lo == r.hi {
				return nil // a required bucket is empty: no cliques here
			}
			dup := false
			for _, o := range ranges {
				if o == r {
					dup = true
					break
				}
			}
			if !dup {
				ranges = append(ranges, r)
				total += r.hi - r.lo
			}
		}
	}
	info.Subproblems++
	if total > info.MaxSubproblem {
		info.MaxSubproblem = total
	}

	// Load the subproblem into internal memory. Expected size O(k²·M);
	// the lease is charged for whatever it actually is.
	release := sp.LeaseAtMost(int(total) * 3)
	defer release()
	adj := make(map[uint32][]uint32)
	for _, r := range ranges {
		for i := r.lo; i < r.hi; i++ {
			e := edges.Read(i)
			adj[graph.U(e)] = append(adj[graph.U(e)], graph.V(e))
		}
	}
	starts := make([]uint32, 0, len(adj))
	for v, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		starts = append(starts, v)
	}
	// Iterate start vertices in sorted order, not map order: the emission
	// stream of a subproblem must be a pure function of the subproblem,
	// identical across runs (and across concurrent sessions).
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	// Depth-first clique extension with per-position color constraints.
	t0 := uint32(tuple[0])
	var extend func(pos int, cands []uint32)
	extend = func(pos int, cands []uint32) {
		want := uint32(tuple[pos])
		for _, v := range cands {
			if colorOf(v) != want {
				continue
			}
			verts[pos] = v
			if pos == k-1 {
				info.Cliques++
				emit(verts)
				continue
			}
			extend(pos+1, intersectSorted(cands, adj[v], v))
		}
	}
	for _, v := range starts {
		if colorOf(v) != t0 {
			continue
		}
		verts[0] = v
		extend(1, adj[v])
	}
	return nil
}

// intersectSorted returns elements > floor present in both sorted lists.
func intersectSorted(a, b []uint32, floor uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor {
				out = append(out, a[i])
			}
			i++
			j++
		}
	}
	return out
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
		if r > 1<<30 {
			return 1 << 30
		}
	}
	return r
}

// CountTriangles sanity-bridges k=3 to the triangle algorithms: the
// 3-clique count must equal what trienum reports.
func CountTriangles(sp *extmem.Space, g graph.Canonical, seed uint64) (uint64, uint64) {
	var viaK uint64
	info, _ := KClique(nil, sp, g, 3, seed, func([]uint32) {})
	viaK = info.Cliques
	var viaT uint64
	trienum.CacheAware(sp, g, seed, graph.Counter(&viaT))
	return viaK, viaT
}
