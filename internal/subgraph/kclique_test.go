package subgraph

import (
	"sort"
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
}

func binom(n, k int) uint64 {
	if k > n {
		return 0
	}
	r := uint64(1)
	for i := 0; i < k; i++ {
		r = r * uint64(n-i) / uint64(i+1)
	}
	return r
}

func TestKCliqueOnCliques(t *testing.T) {
	for _, n := range []int{5, 8, 12} {
		for _, k := range []int{3, 4, 5} {
			sp := newSpace()
			g := graph.CanonicalizeList(sp, graph.Clique(n))
			info, err := KClique(nil, sp, g, k, 42, func([]uint32) {})
			if err != nil {
				t.Fatal(err)
			}
			if want := binom(n, k); info.Cliques != want {
				t.Errorf("K_%d: %d %d-cliques, want %d", n, info.Cliques, k, want)
			}
		}
	}
}

// bruteCliques counts k-cliques by exhaustive extension over original ids.
func bruteCliques(el graph.EdgeList, k int) uint64 {
	adjSet := map[uint64]bool{}
	verts := map[uint32]bool{}
	for _, e := range el.Edges {
		adjSet[e] = true
		verts[graph.U(e)] = true
		verts[graph.V(e)] = true
	}
	var ids []uint32
	for v := range verts {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var count uint64
	var rec func(chosen []uint32, start int)
	rec = func(chosen []uint32, start int) {
		if len(chosen) == k {
			count++
			return
		}
		for i := start; i < len(ids); i++ {
			v := ids[i]
			ok := true
			for _, u := range chosen {
				if !adjSet[graph.Pack(u, v)] {
					ok = false
					break
				}
			}
			if ok {
				rec(append(chosen, v), i+1)
			}
		}
	}
	rec(nil, 0)
	return count
}

func TestKCliqueAgainstBruteForce(t *testing.T) {
	workloads := []graph.EdgeList{
		graph.GNM(40, 300, 1),
		graph.PlantedClique(50, 120, 8, 2),
		graph.PowerLaw(60, 250, 2.4, 3),
		graph.Grid(5, 5),
	}
	for wi, el := range workloads {
		for _, k := range []int{3, 4} {
			want := bruteCliques(el, k)
			sp := newSpace()
			g := graph.CanonicalizeList(sp, el)
			info, err := KClique(nil, sp, g, k, 7, func([]uint32) {})
			if err != nil {
				t.Fatal(err)
			}
			if info.Cliques != want {
				t.Errorf("workload %d k=%d: got %d cliques, want %d", wi, k, info.Cliques, want)
			}
		}
	}
}

func TestKCliqueEmitsSortedDistinct(t *testing.T) {
	el := graph.PlantedClique(40, 100, 7, 5)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	seen := map[[4]uint32]bool{}
	_, err := KClique(nil, sp, g, 4, 3, func(vs []uint32) {
		if len(vs) != 4 {
			t.Fatal("wrong clique size")
		}
		var key [4]uint32
		for i, v := range vs {
			key[i] = v
			if i > 0 && vs[i-1] >= v {
				t.Fatalf("clique not strictly increasing: %v", vs)
			}
		}
		if seen[key] {
			t.Fatalf("duplicate clique %v", vs)
		}
		seen[key] = true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKCliqueSmallMemoryManyColors(t *testing.T) {
	// Force c > 1 so the tuple decomposition is exercised.
	el := graph.PlantedClique(120, 900, 10, 9)
	want := bruteCliques(el, 4)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
	g := graph.CanonicalizeList(sp, el)
	info, err := KClique(nil, sp, g, 4, 11, func([]uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if info.Colors < 2 {
		t.Errorf("expected multiple colors, got %d", info.Colors)
	}
	if info.Cliques != want {
		t.Errorf("got %d 4-cliques, want %d", info.Cliques, want)
	}
}

func TestKCliqueRejectsSmallK(t *testing.T) {
	sp := newSpace()
	g := graph.CanonicalizeList(sp, graph.Clique(4))
	if _, err := KClique(nil, sp, g, 2, 1, func([]uint32) {}); err == nil {
		t.Error("k=2 should be rejected")
	}
}

func TestCountTrianglesBridge(t *testing.T) {
	sp := newSpace()
	g := graph.CanonicalizeList(sp, graph.GNM(70, 500, 13))
	viaK, viaT := CountTriangles(sp, g, 99)
	if viaK != viaT {
		t.Errorf("k-clique path found %d triangles, triangle algorithm %d", viaK, viaT)
	}
}
