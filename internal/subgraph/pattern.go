package subgraph

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ctxutil"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
)

// Pattern is a small connected pattern graph H on k <= 8 vertices,
// described by its adjacency bitmask: bit j of Adj[i] set means {i, j} is
// an H-edge. Section 6 extends the paper's color-coding decomposition to
// any constant-size subgraph in the Alon class (citing Silvestri 2014);
// this type carries the pattern and its automorphism group, which the
// enumerator uses to emit every copy of H exactly once.
type Pattern struct {
	k    int
	adj  []uint8
	auts [][]int // automorphism permutations of {0..k-1}
	name string
}

// NewPattern builds a pattern from an edge list over vertices 0..k-1.
// The pattern must be connected (otherwise its copies are not determined
// by a single color-coded subproblem).
func NewPattern(name string, k int, edges [][2]int) (*Pattern, error) {
	if k < 2 || k > 8 {
		return nil, fmt.Errorf("subgraph: pattern order %d out of range [2,8]", k)
	}
	p := &Pattern{k: k, adj: make([]uint8, k), name: name}
	for _, e := range edges {
		i, j := e[0], e[1]
		if i < 0 || j < 0 || i >= k || j >= k || i == j {
			return nil, fmt.Errorf("subgraph: bad pattern edge {%d,%d}", i, j)
		}
		p.adj[i] |= 1 << uint(j)
		p.adj[j] |= 1 << uint(i)
	}
	if !p.connected() {
		return nil, fmt.Errorf("subgraph: pattern %q is not connected", name)
	}
	p.auts = p.automorphisms()
	return p, nil
}

// MustPattern is NewPattern for statically known patterns.
func MustPattern(name string, k int, edges [][2]int) *Pattern {
	p, err := NewPattern(name, k, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// Predefined patterns.
var (
	// Triangle is K3.
	Triangle = MustPattern("triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	// Path3 is the path on three vertices (a wedge).
	Path3 = MustPattern("path3", 3, [][2]int{{0, 1}, {1, 2}})
	// Cycle4 is the 4-cycle.
	Cycle4 = MustPattern("cycle4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	// Diamond is K4 minus one edge.
	Diamond = MustPattern("diamond", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	// K4 is the 4-clique.
	K4 = MustPattern("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	// Star3 is the claw K_{1,3}.
	Star3 = MustPattern("star3", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	// House is C5 plus a chord (5 vertices, 6 edges).
	House = MustPattern("house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 4}})
)

// K returns the number of pattern vertices.
func (p *Pattern) K() int { return p.k }

// Name returns the pattern's name.
func (p *Pattern) Name() string { return p.name }

// Edges returns the pattern's edge pairs (i < j).
func (p *Pattern) Edges() [][2]int {
	var out [][2]int
	for i := 0; i < p.k; i++ {
		for j := i + 1; j < p.k; j++ {
			if p.adj[i]&(1<<uint(j)) != 0 {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Automorphisms returns |Aut(H)|.
func (p *Pattern) Automorphisms() int { return len(p.auts) }

func (p *Pattern) connected() bool {
	var seen uint8 = 1
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for j := 0; j < p.k; j++ {
			if p.adj[v]&(1<<uint(j)) != 0 && seen&(1<<uint(j)) == 0 {
				seen |= 1 << uint(j)
				queue = append(queue, j)
			}
		}
	}
	return int(popcount8(seen)) == p.k
}

func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		n++
		x &= x - 1
	}
	return n
}

// automorphisms enumerates all permutations of {0..k-1} preserving adj.
func (p *Pattern) automorphisms() [][]int {
	perm := make([]int, p.k)
	for i := range perm {
		perm[i] = i
	}
	var auts [][]int
	var rec func(i int)
	used := make([]bool, p.k)
	cur := make([]int, p.k)
	rec = func(i int) {
		if i == p.k {
			auts = append(auts, append([]int(nil), cur...))
			return
		}
		for v := 0; v < p.k; v++ {
			if used[v] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				hEdge := p.adj[i]&(1<<uint(j)) != 0
				gEdge := p.adj[cur[j]]&(1<<uint(v)) != 0
				if hEdge != gEdge {
					ok = false
					break
				}
			}
			if ok {
				used[v] = true
				cur[i] = v
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return auts
}

// searchOrder returns a position ordering in which every position after
// the first has at least one earlier H-neighbor (a connected search
// order), plus for each position the bitmask of earlier neighbors.
func (p *Pattern) searchOrder() (order []int, back []uint8) {
	order = make([]int, 0, p.k)
	back = make([]uint8, p.k)
	var placed uint8
	order = append(order, 0)
	placed = 1
	for len(order) < p.k {
		for v := 0; v < p.k; v++ {
			if placed&(1<<uint(v)) != 0 {
				continue
			}
			if p.adj[v]&placed != 0 {
				back[len(order)] = p.adj[v] & placed
				order = append(order, v)
				placed |= 1 << uint(v)
				break
			}
		}
	}
	return order, back
}

// DistFrom returns the BFS distance of every pattern position from the
// position pair {i, j} (0 for i and j themselves). Patterns are
// connected, so every position has a finite distance.
func (p *Pattern) DistFrom(i, j int) []int {
	dist := make([]int, p.k)
	for v := range dist {
		dist[v] = -1
	}
	dist[i] = 0
	queue := []int{i}
	if j != i {
		dist[j] = 0
		queue = append(queue, j)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := 0; w < p.k; w++ {
			if p.adj[v]&(1<<uint(w)) != 0 && dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AnchoredOrder returns a connected search order that starts with the
// pre-placed positions i then j and continues in BFS order from the
// pair (nearer positions first, ties broken by position index), plus
// for each later position the bitmask of its H-neighbors already
// placed. Because positions are placed in nondecreasing DistFrom(i, j)
// order, every back-edge check pairs a new candidate against a placed
// vertex at most as far from the anchor — the property the
// differential kernel's bounded-closure plan relies on.
func (p *Pattern) AnchoredOrder(i, j int) (order []int, back []uint8) {
	dist := p.DistFrom(i, j)
	order = make([]int, 0, p.k)
	back = make([]uint8, p.k)
	order = append(order, i, j)
	placed := uint8(1<<uint(i) | 1<<uint(j))
	for len(order) < p.k {
		best := -1
		for v := 0; v < p.k; v++ {
			if placed&(1<<uint(v)) != 0 || p.adj[v]&placed == 0 {
				continue
			}
			if best < 0 || dist[v] < dist[best] {
				best = v
			}
		}
		back[len(order)] = p.adj[best] & placed
		order = append(order, best)
		placed |= 1 << uint(best)
	}
	return order, back
}

// IsMinimalEmbedding reports whether assign is the representative its
// Aut(H) orbit emits: the position-to-vertex tuple lexicographically
// minimal among all automorphic reshuffles — the same test the
// enumerator applies before emitting.
func (p *Pattern) IsMinimalEmbedding(assign []uint32) bool {
	return p.isCanonicalEmbedding(assign)
}

// Minimize rewrites assign in place to the lexicographically minimal
// tuple among its Aut(H) images — the representative
// IsMinimalEmbedding admits. Embeddings of one vertex set that differ
// only by an automorphism normalize to identical tuples, which lets
// emission streams produced against different canonical rank orders
// (two MVCC generations, say) be compared in the caller's id space.
func (p *Pattern) Minimize(assign []uint32) {
	best := make([]uint32, p.k)
	copy(best, assign)
	tmp := make([]uint32, p.k)
	for _, sigma := range p.auts {
		for i := 0; i < p.k; i++ {
			tmp[i] = assign[sigma[i]]
		}
		for i := 0; i < p.k; i++ {
			if tmp[i] != best[i] {
				if tmp[i] < best[i] {
					copy(best, tmp)
				}
				break
			}
		}
	}
	copy(assign, best)
}

// Enumerate finds every copy of the pattern in g: each set of k vertices
// carrying an H-isomorphic (not necessarily induced) subgraph is reported
// exactly once per distinct embedding modulo Aut(H). The emitted slice
// maps pattern position i to the G-vertex (rank) at that position; it is
// reused across calls.
//
// The decomposition follows Section 6: a 4-wise independent coloring with
// c colors splits the work into c^k color-tuple subproblems whose bucket
// unions are expected to be small; each subproblem is solved in internal
// memory. ctx (which may be nil) is checked cooperatively between
// subproblems, as in KClique.
func (p *Pattern) Enumerate(ctx context.Context, sp *extmem.Space, g graph.Canonical, seed uint64, emit EmitK) (Info, error) {
	var info Info
	E := g.Edges.Len()
	if E == 0 {
		return info, nil
	}
	cfg := sp.Config()
	mark := sp.Mark()
	defer sp.Release(mark)

	c := 1
	for c*c < int(E)/cfg.M {
		c *= 2
	}
	for pow(c, p.k) > 1<<20 {
		c /= 2
	}
	if c < 1 {
		c = 1
	}
	info.Colors = c
	col := hashing.NewColoring(hashing.NewRand(seed), c)

	edges := sp.Alloc(E)
	g.Edges.CopyTo(edges)
	cc := uint64(c)
	pairKey := func(e extmem.Word) uint64 {
		return uint64(col.Color(graph.U(e)))*cc + uint64(col.Color(graph.V(e)))
	}
	emsort.SortRecords(edges, 1, pairKey)
	off := bucketOffsets(edges, c, pairKey)

	order, back := p.searchOrder()
	tuple := make([]int, p.k)
	var iterate func(pos int) error
	iterate = func(pos int) error {
		if pos == p.k {
			if err := ctxutil.Err(ctx); err != nil {
				return err
			}
			return p.solvePatternTuple(sp, edges, off, c, col.Color, tuple, order, back, &info, emit)
		}
		for t := 0; t < c; t++ {
			tuple[pos] = t
			if err := iterate(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	err := iterate(0)
	return info, err
}

func bucketOffsets(edges extmem.Extent, c int, key func(extmem.Word) uint64) []int64 {
	off := make([]int64, c*c+1)
	counts := make([]int64, c*c)
	n := edges.Len()
	for i := int64(0); i < n; i++ {
		counts[key(edges.Read(i))]++
	}
	var acc int64
	for i, k := range counts {
		off[i] = acc
		acc += k
	}
	off[c*c] = acc
	return off
}

// solvePatternTuple loads the union of the buckets needed by the tuple
// and enumerates embeddings in internal memory.
func (p *Pattern) solvePatternTuple(sp *extmem.Space, edges extmem.Extent, off []int64, c int, colorOf func(uint32) uint32, tuple, order []int, back []uint8, info *Info, emit EmitK) error {
	// Bucket for an H-edge (i, j): G stores an edge under the color pair
	// (ξ(min), ξ(max)); since we do not know which mapped endpoint will be
	// smaller, take both (τi, τj) and (τj, τi).
	type rng struct{ lo, hi int64 }
	var ranges []rng
	var total int64
	addBucket := func(a, b int) {
		r := rng{off[a*c+b], off[a*c+b+1]}
		if r.lo == r.hi {
			return
		}
		for _, o := range ranges {
			if o == r {
				return
			}
		}
		ranges = append(ranges, r)
		total += r.hi - r.lo
	}
	for _, e := range p.Edges() {
		a, b := tuple[e[0]], tuple[e[1]]
		if off[a*c+b] == off[a*c+b+1] && off[b*c+a] == off[b*c+a+1] {
			return nil // this H-edge has no candidate G-edges: no copies
		}
		addBucket(a, b)
		addBucket(b, a)
	}
	info.Subproblems++
	if total > info.MaxSubproblem {
		info.MaxSubproblem = total
	}

	release := sp.LeaseAtMost(int(total) * 3)
	defer release()
	adj := make(map[uint32][]uint32)
	addDir := func(a, b uint32) { adj[a] = append(adj[a], b) }
	for _, r := range ranges {
		for i := r.lo; i < r.hi; i++ {
			e := edges.Read(i)
			addDir(graph.U(e), graph.V(e))
			addDir(graph.V(e), graph.U(e))
		}
	}
	starts := make([]uint32, 0, len(adj))
	for v, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		starts = append(starts, v)
	}
	// Sorted start order, as in solveTuple: the embedding stream must be
	// a pure function of the subproblem, identical across runs.
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	has := func(a, b uint32) bool {
		l := adj[a]
		i := sort.Search(len(l), func(i int) bool { return l[i] >= b })
		return i < len(l) && l[i] == b
	}

	assign := make([]uint32, p.k) // by pattern position
	var walk func(step int)
	walk = func(step int) {
		if step == p.k {
			if p.isCanonicalEmbedding(assign) {
				info.Cliques++
				emit(assign)
			}
			return
		}
		pos := order[step]
		want := uint32(tuple[pos])
		// Candidates: neighbors of one already-placed H-neighbor.
		var pivot uint32
		found := false
		for j := 0; j < p.k && !found; j++ {
			if back[step]&(1<<uint(j)) != 0 {
				pivot = assign[j]
				found = true
			}
		}
		if !found {
			return // cannot happen for connected patterns beyond step 0
		}
		for _, v := range adj[pivot] {
			if colorOf(v) != want {
				continue
			}
			dup := false
			for s := 0; s < step; s++ {
				if assign[order[s]] == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			ok := true
			for j := 0; j < p.k; j++ {
				if back[step]&(1<<uint(j)) != 0 && !has(assign[j], v) {
					ok = false
					break
				}
			}
			if ok {
				assign[pos] = v
				walk(step + 1)
			}
		}
	}
	t0 := uint32(tuple[order[0]])
	for _, v := range starts {
		if colorOf(v) != t0 {
			continue
		}
		assign[order[0]] = v
		walk(1)
	}
	return nil
}

// isCanonicalEmbedding keeps exactly one representative per Aut(H) orbit:
// the embedding whose position-to-vertex tuple is lexicographically
// minimal among all automorphic reshuffles.
func (p *Pattern) isCanonicalEmbedding(assign []uint32) bool {
	for _, sigma := range p.auts {
		for i := 0; i < p.k; i++ {
			a, b := assign[i], assign[sigma[i]]
			if a < b {
				break // current tuple is smaller than this reshuffle
			}
			if a > b {
				return false // a strictly smaller automorphic image exists
			}
		}
	}
	return true
}
