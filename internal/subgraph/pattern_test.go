package subgraph

import (
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// brutePattern counts pattern copies by enumerating all injective maps
// and dividing by |Aut(H)|.
func brutePattern(el graph.EdgeList, p *Pattern) uint64 {
	adj := map[uint64]bool{}
	verts := map[uint32]bool{}
	for _, e := range el.Edges {
		adj[e] = true
		verts[graph.U(e)] = true
		verts[graph.V(e)] = true
	}
	var ids []uint32
	for v := range verts {
		ids = append(ids, v)
	}
	k := p.K()
	hEdges := p.Edges()
	var maps uint64
	assign := make([]uint32, k)
	used := map[uint32]bool{}
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			maps++
			return
		}
		for _, v := range ids {
			if used[v] {
				continue
			}
			ok := true
			for _, e := range hEdges {
				var other int
				switch {
				case e[0] == pos && e[1] < pos:
					other = e[1]
				case e[1] == pos && e[0] < pos:
					other = e[0]
				default:
					continue
				}
				if !adj[graph.Pack(assign[other], v)] {
					ok = false
					break
				}
			}
			if ok {
				used[v] = true
				assign[pos] = v
				rec(pos + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return maps / uint64(p.Automorphisms())
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		p    *Pattern
		want int
	}{
		{Triangle, 6}, {Path3, 2}, {Cycle4, 8}, {Diamond, 4}, {K4, 24}, {Star3, 6}, {House, 2},
	}
	for _, c := range cases {
		if got := c.p.Automorphisms(); got != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := NewPattern("disconnected", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected pattern accepted")
	}
	if _, err := NewPattern("selfloop", 3, [][2]int{{0, 0}, {0, 1}, {1, 2}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewPattern("huge", 9, nil); err == nil {
		t.Error("k=9 accepted")
	}
	if _, err := NewPattern("oob", 3, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestPatternEnumerateKnownCounts(t *testing.T) {
	// On K_n the copy counts have closed forms.
	n := 8
	el := graph.Clique(n)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	cases := []struct {
		p    *Pattern
		want uint64
	}{
		{Triangle, binom(n, 3)},
		{Path3, 3 * binom(n, 3)}, // 3 wedges per vertex triple
		{K4, binom(n, 4)},
		{Cycle4, 3 * binom(n, 4)},  // 3 C4s per 4-set
		{Diamond, 6 * binom(n, 4)}, // 6 diamonds per 4-set
		{Star3, 4 * binom(n, 4)},   // 4 claws per 4-set
	}
	for _, c := range cases {
		info, err := c.p.Enumerate(nil, sp, g, 3, func([]uint32) {})
		if err != nil {
			t.Fatal(err)
		}
		if info.Cliques != c.want {
			t.Errorf("%s on K%d: %d copies, want %d", c.p.Name(), n, info.Cliques, c.want)
		}
	}
}

func TestPatternEnumerateAgainstBruteForce(t *testing.T) {
	workloads := []graph.EdgeList{
		graph.GNM(25, 90, 1),
		graph.PlantedClique(30, 60, 6, 2),
		graph.Grid(4, 5),
	}
	pats := []*Pattern{Triangle, Path3, Cycle4, Diamond, Star3, K4, House}
	for wi, el := range workloads {
		for _, p := range pats {
			want := brutePattern(el, p)
			sp := newSpace()
			g := graph.CanonicalizeList(sp, el)
			info, err := p.Enumerate(nil, sp, g, 9, func([]uint32) {})
			if err != nil {
				t.Fatal(err)
			}
			if info.Cliques != want {
				t.Errorf("workload %d, %s: got %d, want %d", wi, p.Name(), info.Cliques, want)
			}
		}
	}
}

func TestPatternTriangleAgreesWithKClique(t *testing.T) {
	el := graph.GNM(60, 400, 5)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	pi, err := Triangle.Enumerate(nil, sp, g, 3, func([]uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	ki, err := KClique(nil, sp, g, 3, 3, func([]uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if pi.Cliques != ki.Cliques {
		t.Errorf("pattern triangle %d != kclique %d", pi.Cliques, ki.Cliques)
	}
}

func TestPatternEnumerateManyColors(t *testing.T) {
	// Force c > 1 to exercise the tuple decomposition with both bucket
	// orientations.
	el := graph.PlantedClique(150, 900, 9, 4)
	want := brutePattern(el, Diamond)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
	g := graph.CanonicalizeList(sp, el)
	info, err := Diamond.Enumerate(nil, sp, g, 7, func([]uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if info.Colors < 2 {
		t.Skipf("only %d colors at this size", info.Colors)
	}
	if info.Cliques != want {
		t.Errorf("diamond copies %d, want %d", info.Cliques, want)
	}
}

func TestPatternEmissionsAreValidEmbeddings(t *testing.T) {
	el := graph.GNM(40, 200, 6)
	adjSet := map[uint64]bool{}
	for _, e := range el.Edges {
		adjSet[e] = true
	}
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	seen := map[[4]uint32]bool{}
	_, err := Cycle4.Enumerate(nil, sp, g, 8, func(vs []uint32) {
		// Translate ranks back to original ids and check all H-edges.
		var orig [4]uint32
		for i, v := range vs {
			orig[i] = g.RankToID[v]
		}
		for _, e := range Cycle4.Edges() {
			if !adjSet[graph.Pack(orig[e[0]], orig[e[1]])] {
				t.Fatalf("emitted %v but H-edge %v missing in G", orig, e)
			}
		}
		if seen[orig] {
			t.Fatalf("duplicate embedding %v", orig)
		}
		seen[orig] = true
	})
	if err != nil {
		t.Fatal(err)
	}
}
