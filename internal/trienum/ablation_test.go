package trienum

import (
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// TestAblationHighDegreeCorrectness: removing step 1 must not change the
// triangle set (the color triples cover everything); it only costs I/Os.
func TestAblationHighDegreeCorrectness(t *testing.T) {
	workloads := map[string]graph.EdgeList{
		"powerlaw": graph.PowerLaw(300, 1500, 2.0, 1),
		"star+k":   starPlusClique(),
		"clique":   graph.Clique(20),
	}
	for name, el := range workloads {
		oracle := graph.NewOracle(el)
		sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
		g := graph.CanonicalizeList(sp, el)
		var got []graph.Triple
		info := CacheAwareWithOptions(sp, g, 7, Options{DisableHighDegree: true}, func(a, b, c uint32) {
			got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
		})
		if ok, diag := oracle.SameSet(got); !ok {
			t.Errorf("%s: ablated algorithm wrong: %s", name, diag)
		}
		if info.HighDegVertices != 0 {
			t.Errorf("%s: step 1 ran despite ablation", name)
		}
	}
}

// TestAblationHighDegreeReducesX: on a heavy-tailed graph, step 1 must
// reduce the realized partition potential X_ξ (that is Lemma 3's point:
// the bound needs deg <= sqrt(E·M)).
func TestAblationHighDegreeReducesX(t *testing.T) {
	// Extremely skewed: two hubs adjacent to thousands of vertices on top
	// of a random background, so deg(hub) >> sqrt(E·M).
	el := graph.GNM(3000, 4000, 3)
	for v := uint32(0); v < 2500; v++ {
		el.Add(2998, v)
		el.Add(2999, v)
	}
	run := func(opt Options) Info {
		sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
		g := graph.CanonicalizeList(sp, el)
		var n uint64
		return CacheAwareWithOptions(sp, g, 5, opt, graph.Counter(&n))
	}
	with := run(Options{})
	without := run(Options{DisableHighDegree: true})
	if with.HighDegVertices == 0 {
		t.Skip("workload has no high-degree vertices at this M; ablation not meaningful")
	}
	if without.X <= with.X {
		t.Errorf("X without step 1 (%d) should exceed X with step 1 (%d) on a skewed graph", without.X, with.X)
	}
	t.Logf("X with step1=%d, without=%d (%.1fx), high-degree vertices=%d",
		with.X, without.X, float64(without.X)/float64(with.X), with.HighDegVertices)
}

// TestForceColorsOneIsHuTaoChung: c=1 without a high-degree step must
// measure like the baseline on the same machine.
func TestForceColorsOneIsHuTaoChung(t *testing.T) {
	el := graph.GNM(200, 2000, 9)
	measure := func(run func(sp *extmem.Space, g graph.Canonical) Info) (uint64, uint64) {
		sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
		g := graph.CanonicalizeList(sp, el)
		sp.DropCache()
		sp.ResetStats()
		info := run(sp, g)
		sp.Flush()
		return sp.Stats().IOs(), info.Triangles
	}
	var n uint64
	degenIOs, degenT := measure(func(sp *extmem.Space, g graph.Canonical) Info {
		return CacheAwareWithOptions(sp, g, 5, Options{DisableHighDegree: true, ForceColors: 1}, graph.Counter(&n))
	})
	huIOs, huT := measure(func(sp *extmem.Space, g graph.Canonical) Info {
		return HuTaoChung(sp, g, graph.Counter(&n))
	})
	if degenT != huT {
		t.Fatalf("counts differ: %d vs %d", degenT, huT)
	}
	// The degenerate path adds one extra sort of the edge list; allow 2x.
	if degenIOs > 2*huIOs+64 {
		t.Errorf("degenerate c=1 run used %d I/Os vs HuTaoChung %d; expected comparable", degenIOs, huIOs)
	}
}

func starPlusClique() graph.EdgeList {
	// A hub connected to everything, over a K12 plus satellites.
	el := graph.Clique(12)
	hub := uint32(100)
	for v := uint32(0); v < 60; v++ {
		el.Add(hub, v)
	}
	return el
}
