package trienum

import (
	"math"

	"repro/internal/emio"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
)

// CacheAware enumerates all triangles of g with the randomized cache-aware
// algorithm of Section 2, using O(E^1.5/(sqrt(M)·B)) I/Os in expectation:
//
//  1. Triangles with a high-degree vertex (deg > sqrt(E·M)) are found by
//     the Lemma 1 subroutine, one vertex at a time, removing each vertex's
//     edges afterwards. There are fewer than sqrt(E/M) such vertices.
//  2. A 4-wise independent coloring ξ: V → [c], c = ceil(sqrt(E/M)),
//     partitions the remaining edges into color-pair buckets E_{τ1,τ2}.
//  3. Each of the c³ color triples (τ1,τ2,τ3) is solved by the Lemma 2
//     kernel with pivot set E_{τ2,τ3} and edge set
//     E_{τ1,τ2} ∪ E_{τ1,τ3} ∪ E_{τ2,τ3}, keeping only triangles whose
//     cone vertex has color τ1.
//
// Triangles are emitted in rank space, exactly once each.
func CacheAware(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) Info {
	return CacheAwareWithOptions(sp, g, seed, Options{}, emit)
}

// Options exposes ablation knobs for experiments on the cache-aware
// algorithm's design choices. The zero value is the paper's algorithm.
type Options struct {
	// DisableHighDegree skips step 1 (Lemma 1 on vertices with degree
	// greater than sqrt(E·M)). The algorithm remains correct — the color
	// triples still cover every triangle — but Lemma 3's bound on X_ξ no
	// longer holds on skewed degree distributions, and the I/O cost of
	// step 3 degrades accordingly.
	DisableHighDegree bool
	// ForceColors overrides c = ceil(sqrt(E/M)) when positive. c = 1
	// degenerates to the Hu–Tao–Chung algorithm on the low-degree
	// subgraph.
	ForceColors int
}

// CacheAwareWithOptions is CacheAware with ablation knobs.
func CacheAwareWithOptions(sp *extmem.Space, g graph.Canonical, seed uint64, opt Options, emit graph.Emit) Info {
	var info Info
	emit = countingEmit(&info, emit)
	E := g.Edges.Len()
	if E == 0 {
		return info
	}
	cfg := sp.Config()
	mark := sp.Mark()
	defer sp.Release(mark)

	work := sp.Alloc(E)
	g.Edges.CopyTo(work)

	// Step 1: high-degree vertices. Ranks are assigned in degree order, so
	// V_h is a suffix of the rank range.
	curLen := E
	if !opt.DisableHighDegree {
		scratch := sp.Alloc(E)
		curLen = highDegreeStep(sp, work, scratch, g, float64(cfg.M), emsort.SortRecords, nil, emit, &info)
	}

	// Steps 2–3 on the low-degree remainder.
	c := ceilSqrt(float64(E) / float64(cfg.M))
	if opt.ForceColors > 0 {
		c = opt.ForceColors
	}
	info.Colors = c
	col := hashing.NewColoring(hashing.NewRand(seed), c)
	solveColored(sp, work.Prefix(curLen), col.Color, c, &info, emit)
	return info
}

// highDegreeStep enumerates and removes all triangles containing a vertex
// of degree greater than sqrt(E·M), per step 1 of the cache-aware
// algorithms. It returns the number of surviving edges (compacted to the
// prefix of work). filter, if non-nil, vetoes emissions. The sorter
// parameterizes Lemma 1's sorting.
func highDegreeStep(sp *extmem.Space, work, scratch extmem.Extent, g graph.Canonical, m float64, sorter graph.SortFunc, filter func(a, b, c uint32) bool, emit graph.Emit, info *Info) int64 {
	E := work.Len()
	v := g.NumVertices
	r0 := highDegreeCut(g, float64(E), m)
	curLen := E
	for r := v - 1; r >= r0; r-- {
		vr := uint32(r)
		enumerateContaining(sp, work.Prefix(curLen), vr, sorter, func(u, w uint32) {
			// All other high-degree vertices processed so far had their
			// edges removed, so u, w < vr and the sorted triple is (u,w,vr).
			if filter == nil || filter(u, w, vr) {
				emit(u, w, vr)
			}
		})
		curLen = removeIncident(work.Prefix(curLen), scratch, vr)
		info.HighDegVertices++
	}
	return curLen
}

// solveColored runs steps 2 and 3 shared by the cache-aware randomized and
// the deterministic algorithms: partition edges by the color pair of their
// endpoints under colorOf, then solve every color triple with the kernel.
// edges is clobbered (sorted by color pair). This is the sequential
// reference path; solveColoredParallel (parallel.go) dispatches the same
// triples to a worker pool.
func solveColored(sp *extmem.Space, edges extmem.Extent, colorOf func(uint32) uint32, c int, info *Info, emit graph.Emit) {
	E := edges.Len()
	if E == 0 {
		return
	}
	if c <= 1 {
		// Single subproblem: this is exactly the Hu–Tao–Chung algorithm
		// applied to the whole edge set.
		emsort.SortRecords(edges, 1, emsort.Identity)
		kernel(sp, edges, edges, 0, nil, emit)
		info.Subproblems++
		return
	}
	sortByColorPair(edges, colorOf, c)

	// Bucket offsets: c² + 1 native words of internal memory — within
	// budget under the paper's assumption c² = E/M <= M, i.e. M >= sqrt(E).
	release := sp.LeaseAtMost(c*c + 1)
	defer release()
	off := bucketOffsets(edges, colorOf, c, info)

	mark := sp.Mark()
	defer sp.Release(mark)
	union := sp.Alloc(E)

	forEachTriple(off, c, func(t1, t2, t3 int) {
		solveTriple(sp, edges, off, c, t1, t2, t3, colorOf, union, emit)
		info.Subproblems++
	})
}

// solveTriple solves one color triple (τ1,τ2,τ3): merge the triple's
// (distinct) buckets into scratch, preserving sort order, and run the
// kernel with pivot set E_{τ2,τ3}, keeping triangles whose cone vertex
// has color τ1. Both the sequential loop above and the parallel engine's
// tasks go through this body — sharing it is what keeps their emission
// streams identical.
func solveTriple(sp *extmem.Space, edges extmem.Extent, off []int64, c, t1, t2, t3 int, colorOf func(uint32) uint32, scratch extmem.Extent, emit graph.Emit) {
	b12 := bucketAt(edges, off, c, t2, t3)
	solveTripleRange(sp, edges, off, c, t1, t2, t3, 0, b12.Len(), 0, colorOf, scratch, emit)
}

// solveTripleRange is solveTriple restricted to the pivot rows
// [pivLo, pivHi) of E_{τ2,τ3}, with an explicit kernel chunk size. The
// kernel's pivot loop processes chunks of memEdges rows independently —
// each chunk is one full scan of the triple's edge union — so running the
// ranges [k·memEdges, (k+1)·memEdges) as separate invocations and
// concatenating their emissions reproduces solveTriple's stream exactly.
// That is the native mode's work-stealing grain: a skewed triple splits
// into per-chunk tasks the engine's dynamic dispatch balances across
// workers (parallel.go), at the price of re-merging the bucket union per
// chunk.
func solveTripleRange(sp *extmem.Space, edges extmem.Extent, off []int64, c, t1, t2, t3 int, pivLo, pivHi int64, memEdges int, colorOf func(uint32) uint32, scratch extmem.Extent, emit graph.Emit) {
	b01 := bucketAt(edges, off, c, t1, t2)
	b02 := bucketAt(edges, off, c, t1, t3)
	b12 := bucketAt(edges, off, c, t2, t3)
	parts := distinctExtents(b01, b02, b12)
	un := mergeSortedInto(scratch, parts)
	tau1 := uint32(t1)
	kernel(sp, un, b12.Slice(pivLo, pivHi), memEdges, func(v, _, _ uint32) bool {
		return colorOf(v) == tau1
	}, emit)
}

// highDegreeCut returns the lowest rank r0 whose degree exceeds the
// sqrt(E·M) threshold of step 1; ranks [r0, NumVertices) form the
// high-degree set V_h. Degrees are nondecreasing in rank, so the set is a
// suffix of the rank range, found by walking back from the top.
func highDegreeCut(g graph.Canonical, e, m float64) int {
	th := math.Sqrt(e * m)
	r0 := g.NumVertices
	for r0 > 0 && float64(g.Degrees.Read(int64(r0-1))) > th {
		r0--
	}
	return r0
}

// sortByColorPair sorts edges by the (colorOf(u), colorOf(v)) bucket key.
// The sorters tie-break equal keys by the full word, so each bucket comes
// out internally sorted in canonical edge order.
func sortByColorPair(edges extmem.Extent, colorOf func(uint32) uint32, c int) {
	emsort.SortRecords(edges, 1, colorPairKey(colorOf, c))
}

func colorPairKey(colorOf func(uint32) uint32, c int) emsort.Key {
	cc := uint64(c)
	return func(e extmem.Word) uint64 {
		return uint64(colorOf(graph.U(e)))*cc + uint64(colorOf(graph.V(e)))
	}
}

// bucketOffsets scans the color-sorted edges and returns the c²+1 bucket
// boundary offsets, accumulating the partition potential X_ξ (pairs of
// edges sharing a bucket, Lemma 3's random variable) into info.
func bucketOffsets(edges extmem.Extent, colorOf func(uint32) uint32, c int, info *Info) []int64 {
	pairKey := colorPairKey(colorOf, c)
	off := make([]int64, c*c+1)
	counts := make([]int64, c*c)
	emio.ForEach(edges, func(_ int64, e extmem.Word) {
		counts[pairKey(e)]++
	})
	var acc int64
	for i, n := range counts {
		off[i] = acc
		acc += n
		info.X += uint64(n) * uint64(n-1) / 2
	}
	off[c*c] = acc
	return off
}

// bucketAt returns the (t1,t2) bucket of the color-sorted edge extent.
func bucketAt(edges extmem.Extent, off []int64, c, t1, t2 int) extmem.Extent {
	i := t1*c + t2
	return edges.Slice(off[i], off[i+1])
}

// forEachTriple visits the color triples (τ1,τ2,τ3) in the canonical order
// both execution modes share, skipping triples whose buckets cannot
// contain a triangle. The order is part of the emission contract: the
// parallel engine replays completed triples in exactly this sequence.
func forEachTriple(off []int64, c int, fn func(t1, t2, t3 int)) {
	empty := func(t1, t2 int) bool {
		i := t1*c + t2
		return off[i+1] == off[i]
	}
	for t1 := 0; t1 < c; t1++ {
		for t2 := 0; t2 < c; t2++ {
			if empty(t1, t2) {
				continue // no {v1,v2} edges for this (τ1,τ2)
			}
			for t3 := 0; t3 < c; t3++ {
				if empty(t1, t3) || empty(t2, t3) {
					continue
				}
				fn(t1, t2, t3)
			}
		}
	}
}

// distinctExtents drops duplicate extents (same base), which arise when
// colors in a triple coincide and two bucket names alias one bucket.
func distinctExtents(exts ...extmem.Extent) []extmem.Extent {
	var out []extmem.Extent
	for _, e := range exts {
		dup := false
		for _, o := range out {
			if o.Base() == e.Base() {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

// mergeSortedInto k-way merges the sorted extents in parts into the prefix
// of dst and returns that prefix.
func mergeSortedInto(dst extmem.Extent, parts []extmem.Extent) extmem.Extent {
	if len(parts) == 1 {
		parts[0].CopyTo(dst.Prefix(parts[0].Len()))
		return dst.Prefix(parts[0].Len())
	}
	readers := make([]*emio.Reader, len(parts))
	heads := make([]extmem.Word, len(parts))
	alive := make([]bool, len(parts))
	for i, p := range parts {
		readers[i] = emio.NewReader(p)
		heads[i], alive[i] = readers[i].Next()
	}
	w := emio.NewWriter(dst)
	for {
		best := -1
		for i := range parts {
			if alive[i] && (best < 0 || heads[i] < heads[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		w.Append(heads[best])
		heads[best], alive[best] = readers[best].Next()
	}
	return w.Written()
}
