package trienum

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// TestParallelCtxCancellation: cancelling the exec context from inside
// emit stops both parallel engines early — the emitted prefix is shorter
// than the full stream — returns context.Canceled, and drains the worker
// pool without leaks. A subsequent run on the same Space reproduces the
// full stream, i.e. a cancelled run leaves no residue.
func TestParallelCtxCancellation(t *testing.T) {
	el := graph.Clique(60) // 34220 triangles: many merge batches in flight
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	sp := extmem.NewSpace(cfg)
	g := graph.CanonicalizeList(sp, el)

	var full uint64
	if _, _, err := CacheAwareParallel(sp, g, 5, Exec{Workers: 4}, graph.Counter(&full)); err != nil {
		t.Fatal(err)
	}

	engines := map[string]func(exec Exec, emit graph.Emit) error{
		"cacheaware": func(exec Exec, emit graph.Emit) error {
			_, _, err := CacheAwareParallel(sp, g, 5, exec, emit)
			return err
		},
		"deterministic": func(exec Exec, emit graph.Emit) error {
			_, _, err := DeterministicParallel(sp, g, 0, exec, emit)
			return err
		},
	}
	for name, run := range engines {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var seen uint64
		err := run(Exec{Workers: 4, Ctx: ctx}, func(_, _, _ uint32) {
			seen++
			if seen == 50 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancelled run returned %v, want context.Canceled", name, err)
		}
		if seen == 0 || seen >= full {
			t.Errorf("%s: cancelled run emitted %d of %d — not an early stop", name, seen, full)
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && runtime.NumGoroutine() > before+1 {
			time.Sleep(10 * time.Millisecond)
		}
		if ng := runtime.NumGoroutine(); ng > before+1 {
			t.Errorf("%s: goroutines leaked: %d before, %d after", name, before, ng)
		}

		// Pre-cancelled contexts never start the run.
		var n uint64
		if err := run(Exec{Workers: 2, Ctx: ctx}, graph.Counter(&n)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled run returned %v", name, err)
		}
		if n != 0 {
			t.Errorf("%s: pre-cancelled run emitted %d triangles", name, n)
		}

		// The Space is reusable after a cancelled run.
		var again uint64
		if _, _, err := CacheAwareParallel(sp, g, 5, Exec{Workers: 4}, graph.Counter(&again)); err != nil {
			t.Fatalf("%s: run after cancellation: %v", name, err)
		}
		if again != full {
			t.Errorf("%s: run after cancellation found %d triangles, want %d", name, again, full)
		}
	}
}
