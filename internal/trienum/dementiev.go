package trienum

import (
	"context"

	"repro/internal/ctxutil"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// dementievCheckEvery is the merge-pass cancellation granularity: the
// context is consulted once per this many candidate records, so a
// cancellation lands within O(1) emissions instead of after the pass.
const dementievCheckEvery = 1024

// DementievSortMerge enumerates all triangles of the edge segment seg with
// the sort-based node iterator from Dementiev's thesis, the base case of
// the cache-oblivious recursion: generate every wedge (pair of edges
// sharing their smaller endpoint), sort the wedges, and merge them against
// the edge list to find the closing edges. O(sort(E^1.5)) I/Os.
//
// seg is not modified (the subroutine sorts a copy). filter, if non-nil,
// vetoes emissions. sorter selects cache-aware or oblivious sorting.
func DementievSortMerge(sp *extmem.Space, seg extmem.Extent, sorter graph.SortFunc, filter func(a, b, c uint32) bool, emit graph.Emit) {
	_ = DementievSortMergeCtx(nil, sp, seg, sorter, filter, emit)
}

// DementievSortMergeCtx is DementievSortMerge with cooperative
// cancellation: ctx (which may be nil) is checked at the pass boundaries
// — after the edge sort, after wedge generation, after the wedge sort —
// and periodically inside the closing merge scan. On cancellation it
// returns ctx.Err(); the triangles emitted before it are a prefix of the
// full stream.
func DementievSortMergeCtx(ctx context.Context, sp *extmem.Space, seg extmem.Extent, sorter graph.SortFunc, filter func(a, b, c uint32) bool, emit graph.Emit) error {
	n := seg.Len()
	if n < 3 {
		return ctxutil.Err(ctx)
	}
	if err := ctxutil.Err(ctx); err != nil {
		return err
	}
	mark := sp.Mark()
	defer sp.Release(mark)

	edges := sp.Alloc(n)
	seg.CopyTo(edges)
	sorter(edges, 1, emsort.Identity)
	if err := ctxutil.Err(ctx); err != nil {
		return err
	}

	// Count wedges: for a vertex with forward degree d, C(d,2) candidate
	// pairs. In canonical (degree) order Σ C(d⁺,2) = O(E^1.5).
	var wedges int64
	forEachGroup(edges, func(lo, hi int64) {
		d := hi - lo
		wedges += d * (d - 1) / 2
	})
	if wedges == 0 {
		return nil
	}

	// Candidate records: (packed {u,w}, cone v), two words each.
	cand := sp.Alloc(2 * wedges)
	var out int64
	forEachGroup(edges, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			ei := edges.Read(i)
			v, u := graph.U(ei), graph.V(ei)
			for j := i + 1; j < hi; j++ {
				w := graph.V(edges.Read(j))
				cand.Write(out, graph.PackOrdered(u, w))
				cand.Write(out+1, extmem.Word(v))
				out += 2
			}
		}
	})
	if err := ctxutil.Err(ctx); err != nil {
		return err
	}
	sorter(cand, 2, emsort.Identity)
	if err := ctxutil.Err(ctx); err != nil {
		return err
	}

	// Merge candidates against the edge list; equal keys close triangles.
	var ei int64
	for ci := int64(0); ci < cand.Len(); ci += 2 {
		if ci%(2*dementievCheckEvery) == 0 {
			if err := ctxutil.Err(ctx); err != nil {
				return err
			}
		}
		key := cand.Read(ci)
		for ei < n && edges.Read(ei) < key {
			ei++
		}
		if ei < n && edges.Read(ei) == key {
			v := uint32(cand.Read(ci + 1))
			u, w := graph.U(key), graph.V(key)
			// v < u < w: u, w are forward neighbors of v.
			if filter == nil || filter(v, u, w) {
				emit(v, u, w)
			}
		}
	}
	return nil
}

// forEachGroup calls fn(lo, hi) for every maximal run of edges sharing
// their smaller endpoint in the sorted extent.
func forEachGroup(edges extmem.Extent, fn func(lo, hi int64)) {
	n := edges.Len()
	var lo int64
	for lo < n {
		v := graph.U(edges.Read(lo))
		hi := lo + 1
		for hi < n && graph.U(edges.Read(hi)) == v {
			hi++
		}
		fn(lo, hi)
		lo = hi
	}
}
