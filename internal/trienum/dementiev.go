package trienum

import (
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// DementievSortMerge enumerates all triangles of the edge segment seg with
// the sort-based node iterator from Dementiev's thesis, the base case of
// the cache-oblivious recursion: generate every wedge (pair of edges
// sharing their smaller endpoint), sort the wedges, and merge them against
// the edge list to find the closing edges. O(sort(E^1.5)) I/Os.
//
// seg is not modified (the subroutine sorts a copy). filter, if non-nil,
// vetoes emissions. sorter selects cache-aware or oblivious sorting.
func DementievSortMerge(sp *extmem.Space, seg extmem.Extent, sorter graph.SortFunc, filter func(a, b, c uint32) bool, emit graph.Emit) {
	n := seg.Len()
	if n < 3 {
		return
	}
	mark := sp.Mark()
	defer sp.Release(mark)

	edges := sp.Alloc(n)
	seg.CopyTo(edges)
	sorter(edges, 1, emsort.Identity)

	// Count wedges: for a vertex with forward degree d, C(d,2) candidate
	// pairs. In canonical (degree) order Σ C(d⁺,2) = O(E^1.5).
	var wedges int64
	forEachGroup(edges, func(lo, hi int64) {
		d := hi - lo
		wedges += d * (d - 1) / 2
	})
	if wedges == 0 {
		return
	}

	// Candidate records: (packed {u,w}, cone v), two words each.
	cand := sp.Alloc(2 * wedges)
	var out int64
	forEachGroup(edges, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			ei := edges.Read(i)
			v, u := graph.U(ei), graph.V(ei)
			for j := i + 1; j < hi; j++ {
				w := graph.V(edges.Read(j))
				cand.Write(out, graph.PackOrdered(u, w))
				cand.Write(out+1, extmem.Word(v))
				out += 2
			}
		}
	})
	sorter(cand, 2, emsort.Identity)

	// Merge candidates against the edge list; equal keys close triangles.
	var ei int64
	for ci := int64(0); ci < cand.Len(); ci += 2 {
		key := cand.Read(ci)
		for ei < n && edges.Read(ei) < key {
			ei++
		}
		if ei < n && edges.Read(ei) == key {
			v := uint32(cand.Read(ci + 1))
			u, w := graph.U(key), graph.V(key)
			// v < u < w: u, w are forward neighbors of v.
			if filter == nil || filter(v, u, w) {
				emit(v, u, w)
			}
		}
	}
}

// forEachGroup calls fn(lo, hi) for every maximal run of edges sharing
// their smaller endpoint in the sorted extent.
func forEachGroup(edges extmem.Extent, fn func(lo, hi int64)) {
	n := edges.Len()
	var lo int64
	for lo < n {
		v := graph.U(edges.Read(lo))
		hi := lo + 1
		for hi < n && graph.U(edges.Read(hi)) == v {
			hi++
		}
		fn(lo, hi)
		lo = hi
	}
}
