package trienum

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bias"
	"repro/internal/ctxutil"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// DefaultFamilySize is the number of small-bias candidate colorings the
// deterministic algorithm examines per greedy level when the caller does
// not specify one.
const DefaultFamilySize = 256

// Deterministic enumerates all triangles of g with the derandomized
// cache-aware algorithm of Section 4 in O(E^1.5/(sqrt(M)·B)) worst-case
// I/Os, assuming M >= E^ε.
//
// The coloring ξ: V → [c] (c the power of two at least sqrt(E/M)) is built
// one bit per level: at level i every candidate two-coloring b from an
// almost 4-wise independent small-bias family (package bias) is scored by
// the paper's potential
//
//	4^i·X^nonadj_ξi/c² + 2^i·X^adj_ξi/c,
//
// computed for all candidates in one scan of the edge list plus one scan
// of the endpoint-doubled list, and the minimizing b is kept. Invariant
// (4) — potential ≤ (1+α)^i·E·M with α = 1/log c — is verified at every
// level; since our enumerated family is a truncated prefix of the
// theoretical construction (see DESIGN.md §2), a violation returns an
// error instead of silently degrading. The final coloring satisfies
// X_ξ < e·E·M, which is what the Theorem 4 analysis needs.
//
// familySize <= 0 selects DefaultFamilySize.
func Deterministic(sp *extmem.Space, g graph.Canonical, familySize int, emit graph.Emit) (Info, error) {
	var info Info
	emit = countingEmit(&info, emit)
	E := g.Edges.Len()
	if E == 0 {
		return info, nil
	}
	cfg := sp.Config()
	mark := sp.Mark()
	defer sp.Release(mark)

	work := sp.Alloc(E)
	g.Edges.CopyTo(work)
	scratch := sp.Alloc(E)

	// Step 1 (shared with the randomized algorithm; it is deterministic).
	curLen := highDegreeStep(sp, work, scratch, g, float64(cfg.M), emsort.SortRecords, nil, emit, &info)
	edges := work.Prefix(curLen)

	colorOf, c, err := buildDeterministicColoring(nil, sp, g, edges, familySize, emsort.SortRecords, &info)
	if err != nil {
		return info, err
	}
	solveColored(sp, edges, colorOf, c, &info, emit)
	return info, nil
}

// buildDeterministicColoring runs the greedy derandomization of Section 4
// over the (low-degree) edge extent and returns the resulting coloring
// function and color count, recording the per-level potentials in info.
// It allocates scratch (the endpoint-doubled list) above the caller's
// mark and leaves it for the caller's release. sorter orders the
// endpoint-doubled list (the parallel engine passes the parallel emsort
// adapter; the sort key is injective, so every sorter produces the same
// bytes and the chosen coloring is sorter-independent). The returned
// function is pure and safe for concurrent use; the parallel engine
// hands it to worker shards unchanged.
// ctx (which may be nil) is checked between greedy levels so a cancelled
// run stops without scanning the remaining levels; cancellation inside
// the sorter itself is the caller's to detect (the parallel engine
// records it and checks after this function unwinds).
func buildDeterministicColoring(ctx context.Context, sp *extmem.Space, g graph.Canonical, edges extmem.Extent, familySize int, sorter graph.SortFunc, info *Info) (func(uint32) uint32, int, error) {
	E := g.Edges.Len()
	if familySize <= 0 {
		familySize = DefaultFamilySize
	}
	cfg := sp.Config()
	curLen := edges.Len()

	// Number of colors: the next power of two >= sqrt(E/M).
	c := 1
	for c < ceilSqrt(float64(E)/float64(cfg.M)) {
		c *= 2
	}
	info.Colors = c
	if c == 1 {
		return func(uint32) uint32 { return 0 }, 1, nil
	}
	logc := 0
	for 1<<logc < c {
		logc++
	}
	alpha := 1.0 / float64(logc)
	budget := float64(E) * float64(cfg.M)

	fam := bias.NewFamily(g.NumVertices, familySize)

	// The endpoint-doubled list (v<<32 | other), sorted by v, built once:
	// it drives the per-vertex adjacent-pair counting at every level.
	doubled := sp.Alloc(2 * curLen)
	for i := int64(0); i < curLen; i++ {
		e := edges.Read(i)
		u, v := graph.U(e), graph.V(e)
		doubled.Write(2*i, extmem.Word(u)<<32|extmem.Word(v))
		doubled.Write(2*i+1, extmem.Word(v)<<32|extmem.Word(u))
	}
	sorter(doubled, 1, emsort.Identity)

	// Greedy bit selection. The per-candidate counter tables below are
	// derandomization bookkeeping that Theorem 2 assumes fits in internal
	// memory (M >= E^ε and "a constant number of variables for each
	// function"); they are not leased against the simulated M, which in
	// our experiments is deliberately tiny.
	var chosen []uint64
	prefixColor := func(v uint32) uint32 {
		var x uint32
		cw := fam.CodeWord(v)
		for _, s := range chosen {
			x = x<<1 | uint32(bias.EvalSeed(s, cw))
		}
		return x
	}
	t := fam.Size()
	for i := 1; i <= logc; i++ {
		if err := ctxutil.Err(ctx); err != nil {
			return nil, c, err
		}
		ci := 1 << i
		xTotal := make([]float64, t)
		xAdj := make([]float64, t)
		cnt := make([][]uint32, t)
		for j := range cnt {
			cnt[j] = make([]uint32, ci*ci)
		}
		// Pass 1: same-class pair counts (all pairs), incrementally:
		// inserting into a class with n members adds n pairs.
		for k := int64(0); k < curLen; k++ {
			e := edges.Read(k)
			u, v := graph.U(e), graph.V(e)
			pu, pv := prefixColor(u), prefixColor(v)
			base := (int(pu)<<1)*ci + int(pv)<<1
			cu, cv := fam.CodeWord(u), fam.CodeWord(v)
			for j := 0; j < t; j++ {
				s := fam.Seed(j)
				idx := base + int(bias.EvalSeed(s, cu))*ci + int(bias.EvalSeed(s, cv))
				xTotal[j] += float64(cnt[j][idx])
				cnt[j][idx]++
			}
		}
		// Pass 2: adjacent same-class pairs, per shared vertex.
		for j := range cnt {
			clear(cnt[j])
		}
		var touched [][]int32
		touched = make([][]int32, t)
		var runStart int64
		for runStart < 2*curLen {
			v := uint32(doubled.Read(runStart) >> 32)
			runEnd := runStart
			for runEnd < 2*curLen && uint32(doubled.Read(runEnd)>>32) == v {
				runEnd++
			}
			pv := prefixColor(v)
			cv := fam.CodeWord(v)
			for k := runStart; k < runEnd; k++ {
				other := uint32(doubled.Read(k))
				po := prefixColor(other)
				co := fam.CodeWord(other)
				// Class of edge {v, other} orders endpoints by rank.
				for j := 0; j < t; j++ {
					s := fam.Seed(j)
					xv := int(pv)<<1 | int(bias.EvalSeed(s, cv))
					xo := int(po)<<1 | int(bias.EvalSeed(s, co))
					var idx int
					if v < other {
						idx = xv*ci + xo
					} else {
						idx = xo*ci + xv
					}
					xAdj[j] += float64(cnt[j][idx])
					cnt[j][idx]++
					touched[j] = append(touched[j], int32(idx))
				}
			}
			for j := 0; j < t; j++ {
				for _, idx := range touched[j] {
					cnt[j][idx] = 0
				}
				touched[j] = touched[j][:0]
			}
			runStart = runEnd
		}
		// Score candidates by the paper's potential and pick the best.
		pow4i := math.Pow(4, float64(i))
		pow2i := math.Pow(2, float64(i))
		cf := float64(c)
		best, bestPot := -1, math.Inf(1)
		for j := 0; j < t; j++ {
			nonadj := xTotal[j] - xAdj[j]
			pot := pow4i*nonadj/(cf*cf) + pow2i*xAdj[j]/cf
			if pot < bestPot {
				best, bestPot = j, pot
			}
		}
		levelBudget := math.Pow(1+alpha, float64(i)) * budget
		info.Levels = append(info.Levels, LevelInfo{Candidate: best, Potential: bestPot, Budget: levelBudget})
		if bestPot > levelBudget {
			return nil, c, fmt.Errorf("trienum: derandomization invariant (4) violated at level %d: potential %.0f > budget %.0f (family size %d too small)", i, bestPot, levelBudget, t)
		}
		chosen = append(chosen, fam.Seed(best))
	}

	return prefixColor, c, nil
}
