package trienum

import (
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// TestExhaustiveTinyGraphs runs every algorithm on every labeled graph
// with up to five vertices (2^10 = 1024 graphs) against brute force.
// Exhaustive coverage of this range pins down all corner cases of the
// recursion, the coloring, and the high-degree handling at once.
func TestExhaustiveTinyGraphs(t *testing.T) {
	const n = 5
	var pairs [][2]uint32
	for a := uint32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, [2]uint32{a, b})
		}
	}
	numGraphs := 1 << len(pairs) // 1024
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}

	for mask := 0; mask < numGraphs; mask++ {
		var el graph.EdgeList
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				el.Add(p[0], p[1])
			}
		}
		// Brute-force count.
		var want uint64
		adj := map[uint64]bool{}
		for _, e := range el.Edges {
			adj[e] = true
		}
		for a := uint32(0); a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !adj[graph.Pack(a, b)] {
					continue
				}
				for c := b + 1; c < n; c++ {
					if adj[graph.Pack(a, c)] && adj[graph.Pack(b, c)] {
						want++
					}
				}
			}
		}
		for _, alg := range algorithms {
			sp := extmem.NewSpace(cfg)
			g := graph.CanonicalizeList(sp, el)
			var got uint64
			seen := map[graph.Triple]bool{}
			dup := false
			alg.run(sp, g, func(a, b, c uint32) {
				got++
				tr := graph.Triple{V1: a, V2: b, V3: c}
				if seen[tr] {
					dup = true
				}
				seen[tr] = true
			})
			if got != want || dup {
				t.Fatalf("graph mask %#x (%d edges), %s: got %d triangles (dup=%v), want %d",
					mask, len(el.Edges), alg.name, got, dup, want)
			}
		}
	}
}
