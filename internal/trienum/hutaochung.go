package trienum

import (
	"context"

	"repro/internal/ctxutil"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// HuTaoChung enumerates all triangles with the algorithm of Hu, Tao and
// Chung (SIGMOD 2013), the strongest previously published baseline: the
// Lemma 2 kernel applied with pivot set E' = E, using O(E/B + E²/(M·B))
// I/Os — exactly E/M scans of the edge set. The paper's contribution is
// beating this by the factor min(sqrt(E/M), sqrt(M)).
func HuTaoChung(sp *extmem.Space, g graph.Canonical, emit graph.Emit) Info {
	info, _ := HuTaoChungCtx(nil, sp, g, emit)
	return info
}

// HuTaoChungCtx is HuTaoChung with cooperative cancellation: ctx (which
// may be nil) is checked between the kernel's pivot chunks — the
// algorithm's pass boundaries. On cancellation it returns ctx.Err(); the
// triangles emitted before it are a prefix of the full stream.
func HuTaoChungCtx(ctx context.Context, sp *extmem.Space, g graph.Canonical, emit graph.Emit) (Info, error) {
	var info Info
	emit = countingEmit(&info, emit)
	if g.Edges.Len() == 0 {
		return info, ctxutil.Err(ctx)
	}
	err := kernelCtx(ctx, sp, g.Edges, g.Edges, 0, nil, emit)
	info.Subproblems = 1
	return info, err
}

// Dementiev enumerates all triangles with the sort-based algorithm from
// Dementiev's thesis: O(sort(E^1.5)) I/Os, no dependence on M beyond
// sorting. One of the pre-2013 baselines in Section 1.1.
func Dementiev(sp *extmem.Space, g graph.Canonical, emit graph.Emit) Info {
	info, _ := DementievCtx(nil, sp, g, emit)
	return info
}

// DementievCtx is Dementiev with cooperative cancellation at the sort-
// merge pass boundaries (see DementievSortMergeCtx).
func DementievCtx(ctx context.Context, sp *extmem.Space, g graph.Canonical, emit graph.Emit) (Info, error) {
	var info Info
	emit = countingEmit(&info, emit)
	if g.Edges.Len() == 0 {
		return info, ctxutil.Err(ctx)
	}
	err := DementievSortMergeCtx(ctx, sp, g.Edges, sortRecordsFunc, nil, emit)
	return info, err
}
