package trienum

import (
	"context"

	"repro/internal/ctxutil"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// kernel implements Lemma 2 (Hu, Tao and Chung, SIGMOD 2013, step 2 of
// Algorithm 1): enumerate every triangle {v, u, w} with v < u < w whose
// pivot edge {u, w} lies in pivots and whose cone edges {v, u}, {v, w} lie
// in edges. I/O complexity O(E/B + E'·E/(M·B)) where E' = |pivots|.
//
// edges must be sorted canonically (so each cone vertex's forward
// adjacency list is consecutive). pivots need not be sorted. memEdges
// caps how many pivot edges are loaded per iteration; pass 0 to size it
// automatically from the Space's configured memory.
//
// filter, if non-nil, can veto an emission (used by the color-coded
// algorithms to keep each triangle in exactly one subproblem).
//
// The kernel touches no state outside sp, so concurrent invocations on
// distinct Spaces (the worker shards of parallel.go) are safe; filter and
// emit must then be confined or pure.
func kernel(sp *extmem.Space, edges, pivots extmem.Extent, memEdges int, filter func(v, u, w uint32) bool, emit graph.Emit) {
	_ = kernelCtx(nil, sp, edges, pivots, memEdges, filter, emit)
}

// kernelCtx is kernel with cooperative cancellation between pivot chunks
// — each chunk is one full scan of the edge set, the algorithm's natural
// pass boundary. A nil ctx never cancels.
func kernelCtx(ctx context.Context, sp *extmem.Space, edges, pivots extmem.Extent, memEdges int, filter func(v, u, w uint32) bool, emit graph.Emit) error {
	nPivots := pivots.Len()
	if nPivots == 0 || edges.Len() == 0 {
		return ctxutil.Err(ctx)
	}
	if memEdges <= 0 {
		// The constant α of the paper: pivot chunks of αM edges. The
		// native chunk state (pivot set, Γ_mem set, per-vertex list) costs
		// about six words per pivot edge, leased below.
		memEdges = (sp.Config().M - sp.Leased()) / 8
		if memEdges < 16 {
			memEdges = 16
		}
	}

	for lo := int64(0); lo < nPivots; lo += int64(memEdges) {
		if err := ctxutil.Err(ctx); err != nil {
			return err
		}
		hi := lo + int64(memEdges)
		if hi > nPivots {
			hi = nPivots
		}
		kernelChunk(sp, edges, pivots.Slice(lo, hi), filter, emit)
	}
	return nil
}

// kernelChunk processes one memory-resident chunk of pivot edges against a
// full scan of the edge set.
func kernelChunk(sp *extmem.Space, edges, chunk extmem.Extent, filter func(v, u, w uint32) bool, emit graph.Emit) {
	release := sp.LeaseAtMost(int(chunk.Len()) * 6)
	defer release()

	// Load the chunk: the pivot set and Γ_mem, the vertices it touches.
	pivotList := make([]extmem.Word, chunk.Len())
	chunk.Load(pivotList)
	pivotSet := make(map[extmem.Word]struct{}, len(pivotList))
	gammaMem := make(map[uint32]struct{}, 2*len(pivotList))
	for _, e := range pivotList {
		pivotSet[e] = struct{}{}
		gammaMem[graph.U(e)] = struct{}{}
		gammaMem[graph.V(e)] = struct{}{}
	}

	// Scan the edge set grouped by cone vertex v; for each group compute
	// Γ_v = {u : (v,u) ∈ edges, u ∈ Γ_mem} and enumerate pivot edges with
	// both endpoints in Γ_v. Within a group we choose the cheaper of the
	// two enumeration orders: all pairs of Γ_v (|Γ_v|² work) or all chunk
	// pivots (|chunk| work).
	var (
		curV   uint32
		lv     []uint32 // Γ_v in ascending order (edges are sorted)
		lvSet  = make(map[uint32]struct{})
		inited bool
	)
	flush := func() {
		if len(lv) < 2 {
			return
		}
		if int64(len(lv))*int64(len(lv)) <= int64(len(pivotList)) {
			for i := 0; i < len(lv); i++ {
				for j := i + 1; j < len(lv); j++ {
					u, w := lv[i], lv[j]
					if _, hit := pivotSet[graph.PackOrdered(u, w)]; hit {
						if filter == nil || filter(curV, u, w) {
							emit(curV, u, w)
						}
					}
				}
			}
			return
		}
		for _, e := range pivotList {
			u, w := graph.U(e), graph.V(e)
			if _, ok := lvSet[u]; !ok {
				continue
			}
			if _, ok := lvSet[w]; !ok {
				continue
			}
			if filter == nil || filter(curV, u, w) {
				emit(curV, u, w)
			}
		}
	}
	n := edges.Len()
	for i := int64(0); i < n; i++ {
		e := edges.Read(i)
		v, u := graph.U(e), graph.V(e)
		if !inited || v != curV {
			flush()
			curV = v
			inited = true
			lv = lv[:0]
			clear(lvSet)
		}
		if _, ok := gammaMem[u]; ok {
			lv = append(lv, u)
			lvSet[u] = struct{}{}
		}
	}
	flush()
}
