package trienum

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// The paper distinguishes triangle *enumeration* (each triangle is handed
// to emit while its edges are memory-resident; nothing is materialized)
// from triangle *listing* (triangles are written to external memory).
// Listing costs an extra Θ(t/B) I/Os for t triangles — significant on
// triangle-dense graphs, where t = Θ(E^1.5) makes the output itself as
// expensive as the enumeration. ListTriangles materializes the output so
// that the experiments can measure exactly this gap, and
// VerifyEnumeration is an external-memory checker for the enumeration
// contract over a materialized list.

// TripleWords is the storage stride of a materialized triangle.
const TripleWords = 2

// packTriple stores a triangle in two words: (v1, v2) and v3.
func packTriple(a, b, c uint32) (extmem.Word, extmem.Word) {
	return extmem.Word(a)<<32 | extmem.Word(b), extmem.Word(c)
}

func unpackTriple(w0, w1 extmem.Word) (a, b, c uint32) {
	return uint32(w0 >> 32), uint32(w0), uint32(w1)
}

// Lister runs an enumeration algorithm, materializing its output.
type Lister func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) Info

// ParallelLister adapts the worker-pool cache-aware engine to the Lister
// signature, so listing experiments can exercise the parallel path. The
// engine's emission stream is deterministic in the seed and the graph, so
// the two passes of ListTriangles agree as required. The workers' I/Os
// are absorbed into sp, keeping sp.Stats() the full cost of the run.
func ParallelLister(exec Exec) Lister {
	return func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) Info {
		// Listers have no error channel; the adapter is only used without a
		// cancellable exec context, so the engine cannot return an error.
		info, workerStats, err := CacheAwareParallel(sp, g, seed, exec, emit)
		if err != nil {
			panic(fmt.Sprintf("trienum: ParallelLister run cancelled: %v", err))
		}
		for _, w := range workerStats {
			sp.Absorb(w)
		}
		return info
	}
}

// ListTriangles enumerates with run and writes every triangle to a fresh
// extent of TripleWords-stride records, returning the extent and the
// enumeration info (of the writing pass). The write cost Θ(t/B) is
// charged like any other I/O.
//
// The output size is unknown in advance, and the space allocator follows
// stack discipline, so the output extent must exist before the algorithm
// establishes its allocation mark. ListTriangles therefore runs twice
// with the same seed: a counting pass sizes the output, a second pass
// fills it. (A production system would stream the output instead; the
// second pass keeps the I/O accounting of a single enumeration clean.)
func ListTriangles(sp *extmem.Space, g graph.Canonical, seed uint64, run Lister) (extmem.Extent, Info) {
	var t int64
	run(sp, g, seed, func(_, _, _ uint32) { t++ })
	out := sp.Alloc(t * TripleWords)
	w := emio.NewWriter(out)
	info := run(sp, g, seed, func(a, b, c uint32) {
		w0, w1 := packTriple(a, b, c)
		w.Append(w0)
		w.Append(w1)
	})
	return w.Written(), info
}

// VerifyEnumeration checks a materialized triangle list against the
// enumeration contract using sorting and merge scans (O(sort(t) + sort(E))
// I/Os):
//
//   - every record is strictly ordered (v1 < v2 < v3),
//   - no triangle appears twice,
//   - all three edges of every triangle exist in the canonical edge set.
//
// It does not check completeness (that every triangle was found); tests
// establish completeness against the in-memory oracle.
func VerifyEnumeration(sp *extmem.Space, g graph.Canonical, list extmem.Extent) error {
	n := list.Len()
	if n%TripleWords != 0 {
		return fmt.Errorf("trienum: list length %d not a multiple of the record stride", n)
	}
	t := n / TripleWords
	if t == 0 {
		return nil
	}
	mark := sp.Mark()
	defer sp.Release(mark)

	// Ordering check + duplicate check via a sorted copy.
	sorted := sp.Alloc(n)
	list.CopyTo(sorted)
	for i := int64(0); i < t; i++ {
		a, b, c := unpackTriple(sorted.Read(TripleWords*i), sorted.Read(TripleWords*i+1))
		if !(a < b && b < c) {
			return fmt.Errorf("trienum: record %d = {%d,%d,%d} is not strictly increasing", i, a, b, c)
		}
	}
	// The record sorters order by the first word only; records sharing a
	// (v1,v2) prefix need a secondary sort of their third vertices before
	// adjacent-duplicate detection.
	emsort.SortRecords(sorted, TripleWords, emsort.Identity)
	sortRunsByThird(sp, sorted, t)
	for i := int64(1); i < t; i++ {
		if sorted.Read(TripleWords*i) == sorted.Read(TripleWords*(i-1)) &&
			sorted.Read(TripleWords*i+1) == sorted.Read(TripleWords*(i-1)+1) {
			a, b, c := unpackTriple(sorted.Read(TripleWords*i), sorted.Read(TripleWords*i+1))
			return fmt.Errorf("trienum: triangle {%d,%d,%d} emitted more than once", a, b, c)
		}
	}

	// Edge-existence: check each of the three edges by building the edge
	// key list of the triangles, sorting, and merging against the edges.
	for leg := 0; leg < 3; leg++ {
		keys := sp.Alloc(t)
		for i := int64(0); i < t; i++ {
			a, b, c := unpackTriple(sorted.Read(TripleWords*i), sorted.Read(TripleWords*i+1))
			var k extmem.Word
			switch leg {
			case 0:
				k = graph.PackOrdered(a, b)
			case 1:
				k = graph.PackOrdered(a, c)
			case 2:
				k = graph.PackOrdered(b, c)
			}
			keys.Write(i, k)
		}
		emsort.Sort(keys, emsort.Identity)
		var ei int64
		edges := g.Edges
		for i := int64(0); i < t; i++ {
			k := keys.Read(i)
			for ei < edges.Len() && edges.Read(ei) < k {
				ei++
			}
			if ei >= edges.Len() || edges.Read(ei) != k {
				return fmt.Errorf("trienum: leg %d of some triangle uses nonexistent edge {%d,%d}",
					leg, graph.U(k), graph.V(k))
			}
		}
	}
	return nil
}

// sortRunsByThird sorts, within every run of records sharing their first
// word (the packed (v1,v2) pair), the records by their second word.
func sortRunsByThird(sp *extmem.Space, sorted extmem.Extent, t int64) {
	var lo int64
	for lo < t {
		w0 := sorted.Read(TripleWords * lo)
		hi := lo + 1
		for hi < t && sorted.Read(TripleWords*hi) == w0 {
			hi++
		}
		if hi-lo > 1 {
			mark := sp.Mark()
			thirds := sp.Alloc(hi - lo)
			for i := lo; i < hi; i++ {
				thirds.Write(i-lo, sorted.Read(TripleWords*i+1))
			}
			emsort.Sort(thirds, emsort.Identity)
			for i := lo; i < hi; i++ {
				sorted.Write(TripleWords*i+1, thirds.Read(i-lo))
			}
			sp.Release(mark)
		}
		lo = hi
	}
}

// ReadTriple returns record i of a materialized list.
func ReadTriple(list extmem.Extent, i int64) (a, b, c uint32) {
	return unpackTriple(list.Read(TripleWords*i), list.Read(TripleWords*i+1))
}

// ListLen returns the number of triangles in a materialized list.
func ListLen(list extmem.Extent) int64 { return list.Len() / TripleWords }
