package trienum

import (
	"strings"
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

func listWith(t *testing.T, el graph.EdgeList, run Lister) (*extmem.Space, graph.Canonical, extmem.Extent) {
	t.Helper()
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	list, _ := ListTriangles(sp, g, 3, run)
	return sp, g, list
}

func cacheAwareLister(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) Info {
	return CacheAware(sp, g, seed, emit)
}

func TestListTrianglesMatchesOracle(t *testing.T) {
	el := graph.PlantedClique(80, 300, 10, 4)
	oracle := graph.NewOracle(el)
	sp, g, list := listWith(t, el, cacheAwareLister)
	if uint64(ListLen(list)) != oracle.Count() {
		t.Fatalf("listed %d, oracle %d", ListLen(list), oracle.Count())
	}
	var got []graph.Triple
	for i := int64(0); i < ListLen(list); i++ {
		a, b, c := ReadTriple(list, i)
		got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
	}
	if ok, diag := oracle.SameSet(got); !ok {
		t.Errorf("listed set wrong: %s", diag)
	}
	if err := VerifyEnumeration(sp, g, list); err != nil {
		t.Errorf("verification failed on a correct list: %v", err)
	}
}

func TestListTrianglesObliviousLister(t *testing.T) {
	el := graph.GNM(60, 350, 8)
	sp, g, list := listWith(t, el, func(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) Info {
		return Oblivious(sp, g, seed, emit)
	})
	if uint64(ListLen(list)) != graph.NewOracle(el).Count() {
		t.Fatal("oblivious listing count mismatch")
	}
	if err := VerifyEnumeration(sp, g, list); err != nil {
		t.Error(err)
	}
}

func TestVerifyEnumerationCatchesDuplicates(t *testing.T) {
	el := graph.Clique(6)
	sp, g, list := listWith(t, el, cacheAwareLister)
	// Duplicate the first record into a fresh extent.
	bad := sp.Alloc(list.Len() + TripleWords)
	list.CopyTo(bad)
	bad.Write(list.Len(), list.Read(0))
	bad.Write(list.Len()+1, list.Read(1))
	err := VerifyEnumeration(sp, g, bad)
	if err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Errorf("duplicate not caught: %v", err)
	}
}

func TestVerifyEnumerationCatchesPhantomEdge(t *testing.T) {
	// A triangle over vertices that are not mutually adjacent.
	el := graph.Grid(4, 4) // triangle-free
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	fake := sp.Alloc(TripleWords)
	w0, w1 := packTriple(0, 1, 2)
	fake.Write(0, w0)
	fake.Write(1, w1)
	err := VerifyEnumeration(sp, g, fake)
	if err == nil || !strings.Contains(err.Error(), "nonexistent edge") {
		t.Errorf("phantom triangle not caught: %v", err)
	}
}

func TestVerifyEnumerationCatchesUnsorted(t *testing.T) {
	el := graph.Clique(4)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	bad := sp.Alloc(TripleWords)
	w0, w1 := packTriple(2, 1, 3) // not increasing
	bad.Write(0, w0)
	bad.Write(1, w1)
	err := VerifyEnumeration(sp, g, bad)
	if err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Errorf("unsorted record not caught: %v", err)
	}
}

func TestVerifyEnumerationEdgeCases(t *testing.T) {
	el := graph.Clique(5)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	if err := VerifyEnumeration(sp, g, sp.Alloc(0)); err != nil {
		t.Errorf("empty list should verify: %v", err)
	}
	if err := VerifyEnumeration(sp, g, sp.Alloc(3)); err == nil {
		t.Error("odd-length list should be rejected")
	}
}

func TestListingCostsOutputTraffic(t *testing.T) {
	// On a clique the materialization cost must be visible: listing I/Os
	// must exceed twice the enumeration I/Os (two passes) by roughly the
	// output traffic.
	el := graph.Clique(64)
	m := extmem.Config{M: 1 << 11, B: 1 << 5}

	sp := extmem.NewSpace(m)
	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()
	var n uint64
	CacheAware(sp, g, 3, graph.Counter(&n))
	sp.Flush()
	enumIOs := sp.Stats().IOs()

	sp2 := extmem.NewSpace(m)
	g2 := graph.CanonicalizeList(sp2, el)
	sp2.DropCache()
	sp2.ResetStats()
	list, _ := ListTriangles(sp2, g2, 3, cacheAwareLister)
	sp2.Flush()
	listIOs := sp2.Stats().IOs()

	outBlocks := uint64(list.Len()) / uint64(m.B)
	if listIOs < 2*enumIOs+outBlocks/2 {
		t.Errorf("listing %d I/Os does not reflect output traffic (enum %d, output %d blocks)",
			listIOs, enumIOs, outBlocks)
	}
}

func TestRecursionInstrumentation(t *testing.T) {
	el := graph.GNM(300, 2400, 5)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
	g := graph.CanonicalizeList(sp, el)
	var n uint64
	info := Oblivious(sp, g, 1, graph.Counter(&n))
	if len(info.Recursion) == 0 {
		t.Fatal("no recursion levels recorded")
	}
	if info.Recursion[0].Subproblems != 1 || info.Recursion[0].TotalEdges != g.Edges.Len() {
		t.Errorf("level 0 = %+v, want 1 subproblem of %d edges", info.Recursion[0], g.Edges.Len())
	}
	for i, lv := range info.Recursion {
		if lv.MaxEdges > lv.TotalEdges || (lv.Subproblems > 0 && lv.TotalEdges == 0 && i > 0) {
			t.Errorf("level %d inconsistent: %+v", i, lv)
		}
	}
	// Subproblem count grows at most 8x per level.
	for i := 1; i < len(info.Recursion); i++ {
		if info.Recursion[i].Subproblems > 8*info.Recursion[i-1].Subproblems {
			t.Errorf("level %d has %d subproblems, parent level only %d",
				i, info.Recursion[i].Subproblems, info.Recursion[i-1].Subproblems)
		}
	}
}
