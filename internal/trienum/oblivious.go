package trienum

import (
	"context"

	"repro/internal/ctxutil"
	"repro/internal/emio"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
)

// obliviousBaseCutoff stops the recursion once a subproblem has at most
// this many edges. The paper recurses to depth log4(E) regardless of
// subproblem size; cutting off at a constant size is an engineering
// constant-factor change (the base case on O(1) edges costs O(1) I/Os,
// no more than one further recursion step) that removes an enormous number
// of near-empty recursion nodes. Correctness is unaffected: at every
// level each triangle is alive in exactly one subproblem, so emitting it
// at an internal node is as safe as at depth log4(E).
const obliviousBaseCutoff = 24

// Oblivious enumerates all triangles of g with the cache-oblivious
// randomized algorithm of Section 3, using O(E^1.5/(sqrt(M)·B)) expected
// I/Os and O(E) words of disk without ever consulting M or B.
//
// It solves the (1,1,1)-enumeration problem under the constant coloring by
// recursion: each node removes local high-degree vertices (degree >= E/8)
// via Lemma 1, refines the coloring with a fresh 4-wise independent random
// bit per vertex, and recurses into the eight color-vector subproblems,
// each repartitioned in place so that total disk stays O(E). Leaves are
// solved with Dementiev's sort-merge algorithm.
func Oblivious(sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) Info {
	info, _ := ObliviousCtx(nil, sp, g, seed, emit)
	return info
}

// ObliviousCtx is Oblivious with cooperative cancellation: ctx (which may
// be nil) is checked at every recursion node, between the per-vertex
// Lemma 1 passes inside a node, and inside the Dementiev base cases. On
// cancellation the run unwinds and returns ctx.Err(); the triangles
// emitted before it are a prefix of the full stream.
func ObliviousCtx(ctx context.Context, sp *extmem.Space, g graph.Canonical, seed uint64, emit graph.Emit) (Info, error) {
	var info Info
	emit = countingEmit(&info, emit)
	E := g.Edges.Len()
	if E == 0 {
		return info, ctxutil.Err(ctx)
	}
	if err := ctxutil.Err(ctx); err != nil {
		return info, err
	}
	mark := sp.Mark()
	defer sp.Release(mark)

	o := &oblivious{
		sp:   sp,
		ctx:  ctx,
		emit: emit,
		info: &info,
	}
	o.work = sp.Alloc(E)
	g.Edges.CopyTo(o.work)
	o.ann = sp.Alloc(E)
	o.ann.Fill(1<<32 | 1) // root coloring ξ0 ≡ 1 on both endpoints
	o.scratchE = sp.Alloc(E)
	o.scratchA = sp.Alloc(E)
	// Recursion depth log4(E), the paper's bound.
	for d := int64(1); d < E; d *= 4 {
		o.maxDepth++
	}
	err := o.recurse(0, E, [3]uint32{1, 1, 1}, 0, hashing.NewRand(seed))
	return info, err
}

// oblivious carries the recursion state. work holds the edges; ann holds,
// parallel to work, the packed current-level colors (ξ(u)<<32 | ξ(v)) of
// each edge's endpoints, maintained incrementally so compatibility tests
// do not re-evaluate the whole hash chain. All operations on a segment are
// permutations of it, so a parent's edge multiset survives its children.
//
// Randomness is path-split: each recursion node owns a private Rand,
// drawing its level's Poly4 from it and deriving the eight children's
// Rands with Split(bits). A node's random choices — and hence its entire
// subtree's emission stream — are therefore a pure function of (segment
// edge set, color vector, depth, chain, node Rand), independent of
// whatever its siblings do. That is what lets the parallel planner
// (oblivious_parallel.go) hand subtrees to workers and reproduce the
// sequential stream exactly.
type oblivious struct {
	sp       *extmem.Space
	ctx      context.Context
	emit     graph.Emit
	info     *Info
	work     extmem.Extent
	ann      extmem.Extent
	scratchE extmem.Extent
	scratchA extmem.Extent
	chain    []hashing.Poly4
	maxDepth int
}

// colorOf evaluates the current coloring ξ_i(v) = 2ξ_{i-1}(v) − b_i(v)
// from the chain of per-level bit functions.
func (o *oblivious) colorOf(v uint32, depth int) uint32 {
	xi := uint32(1)
	for i := 0; i < depth; i++ {
		xi = 2*xi - uint32(o.chain[i].Bit(uint64(v)))
	}
	return xi
}

// properEmit returns the filtered emitter for triangles that must satisfy
// the (c0,c1,c2) coloring at the given depth.
func (o *oblivious) properEmit(col [3]uint32, depth int) func(a, b, c uint32) {
	return func(a, b, c uint32) {
		if o.colorOf(a, depth) == col[0] && o.colorOf(b, depth) == col[1] && o.colorOf(c, depth) == col[2] {
			o.emit(a, b, c)
		}
	}
}

func (o *oblivious) recurse(lo, hi int64, col [3]uint32, depth int, rnd *hashing.Rand) error {
	n := hi - lo
	if n == 0 {
		return nil
	}
	// The recursion node is the cancellation boundary of the
	// cache-oblivious algorithm: cheap, and frequent enough that a
	// cancelled run stops within one node's work.
	if err := ctxutil.Err(o.ctx); err != nil {
		return err
	}
	o.info.Subproblems++
	for len(o.info.Recursion) <= depth {
		o.info.Recursion = append(o.info.Recursion, RecursionLevel{Level: len(o.info.Recursion)})
	}
	lv := &o.info.Recursion[depth]
	lv.Subproblems++
	lv.TotalEdges += n
	if n > lv.MaxEdges {
		lv.MaxEdges = n
	}
	seg := o.work.Slice(lo, hi)

	if depth >= o.maxDepth || n <= obliviousBaseCutoff {
		o.info.BaseCases++
		properEmit := o.properEmit(col, depth)
		return DementievSortMergeCtx(o.ctx, o.sp, seg, emsort.FunnelSortRecords, nil, func(a, b, c uint32) {
			properEmit(a, b, c)
		})
	}

	// Step 1: local high-degree vertices (degree >= n/8; at most 16).
	n, err := o.localHighDegree(lo, hi, col, depth)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	seg = o.work.Slice(lo, lo+n)
	annSeg := o.ann.Slice(lo, lo+n)

	// Step 2: refine the coloring with a fresh 4-wise independent bit,
	// ξ'(v) = 2ξ(v) − b(v), updating the per-edge color annotations.
	b := hashing.NewPoly4(rnd)
	o.chain = append(o.chain, b)
	for i := int64(0); i < n; i++ {
		e := seg.Read(i)
		a := annSeg.Read(i)
		xu := 2*uint32(a>>32) - uint32(b.Bit(uint64(graph.U(e))))
		xv := 2*uint32(a) - uint32(b.Bit(uint64(graph.V(e))))
		annSeg.Write(i, extmem.Word(xu)<<32|extmem.Word(xv))
	}

	// Step 3: the eight subproblems ζ ∈ {2c0−1,2c0}×{2c1−1,2c1}×{2c2−1,2c2}.
	// Every child's Rand is split off unconditionally — even for an empty
	// child — so the sequence of draws per node is fixed (4 for the Poly4,
	// then one per Split) and every child's randomness is reproducible from
	// the node's Rand alone.
	for bits := 0; bits < 8; bits++ {
		childRnd := rnd.Split(uint64(bits))
		zeta := [3]uint32{
			2*col[0] - uint32(bits>>0&1),
			2*col[1] - uint32(bits>>1&1),
			2*col[2] - uint32(bits>>2&1),
		}
		k := o.partitionCompatible(lo, lo+n, zeta)
		if err := o.recurse(lo, lo+k, zeta, depth+1, childRnd); err != nil {
			return err
		}
	}

	// Restore the annotations of this segment to this node's level before
	// returning, so the parent's remaining sibling partitions read colors
	// at the level the parent established. ξ' = 2ξ − b is invertible:
	// ξ = (ξ' + b(v)) / 2. (Descendants have already restored their own
	// deeper refinements by the same rule.)
	for i := int64(0); i < n; i++ {
		e := seg.Read(i)
		a := annSeg.Read(i)
		pu := (uint32(a>>32) + uint32(b.Bit(uint64(graph.U(e))))) >> 1
		pv := (uint32(a) + uint32(b.Bit(uint64(graph.V(e))))) >> 1
		annSeg.Write(i, extmem.Word(pu)<<32|extmem.Word(pv))
	}
	o.chain = o.chain[:len(o.chain)-1]
	return nil
}

// localHighDegree enumerates (via Lemma 1) and removes all triangles with
// a vertex of degree >= n/8 within the segment, returning the new length.
// Removal is a permutation: removed edges are moved past the new length,
// preserving the parent's multiset. The per-vertex passes are the node's
// internal cancellation boundaries.
func (o *oblivious) localHighDegree(lo, hi int64, col [3]uint32, depth int) (int64, error) {
	n := hi - lo
	mark := o.sp.Mark()
	ends := o.sp.Alloc(2 * n)
	seg := o.work.Slice(lo, hi)
	for i := int64(0); i < n; i++ {
		e := seg.Read(i)
		ends.Write(2*i, extmem.Word(graph.U(e)))
		ends.Write(2*i+1, extmem.Word(graph.V(e)))
	}
	emsort.FunnelSortRecords(ends, 1, emsort.Identity)
	var high []uint32 // at most 16
	threshold := float64(n) / 8
	for i := int64(0); i < 2*n; {
		v := ends.Read(i)
		j := i
		for j < 2*n && ends.Read(j) == v {
			j++
		}
		if float64(j-i) >= threshold {
			high = append(high, uint32(v))
		}
		i = j
	}
	o.sp.Release(mark)

	properEmit := o.properEmit(col, depth)
	cur := n
	for _, v := range high {
		if cur == 0 {
			break
		}
		if err := ctxutil.Err(o.ctx); err != nil {
			return cur, err
		}
		segCur := o.work.Slice(lo, lo+cur)
		enumerateContaining(o.sp, segCur, v, emsort.FunnelSortRecords, func(u, w uint32) {
			t := graph.MakeTriple(v, u, w)
			properEmit(t.V1, t.V2, t.V3)
		})
		cur = o.partitionBy(lo, lo+cur, func(e extmem.Word) bool {
			return graph.U(e) != v && graph.V(e) != v
		})
		o.info.HighDegVertices++
	}
	return cur, nil
}

// partitionCompatible permutes [lo,hi) of work (and annotations) so edges
// compatible with the color vector zeta form the prefix; returns its size.
// An edge {u,v}, u<v with colors (x,y) is compatible iff (x,y) is one of
// (ζ0,ζ1), (ζ1,ζ2), (ζ0,ζ2).
func (o *oblivious) partitionCompatible(lo, hi int64, zeta [3]uint32) int64 {
	p01 := extmem.Word(zeta[0])<<32 | extmem.Word(zeta[1])
	p12 := extmem.Word(zeta[1])<<32 | extmem.Word(zeta[2])
	p02 := extmem.Word(zeta[0])<<32 | extmem.Word(zeta[2])
	return o.partitionByAnn(lo, hi, func(a extmem.Word) bool {
		return a == p01 || a == p12 || a == p02
	})
}

// partitionBy permutes [lo,hi) so edges satisfying keep form the prefix,
// moving annotation words in lockstep. Returns the prefix length.
func (o *oblivious) partitionBy(lo, hi int64, keep func(e extmem.Word) bool) int64 {
	return o.partition(lo, hi, func(e, _ extmem.Word) bool { return keep(e) })
}

// partitionByAnn partitions on the annotation word.
func (o *oblivious) partitionByAnn(lo, hi int64, keep func(a extmem.Word) bool) int64 {
	return o.partition(lo, hi, func(_, a extmem.Word) bool { return keep(a) })
}

func (o *oblivious) partition(lo, hi int64, keep func(e, a extmem.Word) bool) int64 {
	n := hi - lo
	seg := o.work.Slice(lo, hi)
	annSeg := o.ann.Slice(lo, hi)
	scrE := o.scratchE.Slice(lo, hi)
	scrA := o.scratchA.Slice(lo, hi)
	front, back := int64(0), n-1
	for i := int64(0); i < n; i++ {
		e, a := seg.Read(i), annSeg.Read(i)
		if keep(e, a) {
			scrE.Write(front, e)
			scrA.Write(front, a)
			front++
		} else {
			scrE.Write(back, e)
			scrA.Write(back, a)
			back--
		}
	}
	emio.Copy(seg, scrE)
	emio.Copy(annSeg, scrA)
	return front
}
