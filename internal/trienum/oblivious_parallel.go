package trienum

import (
	"context"
	"slices"

	"repro/internal/ctxutil"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
)

// The parallel cache-oblivious engine. The Section 3 recursion decomposes
// into independent units because its randomness is path-split (see the
// oblivious struct): a node's Poly4 draw and its children's Rands are a
// pure function of the node's position in the tree, and every emission
// path flows through full-word-tiebreak sorts, so a subtree's triangle
// stream is a pure function of its (edge set, color vector, depth, hash
// chain, node Rand) — not of the order its parent happened to leave the
// edges in, nor of anything its siblings do.
//
// The coordinator therefore expands the top of the recursion tree inline,
// natively: it replicates the sequential node's structural work (the
// high-degree census, the coloring refinement, the eight compatibility
// partitions) on Go slices, and cuts the tree into two kinds of shard
// tasks, appended in exactly the sequential emission order:
//
//   - a Lemma 1 task per local high-degree vertex, running against the
//     node's frozen pre-pass segment with the previously-processed
//     vertices filtered out of the found wedges — equivalent, triangle for
//     triangle and in the same order, to the sequential pass on the
//     reduced segment, because removing an edge {a,b} with a or b among
//     the processed vertices removes exactly the triangles the filter
//     drops, and a sorted stream restricted to a subset keeps its order;
//   - a subtree task per recursion node below the split frontier, running
//     the unmodified sequential recursion on a private copy of the node's
//     segment and annotations.
//
// The worker-pool engine (runTasks) replays completed tasks strictly in
// task order, so the overall stream is byte-identical to the sequential
// ObliviousCtx at every worker count. As with the cache-aware engine, the
// I/O accounting differs from the sequential reference path by design —
// every task is charged a cold private cache, and the coordinator's inline
// expansion is charged one scan (the root copy-in) rather than the
// sequential path's per-level repartition traffic — while agreeing with
// itself at every worker count.

const (
	// obSplitDepth is the depth of the split frontier: nodes at this depth
	// (up to 64 of them) become subtree tasks instead of being expanded
	// inline by the coordinator. Two levels keep the planner's native
	// footprint at O(E) words while yielding enough tasks to feed and
	// balance any practical worker count — subtree sizes concentrate
	// around E/16 (Lemma 4), and skewed nodes still split because the
	// engine dispatches tasks dynamically.
	obSplitDepth = 2
	// obSplitMinEdges stops inline expansion early for small nodes: below
	// this size a subtree is cheaper to solve whole than to keep
	// splitting, and the resulting tasks are plentiful enough already.
	obSplitMinEdges = 1024
)

// ObliviousParallel is the cache-oblivious randomized algorithm of
// Section 3 executed by the worker-pool engine: the recursion's local
// high-degree passes and its depth-obSplitDepth subtrees run as tasks on
// exec.Workers shards. The triangle stream is byte-identical to the
// sequential ObliviousCtx with the same seed, at every worker count; the
// summed I/O stats are identical at every worker count (but differ from
// the sequential path's, as documented above). The second return value is
// the per-worker I/O breakdown. A non-nil error is exec.Ctx's
// cancellation error; the triangles emitted before it are a prefix of the
// full stream.
func ObliviousParallel(sp *extmem.Space, g graph.Canonical, seed uint64, exec Exec, emit graph.Emit) (Info, []extmem.Stats, error) {
	var info Info
	emit = countingEmit(&info, emit)
	E := g.Edges.Len()
	if E == 0 {
		return info, nil, ctxutil.Err(exec.Ctx)
	}
	ctx := exec.Ctx
	if err := ctxutil.Err(ctx); err != nil {
		return info, nil, err
	}
	cfg := sp.Config()
	workers := exec.workers()
	mark := sp.Mark()
	defer sp.Release(mark)

	work := sp.Alloc(E)
	g.Edges.CopyTo(work)
	root := sp.Snapshot(work)[:E]

	maxDepth := 0
	for d := int64(1); d < E; d *= 4 {
		maxDepth++
	}
	an := make([]extmem.Word, E)
	for i := range an {
		an[i] = 1<<32 | 1 // root coloring ξ0 ≡ 1 on both endpoints
	}
	p := &obPlanner{ctx: ctx, info: &info, maxDepth: maxDepth}
	p.plan(root, an, [3]uint32{1, 1, 1}, 0, nil, hashing.NewRand(seed))
	if p.err != nil {
		return info, nil, p.err
	}
	for len(p.arena)%cfg.B != 0 {
		p.arena = append(p.arena, 0) // shard cores are whole blocks
	}
	stats, err := runTasks(ctx, cfg, p.arena, p.tasks, workers, emit)
	for _, u := range p.infos {
		mergeObInfo(&info, u)
	}
	return info, stats, err
}

// obPlanner expands the top of the recursion tree, laying the tasks' input
// segments out in one arena (the shared region the worker shards read) and
// collecting the tasks in sequential emission order. infos is parallel to
// tasks; each subtree task records its own recursion bookkeeping there
// (the slice is fully grown before runTasks starts, so the per-index
// writes race with nothing).
type obPlanner struct {
	ctx      context.Context
	info     *Info
	maxDepth int
	arena    []extmem.Word
	tasks    []shardTask
	infos    []Info
	err      error
}

func (p *obPlanner) appendArena(words ...[]extmem.Word) int64 {
	off := int64(len(p.arena))
	for _, w := range words {
		p.arena = append(p.arena, w...)
	}
	return off
}

// plan mirrors oblivious.recurse node for node: same cutoffs, same
// bookkeeping, same draw order from the node Rand (the Poly4, then one
// Split per child, unconditionally), same stable partitions — except that
// partitions produce fresh slices instead of permuting in place, which is
// emission-equivalent because subtree streams are set-determined.
func (p *obPlanner) plan(ed, an []extmem.Word, col [3]uint32, depth int, chain []hashing.Poly4, rnd *hashing.Rand) {
	if p.err != nil || len(ed) == 0 {
		return
	}
	if err := ctxutil.Err(p.ctx); err != nil {
		p.err = err
		return
	}
	n := int64(len(ed))
	if depth >= p.maxDepth || n <= obliviousBaseCutoff || depth >= obSplitDepth || n <= obSplitMinEdges {
		p.addSubtreeTask(ed, an, col, depth, chain, *rnd)
		return
	}

	// Inline-expanded node: the coordinator does the node's own
	// bookkeeping; its Lemma 1 passes and its descendant subtrees run on
	// shards.
	p.info.Subproblems++
	for len(p.info.Recursion) <= depth {
		p.info.Recursion = append(p.info.Recursion, RecursionLevel{Level: len(p.info.Recursion)})
	}
	lv := &p.info.Recursion[depth]
	lv.Subproblems++
	lv.TotalEdges += n
	if n > lv.MaxEdges {
		lv.MaxEdges = n
	}

	// Step 1: local high-degree vertices (degree >= n/8 in this segment),
	// one Lemma 1 task each against the frozen pre-pass segment.
	high := planHigh(ed)
	if len(high) > 0 {
		frozenOff := p.appendArena(ed)
		frozenLen := n
		for j, v := range high {
			if len(ed) == 0 {
				break
			}
			p.addHighDegTask(frozenOff, frozenLen, v, slices.Clone(high[:j]), col, depth, chain)
			vv := v
			ed, an = filterPair(ed, an, func(e, _ extmem.Word) bool {
				return graph.U(e) != vv && graph.V(e) != vv
			})
			p.info.HighDegVertices++
		}
	}
	if len(ed) == 0 {
		return
	}

	// Step 2: refine the coloring, updating the annotations. ed and an are
	// private to this node (fresh slices from the parent's partition or
	// the root copy), so in-place refinement is safe.
	b := hashing.NewPoly4(rnd)
	childChain := append(make([]hashing.Poly4, 0, len(chain)+1), chain...)
	childChain = append(childChain, b)
	for i, e := range ed {
		a := an[i]
		xu := 2*uint32(a>>32) - uint32(b.Bit(uint64(graph.U(e))))
		xv := 2*uint32(a) - uint32(b.Bit(uint64(graph.V(e))))
		an[i] = extmem.Word(xu)<<32 | extmem.Word(xv)
	}

	// Step 3: the eight subproblems, splitting a child Rand per slot
	// unconditionally, exactly as the sequential recursion does.
	for bits := 0; bits < 8; bits++ {
		childRnd := rnd.Split(uint64(bits))
		zeta := [3]uint32{
			2*col[0] - uint32(bits>>0&1),
			2*col[1] - uint32(bits>>1&1),
			2*col[2] - uint32(bits>>2&1),
		}
		p01 := extmem.Word(zeta[0])<<32 | extmem.Word(zeta[1])
		p12 := extmem.Word(zeta[1])<<32 | extmem.Word(zeta[2])
		p02 := extmem.Word(zeta[0])<<32 | extmem.Word(zeta[2])
		childEd, childAn := filterPair(ed, an, func(_, a extmem.Word) bool {
			return a == p01 || a == p12 || a == p02
		})
		p.plan(childEd, childAn, zeta, depth+1, childChain, childRnd)
	}
}

// addSubtreeTask hands one whole recursion node to a worker: the task
// copies the node's segment and annotations from the arena into private
// extents and runs the unmodified sequential recursion on them.
func (p *obPlanner) addSubtreeTask(ed, an []extmem.Word, col [3]uint32, depth int, chain []hashing.Poly4, rnd hashing.Rand) {
	n := int64(len(ed))
	off := p.appendArena(ed, an)
	// Exact-capacity chain copy: recurse appends to it, and an append that
	// fit in shared capacity would race with a sibling task's.
	ch := make([]hashing.Poly4, len(chain))
	copy(ch, chain)
	maxDepth := p.maxDepth
	idx := len(p.tasks)
	p.infos = append(p.infos, Info{})
	p.tasks = append(p.tasks, func(shard *extmem.Space, emit graph.Emit) {
		loc := &oblivious{
			sp:       shard,
			emit:     emit,
			info:     &p.infos[idx],
			chain:    ch,
			maxDepth: maxDepth,
		}
		loc.work = shard.Alloc(n)
		shard.ExtentAt(off, n).CopyTo(loc.work)
		loc.ann = shard.Alloc(n)
		shard.ExtentAt(off+n, n).CopyTo(loc.ann)
		loc.scratchE = shard.Alloc(n)
		loc.scratchA = shard.Alloc(n)
		r := rnd
		// A nil-ctx recursion cannot fail; tasks run to completion so a
		// cancelled run's merged stream stays a prefix of the full one.
		_ = loc.recurse(0, n, col, depth, &r)
	})
}

// addHighDegTask hands one local high-degree pass to a worker: Lemma 1 for
// vertex v against the node's frozen pre-pass segment, keeping only wedges
// disjoint from the vertices processed before v (whose edges the
// sequential path had already removed) and triangles proper for the node's
// color vector.
func (p *obPlanner) addHighDegTask(off, n int64, v uint32, skip []uint32, col [3]uint32, depth int, chain []hashing.Poly4) {
	ch := make([]hashing.Poly4, len(chain))
	copy(ch, chain)
	p.infos = append(p.infos, Info{})
	p.tasks = append(p.tasks, func(shard *extmem.Space, emit graph.Emit) {
		colorOf := func(u uint32) uint32 {
			xi := uint32(1)
			for i := 0; i < depth; i++ {
				xi = 2*xi - uint32(ch[i].Bit(uint64(u)))
			}
			return xi
		}
		seg := shard.ExtentAt(off, n)
		enumerateContaining(shard, seg, v, emsort.FunnelSortRecords, func(u, w uint32) {
			if slices.Contains(skip, u) || slices.Contains(skip, w) {
				return
			}
			t := graph.MakeTriple(v, u, w)
			if colorOf(t.V1) == col[0] && colorOf(t.V2) == col[1] && colorOf(t.V3) == col[2] {
				emit(t.V1, t.V2, t.V3)
			}
		})
	})
}

// planHigh is the native replica of localHighDegree's census: the vertices
// of degree >= n/8 within the segment, ascending.
func planHigh(ed []extmem.Word) []uint32 {
	ends := make([]uint32, 0, 2*len(ed))
	for _, e := range ed {
		ends = append(ends, graph.U(e), graph.V(e))
	}
	slices.Sort(ends)
	var high []uint32
	threshold := float64(len(ed)) / 8
	for i := 0; i < len(ends); {
		j := i
		for j < len(ends) && ends[j] == ends[i] {
			j++
		}
		if float64(j-i) >= threshold {
			high = append(high, ends[i])
		}
		i = j
	}
	return high
}

// filterPair stable-filters the edge and annotation slices in lockstep,
// returning fresh slices — the planner's counterpart of the sequential
// partition, which is stable on the kept prefix.
func filterPair(ed, an []extmem.Word, keep func(e, a extmem.Word) bool) ([]extmem.Word, []extmem.Word) {
	outE := make([]extmem.Word, 0, len(ed))
	outA := make([]extmem.Word, 0, len(ed))
	for i, e := range ed {
		if keep(e, an[i]) {
			outE = append(outE, e)
			outA = append(outA, an[i])
		}
	}
	return outE, outA
}

// mergeObInfo folds a task's recursion bookkeeping into the run total.
// Triangles are counted once, globally, by the engine's merged emit;
// tasks' own Triangles fields stay zero.
func mergeObInfo(dst *Info, u Info) {
	dst.Subproblems += u.Subproblems
	dst.BaseCases += u.BaseCases
	dst.HighDegVertices += u.HighDegVertices
	for len(dst.Recursion) < len(u.Recursion) {
		dst.Recursion = append(dst.Recursion, RecursionLevel{Level: len(dst.Recursion)})
	}
	for i, lv := range u.Recursion {
		d := &dst.Recursion[i]
		d.Subproblems += lv.Subproblems
		d.TotalEdges += lv.TotalEdges
		if lv.MaxEdges > d.MaxEdges {
			d.MaxEdges = lv.MaxEdges
		}
	}
}
