package trienum

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/ctxutil"
	"repro/internal/emio"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/hashing"
)

// The parallel execution engine. The paper's cache-aware algorithms
// decompose into independent units — one Lemma 1 pass per high-degree
// vertex and one Lemma 2 kernel per color triple — that share no mutable
// state once the coordinator has laid out the (sorted) edge array. The
// engine freezes that array with extmem.Snapshot, dispatches the units to
// a pool of workers, each executing on its own extmem shard (a private
// M-word cache over the shared read-only region), and replays the
// finished units' triangles in the canonical sequential order.
//
// Two properties hold by construction, for any worker count:
//
//   - Determinism: every unit runs against the same frozen input from a
//     cold private cache, so its triangle sequence and its I/O counts do
//     not depend on scheduling. The merge layer emits units in the fixed
//     canonical order, so the overall emission stream is byte-identical
//     across worker counts, and exactly-once.
//   - Exact accounting: per-worker Stats are summed per shard; because
//     per-unit counts are scheduling-independent, the aggregate equals the
//     one-worker engine run exactly.
//
// Relative to the sequential reference path (CacheAware, Deterministic),
// the engine charges each unit a cold start instead of inheriting warm
// cache state from its predecessor — the accounting the paper's per-
// subproblem analysis actually performs — so engine totals differ from
// the reference path's by design, while agreeing with themselves at every
// worker count.

// Exec configures the parallel execution engine.
type Exec struct {
	// Workers is the number of worker goroutines solving subproblems;
	// values <= 0 select runtime.GOMAXPROCS(0).
	Workers int
	// Ctx, when non-nil, cancels a run cooperatively: the engine checks it
	// between subproblems (and the parallel sorts between runs), stops
	// dispatching, drains the worker pool cleanly — no goroutine outlives
	// the call — and returns Ctx.Err(). Emission already handed to emit is
	// never retracted; a cancelled run's triangle stream is a prefix of
	// the full stream. A nil Ctx never cancels.
	Ctx context.Context
}

func (x Exec) workers() int {
	if x.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return x.Workers
}

// shardTask is one unit of parallel work: it runs against a worker's
// shard Space, emitting its triangles (in the unit's canonical order)
// through the supplied callback.
type shardTask func(shard *extmem.Space, emit graph.Emit)

const (
	// emitBatch is the number of triangles per merge handoff.
	emitBatch = 1024
	// streamDepth is the number of batches a not-yet-merged task may
	// buffer before its worker blocks. Together with the dispatch window
	// this bounds the engine's native memory at
	// O(workers · streamDepth · emitBatch) triangles regardless of the
	// output size, preserving the streaming character of the sequential
	// path on triangle-dense graphs.
	streamDepth = 8
)

// runTasks executes tasks on up to `workers` workers, each worker owning
// one shard Space over the shared snapshot, and emits every task's
// triangles in task order on the calling goroutine. Between tasks a
// worker releases its scratch and drops its cache, so each task runs
// cold, exactly as on a fresh shard. Returns the per-worker stats.
//
// Emission is streamed: each in-flight task hands batches to the merge
// layer over a bounded channel, and tasks are dispatched through a
// bounded window ahead of the merge cursor, so workers exert
// backpressure instead of materializing their output.
//
// When ctx is cancelled the merge layer stops consuming between batches,
// the dispatcher stops handing out subproblems, in-flight tasks unwind at
// their next blocked send, and the pool drains before the function
// returns ctx.Err() with the stats accumulated so far.
func runTasks(ctx context.Context, cfg extmem.Config, shared []extmem.Word, tasks []shardTask, workers int, emit graph.Emit) ([]extmem.Stats, error) {
	if len(tasks) == 0 {
		return nil, ctxutil.Err(ctx)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	streams := make([]chan []graph.Triple, len(tasks))
	for i := range streams {
		streams[i] = make(chan []graph.Triple, streamDepth)
	}
	jobs := make(chan int)
	window := make(chan struct{}, 2*workers)
	// done is closed when the merge layer stops consuming — normally after
	// the last task, but also if the caller's emit panics — so blocked
	// workers and the dispatcher always unwind instead of leaking.
	done := make(chan struct{})
	stats := make([]extmem.Stats, workers)
	var wg sync.WaitGroup
	defer func() {
		close(done)
		wg.Wait()
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := extmem.NewShardSpace(cfg, shared)
			base := shard.Mark()
			for idx := range jobs {
				send := func(batch []graph.Triple) bool {
					select {
					case streams[idx] <- batch:
						return true
					case <-done:
						return false
					}
				}
				abandoned := false
				batch := make([]graph.Triple, 0, emitBatch)
				tasks[idx](shard, func(a, b, c uint32) {
					if abandoned {
						return
					}
					batch = append(batch, graph.Triple{V1: a, V2: b, V3: c})
					if len(batch) == emitBatch {
						// The sent batch is owned by the merge layer now;
						// start a fresh one.
						abandoned = !send(batch)
						batch = make([]graph.Triple, 0, emitBatch)
					}
				})
				if !abandoned && len(batch) > 0 {
					send(batch)
				}
				close(streams[idx])
				shard.Release(base)
				shard.DropCache()
			}
			stats[w] = shard.Stats()
		}(w)
	}
	go func() {
		defer close(jobs)
		for i := range tasks {
			select {
			case window <- struct{}{}: // blocks while the merge cursor lags
			case <-done:
				return
			}
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()
	// Merge layer: consume the task streams strictly in task order.
	cancelled := ctxutil.Done(ctx)
	for i := range tasks {
		stream := streams[i]
		for stream != nil {
			select {
			case batch, ok := <-stream:
				if !ok {
					stream = nil
					break
				}
				for _, t := range batch {
					emit(t.V1, t.V2, t.V3)
				}
			case <-cancelled:
				return stats, ctx.Err()
			}
		}
		select {
		case <-window:
		case <-cancelled:
			return stats, ctx.Err()
		}
	}
	return stats, nil
}

// CacheAwareParallel is the cache-aware randomized algorithm of Section 2
// executed by the worker-pool engine: the Lemma 1 high-degree passes and
// the c³ color-triple kernels run on exec.Workers shards. The triangle
// stream and the summed I/O stats are identical for every worker count,
// and deterministic in seed. The second return value is the per-worker
// I/O breakdown of the parallel phases (the coordinator's own I/Os accrue
// to sp as usual). A non-nil error is exec.Ctx's cancellation error; the
// triangles emitted before it are a prefix of the full stream.
func CacheAwareParallel(sp *extmem.Space, g graph.Canonical, seed uint64, exec Exec, emit graph.Emit) (Info, []extmem.Stats, error) {
	var info Info
	emit = countingEmit(&info, emit)
	E := g.Edges.Len()
	if E == 0 {
		return info, nil, ctxutil.Err(exec.Ctx)
	}
	ctx := exec.Ctx
	if err := ctxutil.Err(ctx); err != nil {
		return info, nil, err
	}
	cfg := sp.Config()
	workers := exec.workers()
	mark := sp.Mark()
	defer sp.Release(mark)

	work := sp.Alloc(E)
	g.Edges.CopyTo(work)

	curLen, workerStats, err := highDegreeParallel(ctx, sp, work, g, workers, emit, &info)
	if err != nil {
		return info, workerStats, err
	}

	c := ceilSqrt(float64(E) / float64(cfg.M))
	info.Colors = c
	col := hashing.NewColoring(hashing.NewRand(seed), c)
	ws, err := solveColoredParallel(ctx, sp, work.Prefix(curLen), col.Color, c, workers, &info, emit)
	return info, extmem.AddStatsVec(workerStats, ws), err
}

// DeterministicParallel is the derandomized algorithm of Section 4 on the
// worker-pool engine. The greedy coloring construction is inherently
// sequential and runs on the coordinator (checking exec.Ctx between
// levels); the high-degree passes and the color-triple kernels
// parallelize as in CacheAwareParallel.
func DeterministicParallel(sp *extmem.Space, g graph.Canonical, familySize int, exec Exec, emit graph.Emit) (Info, []extmem.Stats, error) {
	var info Info
	emit = countingEmit(&info, emit)
	E := g.Edges.Len()
	if E == 0 {
		return info, nil, ctxutil.Err(exec.Ctx)
	}
	ctx := exec.Ctx
	if err := ctxutil.Err(ctx); err != nil {
		return info, nil, err
	}
	workers := exec.workers()
	mark := sp.Mark()
	defer sp.Release(mark)

	work := sp.Alloc(E)
	g.Edges.CopyTo(work)

	curLen, workerStats, err := highDegreeParallel(ctx, sp, work, g, workers, emit, &info)
	if err != nil {
		return info, workerStats, err
	}
	edges := work.Prefix(curLen)

	// The greedy bit selection is inherently sequential, but the
	// endpoint-doubled list it scans is ordered by the parallel sort. A
	// cancellation inside the sort is recorded and surfaces right after
	// the coloring construction unwinds.
	var sortErr error
	sorter := func(ext extmem.Extent, stride int, key emsort.Key) {
		if sortErr != nil {
			return
		}
		ws, err := emsort.ParallelSortRecordsCtx(ctx, ext, stride, key, workers)
		workerStats = extmem.AddStatsVec(workerStats, ws)
		sortErr = err
	}
	colorOf, c, err := buildDeterministicColoring(ctx, sp, g, edges, familySize, sorter, &info)
	if sortErr != nil {
		return info, workerStats, sortErr
	}
	if err != nil {
		return info, workerStats, err
	}
	ws, err := solveColoredParallel(ctx, sp, edges, colorOf, c, workers, &info, emit)
	return info, extmem.AddStatsVec(workerStats, ws), err
}

// highDegreeParallel runs step 1 — one Lemma 1 pass per vertex of degree
// greater than sqrt(E·M) — as shard tasks over a frozen snapshot of the
// full edge set, then compacts the surviving low-degree edges to the
// prefix of work, returning the new length and the per-worker stats.
//
// In the sequential reference path each vertex's edges are removed before
// the next vertex is processed, which is what makes every triangle land
// at its highest-ranked high-degree corner. Against the frozen set the
// same exactly-once guarantee comes from a filter: a triangle {u,w,vr}
// found at vr is kept only if u, w < vr, i.e. vr is the triangle's
// highest corner. The per-vertex triangle sets coincide with the
// reference path's.
func highDegreeParallel(ctx context.Context, sp *extmem.Space, work extmem.Extent, g graph.Canonical, workers int, emit graph.Emit, info *Info) (int64, []extmem.Stats, error) {
	E := work.Len()
	cfg := sp.Config()
	r0 := highDegreeCut(g, float64(E), float64(cfg.M))
	if r0 >= g.NumVertices {
		return E, nil, nil
	}
	shared := sp.Snapshot(work)
	var tasks []shardTask
	for r := g.NumVertices - 1; r >= r0; r-- {
		vr := uint32(r)
		tasks = append(tasks, func(shard *extmem.Space, emit graph.Emit) {
			seg := shard.ExtentAt(0, E)
			enumerateContaining(shard, seg, vr, emsort.SortRecords, func(u, w uint32) {
				if w < vr {
					emit(u, w, vr)
				}
			})
		})
		info.HighDegVertices++
	}
	stats, err := runTasks(ctx, cfg, shared, tasks, workers, emit)
	if err != nil {
		return 0, stats, err
	}
	return compactBelow(sp, work, uint32(r0)), stats, nil
}

// compactBelow drops every edge with an endpoint of rank >= r0 (edges are
// canonical, u < v, so that is exactly V(e) >= r0), compacting survivors
// to the prefix of work — the same edge set, in the same order, that the
// reference path reaches by removing each high-degree vertex in turn.
func compactBelow(sp *extmem.Space, work extmem.Extent, r0 uint32) int64 {
	mark := sp.Mark()
	defer sp.Release(mark)
	scratch := sp.Alloc(work.Len())
	w := emio.NewWriter(scratch)
	kept := emio.Filter(w, work, func(e extmem.Word) bool {
		return graph.V(e) < r0
	})
	emio.Copy(work.Prefix(kept), scratch.Prefix(kept))
	return kept
}

// solveColoredParallel is solveColored with both the color-pair sort and
// the color triples dispatched to the worker pool: the coordinator sorts
// edges into color-pair buckets with the parallel emsort engine (the
// sequential Amdahl bottleneck before it) and freezes them; each triple's
// bucket union, kernel run, and color filter happen on a worker shard.
func solveColoredParallel(ctx context.Context, sp *extmem.Space, edges extmem.Extent, colorOf func(uint32) uint32, c int, workers int, info *Info, emit graph.Emit) ([]extmem.Stats, error) {
	E := edges.Len()
	if E == 0 {
		return nil, ctxutil.Err(ctx)
	}
	cfg := sp.Config()
	if c <= 1 {
		sortWS, err := emsort.ParallelSortRecordsCtx(ctx, edges, 1, emsort.Identity, workers)
		if err != nil {
			return sortWS, err
		}
		shared := sp.Snapshot(edges)
		info.Subproblems++
		task := func(shard *extmem.Space, emit graph.Emit) {
			seg := shard.ExtentAt(0, E)
			kernel(shard, seg, seg, 0, nil, emit)
		}
		ws, err := runTasks(ctx, cfg, shared, []shardTask{task}, 1, emit)
		return extmem.AddStatsVec(sortWS, ws), err
	}
	sortWS, err := emsort.ParallelSortRecordsCtx(ctx, edges, 1, colorPairKey(colorOf, c), workers)
	if err != nil {
		return sortWS, err
	}
	release := sp.LeaseAtMost(c*c + 1)
	off := bucketOffsets(edges, colorOf, c, info)
	release()
	shared := sp.Snapshot(edges)

	// Task granularity. In simulated mode each color triple is one task:
	// the unit the paper's accounting charges, and what keeps the I/O
	// totals of the gated experiments stable. In native mode there is no
	// accounting to preserve and wall-clock is the product, so a skewed
	// triple — one hot color pair holding most pivot edges — is split at
	// the kernel's own chunk boundaries into one task per memEdges pivot
	// rows. The engine's pull-based dispatch (workers take the next task
	// as they free up) then steals the hot triple's chunks across the
	// pool instead of serializing them on one worker. memEdges replicates
	// the kernel's auto-sizing under the c²+1-word bucket-index lease, so
	// chunk boundaries — and the concatenated emission stream — are
	// exactly the single-task kernel's.
	chunked := cfg.Native
	memEdges := 0
	if chunked {
		lease := c*c + 1
		if maxLease := cfg.M - 2*cfg.B; lease > maxLease {
			lease = maxLease
		}
		if lease < 0 {
			lease = 0
		}
		memEdges = (cfg.M - lease) / 8
		if memEdges < 16 {
			memEdges = 16
		}
	}

	var tasks []shardTask
	forEachTriple(off, c, func(t1, t2, t3 int) {
		info.Subproblems++
		// Scratch for the bucket union; the three named buckets bound
		// its size even when colors coincide and buckets alias.
		need := bucketAt(edges, off, c, t1, t2).Len() +
			bucketAt(edges, off, c, t1, t3).Len() +
			bucketAt(edges, off, c, t2, t3).Len()
		nPiv := bucketAt(edges, off, c, t2, t3).Len()
		if !chunked || nPiv <= int64(memEdges) {
			tasks = append(tasks, func(shard *extmem.Space, emit graph.Emit) {
				// The shard consults the same c²+1-word bucket index the
				// coordinator built; charge it the same internal memory.
				release := shard.LeaseAtMost(c*c + 1)
				defer release()
				seg := shard.ExtentAt(0, E)
				solveTriple(shard, seg, off, c, t1, t2, t3, colorOf, shard.Alloc(need), emit)
			})
			return
		}
		for lo := int64(0); lo < nPiv; lo += int64(memEdges) {
			hi := lo + int64(memEdges)
			if hi > nPiv {
				hi = nPiv
			}
			tasks = append(tasks, func(shard *extmem.Space, emit graph.Emit) {
				release := shard.LeaseAtMost(c*c + 1)
				defer release()
				seg := shard.ExtentAt(0, E)
				solveTripleRange(shard, seg, off, c, t1, t2, t3, lo, hi, memEdges, colorOf, shard.Alloc(need), emit)
			})
		}
	})
	ws, err := runTasks(ctx, cfg, shared, tasks, workers, emit)
	return extmem.AddStatsVec(sortWS, ws), err
}
