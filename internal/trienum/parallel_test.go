package trienum

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// parallelRun executes one engine run and returns the emission sequence
// (in emission order, not sorted — the ordering is part of the contract),
// the coordinator stats, and the summed worker stats.
func parallelRun(t *testing.T, el graph.EdgeList, cfg extmem.Config, workers int,
	run func(sp *extmem.Space, g graph.Canonical, exec Exec, emit graph.Emit) (Info, []extmem.Stats)) ([]graph.Triple, extmem.Stats, Info) {
	t.Helper()
	sp := extmem.NewSpace(cfg)
	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()
	var got []graph.Triple
	info, ws := run(sp, g, Exec{Workers: workers}, func(a, b, c uint32) {
		got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
	})
	sp.Flush()
	total := sp.Stats()
	for _, w := range ws {
		total.Add(w)
	}
	return got, total, info
}

var parallelEngines = []struct {
	name string
	run  func(sp *extmem.Space, g graph.Canonical, exec Exec, emit graph.Emit) (Info, []extmem.Stats)
}{
	{"cacheaware", func(sp *extmem.Space, g graph.Canonical, exec Exec, emit graph.Emit) (Info, []extmem.Stats) {
		info, ws, err := CacheAwareParallel(sp, g, 12345, exec, emit)
		if err != nil {
			panic(err)
		}
		return info, ws
	}},
	{"deterministic", func(sp *extmem.Space, g graph.Canonical, exec Exec, emit graph.Emit) (Info, []extmem.Stats) {
		info, ws, err := DeterministicParallel(sp, g, 0, exec, emit)
		if err != nil {
			panic(err)
		}
		return info, ws
	}},
	{"oblivious", func(sp *extmem.Space, g graph.Canonical, exec Exec, emit graph.Emit) (Info, []extmem.Stats) {
		info, ws, err := ObliviousParallel(sp, g, 12345, exec, emit)
		if err != nil {
			panic(err)
		}
		return info, ws
	}},
}

// parallelWorkloads deliberately includes the skewed and high-degree
// generators so the Lemma 1 shard path is exercised, not just the triples.
func parallelWorkloads() map[string]graph.EdgeList {
	hubs := graph.GNM(500, 1200, 3)
	for v := uint32(0); v < 400; v++ {
		hubs.Add(498, v)
		hubs.Add(499, v)
	}
	return map[string]graph.EdgeList{
		"empty":    {},
		"triangle": graph.Clique(3),
		"k20":      graph.Clique(20),
		"gnm":      graph.GNM(150, 1200, 11),
		"powerlaw": graph.PowerLaw(200, 1500, 2.1, 12),
		"planted":  graph.PlantedClique(120, 600, 12, 13),
		"rmat":     graph.RMAT(7, 700, 8),
		"hubs":     hubs,
		"star":     star(40),
	}
}

// TestParallelDeterministicAcrossWorkerCounts is the engine's core
// contract: for Workers ∈ {1, 2, 8} the emission sequence is
// byte-identical and the aggregated block-I/O counts are equal, on every
// workload, for both parallel-capable algorithms.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	for name, el := range parallelWorkloads() {
		for _, eng := range parallelEngines {
			t.Run(name+"/"+eng.name, func(t *testing.T) {
				base, baseStats, baseInfo := parallelRun(t, el, cfg, 1, eng.run)
				if ok, diag := graph.NewOracle(el).SameSet(base); !ok {
					t.Fatalf("1-worker engine wrong: %s", diag)
				}
				for _, workers := range []int{2, 8} {
					got, stats, info := parallelRun(t, el, cfg, workers, eng.run)
					if len(got) != len(base) {
						t.Fatalf("workers=%d emitted %d triangles, workers=1 emitted %d", workers, len(got), len(base))
					}
					for i := range got {
						if got[i] != base[i] {
							t.Fatalf("workers=%d: emission %d = %v, workers=1 emitted %v (order must match)", workers, i, got[i], base[i])
						}
					}
					if stats.BlockReads != baseStats.BlockReads || stats.BlockWrites != baseStats.BlockWrites {
						t.Errorf("workers=%d: I/Os (r=%d w=%d) differ from workers=1 (r=%d w=%d)",
							workers, stats.BlockReads, stats.BlockWrites, baseStats.BlockReads, baseStats.BlockWrites)
					}
					if stats.WordReads != baseStats.WordReads || stats.WordWrites != baseStats.WordWrites {
						t.Errorf("workers=%d: word counts differ from workers=1", workers)
					}
					if info.Triangles != baseInfo.Triangles || info.Subproblems != baseInfo.Subproblems ||
						info.HighDegVertices != baseInfo.HighDegVertices || info.X != baseInfo.X {
						t.Errorf("workers=%d: Info differs: %+v vs %+v", workers, info, baseInfo)
					}
				}
			})
		}
	}
}

// TestParallelMatchesSequentialTriangleSet: the engine finds exactly the
// set the sequential reference path finds (order and I/O accounting may
// differ between the two paths; the set may not).
func TestParallelMatchesSequentialTriangleSet(t *testing.T) {
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	for name, el := range parallelWorkloads() {
		t.Run(name, func(t *testing.T) {
			sp := extmem.NewSpace(cfg)
			g := graph.CanonicalizeList(sp, el)
			var seq []graph.Triple
			CacheAware(sp, g, 12345, func(a, b, c uint32) {
				seq = append(seq, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
			})
			par, _, _ := parallelRun(t, el, cfg, 4, parallelEngines[0].run)
			want := map[graph.Triple]int{}
			for _, tr := range seq {
				want[tr]++
			}
			for _, tr := range par {
				want[tr]--
			}
			for tr, n := range want {
				if n != 0 {
					t.Fatalf("triangle %v: sequential-parallel multiplicity diff %d", tr, n)
				}
			}
		})
	}
}

// TestObliviousParallelMatchesSequentialStream is the oblivious engine's
// strongest oracle: the parallel run's emission sequence is byte-identical
// to the sequential ObliviousCtx with the same seed — not just the same
// set — at every worker count, and the recursion bookkeeping (subproblem,
// base-case, high-degree, and per-level tallies) agrees exactly. This is
// what licenses routing CacheOblivious queries through the engine.
func TestObliviousParallelMatchesSequentialStream(t *testing.T) {
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	for name, el := range parallelWorkloads() {
		t.Run(name, func(t *testing.T) {
			sp := extmem.NewSpace(cfg)
			g := graph.CanonicalizeList(sp, el)
			var seq []graph.Triple
			seqInfo, err := ObliviousCtx(nil, sp, g, 12345, func(a, b, c uint32) {
				seq = append(seq, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, _, info := parallelRun(t, el, cfg, workers, parallelEngines[2].run)
				if len(got) != len(seq) {
					t.Fatalf("workers=%d emitted %d triangles, sequential emitted %d", workers, len(got), len(seq))
				}
				for i := range got {
					if got[i] != seq[i] {
						t.Fatalf("workers=%d: emission %d = %v, sequential emitted %v (order must match)", workers, i, got[i], seq[i])
					}
				}
				if info.Subproblems != seqInfo.Subproblems || info.BaseCases != seqInfo.BaseCases ||
					info.HighDegVertices != seqInfo.HighDegVertices || info.Triangles != seqInfo.Triangles {
					t.Errorf("workers=%d: Info differs from sequential: %+v vs %+v", workers, info, seqInfo)
				}
				if len(info.Recursion) != len(seqInfo.Recursion) {
					t.Fatalf("workers=%d: %d recursion levels, sequential has %d", workers, len(info.Recursion), len(seqInfo.Recursion))
				}
				for i, lv := range info.Recursion {
					if lv != seqInfo.Recursion[i] {
						t.Errorf("workers=%d: recursion level %d = %+v, sequential %+v", workers, i, lv, seqInfo.Recursion[i])
					}
				}
			}
		})
	}
}

// TestParallelHighDegreeExactlyOnce drives a graph whose triangles have
// two and three high-degree corners, the case the w < vr dedup filter
// must get right against the frozen edge set.
func TestParallelHighDegreeExactlyOnce(t *testing.T) {
	// Three mutually adjacent hubs over a shared neighborhood: triangles
	// {hub_i, hub_j, x} have two high-degree corners, {hub1, hub2, hub3}
	// has three.
	var el graph.EdgeList
	hub := []uint32{200, 201, 202}
	el.Add(hub[0], hub[1])
	el.Add(hub[0], hub[2])
	el.Add(hub[1], hub[2])
	for v := uint32(0); v < 150; v++ {
		for _, h := range hub {
			el.Add(h, v)
		}
	}
	// A second shared neighborhood keeps hub degrees (302) above the
	// sqrt(E·M) ≈ 240 threshold at M=64.
	for v := uint32(0); v < 150; v++ {
		el.Add(hub[0], 300+v)
		el.Add(hub[1], 300+v)
		el.Add(hub[2], 300+v)
	}
	cfg := extmem.Config{M: 1 << 6, B: 1 << 3}
	for _, eng := range parallelEngines {
		got, _, info := parallelRun(t, el, cfg, 4, eng.run)
		if info.HighDegVertices < 3 {
			t.Fatalf("%s: hubs not classified high-degree (got %d)", eng.name, info.HighDegVertices)
		}
		if ok, diag := graph.NewOracle(el).SameSet(got); !ok {
			t.Errorf("%s: %s", eng.name, diag)
		}
	}
}

// TestParallelListerTwoPassAgreement: ListTriangles runs its Lister twice
// (count, then fill); the parallel engine must give it the same stream
// both times, and the materialized list must pass the external checker.
func TestParallelListerTwoPassAgreement(t *testing.T) {
	el := graph.PlantedClique(100, 700, 12, 5)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 10, B: 1 << 5})
	g := graph.CanonicalizeList(sp, el)
	list, info := ListTriangles(sp, g, 77, ParallelLister(Exec{Workers: 4}))
	if ListLen(list) != int64(info.Triangles) {
		t.Fatalf("materialized %d triangles, info says %d", ListLen(list), info.Triangles)
	}
	if info.Triangles != graph.NewOracle(el).Count() {
		t.Fatalf("wrong count %d", info.Triangles)
	}
	if err := VerifyEnumeration(sp, g, list); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEmitPanicDoesNotLeakWorkers: a panic in the caller's emit
// must propagate after unwinding the pool — workers and dispatcher exit
// instead of blocking forever on full streams.
func TestParallelEmitPanicDoesNotLeakWorkers(t *testing.T) {
	el := graph.Clique(40) // 9880 triangles: workers are mid-stream when emit dies
	sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
	g := graph.CanonicalizeList(sp, el)
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("emit panic did not propagate")
			}
		}()
		n := 0
		CacheAwareParallel(sp, g, 1, Exec{Workers: 4}, func(_, _, _ uint32) {
			n++
			if n == 10 {
				panic("emit failure")
			}
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before the panic, %d after", before, runtime.NumGoroutine())
}

// TestParallelListerAbsorbsWorkerIOs: invoking the ParallelLister must
// leave the full run cost — coordinator plus workers — on the Space, so
// listing experiments that measure through sp.Stats() see the same
// totals as Enumerate reports.
func TestParallelListerAbsorbsWorkerIOs(t *testing.T) {
	el := graph.GNM(200, 1600, 4)
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}

	ref := extmem.NewSpace(cfg)
	gr := graph.CanonicalizeList(ref, el)
	ref.DropCache()
	ref.ResetStats()
	var n uint64
	_, ws, _ := CacheAwareParallel(ref, gr, 9, Exec{Workers: 2}, graph.Counter(&n))
	want := ref.Stats()
	for _, w := range ws {
		want.Add(w)
	}

	sp := extmem.NewSpace(cfg)
	g := graph.CanonicalizeList(sp, el)
	sp.DropCache()
	sp.ResetStats()
	ParallelLister(Exec{Workers: 2})(sp, g, 9, func(_, _, _ uint32) {})
	got := sp.Stats()
	if got.BlockReads != want.BlockReads || got.BlockWrites != want.BlockWrites {
		t.Errorf("lister left (r=%d w=%d) on the Space, full run cost is (r=%d w=%d)",
			got.BlockReads, got.BlockWrites, want.BlockReads, want.BlockWrites)
	}
}

// TestParallelWorkerStatsBreakdown: worker stats must be non-trivial and
// sum (with the coordinator's) to the same totals at every worker count —
// the property Result.WorkerStats exposes publicly.
func TestParallelWorkerStatsBreakdown(t *testing.T) {
	el := graph.GNM(300, 3000, 9)
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	sp := extmem.NewSpace(cfg)
	g := graph.CanonicalizeList(sp, el)
	var n uint64
	_, ws, _ := CacheAwareParallel(sp, g, 4, Exec{Workers: 3}, graph.Counter(&n))
	if len(ws) == 0 {
		t.Fatal("no worker stats returned")
	}
	var reads uint64
	for _, w := range ws {
		reads += w.BlockReads
	}
	if reads == 0 {
		t.Error("workers report zero block reads on an out-of-core input")
	}
}
