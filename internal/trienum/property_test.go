package trienum

import (
	"testing"
	"testing/quick"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// Property: summing Lemma 1 over every vertex counts each triangle three
// times (once per corner).
func TestQuickLemma1SumsToThreeTimesTriangles(t *testing.T) {
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%25 + 4
		m := int(mRaw)%120 + 3
		el := graph.GNM(n, m, seed)
		sp := newSpace()
		g := graph.CanonicalizeList(sp, el)
		var total uint64
		for v := 0; v < g.NumVertices; v++ {
			enumerateContaining(sp, g.Edges, uint32(v), emsort.SortRecords, func(_, _ uint32) {
				total++
			})
		}
		return total == 3*graph.NewOracle(el).Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the kernel is additive over a partition of the pivot set —
// splitting pivots into arbitrary consecutive chunks and summing the
// per-chunk outputs reproduces the full output exactly.
func TestQuickKernelPivotAdditivity(t *testing.T) {
	prop := func(seed uint64, cut uint8) bool {
		el := graph.GNM(40, 250, seed)
		sp := newSpace()
		g := graph.CanonicalizeList(sp, el)
		e := g.Edges.Len()
		if e < 2 {
			return true
		}
		k := int64(cut)%(e-1) + 1
		var parts uint64
		kernel(sp, g.Edges, g.Edges.Slice(0, k), 0, nil, func(_, _, _ uint32) { parts++ })
		kernel(sp, g.Edges, g.Edges.Slice(k, e), 0, nil, func(_, _, _ uint32) { parts++ })
		var whole uint64
		kernel(sp, g.Edges, g.Edges, 0, nil, func(_, _, _ uint32) { whole++ })
		return parts == whole && whole == graph.NewOracle(el).Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the triangle count is invariant under vertex relabeling.
func TestQuickRelabelingInvariance(t *testing.T) {
	prop := func(seed uint64, shift uint16) bool {
		el := graph.GNM(30, 140, seed)
		relabeled := graph.EdgeList{}
		for _, e := range el.Edges {
			relabeled.Add(graph.U(e)+uint32(shift), graph.V(e)+uint32(shift))
		}
		sp1, sp2 := newSpace(), newSpace()
		g1 := graph.CanonicalizeList(sp1, el)
		g2 := graph.CanonicalizeList(sp2, relabeled)
		var n1, n2 uint64
		CacheAware(sp1, g1, 1, graph.Counter(&n1))
		CacheAware(sp2, g2, 1, graph.Counter(&n2))
		return n1 == n2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: removing a vertex's edges removes exactly the Lemma-1
// triangles of that vertex from the graph's total.
func TestQuickRemoveIncidentConsistency(t *testing.T) {
	prop := func(seed uint64, vRaw uint8) bool {
		el := graph.GNM(30, 150, seed)
		sp := newSpace()
		g := graph.CanonicalizeList(sp, el)
		if g.NumVertices == 0 {
			return true
		}
		v := uint32(int(vRaw) % g.NumVertices)
		var through uint64
		enumerateContaining(sp, g.Edges, v, emsort.SortRecords, func(_, _ uint32) { through++ })

		work := sp.Alloc(g.Edges.Len())
		g.Edges.CopyTo(work)
		scratch := sp.Alloc(g.Edges.Len())
		kept := removeIncident(work, scratch, v)
		var after uint64
		kernel(sp, work.Prefix(kept), work.Prefix(kept), 0, nil, func(_, _, _ uint32) { after++ })
		var before uint64
		kernel(sp, g.Edges, g.Edges, 0, nil, func(_, _, _ uint32) { before++ })
		return before == after+through
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the oblivious algorithm emits the same multiset regardless of
// its base-case path — compare small graphs where maxDepth forces base
// cases against the flat kernel.
func TestQuickObliviousMatchesKernel(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 4
		el := graph.GNM(n, n*3, seed)
		sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
		g := graph.CanonicalizeList(sp, el)
		var a, b uint64
		Oblivious(sp, g, seed^0xabc, graph.Counter(&a))
		kernel(sp, g.Edges, g.Edges, 0, nil, func(_, _, _ uint32) { b++ })
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
