package trienum

import (
	"context"
	"errors"
	"testing"

	"repro/internal/extmem"
	"repro/internal/graph"
)

// TestSequentialCtxCancellation mirrors TestParallelCtxCancellation for
// the sequential algorithms: cancelling the context from inside emit
// stops the run at its next pass/recursion boundary — the emitted prefix
// is shorter than the full stream — and returns context.Canceled; a
// pre-cancelled context never starts the run; and the Space is reusable
// after a cancelled run.
func TestSequentialCtxCancellation(t *testing.T) {
	el := graph.Clique(60) // 34220 triangles across many passes/chunks
	cfg := extmem.Config{M: 1 << 8, B: 1 << 4}
	sp := extmem.NewSpace(cfg)
	g := graph.CanonicalizeList(sp, el)

	engines := map[string]func(ctx context.Context, emit graph.Emit) error{
		"oblivious": func(ctx context.Context, emit graph.Emit) error {
			_, err := ObliviousCtx(ctx, sp, g, 5, emit)
			return err
		},
		"hutaochung": func(ctx context.Context, emit graph.Emit) error {
			_, err := HuTaoChungCtx(ctx, sp, g, emit)
			return err
		},
		"sortmerge": func(ctx context.Context, emit graph.Emit) error {
			_, err := DementievCtx(ctx, sp, g, emit)
			return err
		},
	}
	for name, run := range engines {
		var full uint64
		if err := run(nil, graph.Counter(&full)); err != nil {
			t.Fatalf("%s: full run: %v", name, err)
		}
		if full == 0 {
			t.Fatalf("%s: degenerate full run", name)
		}

		ctx, cancel := context.WithCancel(context.Background())
		var seen uint64
		err := run(ctx, func(_, _, _ uint32) {
			seen++
			if seen == 50 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancelled run returned %v, want context.Canceled", name, err)
		}
		if seen == 0 || seen >= full {
			t.Errorf("%s: cancelled run emitted %d of %d — not an early stop", name, seen, full)
		}

		// Pre-cancelled contexts never start the run.
		var n uint64
		if err := run(ctx, graph.Counter(&n)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled run returned %v", name, err)
		}
		if n != 0 {
			t.Errorf("%s: pre-cancelled run emitted %d triangles", name, n)
		}

		// The Space is reusable after a cancelled run.
		var again uint64
		if err := run(nil, graph.Counter(&again)); err != nil {
			t.Fatalf("%s: run after cancellation: %v", name, err)
		}
		if again != full {
			t.Errorf("%s: run after cancellation found %d triangles, want %d", name, again, full)
		}
	}
}
