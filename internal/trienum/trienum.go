// Package trienum implements the triangle-enumeration algorithms of
//
//	Rasmus Pagh and Francesco Silvestri,
//	"The Input/Output Complexity of Triangle Enumeration", PODS 2014.
//
// Three top-level algorithms are provided, all asymptotically I/O-optimal
// at O(E^1.5/(sqrt(M)·B)):
//
//   - CacheAware (Section 2): randomized, color-codes the low-degree
//     subgraph with c = sqrt(E/M) colors from a 4-wise independent family
//     and solves c^3 color-triple subproblems with the Hu–Tao–Chung kernel.
//   - Oblivious (Section 3): randomized and cache-oblivious; recursively
//     refines a vertex coloring one random bit per level, solving eight
//     (c0,c1,c2)-enumeration subproblems per node.
//   - Deterministic (Section 4): derandomizes CacheAware by building the
//     coloring greedily, one bit per level, from a small-bias family,
//     maintaining the paper's potential invariant (4).
//
// All algorithms take a graph in canonical form (graph.Canonical) and emit
// each triangle exactly once, in rank space, with v1 < v2 < v3, at a moment
// when all three edges are resident in simulated internal memory.
package trienum

import (
	"math"

	"repro/internal/emio"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// Info reports what an enumeration run did, for experiments and tests.
type Info struct {
	// Triangles is the number of emit calls.
	Triangles uint64
	// HighDegVertices is the number of vertices handled by the Lemma 1
	// step (global step 1 for the cache-aware algorithms, summed over all
	// recursion nodes for the cache-oblivious one).
	HighDegVertices int
	// Colors is the number of colors c used by the flat algorithms.
	Colors int
	// X is the realized partition potential X_ξ = Σ C(|E_τ1,τ2}|, 2); the
	// quantity Lemma 3 bounds in expectation by E·M.
	X uint64
	// Subproblems counts kernel invocations (flat algorithms) or recursion
	// nodes (oblivious).
	Subproblems int
	// BaseCases counts Dementiev base-case invocations (oblivious only).
	BaseCases int
	// Levels records, for the deterministic algorithm, the potential value
	// of the chosen coloring at each greedy level.
	Levels []LevelInfo
	// Recursion records, for the cache-oblivious algorithm, the
	// per-level subproblem population — the quantities Lemmas 4 and 5
	// bound (expected size E/4^i over 8^i subproblems, total E·2^i).
	Recursion []RecursionLevel
}

// RecursionLevel aggregates the subproblems at one depth of the
// cache-oblivious recursion.
type RecursionLevel struct {
	Level       int
	Subproblems int
	TotalEdges  int64
	MaxEdges    int64
}

// LevelInfo records one greedy derandomization level.
type LevelInfo struct {
	// Candidate is the index of the chosen family member.
	Candidate int
	// Potential is 4^i·X_nonadj/c² + 2^i·X_adj/c for the chosen coloring.
	Potential float64
	// Budget is the invariant ceiling (1+α)^i·E·M it must stay under.
	Budget float64
}

// enumerateContaining implements Lemma 1: enumerate all triangles of the
// edge set seg that contain vertex v, in O(sort(E)) I/Os. Edges need not
// be sorted. Each found triangle {v, u, w} is passed to found with
// (u, w) = the non-v edge's endpoints (u < w in rank order); the caller
// adds v and applies any color filter before emitting.
func enumerateContaining(sp *extmem.Space, seg extmem.Extent, v uint32, sorter graph.SortFunc, found func(u, w uint32)) {
	n := seg.Len()
	if n == 0 {
		return
	}
	mark := sp.Mark()
	defer sp.Release(mark)

	// Γ_v: the neighbors of v.
	gammaBuf := sp.Alloc(n)
	gw := emio.NewWriter(gammaBuf)
	emio.ForEach(seg, func(_ int64, e extmem.Word) {
		u, w := graph.U(e), graph.V(e)
		if u == v {
			gw.Append(extmem.Word(w))
		} else if w == v {
			gw.Append(extmem.Word(u))
		}
	})
	gamma := gw.Written()
	if gamma.Len() < 2 {
		return
	}
	sorter(gamma, 1, emsort.Identity)

	// E_v: edges whose smaller endpoint lies in Γ_v. Work on a sorted copy
	// of seg (sorted packed edges are sorted by smaller endpoint).
	edges := sp.Alloc(n)
	seg.CopyTo(edges)
	sorter(edges, 1, emsort.Identity)
	ev := sp.Alloc(n)
	evw := emio.NewWriter(ev)
	mergeByKey(edges, gamma, func(e extmem.Word) uint64 { return uint64(graph.U(e)) },
		func(e extmem.Word) { evw.Append(e) })
	evEdges := evw.Written()

	// E'_v: of those, edges whose larger endpoint also lies in Γ_v. Each
	// such edge {u, w} closes the triangle {v, u, w}.
	sorter(evEdges, 1, func(e extmem.Word) uint64 { return uint64(graph.V(e)) })
	mergeByKey(evEdges, gamma, func(e extmem.Word) uint64 { return uint64(graph.V(e)) },
		func(e extmem.Word) { found(graph.U(e), graph.V(e)) })
}

// mergeByKey scans extent a (sorted by key) against the sorted unique
// extent b, invoking onMatch for every record of a whose key appears in b.
func mergeByKey(a, b extmem.Extent, key func(extmem.Word) uint64, onMatch func(extmem.Word)) {
	var i, j int64
	na, nb := a.Len(), b.Len()
	for i < na && j < nb {
		wa := a.Read(i)
		ka := key(wa)
		kb := uint64(b.Read(j))
		switch {
		case ka < kb:
			i++
		case ka > kb:
			j++
		default:
			onMatch(wa)
			i++
		}
	}
}

// removeIncident compacts seg, dropping all edges incident to v, using
// scratch as temporary storage. It returns the new length.
func removeIncident(seg, scratch extmem.Extent, v uint32) int64 {
	w := emio.NewWriter(scratch)
	kept := emio.Filter(w, seg, func(e extmem.Word) bool {
		return graph.U(e) != v && graph.V(e) != v
	})
	emio.Copy(seg.Prefix(kept), scratch.Prefix(kept))
	return kept
}

// sortRecordsFunc adapts emsort.SortRecords to graph.SortFunc.
var sortRecordsFunc graph.SortFunc = emsort.SortRecords

// ceilSqrt returns the smallest integer c >= sqrt(x).
func ceilSqrt(x float64) int {
	if x <= 1 {
		return 1
	}
	c := int(math.Ceil(math.Sqrt(x)))
	for float64(c-1)*float64(c-1) >= x {
		c--
	}
	return c
}

// countingEmit wraps emit, counting into info.Triangles.
func countingEmit(info *Info, emit graph.Emit) graph.Emit {
	return func(a, b, c uint32) {
		info.Triangles++
		emit(a, b, c)
	}
}
