package trienum

import (
	"testing"
	"testing/quick"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

func newSpace() *extmem.Space {
	return extmem.NewSpace(extmem.Config{M: 1 << 12, B: 1 << 6})
}

func smallSpace() *extmem.Space {
	// Deliberately tiny memory to stress chunking and recursion paths.
	return extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
}

// runAlg runs the named algorithm and returns emitted triples in original
// vertex ids plus the Info.
type algorithm struct {
	name string
	run  func(sp *extmem.Space, g graph.Canonical, emit graph.Emit) Info
}

var algorithms = []algorithm{
	{"cacheaware", func(sp *extmem.Space, g graph.Canonical, emit graph.Emit) Info {
		return CacheAware(sp, g, 12345, emit)
	}},
	{"oblivious", func(sp *extmem.Space, g graph.Canonical, emit graph.Emit) Info {
		return Oblivious(sp, g, 12345, emit)
	}},
	{"deterministic", func(sp *extmem.Space, g graph.Canonical, emit graph.Emit) Info {
		info, err := Deterministic(sp, g, 0, emit)
		if err != nil {
			panic(err)
		}
		return info
	}},
}

func enumerate(t *testing.T, sp *extmem.Space, el graph.EdgeList, alg algorithm) ([]graph.Triple, Info) {
	t.Helper()
	g := graph.CanonicalizeList(sp, el)
	var got []graph.Triple
	info := alg.run(sp, g, func(a, b, c uint32) {
		got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
	})
	return got, info
}

func checkAgainstOracle(t *testing.T, name string, el graph.EdgeList, sp *extmem.Space) {
	t.Helper()
	oracle := graph.NewOracle(el)
	for _, alg := range algorithms {
		got, info := enumerate(t, sp, el, alg)
		if ok, diag := oracle.SameSet(got); !ok {
			t.Errorf("%s/%s: wrong triangle set (want %d, got %d): %s",
				name, alg.name, oracle.Count(), len(got), diag)
		}
		if info.Triangles != uint64(len(got)) {
			t.Errorf("%s/%s: Info.Triangles=%d but %d emits", name, alg.name, info.Triangles, len(got))
		}
	}
}

func TestAlgorithmsOnWorkloads(t *testing.T) {
	workloads := map[string]graph.EdgeList{
		"empty":         {},
		"singleEdge":    {NumVertices: 2, Edges: []uint64{graph.Pack(0, 1)}},
		"triangle":      graph.Clique(3),
		"k4":            graph.Clique(4),
		"k10":           graph.Clique(10),
		"k20":           graph.Clique(20),
		"path":          graph.Grid(1, 20),
		"grid":          graph.Grid(7, 8),
		"bipartite":     graph.BipartiteRandom(20, 20, 150, 3),
		"gnmSparse":     graph.GNM(100, 300, 5),
		"gnmDense":      graph.GNM(40, 500, 6),
		"powerlaw":      graph.PowerLaw(120, 500, 2.2, 7),
		"rmat":          graph.RMAT(7, 400, 8),
		"sells":         graph.Sells(15, 8, 8, 3, 0.4, 9),
		"planted":       graph.PlantedClique(80, 150, 9, 10),
		"twoCliques":    twoCliques(8, 8),
		"star":          star(30),
		"wheel":         wheel(16),
		"cliquePlusIso": cliquePlusPath(9),
	}
	for name, el := range workloads {
		t.Run(name, func(t *testing.T) {
			checkAgainstOracle(t, name, el, newSpace())
		})
	}
}

func TestAlgorithmsUnderTinyMemory(t *testing.T) {
	// With M=256 words and B=16, E >> M: forces many colors, kernel
	// chunking, deep oblivious recursion.
	workloads := map[string]graph.EdgeList{
		"k24":      graph.Clique(24),
		"gnm":      graph.GNM(150, 1200, 11),
		"powerlaw": graph.PowerLaw(200, 1500, 2.1, 12),
		"planted":  graph.PlantedClique(120, 600, 12, 13),
	}
	for name, el := range workloads {
		t.Run(name, func(t *testing.T) {
			checkAgainstOracle(t, name, el, smallSpace())
		})
	}
}

func TestSeedIndependence(t *testing.T) {
	// Different seeds must give the same triangle set for the randomized
	// algorithms.
	el := graph.GNM(80, 500, 20)
	oracle := graph.NewOracle(el)
	for _, seed := range []uint64{1, 2, 99999, ^uint64(0)} {
		for _, run := range []func(sp *extmem.Space, g graph.Canonical, e graph.Emit) Info{
			func(sp *extmem.Space, g graph.Canonical, e graph.Emit) Info { return CacheAware(sp, g, seed, e) },
			func(sp *extmem.Space, g graph.Canonical, e graph.Emit) Info { return Oblivious(sp, g, seed, e) },
		} {
			sp := newSpace()
			g := graph.CanonicalizeList(sp, el)
			var got []graph.Triple
			run(sp, g, func(a, b, c uint32) {
				got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
			})
			if ok, diag := oracle.SameSet(got); !ok {
				t.Errorf("seed %d: %s", seed, diag)
			}
		}
	}
}

func TestQuickRandomGraphs(t *testing.T) {
	// Property: on arbitrary small random graphs every algorithm agrees
	// with the oracle exactly.
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%40 + 4
		m := int(mRaw)%300 + 1
		el := graph.GNM(n, m, seed)
		oracle := graph.NewOracle(el)
		for _, alg := range algorithms {
			sp := newSpace()
			g := graph.CanonicalizeList(sp, el)
			var got []graph.Triple
			alg.run(sp, g, func(a, b, c uint32) {
				got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
			})
			if ok, _ := oracle.SameSet(got); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEmitOrderingInvariant(t *testing.T) {
	// Every emission must satisfy v1 < v2 < v3 in rank space.
	el := graph.PlantedClique(60, 200, 10, 3)
	for _, alg := range algorithms {
		sp := newSpace()
		g := graph.CanonicalizeList(sp, el)
		bad := 0
		alg.run(sp, g, func(a, b, c uint32) {
			if !(a < b && b < c) {
				bad++
			}
		})
		if bad > 0 {
			t.Errorf("%s: %d emissions violated v1<v2<v3", alg.name, bad)
		}
	}
}

func TestLemma1EnumerateContaining(t *testing.T) {
	// All triangles through a fixed vertex of K6.
	el := graph.Clique(6)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	var got []graph.Triple
	enumerateContaining(sp, g.Edges, 5, emsort.SortRecords, func(u, w uint32) {
		got = append(got, graph.MakeTriple(5, u, w))
	})
	if len(got) != 10 { // C(5,2) triangles through any vertex of K6
		t.Errorf("got %d triangles through vertex, want 10", len(got))
	}
	seen := map[graph.Triple]bool{}
	for _, tr := range got {
		if seen[tr] {
			t.Errorf("duplicate %v", tr)
		}
		seen[tr] = true
	}
}

func TestLemma1NoFalsePositives(t *testing.T) {
	// Star graph: no triangles through the center.
	el := star(10)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	center := uint32(g.NumVertices - 1) // highest degree rank is the hub
	count := 0
	enumerateContaining(sp, g.Edges, center, emsort.SortRecords, func(u, w uint32) { count++ })
	if count != 0 {
		t.Errorf("star center produced %d triangles", count)
	}
}

func TestKernelMatchesHuEtAlSemantics(t *testing.T) {
	// With pivots = all edges, the kernel must enumerate every triangle.
	el := graph.GNM(50, 350, 30)
	oracle := graph.NewOracle(el)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	var got []graph.Triple
	kernel(sp, g.Edges, g.Edges, 0, nil, func(a, b, c uint32) {
		got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
	})
	if ok, diag := oracle.SameSet(got); !ok {
		t.Errorf("kernel: %s", diag)
	}
}

func TestKernelPivotRestriction(t *testing.T) {
	// With pivots = a single edge, only triangles with that pivot appear.
	el := graph.Clique(8)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	// Take the last canonical edge {6,7}: as the highest pair it is the
	// pivot of exactly 6 triangles of K8.
	pivot := g.Edges.Slice(g.Edges.Len()-1, g.Edges.Len())
	pe := pivot.Read(0)
	var got []graph.Triple
	kernel(sp, g.Edges, pivot, 0, nil, func(a, b, c uint32) {
		got = append(got, graph.Triple{V1: a, V2: b, V3: c})
	})
	if len(got) != 6 {
		t.Fatalf("pivot restriction: got %d triangles, want 6", len(got))
	}
	for _, tr := range got {
		if tr.V2 != graph.U(pe) || tr.V3 != graph.V(pe) {
			t.Errorf("triangle %v does not have pivot %d-%d", tr, graph.U(pe), graph.V(pe))
		}
	}
}

func TestKernelTinyChunks(t *testing.T) {
	// Force many chunk iterations (memEdges=4).
	el := graph.Clique(12)
	oracle := graph.NewOracle(el)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	var got []graph.Triple
	kernel(sp, g.Edges, g.Edges, 4, nil, func(a, b, c uint32) {
		got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
	})
	if ok, diag := oracle.SameSet(got); !ok {
		t.Errorf("chunked kernel: %s", diag)
	}
}

func TestDementievSortMerge(t *testing.T) {
	for _, name := range []string{"gnm", "clique", "grid"} {
		var el graph.EdgeList
		switch name {
		case "gnm":
			el = graph.GNM(60, 400, 40)
		case "clique":
			el = graph.Clique(15)
		case "grid":
			el = graph.Grid(6, 6)
		}
		oracle := graph.NewOracle(el)
		sp := newSpace()
		g := graph.CanonicalizeList(sp, el)
		var got []graph.Triple
		DementievSortMerge(sp, g.Edges, emsort.SortRecords, nil, func(a, b, c uint32) {
			got = append(got, graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c]))
		})
		if ok, diag := oracle.SameSet(got); !ok {
			t.Errorf("%s: %s", name, diag)
		}
	}
}

func TestDementievFilter(t *testing.T) {
	el := graph.Clique(10)
	sp := newSpace()
	g := graph.CanonicalizeList(sp, el)
	count := 0
	DementievSortMerge(sp, g.Edges, emsort.SortRecords,
		func(a, b, c uint32) bool { return a == 0 }, // only cone rank 0
		func(a, b, c uint32) { count++ })
	if count != 36 { // C(9,2)
		t.Errorf("filtered count %d, want 36", count)
	}
}

func TestDeterministicInvariantRecorded(t *testing.T) {
	// Force multiple greedy levels: E/M = 2^6 -> c = 8, 3 levels.
	el := graph.GNM(400, 4096, 50)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 6, B: 1 << 3})
	g := graph.CanonicalizeList(sp, el)
	var n uint64
	info, err := Deterministic(sp, g, 0, graph.Counter(&n))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Levels) == 0 {
		t.Fatal("no greedy levels recorded despite E >> M")
	}
	for i, lv := range info.Levels {
		if lv.Potential > lv.Budget {
			t.Errorf("level %d: potential %.0f exceeds budget %.0f", i, lv.Potential, lv.Budget)
		}
	}
	// X_ξ of the final coloring must satisfy the theorem's X < e·E·M.
	e := float64(g.Edges.Len())
	m := float64(sp.Config().M)
	if float64(info.X) > 2.72*e*m {
		t.Errorf("final X=%d exceeds e·E·M=%.0f", info.X, 2.72*e*m)
	}
	if info.Triangles != graph.NewOracle(el).Count() {
		t.Errorf("triangles %d, oracle %d", info.Triangles, graph.NewOracle(el).Count())
	}
}

func TestCacheAwareInfoFields(t *testing.T) {
	el := graph.PlantedClique(100, 800, 14, 17)
	sp := extmem.NewSpace(extmem.Config{M: 1 << 8, B: 1 << 4})
	g := graph.CanonicalizeList(sp, el)
	var n uint64
	info := CacheAware(sp, g, 7, graph.Counter(&n))
	if info.Colors < 2 {
		t.Errorf("expected multiple colors with E=%d >> M=%d, got c=%d", g.Edges.Len(), sp.Config().M, info.Colors)
	}
	if info.Subproblems == 0 {
		t.Error("no subproblems recorded")
	}
	if info.Triangles != n {
		t.Error("count mismatch")
	}
}

func TestObliviousInfoFields(t *testing.T) {
	el := graph.GNM(120, 900, 21)
	sp := smallSpace()
	g := graph.CanonicalizeList(sp, el)
	var n uint64
	info := Oblivious(sp, g, 3, graph.Counter(&n))
	if info.Subproblems < 8 {
		t.Errorf("recursion did not branch: %d subproblems", info.Subproblems)
	}
	if info.BaseCases == 0 {
		t.Error("no base cases recorded")
	}
}

// Helper graph shapes.

func twoCliques(a, b int) graph.EdgeList {
	var el graph.EdgeList
	for u := 0; u < a; u++ {
		for v := u + 1; v < a; v++ {
			el.Add(uint32(u), uint32(v))
		}
	}
	off := a
	for u := 0; u < b; u++ {
		for v := u + 1; v < b; v++ {
			el.Add(uint32(off+u), uint32(off+v))
		}
	}
	el.Add(0, uint32(off)) // bridge, closes no triangle
	return el
}

func star(n int) graph.EdgeList {
	var el graph.EdgeList
	for i := 1; i <= n; i++ {
		el.Add(0, uint32(i))
	}
	return el
}

func wheel(n int) graph.EdgeList {
	var el graph.EdgeList
	for i := 1; i <= n; i++ {
		el.Add(0, uint32(i))
		next := i%n + 1
		el.Add(uint32(i), uint32(next))
	}
	return el
}

func cliquePlusPath(k int) graph.EdgeList {
	el := graph.Clique(k)
	for i := 0; i < 5; i++ {
		el.Add(uint32(k+i), uint32(k+i+1))
	}
	return el
}
