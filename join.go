package repro

import (
	"fmt"

	"repro/internal/join"
)

// The public face of the database application that motivates the paper
// (Section 1): a ternary relation in 5th normal form stored as its three
// binary projections is reconstructed by the three-way join
// SB ⋈ BT ⋈ ST, which is exactly triangle enumeration on the union of
// the three bipartite graphs.

// JoinPair is one tuple of a binary relation.
type JoinPair struct{ A, B string }

// JoinRow is one tuple of the reconstructed ternary relation.
type JoinRow struct{ Salesperson, Brand, ProductType string }

// JoinDecomposition holds the three binary projections of a 5NF-
// decomposed ternary relation Sells(salesperson, brand, productType).
type JoinDecomposition struct {
	SB []JoinPair // (salesperson, brand)
	BT []JoinPair // (brand, productType)
	ST []JoinPair // (salesperson, productType)
}

// JoinOptions configures JoinDecomposition.Join.
type JoinOptions struct {
	// Algorithm selects the triangle-enumeration algorithm driving the
	// join: CacheAware (default), CacheOblivious, Deterministic, or
	// HuTaoChung. The baselines are not offered here; they exist to be
	// measured against, not to serve queries.
	Algorithm Algorithm
	// MemoryWords and BlockWords describe the simulated machine; zero
	// values default to 1<<16 and 1<<7.
	MemoryWords int
	BlockWords  int
	// Seed drives the randomized algorithms.
	Seed uint64
	// Workers is the worker count for the parallel-capable algorithms
	// (0 = one per CPU); the reconstructed rows and aggregated I/O
	// statistics are identical at every value.
	Workers int
	// Native runs the join's triangle enumeration natively on the
	// canonical image: same reconstructed rows, zero I/O statistics.
	// See Options.Native.
	Native bool
}

// JoinStats reports the I/O work of a join.
type JoinStats struct {
	Rows        uint64
	IOs         uint64
	BlockReads  uint64
	BlockWrites uint64
}

// Join computes SB ⋈ BT ⋈ ST, calling visit once per reconstructed row
// (in no particular order), and returns I/O statistics of the underlying
// triangle enumeration. The join runs as a query session of a Graph
// handle built from the encoded tripartite graph — the same machinery
// that serves Triangles — so repeated joins of different decompositions
// (or the same one) may run concurrently from different goroutines.
func (d JoinDecomposition) Join(opt JoinOptions, visit func(JoinRow)) (JoinStats, error) {
	switch opt.Algorithm {
	case CacheAware, CacheOblivious, Deterministic, HuTaoChung:
	default:
		return JoinStats{}, fmt.Errorf("repro: join does not support algorithm %v", opt.Algorithm)
	}
	dec := join.Decomposition{SB: toJoinPairs(d.SB), BT: toJoinPairs(d.BT), ST: toJoinPairs(d.ST)}
	enc := dec.Encode()
	parallelAlgo := opt.Algorithm == CacheAware || opt.Algorithm == CacheOblivious || opt.Algorithm == Deterministic
	g, err := Build(FromEdges(enc.Edges), Options{
		MemoryWords:     opt.MemoryWords,
		BlockWords:      opt.BlockWords,
		Workers:         opt.Workers,
		Native:          opt.Native,
		SequentialCanon: !parallelAlgo,
	})
	if err != nil {
		return JoinStats{}, err
	}
	defer g.Close()
	res, err := g.TrianglesFunc(nil, Query{
		Algorithm: opt.Algorithm,
		Seed:      opt.Seed,
		Workers:   opt.Workers,
	}, func(a, b, c uint32) {
		if visit != nil {
			r := enc.Row(a, b, c)
			visit(JoinRow{Salesperson: r.Salesperson, Brand: r.Brand, ProductType: r.ProductType})
		}
	})
	if err != nil {
		return JoinStats{}, err
	}
	return JoinStats{
		Rows:        res.Matches,
		IOs:         res.Stats.IOs(),
		BlockReads:  res.Stats.BlockReads,
		BlockWrites: res.Stats.BlockWrites,
	}, nil
}

// DecomposeJoinRows projects a ternary relation onto its three binary
// projections, deduplicating pairs. If the relation is in 5th normal
// form, Join(DecomposeJoinRows(R)) reconstructs R exactly.
func DecomposeJoinRows(rows []JoinRow) JoinDecomposition {
	in := make([]join.Row, len(rows))
	for i, r := range rows {
		in[i] = join.Row{Salesperson: r.Salesperson, Brand: r.Brand, ProductType: r.ProductType}
	}
	dec := join.Decompose(in)
	return JoinDecomposition{SB: fromJoinPairs(dec.SB), BT: fromJoinPairs(dec.BT), ST: fromJoinPairs(dec.ST)}
}

func toJoinPairs(ps []JoinPair) []join.Pair {
	out := make([]join.Pair, len(ps))
	for i, p := range ps {
		out[i] = join.Pair{A: p.A, B: p.B}
	}
	return out
}

func fromJoinPairs(ps []join.Pair) []JoinPair {
	out := make([]JoinPair, len(ps))
	for i, p := range ps {
		out[i] = JoinPair{A: p.A, B: p.B}
	}
	return out
}
