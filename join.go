package repro

import (
	"fmt"

	"repro/internal/join"
)

// The public face of the database application that motivates the paper
// (Section 1): a ternary relation in 5th normal form stored as its three
// binary projections is reconstructed by the three-way join
// SB ⋈ BT ⋈ ST, which is exactly triangle enumeration on the union of
// the three bipartite graphs.

// JoinPair is one tuple of a binary relation.
type JoinPair struct{ A, B string }

// JoinRow is one tuple of the reconstructed ternary relation.
type JoinRow struct{ Salesperson, Brand, ProductType string }

// JoinDecomposition holds the three binary projections of a 5NF-
// decomposed ternary relation Sells(salesperson, brand, productType).
type JoinDecomposition struct {
	SB []JoinPair // (salesperson, brand)
	BT []JoinPair // (brand, productType)
	ST []JoinPair // (salesperson, productType)
}

// JoinOptions configures JoinDecomposition.Join.
type JoinOptions struct {
	// Algorithm selects the triangle-enumeration algorithm driving the
	// join: CacheAware (default), CacheOblivious, Deterministic, or
	// HuTaoChung. The baselines are not offered here; they exist to be
	// measured against, not to serve queries.
	Algorithm Algorithm
	// MemoryWords and BlockWords describe the simulated machine; zero
	// values default to 1<<16 and 1<<7.
	MemoryWords int
	BlockWords  int
	// Seed drives the randomized algorithms.
	Seed uint64
}

// JoinStats reports the I/O work of a join.
type JoinStats struct {
	Rows        uint64
	IOs         uint64
	BlockReads  uint64
	BlockWrites uint64
}

// Join computes SB ⋈ BT ⋈ ST, calling visit once per reconstructed row
// (in no particular order), and returns I/O statistics of the underlying
// triangle enumeration.
func (d JoinDecomposition) Join(opt JoinOptions, visit func(JoinRow)) (JoinStats, error) {
	var alg join.Algorithm
	switch opt.Algorithm {
	case CacheAware:
		alg = join.CacheAware
	case CacheOblivious:
		alg = join.CacheOblivious
	case Deterministic:
		alg = join.Deterministic
	case HuTaoChung:
		alg = join.HuTaoChung
	default:
		return JoinStats{}, fmt.Errorf("repro: join does not support algorithm %v", opt.Algorithm)
	}
	dec := join.Decomposition{SB: toJoinPairs(d.SB), BT: toJoinPairs(d.BT), ST: toJoinPairs(d.ST)}
	st, err := dec.Join(join.Options{
		Algorithm:   alg,
		MemoryWords: opt.MemoryWords,
		BlockWords:  opt.BlockWords,
		Seed:        opt.Seed,
	}, func(r join.Row) {
		if visit != nil {
			visit(JoinRow{Salesperson: r.Salesperson, Brand: r.Brand, ProductType: r.ProductType})
		}
	})
	if err != nil {
		return JoinStats{}, err
	}
	return JoinStats{Rows: st.Rows, IOs: st.IOs, BlockReads: st.BlockReads, BlockWrites: st.BlockWrite}, nil
}

// DecomposeJoinRows projects a ternary relation onto its three binary
// projections, deduplicating pairs. If the relation is in 5th normal
// form, Join(DecomposeJoinRows(R)) reconstructs R exactly.
func DecomposeJoinRows(rows []JoinRow) JoinDecomposition {
	in := make([]join.Row, len(rows))
	for i, r := range rows {
		in[i] = join.Row{Salesperson: r.Salesperson, Brand: r.Brand, ProductType: r.ProductType}
	}
	dec := join.Decompose(in)
	return JoinDecomposition{SB: fromJoinPairs(dec.SB), BT: fromJoinPairs(dec.BT), ST: fromJoinPairs(dec.ST)}
}

func toJoinPairs(ps []JoinPair) []join.Pair {
	out := make([]join.Pair, len(ps))
	for i, p := range ps {
		out[i] = join.Pair{A: p.A, B: p.B}
	}
	return out
}

func fromJoinPairs(ps []join.Pair) []JoinPair {
	out := make([]JoinPair, len(ps))
	for i, p := range ps {
		out[i] = JoinPair{A: p.A, B: p.B}
	}
	return out
}
