package repro

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestQueryLimitTriangles: Query.Limit stops a triangle query cleanly
// after N emissions — the delivered stream is a prefix of the unlimited
// run, the partial Result counts exactly N, and no error is reported —
// at Workers 1 and 4, for both a parallel and a sequential algorithm.
func TestQueryLimitTriangles(t *testing.T) {
	g, err := Build(FromSpec("planted:n=200,m=1400,k=12"), Options{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, algo := range []Algorithm{CacheAware, CacheOblivious} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("%v/w%d", algo, workers)
			base := Query{Algorithm: algo, Seed: 9, Workers: workers}
			var full strings.Builder
			fullRes, err := g.TrianglesFunc(nil, base, func(a, b, c uint32) {
				fmt.Fprintf(&full, "%d,%d,%d;", a, b, c)
			})
			if err != nil {
				t.Fatalf("%s: full run: %v", name, err)
			}
			if fullRes.Triangles < 10 {
				t.Fatalf("%s: degenerate workload: %d triangles", name, fullRes.Triangles)
			}

			const limit = 5
			lq := base
			lq.Limit = limit
			var part strings.Builder
			partRes, err := g.TrianglesFunc(nil, lq, func(a, b, c uint32) {
				fmt.Fprintf(&part, "%d,%d,%d;", a, b, c)
			})
			if err != nil {
				t.Fatalf("%s: limited run: %v", name, err)
			}
			if partRes.Triangles != limit || partRes.Matches != limit {
				t.Fatalf("%s: limited Result counts %d/%d, want %d", name, partRes.Triangles, partRes.Matches, limit)
			}
			if !strings.HasPrefix(full.String(), part.String()) || strings.Count(part.String(), ";") != limit {
				t.Fatalf("%s: limited emissions are not the %d-prefix of the full stream", name, limit)
			}

			// A limit the query never reaches changes nothing.
			uq := base
			uq.Limit = fullRes.Triangles + 100
			unRes, err := g.TrianglesFunc(nil, uq, nil)
			if err != nil {
				t.Fatalf("%s: under-limit run: %v", name, err)
			}
			if unRes.Triangles != fullRes.Triangles {
				t.Fatalf("%s: under-limit run counted %d, want %d", name, unRes.Triangles, fullRes.Triangles)
			}

			// Limit exactly at the total: full stream, clean finish.
			eq := base
			eq.Limit = fullRes.Triangles
			eqRes, err := g.TrianglesFunc(nil, eq, nil)
			if err != nil {
				t.Fatalf("%s: exact-limit run: %v", name, err)
			}
			if eqRes.Triangles != fullRes.Triangles {
				t.Fatalf("%s: exact-limit run counted %d, want %d", name, eqRes.Triangles, fullRes.Triangles)
			}
		}
	}

	// A limit-stopped Deterministic run is a success and must report its
	// real worker cap, like the unlimited success path does.
	dres, err := g.TrianglesFunc(nil, Query{Algorithm: Deterministic, Workers: 4, Limit: 3}, nil)
	if err != nil {
		t.Fatalf("limited deterministic run: %v", err)
	}
	if dres.Triangles != 3 || dres.Workers != 4 {
		t.Fatalf("limited deterministic run: Triangles=%d Workers=%d, want 3/4", dres.Triangles, dres.Workers)
	}
}

// TestQueryLimitIterators: the iterator forms end cleanly after Limit
// elements (no error element), and Query.Result carries the partial
// counts.
func TestQueryLimitIterators(t *testing.T) {
	g, err := Build(FromSpec("planted:n=150,m=1000,k=12"), Options{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, workers := range []int{1, 4} {
		var res Result
		n := 0
		for _, err := range g.Triangles(context.Background(), Query{Seed: 3, Workers: workers, Limit: 4, Result: &res}) {
			if err != nil {
				t.Fatalf("w%d: iterator yielded error: %v", workers, err)
			}
			n++
		}
		if n != 4 || res.Matches != 4 {
			t.Fatalf("w%d: iterator yielded %d elements, Result.Matches=%d, want 4", workers, n, res.Matches)
		}

		n = 0
		for _, err := range g.Cliques(nil, 4, Query{Seed: 3, Workers: workers, Limit: 3}) {
			if err != nil {
				t.Fatalf("w%d: clique iterator yielded error: %v", workers, err)
			}
			n++
		}
		if n != 3 {
			t.Fatalf("w%d: clique iterator yielded %d elements, want 3", workers, n)
		}
	}
}

// TestQueryLimitSubgraph: Limit applies to the callback forms of Cliques
// and Match, counting delivered emissions (prefix of the unlimited
// stream) and finishing without error.
func TestQueryLimitSubgraph(t *testing.T) {
	g, err := Build(FromSpec("planted:n=150,m=1000,k=12"), Options{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, workers := range []int{1, 4} {
		var full strings.Builder
		fullRes, err := g.CliquesFunc(nil, 4, Query{Seed: 5, Workers: workers}, func(c []uint32) {
			fmt.Fprintf(&full, "%v;", c)
		})
		if err != nil {
			t.Fatal(err)
		}
		if fullRes.Matches < 4 {
			t.Fatalf("degenerate workload: %d cliques", fullRes.Matches)
		}
		var part strings.Builder
		partRes, err := g.CliquesFunc(nil, 4, Query{Seed: 5, Workers: workers, Limit: 2}, func(c []uint32) {
			fmt.Fprintf(&part, "%v;", c)
		})
		if err != nil {
			t.Fatalf("limited cliques: %v", err)
		}
		if partRes.Matches != 2 || !strings.HasPrefix(full.String(), part.String()) {
			t.Fatalf("w%d: limited cliques: Matches=%d, prefix=%v", workers, partRes.Matches, strings.HasPrefix(full.String(), part.String()))
		}

		mRes, err := g.MatchFunc(nil, PatternDiamond, Query{Seed: 5, Workers: workers, Limit: 3}, nil)
		if err != nil {
			t.Fatalf("limited match: %v", err)
		}
		if mRes.Matches != 3 {
			t.Fatalf("w%d: limited match counted %d, want 3", workers, mRes.Matches)
		}
	}
}

// TestQueryLimitRespectsCallerCancellation: a caller-cancelled context
// still surfaces its error even when a limit is set.
func TestQueryLimitRespectsCallerCancellation(t *testing.T) {
	g, err := Build(FromSpec("clique:n=30"), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.TrianglesFunc(ctx, Query{Limit: 1000000}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled limited query: %v, want context.Canceled", err)
	}
}
