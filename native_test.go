package repro

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// The native-execution oracle: for every query kind, native execution
// (Options.Native / Query.Mode) must reproduce the simulated run's
// emission stream byte for byte — same decomposition, same order — at
// every worker count, memory- and disk-backed. The one documented
// divergence is the accounting: a native run reports zero Stats and nil
// WorkerStats, because the block-transfer bookkeeping is compiled out of
// its hot path.

// nativeQuerySpec is one query kind driven through both execution modes.
type nativeQuerySpec struct {
	name string
	run  func(g *Graph, mode ExecMode, workers int) (string, Result, error)
}

func nativeSuite() []nativeQuerySpec {
	var specs []nativeQuerySpec
	for _, alg := range Algorithms() {
		specs = append(specs, nativeQuerySpec{
			name: "triangles/" + alg.String(),
			run: func(g *Graph, mode ExecMode, workers int) (string, Result, error) {
				var b []byte
				res, err := g.TrianglesFunc(nil, Query{Algorithm: alg, Seed: 8, Mode: mode, Workers: workers}, func(x, y, z uint32) {
					b = fmt.Appendf(b, "%d %d %d;", x, y, z)
				})
				return string(b), res, err
			},
		})
	}
	specs = append(specs,
		nativeQuerySpec{name: "cliques/k=4", run: func(g *Graph, mode ExecMode, workers int) (string, Result, error) {
			var b []byte
			res, err := g.CliquesFunc(nil, 4, Query{Seed: 5, Mode: mode, Workers: workers}, func(c []uint32) {
				b = fmt.Appendf(b, "%v;", c)
			})
			return string(b), res, err
		}},
		nativeQuerySpec{name: "match/diamond", run: func(g *Graph, mode ExecMode, workers int) (string, Result, error) {
			var b []byte
			res, err := g.MatchFunc(nil, PatternDiamond, Query{Seed: 11, Mode: mode, Workers: workers}, func(m []uint32) {
				b = fmt.Appendf(b, "%v;", m)
			})
			return string(b), res, err
		}},
	)
	return specs
}

// TestNativeMatchesSimulated is the cross-check contract of the native
// backend, pinned at Workers 1 and 4 on both backends for every query
// kind.
func TestNativeMatchesSimulated(t *testing.T) {
	edges, err := Generate("powerlaw:n=400,m=3000,beta=2.1", 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"mem", "disk"} {
		opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5}
		if backend == "disk" {
			opts.DiskPath = filepath.Join(t.TempDir(), "native.img")
		}
		g, err := Build(FromEdges(edges), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			for _, spec := range nativeSuite() {
				name := fmt.Sprintf("%s/%s/w%d", backend, spec.name, workers)
				simStream, simRes, err := spec.run(g, ModeSimulated, workers)
				if err != nil {
					t.Fatalf("%s simulated: %v", name, err)
				}
				natStream, natRes, err := spec.run(g, ModeNative, workers)
				if err != nil {
					t.Fatalf("%s native: %v", name, err)
				}
				if natStream != simStream {
					t.Errorf("%s: native emission differs from simulated", name)
				}
				if natRes.Stats != (IOStats{}) {
					t.Errorf("%s: native Stats not zero: %+v", name, natRes.Stats)
				}
				if natRes.WorkerStats != nil {
					t.Errorf("%s: native WorkerStats not nil: %d entries", name, len(natRes.WorkerStats))
				}
				// Everything but the accounting must agree.
				natRes.Stats, simRes.Stats = IOStats{}, IOStats{}
				natRes.WorkerStats, simRes.WorkerStats = nil, nil
				if !reflect.DeepEqual(natRes, simRes) {
					t.Errorf("%s: Results differ beyond accounting:\nnative:    %+v\nsimulated: %+v", name, natRes, simRes)
				}
			}
		}
		g.Close()
	}
}

// TestNativeModeResolution pins the Options.Native default and its
// per-query override: ModeAuto inherits the handle's mode, ModeSimulated
// forces the faithful path back on (with its full accounting), and the
// emission stream never depends on the choice.
func TestNativeModeResolution(t *testing.T) {
	edges, err := Generate("gnm:n=200,m=1500", 9)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Native: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	count := func(mode ExecMode) Result {
		res, err := g.TrianglesFunc(nil, Query{Seed: 2, Mode: mode}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	auto, sim := count(ModeAuto), count(ModeSimulated)
	if auto.Stats != (IOStats{}) {
		t.Errorf("ModeAuto on a Native handle should run natively, got Stats %+v", auto.Stats)
	}
	if sim.Stats == (IOStats{}) {
		t.Error("ModeSimulated override reported zero Stats")
	}
	if auto.Triangles != sim.Triangles {
		t.Errorf("triangle counts differ across modes: %d vs %d", auto.Triangles, sim.Triangles)
	}
}

// TestNativeSubscribe pins the standing-query side of the contract: a
// native subscription delivers ChangeSets with exactly the simulated
// subscription's Added/Removed tuples and metadata, with zero Stats.
func TestNativeSubscribe(t *testing.T) {
	g, err := Build(FromSpec("gnm:n=120,m=900"), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sim, err := g.Subscribe(nil, Query{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	nat, err := g.Subscribe(nil, Query{Workers: 2, Mode: ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	defer nat.Close()

	deltas := []Delta{
		{Add: []Edge{{1, 2}, {2, 3}, {1, 3}, {3, 4}}},
		{Remove: []Edge{{1, 2}}, Add: []Edge{{2, 4}, {1, 4}}},
	}
	for _, d := range deltas {
		if _, err := g.Update(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	for i := range deltas {
		s, n := <-sim.Changes(), <-nat.Changes()
		if n.Stats != (IOStats{}) {
			t.Errorf("delta %d: native ChangeSet Stats not zero: %+v", i, n.Stats)
		}
		if s.Stats == (IOStats{}) {
			t.Errorf("delta %d: simulated ChangeSet Stats unexpectedly zero", i)
		}
		n.Stats, s.Stats = IOStats{}, IOStats{}
		if !reflect.DeepEqual(n, s) {
			t.Errorf("delta %d: ChangeSets differ beyond Stats:\nnative:    %+v\nsimulated: %+v", i, n, s)
		}
	}
}

// TestNativeJoin pins the join surface: native reconstruction returns
// the same rows with zero I/O statistics.
func TestNativeJoin(t *testing.T) {
	rows := []JoinRow{
		{"ann", "acme", "vacuum"}, {"ann", "bolt", "kettle"},
		{"bob", "bolt", "vacuum"}, {"eve", "cord", "toaster"},
	}
	dec := DecomposeJoinRows(rows)
	for _, alg := range []Algorithm{CacheAware, CacheOblivious, Deterministic, HuTaoChung} {
		var simRows, natRows []JoinRow
		simSt, err := dec.Join(JoinOptions{Algorithm: alg, Seed: 3}, func(r JoinRow) { simRows = append(simRows, r) })
		if err != nil {
			t.Fatalf("%v simulated: %v", alg, err)
		}
		natSt, err := dec.Join(JoinOptions{Algorithm: alg, Seed: 3, Native: true}, func(r JoinRow) { natRows = append(natRows, r) })
		if err != nil {
			t.Fatalf("%v native: %v", alg, err)
		}
		if !reflect.DeepEqual(simRows, natRows) {
			t.Errorf("%v: native join rows differ from simulated", alg)
		}
		if natSt.IOs != 0 || natSt.BlockReads != 0 || natSt.BlockWrites != 0 {
			t.Errorf("%v: native join stats not zero: %+v", alg, natSt)
		}
		if natSt.Rows != simSt.Rows {
			t.Errorf("%v: row counts differ: native %d, simulated %d", alg, natSt.Rows, simSt.Rows)
		}
	}
}

// TestNativeEnumerateShim pins the one-shot shim: Config.Native flows
// through to the query, same triangles, zero Stats.
func TestNativeEnumerateShim(t *testing.T) {
	edges, err := Generate("gnm:n=150,m=1200", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 5}
	var sim, nat []Triangle
	simRes, err := Enumerate(edges, cfg, func(a, b, c uint32) { sim = append(sim, Triangle{a, b, c}) })
	if err != nil {
		t.Fatal(err)
	}
	cfg.Native = true
	natRes, err := Enumerate(edges, cfg, func(a, b, c uint32) { nat = append(nat, Triangle{a, b, c}) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sim, nat) {
		t.Error("native shim emission differs from simulated")
	}
	if natRes.Stats != (IOStats{}) {
		t.Errorf("native shim Stats not zero: %+v", natRes.Stats)
	}
	if natRes.Triangles != simRes.Triangles {
		t.Errorf("triangle counts differ: native %d, simulated %d", natRes.Triangles, simRes.Triangles)
	}
}
