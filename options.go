package repro

import (
	"fmt"
	"strings"

	"repro/internal/extmem"
)

// Algorithm selects the enumeration algorithm.
type Algorithm int

const (
	// CacheAware is the randomized cache-aware algorithm of Section 2:
	// O(E^1.5/(sqrt(M)·B)) expected I/Os. The default.
	CacheAware Algorithm = iota
	// CacheOblivious is the randomized cache-oblivious algorithm of
	// Section 3: same bound, without using M or B.
	CacheOblivious
	// Deterministic is the derandomized cache-aware algorithm of Section
	// 4: same bound, worst case.
	Deterministic
	// HuTaoChung is the SIGMOD 2013 baseline: O(E²/(M·B)) I/Os.
	HuTaoChung
	// BlockNestedLoop is the classical join plan: O(E³/(M²·B)) I/Os.
	BlockNestedLoop
	// EdgeIterator is the Menegola-style baseline: O(E + E^1.5/B) I/Os.
	EdgeIterator
	// SortMerge is Dementiev's sort-based baseline: O(sort(E^1.5)) I/Os.
	SortMerge
)

var algorithmNames = map[Algorithm]string{
	CacheAware:      "cacheaware",
	CacheOblivious:  "oblivious",
	Deterministic:   "deterministic",
	HuTaoChung:      "hutaochung",
	BlockNestedLoop: "nestedloop",
	EdgeIterator:    "edgeiterator",
	SortMerge:       "sortmerge",
}

// String returns the canonical lower-case name.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{CacheAware, CacheOblivious, Deterministic, HuTaoChung, BlockNestedLoop, EdgeIterator, SortMerge}
}

// ParseAlgorithm resolves a name produced by Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, n := range algorithmNames {
		if n == strings.ToLower(s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("repro: unknown algorithm %q (have %v)", s, Algorithms())
}

// ExecMode selects how a query executes its algorithm: on the simulated
// external-memory machine (the faithful path, with exact block-I/O
// accounting) or natively on the canonical image (the fast path, same
// decomposition and emission stream, accounting compiled out). See
// Options.Native for the contract.
type ExecMode int

const (
	// ModeAuto inherits the handle's Options.Native. The default.
	ModeAuto ExecMode = iota
	// ModeSimulated forces the simulated machine for this query.
	ModeSimulated
	// ModeNative forces native execution for this query.
	ModeNative
)

// Options describes the simulated external-memory machine a Graph is
// built on and the defaults its queries inherit. The zero value is a
// usable default machine (M = 1<<16 words, B = 1<<7 words, one worker
// per CPU, memory-backed).
type Options struct {
	// MemoryWords is the internal memory size M in 64-bit words
	// (default 1<<16). Must satisfy the tall-cache assumption
	// MemoryWords >= BlockWords².
	MemoryWords int
	// BlockWords is the block size B in words (default 1<<7, i.e. 1 KiB
	// blocks). Must be a power of two.
	BlockWords int
	// Workers is the default worker count for the parallel phases: the
	// O(sort(E)) canonicalization at Build time and every query that runs
	// a parallel-capable algorithm (0 = runtime.GOMAXPROCS(0), i.e. one
	// per CPU). Queries may override it per call via Query.Workers. The
	// canonical representation, every query's emission stream, and all
	// aggregated I/O statistics are identical for every value — only
	// wall-clock time changes.
	Workers int
	// Seed drives randomized edge sources (FromSpec generators); the
	// randomized query algorithms take their seed from Query.Seed.
	Seed uint64
	// DiskPath, when non-empty, backs the external memory with real files
	// instead of process memory: Build canonicalizes into the file at this
	// path and leaves the frozen canonical image there, query sessions
	// read the shared core from it and spill their private scratch to
	// per-session temp files "<DiskPath>.q<n>" (removed when the query
	// finishes).
	//
	// The image is durable: Build stamps it with a checksummed footer so a
	// later Open(path, opts) adopts it without re-canonicalizing, every
	// effective Update appends its delta to a fsynced write-ahead log at
	// "<DiskPath>.wal", and Checkpoint/Close atomically promote the
	// latest generation over the image (Close also removes the log, whose
	// records the promoted image subsumes). After a crash, Open replays
	// the log to the exact pre-crash generation. FORMAT.md specifies the
	// on-disk formats; the image outlives the handle on disk.
	DiskPath string
	// Native makes queries execute natively by default (overridable per
	// query via Query.Mode): the algorithms run their exact simulated-mode
	// decomposition — same leases, same subproblem grain, same emission
	// stream, byte-identical at every Workers value — but read and write
	// the canonical image directly (memory-backed handles operate on the
	// image's words in place; disk-backed handles decode the image once
	// per session) instead of moving blocks through the simulated cache.
	// The block-transfer accounting is compiled out of the hot path: a
	// native query reports zero Stats and nil WorkerStats — the one
	// documented divergence from simulated execution. Build, Open, and
	// Update always canonicalize on the simulated machine, so CanonIOs
	// remains meaningful on native handles.
	Native bool
	// SequentialCanon runs the Build-time canonicalization with the
	// sequential reference sorts on the coordinator instead of the
	// parallel emsort engine. The canonical representation is
	// byte-identical either way; only the I/O accounting attributed to
	// CanonIOs differs (the parallel engine charges each unit a cold
	// start, the PEM accounting). The compatibility shims use this to
	// reproduce the historical per-algorithm accounting exactly.
	SequentialCanon bool
}

func (o Options) withDefaults() Options {
	if o.MemoryWords == 0 {
		o.MemoryWords = 1 << 16
	}
	if o.BlockWords == 0 {
		o.BlockWords = 1 << 7
	}
	return o
}

// validate checks the machine description. It runs on the defaulted
// options, so a zero Options is always valid.
func (o Options) validate() error {
	if o.BlockWords <= 0 || o.BlockWords&(o.BlockWords-1) != 0 {
		return fmt.Errorf("repro: BlockWords must be a positive power of two, got %d", o.BlockWords)
	}
	if o.MemoryWords < o.BlockWords*o.BlockWords {
		return fmt.Errorf("repro: tall-cache assumption requires MemoryWords >= BlockWords² (%d < %d)",
			o.MemoryWords, o.BlockWords*o.BlockWords)
	}
	return nil
}

// Config describes a one-shot Enumerate/Count run: the simulated machine
// plus the algorithm to run on it. New code should prefer Build with
// Options and per-query Query values; Config remains the one-call
// configuration of the compatibility shims.
type Config struct {
	// Algorithm defaults to CacheAware.
	Algorithm Algorithm
	// MemoryWords is the internal memory size M in 64-bit words
	// (default 1<<16). Must satisfy the tall-cache assumption
	// MemoryWords >= BlockWords².
	MemoryWords int
	// BlockWords is the block size B in words (default 1<<7, i.e. 1 KiB
	// blocks). Must be a power of two.
	BlockWords int
	// Seed drives the randomized algorithms; runs are deterministic in it.
	Seed uint64
	// Workers is the number of parallel workers solving independent
	// subproblems — and running the parallel external-memory sorts that
	// canonicalize the input and order the color-pair buckets — for the
	// CacheAware, CacheOblivious, and Deterministic algorithms
	// (0 = runtime.GOMAXPROCS(0), i.e. one per CPU; the baseline
	// algorithms are sequential and ignore it). The triangle stream, the
	// triangle count, and the aggregated
	// I/O statistics (including CanonIOs) are identical for every value
	// of Workers — only wall-clock time changes.
	Workers int
	// FamilySize overrides the small-bias family size used by the
	// Deterministic algorithm (0 = default).
	FamilySize int
	// DiskPath, when non-empty, backs the external memory with a real
	// file at that path instead of process memory.
	DiskPath string
	// Native runs the enumeration natively on the canonical image instead
	// of the simulated machine: identical triangle stream, zero Stats.
	// See Options.Native.
	Native bool
}

func (c Config) withDefaults() Config {
	if c.MemoryWords == 0 {
		c.MemoryWords = 1 << 16
	}
	if c.BlockWords == 0 {
		c.BlockWords = 1 << 7
	}
	return c
}

// IOStats reports the block-transfer counts of a run.
type IOStats struct {
	// BlockReads and BlockWrites are the I/Os the paper's bounds count.
	BlockReads  uint64
	BlockWrites uint64
	// WordReads and WordWrites measure internal work (free in the model).
	WordReads  uint64
	WordWrites uint64
	// PeakLeaseWords is the high-water mark of internal memory used for
	// native algorithm state.
	PeakLeaseWords int
	// PeakDiskWords is the high-water mark of external memory used.
	PeakDiskWords int64
}

// IOs returns BlockReads + BlockWrites.
func (s IOStats) IOs() uint64 { return s.BlockReads + s.BlockWrites }

func toIOStats(st extmem.Stats) IOStats {
	return IOStats{
		BlockReads:     st.BlockReads,
		BlockWrites:    st.BlockWrites,
		WordReads:      st.WordReads,
		WordWrites:     st.WordWrites,
		PeakLeaseWords: st.PeakLease,
		PeakDiskWords:  st.PeakAlloc,
	}
}
