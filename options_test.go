package repro

import (
	"strings"
	"testing"
)

// TestAlgorithmNamesComplete: every algorithm has a distinct canonical
// name that round-trips through ParseAlgorithm, case-insensitively.
func TestAlgorithmNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Algorithms() {
		name := a.String()
		if strings.HasPrefix(name, "Algorithm(") {
			t.Errorf("%d has no canonical name", int(a))
		}
		if seen[name] {
			t.Errorf("duplicate algorithm name %q", name)
		}
		seen[name] = true
		got, err := ParseAlgorithm(strings.ToUpper(name))
		if err != nil || got != a {
			t.Errorf("case-insensitive round trip failed for %q: %v %v", name, got, err)
		}
	}
	if s := Algorithm(99).String(); s != "Algorithm(99)" {
		t.Errorf("unknown algorithm prints %q", s)
	}
}

// TestOptionsValidation: the machine constraints are enforced — with the
// same wording — by both the Options path (Build) and the Config path
// (Enumerate).
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		m, b int
		want string
	}{
		{100000, 100, "power of two"},
		{100000, 0x60, "power of two"},
		{1000, 128, "tall-cache"},
		{127 * 127, 128, "tall-cache"},
	}
	for _, c := range cases {
		_, errBuild := Build(FromEdges(nil), Options{MemoryWords: c.m, BlockWords: c.b})
		if errBuild == nil || !strings.Contains(errBuild.Error(), c.want) {
			t.Errorf("Build(M=%d B=%d): error %v, want mention of %q", c.m, c.b, errBuild, c.want)
		}
		_, errEnum := Enumerate([][2]uint32{{0, 1}}, Config{MemoryWords: c.m, BlockWords: c.b}, nil)
		if errEnum == nil || errEnum.Error() != errBuild.Error() {
			t.Errorf("Enumerate(M=%d B=%d): error %v, want shim-identical %v", c.m, c.b, errEnum, errBuild)
		}
	}
	// Defaults are valid and exposed through the handle.
	g, err := Build(FromEdges([][2]uint32{{0, 1}}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if o := g.Options(); o.MemoryWords != 1<<16 || o.BlockWords != 1<<7 {
		t.Errorf("defaulted options %+v", o)
	}
}

// TestIOStatsIOs: the aggregate the paper's bounds are stated in.
func TestIOStatsIOs(t *testing.T) {
	s := IOStats{BlockReads: 3, BlockWrites: 4}
	if s.IOs() != 7 {
		t.Errorf("IOs() = %d", s.IOs())
	}
}

// TestGenerateStrict: unknown parameter keys and malformed values are
// errors, not silent zeros — for both integer and float parameters.
func TestGenerateStrict(t *testing.T) {
	bad := []string{
		"gnm:n=100,zz=3",          // unknown key
		"gnm:n=abc",               // bad int
		"gnm:n=",                  // empty int
		"powerlaw:beta=fast",      // bad float
		"clique:m=5",              // key of another generator
		"sells:avail=half",        // bad float
		"rmat:scale=2.5",          // float where int expected
		"grid:r=3,c=3,diag=1",     // unknown key
		"planted:n=50,m=60,k=4.2", // float where int expected
	}
	for _, spec := range bad {
		if _, err := Generate(spec, 1); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
	// Well-formed specs, including defaulted parameters, still work.
	good := []string{"gnm", "gnm:n=50", "powerlaw:n=60,m=120,beta=2.5", "clique:n=8"}
	for _, spec := range good {
		edges, err := Generate(spec, 1)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
		}
		if len(edges) == 0 {
			t.Errorf("%q: empty graph", spec)
		}
	}
}
