package repro

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
)

// flatten3 collects a triangle stream as flattened tuples.
func collectTriangles(t *testing.T, g *Graph, q Query) ([]uint32, Result) {
	t.Helper()
	var flat []uint32
	var res Result
	q.Result = &res
	if _, err := g.TrianglesFunc(context.Background(), q, func(a, b, c uint32) {
		flat = append(flat, a, b, c)
	}); err != nil {
		t.Fatalf("TrianglesFunc: %v", err)
	}
	return flat, res
}

// TestOrderedTriangles pins Query.Ordered as sorted(plain stream): the
// ordered stream is exactly the plain stream's tuples in canonical
// lexicographic order, its statistics equal the plain run's, and both
// are invariant in Workers.
func TestOrderedTriangles(t *testing.T) {
	g, err := Build(FromSpec("gnm:n=300,m=1600"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	plain, plainRes := collectTriangles(t, g, Query{Seed: 11})
	want := append([]uint32{}, plain...)
	cluster.SortTuples(want, 3)

	var ref []uint32
	for _, workers := range []int{1, 2, 4} {
		got, res := collectTriangles(t, g, Query{Seed: 11, Ordered: true, Workers: workers})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: ordered stream is not the sorted plain stream", workers)
		}
		if res.Stats != plainRes.Stats {
			t.Fatalf("workers=%d: ordered Stats %+v != plain Stats %+v", workers, res.Stats, plainRes.Stats)
		}
		if res.Triangles != plainRes.Triangles {
			t.Fatalf("workers=%d: ordered count %d != plain %d", workers, res.Triangles, plainRes.Triangles)
		}
		if ref == nil {
			ref = got
		} else if !reflect.DeepEqual(ref, got) {
			t.Fatalf("ordered stream varies with Workers")
		}
	}
}

// TestOrderedLimit: a limit on an ordered query delivers the first
// Limit tuples of the sorted stream, while the producer still
// enumerates fully (Stats equal the unlimited run's).
func TestOrderedLimit(t *testing.T) {
	g, err := Build(FromSpec("gnm:n=200,m=900"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	full, fullRes := collectTriangles(t, g, Query{Ordered: true})
	if len(full) < 3*8 {
		t.Fatalf("test graph too sparse: %d triangles", len(full)/3)
	}
	lim, limRes := collectTriangles(t, g, Query{Ordered: true, Limit: 5})
	if !reflect.DeepEqual(lim, full[:3*5]) {
		t.Fatalf("limited ordered stream is not a prefix of the ordered stream")
	}
	if limRes.Matches != 5 || limRes.Triangles != 5 {
		t.Fatalf("limited Result counts = %d/%d, want 5/5", limRes.Matches, limRes.Triangles)
	}
	if limRes.Stats != fullRes.Stats {
		t.Fatalf("ordered+limit Stats %+v != full Stats %+v (producer must run to completion)", limRes.Stats, fullRes.Stats)
	}
}

// TestOrderedMatch: the ordered Match stream is the plain stream's
// embeddings normalized (Pattern.Normalize) and sorted.
func TestOrderedMatch(t *testing.T) {
	g, err := Build(FromSpec("gnm:n=120,m=700"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, p := range []*Pattern{PatternDiamond, PatternPath3} {
		k := p.K()
		var plain []uint32
		if _, err := g.MatchFunc(context.Background(), p, Query{Seed: 2}, func(vs []uint32) {
			plain = append(plain, vs...)
		}); err != nil {
			t.Fatal(err)
		}
		want := append([]uint32{}, plain...)
		for i := 0; i+k <= len(want); i += k {
			p.Normalize(want[i : i+k])
		}
		cluster.SortTuples(want, k)

		var got []uint32
		if _, err := g.MatchFunc(context.Background(), p, Query{Seed: 2, Ordered: true}, func(vs []uint32) {
			got = append(got, vs...)
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: ordered match stream is not the normalized sorted plain stream", p.Name())
		}
	}

	// Cliques: already canonical per emission; ordered = sorted stream.
	var plain []uint32
	if _, err := g.CliquesFunc(context.Background(), 4, Query{Seed: 2}, func(vs []uint32) {
		plain = append(plain, vs...)
	}); err != nil {
		t.Fatal(err)
	}
	cluster.SortTuples(plain, 4)
	var got []uint32
	if _, err := g.CliquesFunc(context.Background(), 4, Query{Seed: 2, Ordered: true}, func(vs []uint32) {
		got = append(got, vs...)
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatal("ordered cliques stream is not the sorted plain stream")
	}
}

// TestEdgesFunc pins the export primitive: every deduplicated edge
// exactly once, u < v in original ids, deterministic sequence, and no
// simulated I/O (native session).
func TestEdgesFunc(t *testing.T) {
	edges := [][2]uint32{{5, 1}, {1, 5}, {2, 9}, {9, 4}, {4, 2}, {7, 7}, {3, 8}}
	g, err := Build(FromEdges(edges), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var got [][2]uint32
	if err := g.EdgesFunc(context.Background(), func(u, v uint32) {
		if u >= v {
			t.Fatalf("EdgesFunc emitted (%d, %d), want u < v", u, v)
		}
		got = append(got, [2]uint32{u, v})
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != g.NumEdges() {
		t.Fatalf("EdgesFunc emitted %d edges, NumEdges() = %d", len(got), g.NumEdges())
	}
	want := [][2]uint32{{1, 5}, {2, 4}, {2, 9}, {3, 8}, {4, 9}}
	sort.Slice(got, func(i, j int) bool {
		if got[i][0] != got[j][0] {
			return got[i][0] < got[j][0]
		}
		return got[i][1] < got[j][1]
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EdgesFunc edge set = %v, want %v", got, want)
	}

	// A second pass is identical (deterministic sequence).
	var again [][2]uint32
	if err := g.EdgesFunc(nil, func(u, v uint32) { again = append(again, [2]uint32{u, v}) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(again, func(i, j int) bool {
		if again[i][0] != again[j][0] {
			return again[i][0] < again[j][0]
		}
		return again[i][1] < again[j][1]
	})
	if !reflect.DeepEqual(again, got) {
		t.Fatal("EdgesFunc varies between calls")
	}
}
