package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
)

// PartitionOptions configures Partition.
type PartitionOptions struct {
	// Dir receives the sub-images and the cluster manifest. Created if
	// missing.
	Dir string
	// Shards is the shard count S (>= 1). Each shard owns a contiguous
	// color range; S may not exceed Colors.
	Shards int
	// Colors is the cluster color count C (0 defaults to
	// max(4, Shards); at most 32). A query of tuple size k decomposes
	// into one subproblem per nondecreasing color k-tuple, so C governs
	// the fan-out: small C means few, coarse subproblems; large C means
	// many fine ones.
	Colors int
	// Seed derives the cluster coloring — a 4-wise independent hash of
	// original vertex ids, fixed for the cluster's lifetime (0 defaults
	// to 1). It is deliberately separate from per-query seeds: every
	// shard, coordinator, and routed update of the cluster must agree
	// on it.
	Seed uint64
}

// PartitionShard describes one shard Partition produced.
type PartitionShard struct {
	// Index is the shard number; LoColor and HiColor bound its owned
	// color range [LoColor, HiColor).
	Index   int
	LoColor uint32
	HiColor uint32
	// Image is the sub-image path (inside PartitionOptions.Dir).
	Image string
	// Edges counts the sub-image's edges. Sub-images are suffix views —
	// shard i holds every edge whose endpoint-color minimum is at least
	// LoColor — so they overlap: shard 0 always holds the full edge
	// set, and the counts do not sum to the graph's.
	Edges int64
}

// PartitionResult reports a completed Partition.
type PartitionResult struct {
	// ManifestPath is the cluster manifest file — the argument to hand
	// to DialCluster and to each shard server.
	ManifestPath string
	// Colors and Seed echo the resolved coloring parameters.
	Colors int
	Seed   uint64
	// Shards describes the sub-images, ordered by Index.
	Shards []PartitionShard
}

// Partition splits a built graph into per-shard sub-images by color
// range and writes a cluster manifest next to them — the durable side
// of the scatter–gather cluster layer (see ARCHITECTURE.md).
//
// The cluster fixes Colors cluster colors and a coloring Seed; a
// vertex's color is a 4-wise independent hash of its original id, so it
// is stable across generations and across the differently-canonicalized
// sub-images. Shard i's sub-image is the suffix view: every edge whose
// endpoint-color minimum is >= the shard's low color. That is exactly
// the edge set needed to execute the color tuples the shard owns (those
// whose minimum color falls in its range), so every subproblem runs
// exactly once cluster-wide while storage is replicated down the
// suffix.
//
// Each sub-image is written through a disk-backed Build with the source
// handle's machine options — a valid durable image with its own footer,
// openable by Open (which is what a trienumd shard does at boot). The
// manifest (cluster.json) records the coloring, the machine, and the
// color-range → image mapping; see FORMAT.md for the file format.
//
// Partition reads the edge set from the generation current at the call.
// It fails rather than write a torn cluster if an Update lands while it
// runs — partition quiescent graphs.
func Partition(ctx context.Context, g *Graph, po PartitionOptions) (PartitionResult, error) {
	var pr PartitionResult
	if po.Dir == "" {
		return pr, fmt.Errorf("repro: Partition needs a target Dir")
	}
	if po.Shards < 1 {
		return pr, fmt.Errorf("repro: Partition needs Shards >= 1, got %d", po.Shards)
	}
	colors := po.Colors
	if colors == 0 {
		colors = 4
		if po.Shards > colors {
			colors = po.Shards
		}
	}
	if colors > cluster.MaxColors {
		return pr, fmt.Errorf("repro: Partition supports at most %d colors, got %d", cluster.MaxColors, colors)
	}
	seed := po.Seed
	if seed == 0 {
		seed = 1
	}
	ranges, err := cluster.PlanRanges(colors, po.Shards)
	if err != nil {
		return pr, fmt.Errorf("repro: %w", err)
	}

	man := &cluster.Manifest{
		Version:     cluster.ManifestVersion,
		Colors:      colors,
		Seed:        seed,
		MemoryWords: g.opts.MemoryWords,
		BlockWords:  g.opts.BlockWords,
		Generation:  g.Generation(),
		Shards:      ranges,
	}
	col := man.Coloring()

	// Snapshot the edge set with its per-edge minimum colors. EdgesFunc
	// runs on its own session, so a concurrent Update cannot tear the
	// snapshot itself — but it would desynchronize the manifest from
	// the images, so detect and refuse below.
	type coloredEdge struct {
		u, v uint32
		min  uint32
	}
	var edges []coloredEdge
	verts := map[uint32]struct{}{}
	if err := g.EdgesFunc(ctx, func(u, v uint32) {
		cu, cv := col.Color(u), col.Color(v)
		if cv < cu {
			cu = cv
		}
		edges = append(edges, coloredEdge{u: u, v: v, min: cu})
		verts[u] = struct{}{}
		verts[v] = struct{}{}
	}); err != nil {
		return pr, err
	}
	if got := g.Generation(); got != man.Generation {
		return pr, fmt.Errorf("repro: graph advanced to generation %d during Partition (started at %d)", got, man.Generation)
	}
	man.Vertices = len(verts)
	man.Edges = int64(len(edges))

	if err := os.MkdirAll(po.Dir, 0o755); err != nil {
		return pr, err
	}
	for i := range man.Shards {
		lo := man.Shards[i].Lo
		var sub [][2]uint32
		for _, e := range edges {
			if e.min >= lo {
				sub = append(sub, [2]uint32{e.u, e.v})
			}
		}
		name := fmt.Sprintf("shard%d.img", i)
		path := filepath.Join(po.Dir, name)
		sg, err := Build(FromEdges(sub), Options{
			MemoryWords: g.opts.MemoryWords,
			BlockWords:  g.opts.BlockWords,
			Workers:     g.opts.Workers,
			DiskPath:    path,
		})
		if err != nil {
			return pr, fmt.Errorf("repro: building sub-image %s: %w", name, err)
		}
		man.Shards[i].Image = name
		man.Shards[i].Edges = sg.NumEdges()
		// Close promotes the image and removes the WAL: the sub-image
		// is left exactly as a checkpointed durable graph, adoptable by
		// Open.
		if err := sg.Close(); err != nil {
			return pr, fmt.Errorf("repro: finalizing sub-image %s: %w", name, err)
		}
	}

	pr.ManifestPath = filepath.Join(po.Dir, cluster.ManifestName)
	if err := man.Save(pr.ManifestPath); err != nil {
		return pr, err
	}
	pr.Colors = colors
	pr.Seed = seed
	for _, sh := range man.Shards {
		pr.Shards = append(pr.Shards, PartitionShard{
			Index:   sh.Index,
			LoColor: sh.Lo,
			HiColor: sh.Hi,
			Image:   filepath.Join(po.Dir, sh.Image),
			Edges:   sh.Edges,
		})
	}
	return pr, nil
}
