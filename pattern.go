package repro

import (
	"fmt"
	"strings"

	"repro/internal/subgraph"
)

// Pattern is a small connected pattern graph H on 2–8 vertices for Match
// queries: the Section 6 extension of the paper's decomposition to
// arbitrary constant-size subgraphs in the Alon class (Silvestri 2014).
// The zero value is not usable; construct with NewPattern, ParsePattern,
// or use a predefined pattern.
type Pattern struct {
	p *subgraph.Pattern
}

// NewPattern builds a pattern from an edge list over vertices 0..k-1.
// The pattern must be connected (otherwise its copies are not determined
// by a single color-coded subproblem).
func NewPattern(name string, k int, edges [][2]int) (*Pattern, error) {
	p, err := subgraph.NewPattern(name, k, edges)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: p}, nil
}

// MustPattern is NewPattern for statically known patterns.
func MustPattern(name string, k int, edges [][2]int) *Pattern {
	p, err := NewPattern(name, k, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// Predefined patterns.
var (
	// PatternTriangle is K3.
	PatternTriangle = &Pattern{p: subgraph.Triangle}
	// PatternPath3 is the path on three vertices (a wedge).
	PatternPath3 = &Pattern{p: subgraph.Path3}
	// PatternCycle4 is the 4-cycle.
	PatternCycle4 = &Pattern{p: subgraph.Cycle4}
	// PatternDiamond is K4 minus one edge.
	PatternDiamond = &Pattern{p: subgraph.Diamond}
	// PatternK4 is the 4-clique.
	PatternK4 = &Pattern{p: subgraph.K4}
	// PatternStar3 is the claw K_{1,3}.
	PatternStar3 = &Pattern{p: subgraph.Star3}
	// PatternHouse is C5 plus a chord (5 vertices, 6 edges).
	PatternHouse = &Pattern{p: subgraph.House}
)

// Patterns lists the predefined patterns.
func Patterns() []*Pattern {
	return []*Pattern{PatternTriangle, PatternPath3, PatternCycle4, PatternDiamond, PatternK4, PatternStar3, PatternHouse}
}

// ParsePattern resolves the name of a predefined pattern (as reported by
// Pattern.Name), e.g. for a command-line flag.
func ParsePattern(name string) (*Pattern, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, p := range Patterns() {
		if p.Name() == want {
			return p, nil
		}
	}
	var have []string
	for _, p := range Patterns() {
		have = append(have, p.Name())
	}
	return nil, fmt.Errorf("repro: unknown pattern %q (have %v)", name, have)
}

// K returns the number of pattern vertices.
func (p *Pattern) K() int { return p.p.K() }

// Name returns the pattern's name.
func (p *Pattern) Name() string { return p.p.Name() }

// Edges returns the pattern's edge pairs (i < j).
func (p *Pattern) Edges() [][2]int { return p.p.Edges() }

// Automorphisms returns |Aut(H)|, the symmetry count Match deduplicates
// embeddings by.
func (p *Pattern) Automorphisms() int { return p.p.Automorphisms() }

// Normalize rewrites the embedding (len K, position i -> vertex
// assign[i]) in place to the lexicographically least assignment in its
// Aut(H) orbit. Match emits one representative per orbit, but which one
// depends on the internal vertex order of the generation it ran on;
// Normalize maps any representative to a canonical one, making
// embeddings comparable across queries and generations — ChangeSets of
// SubscribeMatch subscriptions are already normalized this way.
func (p *Pattern) Normalize(assign []uint32) { p.p.Minimize(assign) }

// String returns the pattern's name.
func (p *Pattern) String() string { return p.p.Name() }
