package repro

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"repro/internal/baseline"
	"repro/internal/ctxutil"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/subgraph"
	"repro/internal/trienum"
)

// Query configures one enumeration run against a Graph handle.
type Query struct {
	// Algorithm selects the triangle-enumeration algorithm for Triangles
	// queries (default CacheAware). Cliques and Match always use the
	// Section 6 color-coding decomposition and ignore it.
	Algorithm Algorithm
	// Seed drives the randomized decompositions; a query is deterministic
	// in it.
	Seed uint64
	// Workers overrides the Graph's Options.Workers for this query
	// (0 = inherit). Only CacheAware and Deterministic run parallel
	// phases; emission and aggregated statistics are identical at every
	// worker count.
	Workers int
	// FamilySize overrides the small-bias family size used by the
	// Deterministic algorithm (0 = default).
	FamilySize int
	// Result, when non-nil, receives the query's Result when the run
	// finishes — the way the iterator forms report statistics. The
	// callback forms also return it directly.
	Result *Result
}

// Triangle is one emitted triangle in the caller's vertex ids, sorted so
// that A < B < C.
type Triangle struct{ A, B, C uint32 }

// Result summarizes an enumeration run.
type Result struct {
	// Triangles is the number of triangles emitted (Triangles queries).
	Triangles uint64
	// Matches is the number of emitted matches of any query kind:
	// triangles, k-cliques, or pattern embeddings modulo Aut(H).
	Matches uint64
	// Vertices and Edges describe the graph after deduplication.
	Vertices int
	Edges    int64
	// Stats covers the enumeration proper (canonicalization excluded).
	Stats IOStats
	// CanonIOs is the I/O cost of converting the input to the canonical
	// degree-ordered representation (O(sort(E)), Section 1.3). A Graph
	// handle pays it once at Build time; every query of the handle
	// reports that same one-time cost.
	CanonIOs uint64
	// Colors, HighDegVertices, Subproblems and X expose algorithm
	// internals for experiments; see trienum.Info.
	Colors          int
	HighDegVertices int
	Subproblems     int
	X               uint64
	// MaxSubproblem is the largest color-tuple subproblem (in edges)
	// actually loaded by a Cliques or Match query, to compare against the
	// O(k²·M) expectation of Section 6.
	MaxSubproblem int64
	// Workers is the resolved worker cap of the run: Config.Workers after
	// defaulting, or 1 for the sequential algorithms. The engine engages
	// at most one worker per subproblem, so fewer workers (len of
	// WorkerStats) may actually run on small inputs.
	Workers int
	// WorkerStats breaks the parallel phases down per worker. Which
	// worker solved which subproblem depends on scheduling, so individual
	// entries vary run to run; their sum does not, and is already
	// included in Stats.
	WorkerStats []IOStats
}

func (g *Graph) resolveWorkers(q Query) int {
	if q.Workers > 0 {
		return q.Workers
	}
	return g.opts.workers()
}

// TrianglesFunc enumerates every triangle of the graph with the
// configured algorithm, calling emit exactly once per triangle from the
// calling goroutine. Vertices carry the input's ids, sorted a < b < c; a
// nil emit counts only. Cancellation through ctx is cooperative — the
// parallel engine (CacheAware, Deterministic) checks between subproblems
// and sort runs, drains its worker pool, and returns ctx.Err(); the
// sequential algorithms check only between phases. The triangles emitted
// before a cancellation are a prefix of the full stream, and the Result
// returned alongside the error carries the partial counts and the
// statistics accumulated so far. ctx may be nil.
//
// emit runs on the calling goroutine while the handle's query lock is
// held: it must not issue another query against, or Close, the same
// Graph — that deadlocks. Run follow-up queries after the call returns.
func (g *Graph) TrianglesFunc(ctx context.Context, q Query, emit func(a, b, c uint32)) (Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return Result{}, ErrGraphClosed
	}
	defer g.resetQueryLocked()

	res := g.baseResult()
	workers := g.resolveWorkers(q)
	exec := trienum.Exec{Workers: workers, Ctx: ctx}
	wrapped := func(a, b, c uint32) {
		if emit != nil {
			t := graph.MakeTriple(g.cg.RankToID[a], g.cg.RankToID[b], g.cg.RankToID[c])
			emit(t.V1, t.V2, t.V3)
		}
	}

	var info trienum.Info
	var workerStats []extmem.Stats
	var err error
	switch q.Algorithm {
	case CacheAware:
		info, workerStats, err = trienum.CacheAwareParallel(g.sp, g.cg, q.Seed, exec, wrapped)
		res.Workers = workers
	case CacheOblivious:
		if err = ctxutil.Err(ctx); err == nil {
			info = trienum.Oblivious(g.sp, g.cg, q.Seed, wrapped)
		}
	case Deterministic:
		info, workerStats, err = trienum.DeterministicParallel(g.sp, g.cg, q.FamilySize, exec, wrapped)
		if err == nil {
			res.Workers = workers
		}
	case HuTaoChung:
		if err = ctxutil.Err(ctx); err == nil {
			info = trienum.HuTaoChung(g.sp, g.cg, wrapped)
		}
	case BlockNestedLoop:
		if err = ctxutil.Err(ctx); err == nil {
			info = baseline.BlockNestedLoop(g.sp, g.cg, wrapped)
		}
	case EdgeIterator:
		if err = ctxutil.Err(ctx); err == nil {
			info = baseline.EdgeIterator(g.sp, g.cg, wrapped)
		}
	case SortMerge:
		if err = ctxutil.Err(ctx); err == nil {
			info = trienum.Dementiev(g.sp, g.cg, wrapped)
		}
	default:
		return res, fmt.Errorf("repro: unknown algorithm %v", q.Algorithm)
	}
	if err == nil {
		// Count the final write-backs into the run's statistics; a
		// cancelled run reports its statistics as accumulated, unflushed.
		g.sp.Flush()
	}
	st := g.sp.Stats()
	for _, w := range workerStats {
		st.Add(w)
		res.WorkerStats = append(res.WorkerStats, toIOStats(w))
	}
	res.Stats = toIOStats(st)
	res.Triangles = info.Triangles
	res.Matches = info.Triangles
	res.Colors = info.Colors
	res.HighDegVertices = info.HighDegVertices
	res.Subproblems = info.Subproblems
	res.X = info.X
	g.deliverResult(q, res)
	return res, err
}

// Triangles returns the query as a Go 1.23 range-over-func iterator:
//
//	for t, err := range g.Triangles(ctx, repro.Query{}) {
//		if err != nil { ... }
//		use(t)
//	}
//
// A non-nil error is yielded at most once, as the final element.
// Breaking out of the loop cancels the underlying query and drains its
// workers before the iterator returns. Set Query.Result to receive the
// per-query statistics.
//
// The loop body runs while the handle's query lock is held: like an emit
// callback, it must not issue another query against, or Close, the same
// Graph — collect what the follow-up needs and run it after the loop.
func (g *Graph) Triangles(ctx context.Context, q Query) iter.Seq2[Triangle, error] {
	return func(yield func(Triangle, error) bool) {
		qctx, cancel := cancelableCtx(ctx)
		defer cancel()
		stopped := false
		_, err := g.TrianglesFunc(qctx, q, func(a, b, c uint32) {
			if stopped {
				return
			}
			if !yield(Triangle{a, b, c}, nil) {
				stopped = true
				cancel()
			}
		})
		if err != nil && !stopped {
			yield(Triangle{}, err)
		}
	}
}

// CliquesFunc enumerates every k-clique (k >= 3) of the graph with the
// Section 6 color-coding decomposition, in O(E^(k/2)/(M^(k/2−1)·B))
// expected I/Os. emit receives each clique exactly once as ascending
// vertex ids of the caller's id space; the slice is reused between calls
// — copy it to retain. Emission order follows the decomposition, not any
// global order. ctx is checked between color-tuple subproblems; it may
// be nil. A nil emit counts only.
func (g *Graph) CliquesFunc(ctx context.Context, k int, q Query, emit func(clique []uint32)) (Result, error) {
	return g.subgraphQuery(ctx, q, emit, func(sg *Graph, wrapped subgraph.EmitK) (subgraph.Info, error) {
		return subgraph.KClique(ctx, sg.sp, sg.cg, k, q.Seed, wrapped)
	}, true)
}

// Cliques is CliquesFunc as a range-over-func iterator; the iteration
// contract matches Triangles, and the yielded slice is reused between
// elements — copy it to retain.
func (g *Graph) Cliques(ctx context.Context, k int, q Query) iter.Seq2[[]uint32, error] {
	return g.subgraphSeq(ctx, func(qctx context.Context, emit func([]uint32)) error {
		_, err := g.CliquesFunc(qctx, k, q, emit)
		return err
	})
}

// MatchFunc enumerates every copy of the pattern in the graph — each set
// of vertices carrying an H-isomorphic (not necessarily induced)
// subgraph, exactly once per embedding modulo Aut(H) — with the Section 6
// color-coding decomposition generalized to arbitrary connected patterns
// on at most 8 vertices (Silvestri 2014). emit receives the embedding:
// position i of the pattern maps to vertex assign[i] of the caller's id
// space. The slice is reused between calls — copy it to retain. ctx is
// checked between color-tuple subproblems; it may be nil. A nil emit
// counts only.
func (g *Graph) MatchFunc(ctx context.Context, p *Pattern, q Query, emit func(assign []uint32)) (Result, error) {
	if p == nil || p.p == nil {
		return Result{}, fmt.Errorf("repro: Match requires a non-nil pattern")
	}
	return g.subgraphQuery(ctx, q, emit, func(sg *Graph, wrapped subgraph.EmitK) (subgraph.Info, error) {
		return p.p.Enumerate(ctx, sg.sp, sg.cg, q.Seed, wrapped)
	}, false)
}

// Match is MatchFunc as a range-over-func iterator; the iteration
// contract matches Triangles, and the yielded slice is reused between
// elements — copy it to retain.
func (g *Graph) Match(ctx context.Context, p *Pattern, q Query) iter.Seq2[[]uint32, error] {
	return g.subgraphSeq(ctx, func(qctx context.Context, emit func([]uint32)) error {
		_, err := g.MatchFunc(qctx, p, q, emit)
		return err
	})
}

// subgraphQuery is the shared engine room of Cliques and Match: lock,
// run the Section 6 enumerator with ranks mapped back to input ids,
// collect the worker-invariant statistics, reset the handle. sortIDs
// orders each emitted vertex set ascending (cliques are unordered sets;
// pattern embeddings are positional and must not be reordered).
func (g *Graph) subgraphQuery(ctx context.Context, q Query, emit func([]uint32),
	run func(*Graph, subgraph.EmitK) (subgraph.Info, error), sortIDs bool) (Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return Result{}, ErrGraphClosed
	}
	defer g.resetQueryLocked()

	res := g.baseResult()
	var mapped []uint32
	wrapped := func(vs []uint32) {
		if emit == nil {
			return
		}
		if cap(mapped) < len(vs) {
			mapped = make([]uint32, len(vs))
		}
		mapped = mapped[:len(vs)]
		for i, v := range vs {
			mapped[i] = g.cg.RankToID[v]
		}
		if sortIDs {
			sort.Slice(mapped, func(i, j int) bool { return mapped[i] < mapped[j] })
		}
		emit(mapped)
	}
	info, err := run(g, wrapped)
	res.Matches = info.Cliques
	res.Colors = info.Colors
	res.Subproblems = info.Subproblems
	res.MaxSubproblem = info.MaxSubproblem
	if err == nil {
		// As in TrianglesFunc: flush on success, report a cancelled run's
		// statistics as accumulated.
		g.sp.Flush()
	}
	res.Stats = toIOStats(g.sp.Stats())
	g.deliverResult(q, res)
	return res, err
}

// subgraphSeq adapts a callback-form subgraph query to an iterator,
// translating an early break into a cancellation of the underlying run.
func (g *Graph) subgraphSeq(ctx context.Context, run func(qctx context.Context, emit func([]uint32)) error) iter.Seq2[[]uint32, error] {
	return func(yield func([]uint32, error) bool) {
		qctx, cancel := cancelableCtx(ctx)
		defer cancel()
		stopped := false
		err := run(qctx, func(vs []uint32) {
			if stopped {
				return
			}
			if !yield(vs, nil) {
				stopped = true
				cancel()
			}
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

func (g *Graph) baseResult() Result {
	return Result{
		Vertices: g.cg.NumVertices,
		Edges:    g.cg.Edges.Len(),
		CanonIOs: g.canonIOs,
		Workers:  1,
	}
}

func (g *Graph) deliverResult(q Query, res Result) {
	if q.Result != nil {
		*q.Result = res
	}
}

// cancelableCtx derives a cancellable context from ctx (which may be
// nil), for iterator adapters that must stop the producer on break.
func cancelableCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithCancel(ctx)
}
