package repro

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/ctxutil"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/subgraph"
	"repro/internal/trienum"
)

// Query configures one enumeration run against a Graph handle.
type Query struct {
	// Algorithm selects the triangle-enumeration algorithm for Triangles
	// queries (default CacheAware). Cliques and Match always use the
	// Section 6 color-coding decomposition and ignore it.
	Algorithm Algorithm
	// Seed drives the randomized decompositions; a query is deterministic
	// in it.
	Seed uint64
	// Workers overrides the Graph's Options.Workers for this query
	// (0 = inherit). CacheAware, CacheOblivious, and Deterministic run
	// parallel phases; emission and aggregated statistics are identical
	// at every worker count.
	Workers int
	// Mode overrides the handle's execution mode for this query:
	// ModeAuto (default) inherits Options.Native, ModeSimulated forces
	// the simulated machine, ModeNative forces native execution. The
	// emission stream is byte-identical either way; a native run reports
	// zero Stats and nil WorkerStats. See Options.Native.
	Mode ExecMode
	// FamilySize overrides the small-bias family size used by the
	// Deterministic algorithm (0 = default).
	FamilySize int
	// Ordered delivers the emissions in the canonical global order:
	// ascending lexicographic vertex tuples, with Match embeddings
	// first normalized to their orbit representative
	// (Pattern.Normalize). The plain stream follows the decomposition
	// order — deterministic, but a function of the image the query ran
	// on — whereas the ordered stream is a pure function of the edge
	// set and the query alone, which is what makes independently
	// executed partitions of a query mergeable: the cluster layer's
	// gathered stream is byte-identical to a single-process Ordered
	// query. Ordering happens at the delivery layer: the producer runs
	// to completion (buffering one id per emitted vertex, charged no
	// simulated I/O), the buffered tuples are sorted, and emit receives
	// them from the calling goroutine. Consequently a Limit applies to
	// the sorted stream (the producer still enumerates fully, so Stats
	// match the unlimited run), and a cancelled or failed run delivers
	// no emissions at all — a partial set has no canonical prefix.
	Ordered bool
	// Limit, when positive, stops the query cleanly after Limit
	// emissions: the producer is cancelled cooperatively (as if the
	// context had been cancelled), no further emissions are delivered,
	// and the partial Result is returned with a nil error — its Matches
	// (and Triangles) count the emissions actually delivered, which are
	// a prefix of the full stream, and its Stats report whatever I/O had
	// accumulated when the producer wound down (like a cancelled run,
	// this tail is scheduling-dependent for the parallel algorithms).
	// Queries that finish under the limit are unaffected. Applies to the
	// callback and iterator forms alike.
	Limit uint64
	// Result, when non-nil, receives the query's Result when the run
	// finishes — the way the iterator forms report statistics. The
	// callback forms also return it directly.
	Result *Result
}

// Triangle is one emitted triangle in the caller's vertex ids, sorted so
// that A < B < C.
type Triangle struct{ A, B, C uint32 }

// Result summarizes an enumeration run.
type Result struct {
	// Triangles is the number of triangles emitted (Triangles queries).
	Triangles uint64
	// Matches is the number of emitted matches of any query kind:
	// triangles, k-cliques, or pattern embeddings modulo Aut(H).
	Matches uint64
	// Vertices and Edges describe the graph after deduplication, as of
	// the generation the query ran on.
	Vertices int
	Edges    int64
	// Stats covers the enumeration proper (canonicalization excluded).
	// Native runs (Options.Native, Query.Mode) compile the accounting out
	// of the hot path and report a zero Stats.
	Stats IOStats
	// CanonIOs is the one-time cost of producing the canonical image the
	// query ran on: the O(sort(E)) Build canonicalization (Section 1.3)
	// plus the delta merges of any Updates installed before the query's
	// generation. A Graph handle pays these costs once; every query of a
	// generation reports that generation's value.
	CanonIOs uint64
	// Colors, HighDegVertices, Subproblems and X expose algorithm
	// internals for experiments; see trienum.Info.
	Colors          int
	HighDegVertices int
	Subproblems     int
	X               uint64
	// MaxSubproblem is the largest color-tuple subproblem (in edges)
	// actually loaded by a Cliques or Match query, to compare against the
	// O(k²·M) expectation of Section 6.
	MaxSubproblem int64
	// Workers is the resolved worker cap of the run: Config.Workers after
	// defaulting, or 1 for the sequential algorithms. The engine engages
	// at most one worker per subproblem, so fewer workers (len of
	// WorkerStats) may actually run on small inputs.
	Workers int
	// WorkerStats breaks the parallel phases down per worker. Which
	// worker solved which subproblem depends on scheduling, so individual
	// entries vary run to run — their length may too: the engine engages
	// at most one worker per task, so small inputs produce fewer entries
	// than Workers. Only the aggregate is deterministic: the entry-wise
	// sum is invariant across runs and worker counts, and is already
	// included in Stats. Native runs report a nil WorkerStats.
	WorkerStats []IOStats
}

func (g *Graph) resolveWorkers(q Query) int {
	if q.Workers > 0 {
		return q.Workers
	}
	return g.opts.workers()
}

// resolveNative applies the Query.Mode override to the handle's default
// execution mode.
func (g *Graph) resolveNative(q Query) bool {
	switch q.Mode {
	case ModeNative:
		return true
	case ModeSimulated:
		return false
	}
	return g.opts.Native
}

// limiter implements Query.Limit: it counts delivered emissions,
// cancels the producer when the limit is reached, and suppresses the
// stragglers the producer emits while winding down.
type limiter struct {
	limit  uint64
	count  uint64
	cancel context.CancelFunc
}

// newLimiter returns the limit state (nil when the query is unlimited)
// and the context the producer should run under.
func newLimiter(ctx context.Context, q Query) (*limiter, context.Context, context.CancelFunc) {
	if q.Limit == 0 {
		return nil, ctx, func() {}
	}
	qctx, cancel := cancelableCtx(ctx)
	return &limiter{limit: q.Limit, cancel: cancel}, qctx, cancel
}

// admit reports whether the next emission may be delivered, counting it
// and cancelling the producer once the limit is reached.
func (l *limiter) admit() bool {
	if l == nil {
		return true
	}
	if l.count >= l.limit {
		return false
	}
	l.count++
	if l.count == l.limit {
		l.cancel()
	}
	return true
}

// finish translates the producer's wind-down into the limit contract:
// the delivered-emission count replaces the producer's internal tally
// (which may have raced past the limit), and when the limit was reached
// and the only error is the limiter's own cancellation (not the
// caller's), the query stopped cleanly and the error is dropped.
func (l *limiter) finish(ctx context.Context, res *Result, err error) error {
	if l == nil {
		return err
	}
	res.Matches = l.count
	if l.count >= l.limit && errors.Is(err, context.Canceled) && ctxutil.Err(ctx) == nil {
		return nil
	}
	return err
}

// TrianglesFunc enumerates every triangle of the graph with the
// configured algorithm, calling emit exactly once per triangle from the
// calling goroutine. Vertices carry the input's ids, sorted a < b < c; a
// nil emit counts only. Cancellation through ctx is cooperative — the
// parallel engine (CacheAware, CacheOblivious, Deterministic) checks
// between subproblems and sort runs, drains its worker pool, and
// returns ctx.Err(); the
// sequential algorithms check at their pass, chunk, and recursion
// boundaries. The triangles emitted before a cancellation are a prefix of
// the full stream, and the Result returned alongside the error carries
// the partial counts and the statistics accumulated so far. ctx may be
// nil.
//
// The query runs on its own session over the generation that is current
// when it starts, so it may be issued concurrently with any other queries
// — and with Update — on the same Graph; emit may itself issue follow-up
// queries against the handle (but must not Close it — Close waits for the
// query emit is running under).
func (g *Graph) TrianglesFunc(ctx context.Context, q Query, emit func(a, b, c uint32)) (Result, error) {
	native := g.resolveNative(q)
	s, err := g.acquire(native)
	if err != nil {
		return Result{}, err
	}
	defer s.close()

	lim, qctx, stop := newLimiter(ctx, q)
	defer stop()
	ord := newOrderedTuples(q, 3)
	if ord != nil {
		// The canonical order is unknown until the enumeration is
		// complete, so an ordered producer always runs to completion:
		// the limit applies at delivery, below, not to the producer.
		qctx = ctx
	}
	res := s.baseResult()
	workers := g.resolveWorkers(q)
	exec := trienum.Exec{Workers: workers, Ctx: qctx}
	wrapped := func(a, b, c uint32) {
		if ord != nil {
			t := graph.MakeTriple(s.cg.RankToID[a], s.cg.RankToID[b], s.cg.RankToID[c])
			ord.add(t.V1, t.V2, t.V3)
			return
		}
		if !lim.admit() {
			return
		}
		if emit != nil {
			t := graph.MakeTriple(s.cg.RankToID[a], s.cg.RankToID[b], s.cg.RankToID[c])
			emit(t.V1, t.V2, t.V3)
		}
	}

	var info trienum.Info
	var workerStats []extmem.Stats
	switch q.Algorithm {
	case CacheAware:
		info, workerStats, err = trienum.CacheAwareParallel(s.sp, s.cg, q.Seed, exec, wrapped)
		res.Workers = workers
	case CacheOblivious:
		info, workerStats, err = trienum.ObliviousParallel(s.sp, s.cg, q.Seed, exec, wrapped)
		res.Workers = workers
	case Deterministic:
		info, workerStats, err = trienum.DeterministicParallel(s.sp, s.cg, q.FamilySize, exec, wrapped)
		if err == nil {
			res.Workers = workers
		}
	case HuTaoChung:
		info, err = trienum.HuTaoChungCtx(qctx, s.sp, s.cg, wrapped)
	case BlockNestedLoop:
		info, err = baseline.BlockNestedLoopCtx(qctx, s.sp, s.cg, wrapped)
	case EdgeIterator:
		info, err = baseline.EdgeIteratorCtx(qctx, s.sp, s.cg, wrapped)
	case SortMerge:
		info, err = trienum.DementievCtx(qctx, s.sp, s.cg, wrapped)
	default:
		return res, fmt.Errorf("repro: unknown algorithm %v", q.Algorithm)
	}
	if err == nil {
		// Count the final write-backs into the run's statistics; a
		// cancelled run reports its statistics as accumulated, unflushed.
		s.sp.Flush()
	}
	st := s.sp.Stats()
	if native {
		// Native execution compiles the accounting out: Stats stays zero
		// and WorkerStats nil, per the Result contract.
		workerStats = nil
	}
	for _, w := range workerStats {
		st.Add(w)
		res.WorkerStats = append(res.WorkerStats, toIOStats(w))
	}
	res.Stats = toIOStats(st)
	res.Triangles = info.Triangles
	res.Matches = info.Triangles
	res.Colors = info.Colors
	res.HighDegVertices = info.HighDegVertices
	res.Subproblems = info.Subproblems
	res.X = info.X
	if ord != nil && err == nil {
		ord.deliver(lim, func(vs []uint32) {
			if emit != nil {
				emit(vs[0], vs[1], vs[2])
			}
		})
	}
	err = lim.finish(ctx, &res, err)
	if lim != nil {
		res.Triangles = res.Matches
		if err == nil && q.Algorithm == Deterministic {
			// A clean limit stop is a success: report the real worker
			// cap for Deterministic too, whose normal path only sets it
			// after an error-free run.
			res.Workers = workers
		}
	}
	deliverResult(q, res)
	return res, err
}

// Triangles returns the query as a Go 1.23 range-over-func iterator:
//
//	for t, err := range g.Triangles(ctx, repro.Query{}) {
//		if err != nil { ... }
//		use(t)
//	}
//
// A non-nil error is yielded at most once, as the final element.
// Breaking out of the loop cancels the underlying query and drains its
// workers before the iterator returns. Set Query.Result to receive the
// per-query statistics, and Query.Limit to end the iteration cleanly
// after a fixed number of elements.
//
// The loop body runs on the iterating goroutine while the query's private
// session is live: it may issue further queries against the same handle
// (they run on sessions of their own), but must not Close it.
func (g *Graph) Triangles(ctx context.Context, q Query) iter.Seq2[Triangle, error] {
	return func(yield func(Triangle, error) bool) {
		qctx, cancel := cancelableCtx(ctx)
		defer cancel()
		stopped := false
		_, err := g.TrianglesFunc(qctx, q, func(a, b, c uint32) {
			if stopped {
				return
			}
			if !yield(Triangle{a, b, c}, nil) {
				stopped = true
				cancel()
			}
		})
		if err != nil && !stopped {
			yield(Triangle{}, err)
		}
	}
}

// CliquesFunc enumerates every k-clique (k >= 3) of the graph with the
// Section 6 color-coding decomposition, in O(E^(k/2)/(M^(k/2−1)·B))
// expected I/Os. emit receives each clique exactly once as ascending
// vertex ids of the caller's id space; the slice is reused between calls
// — copy it to retain. Emission order follows the decomposition, not any
// global order. ctx is checked between color-tuple subproblems; it may
// be nil. A nil emit counts only. Like every query, it runs on its own
// session and may overlap other queries of the handle.
func (g *Graph) CliquesFunc(ctx context.Context, k int, q Query, emit func(clique []uint32)) (Result, error) {
	return g.subgraphQuery(ctx, q, emit, func(qctx context.Context, s *session, wrapped subgraph.EmitK) (subgraph.Info, error) {
		return subgraph.KClique(qctx, s.sp, s.cg, k, q.Seed, wrapped)
	}, true, k, nil)
}

// Cliques is CliquesFunc as a range-over-func iterator; the iteration
// contract matches Triangles, and the yielded slice is reused between
// elements — copy it to retain.
func (g *Graph) Cliques(ctx context.Context, k int, q Query) iter.Seq2[[]uint32, error] {
	return g.subgraphSeq(ctx, func(qctx context.Context, emit func([]uint32)) error {
		_, err := g.CliquesFunc(qctx, k, q, emit)
		return err
	})
}

// MatchFunc enumerates every copy of the pattern in the graph — each set
// of vertices carrying an H-isomorphic (not necessarily induced)
// subgraph, exactly once per embedding modulo Aut(H) — with the Section 6
// color-coding decomposition generalized to arbitrary connected patterns
// on at most 8 vertices (Silvestri 2014). emit receives the embedding:
// position i of the pattern maps to vertex assign[i] of the caller's id
// space. The slice is reused between calls — copy it to retain. ctx is
// checked between color-tuple subproblems; it may be nil. A nil emit
// counts only.
func (g *Graph) MatchFunc(ctx context.Context, p *Pattern, q Query, emit func(assign []uint32)) (Result, error) {
	if p == nil || p.p == nil {
		return Result{}, fmt.Errorf("repro: Match requires a non-nil pattern")
	}
	return g.subgraphQuery(ctx, q, emit, func(qctx context.Context, s *session, wrapped subgraph.EmitK) (subgraph.Info, error) {
		return p.p.Enumerate(qctx, s.sp, s.cg, q.Seed, wrapped)
	}, false, p.K(), p.Normalize)
}

// Match is MatchFunc as a range-over-func iterator; the iteration
// contract matches Triangles, and the yielded slice is reused between
// elements — copy it to retain.
func (g *Graph) Match(ctx context.Context, p *Pattern, q Query) iter.Seq2[[]uint32, error] {
	return g.subgraphSeq(ctx, func(qctx context.Context, emit func([]uint32)) error {
		_, err := g.MatchFunc(qctx, p, q, emit)
		return err
	})
}

// subgraphQuery is the shared engine room of Cliques and Match: open a
// session, run the Section 6 enumerator with ranks mapped back to input
// ids, collect the worker-invariant statistics, close the session.
// sortIDs orders each emitted vertex set ascending (cliques are unordered
// sets; pattern embeddings are positional and must not be reordered).
// k is the emitted tuple size and normalize the Query.Ordered orbit
// normalization (nil when the plain emission is already canonical).
func (g *Graph) subgraphQuery(ctx context.Context, q Query, emit func([]uint32),
	run func(qctx context.Context, s *session, wrapped subgraph.EmitK) (subgraph.Info, error), sortIDs bool,
	k int, normalize func([]uint32)) (Result, error) {
	s, err := g.acquire(g.resolveNative(q))
	if err != nil {
		return Result{}, err
	}
	defer s.close()

	lim, qctx, stop := newLimiter(ctx, q)
	defer stop()
	ord := newOrderedTuples(q, k)
	if ord != nil {
		// As in TrianglesFunc: an ordered producer runs to completion,
		// the limit applies at delivery.
		qctx = ctx
	}
	res := s.baseResult()
	var mapped []uint32
	wrapped := func(vs []uint32) {
		if ord == nil {
			if !lim.admit() {
				return
			}
			if emit == nil {
				return
			}
		}
		if cap(mapped) < len(vs) {
			mapped = make([]uint32, len(vs))
		}
		mapped = mapped[:len(vs)]
		for i, v := range vs {
			mapped[i] = s.cg.RankToID[v]
		}
		if sortIDs {
			sort.Slice(mapped, func(i, j int) bool { return mapped[i] < mapped[j] })
		}
		if ord != nil {
			if normalize != nil {
				normalize(mapped)
			}
			ord.add(mapped...)
			return
		}
		emit(mapped)
	}
	info, err := run(qctx, s, wrapped)
	res.Matches = info.Cliques
	res.Colors = info.Colors
	res.Subproblems = info.Subproblems
	res.MaxSubproblem = info.MaxSubproblem
	if err == nil {
		// As in TrianglesFunc: flush on success, report a cancelled run's
		// statistics as accumulated.
		s.sp.Flush()
	}
	res.Stats = toIOStats(s.sp.Stats())
	if ord != nil && err == nil {
		ord.deliver(lim, func(vs []uint32) {
			if emit != nil {
				emit(vs)
			}
		})
	}
	err = lim.finish(ctx, &res, err)
	deliverResult(q, res)
	return res, err
}

// orderedTuples buffers a Query.Ordered run's emissions — flattened ids,
// k per emission — for sorted delivery. Created nil for plain queries,
// so the hot path stays a nil check.
type orderedTuples struct {
	k    int
	flat []uint32
}

func newOrderedTuples(q Query, k int) *orderedTuples {
	if !q.Ordered {
		return nil
	}
	return &orderedTuples{k: k}
}

func (o *orderedTuples) add(vs ...uint32) { o.flat = append(o.flat, vs...) }

// deliver sorts the buffered tuples into the canonical lexicographic
// order and hands them to emit through the limiter, from the calling
// goroutine.
func (o *orderedTuples) deliver(lim *limiter, emit func([]uint32)) {
	cluster.SortTuples(o.flat, o.k)
	for i := 0; i+o.k <= len(o.flat); i += o.k {
		if !lim.admit() {
			return
		}
		emit(o.flat[i : i+o.k])
	}
}

// subgraphSeq adapts a callback-form subgraph query to an iterator,
// translating an early break into a cancellation of the underlying run.
func (g *Graph) subgraphSeq(ctx context.Context, run func(qctx context.Context, emit func([]uint32)) error) iter.Seq2[[]uint32, error] {
	return func(yield func([]uint32, error) bool) {
		qctx, cancel := cancelableCtx(ctx)
		defer cancel()
		stopped := false
		err := run(qctx, func(vs []uint32) {
			if stopped {
				return
			}
			if !yield(vs, nil) {
				stopped = true
				cancel()
			}
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// baseResult seeds a Result with the session's generation metadata, so
// concurrent updates never leak into a running query's report.
func (s *session) baseResult() Result {
	return Result{
		Vertices: s.gen.numVertices,
		Edges:    s.gen.edgesLen,
		CanonIOs: s.gen.canonIOs,
		Workers:  1,
	}
}

func deliverResult(q Query, res Result) {
	if q.Result != nil {
		*q.Result = res
	}
}

// cancelableCtx derives a cancellable context from ctx (which may be
// nil), for iterator adapters that must stop the producer on break.
func cancelableCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithCancel(ctx)
}
